// bench_local_size — experiment E9 (paper §IV-D9): sensitivity of every
// strategy to the work-group size.  The paper reports minimal variance with
// local size for most strategies (peak at 768 for 3LP-1), with optimal-vs-
// suboptimal gaps from 1.6% to 34.2%.
//
// With --tune-cache <path> the per-strategy winners are also persisted as
// tuning-cache entries under the "dslash" key grammar (docs/TUNING.md) and
// round-trip-verified through TuneCache — the same entries DslashRunner::
// run_tuned records on a cold sweep, so the file warm-starts later runs.
#include "bench_common.hpp"

#include "tune/tune_cache.hpp"

using namespace milc;
using namespace milc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;
  print_header("Local-size sensitivity (IV-D9)", opt, problem.sites());

  JsonSink json(opt.json_path, "bench_local_size");
  tune::TuneCache cache;

  std::printf("\n%-22s", "strategy/order");
  for (int ls : {64, 96, 128, 192, 256, 384, 512, 768}) std::printf(" %8d", ls);
  std::printf("   spread%%\n");

  for (Strategy s : all_strategies()) {
    tune::TuneEntry win;  // per-strategy winner across orders and sizes
    for (IndexOrder o : orders_of(s)) {
      std::printf("%-22s", (std::string(to_string(s)) + " " + to_string(o)).c_str());
      double best = 0.0, worst = 1e30;
      for (int ls : {64, 96, 128, 192, 256, 384, 512, 768}) {
        if (!is_valid_local_size(s, o, ls, problem.sites())) {
          std::printf(" %8s", "-");
          continue;
        }
        RunRequest req{.strategy = s, .order = o, .local_size = ls, .variant = Variant::SYCL};
        const RunResult r = runner.run(problem, req);
        std::printf(" %8.1f", r.gflops);
        best = std::max(best, r.gflops);
        worst = std::min(worst, r.gflops);
        // Strict < with first-priced-wins — the explorer's tie-break, so the
        // recorded decision matches what a cold run_tuned sweep would pick.
        if (win.local_size == 0 || r.per_iter_us < win.per_iter_us) {
          win.local_size = ls;
          win.order = to_string(o);
          win.per_iter_us = r.per_iter_us;
        }
      }
      std::printf("   %+6.1f\n", best > 0 ? 100.0 * (best / worst - 1.0) : 0.0);
    }
    if (win.local_size > 0) {
      win.bench = "bench_local_size";
      win.seed = opt.seed;
      win.stamp = opt.stamp;
      const tune::TuneKey key = runner.tune_key(problem, s);
      cache.put(key, win);
      json.tune_row(key.canonical(), win);
    }
  }

  if (!opt.tune_cache_path.empty()) {
    std::string err;
    if (!cache.save(opt.tune_cache_path, &err)) {
      std::fprintf(stderr, "FAIL: cannot save tuning cache: %s\n", err.c_str());
      return 1;
    }
    // Round-trip honesty check: the persisted file must reload into a cache
    // bit-for-bit equal to the one in memory (per_iter_us compared by IEEE
    // bits through TuneEntry::operator==).
    tune::TuneCache reloaded;
    const tune::TuneCache::LoadResult res = reloaded.load(opt.tune_cache_path);
    if (!res.ok() || !(reloaded == cache)) {
      std::fprintf(stderr, "FAIL: tuning-cache round trip: %s (%s)\n",
                   to_string(res.status), res.diagnostic.c_str());
      return 1;
    }
    std::printf("\ntuning cache: %zu entries round-tripped bit-for-bit through %s\n",
                cache.size(), opt.tune_cache_path.c_str());
  }

  std::printf("\n(paper: optimal-vs-suboptimal local size differs by 1.6%%..34.2%%\n"
              " depending on strategy and order; peak at 768 for 3LP-1 variants)\n");
  return 0;
}
