// bench_local_size — experiment E9 (paper §IV-D9): sensitivity of every
// strategy to the work-group size.  The paper reports minimal variance with
// local size for most strategies (peak at 768 for 3LP-1), with optimal-vs-
// suboptimal gaps from 1.6% to 34.2%.
#include "bench_common.hpp"

using namespace milc;
using namespace milc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;
  print_header("Local-size sensitivity (IV-D9)", opt, problem.sites());

  std::printf("\n%-22s", "strategy/order");
  for (int ls : {64, 96, 128, 192, 256, 384, 512, 768}) std::printf(" %8d", ls);
  std::printf("   spread%%\n");

  for (Strategy s : all_strategies()) {
    for (IndexOrder o : orders_of(s)) {
      std::printf("%-22s", (std::string(to_string(s)) + " " + to_string(o)).c_str());
      double best = 0.0, worst = 1e30;
      for (int ls : {64, 96, 128, 192, 256, 384, 512, 768}) {
        if (!is_valid_local_size(s, o, ls, problem.sites())) {
          std::printf(" %8s", "-");
          continue;
        }
        RunRequest req{.strategy = s, .order = o, .local_size = ls, .variant = Variant::SYCL};
        const RunResult r = runner.run(problem, req);
        std::printf(" %8.1f", r.gflops);
        best = std::max(best, r.gflops);
        worst = std::min(worst, r.gflops);
      }
      std::printf("   %+6.1f\n", best > 0 ? 100.0 * (best / worst - 1.0) : 0.0);
    }
  }
  std::printf("\n(paper: optimal-vs-suboptimal local size differs by 1.6%%..34.2%%\n"
              " depending on strategy and order; peak at 768 for 3LP-1 variants)\n");
  return 0;
}
