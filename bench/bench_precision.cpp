// bench_precision — extension experiment X1: single vs double precision for
// the memory-bound 3LP-1 kernel.  QUDA's mixed-precision solvers exist
// because halving the word size roughly halves the traffic of a bandwidth-
// bound operator; this bench quantifies that on the simulated A100.
#include "bench_common.hpp"
#include "core/precision.hpp"

using namespace milc;
using namespace milc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;
  print_header("Precision ablation: double vs float 3LP-1 (extension X1)", opt,
               problem.sites());

  FloatDslash fd(problem.device_gauge(), problem.neighbors());
  FloatColorField fin(problem.b()), fout(problem.geom(), problem.target_parity());

  std::printf("\n%-22s %10s %12s %14s %14s %10s\n", "kernel", "GF/s", "kernel_us", "L1 tags",
              "DRAM sectors", "occ%");
  for (int ls : paper_local_sizes(Strategy::LP3_1, IndexOrder::kMajor, problem.sites())) {
    RunRequest req{.strategy = Strategy::LP3_1,
                   .order = IndexOrder::kMajor,
                   .local_size = ls,
                   .variant = Variant::SYCL};
    const RunResult d = runner.run(problem, req);
    const auto f = fd.profile(fin, fout, ls);
    // Kernel-only GFLOP/s for both precisions (same convention).
    const double d_gflops = problem.flops() / (d.kernel_us * 1e-6) / 1e9;
    const double f_gflops = problem.flops() / (f.duration_us * 1e-6) / 1e9;
    std::printf("%-22s %10.1f %12.1f %13.1fM %13.1fM %9.1f%%\n",
                ("double 3LP-1 /" + std::to_string(ls)).c_str(), d_gflops, d.kernel_us,
                static_cast<double>(d.stats.counters.l1_tag_requests_global) / 1e6,
                static_cast<double>(d.stats.counters.dram_sectors) / 1e6,
                100.0 * d.stats.occupancy.achieved);
    std::printf("%-22s %10.1f %12.1f %13.1fM %13.1fM %9.1f%%   (x%.2f)\n",
                ("float  3LP-1 /" + std::to_string(ls)).c_str(), f_gflops, f.duration_us,
                static_cast<double>(f.counters.l1_tag_requests_global) / 1e6,
                static_cast<double>(f.counters.dram_sectors) / 1e6,
                100.0 * f.occupancy.achieved, d.kernel_us / f.duration_us);
  }

  std::printf("\nexpectation: the float kernel moves ~half the bytes, so a bandwidth-\n"
              "bound operator approaches a 2x speed-up — the headroom mixed-precision\n"
              "solvers exploit (QUDA feature cited in paper I and IV-D3).\n");
  return 0;
}
