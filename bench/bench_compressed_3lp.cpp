// bench_compressed_3lp — extension experiment X2: does QUDA-style gauge
// compression pay off for the paper's 3LP-1 strategy?  The paper could not
// ask this ("not a current feature of our SYCL implementation", §IV-D3);
// with the cooperative-staging recon-12 kernel we can.  Compression removes
// 1/3 of the gauge bytes but adds reconstruction FLOPs, local-memory traffic
// and eight extra barriers per site-quartet.
#include "bench_common.hpp"
#include "core/compressed.hpp"
#include "qudaref/staggered_test.hpp"

using namespace milc;
using namespace milc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;
  print_header("Gauge compression for 3LP-1 (extension X2)", opt, problem.sites());

  CompressedDslash cd(problem.view(), problem.neighbors());
  ColorField out(problem.geom(), problem.target_parity());

  std::printf("\n%-26s %10s %12s %14s %14s %12s\n", "kernel", "GF/s", "kernel_us",
              "DRAM sectors", "smem wavefr.", "barriers");
  for (int ls : paper_local_sizes(Strategy::LP3_1, IndexOrder::kMajor, problem.sites())) {
    RunRequest req{.strategy = Strategy::LP3_1,
                   .order = IndexOrder::kMajor,
                   .local_size = ls,
                   .variant = Variant::SYCL};
    const RunResult plain = runner.run(problem, req);
    const auto comp = cd.profile(problem.b(), out, ls);
    const double comp_gflops = problem.flops() / (comp.duration_us * 1e-6) / 1e9;
    const double plain_gflops = problem.flops() / (plain.kernel_us * 1e-6) / 1e9;

    std::printf("%-26s %10.1f %12.1f %13.1fM %13.1fM %11.0fK\n",
                ("3LP-1 recon-18 /" + std::to_string(ls)).c_str(), plain_gflops,
                plain.kernel_us,
                static_cast<double>(plain.stats.counters.dram_sectors) / 1e6,
                static_cast<double>(plain.stats.counters.shared_wavefronts) / 1e6,
                static_cast<double>(plain.stats.counters.barrier_warp_events) / 1e3);
    std::printf("%-26s %10.1f %12.1f %13.1fM %13.1fM %11.0fK   (x%.2f)\n",
                ("3LP-1 recon-12 /" + std::to_string(ls)).c_str(), comp_gflops,
                comp.duration_us, static_cast<double>(comp.counters.dram_sectors) / 1e6,
                static_cast<double>(comp.counters.shared_wavefronts) / 1e6,
                static_cast<double>(comp.counters.barrier_warp_events) / 1e3,
                plain.kernel_us / comp.duration_us);
  }

  // Context: QUDA's recon-12 gain on its own site-per-thread kernel.
  qudaref::StaggeredDslashTest quda(problem);
  const auto q18 = quda.run(Reconstruct::k18);
  const auto q12 = quda.run(Reconstruct::k12);
  std::printf("\nQUDA for scale: recon-18 %.1f -> recon-12 %.1f GF/s (x%.2f)\n", q18.gflops,
              q12.gflops, q12.gflops / q18.gflops);
  std::printf("\nreading: compression couples awkwardly to row-parallelism — the row-2\n"
              "work-item needs both stored rows, so the triplet must stage links through\n"
              "local memory with extra synchronisation, eating part of the bandwidth win\n"
              "that the site-per-thread QUDA kernel banks in full.\n");
  return 0;
}
