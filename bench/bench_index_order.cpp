// bench_index_order — experiment E7 (paper §IV-D7): k-major vs i-major work-
// item index order across every strategy and local size.  The paper finds
// k-major ahead in 31 of 36 cases, mostly within 3%, except 4LP-1 where it
// wins by 7.2-8.5%, driven by memory coalescing (L1 tag requests) and shared
// -memory bank conflicts.
#include "bench_common.hpp"

using namespace milc;
using namespace milc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;
  print_header("Work-item index order: k-major vs i-major (IV-D7)", opt, problem.sites());

  int k_wins = 0, total = 0;
  std::printf("\n%-9s %6s %12s %12s %9s %14s %14s\n", "strategy", "local", "first GF/s",
              "second GF/s", "delta%", "tags(1st)", "tags(2nd)");

  for (Strategy s :
       {Strategy::LP3_1, Strategy::LP3_2, Strategy::LP3_3, Strategy::LP4_1, Strategy::LP4_2}) {
    const auto orders = orders_of(s);  // [preferred, i-major]
    for (int ls : paper_local_sizes(s, orders[1], problem.sites())) {
      if (!is_valid_local_size(s, orders[0], ls, problem.sites())) continue;
      RunRequest a{.strategy = s, .order = orders[0], .local_size = ls, .variant = Variant::SYCL};
      RunRequest b{.strategy = s, .order = orders[1], .local_size = ls, .variant = Variant::SYCL};
      const RunResult ra = runner.run(problem, a);
      const RunResult rb = runner.run(problem, b);
      const double delta = 100.0 * (ra.gflops / rb.gflops - 1.0);
      std::printf("%-9s %6d %12.1f %12.1f %+8.1f%% %13.1fM %13.1fM  (%s vs %s)\n",
                  to_string(s), ls, ra.gflops, rb.gflops, delta,
                  static_cast<double>(ra.stats.counters.l1_tag_requests_global) / 1e6,
                  static_cast<double>(rb.stats.counters.l1_tag_requests_global) / 1e6,
                  to_string(orders[0]), to_string(orders[1]));
      ++total;
      if (ra.gflops >= rb.gflops) ++k_wins;
    }
  }

  std::printf("\npreferred order wins %d of %d cases (paper: k-major wins 31 of 36)\n", k_wins,
              total);
  std::printf("expected mechanism: i-major raises L1 tag requests (less localized\n"
              "access) and, for local-memory kernels, shared bank conflicts.\n");
  return 0;
}
