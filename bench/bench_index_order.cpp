// bench_index_order — experiment E7 (paper §IV-D7): k-major vs i-major work-
// item index order across every strategy and local size.  The paper finds
// k-major ahead in 31 of 36 cases, mostly within 3%, except 4LP-1 where it
// wins by 7.2-8.5%, driven by memory coalescing (L1 tag requests) and shared
// -memory bank conflicts.
//
// With --tune-cache <path> the per-strategy winner across every (order,
// local size) pair priced here is persisted as a "dslash" tuning-cache
// entry and round-trip-verified through TuneCache (docs/TUNING.md).
#include "bench_common.hpp"

#include "tune/tune_cache.hpp"

using namespace milc;
using namespace milc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;
  print_header("Work-item index order: k-major vs i-major (IV-D7)", opt, problem.sites());

  JsonSink json(opt.json_path, "bench_index_order");
  tune::TuneCache cache;

  int k_wins = 0, total = 0;
  std::printf("\n%-9s %6s %12s %12s %9s %14s %14s\n", "strategy", "local", "first GF/s",
              "second GF/s", "delta%", "tags(1st)", "tags(2nd)");

  for (Strategy s :
       {Strategy::LP3_1, Strategy::LP3_2, Strategy::LP3_3, Strategy::LP4_1, Strategy::LP4_2}) {
    const auto orders = orders_of(s);  // [preferred, i-major]
    tune::TuneEntry win;  // per-strategy winner across priced (order, size) pairs
    for (int ls : paper_local_sizes(s, orders[1], problem.sites())) {
      if (!is_valid_local_size(s, orders[0], ls, problem.sites())) continue;
      RunRequest a{.strategy = s, .order = orders[0], .local_size = ls, .variant = Variant::SYCL};
      RunRequest b{.strategy = s, .order = orders[1], .local_size = ls, .variant = Variant::SYCL};
      const RunResult ra = runner.run(problem, a);
      const RunResult rb = runner.run(problem, b);
      const double delta = 100.0 * (ra.gflops / rb.gflops - 1.0);
      std::printf("%-9s %6d %12.1f %12.1f %+8.1f%% %13.1fM %13.1fM  (%s vs %s)\n",
                  to_string(s), ls, ra.gflops, rb.gflops, delta,
                  static_cast<double>(ra.stats.counters.l1_tag_requests_global) / 1e6,
                  static_cast<double>(rb.stats.counters.l1_tag_requests_global) / 1e6,
                  to_string(orders[0]), to_string(orders[1]));
      ++total;
      if (ra.gflops >= rb.gflops) ++k_wins;
      // Strict < with first-priced-wins (the explorer's tie-break); the
      // preferred order prices first at each size, matching run_tuned's
      // enumeration order.
      if (win.local_size == 0 || ra.per_iter_us < win.per_iter_us) {
        win.local_size = ls;
        win.order = to_string(orders[0]);
        win.per_iter_us = ra.per_iter_us;
      }
      if (rb.per_iter_us < win.per_iter_us) {
        win.local_size = ls;
        win.order = to_string(orders[1]);
        win.per_iter_us = rb.per_iter_us;
      }
    }
    if (win.local_size > 0) {
      win.bench = "bench_index_order";
      win.seed = opt.seed;
      win.stamp = opt.stamp;
      const tune::TuneKey key = runner.tune_key(problem, s);
      cache.put(key, win);
      json.tune_row(key.canonical(), win);
    }
  }

  if (!opt.tune_cache_path.empty()) {
    std::string err;
    if (!cache.save(opt.tune_cache_path, &err)) {
      std::fprintf(stderr, "FAIL: cannot save tuning cache: %s\n", err.c_str());
      return 1;
    }
    tune::TuneCache reloaded;
    const tune::TuneCache::LoadResult res = reloaded.load(opt.tune_cache_path);
    if (!res.ok() || !(reloaded == cache)) {
      std::fprintf(stderr, "FAIL: tuning-cache round trip: %s (%s)\n",
                   to_string(res.status), res.diagnostic.c_str());
      return 1;
    }
    std::printf("\ntuning cache: %zu entries round-tripped bit-for-bit through %s\n",
                cache.size(), opt.tune_cache_path.c_str());
  }

  std::printf("\npreferred order wins %d of %d cases (paper: k-major wins 31 of 36)\n", k_wins,
              total);
  std::printf("expected mechanism: i-major raises L1 tag requests (less localized\n"
              "access) and, for local-memory kernels, shared bank conflicts.\n");
  return 0;
}
