// bench_wilson — extension experiment X3: Wilson vs staggered arithmetic
// intensity.  The paper's introduction explains why staggered fermions make
// memory traffic the battleground: "the arithmetic intensity of staggered
// quarks is low compared to the other two formulations".  This bench puts
// numbers on that: the Wilson hopping operator (8-point stencil, 4 spins,
// half-spinor projection) against the staggered operator (16-point stencil,
// 1 colour vector) on the same lattice and simulated device.
#include "bench_common.hpp"
#include "wilson/wilson.hpp"

using namespace milc;
using namespace milc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;
  print_header("Wilson vs staggered arithmetic intensity (extension X3)", opt,
               problem.sites());

  // Staggered: the paper's best AoS kernel (3LP-1 k-major, local 768).
  RunRequest req{.strategy = Strategy::LP3_1,
                 .order = IndexOrder::kMajor,
                 .local_size = 768,
                 .variant = Variant::SYCL};
  const RunResult stag = runner.run(problem, req);

  // Wilson: site-per-thread kernel on the same gauge links.
  wilson::WilsonField win(problem.geom(), opposite(problem.target_parity()));
  win.fill_random(opt.seed + 1);
  wilson::WilsonField wout(problem.geom(), problem.target_parity());
  wilson::WilsonDslash wd(problem.device_gauge(), problem.neighbors());
  const auto wstats = wd.profile(win, wout, 128);

  const double wilson_flops =
      wilson::wilson_flops_per_site() * static_cast<double>(problem.sites());
  const double w_gflops = wilson_flops / (wstats.duration_us * 1e-6) / 1e9;
  const double s_gflops = problem.flops() / (stag.kernel_us * 1e-6) / 1e9;

  const double w_bytes = static_cast<double>(wstats.counters.dram_sectors) * 32.0;
  const double s_bytes = static_cast<double>(stag.stats.counters.dram_sectors) * 32.0;

  std::printf("\n%-28s %12s %12s %14s %12s %10s\n", "operator", "FLOP/site", "GF/s",
              "DRAM bytes/site", "FLOP/byte", "occ%");
  std::printf("%-28s %12.0f %12.1f %14.0f %12.2f %9.1f%%\n", "staggered 3LP-1 (16-pt)",
              kFlopsPerSite, s_gflops, s_bytes / static_cast<double>(problem.sites()),
              problem.flops() / s_bytes, 100.0 * stag.stats.occupancy.achieved);
  std::printf("%-28s %12.0f %12.1f %14.0f %12.2f %9.1f%%\n", "wilson site/thread (8-pt)",
              wilson::wilson_flops_per_site(), w_gflops,
              w_bytes / static_cast<double>(problem.sites()), wilson_flops / w_bytes,
              100.0 * wstats.occupancy.achieved);

  std::printf("\nintensity ratio (wilson/staggered): %.2fx   (intro: staggered is the\n"
              "low-intensity formulation, hence the paper's focus on memory traffic)\n",
              (wilson_flops / w_bytes) / (problem.flops() / s_bytes));
  std::printf("note: the Wilson site-per-thread kernel is register-bound (whole-spinor\n"
              "accumulators), so its occupancy sits below the staggered row kernels —\n"
              "the same trade-off the paper's 1LP/QUDA analysis exposes.\n");
  return 0;
}
