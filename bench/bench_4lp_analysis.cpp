// bench_4lp_analysis — experiment E8 (paper §IV-D8): why maximal concurrency
// loses.  Compares 4LP-1 and 4LP-2 in every index order against 3LP-1 and
// 2LP, and reports the divergence / bank-conflict / barrier signatures the
// paper blames.
#include "bench_common.hpp"

using namespace milc;
using namespace milc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;
  print_header("4LP analysis: concurrency vs utilisation (IV-D8)", opt, problem.sites());

  auto best_of = [&](Strategy s, IndexOrder o) {
    RunResult best;
    for (int ls : paper_local_sizes(s, o, problem.sites())) {
      RunRequest req{.strategy = s, .order = o, .local_size = ls, .variant = Variant::SYCL};
      RunResult r = runner.run(problem, req);
      if (best.label.empty() || r.gflops > best.gflops) best = r;
    }
    return best;
  };

  const RunResult lp2 = best_of(Strategy::LP2, IndexOrder::kMajor);
  const RunResult lp31 = best_of(Strategy::LP3_1, IndexOrder::kMajor);
  const RunResult lp41k = best_of(Strategy::LP4_1, IndexOrder::kMajor);
  const RunResult lp41i = best_of(Strategy::LP4_1, IndexOrder::iMajor);
  const RunResult lp42l = best_of(Strategy::LP4_2, IndexOrder::lMajor);
  const RunResult lp42i = best_of(Strategy::LP4_2, IndexOrder::iMajor);

  std::printf("\n%-18s %10s %12s %14s %16s %12s\n", "config (best ls)", "GF/s", "divergent",
              "smem excess", "active lanes %", "barriers");
  for (const RunResult* r : {&lp2, &lp31, &lp41k, &lp41i, &lp42l, &lp42i}) {
    const auto& c = r->stats.counters;
    const double active_pct = c.possible_lane_ops
                                  ? 100.0 * static_cast<double>(c.active_lane_ops) /
                                        static_cast<double>(c.possible_lane_ops)
                                  : 0.0;
    std::printf("%-18s %10.1f %12.0f %13.1fM %15.1f%% %12.0fK\n", r->label.c_str(), r->gflops,
                static_cast<double>(c.divergent_branches),
                static_cast<double>(c.shared_wavefronts -
                                    std::min(c.shared_wavefronts, c.shared_wavefronts_ideal)) /
                    1e6,
                active_pct, static_cast<double>(c.barrier_warp_events) / 1e3);
  }

  std::printf("\nPaper-shape checks:\n");
  std::printf("  4LP-1 vs 3LP-1:            %+6.1f%%   (paper: -13.2..-29.0%%)\n",
              100.0 * (lp41k.gflops / lp31.gflops - 1.0));
  std::printf("  4LP-1 (k) vs 2LP:          %+6.1f%%   (paper: 'almost equivalent')\n",
              100.0 * (lp41k.gflops / lp2.gflops - 1.0));
  std::printf("  4LP-2 l-major vs i-major:  %+6.1f%%   (paper: +8.2..11.0%%)\n",
              100.0 * (lp42l.gflops / lp42i.gflops - 1.0));
  std::printf("  4LP-2 (i) vs 2LP:          %+6.1f%%   (paper: down to -26.3%%)\n",
              100.0 * (lp42i.gflops / lp2.gflops - 1.0));
  std::printf("  best vs worst 4LP order:   %+6.1f%%   (paper: +16.3..23.4%%)\n",
              100.0 * (lp41k.gflops / lp42i.gflops - 1.0));
  std::printf("\nThe 4LP orders differ in how the 12 active work-items sit inside a\n"
              "32-wide warp: 4LP-1 keeps them consecutive, 4LP-2 l-major alternates\n"
              "3-active/3-inactive, 4LP-2 i-major alternates 1/1 — the 'active lanes'\n"
              "column above shows the resulting SIMD efficiency.\n");
  return 0;
}
