// bench_micro — host-side microbenchmarks (experiment M1) of the building
// blocks: complex arithmetic (both libraries), SU(3) kernels, gauge
// pack/reconstruct, the serial reference Dslash, and the simulator's own
// cache/coalescer throughput (which bounds how fast the benches run).
#include <benchmark/benchmark.h>

#include <vector>

#include "complexlib/syclcplx.hpp"
#include "core/dslash_ref.hpp"
#include "core/problem.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/coalescer.hpp"
#include "su3/random_su3.hpp"
#include "su3/reconstruct.hpp"

namespace {

using milc::dcomplex;

void BM_DComplexMac(benchmark::State& state) {
  dcomplex acc{0.1, 0.2}, a{1.1, -0.3}, b{0.7, 0.9};
  for (auto _ : state) {
    milc::cmac(acc, a, b);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_DComplexMac);

void BM_SyclCplxMac(benchmark::State& state) {
  syclcplx::complex<double> acc{0.1, 0.2}, a{1.1, -0.3}, b{0.7, 0.9};
  for (auto _ : state) {
    acc += a * b;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SyclCplxMac);

void BM_SU3MatVec(benchmark::State& state) {
  milc::Rng rng(1);
  const auto u = milc::random_su3(rng);
  const auto v = milc::random_vector(rng);
  for (auto _ : state) {
    auto y = milc::matvec(u, v);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SU3MatVec);

void BM_SU3MatMul(benchmark::State& state) {
  milc::Rng rng(2);
  const auto a = milc::random_su3(rng);
  const auto b = milc::random_su3(rng);
  for (auto _ : state) {
    auto c = milc::matmul(a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SU3MatMul);

void BM_RandomSU3(benchmark::State& state) {
  milc::Rng rng(3);
  for (auto _ : state) {
    auto u = milc::random_su3(rng);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_RandomSU3);

void BM_PackUnpack(benchmark::State& state) {
  const auto scheme = static_cast<milc::Reconstruct>(state.range(0));
  milc::Rng rng(4);
  const auto u = milc::random_su3(rng);
  std::array<double, 18> buf{};
  for (auto _ : state) {
    milc::pack_link(scheme, u, buf);
    auto v = milc::unpack_link(scheme, buf);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_PackUnpack)->Arg(0)->Arg(1)->Arg(2);  // k18, k12, k9

void BM_ReferenceDslash(benchmark::State& state) {
  const int L = static_cast<int>(state.range(0));
  milc::DslashProblem p(L, 5);
  milc::ColorField out(p.geom(), p.target_parity());
  for (auto _ : state) {
    milc::dslash_reference(p.view(), p.neighbors(), p.b(), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * p.sites());
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * p.flops() * 1e-9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReferenceDslash)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_CacheSimAccess(benchmark::State& state) {
  gpusim::SectoredCache cache(128 * 1024, 128, 32, 4);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    auto out = cache.access(addr, false);
    benchmark::DoNotOptimize(out);
    addr += 32;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSimAccess);

void BM_Coalescer(benchmark::State& state) {
  std::vector<gpusim::LaneAccess> lanes;
  for (int l = 0; l < 32; ++l) {
    lanes.push_back({static_cast<std::uint64_t>(l) * 48, 16, static_cast<std::uint8_t>(l)});
  }
  std::vector<std::uint64_t> out;
  for (auto _ : state) {
    gpusim::coalesce_sectors(lanes, 32, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Coalescer);

void BM_BankAnalysis(benchmark::State& state) {
  std::vector<gpusim::LaneAccess> lanes;
  for (int l = 0; l < 32; ++l) {
    lanes.push_back({static_cast<std::uint64_t>(l) * 16, 16, static_cast<std::uint8_t>(l)});
  }
  for (auto _ : state) {
    auto r = gpusim::analyze_shared(lanes, 32, 4);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BankAnalysis);

}  // namespace

BENCHMARK_MAIN();
