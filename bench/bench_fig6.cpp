// bench_fig6 — reproduces the paper's Fig. 6 (experiment E1) and the
// headline summary (E10): GFLOP/s of every SYCL MILC-Dslash implementation
// (strategy x index order x local size), the five additional 3LP-1 variants
// (gray-shaded block), and QUDA's staggered_dslash_test as the reference
// line.
#include <map>

#include "bench_common.hpp"
#include "core/dslash_ref.hpp"
#include "faultsim/resilient_runner.hpp"
#include "qudaref/staggered_test.hpp"

using namespace milc;
using namespace milc::bench;

namespace {

/// --faults: drive every strategy through the ResilientRunner under a seeded
/// fault storm.  The schedule guarantees at least four fault kinds fire (the
/// first launch of every kernel site is rejected, the second sticks, the
/// first completed launch takes an ECC bit flip, the 1LP site additionally
/// hangs once) and the first device allocation is refused; the probabilistic
/// terms add seed-dependent noise on top.  Exits non-zero unless every
/// strategy recovers, every final field matches the serial reference, and
/// every injected fault is enumerated in a RecoveryReport.
int run_fault_storm(const Options& opt, DslashProblem& problem) {
  faultsim::FaultPlan plan;
  plan.seed = opt.fault_seed;
  plan.p_launch_fail = 0.01;
  plan.p_sticky = 0.01;
  plan.schedule.push_back({faultsim::FaultKind::alloc_fail, 0, 1, {}});
  plan.schedule.push_back({faultsim::FaultKind::launch_fail, 0, 1, {}});
  plan.schedule.push_back({faultsim::FaultKind::sticky_fault, 1, 1, {}});
  plan.schedule.push_back({faultsim::FaultKind::bit_flip, 0, 1, {}});
  plan.schedule.push_back({faultsim::FaultKind::hang, 2, 1, "1LP"});
  faultsim::ScopedFaultInjection fi(plan);

  print_header("Fig. 6 ladder under a seeded fault storm (ResilientRunner)", opt,
               problem.sites());
  std::printf("fault seed: %llu\n", static_cast<unsigned long long>(opt.fault_seed));

  ColorField ref(problem.geom(), problem.target_parity());
  dslash_reference(problem.view(), problem.neighbors(), problem.b(), ref);

  ResilientRunner resilient;
  bool ok = true;
  std::size_t enumerated = 0;
  for (Strategy s : all_strategies()) {
    const IndexOrder o = orders_of(s).front();
    const int ls = paper_local_sizes(s, o, problem.sites()).front();
    RunRequest req{.strategy = s, .order = o, .local_size = ls, .variant = Variant::SYCL};

    const RecoveryReport rep = resilient.run(problem, req);
    enumerated += rep.faults_observed();
    const double err = rep.succeeded ? max_abs_diff(problem.c(), ref) : -1.0;
    const bool fields_match = rep.succeeded && err < 1e-7;
    ok &= rep.succeeded && fields_match;

    std::printf("\n%s (requested %s)\n", to_string(s),
                config_label(s, o, ls).c_str());
    std::printf("%s", rep.summary().c_str());
    if (rep.succeeded) {
      std::printf("  verdict: %s  max|c - dslash_ref| = %.3e  %8.1f GF/s\n",
                  fields_match ? "fields match" : "FIELD MISMATCH", err,
                  rep.result.gflops);
    } else {
      std::printf("  verdict: RECOVERY FAILED\n");
    }
  }

  const std::uint64_t injected = fi.injector().injected_total();
  std::printf("\nfault accounting: %llu injected, %zu enumerated in reports\n",
              static_cast<unsigned long long>(injected), enumerated);
  for (const faultsim::FaultEvent& e : fi.injector().log()) {
    std::printf("  %-12s @ %-34s #%llu  %s\n", faultsim::to_string(e.kind),
                e.site.c_str(), static_cast<unsigned long long>(e.occurrence),
                e.detail.c_str());
  }
  ok &= enumerated == injected;
  std::printf("\nfault-storm verdict: %s\n",
              ok ? "all strategies recovered, fields verified"
                 : "RECOVERY FAILURE DETECTED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;

  if (opt.faults) return run_fault_storm(opt, problem);

  if (opt.sanitize) {
    // --sanitize: replay every Fig. 6 configuration under ksan instead of
    // profiling it.  Any race/memcheck/init error fails the run (lints are
    // reported but advisory) — the kernel-zoo smoke test.
    print_header("Fig. 6 ladder under ksan (sanitized replay)", opt, problem.sites());
    bool all_clean = true;
    for (Strategy s : all_strategies()) {
      std::printf("\n%s\n", to_string(s));
      for (IndexOrder o : orders_of(s)) {
        for (int ls : paper_local_sizes(s, o, problem.sites())) {
          all_clean &= print_sanitize_row(runner.sanitize(problem, s, o, ls));
        }
      }
    }
    std::printf("\n3LP-1 SyclCPLX variant\n");
    all_clean &= print_sanitize_row(
        runner.sanitize(problem, Strategy::LP3_1, IndexOrder::kMajor, 96, true));
    std::printf("\nQUDA staggered_dslash_test (recon-18)\n");
    qudaref::StaggeredDslashTest quda(problem);
    all_clean &= print_sanitize_row(quda.sanitize(Reconstruct::k18));
    std::printf("\nksan verdict: %s\n", all_clean ? "all configurations clean"
                                                  : "ERRORS DETECTED");
    return all_clean ? 0 : 1;
  }

  print_header("Fig. 6 — performance of all MILC-Dslash implementations", opt,
               problem.sites());

  CsvSink csv(opt.csv_path);
  ResultChart chart;
  std::map<std::string, double> best_per_strategy;
  double best_overall = 0.0, lp1_best = 0.0;

  // -- the strategy ladder ----------------------------------------------------
  for (Strategy s : all_strategies()) {
    std::printf("\n%s\n", to_string(s));
    for (IndexOrder o : orders_of(s)) {
      for (int ls : paper_local_sizes(s, o, problem.sites())) {
        RunRequest req{.strategy = s, .order = o, .local_size = ls, .variant = Variant::SYCL};
        const RunResult r = run_and_print(runner, problem, req);
        csv.row(r);
        chart.add(r.label, r.gflops);
        best_per_strategy[to_string(s)] = std::max(best_per_strategy[to_string(s)], r.gflops);
        best_overall = std::max(best_overall, r.gflops);
        if (s == Strategy::LP1) lp1_best = std::max(lp1_best, r.gflops);
      }
    }
  }

  // -- the gray-shaded 3LP-1 variant block -------------------------------------
  std::printf("\n3LP-1 additional implementations (gray block of Fig. 6)\n");
  for (Variant v : fig6_variants()) {
    if (v == Variant::SYCL) continue;  // already above
    for (int ls : paper_local_sizes(Strategy::LP3_1, IndexOrder::kMajor, problem.sites())) {
      RunRequest req{.strategy = Strategy::LP3_1,
                     .order = IndexOrder::kMajor,
                     .local_size = ls,
                     .variant = v};
      const RunResult r = run_and_print(runner, problem, req);
      csv.row(r);
      chart.add(r.label, r.gflops);
      best_overall = std::max(best_overall, r.gflops);
      best_per_strategy["3LP-1"] = std::max(best_per_strategy["3LP-1"], r.gflops);
    }
  }

  // -- QUDA reference line -------------------------------------------------------
  std::printf("\nQUDA staggered_dslash_test (reference, recon-18)\n");
  qudaref::StaggeredDslashTest quda(problem);
  const auto q18 = quda.run(Reconstruct::k18);
  std::printf("  %-34s %8.1f GF/s  kernel=%9.1f us  (tuned local=%d)\n",
              "QUDA recon-18 (dashed line)", q18.gflops, q18.kernel_us, q18.local_size);
  chart.set_reference("QUDA 633.7 GF/s line (paper)", q18.gflops);

  std::printf("\n");
  chart.print();

  // -- headline summary (E10) -----------------------------------------------------
  std::printf("\nSummary (paper §V):\n");
  std::printf("  best 3LP-1 vs 1LP speed-up:        %.2fx   (paper: ~2x)\n",
              best_per_strategy["3LP-1"] / lp1_best);
  std::printf("  best 3LP-1 vs QUDA recon-18:      %+.1f%%   (paper: up to +10.2%%)\n",
              100.0 * (best_per_strategy["3LP-1"] / q18.gflops - 1.0));
  std::printf("  peak implementation:               %.1f GF/s\n", best_overall);
  std::printf("  strategy ladder (best per strategy):\n");
  for (Strategy s : all_strategies()) {
    std::printf("    %-7s %8.1f GF/s\n", to_string(s), best_per_strategy[to_string(s)]);
  }
  return 0;
}
