// bench_fig6 — reproduces the paper's Fig. 6 (experiment E1) and the
// headline summary (E10): GFLOP/s of every SYCL MILC-Dslash implementation
// (strategy x index order x local size), the five additional 3LP-1 variants
// (gray-shaded block), and QUDA's staggered_dslash_test as the reference
// line.
#include <map>

#include "bench_common.hpp"
#include "qudaref/staggered_test.hpp"

using namespace milc;
using namespace milc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;

  if (opt.sanitize) {
    // --sanitize: replay every Fig. 6 configuration under ksan instead of
    // profiling it.  Any race/memcheck/init error fails the run (lints are
    // reported but advisory) — the kernel-zoo smoke test.
    print_header("Fig. 6 ladder under ksan (sanitized replay)", opt, problem.sites());
    bool all_clean = true;
    for (Strategy s : all_strategies()) {
      std::printf("\n%s\n", to_string(s));
      for (IndexOrder o : orders_of(s)) {
        for (int ls : paper_local_sizes(s, o, problem.sites())) {
          all_clean &= print_sanitize_row(runner.sanitize(problem, s, o, ls));
        }
      }
    }
    std::printf("\n3LP-1 SyclCPLX variant\n");
    all_clean &= print_sanitize_row(
        runner.sanitize(problem, Strategy::LP3_1, IndexOrder::kMajor, 96, true));
    std::printf("\nQUDA staggered_dslash_test (recon-18)\n");
    qudaref::StaggeredDslashTest quda(problem);
    all_clean &= print_sanitize_row(quda.sanitize(Reconstruct::k18));
    std::printf("\nksan verdict: %s\n", all_clean ? "all configurations clean"
                                                  : "ERRORS DETECTED");
    return all_clean ? 0 : 1;
  }

  print_header("Fig. 6 — performance of all MILC-Dslash implementations", opt,
               problem.sites());

  CsvSink csv(opt.csv_path);
  ResultChart chart;
  std::map<std::string, double> best_per_strategy;
  double best_overall = 0.0, lp1_best = 0.0;

  // -- the strategy ladder ----------------------------------------------------
  for (Strategy s : all_strategies()) {
    std::printf("\n%s\n", to_string(s));
    for (IndexOrder o : orders_of(s)) {
      for (int ls : paper_local_sizes(s, o, problem.sites())) {
        RunRequest req{.strategy = s, .order = o, .local_size = ls, .variant = Variant::SYCL};
        const RunResult r = run_and_print(runner, problem, req);
        csv.row(r);
        chart.add(r.label, r.gflops);
        best_per_strategy[to_string(s)] = std::max(best_per_strategy[to_string(s)], r.gflops);
        best_overall = std::max(best_overall, r.gflops);
        if (s == Strategy::LP1) lp1_best = std::max(lp1_best, r.gflops);
      }
    }
  }

  // -- the gray-shaded 3LP-1 variant block -------------------------------------
  std::printf("\n3LP-1 additional implementations (gray block of Fig. 6)\n");
  for (Variant v : fig6_variants()) {
    if (v == Variant::SYCL) continue;  // already above
    for (int ls : paper_local_sizes(Strategy::LP3_1, IndexOrder::kMajor, problem.sites())) {
      RunRequest req{.strategy = Strategy::LP3_1,
                     .order = IndexOrder::kMajor,
                     .local_size = ls,
                     .variant = v};
      const RunResult r = run_and_print(runner, problem, req);
      csv.row(r);
      chart.add(r.label, r.gflops);
      best_overall = std::max(best_overall, r.gflops);
      best_per_strategy["3LP-1"] = std::max(best_per_strategy["3LP-1"], r.gflops);
    }
  }

  // -- QUDA reference line -------------------------------------------------------
  std::printf("\nQUDA staggered_dslash_test (reference, recon-18)\n");
  qudaref::StaggeredDslashTest quda(problem);
  const auto q18 = quda.run(Reconstruct::k18);
  std::printf("  %-34s %8.1f GF/s  kernel=%9.1f us  (tuned local=%d)\n",
              "QUDA recon-18 (dashed line)", q18.gflops, q18.kernel_us, q18.local_size);
  chart.set_reference("QUDA 633.7 GF/s line (paper)", q18.gflops);

  std::printf("\n");
  chart.print();

  // -- headline summary (E10) -----------------------------------------------------
  std::printf("\nSummary (paper §V):\n");
  std::printf("  best 3LP-1 vs 1LP speed-up:        %.2fx   (paper: ~2x)\n",
              best_per_strategy["3LP-1"] / lp1_best);
  std::printf("  best 3LP-1 vs QUDA recon-18:      %+.1f%%   (paper: up to +10.2%%)\n",
              100.0 * (best_per_strategy["3LP-1"] / q18.gflops - 1.0));
  std::printf("  peak implementation:               %.1f GF/s\n", best_overall);
  std::printf("  strategy ladder (best per strategy):\n");
  for (Strategy s : all_strategies()) {
    std::printf("    %-7s %8.1f GF/s\n", to_string(s), best_per_strategy[to_string(s)]);
  }
  return 0;
}
