// bench_tune — the tuning-cache lifecycle, end to end (docs/TUNING.md).
//
// Phase 1 (cold): install a fresh tune::TuneSession and tune every consumer
// in the stack — DslashRunner::run_tuned, the QUDA-style staggered harness,
// topology-aware grid selection, MultiDeviceRunner::run_tuned and
// SolverService placement pricing — recording every winner into one cache.
//
// Phase 2 (persist): save the cache to disk and reload it; the round trip
// must reproduce the in-memory cache bit-for-bit.
//
// Phase 3 (warm): install the *reloaded* cache and repeat every run.  Each
// consumer must hit, replay the cached decision, and reproduce the cold
// result bit-for-bit — per_iter_us compared by IEEE-754 bits, zero
// candidates re-explored, serve grid scoring skipped entirely.  This is the
// honesty rule made executable: the simulator is deterministic, so any
// inequality means the cache lied (and the verify() path throws
// tune::ReplayMismatch).
//
// Phase 4 (robustness): corrupt, truncated and wrong-schema cache files must
// be rejected with a structured LoadResult; a seeded faultsim cache_fault on
// load must fail the load gracefully so the caller falls back to a cold
// tune whose winners are identical; and a forged cache entry must make the
// warm replay throw ReplayMismatch rather than silently adopt it.
//
// Exit status is nonzero unless every check above passes.
#include "bench_common.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "faultsim/faultsim.hpp"
#include "gpusim/fabric.hpp"
#include "multidev/runner.hpp"
#include "qudaref/staggered_test.hpp"
#include "serve/service.hpp"
#include "tune/explorer.hpp"
#include "tune/session.hpp"
#include "tune/tune_cache.hpp"

using namespace milc;
using namespace milc::bench;

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  std::printf("  %-58s %s\n", what, ok ? "ok" : "FAIL");
  if (!ok) ++failures;
}

bool same_bits(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof a);
  std::memcpy(&bb, &b, sizeof b);
  return ba == bb;
}

/// Everything one cold (or warm) pass measures, for bit-for-bit comparison.
struct PassResult {
  TunedRunResult lp1;
  TunedRunResult lp31;
  qudaref::StaggeredResult st18;
  qudaref::StaggeredResult st12;
  multidev::PartitionGrid grid;
  multidev::MultiDevTunedResult md;
  std::vector<serve::SolverService::Placement> placements;
  serve::SolverService::PricingStats pricing;
};

std::vector<serve::ProblemSpec> make_catalog() {
  std::vector<serve::ProblemSpec> catalog(2);
  catalog[0] = {"small-4x4x4x8", Coords{4, 4, 4, 8}, 31, 0.5, 1e-6, 250, 8};
  catalog[1] = {"tall-4x4x4x16", Coords{4, 4, 4, 16}, 31, 0.5, 1e-6, 250, 8};
  return catalog;
}

/// One full pass over every cache consumer.  A tune::TuneSession must be
/// installed by the caller; whether the pass is cold or warm is purely a
/// property of the installed cache's contents.
PassResult run_pass(const Options& opt) {
  PassResult p;
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;
  p.lp1 = runner.run_tuned(problem, Strategy::LP1);
  p.lp31 = runner.run_tuned(problem, Strategy::LP3_1);

  qudaref::StaggeredDslashTest quda(problem);
  p.st18 = quda.run(Reconstruct::k18);
  p.st12 = quda.run(Reconstruct::k12);

  const gpusim::NodeTopology topo = gpusim::cluster(2, 2);
  p.grid = multidev::choose_grid(problem.geom(), topo);

  multidev::MultiDevRequest mreq;
  mreq.grid = p.grid;
  mreq.req = RunRequest{.strategy = Strategy::LP3_1, .order = IndexOrder::kMajor,
                        .local_size = 768, .variant = Variant::SYCL};
  mreq.topo = topo;
  multidev::MultiDeviceRunner md_runner;
  p.md = md_runner.run_tuned(problem, mreq);

  serve::ServiceConfig scfg;
  scfg.cluster = {2, 2};
  serve::SolverService svc(make_catalog(), scfg);
  for (std::size_t s = 0; s < make_catalog().size(); ++s)
    for (const auto& pl : svc.placements(static_cast<int>(s))) p.placements.push_back(pl);
  p.pricing = svc.pricing_stats();
  return p;
}

bool same_placements(const std::vector<serve::SolverService::Placement>& a,
                     const std::vector<serve::SolverService::Placement>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].devices != b[i].devices || a[i].grid.label() != b[i].grid.label() ||
        !same_bits(a[i].per_iter_us, b[i].per_iter_us))
      return false;
  }
  return true;
}

void write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
}

std::string read_file(const std::string& path) {
  std::string out;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem header_problem(opt.L, opt.seed);
  print_header("Tuning-cache lifecycle: cold -> persist -> warm (docs/TUNING.md)", opt,
               header_problem.sites());
  const std::string path =
      opt.tune_cache_path.empty() ? "bench_tune_cache.json" : opt.tune_cache_path;
  const tune::Provenance prov{"bench_tune", opt.seed, opt.stamp};

  // --- phase 1: cold tune every consumer ----------------------------------
  std::printf("\n-- phase 1: cold tune --\n");
  PassResult cold;
  tune::TuneCache tuned;
  tune::TuneStats cold_stats;
  {
    tune::ScopedTuneSession scoped({}, prov);
    cold = run_pass(opt);
    tuned = scoped.session().cache();
    cold_stats = scoped.session().stats();
  }
  check(!cold.lp1.from_cache && !cold.lp31.from_cache, "cold runs explored (no cache hits)");
  check(cold_stats.stores >= 7, "every consumer recorded an entry");
  check(cold_stats.candidates_explored > cold_stats.stores,
        "cold exploration priced more candidates than winners");
  check(cold.pricing.cache_misses > 0 && cold.pricing.cache_hits == 0,
        "serve pricing was cold (misses only)");
  check(cold.pricing.grids_scored > 0, "serve pricing scored candidate grids");
  std::printf("  recorded %zu entries (%llu candidates priced)\n", tuned.size(),
              static_cast<unsigned long long>(cold_stats.candidates_explored));

  // --- phase 2: persist and reload -----------------------------------------
  std::printf("\n-- phase 2: persist -> reload --\n");
  std::string err;
  check(tuned.save(path, &err), "cache saved");
  tune::TuneCache reloaded;
  const tune::TuneCache::LoadResult res = reloaded.load(path);
  check(res.ok(), "cache reloaded");
  check(reloaded == tuned, "round trip is bit-for-bit (per_iter_us by IEEE bits)");

  // --- phase 3: warm-start every consumer ----------------------------------
  std::printf("\n-- phase 3: warm start from %s --\n", path.c_str());
  PassResult warm;
  tune::TuneStats warm_stats;
  {
    tune::ScopedTuneSession scoped(reloaded, prov);
    warm = run_pass(opt);
    warm_stats = scoped.session().stats();
  }
  check(warm.lp1.from_cache && warm.lp31.from_cache, "dslash runs replayed from cache");
  check(warm.lp1.entry == cold.lp1.entry && warm.lp31.entry == cold.lp31.entry,
        "dslash entries identical cold vs warm");
  check(same_bits(warm.lp1.result.per_iter_us, cold.lp1.result.per_iter_us) &&
            same_bits(warm.lp31.result.per_iter_us, cold.lp31.result.per_iter_us),
        "dslash replay times bit-for-bit");
  check(warm.st18.local_size == cold.st18.local_size &&
            warm.st12.local_size == cold.st12.local_size &&
            same_bits(warm.st18.kernel_us, cold.st18.kernel_us) &&
            same_bits(warm.st12.kernel_us, cold.st12.kernel_us),
        "staggered (QUDA-style) replay bit-for-bit");
  check(warm.grid.label() == cold.grid.label(), "choose_grid replayed the cached grid");
  check(warm.md.from_cache && warm.md.entry == cold.md.entry &&
            same_bits(warm.md.result.per_iter_us, cold.md.result.per_iter_us),
        "multi-device replay bit-for-bit");
  check(warm_stats.candidates_explored == 0, "warm start re-explored zero candidates");
  check(warm_stats.replays_verified > 0, "every warm hit re-priced and verified");
  check(warm.pricing.cache_hits > 0 && warm.pricing.grids_scored == 0,
        "serve warm pricing skipped grid scoring entirely");
  check(warm.pricing.placements_priced == cold.pricing.placements_priced,
        "serve priced the same placement set");
  check(same_placements(warm.placements, cold.placements),
        "serve placements identical cold vs warm (times by bits)");
  std::printf("  warm pricing: %d placements, %d grid scorings (cold: %d), %d cache hits\n",
              warm.pricing.placements_priced, warm.pricing.grids_scored,
              cold.pricing.grids_scored, warm.pricing.cache_hits);

  // --- phase 4: robustness --------------------------------------------------
  std::printf("\n-- phase 4: malformed caches and injected faults --\n");
  const std::string good = read_file(path);

  write_file(path + ".corrupt", "this is not { json");
  tune::TuneCache c1;
  const auto r1 = c1.load(path + ".corrupt");
  check(r1.status == tune::TuneCache::LoadStatus::parse_error && !r1.diagnostic.empty(),
        "corrupt file rejected with parse_error + diagnostic");

  write_file(path + ".trunc", good.substr(0, good.size() / 2));
  tune::TuneCache c2;
  const auto r2 = c2.load(path + ".trunc");
  check(!r2.ok() && !r2.diagnostic.empty(), "truncated file rejected with diagnostic");

  std::string wrong = good;
  const std::string vkey = "\"schema_version\": 1";
  if (const auto pos = wrong.find(vkey); pos != std::string::npos)
    wrong.replace(pos, vkey.size(), "\"schema_version\": 999");
  write_file(path + ".schema", wrong);
  tune::TuneCache c3;
  const auto r3 = c3.load(path + ".schema");
  check(r3.status == tune::TuneCache::LoadStatus::schema_mismatch,
        "future schema_version rejected with schema_mismatch");

  {
    faultsim::FaultPlan plan;
    plan.seed = opt.fault_seed;
    plan.p_cache_fault = 1.0;
    faultsim::ScopedFaultInjection inj(plan);
    tune::TuneCache c4;
    const auto r4 = c4.load(path);
    check(r4.status == tune::TuneCache::LoadStatus::injected_fault,
          "seeded cache_fault surfaces as injected_fault");
  }
  // Fallback contract: the failed load leaves the caller cold-tuning, and the
  // cold tune is deterministic — its winners equal the persisted ones.
  {
    tune::ScopedTuneSession scoped({}, prov);
    DslashProblem problem(opt.L, opt.seed);
    DslashRunner runner;
    const TunedRunResult again = runner.run_tuned(problem, Strategy::LP3_1);
    check(!again.from_cache && again.entry == cold.lp31.entry,
          "cold-tune fallback reproduces the persisted winner");
  }

  // Forged entry: flip the stored time's low mantissa bit; the warm replay
  // must refuse it loudly.
  {
    tune::TuneCache forged = reloaded;
    DslashProblem problem(opt.L, opt.seed);
    DslashRunner runner;
    const tune::TuneKey key = runner.tune_key(problem, Strategy::LP1);
    const tune::TuneEntry* e = forged.find(key);
    check(e != nullptr, "forged-entry setup: key present");
    if (e != nullptr) {
      tune::TuneEntry tampered = *e;
      std::uint64_t bits = 0;
      std::memcpy(&bits, &tampered.per_iter_us, sizeof bits);
      bits ^= 1;
      std::memcpy(&tampered.per_iter_us, &bits, sizeof bits);
      forged.put(key, tampered);
      tune::ScopedTuneSession scoped(forged, prov);
      bool threw = false;
      try {
        (void)runner.run_tuned(problem, Strategy::LP1);
      } catch (const tune::ReplayMismatch&) {
        threw = true;
      }
      check(threw, "forged per_iter_us bits raise ReplayMismatch");
    }
  }

  JsonSink json(opt.json_path, "bench_tune");
  for (const auto& [key, entry] : tuned.entries()) json.tune_row(key, entry);
  json.meta("entries", static_cast<std::int64_t>(tuned.size()));
  json.meta("cold_candidates_explored", cold_stats.candidates_explored);
  json.meta("warm_candidates_explored", warm_stats.candidates_explored);
  json.meta("cold_grids_scored", static_cast<std::int64_t>(cold.pricing.grids_scored));
  json.meta("warm_grids_scored", static_cast<std::int64_t>(warm.pricing.grids_scored));

  std::printf("\n%s (%d failure%s)\n", failures == 0 ? "ALL CHECKS PASSED" : "FAILED",
              failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}
