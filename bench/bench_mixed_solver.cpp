// bench_mixed_solver — extension X1b: simulated time-to-solution of the
// even/odd CG inverter in pure double precision versus mixed precision
// (float inner solves + double reliable updates).  Combines *real* iteration
// counts from the actual solvers with *simulated* per-kernel durations from
// the device model — the product QUDA's mixed-precision solvers optimise.
#include "bench_common.hpp"
#include "core/precision.hpp"
#include "core/solver.hpp"

using namespace milc;
using namespace milc::bench;

namespace {

/// Inner float CG on the normal operator; returns iterations used.
int float_cg(const LatticeGeom& geom, const FloatDslash& feo, const FloatDslash& foe,
             double m2, const FloatColorField& rhs, FloatColorField& x, double rel_tol,
             int max_iter) {
  FloatColorField r = rhs, p = rhs, Ap(geom, Parity::Even), t(geom, Parity::Odd);
  x.zero();
  double rr = norm2(r);
  const double target = rel_tol * rel_tol * norm2(rhs);
  int it = 0;
  for (; it < max_iter && rr > target; ++it) {
    foe.apply(p, t);
    feo.apply(t, Ap);
    for (std::int64_t s = 0; s < Ap.size(); ++s) {
      for (int c = 0; c < kColors; ++c) {
        Ap[s].c[c].re = static_cast<float>(m2) * p[s].c[c].re - Ap[s].c[c].re;
        Ap[s].c[c].im = static_cast<float>(m2) * p[s].c[c].im - Ap[s].c[c].im;
      }
    }
    const double alpha = rr / dot(p, Ap).re;
    axpy(alpha, p, x);
    axpy(-alpha, Ap, r);
    const double rr_new = norm2(r);
    xpay(r, rr_new / rr, p);
    rr = rr_new;
  }
  return it;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_options(argc, argv);
  if (opt.L > 12) opt.L = 8;  // solver iterations dominate; small L suffices
  const double mass = 0.1, tol = 1e-10;
  print_header("Mixed-precision solver: simulated time-to-solution (X1b)", opt, 0);

  LatticeGeom geom(opt.L);
  GaugeConfiguration cfg(geom);
  cfg.fill_random(opt.seed);
  StaggeredOperator op(geom, cfg, mass);

  ColorField b(geom, Parity::Even), x(geom, Parity::Even);
  b.fill_random(opt.seed + 1);

  // -- per-application simulated kernel costs (both parities ~ equal) --------
  DslashProblem probe(opt.L, opt.seed);
  DslashRunner runner;
  RunRequest req{.strategy = Strategy::LP3_1, .order = IndexOrder::kMajor, .local_size = 96,
                 .variant = Variant::SYCL};
  const double dslash_double_us = runner.run(probe, req).kernel_us;
  FloatDslash fprobe(probe.device_gauge(), probe.neighbors());
  FloatColorField fin(probe.b()), fout(probe.geom(), probe.target_parity());
  const double dslash_float_us = fprobe.profile(fin, fout, 96).duration_us;

  // -- pure double CG ----------------------------------------------------------
  x.zero();
  CgOptions copts;
  copts.rel_tol = tol;
  const CgResult rd = cg_solve(op, b, x, copts);
  const double t_double = 2.0 * rd.iterations * dslash_double_us;

  // -- mixed precision: float inner solves + double corrections ---------------
  GaugeView ve(geom, cfg, Parity::Even), vo(geom, cfg, Parity::Odd);
  NeighborTable ne(geom, Parity::Even), no(geom, Parity::Odd);
  DeviceGaugeLayout ge(ve), go(vo);
  FloatDslash feo(ge, ne), foe(go, no);

  ColorField xm(geom, Parity::Even), r(geom, Parity::Even), Ax(geom, Parity::Even);
  xm.zero();
  const double b2 = norm2(b);
  int outer = 0, inner_total = 0;
  double rel = 1.0;
  for (; outer < 50; ++outer) {
    op.apply_normal(xm, Ax);
    r = b;
    axpy(-1.0, Ax, r);
    rel = std::sqrt(norm2(r) / b2);
    if (rel < tol) break;
    FloatColorField rf(r), ef(geom, Parity::Even);
    inner_total += float_cg(geom, feo, foe, mass * mass, rf, ef, 1e-5, 2000);
    const ColorField e = ef.to_double(geom);
    axpy(1.0, e, xm);
  }
  const double t_mixed =
      2.0 * inner_total * dslash_float_us + 2.0 * outer * dslash_double_us;

  std::printf("\nkernel costs (simulated, L=%d, 3LP-1/96): double %.1f us, float %.1f us "
              "(x%.2f)\n",
              opt.L, dslash_double_us, dslash_float_us, dslash_double_us / dslash_float_us);
  std::printf("\n%-28s %12s %12s %16s\n", "solver", "Dslash calls", "final res",
              "sim time (ms)");
  std::printf("%-28s %12d %12.1e %16.2f\n", "double CG", 2 * rd.iterations,
              rd.true_relative_residual, t_double / 1e3);
  std::printf("%-28s %12d %12.1e %16.2f   (x%.2f)\n", "mixed (float inner)",
              2 * inner_total + 2 * outer, rel, t_mixed / 1e3, t_double / t_mixed);
  const double call_inflation =
      static_cast<double>(2 * inner_total + 2 * outer) / (2.0 * rd.iterations);
  std::printf("\nreading: mixed precision pays off when the float kernel speed-up\n"
              "(x%.2f here) beats the extra iterations float convergence costs\n"
              "(x%.2f more Dslash calls here).  At this lattice size the kernel is\n"
              "partly latency-bound so the speed-up is modest; at L=32 the float\n"
              "kernel approaches the bandwidth-limited 2x and the trade flips —\n"
              "exactly why QUDA gates mixed precision behind its autotuner.\n",
              dslash_double_us / dslash_float_us, call_inflation);
  return 0;
}
