// bench_scaling — strong and weak multi-device scaling of the best SYCL
// Dslash (3LP-1 k-major /768) under the halo-exchange runner.
//
// Strong scaling: the L^4 lattice of bench_fig6 is split across 1, 2, 4
// and 8 simulated A100s (t split first, then z, then y — the splits with
// the smallest surface-to-volume ratio at these shapes).  The 1-device row
// is *exactly* bench_fig6's "3LP-1 k-major /768" SYCL row: the runner
// delegates a 1x1x1x1 grid to DslashRunner, and this bench asserts the
// equality.  Weak scaling: every device keeps an L x L x L x L/2 block and
// the lattice grows along t with the device count.
//
// Every grid is also self-verified bit-for-bit: the gathered multi-device
// functional output must equal the single-device functional output of the
// same strategy with max|diff| == 0.0, or the bench exits non-zero.
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "multidev/runner.hpp"

using namespace milc;
using namespace milc::bench;
using namespace milc::multidev;

namespace {

/// The partition grid used for n devices in the strong-scaling sweep.
PartitionGrid strong_grid(int n) {
  switch (n) {
    case 1: return PartitionGrid{};
    case 2: return PartitionGrid::along(3, 2);
    case 4: return PartitionGrid{.devices = {1, 1, 2, 2}};
    case 8: return PartitionGrid{.devices = {1, 2, 2, 2}};
    default: std::fprintf(stderr, "unsupported device count %d\n", n); std::exit(2);
  }
}

/// Bit-for-bit self-check: multi-device functional output vs the
/// single-device functional output of the same kernel configuration.
double verify_exact(const Coords& dims, std::uint64_t seed, const PartitionGrid& grid,
                    const RunRequest& req) {
  const DslashRunner single;
  const MultiDeviceRunner multi;
  DslashProblem problem(dims, seed);
  single.run_functional(problem, req.strategy, req.order, req.local_size);
  const ColorField expected = problem.c();
  problem.c().zero();
  multi.run_functional(problem, grid, req.strategy, req.order, req.local_size);
  return max_abs_diff(expected, problem.c());
}

struct ScalingRow {
  const char* kind;  ///< "strong" | "weak"
  MultiDevResult res;
  double speedup;     ///< vs the 1-device row of the same sweep
  double efficiency;  ///< speedup / devices (strong), throughput ratio (weak)
  double diff;        ///< verification max|multi - single|, must be 0.0
};

void print_row(const ScalingRow& r) {
  std::printf("  %-28s %d dev  %9.1f GF/s  speedup %5.2fx  eff %5.1f%%  overlap %5.1f%%  "
              "comm %4.1f%%  surface %4.1f%%  verify %s\n",
              r.res.label.c_str(), r.res.devices, r.res.gflops, r.speedup,
              100.0 * r.efficiency, 100.0 * r.res.overlap_efficiency,
              100.0 * r.res.comm_fraction, 100.0 * r.res.surface_fraction,
              r.diff == 0.0 ? "exact" : "MISMATCH");
}

void emit(JsonSink& json, std::FILE* csv, const ScalingRow& r) {
  json.begin_row();
  json.field("kind", std::string(r.kind));
  json.field("label", r.res.label);
  json.field("devices", static_cast<std::int64_t>(r.res.devices));
  json.field("gflops", r.res.gflops);
  json.field("per_iter_us", r.res.per_iter_us);
  json.field("speedup", r.speedup);
  json.field("efficiency", r.efficiency);
  json.field("overlap_efficiency", r.res.overlap_efficiency);
  json.field("comm_fraction", r.res.comm_fraction);
  json.field("surface_fraction", r.res.surface_fraction);
  json.field("halo_bytes", r.res.halo_bytes);
  json.field("max_abs_diff", r.diff);
  json.end_row();
  if (csv != nullptr) {
    std::fprintf(csv, "\"%s\",%s,%d,%.3f,%.3f,%.4f,%.4f,%.4f,%.4f,%.4f,%lld,%.17g\n",
                 r.res.label.c_str(), r.kind, r.res.devices, r.res.gflops, r.res.per_iter_us,
                 r.speedup, r.efficiency, r.res.overlap_efficiency, r.res.comm_fraction,
                 r.res.surface_fraction, static_cast<long long>(r.res.halo_bytes), r.diff);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  int max_devices = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-devices") == 0 && i + 1 < argc) {
      max_devices = std::atoi(argv[i + 1]);
    }
  }

  const RunRequest req{.strategy = Strategy::LP3_1,
                       .order = IndexOrder::kMajor,
                       .local_size = 768,
                       .variant = Variant::SYCL};
  const DslashRunner single;
  const MultiDeviceRunner multi;

  DslashProblem p0(opt.L, opt.seed);
  print_header("Multi-device scaling — 3LP-1 k-major /768 with halo exchange", opt,
               p0.sites());
  std::printf("fabric: DGX-A100 link model (NVLink 300 GB/s, 1.9 us; PCIe fallback)\n");

  JsonSink json(opt.json_path, "scaling");
  std::FILE* csv = nullptr;
  if (!opt.csv_path.empty()) {
    csv = std::fopen(opt.csv_path.c_str(), "w");
    if (csv != nullptr) {
      std::fprintf(csv,
                   "label,kind,devices,gflops,per_iter_us,speedup,efficiency,"
                   "overlap_efficiency,comm_fraction,surface_fraction,halo_bytes,"
                   "max_abs_diff\n");
    }
  }

  std::vector<int> counts;
  for (const int n : {1, 2, 4, 8}) {
    if (n <= max_devices) counts.push_back(n);
  }
  bool ok = true;

  // -- strong scaling: fixed L^4, more devices -------------------------------
  std::printf("\nStrong scaling (fixed L=%d lattice)\n", opt.L);
  const RunResult fig6 = single.run(p0, req);  // the bench_fig6 row
  double strong_base = 0.0;
  for (const int n : counts) {
    // The n = 1 run reuses p0: simulated stats are a function of the
    // problem's actual buffer addresses, so reproducing the bench_fig6 row
    // exactly requires the same problem instance, not just the same seed.
    DslashProblem problem_n(opt.L, opt.seed);
    DslashProblem& problem = n == 1 ? p0 : problem_n;
    MultiDevRequest mreq;
    mreq.grid = strong_grid(n);
    mreq.req = req;
    const MultiDevResult res = multi.run(problem, mreq);
    if (n == 1) {
      strong_base = res.gflops;
      const bool same = res.gflops == fig6.gflops && res.per_iter_us == fig6.per_iter_us;
      std::printf("  1-device row vs bench_fig6 \"%s\": %s\n", fig6.label.c_str(),
                  same ? "identical" : "DIFFERS");
      ok &= same;
    }
    ScalingRow row{.kind = "strong",
                   .res = res,
                   .speedup = strong_base > 0.0 ? res.gflops / strong_base : 1.0,
                   .efficiency = strong_base > 0.0 ? res.gflops / strong_base / n : 1.0,
                   .diff = verify_exact(Coords{opt.L, opt.L, opt.L, opt.L}, opt.seed,
                                        mreq.grid, req)};
    ok &= row.diff == 0.0;
    print_row(row);
    emit(json, csv, row);
  }

  // -- weak scaling: fixed L x L x L x L/2 block per device ------------------
  std::printf("\nWeak scaling (L x L x L x %d block per device, lattice grows along t)\n",
              opt.L / 2);
  double weak_base = 0.0;
  for (const int n : counts) {
    const Coords dims{opt.L, opt.L, opt.L, opt.L / 2 * n};
    DslashProblem problem(dims, opt.seed);
    MultiDevRequest mreq;
    mreq.grid = PartitionGrid::along(3, n);
    mreq.req = req;
    const MultiDevResult res = multi.run(problem, mreq);
    if (n == 1) weak_base = res.gflops;
    ScalingRow row{.kind = "weak",
                   .res = res,
                   .speedup = weak_base > 0.0 ? res.gflops / weak_base : 1.0,
                   .efficiency = weak_base > 0.0 ? res.gflops / weak_base / n : 1.0,
                   .diff = verify_exact(dims, opt.seed, mreq.grid, req)};
    ok &= row.diff == 0.0;
    print_row(row);
    emit(json, csv, row);
  }

  if (csv != nullptr) std::fclose(csv);
  std::printf("\nscaling verdict: %s\n",
              ok ? "all grids bit-for-bit exact, 1-device row reproduces bench_fig6"
                 : "EXACTNESS FAILURE");
  return ok ? 0 : 1;
}
