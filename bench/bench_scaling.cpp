// bench_scaling — strong and weak multi-device scaling of the best SYCL
// Dslash (3LP-1 k-major /768) under the halo-exchange runner.
//
// Strong scaling: the L^4 lattice of bench_fig6 is split across 1, 2, 4
// and 8 simulated A100s (t split first, then z, then y — the splits with
// the smallest surface-to-volume ratio at these shapes).  The 1-device row
// is *exactly* bench_fig6's "3LP-1 k-major /768" SYCL row: the runner
// delegates a 1x1x1x1 grid to DslashRunner, and this bench asserts the
// equality.  Weak scaling: every device keeps an L x L x L x L/2 block and
// the lattice grows along t with the device count.
//
// Every grid is also self-verified bit-for-bit: the gathered multi-device
// functional output must equal the single-device functional output of the
// same strategy with max|diff| == 0.0, or the bench exits non-zero.
// Multi-node mode (--nodes N): the same strong/weak sweeps priced over the
// two-level interconnect — N node groups of NVLink devices joined by an
// InfiniBand-like fabric (gpusim::cluster).  The partition grid comes from
// the topology-aware choose_grid, every row separates intra-node (NVLink)
// from inter-node (fabric) bytes and wire time, and every grid is verified
// bit-for-bit against BOTH the single-device functional output and the same
// grid run on a single NVLink island — placement must never change results.
//
// Chaos mode (--faults <seed>): instead of the scaling sweeps, the bench
// runs seeded fault storms against the hardened multi-device path — link
// storms on the 2- and 4-device grids, a scheduled all-kinds scenario
// (drop + corrupt + delay + device loss in one run), and a sharded-CG solve
// with a mid-solve device loss.  With --nodes 2 two fabric scenarios join
// the storm: a link storm over the 2x2 cluster (faults hit the aggregated
// fabric wires) and a scheduled node loss (both devices of node n1 die at
// once; the runner must fail over below the survivor count).  Every
// scenario must recover with output bit-for-bit equal to the fault-free run
// and every injected fault enumerated in the report, or the bench exits
// non-zero.  The JSON document carries the fault seed and a recovery
// summary under "meta".
#include <cmath>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "faultsim/faultsim.hpp"
#include "gpusim/fabric.hpp"
#include "multidev/partition.hpp"
#include "multidev/runner.hpp"
#include "multidev/sharded_cg.hpp"

using namespace milc;
using namespace milc::bench;
using namespace milc::multidev;

namespace {

/// The partition grid used for n devices in the strong-scaling sweep.
PartitionGrid strong_grid(int n) {
  switch (n) {
    case 1: return PartitionGrid{};
    case 2: return PartitionGrid::along(3, 2);
    case 4: return PartitionGrid{.devices = {1, 1, 2, 2}};
    case 8: return PartitionGrid{.devices = {1, 2, 2, 2}};
    default: std::fprintf(stderr, "unsupported device count %d\n", n); std::exit(2);
  }
}

/// Bit-for-bit self-check: multi-device functional output vs the
/// single-device functional output of the same kernel configuration.
double verify_exact(const Coords& dims, std::uint64_t seed, const PartitionGrid& grid,
                    const RunRequest& req) {
  const DslashRunner single;
  const MultiDeviceRunner multi;
  DslashProblem problem(dims, seed);
  single.run_functional(problem, req.strategy, req.order, req.local_size);
  const ColorField expected = problem.c();
  problem.c().zero();
  multi.run_functional(problem, grid, req.strategy, req.order, req.local_size);
  return max_abs_diff(expected, problem.c());
}

struct ScalingRow {
  const char* kind;  ///< "strong" | "weak"
  MultiDevResult res;
  double speedup;     ///< vs the 1-device row of the same sweep
  double efficiency;  ///< speedup / devices (strong), throughput ratio (weak)
  double diff;        ///< verification max|multi - single|, must be 0.0
};

void print_row(const ScalingRow& r) {
  std::printf("  %-28s %d dev  %9.1f GF/s  speedup %5.2fx  eff %5.1f%%  overlap %5.1f%%  "
              "comm %4.1f%%  surface %4.1f%%  verify %s\n",
              r.res.label.c_str(), r.res.devices, r.res.gflops, r.speedup,
              100.0 * r.efficiency, 100.0 * r.res.overlap_efficiency,
              100.0 * r.res.comm_fraction, 100.0 * r.res.surface_fraction,
              r.diff == 0.0 ? "exact" : "MISMATCH");
}

void emit(JsonSink& json, std::FILE* csv, const ScalingRow& r) {
  json.begin_row();
  json.field("kind", std::string(r.kind));
  json.field("label", r.res.label);
  json.field("devices", static_cast<std::int64_t>(r.res.devices));
  json.field("gflops", r.res.gflops);
  json.field("per_iter_us", r.res.per_iter_us);
  json.field("speedup", r.speedup);
  json.field("efficiency", r.efficiency);
  json.field("overlap_efficiency", r.res.overlap_efficiency);
  json.field("comm_fraction", r.res.comm_fraction);
  json.field("surface_fraction", r.res.surface_fraction);
  json.field("halo_bytes", r.res.halo_bytes);
  json.field("max_abs_diff", r.diff);
  json.end_row();
  if (csv != nullptr) {
    std::fprintf(csv, "\"%s\",%s,%d,%.3f,%.3f,%.4f,%.4f,%.4f,%.4f,%.4f,%lld,%.17g\n",
                 r.res.label.c_str(), r.kind, r.res.devices, r.res.gflops, r.res.per_iter_us,
                 r.speedup, r.efficiency, r.res.overlap_efficiency, r.res.comm_fraction,
                 r.res.surface_fraction, static_cast<long long>(r.res.halo_bytes), r.diff);
  }
}

// ---------------------------------------------------------------------------
// Chaos mode
// ---------------------------------------------------------------------------

/// One grid-level chaos scenario: a fault plan against the hardened runner.
struct ChaosOutcome {
  bool ok = true;
  MultiDevResult res;
  double diff = 0.0;
};

void print_faults(const std::vector<faultsim::FaultEvent>& faults) {
  for (const faultsim::FaultEvent& ev : faults) {
    std::printf("      [%-12s] %s occurrence %llu: %s\n", faultsim::to_string(ev.kind),
                ev.site.c_str(), static_cast<unsigned long long>(ev.occurrence),
                ev.detail.c_str());
  }
}

ChaosOutcome run_chaos_grid(const char* name, const Options& opt, const PartitionGrid& grid,
                            const faultsim::FaultPlan& plan, const RunRequest& req,
                            JsonSink& json,
                            const gpusim::NodeTopology& topo = gpusim::NodeTopology{}) {
  // Fault-free expectation first (no injector installed).
  const DslashRunner single;
  DslashProblem clean(opt.L, opt.seed);
  single.run_functional(clean, req.strategy, req.order, req.local_size);

  DslashProblem problem(opt.L, opt.seed);
  const MultiDeviceRunner multi;
  MultiDevRequest mreq;
  mreq.grid = grid;
  mreq.req = req;
  mreq.topo = topo;
  ChaosOutcome out;
  {
    faultsim::ScopedFaultInjection fi(plan);
    out.res = multi.run(problem, mreq);
  }
  out.diff = max_abs_diff(clean.c(), problem.c());
  out.ok = out.res.recovered && out.diff == 0.0 && !out.res.faults.empty();

  const ExchangeReport& xr = out.res.exchange;
  std::printf("  %-22s %d dev -> %-10s faults %3zu  drops %2d corrupt %2d delay %2d  "
              "retrans %2d rounds %d  failovers %zu  %s\n",
              name, grid.total(), out.res.final_grid.label().c_str(), out.res.faults.size(),
              xr.drops, xr.corruptions, xr.delays, xr.retransmissions, xr.rounds,
              out.res.failovers.size(),
              out.ok ? (out.diff == 0.0 ? "recovered exact" : "recovered")
                     : "NOT RECOVERED");
  print_faults(out.res.faults);

  json.begin_row();
  json.field("scenario", std::string(name));
  json.field("devices", static_cast<std::int64_t>(grid.total()));
  json.field("nodes", static_cast<std::int64_t>(out.res.nodes));
  json.field("final_grid", out.res.final_grid.label());
  json.field("recovered", static_cast<std::int64_t>(out.res.recovered ? 1 : 0));
  json.field("max_abs_diff", out.diff);
  json.field("faults", static_cast<std::int64_t>(out.res.faults.size()));
  json.field("drops", static_cast<std::int64_t>(xr.drops));
  json.field("corruptions", static_cast<std::int64_t>(xr.corruptions));
  json.field("delays", static_cast<std::int64_t>(xr.delays));
  json.field("retransmissions", static_cast<std::int64_t>(xr.retransmissions));
  json.field("rounds", static_cast<std::int64_t>(xr.rounds));
  json.field("failovers", static_cast<std::int64_t>(out.res.failovers.size()));
  json.field("recovery_us", out.res.recovery_us);
  json.field("spares_consumed", static_cast<std::int64_t>(out.res.spares_consumed));
  json.field("rejoins", static_cast<std::int64_t>(out.res.rejoins));
  json.field("capacity_restored", static_cast<std::int64_t>(out.res.capacity_restored));
  json.field("rereplicated_bytes", out.res.rereplicated_bytes);
  json.field("rereplication_us", out.res.rereplication_us);
  json.end_row();
  return out;
}

int run_chaos(const Options& opt, int max_devices, const RunRequest& req) {
  std::printf("\nChaos mode: seeded fault storms against the hardened multi-device path\n");
  std::printf("fault seed %llu; every scenario must recover bit-for-bit\n\n",
              static_cast<unsigned long long>(opt.fault_seed));
  JsonSink json(opt.json_path, "scaling-chaos");
  bool ok = true;
  int scenarios = 0;

  // -- seeded link storms on the 2- and 4-device grids -----------------------
  for (const int n : {2, 4}) {
    if (n > max_devices) continue;
    faultsim::FaultPlan plan;
    plan.seed = opt.fault_seed;
    plan.p_msg_drop = 0.25;
    plan.p_msg_corrupt = 0.25;
    plan.p_msg_delay = 0.25;
    const char* name = n == 2 ? "link-storm-2dev" : "link-storm-4dev";
    ok &= run_chaos_grid(name, opt, strong_grid(n), plan, req, json).ok;
    ++scenarios;
  }

  // -- every fault kind in one scheduled run ---------------------------------
  // The loss of device r3 fails the 4-device grid over to its fallback; the
  // message faults are pinned to the r0<->r1 link, which survives the
  // re-partition, so all four kinds provably fire in a single recovered run.
  if (max_devices >= 4) {
    faultsim::FaultPlan plan;
    plan.seed = opt.fault_seed;
    using faultsim::FaultKind;
    using faultsim::ScheduledFault;
    plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 0, 1, "device r3"});
    plan.schedule.push_back(ScheduledFault{FaultKind::msg_drop, 0, 1, "halo-exchange r0->r1"});
    plan.schedule.push_back(
        ScheduledFault{FaultKind::msg_corrupt, 1, 1, "halo-exchange r0->r1"});
    plan.schedule.push_back(ScheduledFault{FaultKind::msg_delay, 0, 1, "halo-exchange r1->r0"});
    const ChaosOutcome out =
        run_chaos_grid("all-kinds-4dev", opt, strong_grid(4), plan, req, json);
    ok &= out.ok;
    bool drop = false, corrupt = false, delay = false, loss = false;
    for (const faultsim::FaultEvent& ev : out.res.faults) {
      drop |= ev.kind == faultsim::FaultKind::msg_drop;
      corrupt |= ev.kind == faultsim::FaultKind::msg_corrupt;
      delay |= ev.kind == faultsim::FaultKind::msg_delay;
      loss |= ev.kind == faultsim::FaultKind::device_loss;
    }
    if (!(drop && corrupt && delay && loss)) {
      std::printf("  all-kinds-4dev: a scheduled fault kind did not fire\n");
      ok = false;
    }
    ++scenarios;
  }

  // -- fabric-tier scenarios (--nodes 2) -------------------------------------
  // The same storms must recover when the four devices live in two node
  // groups: the message faults now also hit the aggregated fabric wires
  // ("fabric-exchange ... n0->n1" sites), and a scheduled node loss takes
  // both devices of n1 at once, forcing a failover below the survivor count.
  if (opt.nodes >= 2 && max_devices >= 4) {
    const gpusim::NodeTopology topo = gpusim::cluster(2, 2);
    {
      faultsim::FaultPlan plan;
      plan.seed = opt.fault_seed;
      plan.p_msg_drop = 0.25;
      plan.p_msg_corrupt = 0.25;
      plan.p_msg_delay = 0.25;
      ok &= run_chaos_grid("fabric-storm-2x2", opt, strong_grid(4), plan, req, json, topo).ok;
      ++scenarios;
    }
    {
      faultsim::FaultPlan plan;
      plan.seed = opt.fault_seed;
      plan.schedule.push_back(
          faultsim::ScheduledFault{faultsim::FaultKind::node_loss, 0, 1, "node n1"});
      const ChaosOutcome out =
          run_chaos_grid("node-loss-2x2", opt, strong_grid(4), plan, req, json, topo);
      ok &= out.ok && !out.res.failovers.empty();
      if (out.res.failovers.empty()) {
        std::printf("  node-loss-2x2: the node loss did not trigger a failover\n");
        ok = false;
      }
      ++scenarios;
    }
  }

  // -- elastic recovery: hot spares and live rejoin --------------------------
  // With a spare inventory the hardened runner re-replicates a lost shard
  // onto a standby instead of shrinking; with a scheduled heal a stickily
  // lost device returns and the run rejoins the abandoned grid.  Either way
  // the final grid must be at full capacity and the output bit-for-bit.
  std::int64_t total_rereplicated = 0;
  int total_spares = 0, total_rejoins = 0, total_capacity = 0;
  double total_recovery_us = 0.0, total_rereplication_us = 0.0;
  const auto tally = [&](const MultiDevResult& r) {
    total_rereplicated += r.rereplicated_bytes;
    total_spares += r.spares_consumed;
    total_rejoins += r.rejoins;
    total_capacity += r.capacity_restored;
    total_recovery_us += r.recovery_us;
    total_rereplication_us += r.rereplication_us;
  };
  if (opt.spares > 0 && max_devices >= 2) {
    // Hot-spare re-replication: the shard of the lost device moves to a
    // standby over the priced link model; the grid never shrinks.
    gpusim::NodeTopology topo;
    topo.spares.devices_per_node = opt.spares;
    faultsim::FaultPlan plan;
    plan.seed = opt.fault_seed;
    plan.schedule.push_back(
        faultsim::ScheduledFault{faultsim::FaultKind::device_loss, 0, 1, "device r1"});
    const ChaosOutcome out =
        run_chaos_grid("hot-spare-2dev", opt, strong_grid(2), plan, req, json, topo);
    ok &= out.ok;
    tally(out.res);
    if (out.res.spares_consumed < 1 ||
        out.res.final_grid.label() != strong_grid(2).label()) {
      std::printf("  hot-spare-2dev: expected a spare adoption at full capacity "
                  "(consumed %d, final %s)\n",
                  out.res.spares_consumed, out.res.final_grid.label().c_str());
      ok = false;
    }
    ++scenarios;
  }
  if (max_devices >= 2) {
    // Kill-then-heal: no spares, so the loss shrinks the grid — then the
    // scheduled heal returns the device and the run rejoins the full grid.
    faultsim::FaultPlan plan;
    plan.seed = opt.fault_seed;
    plan.schedule.push_back(
        faultsim::ScheduledFault{faultsim::FaultKind::device_loss, 0, 1, "device r1"});
    plan.schedule.push_back(
        faultsim::ScheduledFault{faultsim::FaultKind::heal, 0, 1, "heal/device r1"});
    const ChaosOutcome out =
        run_chaos_grid("kill-heal-2dev", opt, strong_grid(2), plan, req, json);
    ok &= out.ok;
    tally(out.res);
    if (out.res.rejoins < 1 || out.res.final_grid.label() != strong_grid(2).label()) {
      std::printf("  kill-heal-2dev: expected a rejoin back to full capacity "
                  "(rejoins %d, final %s)\n",
                  out.res.rejoins, out.res.final_grid.label().c_str());
      ok = false;
    }
    ++scenarios;
  }
  if (opt.spares > 0 && opt.nodes >= 2 && max_devices >= 4) {
    // Node loss with a standby node: every shard of the lost node group
    // re-replicates across the fabric; capacity survives whole-node failure.
    gpusim::NodeTopology topo = gpusim::cluster(2, 2);
    topo.spares.nodes = 1;
    faultsim::FaultPlan plan;
    plan.seed = opt.fault_seed;
    plan.schedule.push_back(
        faultsim::ScheduledFault{faultsim::FaultKind::node_loss, 0, 1, "node n1"});
    const ChaosOutcome out =
        run_chaos_grid("node-spare-2x2", opt, strong_grid(4), plan, req, json, topo);
    ok &= out.ok;
    tally(out.res);
    if (out.res.spares_consumed < 1 ||
        out.res.final_grid.label() != strong_grid(4).label()) {
      std::printf("  node-spare-2x2: expected standby-node adoption at full capacity "
                  "(consumed %d, final %s)\n",
                  out.res.spares_consumed, out.res.final_grid.label().c_str());
      ok = false;
    }
    ++scenarios;
  }

  // -- device loss during a sharded CG solve ---------------------------------
  {
    const Coords dims{8, 8, 8, 12};
    const double mass = 0.5;
    ShardedCgConfig cfg;
    cfg.cg.rel_tol = 1e-8;
    cfg.cg.max_iterations = 400;
    cfg.checkpoint_interval = 8;

    ShardedCgSolver clean_solver(dims, opt.seed, mass, PartitionGrid::along(3, 2), cfg);
    ColorField b(clean_solver.geom(), Parity::Even);
    b.fill_random(opt.seed ^ 0x5a5a5a5aULL);
    ColorField x_clean(clean_solver.geom(), Parity::Even);
    const ShardedCgResult clean_res = clean_solver.solve(b, x_clean);

    ShardedCgSolver solver(dims, opt.seed, mass, PartitionGrid::along(3, 2), cfg);
    ColorField x(solver.geom(), Parity::Even);
    faultsim::FaultPlan plan;
    plan.seed = opt.fault_seed;
    plan.schedule.push_back(
        faultsim::ScheduledFault{faultsim::FaultKind::device_loss, 30, 1, "device r"});
    ShardedCgResult res;
    {
      faultsim::ScopedFaultInjection fi(plan);
      res = solver.solve(b, x);
    }
    const double diff = max_abs_diff(x, x_clean);
    const bool cg_ok = res.cg.converged && res.recovered_all && clean_res.cg.converged &&
                       res.failovers_observed >= 1 && res.restarts >= 1 && diff == 0.0;
    std::printf("  %-22s %s\n", "cg-device-loss", res.summary().c_str());
    std::printf("  %-22s solution vs fault-free solve: max|diff| = %.3g (%s)\n", "",
                diff, diff == 0.0 ? "bit-for-bit" : "MISMATCH");
    print_faults(res.faults);
    ok &= cg_ok;
    ++scenarios;

    json.begin_row();
    json.field("scenario", std::string("cg-device-loss"));
    json.field("devices", static_cast<std::int64_t>(2));
    json.field("final_grid", res.final_grid.label());
    json.field("recovered", static_cast<std::int64_t>(cg_ok ? 1 : 0));
    json.field("max_abs_diff", diff);
    json.field("faults", static_cast<std::int64_t>(res.faults.size()));
    json.field("iterations", static_cast<std::int64_t>(res.cg.iterations));
    json.field("restarts", static_cast<std::int64_t>(res.restarts));
    json.field("failovers", static_cast<std::int64_t>(res.failovers_observed));
    json.field("checkpoints", static_cast<std::int64_t>(res.checkpoints_taken));
    json.field("relative_residual", res.cg.relative_residual);
    json.end_row();

    json.meta("cg_iterations", static_cast<std::int64_t>(res.cg.iterations));
    json.meta("cg_restarts", static_cast<std::int64_t>(res.restarts));
    json.meta("cg_failovers", static_cast<std::int64_t>(res.failovers_observed));

    // -- kill-then-heal inside the solve, under async checkpointing ----------
    // The loss shrinks the grid mid-solve; the heal consult on the very next
    // apply rejoins the abandoned grid.  Async mode means the restore that
    // follows each failover comes from a durable, audited snapshot — the
    // solution must still be bit-for-bit the fault-free one, and the solve
    // must end back at full capacity.
    {
      ShardedCgConfig acfg = cfg;
      acfg.async_checkpoint = true;
      ShardedCgSolver hsolver(dims, opt.seed, mass, PartitionGrid::along(3, 2), acfg);
      ColorField xh(hsolver.geom(), Parity::Even);
      faultsim::FaultPlan plan2;
      plan2.seed = opt.fault_seed;
      plan2.schedule.push_back(
          faultsim::ScheduledFault{faultsim::FaultKind::device_loss, 30, 1, "device r"});
      plan2.schedule.push_back(
          faultsim::ScheduledFault{faultsim::FaultKind::heal, 0, 1, "heal/device r"});
      ShardedCgResult hres;
      {
        faultsim::ScopedFaultInjection fi(plan2);
        hres = hsolver.solve(b, xh);
      }
      const double hdiff = max_abs_diff(xh, x_clean);
      const bool heal_ok = hres.cg.converged && hres.recovered_all && hres.rejoins >= 1 &&
                           hres.capacity_restored >= 1 && hres.restarts >= 1 &&
                           hres.final_grid.label() == PartitionGrid::along(3, 2).label() &&
                           hdiff == 0.0;
      std::printf("  %-22s %s\n", "cg-kill-heal-async", hres.summary().c_str());
      std::printf("  %-22s rejoins %d (+%d devices) | solution max|diff| = %.3g (%s)\n",
                  "", hres.rejoins, hres.capacity_restored, hdiff,
                  hdiff == 0.0 ? "bit-for-bit" : "MISMATCH");
      print_faults(hres.faults);
      ok &= heal_ok;
      total_rejoins += hres.rejoins;
      total_capacity += hres.capacity_restored;
      total_spares += hres.spares_consumed;
      total_rereplicated += hres.rereplicated_bytes;
      total_recovery_us += hres.recovery_us;
      total_rereplication_us += hres.rereplication_us;
      ++scenarios;

      json.begin_row();
      json.field("scenario", std::string("cg-kill-heal-async"));
      json.field("devices", static_cast<std::int64_t>(2));
      json.field("final_grid", hres.final_grid.label());
      json.field("recovered", static_cast<std::int64_t>(heal_ok ? 1 : 0));
      json.field("max_abs_diff", hdiff);
      json.field("rejoins", static_cast<std::int64_t>(hres.rejoins));
      json.field("capacity_restored", static_cast<std::int64_t>(hres.capacity_restored));
      json.field("restarts", static_cast<std::int64_t>(hres.restarts));
      json.field("snapshots_staged", static_cast<std::int64_t>(hres.snapshots_staged));
      json.field("snapshots_promoted", static_cast<std::int64_t>(hres.snapshots_promoted));
      json.end_row();
    }

    // -- async vs synchronous checkpoint overhead (fault-free) ---------------
    // Same cadence, same problem: the async path stages copies and hides the
    // audit apply inside the next iteration's apply window, so its critical
    // path carries measurably fewer operator applications — with an
    // identical, bit-for-bit solution.
    {
      ShardedCgConfig scfg = cfg;  // synchronous (async_checkpoint = false)
      ShardedCgConfig acfg = cfg;
      acfg.async_checkpoint = true;
      ShardedCgSolver ssolver(dims, opt.seed, mass, PartitionGrid::along(3, 2), scfg);
      ShardedCgSolver asolver(dims, opt.seed, mass, PartitionGrid::along(3, 2), acfg);
      ColorField xs(ssolver.geom(), Parity::Even);
      ColorField xa(asolver.geom(), Parity::Even);
      const ShardedCgResult sres = ssolver.solve(b, xs);
      const ShardedCgResult ares = asolver.solve(b, xa);
      const int sync_critical = sres.applies;
      const int async_critical = ares.applies - ares.hidden_applies;
      const double adiff = max_abs_diff(xa, xs);
      const bool async_ok = sres.cg.converged && ares.cg.converged && adiff == 0.0 &&
                            ares.hidden_applies > 0 && async_critical < sync_critical &&
                            ares.snapshots_promoted > 0;
      std::printf("  %-22s sync %d critical applies vs async %d (%d hidden, "
                  "%d staged -> %d promoted)  max|diff| = %.3g  %s\n",
                  "cg-async-overhead", sync_critical, async_critical, ares.hidden_applies,
                  ares.snapshots_staged, ares.snapshots_promoted, adiff,
                  async_ok ? "async cheaper, bit-for-bit" : "ASYNC OVERHEAD CHECK FAILED");
      ok &= async_ok;
      ++scenarios;

      json.begin_row();
      json.field("scenario", std::string("cg-async-overhead"));
      json.field("sync_critical_applies", static_cast<std::int64_t>(sync_critical));
      json.field("async_critical_applies", static_cast<std::int64_t>(async_critical));
      json.field("hidden_applies", static_cast<std::int64_t>(ares.hidden_applies));
      json.field("snapshots_staged", static_cast<std::int64_t>(ares.snapshots_staged));
      json.field("snapshots_promoted", static_cast<std::int64_t>(ares.snapshots_promoted));
      json.field("max_abs_diff", adiff);
      json.end_row();
      json.meta("sync_critical_applies", static_cast<std::int64_t>(sync_critical));
      json.meta("async_critical_applies", static_cast<std::int64_t>(async_critical));
      json.meta("hidden_applies", static_cast<std::int64_t>(ares.hidden_applies));
    }
  }

  // Elastic-recovery roll-up (schema v3 meta keys).
  json.meta("spares", static_cast<std::int64_t>(opt.spares));
  json.meta("spares_consumed", static_cast<std::int64_t>(total_spares));
  json.meta("rejoins", static_cast<std::int64_t>(total_rejoins));
  json.meta("capacity_restored_devices", static_cast<std::int64_t>(total_capacity));
  json.meta("rereplicated_bytes", total_rereplicated);
  json.meta("rereplication_us", total_rereplication_us);
  json.meta("recovery_time_us", total_recovery_us);

  json.meta("mode", std::string("chaos"));
  json.meta("fault_seed", opt.fault_seed);
  json.meta("nodes", static_cast<std::int64_t>(opt.nodes));
  json.meta("scenarios", static_cast<std::int64_t>(scenarios));
  json.meta("all_recovered", static_cast<std::int64_t>(ok ? 1 : 0));

  std::printf("\nchaos verdict: %s\n",
              ok ? "every fault recovered, all outputs bit-for-bit exact"
                 : "RECOVERY OR EXACTNESS FAILURE");
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Sanitize mode (--sanitize): every pack/unpack launch of the halo protocol
// replayed under ksan with exact region declarations — the multi-device
// analogue of bench_fig6 --sanitize.  Any error fails the run.
// ---------------------------------------------------------------------------

int run_sanitize(const Options& opt, int max_devices) {
  DslashProblem p0(opt.L, opt.seed);
  print_header("Halo protocol under ksan (sanitized replay)", opt, p0.sites());
  const MultiDeviceRunner multi;
  bool all_clean = true;
  for (const int n : {2, 4, 8}) {
    if (n > max_devices) continue;
    const PartitionGrid grid = strong_grid(n);
    std::printf("\ngrid %s — pack/unpack launches\n", grid.label().c_str());
    DslashProblem ph(opt.L, opt.seed);
    for (const ksan::SanitizerReport& rep : multi.sanitize_halo(ph, grid)) {
      all_clean &= print_sanitize_row(rep);
    }
    std::printf("grid %s — hardened exchange flow (one retransmission)\n",
                grid.label().c_str());
    DslashProblem px(opt.L, opt.seed);
    for (const ksan::SanitizerReport& rep : multi.sanitize_exchange(px, grid)) {
      all_clean &= print_sanitize_row(rep);
    }
  }
  std::printf("\nksan verdict: %s\n",
              all_clean ? "all halo launches clean" : "ERRORS DETECTED");
  return all_clean ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Distributed-sanitizer mode (--dsan): record every scenario's cluster-wide
// event graph and run the dsan checkers (happens-before races, message
// protocol, wire schedule, lints) over it.  Combines with --nodes (fabric
// runs join the sweep) and --faults (hardened retransmit + failover runs
// join it).  Every trace must come back clean.
// ---------------------------------------------------------------------------

int run_dsan(const Options& opt, int max_devices, const RunRequest& req) {
  DslashProblem p0(opt.L, opt.seed);
  print_header("Distributed sanitizer (dsan) over recorded event graphs", opt, p0.sites());
  const MultiDeviceRunner multi;
  bool all_clean = true;

  const auto check_grid = [&](const char* name, const PartitionGrid& grid,
                              const gpusim::NodeTopology& topo,
                              const faultsim::FaultPlan* plan) {
    std::printf("\n%s (grid %s)\n", name, grid.label().c_str());
    DslashProblem problem(opt.L, opt.seed);
    MultiDevRequest mreq;
    mreq.grid = grid;
    mreq.req = req;
    mreq.topo = topo;
    std::vector<ksan::SanitizerReport> reports;
    if (plan != nullptr) {
      faultsim::ScopedFaultInjection fi(*plan);
      reports = multi.dsan_check(problem, mreq);
    } else {
      reports = multi.dsan_check(problem, mreq);
    }
    for (const ksan::SanitizerReport& rep : reports) all_clean &= print_sanitize_row(rep);
  };

  for (const int n : {2, 4, 8}) {
    if (n > max_devices) continue;
    const std::string name = "plain " + std::to_string(n) + "-device run";
    check_grid(name.c_str(), strong_grid(n), gpusim::NodeTopology{}, nullptr);
  }
  if (opt.nodes >= 2 && max_devices >= 4) {
    check_grid("multi-node 2x2 run", strong_grid(4), gpusim::cluster(2, 2), nullptr);
  }
  if (opt.faults && max_devices >= 2) {
    // A corrupted first delivery forces a checksum reject + round-2
    // retransmit; the recorded retry protocol must still check clean.
    faultsim::FaultPlan retx;
    retx.seed = opt.fault_seed;
    retx.schedule.push_back(faultsim::ScheduledFault{faultsim::FaultKind::msg_corrupt, 0, 1,
                                                     "halo-exchange r0->r1"});
    check_grid("hardened retransmit run", strong_grid(2), gpusim::NodeTopology{}, &retx);
    if (max_devices >= 4) {
      faultsim::FaultPlan loss;
      loss.seed = opt.fault_seed;
      loss.schedule.push_back(
          faultsim::ScheduledFault{faultsim::FaultKind::device_loss, 0, 1, "device r3"});
      check_grid("device-loss failover run", strong_grid(4), gpusim::NodeTopology{}, &loss);
    }
    {
      // Elastic recovery traces: the re-replication transfer (Send/Recv/
      // Checksum onto the spare) and the rejoin handshake (Rejoin before
      // Resync) must satisfy the new dsan protocol checks.
      gpusim::NodeTopology spare_topo;
      spare_topo.spares.devices_per_node = 1;
      faultsim::FaultPlan loss;
      loss.seed = opt.fault_seed;
      loss.schedule.push_back(
          faultsim::ScheduledFault{faultsim::FaultKind::device_loss, 0, 1, "device r1"});
      check_grid("hot-spare re-replication run", strong_grid(2), spare_topo, &loss);

      faultsim::FaultPlan heal;
      heal.seed = opt.fault_seed;
      heal.schedule.push_back(
          faultsim::ScheduledFault{faultsim::FaultKind::device_loss, 0, 1, "device r1"});
      heal.schedule.push_back(
          faultsim::ScheduledFault{faultsim::FaultKind::heal, 0, 1, "heal/device r1"});
      check_grid("kill-heal rejoin run", strong_grid(2), gpusim::NodeTopology{}, &heal);
    }
  }
  {
    std::printf("\nsharded-cg short solve (grid %s)\n",
                PartitionGrid::along(3, 2).label().c_str());
    ShardedCgConfig cfg;
    cfg.cg.max_iterations = 6;
    cfg.checkpoint_interval = 2;
    ShardedCgSolver solver(Coords{8, 8, 8, 12}, opt.seed, 0.5, PartitionGrid::along(3, 2),
                           cfg);
    ColorField b(solver.geom(), Parity::Even);
    b.fill_random(opt.seed ^ 0x5a5aULL);
    ColorField x(solver.geom(), Parity::Even);
    for (const ksan::SanitizerReport& rep : solver.dsan_check(b, x)) {
      all_clean &= print_sanitize_row(rep);
    }
  }
  {
    // Async checkpointing emits SnapshotAudit/SnapshotPromote events — the
    // promote-before-audit protocol check runs over this trace.
    std::printf("\nsharded-cg async-checkpoint solve (grid %s)\n",
                PartitionGrid::along(3, 2).label().c_str());
    ShardedCgConfig cfg;
    cfg.cg.max_iterations = 6;
    cfg.checkpoint_interval = 2;
    cfg.async_checkpoint = true;
    ShardedCgSolver solver(Coords{8, 8, 8, 12}, opt.seed, 0.5, PartitionGrid::along(3, 2),
                           cfg);
    ColorField b(solver.geom(), Parity::Even);
    b.fill_random(opt.seed ^ 0x5a5aULL);
    ColorField x(solver.geom(), Parity::Even);
    for (const ksan::SanitizerReport& rep : solver.dsan_check(b, x)) {
      all_clean &= print_sanitize_row(rep);
    }
  }

  std::printf("\ndsan verdict: %s\n",
              all_clean ? "all traces clean" : "ERRORS DETECTED");
  return all_clean ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Multi-node mode (--nodes N)
// ---------------------------------------------------------------------------

/// One multi-node scaling row.  Verification is two-sided: the fabric run
/// must match the single-device functional output AND the same grid run on
/// a single NVLink island — placement prices differently, never computes
/// differently.
struct NodeRow {
  const char* kind;  ///< "strong" | "weak"
  MultiDevResult res;
  PartitionGrid grid;
  double speedup = 1.0;
  double diff_single = 0.0;  ///< vs the single-device functional output
  double diff_island = 0.0;  ///< vs the same grid on one NVLink island
};

void print_node_row(const NodeRow& r) {
  std::printf("  %-26s %d dev / %d node  %9.1f GF/s  speedup %5.2fx  "
              "intra %6.2f MB %7.1f us  inter %6.2f MB %7.1f us  verify %s\n",
              r.res.label.c_str(), r.res.devices, r.res.nodes, r.res.gflops, r.speedup,
              r.res.intra_node_bytes / 1e6, r.res.intra_wire_us,
              r.res.inter_node_bytes / 1e6, r.res.inter_wire_us,
              (r.diff_single == 0.0 && r.diff_island == 0.0) ? "exact" : "MISMATCH");
}

void emit_node_row(JsonSink& json, const NodeRow& r) {
  json.begin_row();
  json.field("kind", std::string(r.kind));
  json.field("label", r.res.label);
  json.field("devices", static_cast<std::int64_t>(r.res.devices));
  json.field("nodes", static_cast<std::int64_t>(r.res.nodes));
  json.field("grid", r.grid.label());
  json.field("gflops", r.res.gflops);
  json.field("per_iter_us", r.res.per_iter_us);
  json.field("speedup", r.speedup);
  json.field("overlap_efficiency", r.res.overlap_efficiency);
  json.field("comm_fraction", r.res.comm_fraction);
  json.field("halo_bytes", r.res.halo_bytes);
  json.field("intra_node_bytes", r.res.intra_node_bytes);
  json.field("inter_node_bytes", r.res.inter_node_bytes);
  json.field("fabric_messages", static_cast<std::int64_t>(r.res.fabric_messages));
  json.field("intra_wire_us", r.res.intra_wire_us);
  json.field("inter_wire_us", r.res.inter_wire_us);
  json.field("max_abs_diff", std::max(r.diff_single, r.diff_island));
  json.end_row();
}

/// One multi-node measurement: the topology-aware choose_grid picks the
/// split, the run is priced over the two-level interconnect, and the output
/// is verified bit-for-bit both ways.
NodeRow run_node_point(const char* kind, const Coords& dims, const Options& opt,
                       const gpusim::NodeTopology& topo, const RunRequest& req,
                       double base_gflops) {
  const MultiDeviceRunner multi;
  DslashProblem problem(dims, opt.seed);
  const PartitionGrid grid = choose_grid(problem.geom(), topo);

  MultiDevRequest mreq;
  mreq.grid = grid;
  mreq.req = req;
  mreq.topo = topo;
  NodeRow row{.kind = kind, .res = multi.run(problem, mreq), .grid = grid};

  // Same grid on one NVLink island: only the prices may differ.
  DslashProblem island(dims, opt.seed);
  MultiDevRequest ireq;
  ireq.grid = grid;
  ireq.req = req;
  const MultiDevResult island_res = multi.run(island, ireq);
  (void)island_res;
  row.diff_island = max_abs_diff(problem.c(), island.c());
  row.diff_single = verify_exact(dims, opt.seed, grid, req);
  row.speedup = base_gflops > 0.0 ? row.res.gflops / base_gflops : 1.0;
  return row;
}

int run_nodes(const Options& opt, int max_devices, const RunRequest& req) {
  DslashProblem p0(opt.L, opt.seed);
  print_header("Multi-node scaling — fabric tier over NVLink node groups", opt, p0.sites());
  std::printf("cluster: %d nodes, NVLink (300 GB/s) inside a node, "
              "HDR-class fabric (24 GB/s NIC) between nodes\n", opt.nodes);

  JsonSink json(opt.json_path, "scaling-nodes");
  bool ok = true;

  std::vector<int> counts;
  for (const int n : {2, 4, 8}) {
    if (n <= max_devices && n % opt.nodes == 0) counts.push_back(n);
  }
  if (counts.empty()) {
    std::fprintf(stderr, "no device count <= %d divides into %d nodes\n", max_devices,
                 opt.nodes);
    return 2;
  }

  std::printf("\nStrong scaling over %d nodes (fixed L=%d lattice)\n", opt.nodes, opt.L);
  double strong_base = 0.0;
  NodeRow last{};
  for (const int n : counts) {
    const gpusim::NodeTopology topo = gpusim::cluster(opt.nodes, n / opt.nodes);
    const NodeRow row = run_node_point("strong", Coords{opt.L, opt.L, opt.L, opt.L}, opt,
                                       topo, req, strong_base);
    if (strong_base == 0.0) strong_base = row.res.gflops;
    ok &= row.diff_single == 0.0 && row.diff_island == 0.0;
    print_node_row(row);
    emit_node_row(json, row);
    last = row;
  }

  std::printf("\nWeak scaling (L x L x L x %d block per device, lattice grows along t)\n",
              opt.L / 2);
  double weak_base = 0.0;
  for (const int n : counts) {
    const gpusim::NodeTopology topo = gpusim::cluster(opt.nodes, n / opt.nodes);
    const Coords dims{opt.L, opt.L, opt.L, opt.L / 2 * n};
    const NodeRow row = run_node_point("weak", dims, opt, topo, req, weak_base);
    if (weak_base == 0.0) weak_base = row.res.gflops;
    ok &= row.diff_single == 0.0 && row.diff_island == 0.0;
    print_node_row(row);
    emit_node_row(json, row);
  }

  json.topology_meta(opt.nodes, last.res.devices / opt.nodes, last.grid.label(),
                     last.res.intra_node_bytes, last.res.inter_node_bytes);
  std::printf("\nmulti-node verdict: %s\n",
              ok ? "all grids bit-for-bit exact across placements"
                 : "EXACTNESS FAILURE");
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Wire-format mode (--wire <fp64|fp32|fp16>[+r<18|12|9>]): certify a halo
// wire format against the exact fp64 wire (docs/WIRE.md).  The checks are
// the acceptance criteria of the wire contract:
//   1. the fp64 wire is bit-for-bit the default run (always, as a guard);
//   2. a reduced spinor wire cuts the encoded halo payload by the exact
//      bytes-per-site ratio (>= 2x for fp32, 4x for fp16), and with --nodes
//      the priced inter-node fabric bytes shrink accordingly;
//   3. the reduced-wire Dslash output stays within the format's error floor
//      of the exact output (the wire only perturbs ghost values);
//   4. a sharded CG solve on the reduced wire is *certified*: the
//      reliable-update outer loop converges it to the same answer as the
//      fault-free fp64 solve, verified through an exact-wire true residual.
// Any failed check exits non-zero.
// ---------------------------------------------------------------------------

/// Acceptable |multi(reduced wire) - single(exact)| for one Dslash, relative
/// to the data magnitude (matches the ABFT floors in sharded_cg.cpp).
double wire_error_floor(SpinorWire w) {
  switch (w) {
    case SpinorWire::fp64: return 0.0;
    case SpinorWire::fp32: return 1e-5;
    case SpinorWire::fp16: return 5e-2;
  }
  return 0.0;
}

int run_wire(const Options& opt, int max_devices, const RunRequest& req) {
  WireFormat fmt;
  if (!parse_wire_format(opt.wire, fmt)) {
    std::fprintf(stderr,
                 "bad --wire '%s' (grammar: <fp64|fp32|fp16>[+r<18|12|9>], "
                 "e.g. fp32+r12 — see docs/WIRE.md)\n",
                 opt.wire.c_str());
    return 2;
  }

  DslashProblem p0(opt.L, opt.seed);
  print_header("Halo wire-format certification", opt, p0.sites());
  std::printf("wire %s: %lld B/site spinor halos, %lld B/link gauge frames "
              "(fp64 baseline: 48 B/site, 144 B/link)\n",
              to_string(fmt).c_str(),
              static_cast<long long>(spinor_site_bytes(fmt.spinor)),
              static_cast<long long>(gauge_link_bytes(fmt.gauge)));

  JsonSink json(opt.json_path, "scaling-wire");
  json.wire_meta(to_string(fmt), spinor_site_bytes(fmt.spinor), gauge_link_bytes(fmt.gauge));
  bool ok = true;

  // Pick the exchange shape: >= 2 devices so halos actually move; with
  // --nodes the same grid is priced over the fabric tier.
  int n = max_devices >= 4 ? 4 : 2;
  if (opt.nodes > 1) {
    while (n % opt.nodes != 0 && n <= max_devices) n *= 2;
    if (n > max_devices || n % opt.nodes != 0) {
      std::fprintf(stderr, "no device count <= %d divides into %d nodes\n", max_devices,
                   opt.nodes);
      return 2;
    }
  }
  const PartitionGrid grid = strong_grid(n);
  const gpusim::NodeTopology topo = opt.nodes > 1
                                        ? gpusim::cluster(opt.nodes, n / opt.nodes)
                                        : gpusim::NodeTopology{};
  const MultiDeviceRunner multi;

  const auto run_with = [&](DslashProblem& problem, const WireFormat& w) {
    MultiDevRequest mreq;
    mreq.grid = grid;
    mreq.req = req;
    mreq.topo = topo;
    mreq.wire = w;
    return multi.run(problem, mreq);
  };

  // The exact single-device output every run is compared against.
  const DslashRunner single;
  DslashProblem exact(opt.L, opt.seed);
  single.run_functional(exact, req.strategy, req.order, req.local_size);

  // -- check 1: the fp64 wire is the default run, bit-for-bit ---------------
  DslashProblem p_default(opt.L, opt.seed);
  MultiDevRequest dreq;
  dreq.grid = grid;
  dreq.req = req;
  dreq.topo = topo;
  const MultiDevResult base = multi.run(p_default, dreq);
  DslashProblem p_fp64(opt.L, opt.seed);
  const MultiDevResult fp64_res = run_with(p_fp64, WireFormat{});
  const double fp64_diff = max_abs_diff(p_default.c(), p_fp64.c());
  const bool fp64_ok = fp64_diff == 0.0 && fp64_res.halo_bytes == base.halo_bytes;
  std::printf("\n  fp64 wire vs default run (%s, %d dev): %s\n", grid.label().c_str(), n,
              fp64_ok ? "bit-for-bit, same bytes" : "MISMATCH");
  ok &= fp64_ok;

  // -- check 2 + 3: payload reduction and output accuracy -------------------
  DslashProblem p_wire(opt.L, opt.seed);
  const MultiDevResult wr = run_with(p_wire, fmt);
  const double spinor_ratio =
      wr.halo_bytes > 0 ? static_cast<double>(base.halo_bytes) / wr.halo_bytes : 0.0;
  const double inter_ratio = wr.inter_node_bytes > 0
                                 ? static_cast<double>(base.inter_node_bytes) /
                                       static_cast<double>(wr.inter_node_bytes)
                                 : 0.0;
  const double expected_ratio =
      static_cast<double>(spinor_site_bytes(SpinorWire::fp64)) /
      static_cast<double>(spinor_site_bytes(fmt.spinor));
  const double diff = max_abs_diff(exact.c(), p_wire.c());
  const double floor = wire_error_floor(fmt.spinor);

  std::printf("  halo payload: %lld B -> %lld B per iteration (%.2fx, expected %.0fx)\n",
              static_cast<long long>(base.halo_bytes),
              static_cast<long long>(wr.halo_bytes), spinor_ratio, expected_ratio);
  if (opt.nodes > 1) {
    std::printf("  inter-node fabric bytes: %lld -> %lld (%.2fx incl. frame headers)\n",
                static_cast<long long>(base.inter_node_bytes),
                static_cast<long long>(wr.inter_node_bytes), inter_ratio);
  }
  std::printf("  Dslash output vs exact single-device: max|diff| = %.3g (floor %.0e)\n",
              diff, floor);

  if (fmt.reduced()) {
    // The encoded payload shrinks by exactly the bytes-per-site ratio; the
    // fabric bytes carry 32 B of framing per aggregated message, so they sit
    // just under the payload ratio.
    ok &= spinor_ratio >= expected_ratio - 1e-9 && expected_ratio >= 2.0;
    if (opt.nodes > 1) ok &= inter_ratio >= 0.95 * expected_ratio && inter_ratio >= 1.9;
    ok &= diff > 0.0 ? diff <= floor : true;  // a reduced wire may still be exact
  } else {
    ok &= wr.halo_bytes == base.halo_bytes && diff == 0.0;
  }

  json.begin_row();
  json.field("kind", std::string("dslash"));
  json.field("grid", grid.label());
  json.field("devices", static_cast<std::int64_t>(n));
  json.field("nodes", static_cast<std::int64_t>(wr.nodes));
  json.field("halo_bytes_fp64", base.halo_bytes);
  json.field("halo_bytes_wire", wr.halo_bytes);
  json.field("spinor_reduction", spinor_ratio);
  json.field("inter_node_bytes_fp64", base.inter_node_bytes);
  json.field("inter_node_bytes_wire", wr.inter_node_bytes);
  json.field("inter_node_reduction", inter_ratio);
  json.field("max_abs_diff", diff);
  json.field("fp64_bit_for_bit", static_cast<std::int64_t>(fp64_ok ? 1 : 0));
  json.end_row();

  // -- check 4: certified sharded CG on the reduced wire --------------------
  const Coords dims{8, 8, 8, 12};
  const double mass = 0.5;
  ShardedCgConfig cfg;
  cfg.cg.rel_tol = 1e-8;
  cfg.cg.max_iterations = 800;

  ShardedCgSolver ref_solver(dims, opt.seed, mass, PartitionGrid::along(3, 2), cfg);
  ColorField b(ref_solver.geom(), Parity::Even);
  b.fill_random(opt.seed ^ 0x5a5a5a5aULL);
  ColorField x_ref(ref_solver.geom(), Parity::Even);
  const ShardedCgResult ref = ref_solver.solve(b, x_ref);

  ShardedCgConfig wcfg = cfg;
  wcfg.wire = fmt;
  ShardedCgSolver wire_solver(dims, opt.seed, mass, PartitionGrid::along(3, 2), wcfg);
  ColorField x_wire(wire_solver.geom(), Parity::Even);
  const ShardedCgResult wres = wire_solver.solve(b, x_wire);

  const double cg_diff = max_abs_diff(x_ref, x_wire);
  double x_scale = 0.0;
  for (std::int64_t s = 0; s < x_ref.size(); ++s) {
    for (int ci = 0; ci < kColors; ++ci) {
      x_scale = std::max({x_scale, std::abs(x_ref[s][ci].re), std::abs(x_ref[s][ci].im)});
    }
  }
  const double cg_rel = x_scale > 0.0 ? cg_diff / x_scale : cg_diff;
  // Certification pins the *true* residual (exact fp64 apply) under rel_tol,
  // so the solution error is O(cond * rel_tol) regardless of the wire.
  const bool cg_ok = ref.cg.converged && wres.cg.converged && wres.certified &&
                     (fmt.reduced() ? cg_rel <= 1e-4 : cg_diff == 0.0);
  std::printf("\n  sharded CG on the %s wire (grid %s):\n", to_string(fmt).c_str(),
              PartitionGrid::along(3, 2).label().c_str());
  std::printf("    fp64 : %s\n", ref.summary().c_str());
  std::printf("    %s: %s\n", to_string(fmt).c_str(), wres.summary().c_str());
  std::printf("    solution vs fp64 solve: max|diff| = %.3g (rel %.3g) %s\n", cg_diff,
              cg_rel, cg_ok ? (cg_diff == 0.0 ? "bit-for-bit" : "certified exact")
                            : "NOT CERTIFIED");
  ok &= cg_ok;

  json.begin_row();
  json.field("kind", std::string("sharded-cg"));
  json.field("grid", PartitionGrid::along(3, 2).label());
  json.field("iterations_fp64", static_cast<std::int64_t>(ref.cg.iterations));
  json.field("iterations_wire", static_cast<std::int64_t>(wres.cg.iterations));
  json.field("reliable_updates", static_cast<std::int64_t>(wres.reliable_updates));
  json.field("certified", static_cast<std::int64_t>(wres.certified ? 1 : 0));
  json.field("true_relative_residual", wres.cg.true_relative_residual);
  json.field("max_abs_diff", cg_diff);
  json.field("rel_diff", cg_rel);
  json.end_row();

  json.meta("mode", std::string("wire"));
  json.meta("nodes", static_cast<std::int64_t>(opt.nodes));
  json.meta("spinor_reduction", spinor_ratio);
  json.meta("inter_node_reduction", inter_ratio);
  json.meta("cg_certified", static_cast<std::int64_t>(wres.certified ? 1 : 0));
  json.meta("all_certified", static_cast<std::int64_t>(ok ? 1 : 0));

  std::printf("\nwire verdict: %s\n",
              ok ? "format certified against the exact fp64 wire"
                 : "WIRE CERTIFICATION FAILURE");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  int max_devices = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-devices") == 0 && i + 1 < argc) {
      max_devices = std::atoi(argv[i + 1]);
    }
  }

  const RunRequest req{.strategy = Strategy::LP3_1,
                       .order = IndexOrder::kMajor,
                       .local_size = 768,
                       .variant = Variant::SYCL};
  if (!opt.wire.empty()) return run_wire(opt, max_devices, req);
  if (opt.dsan) return run_dsan(opt, max_devices, req);
  if (opt.sanitize) return run_sanitize(opt, max_devices);
  if (opt.faults) return run_chaos(opt, max_devices, req);
  if (opt.nodes > 1) return run_nodes(opt, max_devices, req);
  const DslashRunner single;
  const MultiDeviceRunner multi;

  DslashProblem p0(opt.L, opt.seed);
  print_header("Multi-device scaling — 3LP-1 k-major /768 with halo exchange", opt,
               p0.sites());
  std::printf("fabric: DGX-A100 link model (NVLink 300 GB/s, 1.9 us; PCIe fallback)\n");

  JsonSink json(opt.json_path, "scaling");
  std::FILE* csv = nullptr;
  if (!opt.csv_path.empty()) {
    csv = std::fopen(opt.csv_path.c_str(), "w");
    if (csv != nullptr) {
      std::fprintf(csv,
                   "label,kind,devices,gflops,per_iter_us,speedup,efficiency,"
                   "overlap_efficiency,comm_fraction,surface_fraction,halo_bytes,"
                   "max_abs_diff\n");
    }
  }

  std::vector<int> counts;
  for (const int n : {1, 2, 4, 8}) {
    if (n <= max_devices) counts.push_back(n);
  }
  bool ok = true;

  // -- strong scaling: fixed L^4, more devices -------------------------------
  std::printf("\nStrong scaling (fixed L=%d lattice)\n", opt.L);
  const RunResult fig6 = single.run(p0, req);  // the bench_fig6 row
  double strong_base = 0.0;
  for (const int n : counts) {
    // The n = 1 run reuses p0: simulated stats are a function of the
    // problem's actual buffer addresses, so reproducing the bench_fig6 row
    // exactly requires the same problem instance, not just the same seed.
    DslashProblem problem_n(opt.L, opt.seed);
    DslashProblem& problem = n == 1 ? p0 : problem_n;
    MultiDevRequest mreq;
    mreq.grid = strong_grid(n);
    mreq.req = req;
    const MultiDevResult res = multi.run(problem, mreq);
    if (n == 1) {
      strong_base = res.gflops;
      const bool same = res.gflops == fig6.gflops && res.per_iter_us == fig6.per_iter_us;
      std::printf("  1-device row vs bench_fig6 \"%s\": %s\n", fig6.label.c_str(),
                  same ? "identical" : "DIFFERS");
      ok &= same;
    }
    ScalingRow row{.kind = "strong",
                   .res = res,
                   .speedup = strong_base > 0.0 ? res.gflops / strong_base : 1.0,
                   .efficiency = strong_base > 0.0 ? res.gflops / strong_base / n : 1.0,
                   .diff = verify_exact(Coords{opt.L, opt.L, opt.L, opt.L}, opt.seed,
                                        mreq.grid, req)};
    ok &= row.diff == 0.0;
    print_row(row);
    emit(json, csv, row);
  }

  // -- weak scaling: fixed L x L x L x L/2 block per device ------------------
  std::printf("\nWeak scaling (L x L x L x %d block per device, lattice grows along t)\n",
              opt.L / 2);
  double weak_base = 0.0;
  for (const int n : counts) {
    const Coords dims{opt.L, opt.L, opt.L, opt.L / 2 * n};
    DslashProblem problem(dims, opt.seed);
    MultiDevRequest mreq;
    mreq.grid = PartitionGrid::along(3, n);
    mreq.req = req;
    const MultiDevResult res = multi.run(problem, mreq);
    if (n == 1) weak_base = res.gflops;
    ScalingRow row{.kind = "weak",
                   .res = res,
                   .speedup = weak_base > 0.0 ? res.gflops / weak_base : 1.0,
                   .efficiency = weak_base > 0.0 ? res.gflops / weak_base / n : 1.0,
                   .diff = verify_exact(dims, opt.seed, mreq.grid, req)};
    ok &= row.diff == 0.0;
    print_row(row);
    emit(json, csv, row);
  }

  if (csv != nullptr) std::fclose(csv);
  std::printf("\nscaling verdict: %s\n",
              ok ? "all grids bit-for-bit exact, 1-device row reproduces bench_fig6"
                 : "EXACTNESS FAILURE");
  return ok ? 0 : 1;
}
