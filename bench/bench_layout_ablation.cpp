// bench_layout_ablation — ablation A1 (ours): why a site-per-thread kernel
// is slow over AoS data (1LP) yet competitive over SoA data (the QUDA-style
// kernel with recon-18, i.e. no compression) — isolating the data-layout
// axis from the parallelism axis of the paper's story.
#include "bench_common.hpp"
#include "qudaref/staggered_test.hpp"

using namespace milc;
using namespace milc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;
  print_header("Layout ablation: AoS vs SoA at fixed parallelisation", opt, problem.sites());

  // Site-per-thread over AoS (1LP), best local size.
  RunResult lp1;
  for (int ls : paper_local_sizes(Strategy::LP1, IndexOrder::kMajor, problem.sites())) {
    RunRequest req{.strategy = Strategy::LP1, .order = IndexOrder::kMajor, .local_size = ls,
                   .variant = Variant::SYCL};
    RunResult r = runner.run(problem, req);
    if (lp1.label.empty() || r.gflops > lp1.gflops) lp1 = r;
  }

  // Site-per-thread over SoA (QUDA kernel, recon-18 = no compression).
  qudaref::StaggeredDslashTest quda(problem);
  const auto soa = quda.run(Reconstruct::k18);

  // Row-per-k-per-thread over AoS (3LP-1): the paper's winner.
  RunResult lp31;
  for (int ls : paper_local_sizes(Strategy::LP3_1, IndexOrder::kMajor, problem.sites())) {
    RunRequest req{.strategy = Strategy::LP3_1, .order = IndexOrder::kMajor, .local_size = ls,
                   .variant = Variant::SYCL};
    RunResult r = runner.run(problem, req);
    if (lp31.label.empty() || r.gflops > lp31.gflops) lp31 = r;
  }

  std::printf("\n%-38s %10s %14s %10s %8s\n", "kernel", "GF/s", "L1 tags", "occ%", "bound");
  std::printf("%-38s %10.1f %13.1fM %9.1f%% %8s\n", ("site/thread, AoS: " + lp1.label).c_str(),
              lp1.gflops, static_cast<double>(lp1.stats.counters.l1_tag_requests_global) / 1e6,
              100.0 * lp1.stats.occupancy.achieved, lp1.stats.timing.bound_by);
  std::printf("%-38s %10.1f %13.1fM %9.1f%% %8s\n", "site/thread, SoA: QUDA recon-18",
              soa.gflops, static_cast<double>(soa.stats.counters.l1_tag_requests_global) / 1e6,
              100.0 * soa.stats.occupancy.achieved, soa.stats.timing.bound_by);
  std::printf("%-38s %10.1f %13.1fM %9.1f%% %8s\n", ("row/thread, AoS: " + lp31.label).c_str(),
              lp31.gflops,
              static_cast<double>(lp31.stats.counters.l1_tag_requests_global) / 1e6,
              100.0 * lp31.stats.occupancy.achieved, lp31.stats.timing.bound_by);

  std::printf("\nReadings:\n");
  std::printf("  SoA vs AoS at site/thread:   %+6.1f%%  (layout alone)\n",
              100.0 * (soa.gflops / lp1.gflops - 1.0));
  std::printf("  3LP-1 vs SoA site/thread:    %+6.1f%%  (parallelism axis: occupancy;\n"
              "                                          the paper's ~10%% QUDA margin)\n",
              100.0 * (lp31.gflops / soa.gflops - 1.0));
  std::printf("  3LP-1 vs 1LP:                %+6.1f%%  (both axes combined, paper ~2x)\n",
              100.0 * (lp31.gflops / lp1.gflops - 1.0));
  return 0;
}
