// bench_quda_recon — experiments E3 and A2: QUDA's staggered_dslash_test
// gauge-compression ladder (recon 18/12/9 -> 634/728/825 GFLOP/s in the
// paper) and the traffic-vs-recompute ablation behind it.
#include "bench_common.hpp"
#include "qudaref/staggered_test.hpp"

using namespace milc;
using namespace milc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  print_header("QUDA staggered_dslash_test — gauge compression ladder", opt, problem.sites());

  qudaref::StaggeredDslashTest test(problem);

  std::printf("\n%-10s %10s %12s %12s %14s %14s %10s\n", "scheme", "local", "kernel_us",
              "GF/s (nom)", "L1 tags", "DRAM sectors", "FLOP/site");
  qudaref::StaggeredResult r18;
  std::vector<qudaref::StaggeredResult> results;
  for (Reconstruct scheme : {Reconstruct::k18, Reconstruct::k12, Reconstruct::k9}) {
    const auto r = test.run(scheme);
    if (scheme == Reconstruct::k18) r18 = r;
    results.push_back(r);
    std::printf("%-10s %10d %12.1f %12.1f %14.1fM %14.1fM %10.0f\n", to_string(scheme),
                r.local_size, r.kernel_us, r.gflops,
                static_cast<double>(r.stats.counters.l1_tag_requests_global) / 1e6,
                static_cast<double>(r.stats.counters.dram_sectors) / 1e6,
                static_cast<double>(r.stats.counters.flops) /
                    static_cast<double>(problem.sites()));
  }

  std::printf("\nLadder vs paper (shape):\n");
  std::printf("  paper: 634 -> 728 -> 825 GF/s (x1.00 -> x1.15 -> x1.30)\n");
  std::printf("  ours : %.0f -> %.0f -> %.0f GF/s (x1.00 -> x%.2f -> x%.2f)\n",
              results[0].gflops, results[1].gflops, results[2].gflops,
              results[1].gflops / results[0].gflops, results[2].gflops / results[0].gflops);

  // -- A2: per-scheme trade-off across fixed launch configs --------------------
  std::printf("\nAblation A2 — traffic saved vs reconstruction FLOPs (local 256):\n");
  std::printf("%-10s %16s %18s %14s\n", "scheme", "gauge B/site", "recon FLOP/link",
              "kernel_us");
  for (Reconstruct scheme : {Reconstruct::k18, Reconstruct::k12, Reconstruct::k9}) {
    const auto r = test.run_at(scheme, 256);
    std::printf("%-10s %16d %18.0f %14.1f\n", to_string(scheme),
                16 * 8 * reals_per_link(scheme), reconstruct_flops(scheme), r.kernel_us);
  }
  return 0;
}
