// bench_3lp1_variants — experiments E4 and E5: the five additional 3LP-1
// implementations (SyclCPLX, CUDA, CUDA --maxrregcount=64, SYCLomatic,
// SYCLomatic-optimized) across the paper's local sizes, in both index
// orders where applicable.
#include "bench_common.hpp"

using namespace milc;
using namespace milc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;
  print_header("3LP-1 implementation variants (paper IV-C / IV-D4..6)", opt, problem.sites());

  const auto locals = paper_local_sizes(Strategy::LP3_1, IndexOrder::kMajor, problem.sites());

  double sycl768 = 0.0, cuda768 = 0.0, cuda_rreg768 = 0.0, cplx768 = 0.0;
  double somatic768 = 0.0, somatic_opt768 = 0.0;

  for (Variant v : fig6_variants()) {
    const VariantInfo& vi = variant_info(v);
    std::printf("\n%s — %s\n", vi.name, vi.rationale);
    for (int ls : locals) {
      RunRequest req{.strategy = Strategy::LP3_1,
                     .order = IndexOrder::kMajor,
                     .local_size = ls,
                     .variant = v};
      const RunResult r = run_and_print(runner, problem, req);
      if (ls == 768) {
        switch (v) {
          case Variant::SYCL: sycl768 = r.gflops; break;
          case Variant::SyclCPLX: cplx768 = r.gflops; break;
          case Variant::CUDA: cuda768 = r.gflops; break;
          case Variant::CUDA_maxrreg64: cuda_rreg768 = r.gflops; break;
          case Variant::SYCLomatic: somatic768 = r.gflops; break;
          case Variant::SYCLomaticOpt: somatic_opt768 = r.gflops; break;
          default: break;
        }
      }
    }
  }

  std::printf("\nPairwise effects at local 768 (paper expectations in parentheses):\n");
  std::printf("  CUDA maxrregcount=64 vs CUDA:      %+5.1f%%  (paper: up to +3.6%%)\n",
              100.0 * (cuda_rreg768 / cuda768 - 1.0));
  std::printf("  SyclCPLX vs double_complex:        %+5.1f%%  (paper: within +-3%%)\n",
              100.0 * (cplx768 / sycl768 - 1.0));
  std::printf("  SYCLomatic-opt vs SYCLomatic:      %+5.1f%%  (paper: +10.0..12.2%%)\n",
              100.0 * (somatic_opt768 / somatic768 - 1.0));
  std::printf("  SYCLomatic-opt vs baseline SYCL:   %+5.1f%%  (paper: +1.5..6.7%%)\n",
              100.0 * (somatic_opt768 / sycl768 - 1.0));
  std::printf("  SYCLomatic-opt vs CUDA:            %+5.1f%%  (paper: equivalent)\n",
              100.0 * (somatic_opt768 / cuda768 - 1.0));
  return 0;
}
