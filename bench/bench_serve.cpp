// bench_serve.cpp — chaos-traffic driver of the serving tier.
//
// Replays deterministic traffic scenarios against the SolverService:
//
//   steady        well-spaced mixed-size traffic, no faults (the baseline);
//   bursty        a burst at t=0 overrunning quotas/capacity, tight and
//                 zero deadlines, a duplicate id, queued+inflight cancels;
//   hot-tenant    one tenant flooding the queue while two polite tenants
//                 must still meet their deadlines (fairness under quotas);
//   storm-device  every 2-device solve loses rank 1 mid-solve (failover),
//                 breakers trip on the repeated faults and recover through
//                 half-open probes; one device dies for good mid-run;
//   storm-node    node n1 faults every multi-node solve, then dies for good
//                 — shrink-to-survivors carries the remaining traffic;
//   chaos-<seed>  probabilistic wire + device + node + control-plane storm.
//
// Exit is nonzero unless, in every scenario, every submitted request is
// enumerated exactly once, every completed request is ABFT-certified and
// bit-for-bit equal to a fault-free reference solve, every non-completed
// request carries an explicit reason, and the seeded scenarios replay to
// byte-identical SloReport::canonical() strings.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "serve/service.hpp"

namespace milc::serve {
namespace {

using bench::JsonSink;
using faultsim::FaultKind;
using faultsim::FaultPlan;
using faultsim::ScheduledFault;
using faultsim::ScopedFaultInjection;

int g_failures = 0;

bool check(bool ok, const char* scenario, const std::string& what) {
  if (!ok) {
    std::printf("  FAIL [%s] %s\n", scenario, what.c_str());
    ++g_failures;
  }
  return ok;
}

struct Scenario {
  std::string name;
  bool install_plan = false;
  FaultPlan plan;
  std::vector<SolveRequest> traffic;
  std::vector<CancelEvent> cancels;
  bool replay_check = false;    ///< run twice, require identical canonical()
  bool expect_trip = false;     ///< at least one breaker must open
  bool expect_recovery = false; ///< ...and at least one must reach half-open
  bool use_spares = false;      ///< run against the hot-spare service instance
  int min_completed = 0;
  /// Scenario-specific extra assertion (fairness rows, degradation kinds...).
  bool (*extra)(const SloReport&) = nullptr;
};

SolveRequest mk(std::uint64_t id, const char* tenant, int priority, double submit_us,
                double deadline_us, int spec, int devices, int rhs = 1, int retry = 1) {
  SolveRequest r;
  r.id = id;
  r.tenant = tenant;
  r.priority = priority;
  r.submit_us = submit_us;
  r.deadline_us = deadline_us;
  r.spec = spec;
  r.devices = devices;
  r.rhs = rhs;
  r.retry_budget = retry;
  r.source_seed = 700 + id * 13;
  return r;
}

/// Fault-free reference solutions, cached across scenarios and replays.
class RefCache {
 public:
  explicit RefCache(const SolverService& svc) : svc_(svc) {}

  const std::vector<std::uint64_t>& get(int spec, int rhs, std::uint64_t seed,
                                        Strategy strategy) {
    const auto key = std::make_tuple(spec, rhs, seed, static_cast<int>(strategy));
    auto it = cache_.find(key);
    if (it == cache_.end())
      it = cache_.emplace(key, svc_.reference_checksums(spec, rhs, seed, strategy)).first;
    return it->second;
  }

 private:
  const SolverService& svc_;
  std::map<std::tuple<int, int, std::uint64_t, int>, std::vector<std::uint64_t>> cache_;
};

SloReport run_scenario(SolverService& svc, const Scenario& sc) {
  if (sc.install_plan) {
    ScopedFaultInjection fi(sc.plan);
    return svc.run(sc.name, sc.traffic, sc.cancels);
  }
  return svc.run(sc.name, sc.traffic, sc.cancels);
}

bool verify(const Scenario& sc, const SloReport& rep, RefCache& refs) {
  const char* n = sc.name.c_str();
  bool ok = true;

  // Every submitted request is enumerated exactly once (as a multiset: a
  // duplicate id legitimately appears twice — once admitted, once rejected).
  std::vector<std::uint64_t> want, got;
  for (const SolveRequest& r : sc.traffic) want.push_back(r.id);
  for (const RequestOutcome& o : rep.outcomes) got.push_back(o.req.id);
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  ok &= check(want == got, n, "every submitted request enumerated exactly once");
  ok &= check(rep.submitted == static_cast<int>(sc.traffic.size()), n, "submitted count");
  ok &= check(rep.rejected + rep.completed + rep.shed + rep.cancelled == rep.submitted, n,
              "rejected + completed + shed + cancelled == submitted");

  for (const RequestOutcome& o : rep.outcomes) {
    const std::string tag = "request #" + std::to_string(o.req.id) + " ";
    if (o.status == RequestOutcome::Status::completed) {
      ok &= check(o.abft_certified, n, tag + "completed but not ABFT-certified");
      ok &= check(o.rhs_done == o.req.rhs, n, tag + "completed with missing rhs");
      const auto& ref =
          refs.get(o.req.spec, o.req.rhs, o.req.source_seed, o.strategy_used);
      ok &= check(o.solution_fnv == ref, n,
                  tag + "solution NOT bit-for-bit equal to the fault-free reference");
    } else {
      ok &= check(!o.reason.empty(), n, tag + "dropped without a reason");
    }
  }

  // Every shed decision is enumerated in the degradation log.
  int shed_events = 0;
  for (const DegradationEvent& d : rep.degradations) shed_events += d.kind == "shed" ? 1 : 0;
  ok &= check(shed_events >= rep.shed, n, "every shed enumerated as a degradation event");

  if (sc.expect_trip) {
    int trips = 0, half_opens = 0;
    for (const BreakerEvent& e : rep.breaker_events) {
      trips += e.to == BreakerState::open ? 1 : 0;
      half_opens += e.to == BreakerState::half_open ? 1 : 0;
    }
    ok &= check(trips >= 1, n, "expected at least one breaker trip");
    if (sc.expect_recovery)
      ok &= check(half_opens >= 1, n, "expected a breaker to reach half-open");
  }
  ok &= check(rep.completed >= sc.min_completed, n,
              "completed " + std::to_string(rep.completed) + " < required " +
                  std::to_string(sc.min_completed));
  if (sc.extra != nullptr) ok &= check(sc.extra(rep), n, "scenario-specific assertion");
  return ok;
}

// --- scenario construction ---------------------------------------------------

constexpr int kSmall = 0;  ///< 4x4x4x8  — single-device only
constexpr int kWide = 1;   ///< 4x4x4x12 — up to 2 devices
constexpr int kTall = 2;   ///< 4x4x4x24 — up to 4 devices (multi-node)

Scenario steady() {
  Scenario sc;
  sc.name = "steady";
  sc.min_completed = 6;
  sc.traffic = {
      mk(101, "alice", 1, 0.0, kNoDeadline, kSmall, 1),
      mk(102, "bob", 1, 4000.0, kNoDeadline, kWide, 2),
      mk(103, "alice", 2, 8000.0, 600'000.0, kWide, 1, 2),
      mk(104, "bob", 1, 12000.0, kNoDeadline, kTall, 4),
      mk(105, "alice", 1, 16000.0, kNoDeadline, kSmall, 1),
      mk(106, "bob", 2, 20000.0, kNoDeadline, kWide, 2),
  };
  sc.extra = [](const SloReport& r) {
    return r.shed == 0 && r.rejected == 0 && r.deadline_missed == 0;
  };
  return sc;
}

Scenario bursty() {
  Scenario sc;
  sc.name = "bursty";
  sc.min_completed = 5;
  // Tenant a floods past its queued quota of 6; id 205 is submitted twice;
  // id 210 arrives with an already-expired deadline; id 211's deadline is
  // too tight for even one solve (shed as deadline-unreachable at dispatch).
  sc.traffic = {
      mk(201, "a", 3, 0.0, kNoDeadline, kSmall, 1),
      mk(202, "a", 3, 0.0, kNoDeadline, kSmall, 1),
      mk(203, "a", 2, 0.0, kNoDeadline, kWide, 1),
      mk(204, "a", 2, 0.0, kNoDeadline, kWide, 1),
      mk(205, "a", 1, 0.0, kNoDeadline, kSmall, 1),
      mk(206, "a", 1, 0.0, kNoDeadline, kSmall, 1),
      mk(207, "a", 1, 0.0, kNoDeadline, kSmall, 1),  // 7th queued for a: quota reject
      mk(208, "b", 2, 1.0, kNoDeadline, kWide, 1),
      mk(205, "b", 2, 1.0, kNoDeadline, kSmall, 1),  // duplicate id
      mk(210, "b", 1, 1.0, 1.0, kSmall, 1),          // deadline == submit: dead on arrival
      mk(211, "b", 1, 1.0, 30.0, kWide, 1),          // admitted, then unreachable
      mk(212, "b", 1, 2.0, kNoDeadline, kSmall, 1),
  };
  // 206 is still queued at t=50 (priority 1 behind four dispatches);
  // 201 dispatched at t=0 and runs for thousands of us: inflight cancel.
  sc.cancels = {{50.0, 206}, {60.0, 201}, {70.0, 999}};
  sc.extra = [](const SloReport& r) { return r.cancelled == 2 && r.rejected >= 3; };
  return sc;
}

Scenario hot_tenant() {
  Scenario sc;
  sc.name = "hot-tenant";
  sc.min_completed = 6;
  for (std::uint64_t i = 0; i < 12; ++i)
    sc.traffic.push_back(mk(300 + i, "hog", 1, static_cast<double>(i), kNoDeadline,
                            i % 2 == 0 ? kSmall : kWide, 1));
  for (std::uint64_t i = 0; i < 3; ++i) {
    sc.traffic.push_back(
        mk(320 + i, "alice", 3, 100.0 + 5000.0 * static_cast<double>(i), 900'000.0, kSmall, 1));
    sc.traffic.push_back(
        mk(330 + i, "bob", 2, 200.0 + 5000.0 * static_cast<double>(i), 900'000.0, kWide, 1));
  }
  sc.extra = [](const SloReport& r) {
    // Fairness: the polite tenants complete everything within deadline even
    // while the hog floods; the hog pays the quota rejections.
    bool ok = true;
    for (const TenantSlo& t : r.tenants) {
      if (t.tenant == "alice") ok = ok && t.completed == 3 && t.deadline_missed == 0;
      if (t.tenant == "bob") ok = ok && t.completed == 3 && t.deadline_missed == 0;
      if (t.tenant == "hog") ok = ok && t.rejected >= 1;
    }
    return ok;
  };
  return sc;
}

Scenario storm_device() {
  Scenario sc;
  sc.name = "storm-device";
  sc.install_plan = true;
  sc.replay_check = true;
  sc.expect_trip = true;
  sc.expect_recovery = true;
  sc.min_completed = 6;
  sc.plan.seed = 7;
  // Rank 1 of every multi-device grid is lost at every in-solve device check:
  // each 2-device solve fails over mid-flight, its completion charges a
  // breaker failure against the physical device behind rank 1, and three
  // consecutive charges trip that breaker (then half-open probes recover it).
  sc.plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 0, 1'000'000, "device r1 @"});
  // ...and the serve-tier health check kills d3 for good at its 4th consult.
  sc.plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 3, 1, "serve/device d3"});
  for (std::uint64_t i = 0; i < 10; ++i)
    sc.traffic.push_back(mk(400 + i, i % 2 == 0 ? "a" : "b", 1,
                            3000.0 * static_cast<double>(i), kNoDeadline, kWide, 2, 1, 2));
  sc.extra = [](const SloReport& r) {
    bool failover = false, lost = false;
    for (const DegradationEvent& d : r.degradations) {
      failover = failover || d.kind == "failover";
      lost = lost || d.kind == "device-lost";
    }
    return failover && lost;
  };
  return sc;
}

Scenario storm_node() {
  Scenario sc;
  sc.name = "storm-node";
  sc.install_plan = true;
  sc.replay_check = true;
  sc.min_completed = 5;
  sc.plan.seed = 11;
  // Node n1 faults at every in-solve node check (the " @" suffix keeps the
  // filter off the serve-tier site), then dies for good at the serve tier's
  // 3rd idle consult: 4-device requests shrink to the surviving node.
  sc.plan.schedule.push_back(ScheduledFault{FaultKind::node_loss, 0, 1'000'000, "node n1 @"});
  sc.plan.schedule.push_back(ScheduledFault{FaultKind::node_loss, 2, 1, "serve/node n1"});
  sc.traffic = {
      mk(501, "a", 2, 0.0, kNoDeadline, kTall, 4, 1, 2),
      mk(502, "b", 1, 2000.0, kNoDeadline, kWide, 2, 1, 2),
      mk(503, "a", 1, 4000.0, kNoDeadline, kSmall, 1),
      mk(504, "b", 2, 20000.0, kNoDeadline, kTall, 4, 1, 2),
      mk(505, "a", 1, 24000.0, kNoDeadline, kWide, 2, 1, 2),
      mk(506, "b", 1, 28000.0, kNoDeadline, kSmall, 1),
      mk(507, "a", 1, 32000.0, kNoDeadline, kTall, 4, 1, 2),
  };
  sc.extra = [](const SloReport& r) {
    bool node_lost = false, shrank = false;
    for (const DegradationEvent& d : r.degradations) {
      node_lost = node_lost || d.kind == "node-lost";
      shrank = shrank || d.kind == "shrink-to-survivors";
    }
    return node_lost && shrank;
  };
  return sc;
}

Scenario rejoin_device() {
  Scenario sc;
  sc.name = "rejoin-device";
  sc.install_plan = true;
  sc.replay_check = true;
  sc.min_completed = 8;
  sc.plan.seed = 13;
  // d3 dies at its 2nd serve-tier consult, then heals at the 4th heal
  // consult: the service must put it back in rotation through a half-open
  // probation probe (never straight into traffic), account the outage in
  // recovery_time_us, and carry the later 2-device requests at full width.
  sc.plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 1, 1, "serve/device d3"});
  sc.plan.schedule.push_back(ScheduledFault{FaultKind::heal, 3, 1, "heal/device d3"});
  for (std::uint64_t i = 0; i < 10; ++i)
    sc.traffic.push_back(mk(700 + i, i % 2 == 0 ? "a" : "b", 1,
                            3000.0 * static_cast<double>(i), kNoDeadline, kWide, 2, 1, 2));
  sc.extra = [](const SloReport& r) {
    bool lost = false, rejoined = false, probed_ok = false;
    for (const DegradationEvent& d : r.degradations) {
      lost = lost || d.kind == "device-lost";
      rejoined = rejoined || d.kind == "device-rejoined";
      probed_ok = probed_ok || (d.kind == "probe" && d.detail == "d3 probe ok");
    }
    // The rejoin goes through probation: d3's breaker must reach half-open
    // (begin_probation) and then close on its probe, never trip-free-closed.
    bool probation = false, closed_after = false;
    for (const BreakerEvent& e : r.breaker_events) {
      if (e.resource != "d3") continue;
      if (e.to == BreakerState::half_open) probation = true;
      if (probation && e.to == BreakerState::closed) closed_after = true;
    }
    return lost && rejoined && probed_ok && probation && closed_after &&
           r.devices_rejoined >= 1 && r.recovery_time_us > 0.0;
  };
  return sc;
}

Scenario storm_spare() {
  Scenario sc;
  sc.name = "storm-spare";
  sc.install_plan = true;
  sc.replay_check = true;
  sc.use_spares = true;
  sc.min_completed = 6;
  sc.plan.seed = 7;
  // The same rank-1 storm as storm-device, but the service advertises one
  // hot spare per node: every lost shard re-replicates onto the spare and
  // the solves finish at full grid width instead of shrinking.
  sc.plan.schedule.push_back(ScheduledFault{FaultKind::device_loss, 0, 1'000'000, "device r1 @"});
  for (std::uint64_t i = 0; i < 8; ++i)
    sc.traffic.push_back(mk(800 + i, i % 2 == 0 ? "a" : "b", 1,
                            3000.0 * static_cast<double>(i), kNoDeadline, kWide, 2, 1, 2));
  sc.extra = [](const SloReport& r) {
    bool rereplicated = false;
    for (const DegradationEvent& d : r.degradations)
      rereplicated = rereplicated || d.kind == "re-replication";
    return rereplicated && r.spares_consumed >= 1 && r.rereplicated_bytes > 0;
  };
  return sc;
}

Scenario chaos(std::uint64_t seed) {
  Scenario sc;
  sc.name = "chaos-" + std::to_string(seed);
  sc.install_plan = true;
  sc.replay_check = true;
  sc.min_completed = 1;
  sc.plan.seed = seed;
  // Wire, device, node and control-plane chaos.  Kernel-strategy faults
  // (launch_fail / sticky / bit_flip) are deliberately absent: their
  // recovery is 1e-9-accurate rather than bit-exact, and the serving tier's
  // oracle is bit-for-bit (docs/RESILIENCE.md, "Traffic failure model").
  sc.plan.p_msg_drop = 0.02;
  sc.plan.p_msg_corrupt = 0.02;
  sc.plan.p_msg_delay = 0.02;
  sc.plan.p_device_loss = 0.0005;
  sc.plan.p_node_loss = 0.0002;
  sc.plan.p_serve = 0.02;
  for (std::uint64_t i = 0; i < 12; ++i) {
    const int spec = static_cast<int>(i % 3);
    const int devices = spec == kSmall ? 1 : (spec == kWide ? 2 : 4);
    const double submit = 2500.0 * static_cast<double>(i);
    const double deadline = i % 4 == 3 ? submit + 9'000.0 : kNoDeadline;
    sc.traffic.push_back(mk(600 + i, i % 3 == 0 ? "a" : (i % 3 == 1 ? "b" : "c"),
                            1 + static_cast<int>(i % 3), submit, deadline, spec, devices, 1,
                            2));
  }
  return sc;
}

int serve_main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  std::uint64_t chaos_seed = 2024;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc)
      chaos_seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));

  std::printf("== bench_serve: resilient multi-tenant solver service ==\n");

  std::vector<ProblemSpec> catalog(3);
  catalog[kSmall] = {"small-4x4x4x8", Coords{4, 4, 4, 8}, 31, 0.5, 1e-6, 250, 8};
  catalog[kWide] = {"wide-4x4x4x12", Coords{4, 4, 4, 12}, 31, 0.5, 1e-6, 250, 8};
  catalog[kTall] = {"tall-4x4x4x24", Coords{4, 4, 4, 24}, 31, 0.5, 1e-6, 250, 8};

  ServiceConfig scfg;
  scfg.cluster = {2, 2};
  scfg.queue.capacity = 14;
  scfg.queue.tenant_max_queued = 6;
  scfg.queue.tenant_max_inflight = 2;

  // A second service instance advertising one hot spare per node — the
  // storm-spare scenario runs here so lost shards re-replicate instead of
  // shrinking, while every other scenario keeps the spare-free baseline.
  ServiceConfig spcfg = scfg;
  spcfg.spares.devices_per_node = 1;

  SolverService svc(catalog, scfg);
  SolverService svc_spares(std::move(catalog), spcfg);
  for (int s = 0; s < 3; ++s) {
    std::printf("  catalog[%d] %-14s priced:", s, svc.catalog()[static_cast<std::size_t>(s)].name.c_str());
    for (const auto& p : svc.placements(s))
      std::printf("  %ddev %s %.1f us/iter", p.devices, p.grid.label().c_str(), p.per_iter_us);
    std::printf("\n");
  }

  RefCache refs(svc);
  JsonSink json(opt.json_path, "bench_serve");
  json.meta("chaos_seed", chaos_seed);

  std::vector<Scenario> scenarios = {steady(),       bursty(),      hot_tenant(),
                                     storm_device(), storm_node(),  rejoin_device(),
                                     storm_spare(),  chaos(chaos_seed)};
  for (const Scenario& sc : scenarios) {
    std::printf("\n-- scenario %s --\n", sc.name.c_str());
    SolverService& target = sc.use_spares ? svc_spares : svc;
    const SloReport rep = run_scenario(target, sc);
    std::printf("%s", rep.summary().c_str());
    verify(sc, rep, refs);

    if (sc.replay_check) {
      const SloReport replay = run_scenario(target, sc);
      check(rep.canonical() == replay.canonical(), sc.name.c_str(),
            "same-seed replay must reproduce an identical SloReport");
    }

    json.begin_row();
    json.field("scenario", sc.name);
    json.field("submitted", static_cast<std::int64_t>(rep.submitted));
    json.field("rejected", static_cast<std::int64_t>(rep.rejected));
    json.field("completed", static_cast<std::int64_t>(rep.completed));
    json.field("shed", static_cast<std::int64_t>(rep.shed));
    json.field("cancelled", static_cast<std::int64_t>(rep.cancelled));
    json.field("deadline_met", static_cast<std::int64_t>(rep.deadline_met));
    json.field("deadline_missed", static_cast<std::int64_t>(rep.deadline_missed));
    json.field("p50_latency_us", rep.p50_latency_us);
    json.field("p99_latency_us", rep.p99_latency_us);
    json.field("makespan_us", rep.makespan_us);
    json.field("faults_injected", static_cast<std::int64_t>(rep.faults_injected));
    json.field("degradations", static_cast<std::int64_t>(rep.degradations.size()));
    json.field("breaker_events", static_cast<std::int64_t>(rep.breaker_events.size()));
    json.field("spares_consumed", static_cast<std::int64_t>(rep.spares_consumed));
    json.field("rejoins", static_cast<std::int64_t>(rep.rejoins));
    json.field("devices_rejoined", static_cast<std::int64_t>(rep.devices_rejoined));
    json.field("nodes_rejoined", static_cast<std::int64_t>(rep.nodes_rejoined));
    json.field("recovery_time_us", rep.recovery_time_us);
    json.field("rereplicated_bytes", rep.rereplicated_bytes);
    json.field("canonical_fnv",
               static_cast<std::uint64_t>(fnv1a(rep.canonical().data(), rep.canonical().size())));
    json.end_row();
    for (const RequestOutcome& o : rep.outcomes) {
      json.begin_row();
      json.field("scenario", sc.name);
      json.field("id", static_cast<std::uint64_t>(o.req.id));
      json.field("tenant", o.req.tenant);
      json.field("priority", static_cast<std::int64_t>(o.req.priority));
      json.field("status", std::string(o.status_str()));
      json.field("reason", o.reason);
      json.field("latency_us", o.latency_us);
      json.field("deadline_met", static_cast<std::int64_t>(o.deadline_met ? 1 : 0));
      json.field("devices", o.devices);
      json.field("grid", o.grid);
      json.field("strategy", std::string(to_string(o.strategy_used)));
      json.field("faults", static_cast<std::int64_t>(o.faults_observed));
      json.field("abft", static_cast<std::int64_t>(o.abft_certified ? 1 : 0));
      json.end_row();
    }
  }

  std::printf("\n== bench_serve: %s (%d failed checks) ==\n",
              g_failures == 0 ? "ALL SCENARIOS PASS" : "FAILURES", g_failures);
  return g_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace milc::serve

int main(int argc, char** argv) { return milc::serve::serve_main(argc, argv); }
