// bench_table1 — reproduces the paper's Table I (experiment E2): Nsight-
// Compute-style profile of a single kernel launch for every parallel
// strategy and work-item index order, local size 768 (256 for 1LP).
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/profiler.hpp"

using namespace milc;
using namespace milc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;
  print_header("Table I — profile of one kernel launch per configuration", opt,
               problem.sites());

  struct Col {
    Strategy s;
    IndexOrder o;
    int local;
    const char* name;
  };
  const Col cols[] = {
      {Strategy::LP1, IndexOrder::kMajor, 256, "1LP"},
      {Strategy::LP2, IndexOrder::kMajor, 768, "2LP"},
      {Strategy::LP3_1, IndexOrder::kMajor, 768, "3LP-1 k"},
      {Strategy::LP3_1, IndexOrder::iMajor, 768, "3LP-1 i"},
      {Strategy::LP3_2, IndexOrder::kMajor, 768, "3LP-2 k"},
      {Strategy::LP3_2, IndexOrder::iMajor, 768, "3LP-2 i"},
      {Strategy::LP3_3, IndexOrder::kMajor, 768, "3LP-3 k"},
      {Strategy::LP3_3, IndexOrder::iMajor, 768, "3LP-3 i"},
      {Strategy::LP4_1, IndexOrder::kMajor, 768, "4LP-1 k"},
      {Strategy::LP4_1, IndexOrder::iMajor, 768, "4LP-1 i"},
      {Strategy::LP4_2, IndexOrder::lMajor, 768, "4LP-2 l"},
      {Strategy::LP4_2, IndexOrder::iMajor, 768, "4LP-2 i"},
  };

  std::vector<gpusim::KernelStats> stats;
  for (const Col& c : cols) {
    RunRequest req{.strategy = c.s, .order = c.o, .local_size = c.local,
                   .variant = Variant::SYCL};
    RunResult r = runner.run(problem, req);
    r.stats.name = c.name;
    stats.push_back(r.stats);
    std::printf("profiled %-8s (%s, local %d)\n", c.name, to_string(c.o), c.local);
  }

  gpusim::print_table1(std::cout, stats);

  std::printf("Qualitative checks against the paper's Table I:\n");
  std::printf("  - divergent branches: zero for 1LP..3LP, thousands for 4LP\n");
  std::printf("  - shared memory 12.3 KB/WG for 3LP-1/2 and 4LP; zero otherwise\n");
  std::printf("  - k-major shows fewer L1 tag requests than i-major\n");
  std::printf("  - 1LP: lowest occupancy (register-limited) and most tag requests\n");

  std::printf("\nPer-kernel deep dive (timing decomposition, our extension):\n\n");
  for (const auto& st : stats) gpusim::print_kernel_report(std::cout, st);
  return 0;
}
