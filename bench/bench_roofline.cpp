// bench_roofline — ablation A4 (ours): roofline placement of every
// operator/strategy in the repository.  Makes the paper's premise ("the
// benchmark under consideration is memory-bound", §V) quantitative and
// shows where the Wilson operator and the float/compressed variants sit.
#include "bench_common.hpp"
#include "core/compressed.hpp"
#include "core/precision.hpp"
#include "gpusim/roofline.hpp"
#include "qudaref/staggered_test.hpp"
#include "wilson/wilson.hpp"

using namespace milc;
using namespace milc::bench;

namespace {

void print_point(const char* label, const gpusim::RooflinePoint& p) {
  std::printf("%-28s %10.2f %14.1f %14.1f %9.0f%% %s\n", label, p.intensity,
              p.attainable_gflops, p.achieved_gflops, 100.0 * p.roof_fraction,
              p.memory_bound ? "memory-bound" : "compute-bound");
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;
  const gpusim::MachineModel machine = runner.machine();
  print_header("Roofline placement of every operator (ablation A4)", opt, problem.sites());

  std::printf("\nA100 roofline: %.0f GF/s FP64 (empirical) / %.0f GB/s HBM; ridge at %.1f "
              "FLOP/byte\n",
              machine.empirical_peak_tflops * 1e3, machine.dram_peak_gbs,
              machine.empirical_peak_tflops * 1e3 / machine.dram_peak_gbs);
  std::printf("\n%-28s %10s %14s %14s %10s %s\n", "kernel", "FLOP/B", "attainable",
              "achieved GF/s", "of roof", "regime");

  for (Strategy s : {Strategy::LP1, Strategy::LP2, Strategy::LP3_1, Strategy::LP4_1}) {
    const auto orders = orders_of(s);
    const int local = s == Strategy::LP1 ? 256 : 768;
    RunRequest req{.strategy = s, .order = orders[0], .local_size = local,
                   .variant = Variant::SYCL};
    const RunResult r = runner.run(problem, req);
    print_point(r.label.c_str(), gpusim::roofline_analyze(machine, r.stats));
  }

  // QUDA with and without compression.
  qudaref::StaggeredDslashTest quda(problem);
  for (Reconstruct scheme : {Reconstruct::k18, Reconstruct::k9}) {
    const auto q = quda.run(scheme);
    print_point((std::string("QUDA ") + to_string(scheme)).c_str(),
                gpusim::roofline_analyze(machine, q.stats));
  }

  // Float 3LP-1 (same FLOPs, half the bytes -> double the intensity).
  {
    FloatDslash fd(problem.device_gauge(), problem.neighbors());
    FloatColorField fin(problem.b()), fout(problem.geom(), problem.target_parity());
    const auto st = fd.profile(fin, fout, 768);
    print_point("3LP-1 float", gpusim::roofline_analyze(machine, st));
  }

  // Compressed 3LP-1.
  {
    CompressedDslash cd(problem.view(), problem.neighbors());
    ColorField out(problem.geom(), problem.target_parity());
    const auto st = cd.profile(problem.b(), out, 96);
    print_point("3LP-1 recon-12", gpusim::roofline_analyze(machine, st));
  }

  // Wilson (8-point stencil, 4 spins): higher intensity by construction.
  {
    wilson::WilsonField win(problem.geom(), opposite(problem.target_parity()));
    win.fill_random(opt.seed + 2);
    wilson::WilsonField wout(problem.geom(), problem.target_parity());
    wilson::WilsonDslash wd(problem.device_gauge(), problem.neighbors());
    const auto st = wd.profile(win, wout, 128);
    print_point("Wilson site/thread", gpusim::roofline_analyze(machine, st));
  }

  std::printf("\nreading: every staggered variant sits far left of the %.1f FLOP/byte\n"
              "ridge — the memory-bound regime the whole paper operates in; compression\n"
              "and float storage move kernels right along the roof, Wilson starts higher.\n",
              machine.empirical_peak_tflops * 1e3 / machine.dram_peak_gbs);
  return 0;
}
