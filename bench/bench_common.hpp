// bench_common.hpp — shared plumbing for the paper-reproduction benches:
// command-line options, result tables and ASCII charts.
//
// Every bench accepts:
//   --L <n>      lattice extent (default 16; the paper uses 32 — pass
//                --L 32 to reproduce at paper scale, ~10-15x slower to
//                simulate on one host core)
//   --seed <n>   gauge/source RNG seed
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "core/runner.hpp"

namespace milc::bench {

struct Options {
  int L = 16;
  std::uint64_t seed = 2024;
  std::string csv_path;  ///< when set, run_and_print also appends CSV rows
  std::string json_path; ///< when set, benches also emit a JSON document
  bool sanitize = false; ///< replay kernels under ksan instead of profiling
  bool dsan = false;     ///< record + check cluster-wide event graphs (dsan)
  bool faults = false;   ///< run under an installed FaultPlan + ResilientRunner
  std::uint64_t fault_seed = 2024;  ///< FaultPlan seed for --faults
  int nodes = 1;  ///< simulated node count; > 1 prices halos over the fabric tier
  std::string tune_cache_path;  ///< when set, persist tuning-cache entries here
  std::uint64_t stamp = 1;  ///< simulated provenance timestamp for recorded entries
  int spares = 0;  ///< hot-spare devices per node: lost shards re-replicate
                   ///< onto standbys instead of shrinking the grid
  /// Halo wire format, "<fp64|fp32|fp16>[+r<18|12|9>]" (docs/WIRE.md §1).
  /// Empty = not requested; bench_scaling's --wire mode certifies the
  /// format against the exact fp64 wire and exits nonzero on any failure.
  std::string wire;
};

inline Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--L") == 0 && i + 1 < argc) {
      o.L = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      o.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      o.csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      o.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sanitize") == 0) {
      o.sanitize = true;
    } else if (std::strcmp(argv[i], "--dsan") == 0) {
      o.dsan = true;
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      o.faults = true;
      o.fault_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      o.nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--tune-cache") == 0 && i + 1 < argc) {
      o.tune_cache_path = argv[++i];
    } else if (std::strcmp(argv[i], "--stamp") == 0 && i + 1 < argc) {
      o.stamp = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--spares") == 0 && i + 1 < argc) {
      o.spares = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--wire") == 0 && i + 1 < argc) {
      o.wire = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--L <extent>] [--seed <n>] [--csv <path>] [--json <path>] "
          "[--sanitize] [--dsan] [--faults <fault seed>] [--nodes <n>] "
          "[--tune-cache <path>] [--stamp <n>] [--spares <n>] "
          "[--wire <fp64|fp32|fp16>[+r<18|12|9>]]\n",
          argv[0]);
      std::exit(0);
    }
  }
  return o;
}

/// Print one sanitized-launch verdict row; returns true when error-free.
inline bool print_sanitize_row(const ksan::SanitizerReport& rep) {
  std::printf("  %-34s %s  errors=%llu lints=%llu  (%llu global / %llu shared accesses)\n",
              rep.kernel.c_str(), rep.clean() ? "clean" : "FAIL ",
              static_cast<unsigned long long>(rep.error_count()),
              static_cast<unsigned long long>(rep.lint_count()),
              static_cast<unsigned long long>(rep.checked_global),
              static_cast<unsigned long long>(rep.checked_shared));
  if (!rep.clean()) std::printf("%s", rep.summary().c_str());
  return rep.clean();
}

/// Escape a string for embedding inside a JSON string literal: quotes and
/// backslashes are backslash-escaped, control characters use the \uXXXX (or
/// short \n/\r/\t) forms.  Scenario names, shed reasons and fault details
/// flow into the sinks verbatim, so the emitted documents must stay valid
/// JSON whatever those strings contain.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto u = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Machine-readable sink for bench rows (one file per bench run).
class CsvSink {
 public:
  explicit CsvSink(const std::string& path) {
    if (path.empty()) return;
    file_ = std::fopen(path.c_str(), "w");
    if (file_ != nullptr) {
      std::fprintf(file_,
                   "label,gflops,kernel_us,per_iter_us,occupancy,bound_by,"
                   "l1_tag_requests,dram_sectors,shared_wavefronts,divergent_branches\n");
    }
  }
  ~CsvSink() {
    if (file_ != nullptr) std::fclose(file_);
  }
  CsvSink(const CsvSink&) = delete;
  CsvSink& operator=(const CsvSink&) = delete;

  void row(const RunResult& r) {
    if (file_ == nullptr) return;
    const auto& c = r.stats.counters;
    std::fprintf(file_, "\"%s\",%.3f,%.3f,%.3f,%.4f,%s,%llu,%llu,%llu,%llu\n",
                 r.label.c_str(), r.gflops, r.kernel_us, r.per_iter_us,
                 r.stats.occupancy.achieved, r.stats.timing.bound_by,
                 static_cast<unsigned long long>(c.l1_tag_requests_global),
                 static_cast<unsigned long long>(c.dram_sectors),
                 static_cast<unsigned long long>(c.shared_wavefronts),
                 static_cast<unsigned long long>(c.divergent_branches));
  }

 private:
  std::FILE* file_ = nullptr;
};

/// Machine-readable JSON sink: one document per bench run,
///   {"bench": "<name>", "schema_version": 4, "rows": [...], "meta": {...}}
/// Rows are either the standard RunResult columns (mirroring CsvSink) or
/// free-form key/value objects built with begin_row()/field()/end_row() —
/// the scaling bench uses the latter for its overlap metrics.  `meta` holds
/// run-level facts accumulated with meta(): the fault seed and recovery
/// summary of a --faults run, for instance.  Version history: 1 = bench +
/// rows only; 2 = adds schema_version and the meta object; 3 = elastic
/// recovery metrics in meta (recovery_time_us, rereplicated_bytes,
/// capacity_restored_devices, spares / spares_consumed / rejoins) emitted by
/// the chaos benches when a fault plan with spares or heals is active;
/// 4 = halo wire-format meta (wire_format, spinor_site_bytes,
/// gauge_link_bytes — see wire_meta() and docs/WIRE.md) emitted by the
/// benches that select a wire format.
class JsonSink {
 public:
  static constexpr int kSchemaVersion = 4;

  JsonSink(const std::string& path, const std::string& bench) {
    if (path.empty()) return;
    file_ = std::fopen(path.c_str(), "w");
    if (file_ != nullptr) {
      std::fprintf(file_, "{\"bench\": \"%s\", \"schema_version\": %d, \"rows\": [",
                   json_escape(bench).c_str(), kSchemaVersion);
    }
  }
  ~JsonSink() {
    if (file_ != nullptr) {
      std::fprintf(file_, "\n],\n\"meta\": {");
      for (std::size_t i = 0; i < meta_.size(); ++i) {
        std::fprintf(file_, "%s\n  %s", i == 0 ? "" : ",", meta_[i].c_str());
      }
      std::fprintf(file_, "\n}}\n");
      std::fclose(file_);
    }
  }
  JsonSink(const JsonSink&) = delete;
  JsonSink& operator=(const JsonSink&) = delete;

  /// Run-level key/value facts, emitted under "meta" when the sink closes.
  void meta(const char* key, double v) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "\"%s\": %.10g", key, v);
    meta_.emplace_back(buf);
  }
  void meta(const char* key, std::int64_t v) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "\"%s\": %lld", key, static_cast<long long>(v));
    meta_.emplace_back(buf);
  }
  void meta(const char* key, std::uint64_t v) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "\"%s\": %llu", key, static_cast<unsigned long long>(v));
    meta_.emplace_back(buf);
  }
  void meta(const char* key, const std::string& v) {
    meta_.emplace_back("\"" + std::string(key) + "\": \"" + json_escape(v) + "\"");
  }

  /// Run-level halo wire-format facts (schema_version >= 4): the format
  /// label ("fp64", "fp32+r12", ...) plus the encoded per-site spinor and
  /// per-link gauge byte counts of docs/WIRE.md's tables.
  void wire_meta(const std::string& format, std::int64_t spinor_site_bytes,
                 std::int64_t gauge_link_bytes) {
    meta("wire_format", format);
    meta("spinor_site_bytes", spinor_site_bytes);
    meta("gauge_link_bytes", gauge_link_bytes);
  }

  /// Run-level interconnect topology facts for multi-node benches: node
  /// count, devices per node, the partition grid label and the byte split
  /// between NVLink (intra-node) and the fabric (inter-node) wires.
  void topology_meta(int nodes, int devices_per_node, const std::string& grid_label,
                     std::int64_t intra_bytes, std::int64_t inter_bytes) {
    meta("nodes", static_cast<std::int64_t>(nodes));
    meta("devices_per_node", static_cast<std::int64_t>(devices_per_node));
    meta("split", grid_label);
    meta("intra_node_bytes", intra_bytes);
    meta("inter_node_bytes", inter_bytes);
  }

  void begin_row() {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\n  {", first_row_ ? "" : ",");
    first_row_ = false;
    first_field_ = true;
  }
  void field(const char* key, double v) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\"%s\": %.10g", sep(), key, v);
  }
  void field(const char* key, std::int64_t v) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\"%s\": %lld", sep(), key, static_cast<long long>(v));
  }
  void field(const char* key, std::uint64_t v) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\"%s\": %llu", sep(), key, static_cast<unsigned long long>(v));
  }
  void field(const char* key, const std::string& v) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\"%s\": \"%s\"", sep(), key, json_escape(v).c_str());
  }
  void end_row() {
    if (file_ != nullptr) std::fprintf(file_, "}");
  }

  /// One tuning-cache entry as a row: the canonical key plus the decision
  /// fields (the same values TuneCache::serialize persists, minus the
  /// authoritative bits field — the sink is for human/tool inspection, the
  /// cache file is the replay source of truth).
  void tune_row(const std::string& canonical_key, const tune::TuneEntry& e) {
    if (file_ == nullptr) return;
    begin_row();
    field("key", canonical_key);
    field("local_size", static_cast<std::int64_t>(e.local_size));
    field("order", e.order);
    field("grid", e.grid);
    field("per_iter_us", e.per_iter_us);
    field("bench", e.bench);
    field("seed", e.seed);
    field("stamp", e.stamp);
    end_row();
  }

  /// The standard bench row — same columns as CsvSink.
  void row(const RunResult& r) {
    if (file_ == nullptr) return;
    const auto& c = r.stats.counters;
    begin_row();
    field("label", r.label);
    field("gflops", r.gflops);
    field("kernel_us", r.kernel_us);
    field("per_iter_us", r.per_iter_us);
    field("occupancy", r.stats.occupancy.achieved);
    field("bound_by", std::string(r.stats.timing.bound_by));
    field("l1_tag_requests", static_cast<std::int64_t>(c.l1_tag_requests_global));
    field("dram_sectors", static_cast<std::int64_t>(c.dram_sectors));
    field("shared_wavefronts", static_cast<std::int64_t>(c.shared_wavefronts));
    field("divergent_branches", static_cast<std::int64_t>(c.divergent_branches));
    end_row();
  }

 private:
  const char* sep() {
    const char* s = first_field_ ? "" : ", ";
    first_field_ = false;
    return s;
  }
  std::FILE* file_ = nullptr;
  bool first_row_ = true;
  bool first_field_ = true;
  std::vector<std::string> meta_;
};

inline void print_header(const char* title, const Options& o, std::int64_t sites) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("lattice L=%d (%lld target sites), simulated NVIDIA A100-40GB\n", o.L,
              static_cast<long long>(sites));
  std::printf("theoretical FLOP per Dslash: %.1f MFLOP (paper: 600.8 at L=32)\n",
              dslash_flops(sites) / 1e6);
  std::printf("================================================================\n");
}

/// A labelled GFLOP/s series with an ASCII bar chart (Fig. 6 style).
class ResultChart {
 public:
  void add(std::string label, double gflops, std::string note = {}) {
    rows_.push_back({std::move(label), gflops, std::move(note)});
  }

  void set_reference(std::string label, double gflops) {
    ref_label_ = std::move(label);
    ref_ = gflops;
  }

  void print() const {
    double maxv = ref_;
    for (const auto& r : rows_) maxv = std::max(maxv, r.gflops);
    const int width = 46;
    for (const auto& r : rows_) {
      const int bar = maxv > 0 ? static_cast<int>(r.gflops / maxv * width) : 0;
      std::printf("  %-34s %8.1f |", r.label.c_str(), r.gflops);
      for (int i = 0; i < bar; ++i) std::printf("#");
      for (int i = bar; i < width; ++i) std::printf(" ");
      std::printf("| %s\n", r.note.c_str());
    }
    if (ref_ > 0.0) {
      const int pos = maxv > 0 ? static_cast<int>(ref_ / maxv * width) : 0;
      std::printf("  %-34s %8.1f  ", ref_label_.c_str(), ref_);
      for (int i = 0; i < pos; ++i) std::printf("-");
      std::printf("^\n");
    }
  }

  [[nodiscard]] double best() const {
    double b = 0.0;
    for (const auto& r : rows_) b = std::max(b, r.gflops);
    return b;
  }

 private:
  struct Row {
    std::string label;
    double gflops;
    std::string note;
  };
  std::vector<Row> rows_;
  std::string ref_label_;
  double ref_ = 0.0;
};

/// Runs one (strategy, order, local, variant) configuration and prints a
/// standard row; returns the result for further aggregation.
inline RunResult run_and_print(const DslashRunner& runner, DslashProblem& problem,
                               const RunRequest& req) {
  RunResult r = runner.run(problem, req);
  std::printf("  %-34s %8.1f GF/s  kernel=%9.1f us  occ=%4.1f%%  bound=%s\n", r.label.c_str(),
              r.gflops, r.kernel_us, 100.0 * r.stats.occupancy.achieved,
              r.stats.timing.bound_by);
  return r;
}

}  // namespace milc::bench
