// bench_queue_semantics — experiment E6: in-order vs out-of-order queue
// submission, the SYCLomatic derived-index penalty, and the three
// no-effect SYCLomatic variations of §IV-D6.
//
// The queue effect is a fixed per-submission overhead, so its *percentage*
// depends on kernel duration: at the paper's L=32 it is 1.5-6.7%; at the
// bench default L=16 the kernel is ~16x shorter and the same microseconds
// loom larger.  The bench prints both the absolute overhead and the
// percentage at the current scale.
#include "bench_common.hpp"
#include "syclomatic/translator.hpp"
#include "cudacompat/cuda_dslash_3lp1.hpp"

using namespace milc;
using namespace milc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  DslashRunner runner;
  print_header("Queue semantics and SYCLomatic variations (paper IV-D6)", opt,
               problem.sites());

  auto run_variant = [&](Variant v) {
    RunRequest req{.strategy = Strategy::LP3_1,
                   .order = IndexOrder::kMajor,
                   .local_size = 768,
                   .variant = v};
    return runner.run(problem, req);
  };

  const RunResult sycl = run_variant(Variant::SYCL);            // out-of-order
  const RunResult somatic = run_variant(Variant::SYCLomatic);   // in-order, derived idx
  const RunResult opt_v = run_variant(Variant::SYCLomaticOpt);  // in-order, direct idx

  std::printf("\nPer-iteration time = kernel + launch overhead (100-iteration loop):\n");
  std::printf("  %-28s kernel=%9.1f us  +launch=%5.1f us  -> %9.1f us/iter\n", "SYCL (ooo)",
              sycl.kernel_us, sycl.per_iter_us - sycl.kernel_us, sycl.per_iter_us);
  std::printf("  %-28s kernel=%9.1f us  +launch=%5.1f us  -> %9.1f us/iter\n",
              "SYCLomatic (in-order)", somatic.kernel_us, somatic.per_iter_us - somatic.kernel_us,
              somatic.per_iter_us);
  std::printf("  %-28s kernel=%9.1f us  +launch=%5.1f us  -> %9.1f us/iter\n",
              "SYCLomatic-opt (in-order)", opt_v.kernel_us,
              opt_v.per_iter_us - opt_v.kernel_us, opt_v.per_iter_us);

  std::printf("\nEffects:\n");
  std::printf("  in-order advantage (opt vs SYCL):     %+5.1f%%   (paper at L=32: +1.5..6.7%%)\n",
              100.0 * (sycl.per_iter_us / opt_v.per_iter_us - 1.0));
  std::printf("  derived-index penalty (raw vs opt):   %+5.1f%%   (paper: 10.0..12.2%% slower)\n",
              100.0 * (somatic.per_iter_us / opt_v.per_iter_us - 1.0));

  std::printf("\nNo-effect variations (paper: 'do not affect performance'):\n");
  for (Variant v : {Variant::SYCLomatic1D, Variant::SYCLomaticFence, Variant::SYCLomaticNoChk}) {
    const RunResult r = run_variant(v);
    std::printf("  %-28s %9.1f us/iter   (delta vs opt: %+.2f%%)\n",
                variant_info(v).name, r.per_iter_us,
                100.0 * (r.per_iter_us / opt_v.per_iter_us - 1.0));
  }

  // -- show the actual migration output, since the variants model it ---------
  std::printf("\nsyclomatic-lite on the 3LP-1 CUDA kernel (index lines only):\n");
  const auto t = syclomatic::translate(cudacompat::kCuda3LP1Source);
  const auto o = syclomatic::optimize_global_id(t.source);
  auto show_line = [](const std::string& src, const char* tag) {
    const auto pos = src.find("int global_id");
    const auto end = src.find(';', pos);
    std::printf("  %-10s %s\n", tag, src.substr(pos, end - pos + 1).c_str());
  };
  show_line(t.source, "migrated:");
  show_line(o.source, "optimized:");
  return 0;
}
