// bench_arch_sweep — ablation A3 (ours): how the strategy ranking responds
// to the machine, something only a simulator can ask.  The paper closes by
// noting its results "are subject to changes based on the architecture";
// here we actually turn the knobs: DRAM bandwidth, register file size, SM
// count and L2 capacity, and watch the 1LP / 3LP-1 / QUDA-style trade-offs
// move.
//
// With --tune-cache <path> the sweep also runs the tuning-cache cycle per
// machine variant: cold-tune each variant, merge every variant's entries
// into one persisted cache, reload it, and warm-start each variant from the
// shared file.  Because the tuning key leads with the architecture
// fingerprint (docs/TUNING.md), the variants never share entries — each
// warm replay must reproduce its own cold winner bit-for-bit.
#include "bench_common.hpp"

#include <set>

#include "tune/session.hpp"
#include "tune/tune_cache.hpp"

using namespace milc;
using namespace milc::bench;

namespace {

struct MachineVariant {
  const char* name;
  gpusim::MachineModel model;
};

std::vector<MachineVariant> variants() {
  std::vector<MachineVariant> v;
  v.push_back({"A100 (baseline)", gpusim::a100()});

  gpusim::MachineModel half_bw = gpusim::a100();
  half_bw.dram_peak_gbs /= 2.0;
  v.push_back({"half DRAM bandwidth", half_bw});

  gpusim::MachineModel big_rf = gpusim::a100();
  big_rf.registers_per_sm *= 2;
  v.push_back({"2x register file", big_rf});

  gpusim::MachineModel small_l2 = gpusim::a100();
  small_l2.l2_bytes /= 8;  // 5 MB: source-field reuse no longer fits
  v.push_back({"L2 / 8 (5 MB)", small_l2});

  gpusim::MachineModel wide = gpusim::a100();
  wide.num_sms = 216;
  wide.dram_peak_gbs *= 1.0;  // same memory: compute-heavy scaling
  v.push_back({"2x SMs, same DRAM", wide});
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  print_header("Architecture sensitivity sweep (ablation A3)", opt, problem.sites());

  std::printf("\n%-22s %12s %12s %12s %14s\n", "machine", "1LP /256", "3LP-1 /768",
              "ratio", "1LP occupancy");
  for (const MachineVariant& mv : variants()) {
    DslashRunner runner(mv.model);
    RunRequest r1{.strategy = Strategy::LP1, .order = IndexOrder::kMajor, .local_size = 256,
                  .variant = Variant::SYCL};
    RunRequest r3{.strategy = Strategy::LP3_1, .order = IndexOrder::kMajor,
                  .local_size = 768, .variant = Variant::SYCL};
    const RunResult lp1 = runner.run(problem, r1);
    const RunResult lp31 = runner.run(problem, r3);
    std::printf("%-22s %10.1f %12.1f %11.2fx %13.1f%%\n", mv.name, lp1.gflops, lp31.gflops,
                lp31.gflops / lp1.gflops, 100.0 * lp1.stats.occupancy.achieved);
  }

  if (!opt.tune_cache_path.empty()) {
    // Per-variant cold tune -> merge -> persist -> reload -> per-variant
    // warm replay.  Distinct machines get distinct arch fingerprints, so the
    // merged cache holds one entry per (variant, strategy) and every warm
    // replay hits exactly its own variant's entry.
    const std::vector<Strategy> tuned = {Strategy::LP1, Strategy::LP3_1};
    tune::TuneCache merged;
    std::vector<tune::TuneEntry> cold_entries;
    for (const MachineVariant& mv : variants()) {
      DslashRunner runner(mv.model);
      tune::ScopedTuneSession scoped({}, {"bench_arch_sweep", opt.seed, opt.stamp});
      for (Strategy s : tuned) {
        const TunedRunResult cold = runner.run_tuned(problem, s);
        if (cold.from_cache) {
          std::fprintf(stderr, "FAIL: cold tune of '%s' hit a fresh cache\n", mv.name);
          return 1;
        }
        cold_entries.push_back(cold.entry);
      }
      merged.merge(scoped.session().cache());
    }
    std::set<std::string> keys;
    for (const auto& [key, entry] : merged.entries()) keys.insert(key);
    if (keys.size() != variants().size() * tuned.size()) {
      std::fprintf(stderr, "FAIL: %zu distinct keys for %zu (variant, strategy) pairs — "
                   "arch fingerprints collided\n",
                   keys.size(), variants().size() * tuned.size());
      return 1;
    }

    std::string err;
    if (!merged.save(opt.tune_cache_path, &err)) {
      std::fprintf(stderr, "FAIL: cannot save tuning cache: %s\n", err.c_str());
      return 1;
    }
    tune::TuneCache reloaded;
    const tune::TuneCache::LoadResult res = reloaded.load(opt.tune_cache_path);
    if (!res.ok() || !(reloaded == merged)) {
      std::fprintf(stderr, "FAIL: tuning-cache round trip: %s (%s)\n",
                   to_string(res.status), res.diagnostic.c_str());
      return 1;
    }

    std::size_t i = 0;
    for (const MachineVariant& mv : variants()) {
      DslashRunner runner(mv.model);
      tune::ScopedTuneSession scoped(reloaded, {"bench_arch_sweep", opt.seed, opt.stamp});
      for (Strategy s : tuned) {
        const TunedRunResult warm = runner.run_tuned(problem, s);
        if (!warm.from_cache || !(warm.entry == cold_entries[i])) {
          std::fprintf(stderr,
                       "FAIL: warm replay of '%s' %s diverged from the cold tune\n",
                       mv.name, to_string(s));
          return 1;
        }
        ++i;
      }
      if (scoped.session().stats().candidates_explored != 0) {
        std::fprintf(stderr, "FAIL: warm start of '%s' re-explored candidates\n", mv.name);
        return 1;
      }
    }
    std::printf("\ntuning cache: %zu per-variant entries (distinct arch fingerprints)\n"
                "cold -> persist -> warm replay verified bit-for-bit through %s\n",
                merged.size(), opt.tune_cache_path.c_str());
  }

  if (opt.L < 24) {
    std::printf("\nNOTE: at L=%d the 1LP grid (%lld groups) cannot fill the device, so\n"
                "its occupancy is grid-limited and the register-file knob has no bite;\n"
                "run with --L 32 (paper scale) to see the register-pressure effect.\n",
                opt.L, static_cast<long long>(problem.sites() / 256));
  }
  std::printf("\nexpected directions:\n"
              "  - half bandwidth: both drop, ratio persists (both memory-bound)\n"
              "  - 2x register file: 1LP's occupancy ceiling lifts, the gap narrows —\n"
              "    the paper's 1LP penalty is a register-pressure artefact, not destiny\n"
              "  - smaller L2: source-vector reuse misses, everyone pays more DRAM\n"
              "  - more SMs on the same DRAM: occupancy matters less, bandwidth rules\n");
  return 0;
}
