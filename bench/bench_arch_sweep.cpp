// bench_arch_sweep — ablation A3 (ours): how the strategy ranking responds
// to the machine, something only a simulator can ask.  The paper closes by
// noting its results "are subject to changes based on the architecture";
// here we actually turn the knobs: DRAM bandwidth, register file size, SM
// count and L2 capacity, and watch the 1LP / 3LP-1 / QUDA-style trade-offs
// move.
#include "bench_common.hpp"

using namespace milc;
using namespace milc::bench;

namespace {

struct MachineVariant {
  const char* name;
  gpusim::MachineModel model;
};

std::vector<MachineVariant> variants() {
  std::vector<MachineVariant> v;
  v.push_back({"A100 (baseline)", gpusim::a100()});

  gpusim::MachineModel half_bw = gpusim::a100();
  half_bw.dram_peak_gbs /= 2.0;
  v.push_back({"half DRAM bandwidth", half_bw});

  gpusim::MachineModel big_rf = gpusim::a100();
  big_rf.registers_per_sm *= 2;
  v.push_back({"2x register file", big_rf});

  gpusim::MachineModel small_l2 = gpusim::a100();
  small_l2.l2_bytes /= 8;  // 5 MB: source-field reuse no longer fits
  v.push_back({"L2 / 8 (5 MB)", small_l2});

  gpusim::MachineModel wide = gpusim::a100();
  wide.num_sms = 216;
  wide.dram_peak_gbs *= 1.0;  // same memory: compute-heavy scaling
  v.push_back({"2x SMs, same DRAM", wide});
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  DslashProblem problem(opt.L, opt.seed);
  print_header("Architecture sensitivity sweep (ablation A3)", opt, problem.sites());

  std::printf("\n%-22s %12s %12s %12s %14s\n", "machine", "1LP /256", "3LP-1 /768",
              "ratio", "1LP occupancy");
  for (const MachineVariant& mv : variants()) {
    DslashRunner runner(mv.model);
    RunRequest r1{.strategy = Strategy::LP1, .order = IndexOrder::kMajor, .local_size = 256,
                  .variant = Variant::SYCL};
    RunRequest r3{.strategy = Strategy::LP3_1, .order = IndexOrder::kMajor,
                  .local_size = 768, .variant = Variant::SYCL};
    const RunResult lp1 = runner.run(problem, r1);
    const RunResult lp31 = runner.run(problem, r3);
    std::printf("%-22s %10.1f %12.1f %11.2fx %13.1f%%\n", mv.name, lp1.gflops, lp31.gflops,
                lp31.gflops / lp1.gflops, 100.0 * lp1.stats.occupancy.achieved);
  }

  if (opt.L < 24) {
    std::printf("\nNOTE: at L=%d the 1LP grid (%lld groups) cannot fill the device, so\n"
                "its occupancy is grid-limited and the register-file knob has no bite;\n"
                "run with --L 32 (paper scale) to see the register-pressure effect.\n",
                opt.L, static_cast<long long>(problem.sites() / 256));
  }
  std::printf("\nexpected directions:\n"
              "  - half bandwidth: both drop, ratio persists (both memory-bound)\n"
              "  - 2x register file: 1LP's occupancy ceiling lifts, the gap narrows —\n"
              "    the paper's 1LP penalty is a register-pressure artefact, not destiny\n"
              "  - smaller L2: source-vector reuse misses, everyone pays more DRAM\n"
              "  - more SMs on the same DRAM: occupancy matters less, bandwidth rules\n");
  return 0;
}
