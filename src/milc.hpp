// milc.hpp — umbrella header: the whole public API in one include.
//
//   #include "milc.hpp"
//
// Pulls in the lattice substrate, the Dslash strategies and runner, the
// operator/solver layer, the QUDA-like baseline, the Wilson extension and
// the simulation/profiling surface.  Individual headers remain the
// fine-grained way in; this exists for quick starts and downstream
// prototypes.
#pragma once

// complex numbers
#include "complexlib/dcomplex.hpp"
#include "complexlib/scomplex.hpp"
#include "complexlib/syclcplx.hpp"

// SU(3) algebra and compression
#include "su3/random_su3.hpp"
#include "su3/reconstruct.hpp"
#include "su3/su3_matrix.hpp"
#include "su3/su3_vector.hpp"

// lattice substrate
#include "lattice/fields.hpp"
#include "lattice/gauge_transform.hpp"
#include "lattice/geometry.hpp"
#include "lattice/hisq.hpp"
#include "lattice/io.hpp"
#include "lattice/metropolis.hpp"
#include "lattice/soa.hpp"

// execution model and device simulation
#include "gpusim/profiler.hpp"
#include "gpusim/roofline.hpp"
#include "minisycl/device.hpp"
#include "minisycl/queue.hpp"
#include "minisycl/usm.hpp"

// the paper's core: strategies, variants, runner, solver
#include "core/compressed.hpp"
#include "core/precision.hpp"
#include "core/problem.hpp"
#include "core/runner.hpp"
#include "core/solver.hpp"

// baselines and extensions
#include "qudaref/staggered_test.hpp"
#include "wilson/wilson_solver.hpp"
