// wilson_solver.hpp — even/odd (Schur) preconditioned inversion of the
// Wilson operator, using gamma5-hermiticity for the normal equations.
//
// The full Wilson matrix (hopping normalisation r = 1):
//
//   M = (m + 4) I - 1/2 D,     D = the hopping term of wilson.hpp
//
// Eliminating the odd sites gives the Schur complement on even sites:
//
//   S = (m + 4) I - 1/(4 (m + 4)) D_eo D_oe
//
// S is not Hermitian, but gamma5 S gamma5 = S^dagger (inherited from
// gamma5 D_eo gamma5 = D_oe^dagger), so CG applies to the normal equations
// S^dagger S x = S^dagger b without ever forming an adjoint operator.
#pragma once

#include "wilson/wilson.hpp"

namespace milc::wilson {

class WilsonOperator {
 public:
  WilsonOperator(const LatticeGeom& geom, const GaugeConfiguration& cfg, double mass);

  [[nodiscard]] const LatticeGeom& geom() const { return *geom_; }
  [[nodiscard]] double mass() const { return mass_; }
  [[nodiscard]] double diag() const { return mass_ + 4.0; }

  /// out(even) = S in(even)  — the Schur complement.
  void apply_schur(const WilsonField& in, WilsonField& out) const;
  /// out(even) = S^dagger in(even) = g5 S g5 in.
  void apply_schur_dagger(const WilsonField& in, WilsonField& out) const;

  /// Hopping halves (device 3LP-style gauge reused from the staggered path).
  void dslash_eo(const WilsonField& in, WilsonField& out) const;
  void dslash_oe(const WilsonField& in, WilsonField& out) const;

 private:
  const LatticeGeom* geom_;
  double mass_;
  GaugeView view_e_, view_o_;
  DeviceGaugeLayout dev_e_, dev_o_;
  NeighborTable nbr_e_, nbr_o_;
  WilsonDslash deo_, doe_;
  mutable WilsonField tmp_o_, tmp_e_;
};

// Wilson-field BLAS needed by the solver.
void axpy(double alpha, const WilsonField& x, WilsonField& y);
void xpay(const WilsonField& x, double alpha, WilsonField& y);
void scale(double alpha, WilsonField& y);

struct WilsonCgResult {
  bool converged = false;
  int iterations = 0;
  double relative_residual = 0.0;       ///< of the normal equations
  double true_relative_residual = 0.0;  ///< ||S x - b|| / ||b||
};

/// Solve S x = b on even sites by CG on S^dagger S (CGNE).
WilsonCgResult solve_schur_cg(const WilsonOperator& op, const WilsonField& b, WilsonField& x,
                              double rel_tol = 1e-8, int max_iterations = 5000);

}  // namespace milc::wilson
