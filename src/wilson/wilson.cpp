#include "wilson/wilson.hpp"

#include <cmath>

#include "su3/random_su3.hpp"

namespace milc::wilson {

void WilsonField::zero() { std::fill(data_.begin(), data_.end(), WilsonSpinor{}); }

void WilsonField::fill_random(std::uint64_t seed) {
  Rng rng(seed);
  for (auto& sp : data_) {
    for (int d = 0; d < kSpins; ++d) sp.s[d] = random_vector(rng);
  }
}

double norm2(const WilsonField& f) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < f.size(); ++i) {
    for (int d = 0; d < kSpins; ++d) acc += norm2(f[i].s[d]);
  }
  return acc;
}

double max_abs_diff(const WilsonField& a, const WilsonField& b) {
  double m = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    for (int d = 0; d < kSpins; ++d) {
      for (int c = 0; c < kColors; ++c) {
        m = std::max(m, cabs(a[i].s[d].c[c] - b[i].s[d].c[c]));
      }
    }
  }
  return m;
}

dcomplex dot(const WilsonField& a, const WilsonField& b) {
  dcomplex acc{0.0, 0.0};
  for (std::int64_t i = 0; i < a.size(); ++i) {
    for (int d = 0; d < kSpins; ++d) acc += dot(a[i].s[d], b[i].s[d]);
  }
  return acc;
}

void apply_gamma5(WilsonField& f) {
  const SpinMatrix& g5 = gamma5();
  for (std::int64_t i = 0; i < f.size(); ++i) {
    WilsonSpinor out{};
    for (int d = 0; d < kSpins; ++d) {
      for (int e = 0; e < kSpins; ++e) {
        const dcomplex& w = g5[static_cast<std::size_t>(d)][static_cast<std::size_t>(e)];
        if (w == dcomplex{0.0, 0.0}) continue;
        for (int c = 0; c < kColors; ++c) out.s[d].c[c] += cmul(w, f[i].s[e].c[c]);
      }
    }
    f[i] = out;
  }
}

double wilson_flops_per_site() {
  // 8 hops x (2 projections (24) + 2 mat-vecs (66) + 2 reconstructions (30)).
  return 8.0 * (2 * 24 + 2 * 66 + 2 * 30);
}

void wilson_reference(const GaugeView& view, const NeighborTable& nbr, const WilsonField& in,
                      WilsonField& out) {
  for (std::int64_t x = 0; x < view.sites(); ++x) {
    WilsonSpinor acc{};
    for (int dir = 0; dir < 2; ++dir) {
      const int link_l = dir == 0 ? 0 : 2;
      const int sign = dir == 0 ? +1 : -1;
      for (int mu = 0; mu < kNdim; ++mu) {
        const SpinMatrix m = one_minus_gamma(mu, static_cast<double>(sign));
        const WilsonSpinor& psi = in[nbr.at(x, mu, link_l)];
        // phi = (1 -+ gamma_mu) psi, full 4x4 spin multiply.
        WilsonSpinor phi{};
        for (int d = 0; d < kSpins; ++d) {
          for (int e = 0; e < kSpins; ++e) {
            const dcomplex& w = m[static_cast<std::size_t>(d)][static_cast<std::size_t>(e)];
            if (w == dcomplex{0.0, 0.0}) continue;
            for (int c = 0; c < kColors; ++c) phi.s[d].c[c] += cmul(w, psi.s[e].c[c]);
          }
        }
        const SU3Matrix<dcomplex>& u = view.link(link_l, x, mu);
        for (int d = 0; d < kSpins; ++d) acc.s[d] += matvec(u, phi.s[d]);
      }
    }
    out[x] = acc;
  }
}

void wilson_projected(const GaugeView& view, const NeighborTable& nbr, const WilsonField& in,
                      WilsonField& out) {
  for (std::int64_t x = 0; x < view.sites(); ++x) {
    WilsonSpinor acc{};
    for (int dir = 0; dir < 2; ++dir) {
      const int link_l = dir == 0 ? 0 : 2;
      const int sign = dir == 0 ? +1 : -1;
      for (int mu = 0; mu < kNdim; ++mu) {
        const Projector& p = projector(mu, sign);
        const WilsonSpinor& psi = in[nbr.at(x, mu, link_l)];
        const SU3Matrix<dcomplex>& u = view.link(link_l, x, mu);
        // Project + colour-multiply the two independent spin components.
        SU3Vector<dcomplex> g[2];
        for (int s = 0; s < 2; ++s) {
          SU3Vector<dcomplex> h;
          const dcomplex ph = p.phase[static_cast<std::size_t>(s)];
          const int q = p.perm[static_cast<std::size_t>(s)];
          for (int c = 0; c < kColors; ++c) h.c[c] = psi.s[s].c[c] + cmul(ph, psi.s[q].c[c]);
          g[s] = matvec(u, h);
          acc.s[s] += g[s];
        }
        // Reconstruct the dependent lower components.
        for (int s = 0; s < 2; ++s) {
          const dcomplex rp = p.rphase[static_cast<std::size_t>(s)];
          const int rq = p.rperm[static_cast<std::size_t>(s)];
          for (int c = 0; c < kColors; ++c) acc.s[2 + s].c[c] += cmul(rp, g[rq].c[c]);
        }
      }
    }
    out[x] = acc;
  }
}

WilsonDslash::WilsonDslash(const DeviceGaugeLayout& gauge, const NeighborTable& nbr)
    : gauge_(&gauge), nbr_(&nbr) {}

WilsonArgs WilsonDslash::make_args(const WilsonField& in, WilsonField& out) const {
  WilsonArgs args;
  args.fwd = gauge_->family(0);
  args.bck = gauge_->family(2);
  args.in = in.data();
  args.out = out.data();
  args.neighbors = nbr_->data();
  args.sites = gauge_->sites();
  return args;
}

namespace {

minisycl::LaunchSpec wilson_spec(std::int64_t sites, int local_size) {
  minisycl::LaunchSpec spec;
  spec.global_size = sites;
  spec.local_size = local_size;
  spec.shared_bytes = 0;
  spec.num_phases = 1;
  spec.traits = WilsonDslashKernel::traits();
  return spec;
}

}  // namespace

void WilsonDslash::apply(const WilsonField& in, WilsonField& out, int local_size) const {
  WilsonDslashKernel kernel{make_args(in, out)};
  minisycl::queue q(minisycl::ExecMode::functional, minisycl::QueueOrder::in_order);
  q.submit(wilson_spec(sites(), local_size), kernel);
}

gpusim::KernelStats WilsonDslash::profile(const WilsonField& in, WilsonField& out,
                                          int local_size, gpusim::MachineModel machine,
                                          gpusim::Calibration cal) const {
  WilsonDslashKernel kernel{make_args(in, out)};
  minisycl::queue q(minisycl::ExecMode::profiled, minisycl::QueueOrder::in_order, machine,
                    cal);
  return q.submit(wilson_spec(sites(), local_size), kernel,
                  "wilson /" + std::to_string(local_size));
}

ksan::SanitizerReport WilsonDslash::sanitize(const WilsonField& in, WilsonField& out,
                                             int local_size, ksan::SanitizeConfig cfg) const {
  WilsonDslashKernel kernel{make_args(in, out)};
  const auto n = static_cast<std::size_t>(sites());
  cfg.regions.push_back(ksan::region_of(kernel.args.fwd, n * kNdim * kColors * kColors));
  cfg.regions.push_back(ksan::region_of(kernel.args.bck, n * kNdim * kColors * kColors));
  cfg.regions.push_back(ksan::region_of(kernel.args.in, n));
  cfg.regions.push_back(ksan::region_of(kernel.args.out, n));
  cfg.regions.push_back(ksan::region_of(kernel.args.neighbors, n * kNeighbors));
  return ksan::sanitize_launch(wilson_spec(sites(), local_size), kernel, std::move(cfg),
                               "wilson /" + std::to_string(local_size));
}

}  // namespace milc::wilson
