// gamma.hpp — Euclidean Dirac gamma matrices and Wilson spin projectors.
//
// The paper's introduction contrasts the staggered formulation (one colour
// vector per site, 16-point stencil, low arithmetic intensity) with the
// Wilson formulation: "four spin components at each site, each of which is
// an SU(3) color vector" and an 8-point stencil.  This module provides the
// gamma algebra in the DeGrand–Rossi basis and the half-spinor projection
// trick every production Wilson code uses: (1 -+ gamma_mu) has rank two, so
// only two spin components need the SU(3) multiply; the other two are
// reconstructed by a permutation and a phase.  The projection/reconstruction
// tables are *derived numerically* from the gamma matrices at first use (and
// the Clifford algebra is unit-tested), so no hand-copied coefficient can go
// silently wrong.
#pragma once

#include <array>

#include "complexlib/dcomplex.hpp"

namespace milc::wilson {

inline constexpr int kSpins = 4;

/// One 4x4 complex spin matrix.
using SpinMatrix = std::array<std::array<dcomplex, kSpins>, kSpins>;

/// gamma_mu for mu = 0..3 (x, y, z, t) in the DeGrand–Rossi basis.
[[nodiscard]] const SpinMatrix& gamma(int mu);

/// gamma_5 = gamma_0 gamma_1 gamma_2 gamma_3 (diagonal in this basis).
[[nodiscard]] const SpinMatrix& gamma5();

/// P = (1 - sign * gamma_mu): the Wilson hopping projector (rank 2).
[[nodiscard]] SpinMatrix one_minus_gamma(int mu, double sign);

/// Derived structure of (1 - sign*gamma_mu): the upper two rows read
///   h_s = psi_s + phase[s] * psi[perm[s]]        (s = 0, 1)
/// and after the colour multiply g_s = U h_s the lower two reconstruct as
///   out_{2+s} = rphase[s] * g[rperm[s]]          (s = 0, 1)
/// together with out_s = g_s.
struct Projector {
  std::array<int, 2> perm{};
  std::array<dcomplex, 2> phase{};
  std::array<int, 2> rperm{};
  std::array<dcomplex, 2> rphase{};
};

/// Projector tables for (mu, sign), derived numerically and cached.
/// sign = +1 selects (1 - gamma_mu) (forward hop), -1 selects (1 + gamma_mu).
[[nodiscard]] const Projector& projector(int mu, int sign);

}  // namespace milc::wilson
