#include "wilson/gamma.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace milc::wilson {

namespace {

constexpr dcomplex O{0.0, 0.0};
constexpr dcomplex P1{1.0, 0.0};
constexpr dcomplex M1{-1.0, 0.0};
constexpr dcomplex PI{0.0, 1.0};
constexpr dcomplex MI{0.0, -1.0};

// DeGrand–Rossi basis (the one QUDA and QDP++ use).
constexpr SpinMatrix kGammaX = {{{O, O, O, PI}, {O, O, PI, O}, {O, MI, O, O}, {MI, O, O, O}}};
constexpr SpinMatrix kGammaY = {{{O, O, O, M1}, {O, O, P1, O}, {O, P1, O, O}, {M1, O, O, O}}};
constexpr SpinMatrix kGammaZ = {{{O, O, PI, O}, {O, O, O, MI}, {MI, O, O, O}, {O, PI, O, O}}};
constexpr SpinMatrix kGammaT = {{{O, O, P1, O}, {O, O, O, P1}, {P1, O, O, O}, {O, P1, O, O}}};

SpinMatrix spin_mul(const SpinMatrix& a, const SpinMatrix& b) {
  SpinMatrix r{};
  for (int i = 0; i < kSpins; ++i) {
    for (int j = 0; j < kSpins; ++j) {
      dcomplex acc{0.0, 0.0};
      for (int k = 0; k < kSpins; ++k) cmac(acc, a[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)], b[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)]);
      r[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = acc;
    }
  }
  return r;
}

bool nearly(const dcomplex& a, const dcomplex& b) {
  return std::abs(a.re - b.re) < 1e-12 && std::abs(a.im - b.im) < 1e-12;
}

Projector derive(int mu, int sign) {
  const SpinMatrix m = one_minus_gamma(mu, static_cast<double>(sign));
  Projector p;

  // Upper rows: h_s = psi_s + phase * psi[perm]; the off-diagonal entry of
  // row s lives in the lower half (columns 2..3) for every gamma in this
  // basis.
  for (int s = 0; s < 2; ++s) {
    bool found = false;
    for (int c = 0; c < kSpins; ++c) {
      if (c == s) continue;
      const dcomplex v = m[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)];
      if (!(v == O)) {
        p.perm[static_cast<std::size_t>(s)] = c;
        p.phase[static_cast<std::size_t>(s)] = v;
        found = true;
      }
    }
    if (!found || !nearly(m[static_cast<std::size_t>(s)][static_cast<std::size_t>(s)], P1)) {
      throw std::logic_error("gamma basis does not have the expected projector shape");
    }
  }

  // Lower rows are multiples of an upper row: row_{2+s} = c * row_t.
  for (int s = 0; s < 2; ++s) {
    const int r = 2 + s;
    bool matched = false;
    for (int t = 0; t < 2 && !matched; ++t) {
      // Candidate factor from the diagonal-ish entry of row t.
      for (int c = 0; c < kSpins; ++c) {
        const dcomplex denom = m[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
        if (denom == O) continue;
        const dcomplex factor =
            cdiv(m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)], denom);
        if (factor == O) continue;
        bool all = true;
        for (int cc = 0; cc < kSpins; ++cc) {
          if (!nearly(m[static_cast<std::size_t>(r)][static_cast<std::size_t>(cc)],
                      cmul(factor, m[static_cast<std::size_t>(t)][static_cast<std::size_t>(cc)]))) {
            all = false;
            break;
          }
        }
        if (all) {
          p.rperm[static_cast<std::size_t>(s)] = t;
          p.rphase[static_cast<std::size_t>(s)] = factor;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      throw std::logic_error("(1 -+ gamma_mu) is not rank-2 in the expected pattern");
    }
  }
  return p;
}

}  // namespace

const SpinMatrix& gamma(int mu) {
  switch (mu) {
    case 0: return kGammaX;
    case 1: return kGammaY;
    case 2: return kGammaZ;
    case 3: return kGammaT;
    default: throw std::out_of_range("gamma: mu must be 0..3");
  }
}

const SpinMatrix& gamma5() {
  static const SpinMatrix g5 =
      spin_mul(spin_mul(kGammaX, kGammaY), spin_mul(kGammaZ, kGammaT));
  return g5;
}

SpinMatrix one_minus_gamma(int mu, double sign) {
  SpinMatrix m{};
  const SpinMatrix& g = gamma(mu);
  for (int i = 0; i < kSpins; ++i) {
    for (int j = 0; j < kSpins; ++j) {
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          cscale(-sign, g[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
    m[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] += P1;
  }
  return m;
}

const Projector& projector(int mu, int sign) {
  static const std::array<std::array<Projector, 2>, 4> cache = [] {
    std::array<std::array<Projector, 2>, 4> c{};
    for (int m = 0; m < 4; ++m) {
      c[static_cast<std::size_t>(m)][0] = derive(m, +1);
      c[static_cast<std::size_t>(m)][1] = derive(m, -1);
    }
    return c;
  }();
  assert(sign == 1 || sign == -1);
  return cache[static_cast<std::size_t>(mu)][sign == 1 ? 0 : 1];
}

}  // namespace milc::wilson
