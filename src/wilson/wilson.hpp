// wilson.hpp — the Wilson-fermion Dslash operator.
//
// The paper's introduction motivates the staggered study by contrast with
// the Wilson formulation: "four spin-components at each site, each of which
// is an SU(3) color vector. The stencil involves eight neighbor sites" —
// and a correspondingly *higher arithmetic intensity*, which is exactly why
// staggered needs the careful memory-traffic treatment the paper performs.
// This module implements the Wilson hopping operator
//
//   D psi(x) = sum_mu [ U_mu(x) (1 - gamma_mu) psi(x+mu)
//                     + U_mu(x-mu)^dag (1 + gamma_mu) psi(x-mu) ]
//
// three ways: a full-gamma-algebra reference, a half-spinor projected host
// implementation, and a site-per-thread device kernel runnable on the
// simulated A100 — enabling the staggered-vs-Wilson arithmetic-intensity
// comparison (extension experiment X3, bench_wilson).
//
// The gauge field reuses the "fat" link family of a GaugeConfiguration and
// the l = 0 / l = 2 slots of the gathered GaugeView / DeviceGaugeLayout
// (forward links and gathered backward adjoints at distance 1).
#pragma once

#include <cstdint>
#include <vector>

#include "core/dslash_args.hpp"
#include "gpusim/stats.hpp"
#include "ksan/sanitizer.hpp"
#include "lattice/fields.hpp"
#include "minisycl/queue.hpp"
#include "wilson/gamma.hpp"

namespace milc::wilson {

/// A Wilson spinor: four spin components, each an SU(3) colour vector
/// (12 complex, 192 bytes).
struct WilsonSpinor {
  SU3Vector<dcomplex> s[kSpins];

  WilsonSpinor& operator+=(const WilsonSpinor& o) {
    for (int d = 0; d < kSpins; ++d) s[d] += o.s[d];
    return *this;
  }
};

/// A spinor field resident on one parity.
class WilsonField {
 public:
  WilsonField() = default;
  WilsonField(const LatticeGeom& geom, Parity p)
      : parity_(p), data_(static_cast<std::size_t>(geom.half_volume())) {}

  [[nodiscard]] Parity parity() const { return parity_; }
  [[nodiscard]] std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  [[nodiscard]] WilsonSpinor& operator[](std::int64_t i) {
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const WilsonSpinor& operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] WilsonSpinor* data() { return data_.data(); }
  [[nodiscard]] const WilsonSpinor* data() const { return data_.data(); }

  void zero();
  void fill_random(std::uint64_t seed);

 private:
  Parity parity_ = Parity::Even;
  std::vector<WilsonSpinor> data_;
};

[[nodiscard]] double norm2(const WilsonField& f);
[[nodiscard]] double max_abs_diff(const WilsonField& a, const WilsonField& b);
/// <a, b> with the spin-colour Hermitian inner product.
[[nodiscard]] dcomplex dot(const WilsonField& a, const WilsonField& b);
/// b -> gamma5 b (diagonal in the DeGrand–Rossi basis).
void apply_gamma5(WilsonField& f);

/// Reference Dslash via the full 4x4 gamma algebra (slow, obviously right).
void wilson_reference(const GaugeView& view, const NeighborTable& nbr, const WilsonField& in,
                      WilsonField& out);

/// Host implementation using the rank-2 projector trick — must agree with
/// wilson_reference bit-for-bit up to rounding.
void wilson_projected(const GaugeView& view, const NeighborTable& nbr, const WilsonField& in,
                      WilsonField& out);

/// FLOPs per site under the same counting style as the staggered operator:
/// 8 hops x (2 projections + 2 SU(3) mat-vecs + 2 reconstructions + 4
/// accumulates).
[[nodiscard]] double wilson_flops_per_site();

/// Kernel arguments for the device kernel.
struct WilsonArgs {
  const dcomplex* fwd = nullptr;   ///< DeviceGaugeLayout family 0 ([s][k][j][i])
  const dcomplex* bck = nullptr;   ///< family 2 (gathered adjoints)
  const WilsonSpinor* in = nullptr;
  WilsonSpinor* out = nullptr;
  const std::int32_t* neighbors = nullptr;  ///< NeighborTable layout
  std::int64_t sites = 0;
};

/// Site-per-thread Wilson Dslash kernel (the Wilson analogue of 1LP; the
/// higher arithmetic intensity is the point of the comparison).
struct WilsonDslashKernel {
  static constexpr int kPhases = 1;
  WilsonArgs args;

  static minisycl::KernelTraits traits() {
    // A whole site keeps 12 complex accumulators live: heavier than 1LP.
    return {.name = "wilson-dslash", .regs_per_thread = 96, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int) { return 0; }

  template <typename Lane>
  void operator()(Lane& lane, int phase) const;
};

/// Owner/driver mirroring FloatDslash / CompressedDslash.
class WilsonDslash {
 public:
  WilsonDslash(const DeviceGaugeLayout& gauge, const NeighborTable& nbr);

  void apply(const WilsonField& in, WilsonField& out, int local_size = 128) const;
  [[nodiscard]] gpusim::KernelStats profile(const WilsonField& in, WilsonField& out,
                                            int local_size,
                                            gpusim::MachineModel machine = gpusim::a100(),
                                            gpusim::Calibration cal =
                                                gpusim::default_calibration()) const;
  /// Replay the kernel under ksan with the gauge/spinor extents declared.
  [[nodiscard]] ksan::SanitizerReport sanitize(const WilsonField& in, WilsonField& out,
                                               int local_size = 128,
                                               ksan::SanitizeConfig cfg = {}) const;
  [[nodiscard]] std::int64_t sites() const { return gauge_->sites(); }

 private:
  WilsonArgs make_args(const WilsonField& in, WilsonField& out) const;
  const DeviceGaugeLayout* gauge_;
  const NeighborTable* nbr_;
};

// ---------------------------------------------------------------------------
// device kernel body
// ---------------------------------------------------------------------------

template <typename Lane>
void WilsonDslashKernel::operator()(Lane& lane, int /*phase*/) const {
  using T = complex_traits<dcomplex>;
  const std::int64_t x = lane.global_id();

  SU3Vector<dcomplex> acc[kSpins];
  for (int dir = 0; dir < 2; ++dir) {       // 0: forward (+mu), 1: backward (-mu)
    const int link_l = dir == 0 ? 0 : 2;    // stencil slot: +1 or -1 hop
    const dcomplex* gauge = dir == 0 ? args.fwd : args.bck;
    const int sign = dir == 0 ? +1 : -1;    // (1 - gamma) fwd, (1 + gamma) bwd
    for (int mu = 0; mu < kNdim; ++mu) {
      const Projector& p = projector(mu, sign);
      const std::int32_t n = device::load_neighbor(lane, args.neighbors, x, mu, link_l);
      const WilsonSpinor* psi = &args.in[n];

      // Project: h_s = psi_s + phase[s] * psi[perm[s]]  (s = 0, 1).
      SU3Vector<dcomplex> h[2];
      for (int s = 0; s < 2; ++s) {
        const dcomplex ph = p.phase[static_cast<std::size_t>(s)];
        const int q = p.perm[static_cast<std::size_t>(s)];
        for (int c = 0; c < kColors; ++c) {
          const dcomplex a = lane.load(&psi->s[s].c[c]);
          const dcomplex b = lane.load(&psi->s[q].c[c]);
          h[s].c[c] = a + cmul(ph, b);
        }
        lane.flops(3 * 8);
      }

      // Colour multiply: g_s = U h_s (two SU(3) mat-vecs instead of four).
      SU3Vector<dcomplex> g[2];
      for (int s = 0; s < 2; ++s) {
        for (int i = 0; i < kColors; ++i) {
          dcomplex v = T::make(0.0, 0.0);
          for (int j = 0; j < kColors; ++j) {
            const dcomplex u = lane.load(&gauge[((x * kNdim + mu) * kColors + j) * kColors + i]);
            T::mac(v, u, h[s].c[j]);
          }
          g[s].c[i] = v;
        }
        lane.flops(66);
      }

      // Accumulate: out_s += g_s; out_{2+s} += rphase[s] * g[rperm[s]].
      for (int s = 0; s < 2; ++s) {
        acc[s] += g[s];
        const dcomplex rp = p.rphase[static_cast<std::size_t>(s)];
        const int rq = p.rperm[static_cast<std::size_t>(s)];
        for (int c = 0; c < kColors; ++c) acc[2 + s].c[c] += cmul(rp, g[rq].c[c]);
        lane.flops(3 * 8 + 3 * 2);
      }
    }
  }

  for (int d = 0; d < kSpins; ++d) {
    for (int c = 0; c < kColors; ++c) lane.store(&args.out[x].s[d].c[c], acc[d].c[c]);
  }
}

}  // namespace milc::wilson
