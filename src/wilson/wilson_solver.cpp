#include "wilson/wilson_solver.hpp"

#include <cmath>

namespace milc::wilson {

WilsonOperator::WilsonOperator(const LatticeGeom& geom, const GaugeConfiguration& cfg,
                               double mass)
    : geom_(&geom),
      mass_(mass),
      view_e_(geom, cfg, Parity::Even),
      view_o_(geom, cfg, Parity::Odd),
      dev_e_(view_e_),
      dev_o_(view_o_),
      nbr_e_(geom, Parity::Even),
      nbr_o_(geom, Parity::Odd),
      deo_(dev_e_, nbr_e_),
      doe_(dev_o_, nbr_o_),
      tmp_o_(geom, Parity::Odd),
      tmp_e_(geom, Parity::Even) {}

void WilsonOperator::dslash_eo(const WilsonField& in, WilsonField& out) const {
  deo_.apply(in, out);
}
void WilsonOperator::dslash_oe(const WilsonField& in, WilsonField& out) const {
  doe_.apply(in, out);
}

void WilsonOperator::apply_schur(const WilsonField& in, WilsonField& out) const {
  // out = (m+4) in - 1/(4(m+4)) D_eo D_oe in
  dslash_oe(in, tmp_o_);
  dslash_eo(tmp_o_, out);
  scale(-1.0 / (4.0 * diag()), out);
  axpy(diag(), in, out);
}

void WilsonOperator::apply_schur_dagger(const WilsonField& in, WilsonField& out) const {
  // S^dagger = g5 S g5.
  tmp_e_ = in;
  apply_gamma5(tmp_e_);
  apply_schur(tmp_e_, out);
  apply_gamma5(out);
}

void axpy(double alpha, const WilsonField& x, WilsonField& y) {
  for (std::int64_t i = 0; i < x.size(); ++i) {
    for (int d = 0; d < kSpins; ++d) y[i].s[d] += alpha * x[i].s[d];
  }
}

void xpay(const WilsonField& x, double alpha, WilsonField& y) {
  for (std::int64_t i = 0; i < x.size(); ++i) {
    for (int d = 0; d < kSpins; ++d) y[i].s[d] = x[i].s[d] + alpha * y[i].s[d];
  }
}

void scale(double alpha, WilsonField& y) {
  for (std::int64_t i = 0; i < y.size(); ++i) {
    for (int d = 0; d < kSpins; ++d) y[i].s[d] = alpha * y[i].s[d];
  }
}

WilsonCgResult solve_schur_cg(const WilsonOperator& op, const WilsonField& b, WilsonField& x,
                              double rel_tol, int max_iterations) {
  WilsonCgResult res;
  const LatticeGeom& g = op.geom();

  // Normal equations: N x = S^dag S x = S^dag b.
  WilsonField rhs(g, Parity::Even), r(g, Parity::Even), p(g, Parity::Even);
  WilsonField t(g, Parity::Even), Np(g, Parity::Even);
  op.apply_schur_dagger(b, rhs);

  auto apply_N = [&](const WilsonField& in, WilsonField& out) {
    op.apply_schur(in, t);
    op.apply_schur_dagger(t, out);
  };

  apply_N(x, Np);
  r = rhs;
  axpy(-1.0, Np, r);
  p = r;

  const double rhs2 = norm2(rhs);
  if (rhs2 == 0.0) {
    x.zero();
    res.converged = true;
    return res;
  }
  double rr = norm2(r);
  const double target = rel_tol * rel_tol * rhs2;

  int it = 0;
  for (; it < max_iterations && rr > target; ++it) {
    apply_N(p, Np);
    const double pNp = dot(p, Np).re;
    if (!(pNp > 0.0)) break;
    const double alpha = rr / pNp;
    axpy(alpha, p, x);
    axpy(-alpha, Np, r);
    const double rr_new = norm2(r);
    xpay(r, rr_new / rr, p);
    rr = rr_new;
  }
  res.iterations = it;
  res.relative_residual = std::sqrt(rr / rhs2);
  res.converged = rr <= target;

  // True residual of the original system S x = b.
  WilsonField Sx(g, Parity::Even);
  op.apply_schur(x, Sx);
  axpy(-1.0, b, Sx);
  res.true_relative_residual = std::sqrt(norm2(Sx) / norm2(b));
  return res;
}

}  // namespace milc::wilson
