#include "qudaref/staggered_test.hpp"

#include "minisycl/queue.hpp"

namespace milc::qudaref {

StaggeredDslashTest::StaggeredDslashTest(DslashProblem& problem, gpusim::MachineModel machine,
                                         gpusim::Calibration cal)
    : problem_(problem),
      machine_(machine),
      cal_(cal),
      b_soa_(problem.b()),
      c_soa_(problem.geom(), problem.target_parity()) {}

QudaArgs StaggeredDslashTest::make_args(Reconstruct scheme) {
  if (!gauge_ || gauge_->scheme() != scheme) {
    gauge_.emplace(problem_.view(), scheme);
  }
  QudaArgs a;
  a.gauge = gauge_->data();
  a.reals = gauge_->reals();
  a.pairs = gauge_->pairs();
  a.scheme = scheme;
  a.b = b_soa_.data();
  a.c_out = c_soa_.data();
  a.neighbors = problem_.neighbors().data();
  a.sites = problem_.sites();
  return a;
}

std::vector<int> StaggeredDslashTest::tuning_candidates() const {
  std::vector<int> out;
  for (int ls : {64, 128, 256, 512, 1024}) {
    if (problem_.sites() % ls == 0) out.push_back(ls);
  }
  return out;
}

StaggeredResult StaggeredDslashTest::run_at(Reconstruct scheme, int local_size) {
  QudaStaggeredKernel kernel{make_args(scheme)};
  minisycl::queue q(minisycl::ExecMode::profiled, minisycl::QueueOrder::in_order, machine_,
                    cal_);
  minisycl::LaunchSpec spec;
  spec.global_size = problem_.sites();
  spec.local_size = local_size;
  spec.shared_bytes = 0;
  spec.num_phases = 1;
  spec.traits = QudaStaggeredKernel::traits();
  spec.traits.regs_per_thread = QudaStaggeredKernel::regs_for(scheme);

  StaggeredResult res;
  res.scheme = scheme;
  res.local_size = local_size;
  res.stats = q.submit(spec, kernel,
                       std::string("staggered_dslash_test ") + to_string(scheme) + " /" +
                           std::to_string(local_size));
  res.kernel_us = res.stats.duration_us;
  res.per_iter_us = res.kernel_us + q.launch_overhead_us();
  res.gflops = problem_.flops() / (res.per_iter_us * 1e-6) / 1e9;

  // Publish the SoA output back to the problem's C field so callers can
  // verify it.
  problem_.c() = c_soa_.to_aos(problem_.geom(), problem_.target_parity());
  return res;
}

StaggeredResult StaggeredDslashTest::run(Reconstruct scheme) {
  StaggeredResult best;
  for (int ls : tuning_candidates()) {
    StaggeredResult r;
    try {
      r = run_at(scheme, ls);
    } catch (const std::invalid_argument&) {
      continue;  // configuration does not fit on an SM — the tuner skips it
    }
    if (best.local_size == 0 || r.kernel_us < best.kernel_us) best = r;
  }
  return best;
}

ksan::SanitizerReport StaggeredDslashTest::sanitize(Reconstruct scheme, int local_size,
                                                    ksan::SanitizeConfig cfg) {
  QudaStaggeredKernel kernel{make_args(scheme)};
  const QudaArgs& a = kernel.args;
  const auto n = static_cast<std::size_t>(a.sites);
  cfg.regions.push_back(ksan::region_of(
      a.gauge, static_cast<std::size_t>(kNlinks * kNdim * a.pairs) * n));
  cfg.regions.push_back(ksan::region_of(a.b, static_cast<std::size_t>(kColors) * n));
  cfg.regions.push_back(ksan::region_of(a.c_out, static_cast<std::size_t>(kColors) * n));
  cfg.regions.push_back(ksan::region_of(a.neighbors, n * kNeighbors));

  minisycl::LaunchSpec spec;
  spec.global_size = a.sites;
  spec.local_size = local_size;
  spec.shared_bytes = 0;
  spec.num_phases = 1;
  spec.traits = QudaStaggeredKernel::traits();
  return ksan::sanitize_launch(spec, kernel, std::move(cfg),
                               std::string("staggered_dslash_test ") + to_string(scheme) +
                                   " /" + std::to_string(local_size));
}

void StaggeredDslashTest::run_functional(Reconstruct scheme) {
  QudaStaggeredKernel kernel{make_args(scheme)};
  minisycl::queue q(minisycl::ExecMode::functional, minisycl::QueueOrder::in_order, machine_,
                    cal_);
  minisycl::LaunchSpec spec;
  spec.global_size = problem_.sites();
  spec.local_size = 128;
  spec.num_phases = 1;
  spec.traits = QudaStaggeredKernel::traits();
  q.submit(spec, kernel);
  problem_.c() = c_soa_.to_aos(problem_.geom(), problem_.target_parity());
}

}  // namespace milc::qudaref
