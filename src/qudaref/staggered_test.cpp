#include "qudaref/staggered_test.hpp"

#include <map>
#include <stdexcept>

#include "minisycl/queue.hpp"
#include "tune/candidates.hpp"
#include "tune/explorer.hpp"

namespace milc::qudaref {

StaggeredDslashTest::StaggeredDslashTest(DslashProblem& problem, gpusim::MachineModel machine,
                                         gpusim::Calibration cal)
    : problem_(problem),
      machine_(machine),
      cal_(cal),
      b_soa_(problem.b()),
      c_soa_(problem.geom(), problem.target_parity()) {}

QudaArgs StaggeredDslashTest::make_args(Reconstruct scheme) {
  if (!gauge_ || gauge_->scheme() != scheme) {
    gauge_.emplace(problem_.view(), scheme);
  }
  QudaArgs a;
  a.gauge = gauge_->data();
  a.reals = gauge_->reals();
  a.pairs = gauge_->pairs();
  a.scheme = scheme;
  a.b = b_soa_.data();
  a.c_out = c_soa_.data();
  a.neighbors = problem_.neighbors().data();
  a.sites = problem_.sites();
  return a;
}

std::vector<int> StaggeredDslashTest::tuning_candidates() const {
  return tune::quda_tuning_candidates(problem_.sites());
}

tune::TuneKey StaggeredDslashTest::tune_key(Reconstruct scheme) const {
  tune::TuneKey key;
  key.arch = tune::arch_fingerprint(machine_);
  const LatticeGeom& g = problem_.geom();
  key.geom = tune::geom_signature(g.extent(0), g.extent(1), g.extent(2), g.extent(3),
                                  problem_.target_parity() == Parity::Even);
  key.kernel = "staggered_quda";
  key.config = "sweep";
  key.recon = to_string(scheme);
  return key;
}

StaggeredResult StaggeredDslashTest::run_at(Reconstruct scheme, int local_size) {
  QudaStaggeredKernel kernel{make_args(scheme)};
  minisycl::queue q(minisycl::ExecMode::profiled, minisycl::QueueOrder::in_order, machine_,
                    cal_);
  minisycl::LaunchSpec spec;
  spec.global_size = problem_.sites();
  spec.local_size = local_size;
  spec.shared_bytes = 0;
  spec.num_phases = 1;
  spec.traits = QudaStaggeredKernel::traits();
  spec.traits.regs_per_thread = QudaStaggeredKernel::regs_for(scheme);
  // Canonical address map (same fixed order as sanitize()'s regions): makes
  // the profiled time a pure function of the launch, which the tuner's
  // bit-for-bit replay verification requires.
  const QudaArgs& a = kernel.args;
  const std::int64_t n = a.sites;
  const auto cbytes = static_cast<std::int64_t>(sizeof(dcomplex));
  spec.regions.push_back({a.gauge, kNlinks * kNdim * a.pairs * n * cbytes});
  spec.regions.push_back({a.b, kColors * n * cbytes});
  spec.regions.push_back({a.c_out, kColors * n * cbytes});
  spec.regions.push_back(
      {a.neighbors, n * kNeighbors * static_cast<std::int64_t>(sizeof(std::int32_t))});

  StaggeredResult res;
  res.scheme = scheme;
  res.local_size = local_size;
  res.stats = q.submit(spec, kernel,
                       std::string("staggered_dslash_test ") + to_string(scheme) + " /" +
                           std::to_string(local_size));
  res.kernel_us = res.stats.duration_us;
  res.per_iter_us = res.kernel_us + q.launch_overhead_us();
  res.gflops = problem_.flops() / (res.per_iter_us * 1e-6) / 1e9;

  // Publish the SoA output back to the problem's C field so callers can
  // verify it.
  problem_.c() = c_soa_.to_aos(problem_.geom(), problem_.target_parity());
  return res;
}

StaggeredResult StaggeredDslashTest::run(Reconstruct scheme) {
  std::vector<tune::Candidate> candidates;
  for (int ls : tuning_candidates()) {
    tune::Candidate c;
    c.local_size = ls;
    candidates.push_back(c);
  }
  if (candidates.empty()) return {};  // pre-tuner contract: silent default

  // QUDA's tuner ranks by kernel time (launch overhead is identical across
  // candidates); the cache stores and replays that same metric.
  std::map<int, StaggeredResult> priced;
  const tune::PriceFn price = [&](const tune::Candidate& c) {
    StaggeredResult r = run_at(scheme, c.local_size);
    const double t = r.kernel_us;
    priced[c.local_size] = std::move(r);
    return t;
  };

  tune::TuneOutcome out;
  try {
    out = tune::tune_or_replay(tune_key(scheme), candidates, price);
  } catch (const std::invalid_argument&) {
    return {};  // every candidate infeasible — same silent result as before
  }
  return priced.at(out.entry.local_size);
}

ksan::SanitizerReport StaggeredDslashTest::sanitize(Reconstruct scheme, int local_size,
                                                    ksan::SanitizeConfig cfg) {
  QudaStaggeredKernel kernel{make_args(scheme)};
  const QudaArgs& a = kernel.args;
  const auto n = static_cast<std::size_t>(a.sites);
  cfg.regions.push_back(ksan::region_of(
      a.gauge, static_cast<std::size_t>(kNlinks * kNdim * a.pairs) * n));
  cfg.regions.push_back(ksan::region_of(a.b, static_cast<std::size_t>(kColors) * n));
  cfg.regions.push_back(ksan::region_of(a.c_out, static_cast<std::size_t>(kColors) * n));
  cfg.regions.push_back(ksan::region_of(a.neighbors, n * kNeighbors));

  minisycl::LaunchSpec spec;
  spec.global_size = a.sites;
  spec.local_size = local_size;
  spec.shared_bytes = 0;
  spec.num_phases = 1;
  spec.traits = QudaStaggeredKernel::traits();
  return ksan::sanitize_launch(spec, kernel, std::move(cfg),
                               std::string("staggered_dslash_test ") + to_string(scheme) +
                                   " /" + std::to_string(local_size));
}

void StaggeredDslashTest::run_functional(Reconstruct scheme) {
  QudaStaggeredKernel kernel{make_args(scheme)};
  minisycl::queue q(minisycl::ExecMode::functional, minisycl::QueueOrder::in_order, machine_,
                    cal_);
  minisycl::LaunchSpec spec;
  spec.global_size = problem_.sites();
  spec.local_size = 128;
  spec.num_phases = 1;
  spec.traits = QudaStaggeredKernel::traits();
  q.submit(spec, kernel);
  problem_.c() = c_soa_.to_aos(problem_.geom(), problem_.target_parity());
}

}  // namespace milc::qudaref
