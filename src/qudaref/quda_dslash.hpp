// quda_dslash.hpp — QUDA-like staggered Dslash baseline.
//
// Reproduces the role of QUDA's `staggered_dslash_test` (paper §IV-D3): a
// site-per-thread kernel over structure-of-arrays fields with optional gauge
// compression (recon-18/12/9).  The SoA layout gives near-ideal coalescing
// (consecutive threads read consecutive doubles); compression trades memory
// traffic for reconstruction FLOPs exactly as in QUDA.  Like all QUDA
// kernels it launches on an in-order stream and is autotuned over launch
// configurations (quda_autotune).
//
// The structural performance profile mirrors the real library: a whole
// site's accumulators live in registers (~64 regs/thread, capping occupancy
// at 50%), which is precisely the "parallelism" axis on which the paper's
// 3LP-1 wins by ~10%.
#pragma once

#include <array>

#include "core/dslash_args.hpp"
#include "lattice/soa.hpp"
#include "minisycl/traits.hpp"

namespace milc::qudaref {

/// Raw pointers for the SoA kernel (double2 / complex-pair planes).
struct QudaArgs {
  const dcomplex* gauge = nullptr;  ///< SoAGauge::data()
  int reals = 18;                   ///< reals per link (scheme)
  int pairs = 9;                    ///< double2 planes per link
  Reconstruct scheme = Reconstruct::k18;
  const dcomplex* b = nullptr;      ///< SoAColor::data() (3 complex planes)
  dcomplex* c_out = nullptr;        ///< SoAColor::data()
  const std::int32_t* neighbors = nullptr;
  std::int64_t sites = 0;

  [[nodiscard]] const dcomplex* gauge_pair(int l, int k, int p) const {
    return gauge + (static_cast<std::size_t>((l * kNdim + k) * pairs + p)) *
                       static_cast<std::size_t>(sites);
  }
  [[nodiscard]] const dcomplex* b_plane(int c) const {
    return b + static_cast<std::size_t>(c) * static_cast<std::size_t>(sites);
  }
  [[nodiscard]] dcomplex* c_plane(int c) const {
    return c_out + static_cast<std::size_t>(c) * static_cast<std::size_t>(sites);
  }
};

struct QudaStaggeredKernel {
  static constexpr int kPhases = 1;
  QudaArgs args;

  static minisycl::KernelTraits traits() {
    return {.name = "quda-staggered", .regs_per_thread = 64, .codegen_slowdown = 1.0};
  }
  /// Compressed links need reconstruction temporaries: QUDA's tuner reports
  /// higher register counts for recon-12/9 kernels than for recon-18.
  static int regs_for(Reconstruct scheme) {
    switch (scheme) {
      case Reconstruct::k18: return 64;
      case Reconstruct::k12: return 68;
      case Reconstruct::k9: return 76;
    }
    return 64;
  }
  static int shared_bytes(int /*local_size*/) { return 0; }

  template <typename Lane>
  void operator()(Lane& lane, int /*phase*/) const {
    const std::int64_t s = lane.global_id();
    dcomplex acc[kColors];

    std::array<double, 18> buf{};
    for (int l = 0; l < kNlinks; ++l) {
      for (int k = 0; k < kNdim; ++k) {
        const std::int32_t n = device::load_neighbor(lane, args.neighbors, s, k, l);

        // Gather the neighbour colour vector (3 coalesced complex planes).
        SU3Vector<dcomplex> bv;
        for (int c = 0; c < kColors; ++c) {
          bv.c[c] = lane.load(&args.b_plane(c)[n]);
        }

        // Load the compressed link (double2 planes) and reconstruct.
        for (int p = 0; p < args.pairs; ++p) {
          const dcomplex pr = lane.load(&args.gauge_pair(l, k, p)[s]);
          buf[static_cast<std::size_t>(2 * p)] = pr.re;
          if (2 * p + 1 < args.reals) buf[static_cast<std::size_t>(2 * p + 1)] = pr.im;
        }
        const SU3Matrix<dcomplex> u = unpack_link(
            args.scheme,
            std::span<const double>(buf.data(), static_cast<std::size_t>(args.reals)));
        lane.flops(static_cast<int>(reconstruct_flops(args.scheme)));

        const SU3Vector<dcomplex> v = matvec(u, bv);
        lane.flops(3 * 22);
        const double sign = kStencilSigns[static_cast<std::size_t>(l)];
        for (int i = 0; i < kColors; ++i) {
          acc[i] += dcomplex{sign * v.c[i].re, sign * v.c[i].im};
        }
        lane.flops(6);
      }
    }

    for (int c = 0; c < kColors; ++c) {
      lane.store(&args.c_plane(c)[s], acc[c]);
    }
  }
};

}  // namespace milc::qudaref
