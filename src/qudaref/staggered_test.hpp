// staggered_test.hpp — the `staggered_dslash_test`-style harness.
//
// Owns the SoA copies of a Dslash problem, runs the QUDA-like kernel for a
// chosen reconstruction scheme, autotunes the launch configuration (QUDA's
// tuner sweeps block sizes and caches the best), and reports GFLOP/s in
// QUDA's convention: the *nominal* operator FLOPs over wall time, so
// compression raises the reported rate (634 -> 728 -> 825 in the paper).
#pragma once

#include <optional>
#include <vector>

#include "core/problem.hpp"
#include "gpusim/calibration.hpp"
#include "gpusim/machine.hpp"
#include "gpusim/stats.hpp"
#include "ksan/sanitizer.hpp"
#include "qudaref/quda_dslash.hpp"
#include "tune/tune_key.hpp"

namespace milc::qudaref {

struct StaggeredResult {
  Reconstruct scheme = Reconstruct::k18;
  int local_size = 0;           ///< tuned work-group size
  double kernel_us = 0.0;
  double per_iter_us = 0.0;     ///< kernel + in-order launch overhead
  double gflops = 0.0;          ///< nominal-FLOP convention (QUDA-style)
  gpusim::KernelStats stats;
};

class StaggeredDslashTest {
 public:
  explicit StaggeredDslashTest(DslashProblem& problem,
                               gpusim::MachineModel machine = gpusim::a100(),
                               gpusim::Calibration cal = gpusim::default_calibration());

  /// Profiled, autotuned run for one reconstruction scheme.  With a
  /// tune::TuneSession installed the sweep consults the cache under
  /// tune_key(scheme) first; a hit replays the cached local size once and
  /// verifies its kernel time bit-for-bit (docs/TUNING.md).
  [[nodiscard]] StaggeredResult run(Reconstruct scheme);

  /// Profiled run at a fixed local size (no tuning).
  [[nodiscard]] StaggeredResult run_at(Reconstruct scheme, int local_size);

  /// Functional run (recon-18) whose output lands in `problem.c()` —
  /// for correctness tests against dslash_reference.
  void run_functional(Reconstruct scheme);

  /// Launch configurations the tuner sweeps (the shared QUDA-style pool,
  /// tune::quda_tuning_candidates).
  [[nodiscard]] std::vector<int> tuning_candidates() const;

  /// The tuning-cache key run() consults: kernel "staggered_quda", the
  /// reconstruction scheme in the recon field.
  [[nodiscard]] tune::TuneKey tune_key(Reconstruct scheme) const;

  /// Replay the kernel under ksan with the SoA field extents declared.
  [[nodiscard]] ksan::SanitizerReport sanitize(Reconstruct scheme, int local_size = 128,
                                               ksan::SanitizeConfig cfg = {});

 private:
  QudaArgs make_args(Reconstruct scheme);

  DslashProblem& problem_;
  gpusim::MachineModel machine_;
  gpusim::Calibration cal_;
  std::optional<SoAGauge> gauge_;  ///< cached per scheme
  SoAColor b_soa_;
  SoAColor c_soa_;
};

}  // namespace milc::qudaref
