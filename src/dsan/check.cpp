#include "dsan/check.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <utility>

namespace dsan {
namespace {

bool is_boundary_kernel(const Event& e) {
  return e.kind == EventKind::Kernel && e.site.rfind("dslash-boundary", 0) == 0;
}

bool is_sync(const Event& e) {
  return e.kind == EventKind::Barrier || e.kind == EventKind::Failover ||
         e.kind == EventKind::Resync;
}

/// Per-event vector clocks, barrier epochs and message indices — shared by
/// every checker.  Actors are discovered from the trace (host actor -1 plus
/// the shard ranks); clocks are dense vectors over the actor-slot mapping.
struct Prep {
  const Trace* trace = nullptr;
  std::vector<std::vector<std::uint64_t>> vc;  ///< per-event clock snapshot
  std::vector<int> epoch;                      ///< per-event barrier epoch
  int num_epochs = 1;
  std::unordered_map<std::uint64_t, std::size_t> send_of;          ///< msg -> Send index
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> recvs_of;  ///< msg -> Recv indices
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> verdicts_of;

  /// True iff event a happens-before event b.
  [[nodiscard]] bool hb(std::size_t a, std::size_t b) const {
    if (a == b) return false;
    const std::vector<std::uint64_t>& va = vc[a];
    const std::vector<std::uint64_t>& vb = vc[b];
    for (std::size_t k = 0; k < va.size(); ++k) {
      if (va[k] > vb[k]) return false;
    }
    return true;
  }
};

Prep prepare(const Trace& trace) {
  Prep p;
  p.trace = &trace;

  std::map<int, std::size_t> slot;
  slot[kHostActor] = 0;  // barriers / solver events always have a slot
  for (const Event& e : trace.events) slot.emplace(e.actor, 0);
  std::size_t next = 0;
  for (auto& [actor, s] : slot) s = next++;
  const std::size_t n_actors = slot.size();

  std::vector<std::vector<std::uint64_t>> clock(n_actors,
                                                std::vector<std::uint64_t>(n_actors, 0));
  p.vc.reserve(trace.size());
  p.epoch.reserve(trace.size());

  int cur_epoch = 0;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const Event& e = trace.events[i];
    p.epoch.push_back(cur_epoch);

    if (e.kind == EventKind::Send && e.msg != 0) p.send_of.emplace(e.msg, i);
    if (e.kind == EventKind::Recv && e.msg != 0) p.recvs_of[e.msg].push_back(i);
    if (e.kind == EventKind::ChecksumVerdict && e.msg != 0) p.verdicts_of[e.msg].push_back(i);

    if (is_sync(e)) {
      // Join every actor, bump the host component for uniqueness, and
      // re-seed all clocks: everything later is ordered after everything
      // earlier.
      std::vector<std::uint64_t> joined(n_actors, 0);
      for (const auto& c : clock) {
        for (std::size_t k = 0; k < n_actors; ++k) joined[k] = std::max(joined[k], c[k]);
      }
      ++joined[slot[kHostActor]];
      for (auto& c : clock) c = joined;
      p.vc.push_back(std::move(joined));
      ++cur_epoch;
      continue;
    }

    const std::size_t a = slot[e.actor];
    std::vector<std::uint64_t>& c = clock[a];
    if (e.kind == EventKind::Recv || e.kind == EventKind::ChecksumVerdict) {
      // Cross-actor edge: the delivery is ordered after its departure.  A
      // recv whose send is missing (bug-zoo mutation) simply gets no edge —
      // check_messages reports the pairing violation.
      if (auto it = p.send_of.find(e.msg); it != p.send_of.end() && it->second < i) {
        const std::vector<std::uint64_t>& vs = p.vc[it->second];
        for (std::size_t k = 0; k < n_actors; ++k) c[k] = std::max(c[k], vs[k]);
      }
    }
    ++c[a];
    p.vc.push_back(c);
  }
  p.num_epochs = cur_epoch + 1;
  return p;
}

struct ReportBuilder {
  ksan::SanitizerReport rep;
  std::size_t max_records = 16;

  explicit ReportBuilder(const std::string& name, const Trace& t, const Prep& p) {
    rep.kernel = name;
    rep.global_size = static_cast<std::int64_t>(t.size());
    rep.num_phases = p.num_epochs;
  }

  void offend(ksan::Category cat, ksan::AccessKind kind, std::uint64_t addr,
              std::uint64_t bytes, int epoch, std::size_t item, std::string note,
              std::int64_t other_item = -1) {
    ++rep.counts[static_cast<std::size_t>(cat)];
    if (rep.records.size() >= max_records) return;
    ksan::Offence o;
    o.category = cat;
    o.kind = kind;
    o.addr = addr;
    o.size = static_cast<std::uint32_t>(std::min<std::uint64_t>(bytes, 0xffffffffull));
    o.phase = epoch;
    o.item = static_cast<std::int64_t>(item);
    o.other_item = other_item;
    o.note = std::move(note);
    rep.records.push_back(std::move(o));
  }
};

/// First overlapping (write, access) span pair between two events, if any.
/// Returns true iff the events conflict (overlap with at least one write).
bool conflict_span(const Event& a, const Event& b, MemSpan* out) {
  for (const MemSpan& w : a.writes) {
    for (const MemSpan& o : b.writes) {
      if (w.overlaps(o)) { *out = w; return true; }
    }
    for (const MemSpan& o : b.reads) {
      if (w.overlaps(o)) { *out = w; return true; }
    }
  }
  for (const MemSpan& r : a.reads) {
    for (const MemSpan& o : b.writes) {
      if (r.overlaps(o)) { *out = o; return true; }
    }
  }
  return false;
}

std::string pair_note(const Event& a, const Event& b) {
  std::string note = "site '";
  note += a.site;
  note += "' (";
  note += to_string(a.kind);
  note += ") vs site '";
  note += b.site;
  note += "' (";
  note += to_string(b.kind);
  note += ")";
  return note;
}

}  // namespace

ksan::SanitizerReport check_happens_before(const Trace& trace, const std::string& label) {
  const Prep p = prepare(trace);
  ReportBuilder rb("dsan:happens-before @ " + label, trace, p);

  // Events with memory effects, grouped by epoch: cross-epoch pairs are
  // always barrier-ordered, so only same-epoch pairs can race — this also
  // keeps the pair scan linear in the number of CG applies.
  std::vector<std::vector<std::size_t>> by_epoch(static_cast<std::size_t>(p.num_epochs));
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const Event& e = trace.events[i];
    if (e.reads.empty() && e.writes.empty()) continue;
    by_epoch[static_cast<std::size_t>(p.epoch[i])].push_back(i);
  }

  for (const std::vector<std::size_t>& group : by_epoch) {
    for (std::size_t x = 0; x < group.size(); ++x) {
      for (std::size_t y = x + 1; y < group.size(); ++y) {
        const std::size_t i = group[x], j = group[y];
        const Event& a = trace.events[i];
        const Event& b = trace.events[j];
        // The unpack -> boundary hand-off is checked directionally below;
        // here it would double-report as a generic race.
        if ((a.kind == EventKind::Unpack && is_boundary_kernel(b)) ||
            (b.kind == EventKind::Unpack && is_boundary_kernel(a))) {
          continue;
        }
        MemSpan span;
        if (!conflict_span(a, b, &span)) continue;
        ++rb.rep.checked_global;
        if (p.hb(i, j) || p.hb(j, i)) continue;
        rb.offend(ksan::Category::CrossDeviceRace, ksan::AccessKind::Store, span.base,
                  span.bytes, p.epoch[i], i, pair_note(a, b),
                  static_cast<std::int64_t>(j));
      }
    }
  }

  // GhostReadBeforeUnpack: the boundary launch must be ordered *after* every
  // unpack whose ghost span it reads (directional — a same-actor launch
  // reordering is not a race but is still this bug).
  for (const std::vector<std::size_t>& group : by_epoch) {
    for (const std::size_t bi : group) {
      if (!is_boundary_kernel(trace.events[bi])) continue;
      const Event& b = trace.events[bi];
      for (const std::size_t ui : group) {
        const Event& u = trace.events[ui];
        if (u.kind != EventKind::Unpack) continue;
        MemSpan span{};
        bool overlap = false;
        for (const MemSpan& w : u.writes) {
          for (const MemSpan& r : b.reads) {
            if (w.overlaps(r)) { span = w; overlap = true; }
          }
        }
        if (!overlap) continue;
        ++rb.rep.checked_global;
        if (p.hb(ui, bi)) continue;
        rb.offend(ksan::Category::GhostReadBeforeUnpack, ksan::AccessKind::Load, span.base,
                  span.bytes, p.epoch[bi], bi, pair_note(u, b),
                  static_cast<std::int64_t>(ui));
      }
    }
  }

  // WireBufferReuse: a pack may only overwrite a wire buffer once every
  // earlier transmission out of it has resolved — its Recv (a rejected
  // delivery still completes the wire's read), or the drop itself.  Program
  // order with the Send alone is NOT enough: the transmission reads the
  // buffer after departing (in-flight DMA).
  for (const std::vector<std::size_t>& group : by_epoch) {
    for (const std::size_t pi : group) {
      const Event& pk = trace.events[pi];
      if (pk.kind != EventKind::Pack) continue;
      for (const std::size_t si : group) {
        if (si >= pi) break;
        const Event& s = trace.events[si];
        if (s.kind != EventKind::Send) continue;
        bool overlap = false;
        MemSpan span{};
        for (const MemSpan& payload : s.reads) {
          for (const MemSpan& w : pk.writes) {
            if (payload.overlaps(w)) { span = payload; overlap = true; }
          }
        }
        if (!overlap) continue;
        ++rb.rep.checked_global;
        std::size_t resolved = si;
        bool has_resolution = s.dropped;
        if (auto it = p.recvs_of.find(s.msg); it != p.recvs_of.end() && !it->second.empty()) {
          resolved = it->second.front();
          has_resolution = true;
        }
        if (has_resolution && p.hb(resolved, pi)) continue;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "' (round %d) still in flight", s.round);
        rb.offend(ksan::Category::WireBufferReuse, ksan::AccessKind::Store, span.base,
                  span.bytes, p.epoch[pi], pi,
                  "repack of wire for site '" + s.site + buf,
                  static_cast<std::int64_t>(si));
      }
    }
  }

  return rb.rep;
}

ksan::SanitizerReport check_messages(const Trace& trace, const std::string& label) {
  const Prep p = prepare(trace);
  ReportBuilder rb("dsan:messages @ " + label, trace, p);

  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const Event& e = trace.events[i];
    if (e.kind == EventKind::Send) {
      ++rb.rep.checked_global;
      const auto it = p.recvs_of.find(e.msg);
      const std::size_t deliveries = it == p.recvs_of.end() ? 0 : it->second.size();
      const MemSpan payload = e.reads.empty() ? MemSpan{} : e.reads.front();
      if (e.dropped && deliveries > 0) {
        rb.offend(ksan::Category::UnmatchedMessage, ksan::AccessKind::Load, payload.base,
                  payload.bytes, p.epoch[i], i,
                  "site '" + e.site + "': dropped transmission yet delivered");
      } else if (!e.dropped && deliveries == 0) {
        rb.offend(ksan::Category::UnmatchedMessage, ksan::AccessKind::Load, payload.base,
                  payload.bytes, p.epoch[i], i, "site '" + e.site + "': send never received");
      } else if (deliveries > 1) {
        rb.offend(ksan::Category::UnmatchedMessage, ksan::AccessKind::Store, payload.base,
                  payload.bytes, p.epoch[i], i,
                  "site '" + e.site + "': duplicated delivery",
                  static_cast<std::int64_t>(it->second.back()));
      }
    } else if (e.kind == EventKind::Recv) {
      ++rb.rep.checked_global;
      if (p.send_of.find(e.msg) == p.send_of.end()) {
        rb.offend(ksan::Category::UnmatchedMessage, ksan::AccessKind::Store, 0, 0, p.epoch[i],
                  i, "site '" + e.site + "': recv without a matching send");
      }
    }
  }
  return rb.rep;
}

ksan::SanitizerReport check_schedule(const Trace& trace, const std::string& label) {
  const Prep p = prepare(trace);
  ReportBuilder rb("dsan:schedule @ " + label, trace, p);

  std::unordered_map<std::int64_t, std::size_t> by_sched;
  std::vector<std::size_t> nodes;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const Event& e = trace.events[i];
    if (e.kind != EventKind::WireSchedule) continue;
    by_sched.emplace(e.sched, i);
    nodes.push_back(i);
    ++rb.rep.checked_global;
    if (e.never_started) {
      rb.offend(ksan::Category::ScheduleDeadlock, ksan::AccessKind::Load, 0, 0, p.epoch[i], i,
                "site '" + e.site + "': starved — never granted a port before the schedule ended");
    }
  }

  // Cycle detection over the wait graph (edge: holder -> waiter).  The
  // greedy schedules release ports in start order, so a real recording is
  // acyclic; a cycle means circular wait, i.e. deadlock.
  enum class Color : std::uint8_t { White, Grey, Black };
  std::unordered_map<std::size_t, Color> color;
  std::vector<std::size_t> stack;

  // Recursive DFS via explicit stack; on finding a grey successor, report
  // the cycle with its site chain.
  for (const std::size_t root : nodes) {
    if (color[root] != Color::White) continue;
    std::vector<std::pair<std::size_t, std::size_t>> work;  // (node, next-dep position)
    work.emplace_back(root, 0);
    color[root] = Color::Grey;
    stack.push_back(root);
    while (!work.empty()) {
      auto& [n, pos] = work.back();
      const Event& e = trace.events[n];
      if (pos >= e.waits_on.size()) {
        color[n] = Color::Black;
        stack.pop_back();
        work.pop_back();
        continue;
      }
      const std::int64_t dep = e.waits_on[pos++];
      const auto it = by_sched.find(dep);
      if (it == by_sched.end()) continue;
      const std::size_t m = it->second;
      if (color[m] == Color::White) {
        color[m] = Color::Grey;
        stack.push_back(m);
        work.emplace_back(m, 0);
      } else if (color[m] == Color::Grey) {
        std::string note = "circular wait:";
        bool in_cycle = false;
        for (const std::size_t s : stack) {
          in_cycle |= s == m;
          if (!in_cycle) continue;
          note += " '" + trace.events[s].site + "' ->";
        }
        note += " '" + trace.events[m].site + "'";
        rb.offend(ksan::Category::ScheduleDeadlock, ksan::AccessKind::Load, 0, 0, p.epoch[m],
                  m, std::move(note), static_cast<std::int64_t>(n));
      }
    }
  }
  return rb.rep;
}

ksan::SanitizerReport check_protocol(const Trace& trace, const std::string& label) {
  const Prep p = prepare(trace);
  ReportBuilder rb("dsan:protocol @ " + label, trace, p);

  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const Event& e = trace.events[i];

    // ChecksumSkipped: every retransmitted delivery needs a verdict — a
    // round > 1 payload accepted on trust defeats the whole retry tier.
    if (e.kind == EventKind::Recv && e.round > 1) {
      ++rb.rep.checked_global;
      if (p.verdicts_of.find(e.msg) == p.verdicts_of.end()) {
        rb.offend(ksan::Category::ChecksumSkipped, ksan::AccessKind::Load, 0, 0, p.epoch[i], i,
                  "site '" + e.site + "': retransmitted delivery accepted without a checksum verdict");
      }
    }

    // UnaggregatedFrames: fabric crossings must ride aggregated frames
    // (the per-frame NIC injection cost is what aggregation amortises).
    if (e.kind == EventKind::Send && e.src_node != e.dst_node && !e.aggregated) {
      ++rb.rep.checked_global;
      rb.offend(ksan::Category::UnaggregatedFrames, ksan::AccessKind::Load, 0, 0, p.epoch[i],
                i, "site '" + e.site + "': fabric crossing without frame aggregation");
    }

    // BoundaryBeforeUnpack: the boundary launch of shard r is only sound
    // once every face delivered to r this epoch has been unpacked before it.
    if (is_boundary_kernel(e)) {
      for (std::size_t ri = 0; ri < trace.events.size(); ++ri) {
        const Event& r = trace.events[ri];
        if (r.kind != EventKind::Recv || !r.delivered || r.actor != e.actor) continue;
        if (p.epoch[ri] != p.epoch[i]) continue;
        ++rb.rep.checked_global;
        bool unpacked = false;
        for (std::size_t ui = 0; ui < trace.events.size(); ++ui) {
          const Event& u = trace.events[ui];
          if (u.kind == EventKind::Unpack && u.msg == r.msg && p.hb(ui, i)) unpacked = true;
        }
        if (!unpacked) {
          rb.offend(ksan::Category::BoundaryBeforeUnpack, ksan::AccessKind::Load, 0, 0,
                    p.epoch[i], i,
                    "site '" + e.site + "': launched before face '" + r.site + "' was unpacked",
                    static_cast<std::int64_t>(ri));
        }
      }
    }

    // RejoinBeforeResync: a rank that rejoins the grid holds a stale (or
    // empty) replica until its resync declares the re-replicated state
    // consistent — any participation in between computes on garbage.
    if (e.kind == EventKind::Rejoin) {
      ++rb.rep.checked_global;
      std::size_t resync_at = trace.events.size();
      for (std::size_t j = i + 1; j < trace.events.size(); ++j) {
        const Event& s = trace.events[j];
        if (s.kind == EventKind::Resync && s.actor == e.actor) {
          resync_at = j;
          break;
        }
      }
      if (resync_at == trace.events.size()) {
        rb.offend(ksan::Category::RejoinBeforeResync, ksan::AccessKind::Load, 0, 0,
                  p.epoch[i], i,
                  "rejoin of actor r" + std::to_string(e.actor) + " has no resync on record");
      }
      for (std::size_t j = i + 1; j < resync_at; ++j) {
        const Event& s = trace.events[j];
        if (s.actor != e.actor) continue;
        if (s.kind != EventKind::Kernel && s.kind != EventKind::Pack &&
            s.kind != EventKind::Unpack && s.kind != EventKind::Send) {
          continue;
        }
        rb.offend(ksan::Category::RejoinBeforeResync, ksan::AccessKind::Load, 0, 0,
                  p.epoch[j], j,
                  "site '" + s.site + "': rejoined actor r" + std::to_string(e.actor) +
                      " participated before its resync",
                  static_cast<std::int64_t>(i));
      }
    }

    // StaleReplicaRead: a resync carrying a re-replication transfer uid must
    // see that transfer's passing checksum verdict first — marking the
    // replica live on an unverified payload is reading a stale shard.
    if (e.kind == EventKind::Resync && e.msg != 0) {
      ++rb.rep.checked_global;
      bool verified = false;
      if (auto it = p.verdicts_of.find(e.msg); it != p.verdicts_of.end()) {
        for (const std::size_t vi : it->second) {
          verified |= vi < i && trace.events[vi].checksum_ok;
        }
      }
      if (!verified) {
        rb.offend(ksan::Category::StaleReplicaRead, ksan::AccessKind::Load, 0, 0, p.epoch[i],
                  i,
                  "resync of actor r" + std::to_string(e.actor) +
                      " before its re-replication transfer verified");
      }
    }

    // SnapshotPromotedBeforeAudit: async checkpointing may only promote a
    // staged snapshot into the durable slot after the deferred audit of the
    // same iteration passed — promoting first makes a corrupted staging copy
    // the restore target.
    if (e.kind == EventKind::SnapshotPromote) {
      ++rb.rep.checked_global;
      bool audited = false;
      for (std::size_t j = 0; j < i; ++j) {
        const Event& a = trace.events[j];
        audited |= a.kind == EventKind::SnapshotAudit && a.iteration == e.iteration;
      }
      if (!audited) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "iteration %d", e.iteration);
        rb.offend(ksan::Category::SnapshotPromotedBeforeAudit, ksan::AccessKind::Store, 0, 0,
                  p.epoch[i], i,
                  std::string("staged snapshot promoted with no passing audit at ") + buf);
      }
    }

    // CheckpointInWindow: a snapshot is only consistent when no transmission
    // of its epoch is still unresolved at the moment it is taken.
    if (e.kind == EventKind::Checkpoint) {
      for (std::size_t si = 0; si < i; ++si) {
        const Event& s = trace.events[si];
        if (s.kind != EventKind::Send || p.epoch[si] != p.epoch[i]) continue;
        ++rb.rep.checked_global;
        bool resolved = s.dropped;
        if (auto it = p.recvs_of.find(s.msg); it != p.recvs_of.end()) {
          for (const std::size_t ri : it->second) resolved |= ri < i;
        }
        if (!resolved) {
          char buf[48];
          std::snprintf(buf, sizeof(buf), "' in flight at iteration %d", e.iteration);
          rb.offend(ksan::Category::CheckpointInWindow, ksan::AccessKind::Store, 0, 0,
                    p.epoch[i], i, "checkpoint with site '" + s.site + buf,
                    static_cast<std::int64_t>(si));
        }
      }
    }
  }
  return rb.rep;
}

std::vector<ksan::SanitizerReport> check_all(const Trace& trace, const std::string& label) {
  std::vector<ksan::SanitizerReport> out;
  out.push_back(check_happens_before(trace, label));
  out.push_back(check_messages(trace, label));
  out.push_back(check_schedule(trace, label));
  out.push_back(check_protocol(trace, label));
  return out;
}

}  // namespace dsan
