// check.hpp — vector-clock happens-before and protocol checks over a dsan
// trace.
//
// The happens-before relation is the standard distributed-systems one
// (Lamport/Mattern vector clocks): program order within an actor (shard
// rank, or the host), a cross-actor edge from every Send to its Recv, and
// Barrier/Failover events that join and re-seed every actor's clock (the
// hardened runner records one per attempt, so recycled buffer addresses
// never alias across attempts or CG applies).  On top of that ordering the
// checkers look for:
//
//   errors
//   * CrossDeviceRace        unordered conflicting accesses to shard or
//                            wire memory from two events (>= 1 write);
//   * GhostReadBeforeUnpack  a dslash-boundary launch whose ghost-slot read
//                            is not ordered *after* the unpack that fills it
//                            (directional: produce-before-consume);
//   * WireBufferReuse        a pack overwriting a wire buffer before the
//                            prior transmission out of it resolved (its
//                            Recv, or the drop) — the in-flight-DMA bug;
//   * UnmatchedMessage       a send never received, a recv with no send, a
//                            duplicated delivery, or a dropped-yet-delivered
//                            transmission;
//   * ScheduleDeadlock       a cycle in the recorded NIC/switch wait graph,
//                            or a transmission the greedy schedule starved;
//
//   lints (protocol shape, advisory)
//   * ChecksumSkipped        a retransmitted delivery with no checksum
//                            verdict on record;
//   * UnaggregatedFrames     a fabric-crossing send that did not ride an
//                            aggregated frame;
//   * BoundaryBeforeUnpack   a boundary launch not ordered after the unpack
//                            of every face delivered to it this epoch;
//   * CheckpointInWindow     a solver checkpoint taken while a transmission
//                            of its epoch was still unresolved;
//   * RejoinBeforeResync     a healed rank participating in the protocol
//                            before its re-replicated shard resynced;
//   * StaleReplicaRead       a replica declared live (resync) before its
//                            re-replication transfer's checksum verified;
//   * SnapshotPromotedBeforeAudit  an async-staged snapshot promoted to the
//                            durable slot with no passing audit on record.
//
// Findings are ksan::SanitizerReport records (one report per checker) so
// the existing dedup/format pipeline, print_sanitize_row and the `sanitizer`
// ctest label apply unchanged.  Offence notes carry the site-grammar names
// ("halo-exchange r0->r1", "dslash-boundary r2", ...) the tests match on.
#pragma once

#include <string>
#include <vector>

#include "dsan/record.hpp"
#include "ksan/report.hpp"

namespace dsan {

/// Races on shard/wire memory: CrossDeviceRace, GhostReadBeforeUnpack,
/// WireBufferReuse.  Report kernel = "dsan:happens-before @ <label>".
[[nodiscard]] ksan::SanitizerReport check_happens_before(const Trace& trace,
                                                         const std::string& label);

/// Send/recv pairing: UnmatchedMessage.  Kernel = "dsan:messages @ <label>".
[[nodiscard]] ksan::SanitizerReport check_messages(const Trace& trace, const std::string& label);

/// Wait-graph cycles and starvation over the recorded greedy schedule:
/// ScheduleDeadlock.  Kernel = "dsan:schedule @ <label>".
[[nodiscard]] ksan::SanitizerReport check_schedule(const Trace& trace, const std::string& label);

/// The protocol lints (checksum/aggregation/ordering plus the elastic
/// recovery checks).  Kernel = "dsan:protocol @ <label>".
[[nodiscard]] ksan::SanitizerReport check_protocol(const Trace& trace, const std::string& label);

/// All four checkers over one trace, in the order above.
[[nodiscard]] std::vector<ksan::SanitizerReport> check_all(const Trace& trace,
                                                           const std::string& label);

}  // namespace dsan
