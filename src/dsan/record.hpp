// record.hpp — the event-graph recorder of dsan, the distributed sanitizer.
//
// ksan checks one kernel launch at a time; the bugs that actually bite the
// overlapped halo protocol live *between* launches and *between* devices:
// a pack racing the wire it feeds, a ghost read before the face arrived, a
// checkpoint snapping state with a message still in flight.  dsan therefore
// records a cluster-wide trace — kernel launches, pack/unpack, message
// send/recv/retransmit, checksum verdicts, wire-schedule decisions,
// checkpoint/restore, failover barriers — and hands it to the checkers in
// check.hpp, which replay it under a vector-clock happens-before relation.
//
// This header is dependency-free (std only) on purpose: gpusim's link and
// fabric schedulers record into it, and gpusim must not grow a dependency on
// ksan (which itself links gpusim).  The checkers live in a separate target
// (milc_dsan) that layers ksan's report types on top.
//
// Like faultsim's Injector, the recorder is an install-to-enable singleton:
// every instrumentation site null-checks Recorder::current(), so with no
// recorder installed the fault-free paths are bit-for-bit unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dsan {

/// Actor id of host-side events (solver checkpoints, barriers); device-side
/// events use the non-negative shard rank.
inline constexpr int kHostActor = -1;

enum class EventKind : std::uint8_t {
  Kernel,        ///< device kernel launch (interior/boundary/other)
  Pack,          ///< halo gather into a wire buffer
  Unpack,        ///< wire/rx scatter into ghost slots
  Send,          ///< one transmission departing (round > 1: a retransmit)
  Recv,          ///< that transmission arriving at the destination shard
  ChecksumVerdict,  ///< integrity verdict for one delivery
  WireSchedule,  ///< one greedy NIC/switch scheduling decision (gpusim)
  Checkpoint,    ///< solver snapshot taken (synchronous, or async staging)
  Restore,       ///< solver snapshot restored
  Failover,      ///< grid re-partitioning after device/node loss (a barrier)
  Barrier,       ///< global synchronisation point (attempt/apply boundary)
  Rejoin,        ///< a healed device/node returns to the grid mid-solve
  Resync,        ///< the rejoined/spare rank's replica declared consistent
                 ///< (re-replication transfer verified; a barrier)
  SnapshotAudit,   ///< async-checkpoint audit of a staged snapshot passed
  SnapshotPromote, ///< staged snapshot promoted to the durable slot
};

[[nodiscard]] const char* to_string(EventKind k);

/// Half-open byte span of host memory standing in for device memory.
struct MemSpan {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;

  [[nodiscard]] bool overlaps(const MemSpan& o) const {
    return base < o.base + o.bytes && o.base < base + bytes;
  }
};

/// Build a span from a typed pointer.
template <typename T>
[[nodiscard]] MemSpan span_of(const T* p, std::size_t count) {
  return {reinterpret_cast<std::uint64_t>(p), count * sizeof(T)};
}

/// One node of the cluster-wide event graph.
struct Event {
  EventKind kind = EventKind::Kernel;
  int actor = kHostActor;   ///< shard rank performing the event
  std::string site;         ///< site-grammar name ("halo-pack r0->r1", ...)

  // Message identity (Send / Recv / ChecksumVerdict).
  std::uint64_t msg = 0;    ///< per-transmission uid (0: none); Unpack carries
                            ///< the uid of the delivery it scatters
  int round = 0;            ///< delivery round, 1-based; > 1 is a retransmit
  int src = -1, dst = -1;   ///< shard ranks of the transmission
  int src_node = 0, dst_node = 0;
  bool dropped = false;     ///< Send: the wire dropped this transmission
  bool delivered = false;   ///< Recv: payload accepted (checksum passed)
  bool checksum_ok = true;  ///< ChecksumVerdict outcome
  bool aggregated = false;  ///< Send: rode an aggregated fabric frame

  // Memory effects.
  std::vector<MemSpan> reads, writes;

  // Wire-schedule instrumentation (WireSchedule only).
  std::int64_t sched = -1;             ///< schedule-node id
  std::vector<std::int64_t> waits_on;  ///< schedule nodes whose port release this start waited on
  double start_us = 0.0, done_us = 0.0;
  bool never_started = false;          ///< still pending when the schedule ended

  int iteration = 0;        ///< Checkpoint / Restore
  std::string detail;
};

/// The recorded trace.  `events` is deliberately a plain mutable vector: the
/// bug-zoo tests re-order, drop and duplicate events to prove every checker
/// fires.
struct Trace {
  std::vector<Event> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  [[nodiscard]] std::size_t size() const { return events.size(); }
};

/// Records one trace.  Install via ScopedRecorder; all instrumentation sites
/// consult `current()` and are no-ops when none is installed.  Recording is
/// single-threaded by construction (the simulator serialises submissions).
class Recorder {
 public:
  [[nodiscard]] static Recorder* current();

  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] Trace take() { return std::move(trace_); }

  /// Kernel-launch skeleton — the minisycl queue hook calls this with the
  /// traits name; the protocol layer then refines the last event via
  /// annotate().  Pack/unpack launches are classified by site prefix.
  void kernel(int actor, std::string site);

  /// Refine the most recent event: protocol-accurate site name, acting
  /// shard, memory effects, and (unpacks) the delivery uid.  No-op on an
  /// empty trace.
  void annotate(int actor, std::string site, std::vector<MemSpan> reads,
                std::vector<MemSpan> writes, std::uint64_t msg = 0);

  /// One transmission departing.  Returns its uid for recv()/checksum().
  std::uint64_t send(int src, int dst, std::string site, int round, MemSpan payload,
                     bool dropped, bool aggregated, int src_node = 0, int dst_node = 0);

  /// The transmission `msg` arriving at its destination.  `delivered` is
  /// false for a delivery rejected by the checksum (the payload is not
  /// consumed; a retransmit follows).
  void recv(std::uint64_t msg, bool delivered, std::vector<MemSpan> reads = {},
            std::vector<MemSpan> writes = {});

  /// Integrity verdict for the delivery of `msg`.
  void checksum(std::uint64_t msg, bool ok);

  void checkpoint(int iteration, std::string detail = {});
  void restore(int iteration, std::string detail = {});
  /// Failover joins every actor's clock (the re-partition re-synchronises
  /// the cluster), like barrier().
  void failover(std::string detail);
  /// A healed device/node returning to the grid (elastic recovery).  The
  /// rejoined actor must not compute before its resync() — the
  /// RejoinBeforeResync protocol check enforces exactly that ordering.
  void rejoin(int actor, std::string detail = {});
  /// The rejoined or spare rank's replica is declared consistent.  `msg` is
  /// the uid of the re-replication transfer that rebuilt it (0 for a local
  /// snapshot replay); a resync whose transfer has no passing checksum
  /// verdict on record is a StaleReplicaRead.  Joins every actor's clock
  /// like failover() — the cluster re-synchronises around the new member.
  void resync(int actor, std::uint64_t msg = 0, std::string detail = {});
  /// Async checkpointing: the deferred audit of a staged snapshot passed.
  void snapshot_audit(int iteration, std::string detail = {});
  /// Async checkpointing: the staged snapshot became the durable one.  Must
  /// be preceded by a matching snapshot_audit (SnapshotPromotedBeforeAudit).
  void snapshot_promote(int iteration, std::string detail = {});
  /// Global synchronisation: every event after it is ordered after every
  /// event before it.  Recorded at attempt/apply boundaries so recycled
  /// buffer addresses never alias across epochs.
  void barrier(std::string site = {});

  /// One greedy scheduling decision (gpusim link/fabric).  `waits_on` names
  /// the schedule nodes that last held the ports this start blocked on.
  /// Returns the schedule-node id for use as a later decision's dependency.
  std::int64_t wire_sched(std::string site, int src, int dst, double start_us, double done_us,
                          std::vector<std::int64_t> waits_on, std::string detail = {});

  /// Event index of the Send with uid `msg` (recorder-internal bookkeeping,
  /// exposed for the checkers' convenience when working on live recorders).
  [[nodiscard]] const std::unordered_map<std::uint64_t, std::size_t>& send_index() const {
    return send_index_;
  }

 private:
  friend struct ScopedRecorder;
  static Recorder*& current_slot();

  Trace trace_;
  std::uint64_t next_msg_ = 0;
  std::int64_t next_sched_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> send_index_;
};

/// RAII install/uninstall, nestable (the previous recorder is restored).
struct ScopedRecorder {
  ScopedRecorder();
  ~ScopedRecorder();
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

  Recorder rec;

 private:
  Recorder* prev_ = nullptr;
};

}  // namespace dsan
