#include "dsan/record.hpp"

namespace dsan {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::Kernel: return "kernel";
    case EventKind::Pack: return "pack";
    case EventKind::Unpack: return "unpack";
    case EventKind::Send: return "send";
    case EventKind::Recv: return "recv";
    case EventKind::ChecksumVerdict: return "checksum";
    case EventKind::WireSchedule: return "wire-schedule";
    case EventKind::Checkpoint: return "checkpoint";
    case EventKind::Restore: return "restore";
    case EventKind::Failover: return "failover";
    case EventKind::Barrier: return "barrier";
    case EventKind::Rejoin: return "rejoin";
    case EventKind::Resync: return "resync";
    case EventKind::SnapshotAudit: return "snapshot-audit";
    case EventKind::SnapshotPromote: return "snapshot-promote";
  }
  return "event";
}

namespace {

EventKind classify_kernel(const std::string& site) {
  if (site.rfind("halo-pack", 0) == 0) return EventKind::Pack;
  if (site.rfind("halo-unpack", 0) == 0) return EventKind::Unpack;
  return EventKind::Kernel;
}

}  // namespace

Recorder*& Recorder::current_slot() {
  static Recorder* slot = nullptr;
  return slot;
}

Recorder* Recorder::current() { return current_slot(); }

void Recorder::kernel(int actor, std::string site) {
  Event e;
  e.kind = classify_kernel(site);
  e.actor = actor;
  e.site = std::move(site);
  trace_.events.push_back(std::move(e));
}

void Recorder::annotate(int actor, std::string site, std::vector<MemSpan> reads,
                        std::vector<MemSpan> writes, std::uint64_t msg) {
  if (trace_.events.empty()) return;
  Event& e = trace_.events.back();
  e.kind = classify_kernel(site);
  e.actor = actor;
  e.site = std::move(site);
  e.reads = std::move(reads);
  e.writes = std::move(writes);
  e.msg = msg;
}

std::uint64_t Recorder::send(int src, int dst, std::string site, int round, MemSpan payload,
                             bool dropped, bool aggregated, int src_node, int dst_node) {
  Event e;
  e.kind = EventKind::Send;
  e.actor = src;
  e.site = std::move(site);
  e.msg = ++next_msg_;
  e.round = round;
  e.src = src;
  e.dst = dst;
  e.src_node = src_node;
  e.dst_node = dst_node;
  e.dropped = dropped;
  e.aggregated = aggregated;
  e.reads.push_back(payload);
  send_index_[e.msg] = trace_.events.size();
  trace_.events.push_back(std::move(e));
  return next_msg_;
}

void Recorder::recv(std::uint64_t msg, bool delivered, std::vector<MemSpan> reads,
                    std::vector<MemSpan> writes) {
  Event e;
  e.kind = EventKind::Recv;
  e.msg = msg;
  e.delivered = delivered;
  e.reads = std::move(reads);
  e.writes = std::move(writes);
  // Destination, round and site come from the matching send so mutation
  // tests can re-target a recv by rewriting one field.
  if (auto it = send_index_.find(msg); it != send_index_.end()) {
    const Event& s = trace_.events[it->second];
    e.actor = s.dst;
    e.site = s.site;
    e.round = s.round;
    e.src = s.src;
    e.dst = s.dst;
    e.src_node = s.src_node;
    e.dst_node = s.dst_node;
  }
  trace_.events.push_back(std::move(e));
}

void Recorder::checksum(std::uint64_t msg, bool ok) {
  Event e;
  e.kind = EventKind::ChecksumVerdict;
  e.msg = msg;
  e.checksum_ok = ok;
  if (auto it = send_index_.find(msg); it != send_index_.end()) {
    const Event& s = trace_.events[it->second];
    e.actor = s.dst;
    e.site = s.site;
    e.round = s.round;
  }
  trace_.events.push_back(std::move(e));
}

void Recorder::checkpoint(int iteration, std::string detail) {
  Event e;
  e.kind = EventKind::Checkpoint;
  e.site = "checkpoint";
  e.iteration = iteration;
  e.detail = std::move(detail);
  trace_.events.push_back(std::move(e));
}

void Recorder::restore(int iteration, std::string detail) {
  Event e;
  e.kind = EventKind::Restore;
  e.site = "restore";
  e.iteration = iteration;
  e.detail = std::move(detail);
  trace_.events.push_back(std::move(e));
}

void Recorder::failover(std::string detail) {
  Event e;
  e.kind = EventKind::Failover;
  e.site = "failover";
  e.detail = std::move(detail);
  trace_.events.push_back(std::move(e));
}

void Recorder::rejoin(int actor, std::string detail) {
  Event e;
  e.kind = EventKind::Rejoin;
  e.actor = actor;
  e.site = "rejoin";
  e.detail = std::move(detail);
  trace_.events.push_back(std::move(e));
}

void Recorder::resync(int actor, std::uint64_t msg, std::string detail) {
  Event e;
  e.kind = EventKind::Resync;
  e.actor = actor;
  e.site = "resync";
  e.msg = msg;
  e.detail = std::move(detail);
  trace_.events.push_back(std::move(e));
}

void Recorder::snapshot_audit(int iteration, std::string detail) {
  Event e;
  e.kind = EventKind::SnapshotAudit;
  e.site = "snapshot-audit";
  e.iteration = iteration;
  e.detail = std::move(detail);
  trace_.events.push_back(std::move(e));
}

void Recorder::snapshot_promote(int iteration, std::string detail) {
  Event e;
  e.kind = EventKind::SnapshotPromote;
  e.site = "snapshot-promote";
  e.iteration = iteration;
  e.detail = std::move(detail);
  trace_.events.push_back(std::move(e));
}

void Recorder::barrier(std::string site) {
  Event e;
  e.kind = EventKind::Barrier;
  e.site = site.empty() ? "barrier" : std::move(site);
  trace_.events.push_back(std::move(e));
}

std::int64_t Recorder::wire_sched(std::string site, int src, int dst, double start_us,
                                  double done_us, std::vector<std::int64_t> waits_on,
                                  std::string detail) {
  Event e;
  e.kind = EventKind::WireSchedule;
  e.actor = src;
  e.site = std::move(site);
  e.src = src;
  e.dst = dst;
  e.sched = next_sched_++;
  e.start_us = start_us;
  e.done_us = done_us;
  e.waits_on = std::move(waits_on);
  e.detail = std::move(detail);
  const std::int64_t id = e.sched;
  trace_.events.push_back(std::move(e));
  return id;
}

ScopedRecorder::ScopedRecorder() : prev_(Recorder::current_slot()) {
  Recorder::current_slot() = &rec;
}

ScopedRecorder::~ScopedRecorder() { Recorder::current_slot() = prev_; }

}  // namespace dsan
