// cuda_api.hpp — a miniature CUDA runtime on top of the simulator.
//
// The paper's §IV-C item 2 ports 3LP-1 to CUDA to compare toolchains; this
// header provides just enough of the CUDA programming model to express that
// kernel natively: dim3 launches, in-order streams (CUDA semantics), and a
// per-thread context exposing threadIdx/blockIdx/blockDim.  __syncthreads()
// maps to the executor's phase boundary exactly like SYCL's group_barrier.
#pragma once

#include <cstdint>
#include <string>

#include "minisycl/queue.hpp"

namespace cudacompat {

struct dim3 {
  unsigned x = 1;
  unsigned y = 1;
  unsigned z = 1;
  constexpr dim3() = default;
  constexpr dim3(unsigned x_, unsigned y_ = 1, unsigned z_ = 1) : x(x_), y(y_), z(z_) {}
};

struct uint1d {
  unsigned x = 0;
};

/// Thread-view of a kernel launch: CUDA built-ins + lane-mediated memory
/// access.  Kernels are templates over the underlying Lane, like SYCL ones.
template <typename Lane>
class ThreadCtx {
 public:
  ThreadCtx(Lane& lane, const dim3& grid, const dim3& block) : lane_(lane) {
    threadIdx.x = static_cast<unsigned>(lane.local_id());
    blockIdx.x = static_cast<unsigned>(lane.group_id());
    blockDim.x = block.x;
    gridDim.x = grid.x;
  }

  uint1d threadIdx, blockIdx, blockDim, gridDim;

  [[nodiscard]] Lane& lane() { return lane_; }

  template <typename T>
  [[nodiscard]] T load(const T* p) {
    return lane_.load(p);
  }
  template <typename T>
  void store(T* p, const T& v) {
    lane_.store(p, v);
  }
  void atomicAdd(double* p, double v) { lane_.atomic_add(p, v); }
  template <typename T>
  [[nodiscard]] T shared_load(int idx) {
    return lane_.template shared_load<T>(idx);
  }
  template <typename T>
  void shared_store(int idx, const T& v) {
    lane_.template shared_store<T>(idx, v);
  }

 private:
  Lane& lane_;
};

/// CUDA stream: always in-order (the property the paper credits for the
/// SYCLomatic/CUDA launch-overhead advantage, §IV-D6).
class Stream {
 public:
  explicit Stream(minisycl::ExecMode mode = minisycl::ExecMode::profiled,
                  gpusim::MachineModel machine = gpusim::a100(),
                  gpusim::Calibration cal = gpusim::default_calibration())
      : queue_(mode, minisycl::QueueOrder::in_order, machine, cal) {}

  [[nodiscard]] minisycl::queue& queue() { return queue_; }

  /// kernel<<<grid, block, shared_bytes, stream>>>(...) equivalent.
  /// The kernel type provides kPhases, traits() and
  /// operator()(ThreadCtx<Lane>&, int phase).
  template <typename Kernel>
  gpusim::KernelStats launch(const dim3& grid, const dim3& block, int shared_bytes,
                             const Kernel& kernel, std::string name = {}) {
    minisycl::LaunchSpec spec;
    spec.global_size = static_cast<std::int64_t>(grid.x) * block.x;
    spec.local_size = static_cast<int>(block.x);
    spec.shared_bytes = shared_bytes;
    spec.num_phases = Kernel::kPhases;
    spec.traits = Kernel::traits();
    auto wrapper = [&kernel, grid, block](auto& lane, int phase) {
      ThreadCtx<std::decay_t<decltype(lane)>> ctx(lane, grid, block);
      kernel(ctx, phase);
    };
    return queue_.submit(spec, wrapper, std::move(name));
  }

 private:
  minisycl::queue queue_;
};

/// cudaMalloc / cudaFree stand-ins (host memory doubles as device memory in
/// the simulator; the region still goes through the normal access tracing).
template <typename T>
[[nodiscard]] T* cuda_malloc(std::size_t count) {
  return new T[count]();
}
template <typename T>
void cuda_free(T* p) {
  delete[] p;
}

}  // namespace cudacompat
