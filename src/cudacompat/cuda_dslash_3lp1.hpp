// cuda_dslash_3lp1.hpp — the CUDA port of the 3LP-1 kernel (paper §IV-C
// item 2) expressed against the mini-CUDA runtime, plus the literal CUDA
// source text that serves as the SYCLomatic translator's input corpus.
#pragma once

#include "core/dslash_args.hpp"
#include "core/index_orders.hpp"
#include "cudacompat/cuda_api.hpp"

namespace cudacompat {

/// CUDA-style 3LP-1 (k-major): identical maths to the SYCL kernel, indices
/// derived the CUDA way from threadIdx/blockIdx.
struct CudaDslash3LP1 {
  static constexpr int kPhases = 2;
  milc::DslashArgs<milc::dcomplex> args;

  static minisycl::KernelTraits traits() {
    return {.name = "3LP-1 CUDA", .regs_per_thread = 40, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int local_size) {
    return local_size * static_cast<int>(sizeof(milc::dcomplex));
  }

  template <typename Lane>
  void operator()(ThreadCtx<Lane>& ctx, int phase) const {
    using namespace milc;
    const int gid = static_cast<int>(ctx.blockIdx.x * ctx.blockDim.x + ctx.threadIdx.x);
    const int tid = static_cast<int>(ctx.threadIdx.x);
    const std::int64_t s = gid / (kNdimIdx * kNrow);
    const int i = gid % kNrow;
    const int k = (gid / kNrow) % kNdimIdx;

    if (phase == 0) {
      using T = complex_traits<dcomplex>;
      dcomplex acc = T::make(0.0, 0.0);
      for (int l = 0; l < kNlinks; ++l) {
        const std::int32_t n =
            device::load_neighbor(ctx.lane(), args.neighbors, s, k, l);
        const dcomplex v = device::row_dot(ctx.lane(), args, l, s, k, i, &args.b[n]);
        device::accumulate_signed(ctx.lane(), acc, kStencilSigns[static_cast<std::size_t>(l)],
                                  v);
      }
      ctx.template shared_store<dcomplex>(tid, acc);
      return;  // __syncthreads()
    }

    // if (k == 0) fold the four k-partials and write C(i, s) — predicated.
    const int base = tid - k * kNrow;
    ctx.lane().set_masked(k != 0);
    dcomplex sum = ctx.template shared_load<dcomplex>(base);
    for (int kk = 1; kk < kNdimIdx; ++kk) {
      sum += ctx.template shared_load<dcomplex>(base + kk * kNrow);
    }
    ctx.lane().flops(6);
    ctx.store(&args.c_out[s].c[i], sum);
    ctx.lane().set_masked(false);
  }
};

/// The CUDA source of the kernel above, as it would appear in the
/// benchmark's .cu file — the input the SYCLomatic translator is exercised
/// and golden-tested on.
inline constexpr const char* kCuda3LP1Source = R"cuda(
__global__ void dslash_3lp1(const double2 *fat, const double2 *lng,
                            const double2 *fatbck, const double2 *lngbck,
                            const double2 *b, double2 *c_out,
                            const int *neighbors, int nsites) {
  __shared__ double2 c[LOCAL_SIZE];
  int global_id = blockIdx.x * blockDim.x + threadIdx.x;
  int local_id = threadIdx.x;
  int s = global_id / (ndim * nrow);
  int i = global_id % nrow;
  int k = (global_id / nrow) % ndim;
  double2 acc = make_double2(0.0, 0.0);
  for (int l = 0; l < nmat; l++) {
    int n = neighbors[s * 16 + k * 4 + l];
    for (int j = 0; j < ncol; j++) {
      acc = cmac(acc, link_elem(l, s, k, i, j), b[n * ncol + j]);
    }
  }
  c[local_id] = acc;
  __syncthreads();
  if (k == 0) {
    double2 sum = c[local_id];
    for (int kk = 1; kk < ndim; kk++) {
      sum = cadd(sum, c[local_id + kk * nrow]);
    }
    c_out[s * nrow + i] = sum;
  }
}

void run(int iterations) {
  double2 *fat, *b, *c;
  CUCHECK(cudaMalloc(&fat, nbytes_gauge));
  CUCHECK(cudaMalloc(&b, nbytes_vec));
  CUCHECK(cudaMalloc(&c, nbytes_vec));
  CUCHECK(cudaMemcpy(fat, host_fat, nbytes_gauge, cudaMemcpyHostToDevice));
  for (int it = 0; it < iterations; it++) {
    dslash_3lp1<<<grid, block>>>(fat, lng, fatbck, lngbck, b, c, neighbors, nsites);
  }
  CUCHECK(cudaMemcpy(host_c, c, nbytes_vec, cudaMemcpyDeviceToHost));
  CUCHECK(cudaFree(fat));
}
)cuda";

}  // namespace cudacompat
