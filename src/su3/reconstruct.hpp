// reconstruct.hpp — QUDA-style gauge-link compression.
//
// QUDA reduces memory traffic by storing fewer than 18 real numbers per SU(3)
// link and reconstructing the rest on the fly (paper §IV-D3: recon 18 / 12 /
// 9 run at 634 / 728 / 825 GFLOP/s).  We implement the three schemes used by
// `staggered_dslash_test`:
//
//  * recon-18: all 9 complex entries (no compression).
//  * recon-12: first two rows; the third row of an SU(3) matrix is
//    row2 = conj(row0 x row1).
//  * recon-9:  a U(3) scheme (QUDA uses it for HISQ long links, which are
//    unit-determinant-magnitude but not special-unitary): a global phase
//    phi = arg(det W)/3 plus the 8-parameter SU(3) reconstruction of
//    V = e^{-i phi} W.  The 8-parameter scheme stores a2, a3, b1 and the
//    phases of a1 and c1; the remaining entries follow from unitarity and
//    the SU(3) cofactor identity conj(U_ij) = cofactor_ij.
//
// The row-1 degenerate case |a1| -> 1 (so |a2|^2 + |a3|^2 -> 0) makes the
// 8-parameter linear system singular; pack9() reports it via
// is_recon9_safe() and callers fall back to recon-12.  Random gauge fields
// never hit it.
#pragma once

#include <cstddef>
#include <span>

#include "su3/su3_matrix.hpp"

namespace milc {

/// Gauge-field compression scheme (named after reals stored per link).
enum class Reconstruct { k18, k12, k9 };

/// Reals stored per link for a scheme.
[[nodiscard]] constexpr int reals_per_link(Reconstruct r) {
  switch (r) {
    case Reconstruct::k18: return 18;
    case Reconstruct::k12: return 12;
    case Reconstruct::k9: return 9;
  }
  return 18;
}

[[nodiscard]] const char* to_string(Reconstruct r);

/// True when the 8-parameter subsystem of recon-9 is numerically safe for u.
[[nodiscard]] bool is_recon9_safe(const SU3Matrix<dcomplex>& u);

/// Pack u into exactly reals_per_link(scheme) doubles at out[0..n).
void pack_link(Reconstruct scheme, const SU3Matrix<dcomplex>& u, std::span<double> out);

/// Inverse of pack_link.  The reconstruction maths performs the extra FLOPs a
/// real GPU kernel would pay, so compression trades bandwidth for compute in
/// the performance model exactly as it does on hardware.
[[nodiscard]] SU3Matrix<dcomplex> unpack_link(Reconstruct scheme, std::span<const double> in);

/// Encode a contiguous slab of links (reals_per_link doubles each) — the
/// frame layout of gauge wire payloads (docs/WIRE.md §3).  `out` must hold
/// links.size() * reals_per_link(scheme) doubles.
void pack_links(Reconstruct scheme, std::span<const SU3Matrix<dcomplex>> links,
                std::span<double> out);

/// Inverse of pack_links: decode a slab frame back into links.
void unpack_links(Reconstruct scheme, std::span<const double> in,
                  std::span<SU3Matrix<dcomplex>> links);

/// FLOPs the reconstruction adds per link (counted once, used by the
/// performance model of the QUDA-like kernel).
[[nodiscard]] constexpr double reconstruct_flops(Reconstruct r) {
  switch (r) {
    case Reconstruct::k18: return 0.0;
    // row2 = conj(row0 x row1): 3 entries, each 2 cmul + 1 sub = 14 FLOP.
    case Reconstruct::k12: return 3 * 14.0;
    // recon-9: two square roots + 4 reconstructed entries, each ~3 cmul and
    // a real division, plus the global-phase rotation of all 9 entries.
    case Reconstruct::k9: return 2 * 8.0 + 4 * 24.0 + 9 * 6.0;
  }
  return 0.0;
}

}  // namespace milc
