// random_su3.hpp — generation of Haar-ish random SU(3) matrices and random
// colour vectors, used to fill the benchmark's gauge and quark fields (the
// MILC-Dslash benchmark initialises its fields with random data; only the
// stencil structure matters for performance).
#pragma once

#include <cstdint>

#include "su3/su3_matrix.hpp"

namespace milc {

/// Small, fast, seedable counter-based generator (SplitMix64).  Deterministic
/// across platforms so tests and benches are reproducible.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  constexpr std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [-1, 1).
  constexpr double next_signed() { return 2.0 * next_double() - 1.0; }

  /// Standard normal via Box–Muller (uses two uniforms per call pair).
  double next_gaussian();

 private:
  std::uint64_t state_;
};

/// Random SU(3) matrix: Gaussian entries, Gram–Schmidt orthonormalised rows,
/// then the third row is rotated so that det = 1 exactly (up to rounding).
[[nodiscard]] SU3Matrix<dcomplex> random_su3(Rng& rng);

/// Random colour vector with components uniform in [-1, 1)^2.
[[nodiscard]] SU3Vector<dcomplex> random_vector(Rng& rng);

/// Project an approximately-unitary matrix back onto SU(3)
/// (Gram–Schmidt + det fix); used after reconstruction-error studies.
[[nodiscard]] SU3Matrix<dcomplex> reunitarize(const SU3Matrix<dcomplex>& u);

}  // namespace milc
