// su3_vector.hpp — three-component complex colour vector.
//
// In staggered lattice QCD every site carries one SU(3) colour vector
// (paper §I: "It requires only one SU(3) color vector at each site").
#pragma once

#include <array>
#include <cstddef>

#include "complexlib/complex_traits.hpp"

namespace milc {

inline constexpr int kColors = 3;  ///< SU(3): three colour components.

/// A colour vector: 3 complex numbers.  Trivially copyable; the memory model
/// treats it as 6 packed doubles (48 bytes).
template <ComplexScalar C = dcomplex>
struct SU3Vector {
  C c[kColors]{};

  constexpr C& operator[](int i) { return c[i]; }
  constexpr const C& operator[](int i) const { return c[i]; }

  constexpr SU3Vector& operator+=(const SU3Vector& o) {
    for (int i = 0; i < kColors; ++i) c[i] += o.c[i];
    return *this;
  }
  constexpr SU3Vector& operator-=(const SU3Vector& o) {
    for (int i = 0; i < kColors; ++i) c[i] -= o.c[i];
    return *this;
  }

  friend constexpr bool operator==(const SU3Vector& a, const SU3Vector& b) {
    for (int i = 0; i < kColors; ++i)
      if (!(a.c[i] == b.c[i])) return false;
    return true;
  }
};

template <ComplexScalar C>
[[nodiscard]] constexpr SU3Vector<C> operator+(SU3Vector<C> a, const SU3Vector<C>& b) {
  a += b;
  return a;
}

template <ComplexScalar C>
[[nodiscard]] constexpr SU3Vector<C> operator-(SU3Vector<C> a, const SU3Vector<C>& b) {
  a -= b;
  return a;
}

/// Scalar multiple s*v (real scalar).
template <ComplexScalar C>
[[nodiscard]] constexpr SU3Vector<C> operator*(double s, const SU3Vector<C>& v) {
  SU3Vector<C> r;
  for (int i = 0; i < kColors; ++i) {
    using T = complex_traits<C>;
    r.c[i] = T::make(s * T::real(v.c[i]), s * T::imag(v.c[i]));
  }
  return r;
}

/// Hermitian inner product <a, b> = sum_i conj(a_i) * b_i.
template <ComplexScalar C>
[[nodiscard]] constexpr C dot(const SU3Vector<C>& a, const SU3Vector<C>& b) {
  using T = complex_traits<C>;
  C acc = T::make(0.0, 0.0);
  for (int i = 0; i < kColors; ++i) T::conj_mac(acc, a.c[i], b.c[i]);
  return acc;
}

/// Squared 2-norm |v|^2 (real).
template <ComplexScalar C>
[[nodiscard]] constexpr double norm2(const SU3Vector<C>& v) {
  using T = complex_traits<C>;
  double acc = 0.0;
  for (int i = 0; i < kColors; ++i) {
    acc += T::real(v.c[i]) * T::real(v.c[i]) + T::imag(v.c[i]) * T::imag(v.c[i]);
  }
  return acc;
}

}  // namespace milc
