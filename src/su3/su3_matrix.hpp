// su3_matrix.hpp — 3x3 complex matrices parametrising the gluon field.
//
// The U matrices of eq. (1) are "square complex matrices of order three".
// Row-major storage: element (i,j) lives at e[i][j]; a matrix is 9 complex
// numbers = 144 bytes, matching the layout the paper's coalescing analysis
// (§IV-D7) assumes.
#pragma once

#include <cmath>

#include "su3/su3_vector.hpp"

namespace milc {

template <ComplexScalar C = dcomplex>
struct SU3Matrix {
  C e[kColors][kColors]{};

  constexpr C* operator[](int row) { return e[row]; }
  constexpr const C* operator[](int row) const { return e[row]; }

  /// The 3x3 identity.
  [[nodiscard]] static constexpr SU3Matrix identity() {
    using T = complex_traits<C>;
    SU3Matrix m;
    for (int i = 0; i < kColors; ++i) m.e[i][i] = T::make(1.0, 0.0);
    return m;
  }

  friend constexpr bool operator==(const SU3Matrix& a, const SU3Matrix& b) {
    for (int i = 0; i < kColors; ++i)
      for (int j = 0; j < kColors; ++j)
        if (!(a.e[i][j] == b.e[i][j])) return false;
    return true;
  }
};

/// y = U * x  (the inner product of eq. (1): 66 FLOP).
template <ComplexScalar C>
[[nodiscard]] constexpr SU3Vector<C> matvec(const SU3Matrix<C>& u, const SU3Vector<C>& x) {
  using T = complex_traits<C>;
  SU3Vector<C> y;
  for (int i = 0; i < kColors; ++i) {
    C acc = T::make(0.0, 0.0);
    for (int j = 0; j < kColors; ++j) T::mac(acc, u.e[i][j], x.c[j]);
    y.c[i] = acc;
  }
  return y;
}

/// y = U^dagger * x without materialising the adjoint.
template <ComplexScalar C>
[[nodiscard]] constexpr SU3Vector<C> adj_matvec(const SU3Matrix<C>& u, const SU3Vector<C>& x) {
  using T = complex_traits<C>;
  SU3Vector<C> y;
  for (int i = 0; i < kColors; ++i) {
    C acc = T::make(0.0, 0.0);
    for (int j = 0; j < kColors; ++j) T::conj_mac(acc, u.e[j][i], x.c[j]);
    y.c[i] = acc;
  }
  return y;
}

/// C = A * B
template <ComplexScalar C>
[[nodiscard]] constexpr SU3Matrix<C> matmul(const SU3Matrix<C>& a, const SU3Matrix<C>& b) {
  using T = complex_traits<C>;
  SU3Matrix<C> r;
  for (int i = 0; i < kColors; ++i) {
    for (int j = 0; j < kColors; ++j) {
      C acc = T::make(0.0, 0.0);
      for (int k = 0; k < kColors; ++k) T::mac(acc, a.e[i][k], b.e[k][j]);
      r.e[i][j] = acc;
    }
  }
  return r;
}

/// U^dagger (conjugate transpose).
template <ComplexScalar C>
[[nodiscard]] constexpr SU3Matrix<C> adjoint(const SU3Matrix<C>& u) {
  using T = complex_traits<C>;
  SU3Matrix<C> r;
  for (int i = 0; i < kColors; ++i)
    for (int j = 0; j < kColors; ++j) r.e[i][j] = T::conj(u.e[j][i]);
  return r;
}

/// tr(U)
template <ComplexScalar C>
[[nodiscard]] constexpr C trace(const SU3Matrix<C>& u) {
  using T = complex_traits<C>;
  C acc = T::make(0.0, 0.0);
  for (int i = 0; i < kColors; ++i) acc += u.e[i][i];
  return acc;
}

/// det(U) by cofactor expansion along the first row.
template <ComplexScalar C>
[[nodiscard]] constexpr C det(const SU3Matrix<C>& u) {
  const C m00 = u.e[1][1] * u.e[2][2] - u.e[1][2] * u.e[2][1];
  const C m01 = u.e[1][0] * u.e[2][2] - u.e[1][2] * u.e[2][0];
  const C m02 = u.e[1][0] * u.e[2][1] - u.e[1][1] * u.e[2][0];
  return u.e[0][0] * m00 - u.e[0][1] * m01 + u.e[0][2] * m02;
}

/// Squared Frobenius norm, sum |e_ij|^2.
template <ComplexScalar C>
[[nodiscard]] constexpr double frobenius_norm2(const SU3Matrix<C>& u) {
  using T = complex_traits<C>;
  double acc = 0.0;
  for (int i = 0; i < kColors; ++i)
    for (int j = 0; j < kColors; ++j)
      acc += T::real(u.e[i][j]) * T::real(u.e[i][j]) +
             T::imag(u.e[i][j]) * T::imag(u.e[i][j]);
  return acc;
}

/// Max |e_ij - f_ij| over all entries — used by tests and reconstruction
/// round-trip checks.
template <ComplexScalar C>
[[nodiscard]] inline double max_abs_diff(const SU3Matrix<C>& a, const SU3Matrix<C>& b) {
  using T = complex_traits<C>;
  double m = 0.0;
  for (int i = 0; i < kColors; ++i) {
    for (int j = 0; j < kColors; ++j) {
      const double dr = T::real(a.e[i][j]) - T::real(b.e[i][j]);
      const double di = T::imag(a.e[i][j]) - T::imag(b.e[i][j]);
      m = std::max(m, std::sqrt(dr * dr + di * di));
    }
  }
  return m;
}

/// How far U is from unitarity: ||U U^dagger - I||_F.
template <ComplexScalar C>
[[nodiscard]] inline double unitarity_defect(const SU3Matrix<C>& u) {
  const SU3Matrix<C> p = matmul(u, adjoint(u));
  return std::sqrt(frobenius_norm2<C>([&] {
    SU3Matrix<C> d = p;
    using T = complex_traits<C>;
    for (int i = 0; i < kColors; ++i) d.e[i][i] -= T::make(1.0, 0.0);
    return d;
  }()));
}

}  // namespace milc
