#include "su3/random_su3.hpp"

#include <cmath>

namespace milc {

double Rng::next_gaussian() {
  // Box–Muller; discard the second deviate to stay stateless.
  double u1 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

namespace {

/// Gram–Schmidt orthonormalisation of the rows of u, then fix det(u) = 1 by
/// rotating the last row by the conjugate determinant phase.
SU3Matrix<dcomplex> project_su3(SU3Matrix<dcomplex> u) {
  for (int r = 0; r < kColors; ++r) {
    // Remove components along previous rows.
    for (int p = 0; p < r; ++p) {
      dcomplex overlap{0.0, 0.0};  // <row_p, row_r>
      for (int j = 0; j < kColors; ++j) cmac_conj(overlap, u.e[p][j], u.e[r][j]);
      for (int j = 0; j < kColors; ++j) u.e[r][j] -= cmul(overlap, u.e[p][j]);
    }
    // Normalise.
    double n2 = 0.0;
    for (int j = 0; j < kColors; ++j) n2 += cnorm2(u.e[r][j]);
    const double inv = 1.0 / std::sqrt(n2);
    for (int j = 0; j < kColors; ++j) u.e[r][j] *= inv;
  }
  // After orthonormalisation |det| = 1; rotate the last row so det = 1.
  const dcomplex d = det(u);
  const dcomplex phase = cconj(d);  // |d| = 1 -> conj is the inverse phase
  for (int j = 0; j < kColors; ++j) u.e[2][j] = cmul(phase, u.e[2][j]);
  return u;
}

}  // namespace

SU3Matrix<dcomplex> random_su3(Rng& rng) {
  SU3Matrix<dcomplex> u;
  for (int i = 0; i < kColors; ++i)
    for (int j = 0; j < kColors; ++j) u.e[i][j] = {rng.next_gaussian(), rng.next_gaussian()};
  return project_su3(u);
}

SU3Vector<dcomplex> random_vector(Rng& rng) {
  SU3Vector<dcomplex> v;
  for (int i = 0; i < kColors; ++i) v.c[i] = {rng.next_signed(), rng.next_signed()};
  return v;
}

SU3Matrix<dcomplex> reunitarize(const SU3Matrix<dcomplex>& u) { return project_su3(u); }

}  // namespace milc
