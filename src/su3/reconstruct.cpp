#include "su3/reconstruct.hpp"

#include <cassert>
#include <cmath>

namespace milc {

namespace {

constexpr double kReconEps = 1e-12;

void pack18(const SU3Matrix<dcomplex>& u, std::span<double> out) {
  std::size_t n = 0;
  for (int i = 0; i < kColors; ++i) {
    for (int j = 0; j < kColors; ++j) {
      out[n++] = u.e[i][j].re;
      out[n++] = u.e[i][j].im;
    }
  }
}

SU3Matrix<dcomplex> unpack18(std::span<const double> in) {
  SU3Matrix<dcomplex> u;
  std::size_t n = 0;
  for (int i = 0; i < kColors; ++i) {
    for (int j = 0; j < kColors; ++j) {
      u.e[i][j] = {in[n], in[n + 1]};
      n += 2;
    }
  }
  return u;
}

void pack12(const SU3Matrix<dcomplex>& u, std::span<double> out) {
  std::size_t n = 0;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < kColors; ++j) {
      out[n++] = u.e[i][j].re;
      out[n++] = u.e[i][j].im;
    }
  }
}

SU3Matrix<dcomplex> unpack12(std::span<const double> in) {
  SU3Matrix<dcomplex> u;
  std::size_t n = 0;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < kColors; ++j) {
      u.e[i][j] = {in[n], in[n + 1]};
      n += 2;
    }
  }
  // For det(U) = 1: row2 = conj(row0 x row1).
  const auto& a = u.e[0];
  const auto& b = u.e[1];
  u.e[2][0] = cconj(cmul(a[1], b[2]) - cmul(a[2], b[1]));
  u.e[2][1] = cconj(cmul(a[2], b[0]) - cmul(a[0], b[2]));
  u.e[2][2] = cconj(cmul(a[0], b[1]) - cmul(a[1], b[0]));
  return u;
}

// 8-parameter SU(3) packing: [Re a2, Im a2, Re a3, Im a3, Re b1, Im b1,
// theta(a1), theta(c1)].
void pack8(const SU3Matrix<dcomplex>& u, std::span<double> out) {
  out[0] = u.e[0][1].re;
  out[1] = u.e[0][1].im;
  out[2] = u.e[0][2].re;
  out[3] = u.e[0][2].im;
  out[4] = u.e[1][0].re;
  out[5] = u.e[1][0].im;
  out[6] = std::atan2(u.e[0][0].im, u.e[0][0].re);
  out[7] = std::atan2(u.e[2][0].im, u.e[2][0].re);
}

SU3Matrix<dcomplex> unpack8(std::span<const double> in) {
  SU3Matrix<dcomplex> u;
  const dcomplex a2{in[0], in[1]};
  const dcomplex a3{in[2], in[3]};
  const dcomplex b1{in[4], in[5]};
  const double th_a1 = in[6];
  const double th_c1 = in[7];

  const double a1_abs2 = std::max(0.0, 1.0 - cnorm2(a2) - cnorm2(a3));
  const double a1_abs = std::sqrt(a1_abs2);
  const dcomplex a1{a1_abs * std::cos(th_a1), a1_abs * std::sin(th_a1)};

  const double c1_abs = std::sqrt(std::max(0.0, 1.0 - a1_abs2 - cnorm2(b1)));
  const dcomplex c1{c1_abs * std::cos(th_c1), c1_abs * std::sin(th_c1)};

  const double d = cnorm2(a2) + cnorm2(a3);  // = 1 - |a1|^2
  assert(d > kReconEps && "recon-8 degenerate first row; caller must guard");
  const double inv_d = 1.0 / d;

  const dcomplex a1c_b1 = cmul(cconj(a1), b1);  // conj(a1)*b1
  const dcomplex a1c_c1 = cmul(cconj(a1), c1);  // conj(a1)*c1

  // From row-orthogonality and the cofactor identities (see header):
  const dcomplex b2 = cscale(-inv_d, cmul(a1c_b1, a2) + cmul(cconj(a3), cconj(c1)));
  const dcomplex b3 = cscale(inv_d, cmul(cconj(a2), cconj(c1)) - cmul(a1c_b1, a3));
  const dcomplex c2 = cscale(inv_d, cmul(cconj(a3), cconj(b1)) - cmul(a1c_c1, a2));
  const dcomplex c3 = cscale(-inv_d, cmul(cconj(a2), cconj(b1)) + cmul(a1c_c1, a3));

  u.e[0][0] = a1;
  u.e[0][1] = a2;
  u.e[0][2] = a3;
  u.e[1][0] = b1;
  u.e[1][1] = b2;
  u.e[1][2] = b3;
  u.e[2][0] = c1;
  u.e[2][1] = c2;
  u.e[2][2] = c3;
  return u;
}

// recon-9 = global U(3) phase + 8-parameter SU(3) body.
void pack9(const SU3Matrix<dcomplex>& u, std::span<double> out) {
  const dcomplex d = det(u);
  const double phi = std::atan2(d.im, d.re) / 3.0;
  const dcomplex unphase{std::cos(-phi), std::sin(-phi)};
  SU3Matrix<dcomplex> v;
  for (int i = 0; i < kColors; ++i)
    for (int j = 0; j < kColors; ++j) v.e[i][j] = cmul(unphase, u.e[i][j]);
  pack8(v, out.subspan(0, 8));
  out[8] = phi;
}

SU3Matrix<dcomplex> unpack9(std::span<const double> in) {
  SU3Matrix<dcomplex> v = unpack8(in.subspan(0, 8));
  const double phi = in[8];
  const dcomplex phase{std::cos(phi), std::sin(phi)};
  for (int i = 0; i < kColors; ++i)
    for (int j = 0; j < kColors; ++j) v.e[i][j] = cmul(phase, v.e[i][j]);
  return v;
}

}  // namespace

const char* to_string(Reconstruct r) {
  switch (r) {
    case Reconstruct::k18: return "recon-18";
    case Reconstruct::k12: return "recon-12";
    case Reconstruct::k9: return "recon-9";
  }
  return "?";
}

bool is_recon9_safe(const SU3Matrix<dcomplex>& u) {
  return cnorm2(u.e[0][1]) + cnorm2(u.e[0][2]) > 1e3 * kReconEps;
}

void pack_link(Reconstruct scheme, const SU3Matrix<dcomplex>& u, std::span<double> out) {
  assert(out.size() >= static_cast<std::size_t>(reals_per_link(scheme)));
  switch (scheme) {
    case Reconstruct::k18: pack18(u, out); break;
    case Reconstruct::k12: pack12(u, out); break;
    case Reconstruct::k9: pack9(u, out); break;
  }
}

SU3Matrix<dcomplex> unpack_link(Reconstruct scheme, std::span<const double> in) {
  assert(in.size() >= static_cast<std::size_t>(reals_per_link(scheme)));
  switch (scheme) {
    case Reconstruct::k18: return unpack18(in);
    case Reconstruct::k12: return unpack12(in);
    case Reconstruct::k9: return unpack9(in);
  }
  return {};
}

void pack_links(Reconstruct scheme, std::span<const SU3Matrix<dcomplex>> links,
                std::span<double> out) {
  const auto n = static_cast<std::size_t>(reals_per_link(scheme));
  assert(out.size() >= links.size() * n);
  for (std::size_t i = 0; i < links.size(); ++i)
    pack_link(scheme, links[i], out.subspan(i * n, n));
}

void unpack_links(Reconstruct scheme, std::span<const double> in,
                  std::span<SU3Matrix<dcomplex>> links) {
  const auto n = static_cast<std::size_t>(reals_per_link(scheme));
  assert(in.size() >= links.size() * n);
  for (std::size_t i = 0; i < links.size(); ++i)
    links[i] = unpack_link(scheme, in.subspan(i * n, n));
}

}  // namespace milc
