// executor.hpp — runs a phased kernel over an nd_range.
//
// Two modes:
//  * execute_functional: plain host loops, FastLane, no simulation — used by
//    correctness tests and the examples.
//  * execute_profiled: wave-scheduled, warp-granular execution with
//    TraceLane.  Work-groups are assigned round-robin to the machine's SMs
//    (per-SM L1), resident groups of a wave interleave their warps
//    round-robin (shared L2/DRAM), and each warp's 32 event streams are
//    merged position-by-position into warp instructions for the performance
//    pipeline.
//
// Barrier semantics: a kernel declares `num_phases`; the executor runs phase
// p for every work-item of a group before phase p+1 — precisely what
// group_barrier guarantees (DESIGN.md §5 "phase-split barriers").
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/machine.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/pipeline.hpp"
#include "gpusim/timing.hpp"
#include "minisycl/lane.hpp"
#include "minisycl/traits.hpp"

namespace minisycl {

/// One kernel-visible buffer, declared at launch time so the profiler can
/// normalize its addresses (see LaunchSpec::regions).
struct AddressRegion {
  const void* base = nullptr;
  std::int64_t bytes = 0;
};

/// A kernel launch: the SYCL nd_range plus local-memory request and phase
/// count (barriers = num_phases - 1).
struct LaunchSpec {
  std::int64_t global_size = 0;
  int local_size = 1;
  int shared_bytes = 0;
  int num_phases = 1;
  KernelTraits traits{};
  /// Deterministic address normalization.  Global accesses are recorded with
  /// real host pointer values; cache-set and DRAM-row modelling over raw
  /// heap addresses would make simulated *time* depend on the process's
  /// allocation history (and ASLR).  Declaring the launch's buffers here —
  /// in a fixed, launch-derived order — remaps every access into a
  /// canonical device address space laid out by declaration order, making
  /// profiled timing a pure function of the launch.  The tuning cache's
  /// bit-for-bit replay contract (docs/TUNING.md) depends on this.  Empty =
  /// identity mapping (the pre-existing behaviour).
  std::vector<AddressRegion> regions;
};

/// Kernel concept: callable as kernel(lane, phase) for both lane types.
template <typename K>
concept PhasedKernel = requires(const K& k, FastLane& f, TraceLane& t) {
  k(f, 0);
  k(t, 0);
};

/// Correctness-only execution.
template <PhasedKernel Kernel>
void execute_functional(const LaunchSpec& spec, const Kernel& kernel) {
  assert(spec.global_size % spec.local_size == 0);
  const std::int64_t groups = spec.global_size / spec.local_size;
  std::vector<std::byte> local(static_cast<std::size_t>(spec.shared_bytes));
  for (std::int64_t g = 0; g < groups; ++g) {
    for (int phase = 0; phase < spec.num_phases; ++phase) {
      for (int t = 0; t < spec.local_size; ++t) {
        ItemIds ids{g * spec.local_size + t, t, g, spec.local_size};
        FastLane lane(ids, local.data());
        kernel(lane, phase);
      }
    }
  }
}

namespace detail {

/// Host-address -> canonical-device-address mapping built from a launch's
/// declared regions.  Canonical bases are assigned by *declaration order*
/// (a pure function of the launch), 256-byte aligned with a guard gap, so
/// two buffers never share a cache line whatever the host heap did.
/// Addresses outside every declared region pass through unchanged.
class AddressMap {
 public:
  static constexpr std::uint64_t kCanonicalBase = 1ull << 40;
  static constexpr std::uint64_t kRegionAlign = 256;

  explicit AddressMap(const std::vector<AddressRegion>& regions) {
    std::uint64_t next = kCanonicalBase;
    for (const AddressRegion& r : regions) {
      if (r.base == nullptr || r.bytes <= 0) continue;
      const auto bytes = static_cast<std::uint64_t>(r.bytes);
      entries_.push_back({reinterpret_cast<std::uint64_t>(r.base), bytes, next});
      next += (bytes + 2 * kRegionAlign - 1) / kRegionAlign * kRegionAlign;
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.host < b.host; });
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  [[nodiscard]] std::uint64_t translate(std::uint64_t addr) const {
    // Accesses cluster by buffer: try the last-hit region before searching.
    if (last_ < entries_.size()) {
      const Entry& e = entries_[last_];
      if (addr >= e.host && addr - e.host < e.bytes) return e.canonical + (addr - e.host);
    }
    auto it = std::upper_bound(entries_.begin(), entries_.end(), addr,
                               [](std::uint64_t a, const Entry& e) { return a < e.host; });
    if (it == entries_.begin()) return addr;
    --it;
    if (addr - it->host >= it->bytes) return addr;
    last_ = static_cast<std::size_t>(it - entries_.begin());
    return it->canonical + (addr - it->host);
  }

 private:
  struct Entry {
    std::uint64_t host = 0;
    std::uint64_t bytes = 0;
    std::uint64_t canonical = 0;
  };
  std::vector<Entry> entries_;
  mutable std::size_t last_ = 0;
};

/// Merge one event position of a warp into warp instructions and feed the
/// pipeline.  Returns issue slots consumed at this position.
inline int merge_position(gpusim::PerfPipeline& pipe, const gpusim::Calibration& cal, int sm,
                          const std::array<std::vector<LaneEvent>, 32>& ev, int lanes,
                          std::size_t pos, double& control_slots,
                          const AddressMap* amap = nullptr) {
  gpusim::TraceCounters& ctr = pipe.counters();
  const EventKind kind = ev[0][pos].kind;

  // Partition unmasked lanes by divergence path.
  std::array<std::uint8_t, 32> paths{};
  std::array<bool, 32> active{};
  int n_active = 0;
  for (int l = 0; l < lanes; ++l) {
    const LaneEvent& e = ev[static_cast<std::size_t>(l)][pos];
    assert(e.kind == kind && "lane event streams diverged structurally");
    active[static_cast<std::size_t>(l)] = e.masked == 0;
    paths[static_cast<std::size_t>(l)] = e.path;
    if (e.masked == 0) ++n_active;
  }

  // Distinct paths among active lanes.
  std::array<std::uint8_t, 32> distinct{};
  int n_paths = 0;
  for (int l = 0; l < lanes; ++l) {
    if (!active[static_cast<std::size_t>(l)]) continue;
    bool seen = false;
    for (int d = 0; d < n_paths; ++d) {
      if (distinct[static_cast<std::size_t>(d)] == paths[static_cast<std::size_t>(l)]) {
        seen = true;
        break;
      }
    }
    if (!seen) distinct[static_cast<std::size_t>(n_paths++)] = paths[static_cast<std::size_t>(l)];
  }

  int slots = 0;
  switch (kind) {
    case EventKind::Flops: {
      for (int d = 0; d < n_paths; ++d) {
        std::uint32_t max_n = 0;
        std::uint64_t sum_n = 0;
        for (int l = 0; l < lanes; ++l) {
          if (!active[static_cast<std::size_t>(l)] ||
              paths[static_cast<std::size_t>(l)] != distinct[static_cast<std::size_t>(d)]) {
            continue;
          }
          const std::uint32_t n = ev[static_cast<std::size_t>(l)][pos].value;
          max_n = std::max(max_n, n);
          sum_n += n;
        }
        const int group_slots = static_cast<int>((max_n + 1) / 2);  // FP64 FMA = 2 FLOP
        slots += group_slots;
        ctr.fp64_warp_slots += static_cast<std::uint64_t>(group_slots);
        ctr.flops += sum_n;
      }
      break;
    }
    case EventKind::Branch: {
      slots = 1;
      ++ctr.branch_events;
      // Divergent when the active lanes chose more than one target.
      std::array<std::uint32_t, 32> targets{};
      int n_targets = 0;
      for (int l = 0; l < lanes; ++l) {
        if (!active[static_cast<std::size_t>(l)]) continue;
        const std::uint32_t v = ev[static_cast<std::size_t>(l)][pos].value;
        bool seen = false;
        for (int d = 0; d < n_targets; ++d) {
          if (targets[static_cast<std::size_t>(d)] == v) {
            seen = true;
            break;
          }
        }
        if (!seen) targets[static_cast<std::size_t>(n_targets++)] = v;
      }
      if (n_targets > 1) ++ctr.divergent_branches;
      break;
    }
    default: {
      // Memory instruction: one warp instruction per divergence path.
      // Global addresses go through the launch's canonical address map
      // (shared events carry byte offsets, already launch-deterministic).
      const bool global_kind = kind == EventKind::LoadGlobal ||
                               kind == EventKind::StoreGlobal ||
                               kind == EventKind::AtomicGlobal;
      std::array<gpusim::LaneAccess, 32> acc{};
      for (int d = 0; d < std::max(1, n_paths); ++d) {
        int n = 0;
        for (int l = 0; l < lanes; ++l) {
          if (!active[static_cast<std::size_t>(l)] ||
              (n_paths > 0 &&
               paths[static_cast<std::size_t>(l)] != distinct[static_cast<std::size_t>(d)])) {
            continue;
          }
          const LaneEvent& e = ev[static_cast<std::size_t>(l)][pos];
          const std::uint64_t addr =
              global_kind && amap != nullptr ? amap->translate(e.addr) : e.addr;
          acc[static_cast<std::size_t>(n++)] =
              gpusim::LaneAccess{addr, e.size, static_cast<std::uint8_t>(l)};
        }
        if (n == 0) continue;
        const std::span<const gpusim::LaneAccess> span(acc.data(), static_cast<std::size_t>(n));
        switch (kind) {
          case EventKind::LoadGlobal: pipe.global_load(sm, span); break;
          case EventKind::StoreGlobal: pipe.global_store(sm, span); break;
          case EventKind::AtomicGlobal: pipe.global_atomic(sm, span); break;
          case EventKind::LoadShared: pipe.shared_access(span, false); break;
          case EventKind::StoreShared: pipe.shared_access(span, true); break;
          default: break;
        }
        slots += 1;
        control_slots += cal.control_slots_per_mem_op;
      }
      break;
    }
  }

  slots = std::max(slots, 1);
  ctr.warp_issue_slots += static_cast<std::uint64_t>(slots);
  ctr.active_lane_ops += static_cast<std::uint64_t>(n_active);
  ctr.possible_lane_ops += static_cast<std::uint64_t>(slots) * 32u;
  return slots;
}

}  // namespace detail

/// Profiled execution: returns the full Nsight-style statistics record.
template <PhasedKernel Kernel>
gpusim::KernelStats execute_profiled(const gpusim::MachineModel& m,
                                     const gpusim::Calibration& cal, const LaunchSpec& spec,
                                     const Kernel& kernel, std::string stats_name) {
  gpusim::LaunchConfig cfg;
  cfg.global_size = spec.global_size;
  cfg.local_size = spec.local_size;
  cfg.shared_bytes_per_group = spec.shared_bytes;
  cfg.regs_per_thread = spec.traits.regs_per_thread;
  cfg.num_phases = spec.num_phases;

  const gpusim::OccupancyInfo occ = gpusim::compute_occupancy(m, cal, cfg);
  gpusim::PerfPipeline pipe(m, cal);
  gpusim::TraceCounters& ctr = pipe.counters();
  ctr.work_items = static_cast<std::uint64_t>(spec.global_size);

  const int warp = m.warp_size;
  const int warps_per_group = (spec.local_size + warp - 1) / warp;
  const std::int64_t groups = spec.global_size / spec.local_size;
  const std::int64_t wave_cap = static_cast<std::int64_t>(occ.groups_per_sm) * m.num_sms;

  std::array<std::vector<LaneEvent>, 32> ev;
  for (auto& v : ev) v.reserve(512);
  double control_slots = 0.0;
  const detail::AddressMap amap(spec.regions);
  const detail::AddressMap* amap_ptr = amap.empty() ? nullptr : &amap;

  struct GroupState {
    int phase = 0;
    int next_warp = 0;
  };
  std::vector<GroupState> states;
  std::vector<std::vector<std::byte>> local_mem;

  for (std::int64_t wave_start = 0; wave_start < groups; wave_start += wave_cap) {
    const std::int64_t wave_n = std::min<std::int64_t>(wave_cap, groups - wave_start);
    states.assign(static_cast<std::size_t>(wave_n), GroupState{});
    local_mem.assign(static_cast<std::size_t>(wave_n),
                     std::vector<std::byte>(static_cast<std::size_t>(spec.shared_bytes)));

    std::int64_t done = 0;
    while (done < wave_n) {
      for (std::int64_t gi = 0; gi < wave_n; ++gi) {
        GroupState& st = states[static_cast<std::size_t>(gi)];
        if (st.phase >= spec.num_phases) continue;
        const std::int64_t g = wave_start + gi;
        const int sm = static_cast<int>(gi % m.num_sms);

        // Execute one warp of this group's current phase.
        const int w = st.next_warp;
        const int lanes = std::min(warp, spec.local_size - w * warp);
        for (int l = 0; l < lanes; ++l) {
          ev[static_cast<std::size_t>(l)].clear();
          const int lid = w * warp + l;
          ItemIds ids{g * spec.local_size + lid, lid, g, spec.local_size};
          TraceLane lane(ids, local_mem[static_cast<std::size_t>(gi)].data(),
                         &ev[static_cast<std::size_t>(l)]);
          kernel(lane, st.phase);
        }
        const std::size_t n_events = ev[0].size();
        for (int l = 1; l < lanes; ++l) {
          assert(ev[static_cast<std::size_t>(l)].size() == n_events &&
                 "kernel lanes must record positionally aligned event streams");
        }
        for (std::size_t pos = 0; pos < n_events; ++pos) {
          detail::merge_position(pipe, cal, sm, ev, lanes, pos, control_slots, amap_ptr);
        }
        if (st.phase == 0) ++ctr.warps;

        // Advance the cursor; charge barrier events at phase boundaries.
        if (++st.next_warp == warps_per_group) {
          st.next_warp = 0;
          ++st.phase;
          if (st.phase < spec.num_phases) {
            ctr.barrier_warp_events += static_cast<std::uint64_t>(warps_per_group);
          }
          if (st.phase >= spec.num_phases) ++done;
        }
      }
    }
  }

  pipe.finalize();
  ctr.warp_issue_slots += static_cast<std::uint64_t>(control_slots);
  return gpusim::make_stats(m, cal, std::move(stats_name), cfg, occ, ctr,
                            pipe.dram().cost_units(), spec.traits.codegen_slowdown);
}

}  // namespace minisycl
