// exception.hpp — SYCL-style error taxonomy for the simulated runtime.
//
// SYCL 2020 replaced the 1.2 error-class zoo with one `sycl::exception`
// carrying an error code; minisycl mirrors that.  Synchronous misuse (bad
// free, range overrun) throws `minisycl::exception` directly; device-side
// faults discovered after submission (launch failures, transient device
// faults, watchdog timeouts injected by faultsim) are *asynchronous*: the
// queue buffers them as std::exception_ptr and delivers them on
// `queue::wait_and_throw()`, through the queue's async_handler when one was
// installed (the SYCL async_handler contract).
#pragma once

#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace minisycl {

/// Error codes, modelled on sycl::errc plus the fault kinds the simulator
/// can inject.
enum class errc : int {
  success = 0,
  invalid,            ///< invalid API usage (freeing a foreign/interior pointer)
  memory_allocation,  ///< device allocation failure
  out_of_bounds,      ///< an access or copy overruns its allocation
  use_after_free,     ///< touching a freed allocation
  kernel_launch,      ///< the kernel could not be launched
  device_fault,       ///< transient device-side error (ECC event, sticky until retried)
  watchdog_timeout,   ///< kernel exceeded the simulated execution watchdog
};

[[nodiscard]] inline const char* errc_name(errc c) {
  switch (c) {
    case errc::success: return "success";
    case errc::invalid: return "invalid";
    case errc::memory_allocation: return "memory_allocation";
    case errc::out_of_bounds: return "out_of_bounds";
    case errc::use_after_free: return "use_after_free";
    case errc::kernel_launch: return "kernel_launch";
    case errc::device_fault: return "device_fault";
    case errc::watchdog_timeout: return "watchdog_timeout";
  }
  return "unknown";
}

/// The one exception type the runtime throws, a la sycl::exception.
/// `code()` carries the taxonomy; `what()` keeps the exact diagnostic text
/// (tests and ksan match on the wording).
class exception : public std::runtime_error {
 public:
  exception(errc code, const std::string& what_arg)
      : std::runtime_error(what_arg), code_(code) {}
  [[nodiscard]] errc code() const noexcept { return code_; }

 private:
  errc code_;
};

/// sycl::exception_list: an iterable batch of captured asynchronous errors,
/// delivered to the async_handler in submission order.
class exception_list {
 public:
  using value_type = std::exception_ptr;
  using const_iterator = std::vector<std::exception_ptr>::const_iterator;

  exception_list() = default;
  explicit exception_list(std::vector<std::exception_ptr> errors)
      : errors_(std::move(errors)) {}

  [[nodiscard]] std::size_t size() const { return errors_.size(); }
  [[nodiscard]] bool empty() const { return errors_.empty(); }
  [[nodiscard]] const_iterator begin() const { return errors_.begin(); }
  [[nodiscard]] const_iterator end() const { return errors_.end(); }

 private:
  std::vector<std::exception_ptr> errors_;
};

/// sycl::async_handler: invoked by wait_and_throw() with every error the
/// queue accumulated since the last drain.
using async_handler = std::function<void(exception_list)>;

}  // namespace minisycl
