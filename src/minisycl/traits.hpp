// traits.hpp — per-kernel-variant static properties.
//
// `regs_per_thread` is an architectural estimate (site-per-thread kernels
// keep a whole site's accumulators live; row-per-thread kernels need far
// fewer registers) and feeds the occupancy calculator.  `codegen_slowdown`
// is the documented stand-in for real-compiler effects the paper measures
// (DESIGN.md §2 item 2); 1.0 means "no compiler effect modelled".
#pragma once

namespace minisycl {

struct KernelTraits {
  const char* name = "kernel";
  /// Registers per work-item the "compiler" allocates.  Site-per-thread
  /// kernels (1LP, QUDA-style) hold 6 accumulator doubles per colour row plus
  /// addresses for 16 matrices: ~64 registers.  Row-per-thread kernels
  /// (2LP..4LP) hold one row: ~40.
  int regs_per_thread = 40;
  /// Multiplier on the final kernel duration representing code-generation
  /// quality differences between toolchains (see calibration.hpp for the
  /// rationale; every non-1.0 value is documented at its point of use).
  double codegen_slowdown = 1.0;
};

}  // namespace minisycl
