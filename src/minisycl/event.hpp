// event.hpp — SYCL-style events with profiling information on the simulated
// timeline.
//
// Mirrors sycl::event::get_profiling_info<command_submit/start/end>: every
// submission records when it was submitted, when the (serialised) device
// started it, and when it finished.  Dependencies (`depends_on`) push the
// start time; the device executes one kernel at a time (these kernels
// saturate the whole GPU — the paper's out-of-order penalty is scheduling
// overhead precisely because there is "no opportunity for overlapping
// tasks", §IV-D6 / SYCL-Bench 2020).
#pragma once

namespace minisycl {

struct event {
  double submit_us = 0.0;
  double start_us = 0.0;
  double end_us = 0.0;

  [[nodiscard]] double queue_latency_us() const { return start_us - submit_us; }
  [[nodiscard]] double duration_us() const { return end_us - start_us; }
};

}  // namespace minisycl
