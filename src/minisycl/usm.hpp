// usm.hpp — SYCL Unified Shared Memory style allocation.
//
// The paper's implementations "opted for Unified Shared Memory (USM) device
// allocations, ensuring explicit control over data movement" (§III).  In
// the simulator host memory doubles as device memory, but the API surface —
// malloc_device / memcpy / free — is preserved, with an allocation registry
// that catches the classic USM bugs (double free, freeing unknown pointers,
// leaks at scope exit).
//
// Misuse surfaces as minisycl::exception with an errc from the SYCL-style
// taxonomy (exception.hpp): errc::invalid for bad frees, errc::out_of_bounds
// for range overruns, errc::use_after_free for touching freed memory.  The
// diagnostic wording is load-bearing (ksan and the USM tests match on it).
// malloc_device additionally consults faultsim, so allocation-pressure
// failures can be injected deterministically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "faultsim/faultsim.hpp"
#include "minisycl/exception.hpp"

namespace minisycl {

class queue;

namespace usm {

/// Byte extent of one allocation, as reported by Registry snapshots.  `name`
/// is the alloc-site label passed to malloc_device (empty for unnamed sites)
/// and `serial` the registry-wide allocation ordinal — together they let the
/// ksan leak diagnostic say *which* allocation outlived its queue.
struct RegionInfo {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
  std::string name;
  std::uint64_t serial = 0;
};

/// Registry of live device allocations (thread-safe; the simulator may run
/// groups on worker threads in future).  Freed allocations are remembered
/// (until their address is recycled) so use-after-free can be diagnosed by
/// name rather than as a generic wild access.
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  void on_alloc(void* p, std::size_t bytes, std::string name = {}) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t base = reinterpret_cast<std::uint64_t>(p);
    // The address range is live again: drop any freed-history entries that
    // overlap it, so a recycled address is not misdiagnosed as stale.
    for (auto it = freed_.lower_bound(base); it != freed_.end() && it->first < base + bytes;) {
      it = freed_.erase(it);
    }
    if (auto it = freed_.lower_bound(base); it != freed_.begin()) {
      --it;
      if (it->first + it->second.bytes > base) freed_.erase(it);
    }
    live_[base] = Region{bytes, std::move(name), ++total_allocs_};
    total_bytes_ += bytes;
  }

  /// Returns the allocation size; throws minisycl::exception (errc::invalid)
  /// on unknown pointers, with the diagnostic naming the offending region
  /// (double free / interior pointer).
  std::size_t on_free(void* p) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t base = reinterpret_cast<std::uint64_t>(p);
    const auto it = live_.find(base);
    if (it == live_.end()) {
      char buf[160];
      if (const auto* owner = find_containing(live_, base)) {
        std::snprintf(buf, sizeof(buf),
                      "usm::free: pointer %llu B inside allocation (base=0x%llx, size=%llu B), "
                      "not its base",
                      static_cast<unsigned long long>(base - owner->first),
                      static_cast<unsigned long long>(owner->first),
                      static_cast<unsigned long long>(owner->second.bytes));
        throw exception(errc::invalid, buf);
      }
      if (const auto* old = find_containing(freed_, base)) {
        std::snprintf(buf, sizeof(buf),
                      "usm::free: double free of allocation (base=0x%llx, size=%llu B)",
                      static_cast<unsigned long long>(old->first),
                      static_cast<unsigned long long>(old->second.bytes));
        throw exception(errc::invalid, buf);
      }
      throw exception(errc::invalid,
                      "usm::free: pointer was not allocated with malloc_device "
                      "(or was already freed)");
    }
    const std::size_t bytes = it->second.bytes;
    total_bytes_ -= bytes;
    if (freed_.size() >= kFreedHistoryCap) freed_.clear();
    freed_[base] = std::move(it->second);
    live_.erase(it);
    return bytes;
  }

  /// Validate that [p, p+bytes) lies within one live allocation.  Pointers
  /// outside every known (live or freed) region are assumed to be ordinary
  /// host memory and pass silently.  Throws minisycl::exception with
  /// errc::out_of_bounds when the range overruns its allocation and
  /// errc::use_after_free on touching freed memory — both naming the
  /// region's base and size.
  void check_range(const char* what, const void* p, std::size_t bytes) const {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t base = reinterpret_cast<std::uint64_t>(p);
    char buf[192];
    if (const auto* owner = find_containing(live_, base)) {
      if (base + bytes > owner->first + owner->second.bytes) {
        std::snprintf(buf, sizeof(buf),
                      "%s: range of %llu B overruns allocation (base=0x%llx, size=%llu B) "
                      "by %llu B",
                      what, static_cast<unsigned long long>(bytes),
                      static_cast<unsigned long long>(owner->first),
                      static_cast<unsigned long long>(owner->second.bytes),
                      static_cast<unsigned long long>(base + bytes - owner->first -
                                                      owner->second.bytes));
        throw exception(errc::out_of_bounds, buf);
      }
      return;
    }
    if (const auto* old = find_containing(freed_, base)) {
      std::snprintf(buf, sizeof(buf),
                    "%s: use of freed allocation (base=0x%llx, size=%llu B)", what,
                    static_cast<unsigned long long>(old->first),
                    static_cast<unsigned long long>(old->second.bytes));
      throw exception(errc::use_after_free, buf);
    }
  }

  [[nodiscard]] std::size_t live_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_bytes_;
  }
  [[nodiscard]] std::size_t live_allocations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return live_.size();
  }
  [[nodiscard]] std::uint64_t total_allocations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_allocs_;
  }

  [[nodiscard]] std::vector<RegionInfo> live_snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<RegionInfo> out;
    out.reserve(live_.size());
    for (const auto& [base, r] : live_) out.push_back({base, r.bytes, r.name, r.serial});
    return out;
  }
  [[nodiscard]] std::vector<RegionInfo> freed_snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<RegionInfo> out;
    out.reserve(freed_.size());
    for (const auto& [base, r] : freed_) out.push_back({base, r.bytes, r.name, r.serial});
    return out;
  }

 private:
  struct Region {
    std::size_t bytes = 0;
    std::string name;           ///< alloc-site label ("" when unnamed)
    std::uint64_t serial = 0;   ///< registry-wide allocation ordinal (1-based)
  };
  using RegionMap = std::map<std::uint64_t, Region>;
  static constexpr std::size_t kFreedHistoryCap = 4096;

  /// Entry whose [base, base+bytes) contains addr, or nullptr.
  static const RegionMap::value_type* find_containing(const RegionMap& m, std::uint64_t addr) {
    auto it = m.upper_bound(addr);
    if (it == m.begin()) return nullptr;
    --it;
    return addr < it->first + it->second.bytes ? &*it : nullptr;
  }

  mutable std::mutex mu_;
  RegionMap live_;
  RegionMap freed_;  ///< freed-but-not-recycled history (bounded)
  std::size_t total_bytes_ = 0;
  std::uint64_t total_allocs_ = 0;
};

}  // namespace usm

/// sycl::malloc_device<T>(count, q) equivalent.  Consults faultsim: an
/// injected allocation failure returns nullptr (the SYCL USM convention) or
/// throws std::bad_alloc, per the plan's AllocFailMode.  `name` labels the
/// alloc site in registry snapshots and the ksan leak diagnostic.
template <typename T>
[[nodiscard]] T* malloc_device(std::size_t count, const queue& /*q*/, const char* name = "") {
  if (faultsim::Injector* inj = faultsim::Injector::current()) {
    if (inj->should_fail_alloc(count * sizeof(T))) {
      if (inj->plan().alloc_fail_mode == faultsim::AllocFailMode::throw_bad_alloc) {
        throw std::bad_alloc();
      }
      return nullptr;
    }
  }
  T* p = static_cast<T*>(::operator new(count * sizeof(T), std::align_val_t{64}));
  usm::Registry::instance().on_alloc(p, count * sizeof(T), name);
  return p;
}

/// sycl::free(ptr, q) equivalent; validates the pointer.
template <typename T>
void free(T* p, const queue& /*q*/) {
  if (p == nullptr) return;
  usm::Registry::instance().on_free(p);
  ::operator delete(p, std::align_val_t{64});
}

/// q.memcpy(...) equivalent (synchronous, like q.memcpy(...).wait()).
/// Both endpoints are validated against the Registry: a range overrunning a
/// device allocation (e.g. a copy spanning two separate allocations) or
/// touching a freed one throws before any byte moves.
inline void memcpy(const queue& /*q*/, void* dst, const void* src, std::size_t bytes) {
  auto& reg = usm::Registry::instance();
  reg.check_range("usm::memcpy (dst)", dst, bytes);
  reg.check_range("usm::memcpy (src)", src, bytes);
  std::memcpy(dst, src, bytes);
}

/// RAII wrapper so examples do not leak on exceptions.
template <typename T>
class device_ptr {
 public:
  device_ptr(std::size_t count, const queue& q) : q_(&q), p_(malloc_device<T>(count, q)) {}
  ~device_ptr() {
    try {
      minisycl::free(p_, *q_);
    } catch (...) {
    }
  }
  device_ptr(const device_ptr&) = delete;
  device_ptr& operator=(const device_ptr&) = delete;

  [[nodiscard]] T* get() const { return p_; }
  [[nodiscard]] T& operator[](std::size_t i) const { return p_[i]; }

 private:
  const queue* q_;
  T* p_;
};

}  // namespace minisycl
