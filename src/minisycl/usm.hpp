// usm.hpp — SYCL Unified Shared Memory style allocation.
//
// The paper's implementations "opted for Unified Shared Memory (USM) device
// allocations, ensuring explicit control over data movement" (§III).  In
// the simulator host memory doubles as device memory, but the API surface —
// malloc_device / memcpy / free — is preserved, with an allocation registry
// that catches the classic USM bugs (double free, freeing unknown pointers,
// leaks at scope exit).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <new>
#include <stdexcept>
#include <unordered_map>

namespace minisycl {

class queue;

namespace usm {

/// Registry of live device allocations (thread-safe; the simulator may run
/// groups on worker threads in future).
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  void on_alloc(void* p, std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    live_[p] = bytes;
    total_bytes_ += bytes;
    ++total_allocs_;
  }

  /// Returns the allocation size; throws on unknown pointer (double free /
  /// never allocated).
  std::size_t on_free(void* p) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = live_.find(p);
    if (it == live_.end()) {
      throw std::invalid_argument("usm::free: pointer was not allocated with malloc_device "
                                  "(or was already freed)");
    }
    const std::size_t bytes = it->second;
    total_bytes_ -= bytes;
    live_.erase(it);
    return bytes;
  }

  [[nodiscard]] std::size_t live_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_bytes_;
  }
  [[nodiscard]] std::size_t live_allocations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return live_.size();
  }
  [[nodiscard]] std::uint64_t total_allocations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_allocs_;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<void*, std::size_t> live_;
  std::size_t total_bytes_ = 0;
  std::uint64_t total_allocs_ = 0;
};

}  // namespace usm

/// sycl::malloc_device<T>(count, q) equivalent.
template <typename T>
[[nodiscard]] T* malloc_device(std::size_t count, const queue& /*q*/) {
  T* p = static_cast<T*>(::operator new(count * sizeof(T), std::align_val_t{64}));
  usm::Registry::instance().on_alloc(p, count * sizeof(T));
  return p;
}

/// sycl::free(ptr, q) equivalent; validates the pointer.
template <typename T>
void free(T* p, const queue& /*q*/) {
  if (p == nullptr) return;
  usm::Registry::instance().on_free(p);
  ::operator delete(p, std::align_val_t{64});
}

/// q.memcpy(...) equivalent (synchronous, like q.memcpy(...).wait()).
inline void memcpy(const queue& /*q*/, void* dst, const void* src, std::size_t bytes) {
  std::memcpy(dst, src, bytes);
}

/// RAII wrapper so examples do not leak on exceptions.
template <typename T>
class device_ptr {
 public:
  device_ptr(std::size_t count, const queue& q) : q_(&q), p_(malloc_device<T>(count, q)) {}
  ~device_ptr() {
    try {
      minisycl::free(p_, *q_);
    } catch (...) {
    }
  }
  device_ptr(const device_ptr&) = delete;
  device_ptr& operator=(const device_ptr&) = delete;

  [[nodiscard]] T* get() const { return p_; }
  [[nodiscard]] T& operator[](std::size_t i) const { return p_[i]; }

 private:
  const queue* q_;
  T* p_;
};

}  // namespace minisycl
