// queue.hpp — SYCL-like queue with in-order / out-of-order submission
// semantics on a simulated timeline.
//
// The paper's §IV-D6 finding — the SYCLomatic-optimized version wins 1.5–6.7%
// because it creates an in-order queue while plain SYCL defaults to
// out-of-order — is reproduced here as a per-submission launch overhead:
// out-of-order queues pay dependency-graph management on every submit even
// when no overlap is possible (cf. SYCL-Bench 2020 [12]).
//
// Error model (SYCL 2020 §4.13): device-side faults discovered after
// submission are *asynchronous*.  When faultsim injects a launch failure,
// sticky fault or hang, the queue buffers a minisycl::exception as an
// std::exception_ptr; `wait_and_throw()` delivers the batch to the queue's
// async_handler, or rethrows the first error when no handler was installed.
// Queue order does not change draining semantics (errors are delivered in
// submission order either way) — it only changes the launch overhead, as in
// real SYCL.  With no injector installed the error path costs one pointer
// check and the timeline is bit-for-bit the fault-free one.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "faultsim/faultsim.hpp"
#include "gpusim/calibration.hpp"
#include "gpusim/machine.hpp"
#include "minisycl/event.hpp"
#include "minisycl/exception.hpp"
#include "minisycl/executor.hpp"

namespace minisycl {

enum class QueueOrder { out_of_order, in_order };
enum class ExecMode { functional, profiled };

class queue {
 public:
  explicit queue(ExecMode mode = ExecMode::functional,
                 QueueOrder order = QueueOrder::out_of_order,
                 gpusim::MachineModel machine = gpusim::a100(),
                 gpusim::Calibration cal = gpusim::default_calibration(),
                 async_handler handler = {})
      : mode_(mode), order_(order), machine_(machine), cal_(cal),
        handler_(std::move(handler)) {}

  ~queue() {
    if (!teardown_hook_) return;
    // Hooks must not throw out of a destructor; a failing diagnostic hook is
    // swallowed (the report vector it appends to is the real channel).
    auto hook = std::move(teardown_hook_);
    try {
      hook(*this);
    } catch (...) {
    }
  }
  queue(const queue&) = default;
  queue& operator=(const queue&) = default;

  [[nodiscard]] ExecMode mode() const { return mode_; }
  [[nodiscard]] QueueOrder order() const { return order_; }
  [[nodiscard]] const gpusim::MachineModel& machine() const { return machine_; }
  [[nodiscard]] const gpusim::Calibration& calibration() const { return cal_; }

  void set_async_handler(async_handler handler) { handler_ = std::move(handler); }
  [[nodiscard]] bool has_async_handler() const { return static_cast<bool>(handler_); }

  /// Observer called after every *successful* submission with the kernel
  /// name and its stats record (faulted launches have no side effects and
  /// are not reported).  dsan uses this as its kernel-launch event source;
  /// with no hook installed submit() pays one branch.
  void set_kernel_hook(std::function<void(const std::string&, const gpusim::KernelStats&)> hook) {
    kernel_hook_ = std::move(hook);
  }

  /// Hook run once from the queue's destructor — the ksan USM
  /// leak-at-teardown diagnostic attaches here.  The hook must outlive-safe
  /// capture its output sink; exceptions it throws are swallowed.
  void set_teardown_hook(std::function<void(queue&)> hook) {
    teardown_hook_ = std::move(hook);
  }

  /// Per-submission launch overhead in microseconds on the simulated
  /// timeline (the in-order advantage).
  [[nodiscard]] double launch_overhead_us() const {
    return order_ == QueueOrder::in_order ? cal_.launch_overhead_in_order_us
                                          : cal_.launch_overhead_out_of_order_us;
  }

  /// Submit one kernel.  In functional mode the stats carry zero timing; in
  /// profiled mode they carry the full Table-I record.  Either way the
  /// kernel's side effects (the computed fields) are real.  Injected faults
  /// suppress the kernel body (a failed launch has no side effects), mark
  /// `stats.fault`, and buffer an asynchronous error for wait_and_throw().
  template <PhasedKernel Kernel>
  gpusim::KernelStats submit(const LaunchSpec& spec, const Kernel& kernel,
                             std::string name = {}) {
    if (name.empty()) name = spec.traits.name;

    faultsim::Injector* inj = faultsim::Injector::current();
    if (inj != nullptr) {
      const faultsim::LaunchVerdict v = inj->on_kernel_launch(name);
      if (v.faulted) return faulted_stats(spec, std::move(name), v);
    }

    gpusim::KernelStats stats;
    if (mode_ == ExecMode::profiled) {
      stats = execute_profiled(machine_, cal_, spec, kernel, std::move(name));
    } else {
      execute_functional(spec, kernel);
      stats.name = std::move(name);
      stats.launch.global_size = spec.global_size;
      stats.launch.local_size = spec.local_size;
      stats.launch.shared_bytes_per_group = spec.shared_bytes;
      stats.launch.num_phases = spec.num_phases;
    }

    if (inj != nullptr) {
      // Watchdog on the simulated timeline: a kernel whose computed duration
      // exceeds the plan's timeout is killed as hung (its partial output is
      // suspect; callers must retry).
      const faultsim::LaunchVerdict w = inj->on_kernel_complete(stats.name, stats.duration_us);
      if (w.faulted) {
        stats.fault = faultsim::to_string(w.kind);
        buffer_async_error(w.kind, stats.name);
        sim_time_us_ += w.charge_us + launch_overhead_us();
        ++submissions_;
        return stats;
      }
      // ECC-like silent corruption of registered regions: no error raised.
      inj->maybe_corrupt(stats.name);
    }

    sim_time_us_ += stats.duration_us + launch_overhead_us();
    ++submissions_;
    if (kernel_hook_) kernel_hook_(stats.name, stats);
    return stats;
  }

  /// Submit with explicit dependencies and receive a profiling event.  The
  /// device is serialised (each kernel saturates it), so the event start is
  /// the later of "device free" and "all dependencies finished", plus the
  /// queue's launch overhead; in-order queues additionally depend on their
  /// previous submission.
  template <PhasedKernel Kernel>
  event submit_with_event(const LaunchSpec& spec, const Kernel& kernel,
                          std::span<const event> deps = {}, std::string name = {}) {
    const gpusim::KernelStats stats = submit(spec, kernel, std::move(name));

    event ev;
    ev.submit_us = next_submit_us_;
    double ready = device_free_us_;
    for (const event& d : deps) ready = std::max(ready, d.end_us);
    if (order_ == QueueOrder::in_order) ready = std::max(ready, last_event_end_us_);
    ev.start_us = std::max(ev.submit_us, ready) + launch_overhead_us();
    ev.end_us = ev.start_us + stats.duration_us;

    device_free_us_ = ev.end_us;
    last_event_end_us_ = ev.end_us;
    next_submit_us_ = ev.submit_us;  // host submits back-to-back by default
    return ev;
  }

  /// Advance the host-side submission clock (models host work between
  /// submissions).
  void host_advance_us(double us) { next_submit_us_ += us; }

  /// Block until the queue drains.  Submission in this simulator is
  /// synchronous, so this only marks the timeline.  Per SYCL, wait() does
  /// NOT process asynchronous errors — use wait_and_throw().
  void wait() {}

  /// sycl::queue::wait_and_throw(): drain the asynchronous error list.  With
  /// an async_handler installed the whole batch is delivered to it (in
  /// submission order, both queue orders); without one the first captured
  /// error is rethrown and the rest are discarded with it.
  void wait_and_throw() {
    wait();
    if (async_errors_.empty()) return;
    exception_list list(std::move(async_errors_));
    async_errors_.clear();
    if (handler_) {
      handler_(std::move(list));
      return;
    }
    std::rethrow_exception(*list.begin());
  }

  [[nodiscard]] std::size_t pending_async_errors() const { return async_errors_.size(); }

  [[nodiscard]] double sim_time_us() const { return sim_time_us_; }
  [[nodiscard]] std::int64_t submissions() const { return submissions_; }
  void reset_timeline() {
    sim_time_us_ = 0.0;
    submissions_ = 0;
  }

 private:
  /// Stats record for a launch the injector refused: no side effects, zero
  /// duration, the fault named; the matching async error is buffered and the
  /// timeline charged (watchdog timeout for hangs, overhead otherwise).
  gpusim::KernelStats faulted_stats(const LaunchSpec& spec, std::string name,
                                    const faultsim::LaunchVerdict& v) {
    gpusim::KernelStats stats;
    stats.name = std::move(name);
    stats.launch.global_size = spec.global_size;
    stats.launch.local_size = spec.local_size;
    stats.launch.shared_bytes_per_group = spec.shared_bytes;
    stats.launch.num_phases = spec.num_phases;
    stats.fault = faultsim::to_string(v.kind);
    buffer_async_error(v.kind, stats.name);
    sim_time_us_ += v.charge_us + launch_overhead_us();
    ++submissions_;
    return stats;
  }

  void buffer_async_error(faultsim::FaultKind kind, const std::string& name) {
    errc code = errc::kernel_launch;
    std::string msg;
    switch (kind) {
      case faultsim::FaultKind::launch_fail:
        code = errc::kernel_launch;
        msg = "faultsim: injected kernel-launch failure for '" + name + "'";
        break;
      case faultsim::FaultKind::sticky_fault:
        code = errc::device_fault;
        msg = "faultsim: transient device fault during '" + name + "' (clears on retry)";
        break;
      case faultsim::FaultKind::hang:
        code = errc::watchdog_timeout;
        msg = "faultsim: '" + name + "' exceeded the simulated watchdog";
        break;
      default:
        msg = "faultsim: fault during '" + name + "'";
        break;
    }
    async_errors_.push_back(std::make_exception_ptr(exception(code, msg)));
  }

  ExecMode mode_;
  QueueOrder order_;
  gpusim::MachineModel machine_;
  gpusim::Calibration cal_;
  async_handler handler_;
  std::function<void(const std::string&, const gpusim::KernelStats&)> kernel_hook_;
  std::function<void(queue&)> teardown_hook_;
  std::vector<std::exception_ptr> async_errors_;
  double sim_time_us_ = 0.0;
  std::int64_t submissions_ = 0;
  double next_submit_us_ = 0.0;
  double device_free_us_ = 0.0;
  double last_event_end_us_ = 0.0;
};

}  // namespace minisycl
