// queue.hpp — SYCL-like queue with in-order / out-of-order submission
// semantics on a simulated timeline.
//
// The paper's §IV-D6 finding — the SYCLomatic-optimized version wins 1.5–6.7%
// because it creates an in-order queue while plain SYCL defaults to
// out-of-order — is reproduced here as a per-submission launch overhead:
// out-of-order queues pay dependency-graph management on every submit even
// when no overlap is possible (cf. SYCL-Bench 2020 [12]).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "gpusim/calibration.hpp"
#include "gpusim/machine.hpp"
#include "minisycl/event.hpp"
#include "minisycl/executor.hpp"

namespace minisycl {

enum class QueueOrder { out_of_order, in_order };
enum class ExecMode { functional, profiled };

class queue {
 public:
  explicit queue(ExecMode mode = ExecMode::functional,
                 QueueOrder order = QueueOrder::out_of_order,
                 gpusim::MachineModel machine = gpusim::a100(),
                 gpusim::Calibration cal = gpusim::default_calibration())
      : mode_(mode), order_(order), machine_(machine), cal_(cal) {}

  [[nodiscard]] ExecMode mode() const { return mode_; }
  [[nodiscard]] QueueOrder order() const { return order_; }
  [[nodiscard]] const gpusim::MachineModel& machine() const { return machine_; }
  [[nodiscard]] const gpusim::Calibration& calibration() const { return cal_; }

  /// Per-submission launch overhead in microseconds on the simulated
  /// timeline (the in-order advantage).
  [[nodiscard]] double launch_overhead_us() const {
    return order_ == QueueOrder::in_order ? cal_.launch_overhead_in_order_us
                                          : cal_.launch_overhead_out_of_order_us;
  }

  /// Submit one kernel.  In functional mode the stats carry zero timing; in
  /// profiled mode they carry the full Table-I record.  Either way the
  /// kernel's side effects (the computed fields) are real.
  template <PhasedKernel Kernel>
  gpusim::KernelStats submit(const LaunchSpec& spec, const Kernel& kernel,
                             std::string name = {}) {
    if (name.empty()) name = spec.traits.name;
    gpusim::KernelStats stats;
    if (mode_ == ExecMode::profiled) {
      stats = execute_profiled(machine_, cal_, spec, kernel, std::move(name));
    } else {
      execute_functional(spec, kernel);
      stats.name = std::move(name);
      stats.launch.global_size = spec.global_size;
      stats.launch.local_size = spec.local_size;
      stats.launch.shared_bytes_per_group = spec.shared_bytes;
      stats.launch.num_phases = spec.num_phases;
    }
    sim_time_us_ += stats.duration_us + launch_overhead_us();
    ++submissions_;
    return stats;
  }

  /// Submit with explicit dependencies and receive a profiling event.  The
  /// device is serialised (each kernel saturates it), so the event start is
  /// the later of "device free" and "all dependencies finished", plus the
  /// queue's launch overhead; in-order queues additionally depend on their
  /// previous submission.
  template <PhasedKernel Kernel>
  event submit_with_event(const LaunchSpec& spec, const Kernel& kernel,
                          std::span<const event> deps = {}, std::string name = {}) {
    const gpusim::KernelStats stats = submit(spec, kernel, std::move(name));

    event ev;
    ev.submit_us = next_submit_us_;
    double ready = device_free_us_;
    for (const event& d : deps) ready = std::max(ready, d.end_us);
    if (order_ == QueueOrder::in_order) ready = std::max(ready, last_event_end_us_);
    ev.start_us = std::max(ev.submit_us, ready) + launch_overhead_us();
    ev.end_us = ev.start_us + stats.duration_us;

    device_free_us_ = ev.end_us;
    last_event_end_us_ = ev.end_us;
    next_submit_us_ = ev.submit_us;  // host submits back-to-back by default
    return ev;
  }

  /// Advance the host-side submission clock (models host work between
  /// submissions).
  void host_advance_us(double us) { next_submit_us_ += us; }

  /// Block until the queue drains.  Submission in this simulator is
  /// synchronous, so this only marks the timeline.
  void wait() {}

  [[nodiscard]] double sim_time_us() const { return sim_time_us_; }
  [[nodiscard]] std::int64_t submissions() const { return submissions_; }
  void reset_timeline() {
    sim_time_us_ = 0.0;
    submissions_ = 0;
  }

 private:
  ExecMode mode_;
  QueueOrder order_;
  gpusim::MachineModel machine_;
  gpusim::Calibration cal_;
  double sim_time_us_ = 0.0;
  std::int64_t submissions_ = 0;
  double next_submit_us_ = 0.0;
  double device_free_us_ = 0.0;
  double last_event_end_us_ = 0.0;
};

}  // namespace minisycl
