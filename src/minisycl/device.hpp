// device.hpp — SYCL-style device introspection over the machine model.
#pragma once

#include <string>

#include "gpusim/machine.hpp"

namespace minisycl {

/// Device descriptor, mirroring the subset of sycl::device::get_info the
/// benchmark and examples query.
class device {
 public:
  explicit device(const gpusim::MachineModel& m = gpusim::a100()) : m_(m) {}

  [[nodiscard]] std::string name() const { return "Simulated NVIDIA A100-SXM4-40GB"; }
  [[nodiscard]] std::string vendor() const { return "gpusim"; }
  [[nodiscard]] int max_compute_units() const { return m_.num_sms; }
  [[nodiscard]] int max_work_group_size() const { return m_.max_group_size; }
  [[nodiscard]] int sub_group_size() const { return m_.warp_size; }
  [[nodiscard]] std::int64_t local_mem_size() const { return m_.shared_bytes_per_sm; }
  [[nodiscard]] std::int64_t global_mem_cache_size() const { return m_.l2_bytes; }
  [[nodiscard]] double clock_ghz() const { return m_.clock_ghz; }
  [[nodiscard]] const gpusim::MachineModel& machine() const { return m_; }

 private:
  gpusim::MachineModel m_;
};

}  // namespace minisycl
