// lane.hpp — the per-work-item execution context handed to kernels.
//
// Kernels are templates over the Lane type ("one kernel source, two lanes",
// DESIGN.md §5):
//   * FastLane  — pure computation; used by correctness tests and examples.
//   * TraceLane — performs the same computation *and* records every memory
//     access, FLOP bundle and branch decision so the executor can merge the
//     32 lanes of a warp position-by-position into warp instructions for the
//     performance pipeline.
//
// Predication: divergent regions bracket themselves with branch()/converge()
// and use set_masked() for lanes that sit out a region.  Masked lanes still
// record (masked) events — keeping all 32 event streams positionally aligned
// — but suppress side effects and generate no memory transactions, exactly
// like predicated-off SIMT lanes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace minisycl {

enum class EventKind : std::uint8_t {
  LoadGlobal,
  StoreGlobal,
  AtomicGlobal,
  LoadShared,
  StoreShared,
  Flops,
  Branch,
};

struct LaneEvent {
  EventKind kind = EventKind::Flops;
  std::uint8_t size = 0;     ///< access width in bytes
  std::uint8_t masked = 0;   ///< predicated off
  std::uint8_t path = 0;     ///< divergence path at this event
  std::uint32_t value = 0;   ///< Flops: count; Branch: chosen path
  std::uint64_t addr = 0;    ///< byte address (global) / byte offset (shared)
};

/// Identity of a work-item within the 1-D nd_range.
struct ItemIds {
  std::int64_t global_id = 0;
  std::int32_t local_id = 0;
  std::int64_t group_id = 0;
  std::int32_t local_range = 0;
};

/// Fast path: executes, records nothing.
class FastLane {
 public:
  FastLane(const ItemIds& ids, std::byte* local_mem) : ids_(ids), local_(local_mem) {}

  [[nodiscard]] std::int64_t global_id() const { return ids_.global_id; }
  [[nodiscard]] int local_id() const { return ids_.local_id; }
  [[nodiscard]] std::int64_t group_id() const { return ids_.group_id; }
  [[nodiscard]] int local_range() const { return ids_.local_range; }

  template <typename T>
  [[nodiscard]] T load(const T* p) {
    return *p;
  }
  template <typename T>
  void store(T* p, const T& v) {
    if (!masked_) *p = v;
  }
  /// Relaxed-order atomic add (the only atomic the kernels use).  Execution
  /// within a work-group is serialised by the executor, so a plain add has
  /// identical semantics to sycl::atomic_ref<..., memory_order::relaxed>.
  void atomic_add(double* p, double v) {
    if (!masked_) *p += v;
  }

  template <typename T>
  [[nodiscard]] T shared_load(int idx) {
    T v;
    std::memcpy(&v, local_ + static_cast<std::size_t>(idx) * sizeof(T), sizeof(T));
    return v;
  }
  template <typename T>
  void shared_store(int idx, const T& v) {
    if (!masked_) {
      std::memcpy(local_ + static_cast<std::size_t>(idx) * sizeof(T), &v, sizeof(T));
    }
  }

  void flops(int) {}
  void branch(int) {}
  /// Record one arm test of an if/else-if cascade (counted as a branch
  /// instruction for divergence statistics) without changing the path.
  void branch_test(bool) {}
  /// Set the divergence path without recording a branch instruction (the
  /// path split is the *consequence* of the cascade's tests, not an extra
  /// instruction).
  void set_path(int) {}
  void converge() {}
  void set_masked(bool m) { masked_ = m; }
  [[nodiscard]] bool masked() const { return masked_; }

 private:
  ItemIds ids_;
  std::byte* local_;
  bool masked_ = false;
};

/// Tracing path: executes *and* records.
class TraceLane {
 public:
  TraceLane(const ItemIds& ids, std::byte* local_mem, std::vector<LaneEvent>* events)
      : ids_(ids), local_(local_mem), events_(events) {}

  [[nodiscard]] std::int64_t global_id() const { return ids_.global_id; }
  [[nodiscard]] int local_id() const { return ids_.local_id; }
  [[nodiscard]] std::int64_t group_id() const { return ids_.group_id; }
  [[nodiscard]] int local_range() const { return ids_.local_range; }

  template <typename T>
  [[nodiscard]] T load(const T* p) {
    record(EventKind::LoadGlobal, sizeof(T), reinterpret_cast<std::uint64_t>(p), 0);
    return *p;
  }
  template <typename T>
  void store(T* p, const T& v) {
    record(EventKind::StoreGlobal, sizeof(T), reinterpret_cast<std::uint64_t>(p), 0);
    if (!masked_) *p = v;
  }
  void atomic_add(double* p, double v) {
    record(EventKind::AtomicGlobal, sizeof(double), reinterpret_cast<std::uint64_t>(p), 0);
    if (!masked_) *p += v;
  }

  template <typename T>
  [[nodiscard]] T shared_load(int idx) {
    const std::size_t off = static_cast<std::size_t>(idx) * sizeof(T);
    record(EventKind::LoadShared, sizeof(T), off, 0);
    T v;
    std::memcpy(&v, local_ + off, sizeof(T));
    return v;
  }
  template <typename T>
  void shared_store(int idx, const T& v) {
    const std::size_t off = static_cast<std::size_t>(idx) * sizeof(T);
    record(EventKind::StoreShared, sizeof(T), off, 0);
    if (!masked_) std::memcpy(local_ + off, &v, sizeof(T));
  }

  void flops(int n) { record(EventKind::Flops, 0, 0, static_cast<std::uint32_t>(n)); }

  /// Record a (potentially divergent) branch decision and enter that path.
  void branch(int chosen_path) {
    record(EventKind::Branch, 0, 0, static_cast<std::uint32_t>(chosen_path));
    path_ = static_cast<std::uint8_t>(chosen_path);
  }
  /// Record one arm test of an if/else-if cascade without changing the path
  /// (see FastLane::branch_test).
  void branch_test(bool taken) {
    record(EventKind::Branch, 0, 0, taken ? 1u : 0u);
  }
  /// Set the divergence path without recording a branch instruction.
  void set_path(int path) { path_ = static_cast<std::uint8_t>(path); }
  /// Leave the divergent region (reconvergence point).
  void converge() { path_ = 0; }

  void set_masked(bool m) { masked_ = m; }
  [[nodiscard]] bool masked() const { return masked_; }

 private:
  void record(EventKind k, std::uint8_t size, std::uint64_t addr, std::uint32_t value) {
    events_->push_back(LaneEvent{k, size, static_cast<std::uint8_t>(masked_ ? 1 : 0), path_,
                                 value, addr});
  }

  ItemIds ids_;
  std::byte* local_;
  std::vector<LaneEvent>* events_;
  std::uint8_t path_ = 0;
  bool masked_ = false;
};

}  // namespace minisycl
