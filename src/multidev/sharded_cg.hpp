// sharded_cg.hpp — the CG solver on top of the sharded multi-device Dslash,
// with lightweight checkpoint/restart.
//
// This is the workload the halo layer exists for: MILC production runs spend
// most of their time inverting A = m^2 I - D_eo D_oe at multi-GPU scale,
// where a solve is minutes-to-hours long and a single link fault or device
// loss must not discard it (DeTar et al. 2017).  The solver composes three
// recovery tiers:
//
//  * the hardened MultiDeviceRunner underneath handles link faults
//    (checksummed retransmission) and device loss (failover to a smaller
//    grid) per Dslash application;
//  * an ABFT identity guards every apply: A is Hermitian, so for a fixed
//    random vector r with z = A_ref r computed once against the serial
//    reference, every y = A x must satisfy <r, y> == <z, x> up to roundoff —
//    one O(n) dot product per apply detects silent corruption of the apply;
//    mismatch triggers a bounded recompute;
//  * periodic snapshots of the solver state (x, r, p, ||r||^2, iteration),
//    each guarded by a true-residual audit and byte checksums: persistent
//    corruption or a device-loss failover restores the last consistent
//    snapshot and replays — exactness of the sharded Dslash (bit-for-bit
//    independent of the grid) makes the replay deterministic even on the
//    post-failover grid.
//
// With no fault plan installed every tier is pass-through: the iteration
// trajectory is bit-for-bit the one cg_solve produces over the same sharded
// apply (asserted in tests/test_sharded_cg.cpp).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "multidev/runner.hpp"

namespace milc::multidev {

struct ShardedCgConfig {
  CgOptions cg{};
  Strategy strategy = Strategy::LP3_1;
  IndexOrder order = IndexOrder::kMajor;
  int local_size = 768;
  gpusim::LinkModel link = gpusim::dgx_a100_links();
  /// Two-level interconnect; nodes == 1 (default) keeps the single-node
  /// path on `link`.  Multi-node solves exchange halos over the fabric tier
  /// and recover from node loss exactly like device loss (the hardened
  /// runner shrinks the grid below the survivor count in one failover).
  gpusim::NodeTopology topo{};
  ExchangeConfig xcfg{};

  /// Halo wire format of the *inner* CG applies (docs/WIRE.md).  The exact
  /// fp64 default leaves the solve bit-for-bit unchanged.  A reduced format
  /// shrinks every halo payload; exactness is then preserved by the
  /// reliable-update outer loop: the recursion runs on the reduced wire,
  /// the residual is periodically replaced by r = b - A x through the exact
  /// fp64 wire (with a p-restart), and convergence is only declared when an
  /// exact-wire true residual clears the tolerance (docs/WIRE.md §5).
  WireFormat wire{};
  /// Iterations between forced exact-wire residual replacements on a
  /// reduced wire (0 disables the periodic trigger; the convergence-gate
  /// replacement always runs).  Ignored on the exact wire.
  int reliable_interval = 25;

  /// Iterations between solver-state snapshots (0 disables checkpointing;
  /// the initial state is always snapshotted).  Each checkpoint pays one
  /// extra operator application for the true-residual audit — on the
  /// critical path in synchronous mode, overlapped with the next iteration's
  /// apply when `async_checkpoint` is set.
  int checkpoint_interval = 10;
  /// Asynchronous checkpointing: at the cadence the state is *staged* (a
  /// pure host-side copy, no operator application), the true-residual audit
  /// runs during the next iteration's apply window (accounted off the
  /// critical path, ShardedCgResult::hidden_applies), and only an audited
  /// staged state is promoted to the durable snapshot restores use —
  /// restores therefore stay bit-for-bit exact, they just may reach one
  /// cadence further back.  Default off: the synchronous path is untouched.
  bool async_checkpoint = false;

  bool abft = true;
  std::uint64_t abft_seed = 0x5eed;
  /// |<r,y> - <z,x>| <= tol * scale accepts an apply, scale grown with the
  /// contracted norms; 1e-8 rides above kernel-vs-reference summation
  /// roundoff while catching any injected bit flip of the fields.
  double abft_rel_tol = 1e-8;
  int max_recomputes = 2;  ///< ABFT-mismatch recomputes per apply (after the first)
  int max_restarts = 8;    ///< checkpoint restores per solve
  /// Checkpoint audit: the true residual may exceed the recursion residual
  /// by at most this factor before the state is declared corrupted.
  double residual_audit_factor = 1e3;

  // --- deadline-aware execution (the serving tier, src/serve) --------------
  /// Hard budget on operator applications for this solve (0 = unlimited).
  /// A deadline scheduler converts its remaining simulated time into an
  /// apply budget; when it runs out the solve stops cleanly at an iteration
  /// boundary — the current iterate stays in `x`, `ShardedCgResult::cancelled`
  /// is set, and the residual is reported honestly.
  int max_applies = 0;
  /// Cooperative cancellation, consulted once per CG iteration with
  /// (iteration, applies so far).  Return true to abandon the solve.
  /// Deterministic callers key this off the simulated clock or apply
  /// counts — never the wall clock.
  std::function<bool(int iteration, int applies)> cancel;
};

/// One solver-level recovery decision.
struct SolverEvent {
  int iteration = 0;
  std::string kind;  ///< checkpoint | audit-restore | recompute | restore | rebuild | failover
  std::string detail;
};

struct ShardedCgResult {
  CgResult cg{};
  bool recovered_all = true;  ///< false: a recovery budget was exhausted
  bool cancelled = false;     ///< solve stopped by max_applies or the cancel hook
  int applies = 0;            ///< sharded operator applications (incl. recomputes)
  int checkpoints_taken = 0;
  int restarts = 0;    ///< checkpoint restores (ABFT, audit or failover)
  int recomputes = 0;  ///< applies discarded by the ABFT check
  int reliable_updates = 0;  ///< exact-wire residual replacements (reduced wire)
  /// The reliable-update certificate: the final true residual, computed
  /// through the exact fp64 wire, cleared the tolerance.  On the exact wire
  /// this coincides with `cg.converged`; on a reduced wire it is the claim
  /// that reduced-precision halos did not change the answer (docs/WIRE.md §5).
  bool certified = false;
  int failovers_observed = 0;
  PartitionGrid final_grid{};
  double recovery_us = 0.0;  ///< simulated time lost to faults across all applies

  // --- checkpoint overhead split (async vs synchronous) --------------------
  int checkpoint_applies = 0;  ///< audit applies paid for checkpointing
  int hidden_applies = 0;      ///< of those, overlapped off the critical path
  int snapshots_staged = 0;    ///< async mode: states staged pending audit
  int snapshots_promoted = 0;  ///< async mode: staged states promoted durable

  // --- elastic recovery accounting, summed over all applies ----------------
  int spares_consumed = 0;    ///< hot spares drafted by re-replication
  int rejoins = 0;            ///< healed resources re-admitted mid-solve
  int capacity_restored = 0;  ///< devices of capacity regained by rejoins
  std::int64_t rereplicated_bytes = 0;  ///< slab wire bytes moved to spares
  double rereplication_us = 0.0;        ///< wire + backoff time of those moves
  std::vector<SolverEvent> events;
  /// Every injected fault observed during the solve (replayable enumeration).
  std::vector<faultsim::FaultEvent> faults;

  [[nodiscard]] std::string summary() const;
};

/// CG inversion of (m^2 - D_eo D_oe) on even sites where every D application
/// runs through MultiDeviceRunner over a partition grid.
class ShardedCgSolver {
 public:
  /// Construction consults the installed tune::TuneSession (if any) for a
  /// cached "mdslash" decision matching this configuration and grid, and
  /// adopts its local size as the preferred size for every D application.
  /// Lookup-only: construction never explores, never runs kernels, never
  /// perturbs fault draw streams — and the adoption changes timing only,
  /// never solution values (local size is functionally inert; the
  /// bit-for-bit identity tests hold under any adopted size).
  ShardedCgSolver(const Coords& dims, std::uint64_t gauge_seed, double mass,
                  PartitionGrid grid, ShardedCgConfig cfg = {});
  ShardedCgSolver(int L, std::uint64_t gauge_seed, double mass, PartitionGrid grid,
                  ShardedCgConfig cfg = {});

  [[nodiscard]] const LatticeGeom& geom() const { return problem_e_.geom(); }
  [[nodiscard]] double mass() const { return mass_; }
  [[nodiscard]] const ShardedCgConfig& config() const { return cfg_; }
  /// The current grid (differs from the constructor's after a failover).
  [[nodiscard]] const PartitionGrid& grid() const { return grid_; }

  /// Solve A x = b (both even-parity).  `x` is the initial guess and holds
  /// the solution on return.  Never throws for injected fault kinds.
  [[nodiscard]] ShardedCgResult solve(const ColorField& b, ColorField& x);

  /// dsan entry: run solve() under the distributed-sanitizer recorder and
  /// check the cluster-wide trace — every apply's halo protocol plus the
  /// solver's checkpoint/restore/failover events (the CheckpointInWindow
  /// lint needs exactly this trace).  Pass `result` to also get the solve's
  /// outcome.  Keep the iteration budget short: the trace grows per apply.
  [[nodiscard]] std::vector<ksan::SanitizerReport> dsan_check(
      const ColorField& b, ColorField& x, ShardedCgResult* result = nullptr);

  /// One sharded application out = (m^2 - D_eo D_oe) in, exposed for the
  /// bit-for-bit identity tests.  No recovery tiers — the hardened runner's
  /// own tiers still apply when a fault plan is installed.
  void apply_normal(const ColorField& in, ColorField& out);

  /// Trusted serial-reference apply (dslash_reference twice) — the ABFT
  /// anchor and the convergence oracle of the chaos tests.
  void apply_reference(const ColorField& in, ColorField& out) const;

 private:
  /// Run one Dslash (problem.c() = D problem.b()) through the sharded path
  /// on the given halo wire format; returns false when the hardened runner
  /// exhausted recovery.  Adopts the post-failover grid and flags
  /// `failover_seen_`.
  bool run_dslash(DslashProblem& problem, ShardedCgResult* res, const WireFormat& wire);
  bool apply_raw(const ColorField& in, ColorField& out, ShardedCgResult* res,
                 const WireFormat& wire);

  double mass_;
  PartitionGrid grid_;
  ShardedCgConfig cfg_;
  DslashProblem problem_o_;  ///< target Odd:  c = D_oe b (b even)
  DslashProblem problem_e_;  ///< target Even: c = D_eo b (b odd)
  MultiDeviceRunner runner_;
  bool failover_seen_ = false;
  /// Live-rejoin target threaded into every hardened apply: the grid the
  /// solve abandoned in its first shrink failover (total() <= 1 when the
  /// solve runs at full capacity) and the heal-site name of the lost
  /// resource.  Cleared when a rejoin restores the capacity.
  PartitionGrid rejoin_grid_{};
  std::string rejoin_what_;
};

}  // namespace milc::multidev
