#include "multidev/runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/dispatch.hpp"
#include "multidev/halo_kernels.hpp"

namespace milc::multidev {

namespace {

/// Device-resident data of one shard: gathered links in the kernels'
/// column-major layout, the extended source field (owned slots followed by
/// ghost slots) and the per-target output.
struct ShardFields {
  std::array<std::vector<dcomplex>, kNlinks> links;
  std::vector<SU3Vector<dcomplex>> src;
  std::vector<SU3Vector<dcomplex>> dst;
};

/// Gather one shard's fields from the global problem.  Link values are
/// copied element-by-element with the same [t][k][j][i] formula
/// DeviceGaugeLayout uses, and source values are plain copies — bit-exact,
/// which is what makes multi-device output identical to single-device.
/// Ghost slots start out as NaN poison: if the interior classification or
/// the unpack protocol were wrong, the poison would propagate into the
/// output and the bit-for-bit tests would fail loudly.
ShardFields build_fields(DslashProblem& p, const Shard& sh) {
  ShardFields f;
  const GaugeView& view = p.view();
  for (int l = 0; l < kNlinks; ++l) {
    auto& fam = f.links[static_cast<std::size_t>(l)];
    fam.resize(static_cast<std::size_t>(sh.targets() * kNdim * kColors * kColors));
    for (std::int64_t t = 0; t < sh.targets(); ++t) {
      const std::int64_t g = sh.target_eo[static_cast<std::size_t>(t)];
      for (int k = 0; k < kNdim; ++k) {
        const SU3Matrix<dcomplex>& m = view.link(l, g, k);
        for (int j = 0; j < kColors; ++j) {
          for (int i = 0; i < kColors; ++i) {
            fam[static_cast<std::size_t>(((t * kNdim + k) * kColors + j) * kColors + i)] =
                m.e[i][j];
          }
        }
      }
    }
  }
  const double nan = std::numeric_limits<double>::quiet_NaN();
  f.src.resize(static_cast<std::size_t>(sh.extended_sources()),
               SU3Vector<dcomplex>{{{nan, nan}, {nan, nan}, {nan, nan}}});
  for (std::int64_t s = 0; s < sh.sources(); ++s) {
    f.src[static_cast<std::size_t>(s)] = p.b()[sh.source_eo[static_cast<std::size_t>(s)]];
  }
  f.dst.assign(static_cast<std::size_t>(sh.targets()), SU3Vector<dcomplex>{});
  return f;
}

/// Argument block for a contiguous target range [first, first + count) of a
/// shard — the interior-first renumbering makes both kernel ranges plain
/// base-pointer offsets.
DslashArgs<dcomplex> range_args(ShardFields& f, const Shard& sh, std::int64_t first,
                                std::int64_t count) {
  DslashArgs<dcomplex> a;
  for (int l = 0; l < kNlinks; ++l) {
    a.links[l] =
        f.links[static_cast<std::size_t>(l)].data() + first * kNdim * kColors * kColors;
  }
  a.b = f.src.data();
  a.c_out = f.dst.data() + first;
  a.neighbors = sh.neighbors.data() + first * kNeighbors;
  a.sites = count;
  return a;
}

/// Submit one Dslash kernel range on a shard queue; returns duration +
/// launch overhead (0 in functional mode).
double submit_dslash(minisycl::queue& q, const DslashArgs<dcomplex>& a, const RunRequest& req,
                     const VariantInfo& vi, int local_size, const std::string& name) {
  return with_dslash_kernel(a, req.strategy, req.order, vi.use_syclcplx,
                            [&](const auto& kernel) {
                              using K = std::decay_t<decltype(kernel)>;
                              minisycl::LaunchSpec spec;
                              spec.global_size = a.sites * items_per_site(req.strategy);
                              spec.local_size = local_size;
                              spec.shared_bytes = K::shared_bytes(local_size);
                              spec.num_phases = K::kPhases;
                              spec.traits = K::traits();
                              spec.traits.codegen_slowdown = vi.codegen_slowdown;
                              const gpusim::KernelStats st = q.submit(spec, kernel, name);
                              return st.duration_us + q.launch_overhead_us();
                            });
}

minisycl::LaunchSpec halo_spec(std::int64_t count, int local_size,
                               const minisycl::KernelTraits& traits) {
  minisycl::LaunchSpec spec;
  spec.global_size = halo_global_size(count, local_size);
  spec.local_size = local_size;
  spec.shared_bytes = 0;
  spec.num_phases = 1;
  spec.traits = traits;
  return spec;
}

}  // namespace

int pick_local_size(Strategy s, IndexOrder o, int preferred, std::int64_t sites) {
  if (sites <= 0) {
    throw std::invalid_argument("pick_local_size: shard range has no sites");
  }
  if (is_valid_local_size(s, o, preferred, sites)) return preferred;
  const std::vector<int> pool = paper_local_sizes(s, o, sites);
  for (auto it = pool.rbegin(); it != pool.rend(); ++it) {
    if (is_valid_local_size(s, o, *it, sites)) return *it;
  }
  const int m = local_size_multiple(s, o);
  for (int ls = (1024 / m) * m; ls >= m; ls -= m) {
    if (is_valid_local_size(s, o, ls, sites)) return ls;
  }
  // Last resort: drop the warp-32 alignment and keep only the strategy's
  // algorithmic multiple.  Shard ranges like 1296 = 2^4 * 3^4 sites under
  // 1LP admit no multiple-of-32 divisor at all; the executor runs partial
  // warps correctly, this merely costs model efficiency on a small range.
  const int algo = local_size_multiple(s, o, /*warp_size=*/1);
  for (int ls = (1024 / algo) * algo; ls >= algo; ls -= algo) {
    if (is_valid_local_size(s, o, ls, sites, /*warp_size=*/1)) return ls;
  }
  throw std::invalid_argument("pick_local_size: no valid local size for " +
                              config_label(s, o, preferred) + " on " + std::to_string(sites) +
                              " sites");
}

MultiDevResult MultiDeviceRunner::run(DslashProblem& problem,
                                      const MultiDevRequest& mreq) const {
  const int ndev = mreq.grid.total();
  if (ndev == 1) {
    // Delegate so single-device numbers reproduce bench_fig6 exactly (the
    // general path would be bit-identical in values but allocates shard
    // copies at different addresses, and the run would carry pack/unpack
    // launches a true single-device run does not have).
    const DslashRunner single(machine_, cal_);
    const RunResult rr = single.run(problem, mreq.req);
    MultiDevResult res;
    res.label = rr.label + " @ " + mreq.grid.label();
    res.devices = 1;
    res.per_iter_us = rr.per_iter_us;
    res.gflops = rr.gflops;
    DeviceTimeline t;
    t.interior_sites = problem.sites();
    t.interior_us = rr.kernel_us;
    t.iter_us = rr.per_iter_us;
    res.per_device.push_back(t);
    return res;
  }

  const VariantInfo& vi = variant_info(mreq.req.variant);
  const Partitioner part(problem.geom(), mreq.grid, problem.target_parity());
  const std::vector<Shard>& shards = part.shards();

  std::vector<ShardFields> fields;
  fields.reserve(shards.size());
  for (const Shard& sh : shards) fields.push_back(build_fields(problem, sh));

  std::vector<std::unique_ptr<minisycl::queue>> queues;
  for (int d = 0; d < ndev; ++d) {
    queues.push_back(std::make_unique<minisycl::queue>(minisycl::ExecMode::profiled,
                                                       vi.queue_order, machine_, cal_));
  }

  MultiDevResult res;
  res.label = config_label(mreq.req.strategy, mreq.req.order, mreq.req.local_size) + " @ " +
              mreq.grid.label();
  res.devices = ndev;
  res.per_device.resize(static_cast<std::size_t>(ndev));
  for (int d = 0; d < ndev; ++d) res.per_device[static_cast<std::size_t>(d)].rank = d;

  // --- Phase 1: every device packs its outbound faces. ------------------
  // (msg.peer is the sender; iteration order is deterministic.)
  std::vector<std::vector<std::vector<dcomplex>>> wires(static_cast<std::size_t>(ndev));
  std::vector<gpusim::LinkMessage> messages;
  std::vector<double> pack_us(static_cast<std::size_t>(ndev), 0.0);
  for (const Shard& sh : shards) {
    auto& shard_wires = wires[static_cast<std::size_t>(sh.rank)];
    for (const HaloMsg& msg : sh.halo) {
      shard_wires.emplace_back(static_cast<std::size_t>(msg.count() * kColors));
      HaloPackKernel pack{.src = fields[static_cast<std::size_t>(msg.peer)].src.data(),
                          .slots = msg.send_slots.data(),
                          .wire = shard_wires.back().data(),
                          .count = msg.count()};
      minisycl::queue& q = *queues[static_cast<std::size_t>(msg.peer)];
      const gpusim::KernelStats st =
          q.submit(halo_spec(msg.count(), mreq.pack_local_size, HaloPackKernel::traits()),
                   pack, "halo-pack");
      pack_us[static_cast<std::size_t>(msg.peer)] += st.duration_us + q.launch_overhead_us();
    }
  }
  // A device puts its messages on the wire once all its packs are done
  // (bulk departure, the cudaMemcpyPeerAsync-after-pack pattern).
  for (const Shard& sh : shards) {
    for (const HaloMsg& msg : sh.halo) {
      messages.push_back({.src = msg.peer,
                          .dst = sh.rank,
                          .bytes = msg.bytes(),
                          .depart_us = pack_us[static_cast<std::size_t>(msg.peer)]});
    }
  }

  // --- Phase 2: interior compute, concurrent with the exchange. ---------
  // Host execution order (interior before unpack) also proves the interior
  // range reads no ghost slot: ghosts are still NaN poison here.
  std::vector<double> interior_us(static_cast<std::size_t>(ndev), 0.0);
  for (const Shard& sh : shards) {
    if (sh.n_interior == 0) continue;
    const DslashArgs<dcomplex> a =
        range_args(fields[static_cast<std::size_t>(sh.rank)], sh, 0, sh.n_interior);
    const int ls =
        pick_local_size(mreq.req.strategy, mreq.req.order, mreq.req.local_size, sh.n_interior);
    interior_us[static_cast<std::size_t>(sh.rank)] = submit_dslash(
        *queues[static_cast<std::size_t>(sh.rank)], a, mreq.req, vi, ls, "dslash-interior");
  }

  const gpusim::ExchangeReport xrep = simulate_exchange(mreq.link, messages, ndev);

  // --- Phase 3: unpack ghosts, then boundary compute. -------------------
  std::vector<double> unpack_us(static_cast<std::size_t>(ndev), 0.0);
  for (const Shard& sh : shards) {
    ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (std::size_t mi = 0; mi < sh.halo.size(); ++mi) {
      const HaloMsg& msg = sh.halo[mi];
      HaloUnpackKernel unpack{.wire = wires[static_cast<std::size_t>(sh.rank)][mi].data(),
                              .field = f.src.data(),
                              .ghost_base = msg.ghost_base,
                              .count = msg.count()};
      minisycl::queue& q = *queues[static_cast<std::size_t>(sh.rank)];
      const gpusim::KernelStats st =
          q.submit(halo_spec(msg.count(), mreq.pack_local_size, HaloUnpackKernel::traits()),
                   unpack, "halo-unpack");
      unpack_us[static_cast<std::size_t>(sh.rank)] += st.duration_us + q.launch_overhead_us();
    }
  }

  std::vector<double> boundary_us(static_cast<std::size_t>(ndev), 0.0);
  for (const Shard& sh : shards) {
    if (sh.n_boundary == 0) continue;
    ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    const DslashArgs<dcomplex> a = range_args(f, sh, sh.n_interior, sh.n_boundary);
    const int ls =
        pick_local_size(mreq.req.strategy, mreq.req.order, mreq.req.local_size, sh.n_boundary);
    boundary_us[static_cast<std::size_t>(sh.rank)] = submit_dslash(
        *queues[static_cast<std::size_t>(sh.rank)], a, mreq.req, vi, ls, "dslash-boundary");
  }

  // --- Gather output and assemble the overlap timeline. -----------------
  for (const Shard& sh : shards) {
    const ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (std::int64_t t = 0; t < sh.targets(); ++t) {
      problem.c()[sh.target_eo[static_cast<std::size_t>(t)]] =
          f.dst[static_cast<std::size_t>(t)];
    }
  }

  double comm_window = 0.0;
  double hidden = 0.0;
  double comm_frac_sum = 0.0;
  std::int64_t boundary_total = 0;
  for (int d = 0; d < ndev; ++d) {
    const auto di = static_cast<std::size_t>(d);
    const Shard& sh = shards[di];
    DeviceTimeline& t = res.per_device[di];
    t.interior_sites = sh.n_interior;
    t.boundary_sites = sh.n_boundary;
    t.halo_bytes_in = sh.halo_bytes();
    t.pack_us = pack_us[di];
    t.interior_us = interior_us[di];
    t.arrival_us = xrep.arrival_us[di];
    t.unpack_us = unpack_us[di];
    t.boundary_us = boundary_us[di];
    t.exposed_us = std::max(0.0, t.arrival_us - (t.pack_us + t.interior_us));
    t.iter_us = std::max(t.pack_us + t.interior_us, t.arrival_us) + t.unpack_us + t.boundary_us;
    res.per_iter_us = std::max(res.per_iter_us, t.iter_us);
    comm_window += std::max(0.0, t.arrival_us - t.pack_us);
    hidden += std::max(0.0, t.arrival_us - t.pack_us) - t.exposed_us;
    res.halo_bytes += t.halo_bytes_in;
    boundary_total += sh.n_boundary;
  }
  for (int d = 0; d < ndev; ++d) {
    const DeviceTimeline& t = res.per_device[static_cast<std::size_t>(d)];
    comm_frac_sum += (t.pack_us + t.unpack_us + t.exposed_us) / res.per_iter_us;
  }
  res.overlap_efficiency = comm_window > 0.0 ? hidden / comm_window : 1.0;
  res.comm_fraction = comm_frac_sum / ndev;
  res.surface_fraction =
      static_cast<double>(boundary_total) / static_cast<double>(problem.sites());
  res.gflops = problem.flops() / (res.per_iter_us * 1e-6) / 1e9;
  return res;
}

void MultiDeviceRunner::run_functional(DslashProblem& problem, const PartitionGrid& grid,
                                       Strategy s, IndexOrder o,
                                       int preferred_local_size) const {
  const Partitioner part(problem.geom(), grid, problem.target_parity());
  minisycl::queue q(minisycl::ExecMode::functional, minisycl::QueueOrder::in_order, machine_,
                    cal_);
  constexpr int kPackLocal = 96;

  std::vector<ShardFields> fields;
  fields.reserve(part.shards().size());
  for (const Shard& sh : part.shards()) fields.push_back(build_fields(problem, sh));

  // pack -> (wire) -> interior (ghosts still poisoned) -> unpack -> boundary
  std::vector<std::vector<std::vector<dcomplex>>> wires(part.shards().size());
  for (const Shard& sh : part.shards()) {
    auto& shard_wires = wires[static_cast<std::size_t>(sh.rank)];
    for (const HaloMsg& msg : sh.halo) {
      shard_wires.emplace_back(static_cast<std::size_t>(msg.count() * kColors));
      HaloPackKernel pack{.src = fields[static_cast<std::size_t>(msg.peer)].src.data(),
                          .slots = msg.send_slots.data(),
                          .wire = shard_wires.back().data(),
                          .count = msg.count()};
      q.submit(halo_spec(msg.count(), kPackLocal, HaloPackKernel::traits()), pack);
    }
  }

  const RunRequest req{.strategy = s, .order = o, .local_size = preferred_local_size};
  const VariantInfo& vi = variant_info(Variant::SYCL);
  for (const Shard& sh : part.shards()) {
    if (sh.n_interior == 0) continue;
    ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    const int ls = pick_local_size(s, o, preferred_local_size, sh.n_interior);
    submit_dslash(q, range_args(f, sh, 0, sh.n_interior), req, vi, ls, "dslash-interior");
  }

  for (const Shard& sh : part.shards()) {
    ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (std::size_t mi = 0; mi < sh.halo.size(); ++mi) {
      const HaloMsg& msg = sh.halo[mi];
      HaloUnpackKernel unpack{.wire = wires[static_cast<std::size_t>(sh.rank)][mi].data(),
                              .field = f.src.data(),
                              .ghost_base = msg.ghost_base,
                              .count = msg.count()};
      q.submit(halo_spec(msg.count(), kPackLocal, HaloUnpackKernel::traits()), unpack);
    }
    if (sh.n_boundary > 0) {
      const int ls = pick_local_size(s, o, preferred_local_size, sh.n_boundary);
      submit_dslash(q, range_args(f, sh, sh.n_interior, sh.n_boundary), req, vi, ls,
                    "dslash-boundary");
    }
  }

  for (const Shard& sh : part.shards()) {
    const ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (std::int64_t t = 0; t < sh.targets(); ++t) {
      problem.c()[sh.target_eo[static_cast<std::size_t>(t)]] =
          f.dst[static_cast<std::size_t>(t)];
    }
  }
}

void MultiDeviceRunner::run_reference(DslashProblem& problem, const PartitionGrid& grid,
                                      ColorField& out) const {
  const Partitioner part(problem.geom(), grid, problem.target_parity());
  std::vector<ShardFields> fields;
  fields.reserve(part.shards().size());
  for (const Shard& sh : part.shards()) fields.push_back(build_fields(problem, sh));

  // Serial exchange: copy every wire site straight from owner to ghost slot.
  for (const Shard& sh : part.shards()) {
    ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (const HaloMsg& msg : sh.halo) {
      const ShardFields& peer = fields[static_cast<std::size_t>(msg.peer)];
      for (std::int64_t i = 0; i < msg.count(); ++i) {
        f.src[static_cast<std::size_t>(msg.ghost_base + i)] =
            peer.src[static_cast<std::size_t>(msg.send_slots[static_cast<std::size_t>(i)])];
      }
    }
  }

  // Per-shard evaluation in dslash_reference's exact loop order (k outer,
  // l inner, matvec + signed accumulate) over the gathered shard data —
  // the same values in the same operations, so bit-for-bit equal.
  for (const Shard& sh : part.shards()) {
    const ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (std::int64_t t = 0; t < sh.targets(); ++t) {
      SU3Vector<dcomplex> acc;
      for (int k = 0; k < kNdim; ++k) {
        for (int l = 0; l < kNlinks; ++l) {
          SU3Matrix<dcomplex> m;
          const auto& fam = f.links[static_cast<std::size_t>(l)];
          for (int j = 0; j < kColors; ++j) {
            for (int i = 0; i < kColors; ++i) {
              m.e[i][j] = fam[static_cast<std::size_t>(((t * kNdim + k) * kColors + j) *
                                                           kColors +
                                                       i)];
            }
          }
          const std::int32_t n =
              sh.neighbors[static_cast<std::size_t>(t * kNeighbors + k * kNlinks + l)];
          const SU3Vector<dcomplex> v = matvec(m, f.src[static_cast<std::size_t>(n)]);
          const double sign = kStencilSigns[static_cast<std::size_t>(l)];
          acc += sign * v;
        }
      }
      out[sh.target_eo[static_cast<std::size_t>(t)]] = acc;
    }
  }
}

std::vector<ksan::SanitizerReport> MultiDeviceRunner::sanitize_halo(
    DslashProblem& problem, const PartitionGrid& grid, int pack_local_size) const {
  const Partitioner part(problem.geom(), grid, problem.target_parity());
  std::vector<ShardFields> fields;
  fields.reserve(part.shards().size());
  for (const Shard& sh : part.shards()) fields.push_back(build_fields(problem, sh));

  std::vector<ksan::SanitizerReport> reports;
  for (const Shard& sh : part.shards()) {
    ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (const HaloMsg& msg : sh.halo) {
      std::vector<dcomplex> wire(static_cast<std::size_t>(msg.count() * kColors));
      const Shard& peer_sh = part.shard(msg.peer);
      ShardFields& peer = fields[static_cast<std::size_t>(msg.peer)];
      const std::string suffix = " r" + std::to_string(msg.peer) + "->r" +
                                 std::to_string(sh.rank) + " dim" + std::to_string(msg.dim) +
                                 (msg.side == 0 ? "-" : "+");

      // Pack: reads must stay inside the sender's *owned* sources (reading
      // a ghost slot would be an ordering bug), writes inside the wire.
      HaloPackKernel pack{.src = peer.src.data(),
                         .slots = msg.send_slots.data(),
                         .wire = wire.data(),
                         .count = msg.count()};
      ksan::SanitizeConfig pack_cfg;
      pack_cfg.regions.push_back(
          ksan::region_of(peer.src.data(), static_cast<std::size_t>(peer_sh.sources())));
      pack_cfg.regions.push_back(
          ksan::region_of(msg.send_slots.data(), msg.send_slots.size()));
      pack_cfg.regions.push_back(ksan::region_of(wire.data(), wire.size()));
      reports.push_back(
          ksan::sanitize_launch(halo_spec(msg.count(), pack_local_size, pack.traits()), pack,
                                std::move(pack_cfg), "halo-pack" + suffix));

      // Unpack: reads inside the wire, writes *only* into this message's
      // ghost span — declaring exactly that span turns any stray write
      // (owned sites, another message's ghosts) into a reported OOB.
      HaloUnpackKernel unpack{.wire = wire.data(),
                              .field = f.src.data(),
                              .ghost_base = msg.ghost_base,
                              .count = msg.count()};
      ksan::SanitizeConfig unpack_cfg;
      unpack_cfg.regions.push_back(ksan::region_of(wire.data(), wire.size()));
      unpack_cfg.regions.push_back(ksan::region_of(f.src.data() + msg.ghost_base,
                                                   static_cast<std::size_t>(msg.count())));
      reports.push_back(
          ksan::sanitize_launch(halo_spec(msg.count(), pack_local_size, unpack.traits()),
                                unpack, std::move(unpack_cfg), "halo-unpack" + suffix));
    }
  }
  return reports;
}

}  // namespace milc::multidev
