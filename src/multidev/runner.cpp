#include "multidev/runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/dispatch.hpp"
#include "dsan/check.hpp"
#include "multidev/halo_kernels.hpp"
#include "tune/candidates.hpp"
#include "tune/explorer.hpp"

namespace milc::multidev {

namespace {

/// Device-resident data of one shard: gathered links in the kernels'
/// column-major layout, the extended source field (owned slots followed by
/// ghost slots) and the per-target output.
struct ShardFields {
  std::array<std::vector<dcomplex>, kNlinks> links;
  std::vector<SU3Vector<dcomplex>> src;
  std::vector<SU3Vector<dcomplex>> dst;
};

/// Gather one shard's fields from the global problem.  Link values are
/// copied element-by-element with the same [t][k][j][i] formula
/// DeviceGaugeLayout uses, and source values are plain copies — bit-exact,
/// which is what makes multi-device output identical to single-device.
/// Ghost slots start out as NaN poison: if the interior classification or
/// the unpack protocol were wrong, the poison would propagate into the
/// output and the bit-for-bit tests would fail loudly.
ShardFields build_fields(DslashProblem& p, const Shard& sh) {
  ShardFields f;
  const GaugeView& view = p.view();
  for (int l = 0; l < kNlinks; ++l) {
    auto& fam = f.links[static_cast<std::size_t>(l)];
    fam.resize(static_cast<std::size_t>(sh.targets() * kNdim * kColors * kColors));
    for (std::int64_t t = 0; t < sh.targets(); ++t) {
      const std::int64_t g = sh.target_eo[static_cast<std::size_t>(t)];
      for (int k = 0; k < kNdim; ++k) {
        const SU3Matrix<dcomplex>& m = view.link(l, g, k);
        for (int j = 0; j < kColors; ++j) {
          for (int i = 0; i < kColors; ++i) {
            fam[static_cast<std::size_t>(((t * kNdim + k) * kColors + j) * kColors + i)] =
                m.e[i][j];
          }
        }
      }
    }
  }
  const double nan = std::numeric_limits<double>::quiet_NaN();
  f.src.resize(static_cast<std::size_t>(sh.extended_sources()),
               SU3Vector<dcomplex>{{{nan, nan}, {nan, nan}, {nan, nan}}});
  for (std::int64_t s = 0; s < sh.sources(); ++s) {
    f.src[static_cast<std::size_t>(s)] = p.b()[sh.source_eo[static_cast<std::size_t>(s)]];
  }
  f.dst.assign(static_cast<std::size_t>(sh.targets()), SU3Vector<dcomplex>{});
  return f;
}

/// Argument block for a contiguous target range [first, first + count) of a
/// shard — the interior-first renumbering makes both kernel ranges plain
/// base-pointer offsets.
DslashArgs<dcomplex> range_args(ShardFields& f, const Shard& sh, std::int64_t first,
                                std::int64_t count) {
  DslashArgs<dcomplex> a;
  for (int l = 0; l < kNlinks; ++l) {
    a.links[l] =
        f.links[static_cast<std::size_t>(l)].data() + first * kNdim * kColors * kColors;
  }
  a.b = f.src.data();
  a.c_out = f.dst.data() + first;
  a.neighbors = sh.neighbors.data() + first * kNeighbors;
  a.sites = count;
  return a;
}

/// The shard launch's buffers in a fixed order, for the profiler's canonical
/// address map (see minisycl::AddressRegion): shard timings become pure
/// functions of the launch, which the tuning cache's bit-for-bit replay rule
/// needs.  `src_elems` is the extended source extent — neighbor indices can
/// reach any ghost slot, so the whole field is one region.
std::vector<minisycl::AddressRegion> shard_regions(const DslashArgs<dcomplex>& a,
                                                   std::int64_t src_elems) {
  std::vector<minisycl::AddressRegion> regions;
  for (int l = 0; l < kNlinks; ++l) {
    regions.push_back({a.links[l], a.sites * kNdim * kColors * kColors *
                                       static_cast<std::int64_t>(sizeof(dcomplex))});
  }
  regions.push_back({a.b, src_elems * static_cast<std::int64_t>(sizeof(SU3Vector<dcomplex>))});
  regions.push_back(
      {a.c_out, a.sites * static_cast<std::int64_t>(sizeof(SU3Vector<dcomplex>))});
  regions.push_back({a.neighbors,
                     a.sites * kNeighbors * static_cast<std::int64_t>(sizeof(std::int32_t))});
  return regions;
}

template <typename W>
std::vector<minisycl::AddressRegion> pack_regions(const HaloPackKernelT<W>& k,
                                                  std::int64_t src_elems) {
  return {{k.src, src_elems * static_cast<std::int64_t>(sizeof(SU3Vector<dcomplex>))},
          {k.slots, k.count * static_cast<std::int64_t>(sizeof(std::int32_t))},
          {k.wire, k.count * kColors * static_cast<std::int64_t>(sizeof(W))}};
}

template <typename W>
std::vector<minisycl::AddressRegion> unpack_regions(const HaloUnpackKernelT<W>& k,
                                                    std::int64_t field_elems) {
  return {{k.wire, k.count * kColors * static_cast<std::int64_t>(sizeof(W))},
          {k.field, field_elems * static_cast<std::int64_t>(sizeof(SU3Vector<dcomplex>))}};
}

/// Dispatch a wire-format-generic callable over the spinor format's wire
/// element type.  `fn` receives a WireCodec-compatible element as a type
/// tag: fn(dcomplex{}) / fn(scomplex{}) / fn(hcomplex{}).
template <typename Fn>
decltype(auto) with_wire_element(SpinorWire w, Fn&& fn) {
  switch (w) {
    case SpinorWire::fp64: return fn(dcomplex{});
    case SpinorWire::fp32: return fn(scomplex{});
    case SpinorWire::fp16: return fn(hcomplex{});
  }
  return fn(dcomplex{});
}

/// The fp16 wire's per-message range scale: 1 / max|component| over the
/// values about to be packed (1.0 for empty or all-zero payloads, and on
/// every other format).  Computed on the sender from the same slots the
/// pack kernel gathers, so both ends agree by construction — the scale
/// rides the message header, not the payload bytes (docs/WIRE.md §2).
double message_scale(SpinorWire w, const SU3Vector<dcomplex>* src, const HaloMsg& hm) {
  if (w != SpinorWire::fp16) return 1.0;
  double peak = 0.0;
  for (const std::int32_t s : hm.send_slots) {
    for (int c = 0; c < kColors; ++c) {
      peak = std::max(peak, std::abs(src[s].c[c].re));
      peak = std::max(peak, std::abs(src[s].c[c].im));
    }
  }
  return peak > 0.0 ? 1.0 / peak : 1.0;
}

/// Submit one Dslash kernel range on a shard queue; returns the raw stats
/// (stats.fault names an injected failure — no side effects in that case).
gpusim::KernelStats submit_dslash_raw(minisycl::queue& q, const DslashArgs<dcomplex>& a,
                                      std::int64_t src_elems, const RunRequest& req,
                                      const VariantInfo& vi, int local_size,
                                      const std::string& name) {
  return with_dslash_kernel(a, req.strategy, req.order, vi.use_syclcplx,
                            [&](const auto& kernel) {
                              using K = std::decay_t<decltype(kernel)>;
                              minisycl::LaunchSpec spec;
                              spec.global_size = a.sites * items_per_site(req.strategy);
                              spec.local_size = local_size;
                              spec.shared_bytes = K::shared_bytes(local_size);
                              spec.num_phases = K::kPhases;
                              spec.traits = K::traits();
                              spec.traits.codegen_slowdown = vi.codegen_slowdown;
                              spec.regions = shard_regions(a, src_elems);
                              return q.submit(spec, kernel, name);
                            });
}

/// Submit one Dslash kernel range on a shard queue; returns duration +
/// launch overhead (0 in functional mode).
double submit_dslash(minisycl::queue& q, const DslashArgs<dcomplex>& a,
                     std::int64_t src_elems, const RunRequest& req, const VariantInfo& vi,
                     int local_size, const std::string& name) {
  const gpusim::KernelStats st = submit_dslash_raw(q, a, src_elems, req, vi, local_size, name);
  return st.duration_us + q.launch_overhead_us();
}

minisycl::LaunchSpec halo_spec(std::int64_t count, int local_size,
                               const minisycl::KernelTraits& traits) {
  minisycl::LaunchSpec spec;
  spec.global_size = halo_global_size(count, local_size);
  spec.local_size = local_size;
  spec.shared_bytes = 0;
  spec.num_phases = 1;
  spec.traits = traits;
  return spec;
}

/// FNV-1a over raw bytes — the per-message halo-payload checksum.  Not
/// cryptographic; it only needs to catch the injector's bit flips, and a
/// single flipped bit always perturbs the multiply-xor chain.
std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Adapt the caller's request to a fallback rung (same policy as
/// ResilientRunner): plain SYCL variant, and the first paper-valid
/// (order, local size) when the caller's choice does not exist there.
RunRequest adapt_request(const RunRequest& base, Strategy s, std::int64_t sites) {
  if (s == base.strategy) return base;
  RunRequest r = base;
  r.strategy = s;
  r.variant = Variant::SYCL;
  const std::vector<IndexOrder> orders = orders_of(s);
  if (std::find(orders.begin(), orders.end(), r.order) == orders.end()) {
    r.order = orders.front();
  }
  if (!is_valid_local_size(s, r.order, r.local_size, sites)) {
    const std::vector<int> sizes = paper_local_sizes(s, r.order, sites);
    if (!sizes.empty()) r.local_size = sizes.front();
  }
  return r;
}

/// Discard a queue's buffered async errors (the hardened path classifies
/// faults from stats.fault at the submission site; the buffered exceptions
/// are the same information).
void drain_errors(minisycl::queue& q) {
  try {
    q.wait_and_throw();
  } catch (const minisycl::exception&) {
    // already handled via stats.fault
  }
}

/// The unique message site name, shared between gpusim's injector consult,
/// the ExchangeReport and docs/RESILIENCE.md.
std::string exchange_site(int src, int dst) {
  return "halo-exchange r" + std::to_string(src) + "->r" + std::to_string(dst);
}

std::string pack_site(int src, int dst) {
  return "halo-pack r" + std::to_string(src) + "->r" + std::to_string(dst);
}

std::string unpack_site(int src, int dst) {
  return "halo-unpack r" + std::to_string(src) + "->r" + std::to_string(dst);
}

/// Install dsan kernel hooks on every shard queue (rank = queue index).  The
/// hook fires only on the *successful* submission path, so retried failures
/// never enter the trace; call sites refine the raw Kernel event with the
/// protocol-accurate site and memory spans via Recorder::annotate.
void hook_queues_for_dsan(dsan::Recorder* rec,
                          std::vector<std::unique_ptr<minisycl::queue>>& queues) {
  if (rec == nullptr) return;
  for (std::size_t d = 0; d < queues.size(); ++d) {
    const int rank = static_cast<int>(d);
    queues[d]->set_kernel_hook(
        [rec, rank](const std::string& name, const gpusim::KernelStats&) {
          rec->kernel(rank, name);
        });
  }
}

}  // namespace

std::string ExchangeReport::summary() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ExchangeReport: %s  rounds=%d  messages=%d  retx=%d  drop=%d  corrupt=%d  "
                "delay=%d  checksum-fail=%d  backoff=%.1f us%s\n",
                succeeded ? "SUCCEEDED" : "FAILED", rounds, messages, retransmissions, drops,
                corruptions, delays, checksum_failures, backoff_us,
                watchdog_fired ? "  WATCHDOG" : "");
  out += buf;
  for (const ExchangeEvent& e : events) {
    std::snprintf(buf, sizeof(buf), "  round %d %s: %s%s%s%s%s\n", e.round, e.site.c_str(),
                  e.delivered ? "delivered" : "failed", e.dropped ? " [dropped]" : "",
                  e.corrupted ? " [corrupted]" : "", e.delayed ? " [delayed]" : "",
                  e.checksum_ok ? "" : " [checksum mismatch]");
    out += buf;
  }
  return out;
}

PartitionGrid fallback_grid(const PartitionGrid& grid) {
  PartitionGrid next = grid;
  for (int d = 0; d < 4; ++d) {
    const int n = next.devices[static_cast<std::size_t>(d)];
    if (n <= 1) continue;
    int factor = n;  // smallest prime factor
    for (int f = 2; f * f <= n; ++f) {
      if (n % f == 0) {
        factor = f;
        break;
      }
    }
    next.devices[static_cast<std::size_t>(d)] = n / factor;
    return next;
  }
  return next;
}

gpusim::NodeTopology effective_topology(const gpusim::NodeTopology& topo, int devices) {
  gpusim::NodeTopology t = topo;
  if (topo.multi_node() && devices > topo.devices_per_node &&
      devices % topo.devices_per_node == 0) {
    t.nodes = devices / topo.devices_per_node;
  } else {
    t.nodes = 1;
    t.devices_per_node = devices;
  }
  return t;
}

int pick_local_size(Strategy s, IndexOrder o, int preferred, std::int64_t sites) {
  // The fallback ladder (paper pool, warp-aligned multiples, partial-warp
  // algorithmic multiples) now lives in tune::local_size_ladder — the same
  // enumeration the online tuner sweeps on a cache miss.
  return tune::pick_local_size(s, o, preferred, sites);
}

MultiDevResult MultiDeviceRunner::run(DslashProblem& problem,
                                      const MultiDevRequest& mreq) const {
  // With no fault plan installed the pre-existing path runs untouched —
  // same allocations, same submissions, bit-for-bit the fault-free timeline.
  if (faultsim::Injector::current() == nullptr) return run_plain(problem, mreq);
  return run_hardened(problem, mreq);
}

tune::TuneKey MultiDeviceRunner::tune_key(const DslashProblem& problem,
                                          const MultiDevRequest& mreq) const {
  tune::TuneKey key;
  key.arch = tune::arch_fingerprint(machine_);
  const LatticeGeom& g = problem.geom();
  key.geom = tune::geom_signature(g.extent(0), g.extent(1), g.extent(2), g.extent(3),
                                  problem.target_parity() == Parity::Even);
  key.kernel = "mdslash";
  key.config = std::string(to_string(mreq.req.strategy)) + " " +
               to_string(mreq.req.order) + " " + variant_info(mreq.req.variant).name +
               " grid " + mreq.grid.label();
  // Wire format rides the grammar's prec/recon fields; the fp64/recon-18
  // default maps to the field defaults so pre-wire-format entries replay.
  key.prec = wire_prec_field(mreq.wire);
  key.recon = wire_recon_field(mreq.wire);
  key.devices = mreq.grid.total();
  key.topo = tune::topo_signature(mreq.topo.nodes, mreq.topo.devices_per_node);
  return key;
}

MultiDevTunedResult MultiDeviceRunner::run_tuned(DslashProblem& problem,
                                                 const MultiDevRequest& mreq) const {
  const tune::TuneKey key = tune_key(problem, mreq);

  std::vector<tune::Candidate> candidates;
  for (int ls : paper_local_sizes(mreq.req.strategy, mreq.req.order, problem.sites())) {
    tune::Candidate c;
    c.local_size = ls;
    c.order = to_string(mreq.req.order);
    c.grid = mreq.grid.label();
    candidates.push_back(c);
  }

  std::map<int, MultiDevResult> priced;
  const tune::PriceFn price = [&](const tune::Candidate& c) {
    MultiDevRequest r = mreq;
    r.req.local_size = c.local_size;
    MultiDevResult res = run(problem, r);
    const double t = res.per_iter_us;
    priced[c.local_size] = std::move(res);
    return t;
  };

  const tune::TuneOutcome out = tune::tune_or_replay(key, candidates, price);
  MultiDevTunedResult tr;
  tr.entry = out.entry;
  tr.from_cache = out.from_cache;
  tr.candidates_tried = out.candidates_tried;
  tr.result = std::move(priced.at(out.entry.local_size));
  return tr;
}

std::vector<ksan::SanitizerReport> MultiDeviceRunner::dsan_check(
    DslashProblem& problem, const MultiDevRequest& mreq) const {
  dsan::ScopedRecorder sr;
  (void)run(problem, mreq);
  return dsan::check_all(sr.rec.trace(), mreq.grid.label());
}

MultiDevResult MultiDeviceRunner::run_plain(DslashProblem& problem,
                                            const MultiDevRequest& mreq) const {
  const int ndev = mreq.grid.total();
  if (ndev == 1) {
    // Delegate so single-device numbers reproduce bench_fig6 exactly (the
    // general path would be bit-identical in values but allocates shard
    // copies at different addresses, and the run would carry pack/unpack
    // launches a true single-device run does not have).
    const DslashRunner single(machine_, cal_);
    const RunResult rr = single.run(problem, mreq.req);
    MultiDevResult res;
    res.label = rr.label + " @ " + mreq.grid.label();
    res.devices = 1;
    res.per_iter_us = rr.per_iter_us;
    res.gflops = rr.gflops;
    DeviceTimeline t;
    t.interior_sites = problem.sites();
    t.interior_us = rr.kernel_us;
    t.iter_us = rr.per_iter_us;
    res.per_device.push_back(t);
    res.final_grid = mreq.grid;
    res.wire = mreq.wire;
    return res;
  }

  const bool multi_node = mreq.topo.multi_node();
  if (multi_node && mreq.topo.total_devices() != ndev) {
    throw std::invalid_argument("MultiDeviceRunner: topology has " +
                                std::to_string(mreq.topo.total_devices()) +
                                " devices but the grid needs " + std::to_string(ndev));
  }
  const auto crosses_fabric = [&](int a, int b) {
    return multi_node && !mreq.topo.same_node(a, b);
  };

  const VariantInfo& vi = variant_info(mreq.req.variant);
  const Partitioner part(problem.geom(), mreq.grid, problem.target_parity());
  const std::vector<Shard>& shards = part.shards();

  std::vector<ShardFields> fields;
  fields.reserve(shards.size());
  for (const Shard& sh : shards) fields.push_back(build_fields(problem, sh));

  std::vector<std::unique_ptr<minisycl::queue>> queues;
  for (int d = 0; d < ndev; ++d) {
    queues.push_back(std::make_unique<minisycl::queue>(minisycl::ExecMode::profiled,
                                                       vi.queue_order, machine_, cal_));
  }

  dsan::Recorder* rec = dsan::Recorder::current();
  if (rec != nullptr) {
    rec->barrier("run @ " + mreq.grid.label());
    hook_queues_for_dsan(rec, queues);
  }

  MultiDevResult res;
  res.label = config_label(mreq.req.strategy, mreq.req.order, mreq.req.local_size) + " @ " +
              mreq.grid.label();
  res.devices = ndev;
  res.per_device.resize(static_cast<std::size_t>(ndev));
  for (int d = 0; d < ndev; ++d) res.per_device[static_cast<std::size_t>(d)].rank = d;

  // --- Phase 1: every device packs its outbound faces. ------------------
  // (msg.peer is the sender; iteration order is deterministic.)  Fabric-
  // bound slabs pack first so their aggregates hit the slow pipe at
  // fabric_pack_us while the NVLink slabs are still packing — the two-phase
  // schedule.  Single-node runs have no pass-0 slabs: identical schedule.
  // Wire buffers hold *encoded* bytes (msg.wire_bytes of the format): the
  // pack kernels write the wire element type directly — no staging copy.
  const SpinorWire sw = mreq.wire.spinor;
  std::vector<std::vector<std::vector<std::byte>>> wires(static_cast<std::size_t>(ndev));
  std::vector<std::vector<double>> scales(static_cast<std::size_t>(ndev));
  for (const Shard& sh : shards) {
    wires[static_cast<std::size_t>(sh.rank)].resize(sh.halo.size());
    scales[static_cast<std::size_t>(sh.rank)].assign(sh.halo.size(), 1.0);
  }
  std::vector<gpusim::LinkMessage> messages;
  std::vector<double> pack_us(static_cast<std::size_t>(ndev), 0.0);
  std::vector<double> fabric_pack_us(static_cast<std::size_t>(ndev), 0.0);
  for (int pass = 0; pass < 2; ++pass) {
    for (const Shard& sh : shards) {
      for (std::size_t mi = 0; mi < sh.halo.size(); ++mi) {
        const HaloMsg& msg = sh.halo[mi];
        if ((pass == 0) != crosses_fabric(msg.peer, sh.rank)) continue;
        auto& wire = wires[static_cast<std::size_t>(sh.rank)][mi];
        wire.resize(static_cast<std::size_t>(msg.wire_bytes(sw)));
        const double scale =
            message_scale(sw, fields[static_cast<std::size_t>(msg.peer)].src.data(), msg);
        scales[static_cast<std::size_t>(sh.rank)][mi] = scale;
        minisycl::queue& q = *queues[static_cast<std::size_t>(msg.peer)];
        with_wire_element(sw, [&](auto tag) {
          using W = decltype(tag);
          HaloPackKernelT<W> pack{.src = fields[static_cast<std::size_t>(msg.peer)].src.data(),
                                  .slots = msg.send_slots.data(),
                                  .wire = reinterpret_cast<W*>(wire.data()),
                                  .count = msg.count(),
                                  .scale = scale};
          minisycl::LaunchSpec pspec =
              halo_spec(msg.count(), mreq.pack_local_size, HaloPackKernelT<W>::traits());
          pspec.regions = pack_regions(
              pack, shards[static_cast<std::size_t>(msg.peer)].extended_sources());
          const gpusim::KernelStats st = q.submit(pspec, pack, "halo-pack");
          pack_us[static_cast<std::size_t>(msg.peer)] +=
              st.duration_us + q.launch_overhead_us();
        });
        if (rec != nullptr) {
          rec->annotate(
              msg.peer, pack_site(msg.peer, sh.rank),
              {dsan::span_of(fields[static_cast<std::size_t>(msg.peer)].src.data(),
                             static_cast<std::size_t>(
                                 shards[static_cast<std::size_t>(msg.peer)].sources())),
               dsan::span_of(msg.send_slots.data(), msg.send_slots.size())},
              {dsan::span_of(wire.data(), wire.size())});
        }
      }
    }
    if (pass == 0) fabric_pack_us = pack_us;
  }
  // A device puts its messages on the wire once the packs feeding them are
  // done (bulk departure, the cudaMemcpyPeerAsync-after-pack pattern);
  // fabric-bound slabs depart at the end of the fabric pack pass.
  std::vector<std::uint64_t> tx_ids;
  for (const Shard& sh : shards) {
    for (std::size_t mi = 0; mi < sh.halo.size(); ++mi) {
      const HaloMsg& msg = sh.halo[mi];
      const bool fabric = crosses_fabric(msg.peer, sh.rank);
      messages.push_back({.src = msg.peer,
                          .dst = sh.rank,
                          .bytes = msg.wire_bytes(sw),
                          .depart_us = fabric
                                           ? fabric_pack_us[static_cast<std::size_t>(msg.peer)]
                                           : pack_us[static_cast<std::size_t>(msg.peer)],
                          .site = exchange_site(msg.peer, sh.rank)});
      if (rec != nullptr) {
        const auto& wire = wires[static_cast<std::size_t>(sh.rank)][mi];
        tx_ids.push_back(rec->send(msg.peer, sh.rank, exchange_site(msg.peer, sh.rank),
                                   /*round=*/1, dsan::span_of(wire.data(), wire.size()),
                                   /*dropped=*/false, fabric,
                                   multi_node ? mreq.topo.node_of(msg.peer) : 0,
                                   multi_node ? mreq.topo.node_of(sh.rank) : 0));
      }
    }
  }

  // --- Phase 2: interior compute, concurrent with the exchange. ---------
  // Host execution order (interior before unpack) also proves the interior
  // range reads no ghost slot: ghosts are still NaN poison here.
  std::vector<double> interior_us(static_cast<std::size_t>(ndev), 0.0);
  for (const Shard& sh : shards) {
    if (sh.n_interior == 0) continue;
    const DslashArgs<dcomplex> a =
        range_args(fields[static_cast<std::size_t>(sh.rank)], sh, 0, sh.n_interior);
    const int ls =
        pick_local_size(mreq.req.strategy, mreq.req.order, mreq.req.local_size, sh.n_interior);
    interior_us[static_cast<std::size_t>(sh.rank)] =
        submit_dslash(*queues[static_cast<std::size_t>(sh.rank)], a, sh.extended_sources(),
                      mreq.req, vi, ls, "dslash-interior");
    if (rec != nullptr) {
      ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
      rec->annotate(sh.rank, "dslash-interior r" + std::to_string(sh.rank),
                    {dsan::span_of(f.src.data(), static_cast<std::size_t>(sh.sources()))},
                    {dsan::span_of(f.dst.data(), static_cast<std::size_t>(sh.n_interior))});
    }
  }

  std::vector<double> arrival_us(static_cast<std::size_t>(ndev), 0.0);
  if (multi_node) {
    const gpusim::FabricExchangeReport frep =
        gpusim::simulate_topology_exchange(mreq.topo, messages);
    arrival_us = frep.arrival_us;
    res.nodes = mreq.topo.nodes;
    res.intra_node_bytes = frep.intra_bytes;
    res.inter_node_bytes = frep.inter_bytes;
    res.fabric_messages = frep.inter_messages;
    res.intra_wire_us = frep.intra_wire_us;
    res.inter_wire_us = frep.inter_wire_us;
  } else {
    const gpusim::ExchangeReport xrep = simulate_exchange(mreq.link, messages, ndev);
    arrival_us = xrep.arrival_us;
  }
  if (rec != nullptr) {
    std::size_t k = 0;
    for (const Shard& sh : shards) {
      for (std::size_t mi = 0; mi < sh.halo.size(); ++mi, ++k) {
        const auto& wire = wires[static_cast<std::size_t>(sh.rank)][mi];
        rec->recv(tx_ids[k], /*delivered=*/true,
                  {dsan::span_of(wire.data(), wire.size())});
      }
    }
  }

  // --- Phase 3: unpack ghosts, then boundary compute. -------------------
  std::vector<double> unpack_us(static_cast<std::size_t>(ndev), 0.0);
  std::size_t msg_seq = 0;
  for (const Shard& sh : shards) {
    ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (std::size_t mi = 0; mi < sh.halo.size(); ++mi) {
      const HaloMsg& msg = sh.halo[mi];
      minisycl::queue& q = *queues[static_cast<std::size_t>(sh.rank)];
      const double scale = scales[static_cast<std::size_t>(sh.rank)][mi];
      with_wire_element(sw, [&](auto tag) {
        using W = decltype(tag);
        HaloUnpackKernelT<W> unpack{
            .wire = reinterpret_cast<const W*>(
                wires[static_cast<std::size_t>(sh.rank)][mi].data()),
            .field = f.src.data(),
            .ghost_base = msg.ghost_base,
            .count = msg.count(),
            .inv_scale = 1.0 / scale};
        minisycl::LaunchSpec uspec =
            halo_spec(msg.count(), mreq.pack_local_size, HaloUnpackKernelT<W>::traits());
        uspec.regions = unpack_regions(unpack, sh.extended_sources());
        const gpusim::KernelStats st = q.submit(uspec, unpack, "halo-unpack");
        unpack_us[static_cast<std::size_t>(sh.rank)] +=
            st.duration_us + q.launch_overhead_us();
      });
      if (rec != nullptr) {
        const auto& wire = wires[static_cast<std::size_t>(sh.rank)][mi];
        rec->annotate(sh.rank, unpack_site(msg.peer, sh.rank),
                      {dsan::span_of(wire.data(), wire.size())},
                      {dsan::span_of(f.src.data() + msg.ghost_base,
                                     static_cast<std::size_t>(msg.count()))},
                      tx_ids[msg_seq]);
      }
      ++msg_seq;
    }
  }

  std::vector<double> boundary_us(static_cast<std::size_t>(ndev), 0.0);
  for (const Shard& sh : shards) {
    if (sh.n_boundary == 0) continue;
    ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    const DslashArgs<dcomplex> a = range_args(f, sh, sh.n_interior, sh.n_boundary);
    const int ls =
        pick_local_size(mreq.req.strategy, mreq.req.order, mreq.req.local_size, sh.n_boundary);
    boundary_us[static_cast<std::size_t>(sh.rank)] =
        submit_dslash(*queues[static_cast<std::size_t>(sh.rank)], a, sh.extended_sources(),
                      mreq.req, vi, ls, "dslash-boundary");
    if (rec != nullptr) {
      rec->annotate(
          sh.rank, "dslash-boundary r" + std::to_string(sh.rank),
          {dsan::span_of(f.src.data(), static_cast<std::size_t>(sh.extended_sources()))},
          {dsan::span_of(f.dst.data() + sh.n_interior,
                         static_cast<std::size_t>(sh.n_boundary))});
    }
  }

  // --- Gather output and assemble the overlap timeline. -----------------
  for (const Shard& sh : shards) {
    const ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (std::int64_t t = 0; t < sh.targets(); ++t) {
      problem.c()[sh.target_eo[static_cast<std::size_t>(t)]] =
          f.dst[static_cast<std::size_t>(t)];
    }
  }

  double comm_window = 0.0;
  double hidden = 0.0;
  double comm_frac_sum = 0.0;
  std::int64_t boundary_total = 0;
  for (int d = 0; d < ndev; ++d) {
    const auto di = static_cast<std::size_t>(d);
    const Shard& sh = shards[di];
    DeviceTimeline& t = res.per_device[di];
    t.interior_sites = sh.n_interior;
    t.boundary_sites = sh.n_boundary;
    t.halo_bytes_in = sh.halo_wire_bytes(sw);
    t.pack_us = pack_us[di];
    t.interior_us = interior_us[di];
    t.arrival_us = arrival_us[di];
    t.unpack_us = unpack_us[di];
    t.boundary_us = boundary_us[di];
    t.exposed_us = std::max(0.0, t.arrival_us - (t.pack_us + t.interior_us));
    t.iter_us = std::max(t.pack_us + t.interior_us, t.arrival_us) + t.unpack_us + t.boundary_us;
    res.per_iter_us = std::max(res.per_iter_us, t.iter_us);
    comm_window += std::max(0.0, t.arrival_us - t.pack_us);
    hidden += std::max(0.0, t.arrival_us - t.pack_us) - t.exposed_us;
    res.halo_bytes += t.halo_bytes_in;
    boundary_total += sh.n_boundary;
  }
  for (int d = 0; d < ndev; ++d) {
    const DeviceTimeline& t = res.per_device[static_cast<std::size_t>(d)];
    comm_frac_sum += (t.pack_us + t.unpack_us + t.exposed_us) / res.per_iter_us;
  }
  res.overlap_efficiency = comm_window > 0.0 ? hidden / comm_window : 1.0;
  res.comm_fraction = comm_frac_sum / ndev;
  res.surface_fraction =
      static_cast<double>(boundary_total) / static_cast<double>(problem.sites());
  res.gflops = problem.flops() / (res.per_iter_us * 1e-6) / 1e9;
  res.final_grid = mreq.grid;
  res.wire = mreq.wire;
  if (!multi_node) res.intra_node_bytes = res.halo_bytes;
  return res;
}

std::int64_t shard_slab_bytes(const Partitioner& part, int rank) {
  return shard_slab_bytes(part, rank, WireFormat{});
}

std::int64_t shard_slab_bytes(const Partitioner& part, int rank, const WireFormat& wire) {
  const Shard& sh = part.shard(rank);
  // Gauge links ride the wire in the recon frame (docs/WIRE.md §3); spinors
  // in the spinor wire format.  k18 + fp64 reproduces the historical
  // 144 B/link + 48 B/site numbers bit-for-bit.
  const std::int64_t gauge =
      sh.targets() * kNlinks * kNdim * gauge_link_bytes(wire.gauge);
  const std::int64_t spinor = sh.extended_sources() * spinor_site_bytes(wire.spinor);
  return gauge + spinor;
}

namespace {

/// One grid abandoned by a shrink failover, kept so a later heal of the
/// stickily-lost resource can rejoin it (newest on top of the stack).
struct RejoinTarget {
  PartitionGrid grid{};
  std::string what;  ///< heal-site grammar: "device r<k>" | "node n<j>"
};

/// Priced, checksummed, retransmitting wire transfer of one shard's slabs
/// onto a spare or rejoining device.  Mirrors the hardened halo path: one
/// injector consult per round, dsan send/recv/checksum per transmission,
/// exponential backoff between rounds, every microsecond charged to the
/// elastic accounting on `res`.  Returns the dsan uid of the verified
/// delivery (0 without a recorder), or nothing when the round budget is
/// spent — the caller then falls back to shrinking the grid.
std::optional<std::uint64_t> transfer_slab(faultsim::Injector* inj,
                                           const gpusim::NodeTopology& topo, int src, int dst,
                                           const std::string& site, std::int64_t bytes,
                                           const ExchangeConfig& xc, MultiDevResult& res) {
  dsan::Recorder* rec = dsan::Recorder::current();
  const bool cross = topo.multi_node() && !topo.same_node(src, dst);
  double spent = 0.0;
  std::optional<std::uint64_t> verified;
  for (int round = 1; round <= xc.max_rounds; ++round) {
    const faultsim::LinkVerdict v =
        inj->on_message(site, static_cast<std::uint64_t>(bytes));
    double wire = cross ? gpusim::fabric_wire_time_us(topo.fabric, bytes)
                        : gpusim::wire_time_us(topo.intra, src % topo.devices_per_node,
                                               dst % topo.devices_per_node, bytes);
    if (v.delayed) wire = wire * v.bw_factor + v.extra_latency_us;
    spent += wire;
    res.rereplicated_bytes += bytes;
    std::uint64_t uid = 0;
    if (rec != nullptr) {
      uid = rec->send(src, dst, site, round,
                      dsan::MemSpan{0, static_cast<std::uint64_t>(bytes)}, v.dropped, cross,
                      topo.multi_node() ? topo.node_of(src) : 0,
                      topo.multi_node() ? topo.node_of(dst) : 0);
      if (!v.dropped) {
        rec->recv(uid, /*delivered=*/!v.corrupted);
        rec->checksum(uid, !v.corrupted);
      }
    }
    if (!v.dropped && !v.corrupted) {
      verified = uid;
      break;
    }
    spent += xc.backoff_base_us * std::pow(xc.backoff_factor, round - 1);
  }
  res.rereplication_us += spent;
  res.recovery_us += spent;
  return verified;
}

}  // namespace

MultiDevResult MultiDeviceRunner::run_hardened(DslashProblem& problem,
                                               const MultiDevRequest& mreq) const {
  faultsim::Injector* inj = faultsim::Injector::current();
  const std::size_t log_mark = inj->log().size();

  MultiDevResult res;
  PartitionGrid grid = mreq.grid;
  // Hot-spare pool (elastic recovery): device spares per node group of the
  // *requested* topology, plus whole standby nodes behind the fabric.
  int device_spares = mreq.topo.spares.devices_per_node * std::max(1, mreq.topo.nodes);
  int node_spares = mreq.topo.spares.nodes;
  // Grids abandoned by shrink failovers, newest last; a heal of the lost
  // resource pops one and rejoins.  Seeded from the request when a previous
  // run (e.g. an earlier CG apply) already shrank.
  std::vector<RejoinTarget> rejoinable;
  if (mreq.rejoin_grid.total() > grid.total() && !mreq.rejoin_what.empty()) {
    rejoinable.push_back(RejoinTarget{mreq.rejoin_grid, mreq.rejoin_what});
  }
  for (int attempt = 0;; ++attempt) {
    const int ndev = grid.total();
    const gpusim::NodeTopology topo = effective_topology(mreq.topo, ndev);

    // Live rejoin: when capacity was shrunk away, ask the heal stream
    // whether the stickily-lost resource returned to service; if so,
    // re-replicate shard state onto the re-admitted ranks (priced over the
    // wire, checksummed) and continue on the larger grid.  The rejoined
    // ranks compute nothing before their resync — the RejoinBeforeResync
    // protocol check enforces exactly that window.
    if (!rejoinable.empty() &&
        inj->on_heal_check("heal/" + rejoinable.back().what + " @ " + grid.label())) {
      const RejoinTarget tgt = rejoinable.back();
      const gpusim::NodeTopology big_topo = effective_topology(mreq.topo, tgt.grid.total());
      const Partitioner part(problem.geom(), tgt.grid, problem.target_parity());
      dsan::Recorder* rec = dsan::Recorder::current();
      bool resynced = true;
      for (int r = ndev; r < tgt.grid.total(); ++r) {
        const int src = r % ndev;  // a survivor re-sends the slabs it holds
        const std::string site =
            "rereplicate r" + std::to_string(r) + " @ " + tgt.grid.label();
        const std::optional<std::uint64_t> msg =
            transfer_slab(inj, big_topo, src, r, site,
                          shard_slab_bytes(part, r, mreq.wire), mreq.xcfg, res);
        if (!msg.has_value()) {
          resynced = false;  // transfer budget spent: stay on the small grid
          break;
        }
        if (rec != nullptr) {
          rec->rejoin(r, tgt.what + " healed; rank r" + std::to_string(r) + " re-admitted");
          rec->resync(r, *msg, "replica verified on " + tgt.grid.label());
        }
      }
      if (resynced) {
        ++res.rejoins;
        res.capacity_restored += tgt.grid.total() - ndev;
        res.failovers.push_back(FailoverEvent{
            grid, tgt.grid, tgt.what + " healed; rejoined " + tgt.grid.label(), attempt});
        rejoinable.pop_back();
        grid = tgt.grid;
        continue;
      }
    }

    // Node health: one consult per node group per attempt, before the
    // per-device checks — losing a node loses all its devices at once, so
    // the grid must shrink below the survivor count in one failover.
    int lost_node = -1;
    if (topo.multi_node()) {
      for (int n = 0; n < topo.nodes; ++n) {
        if (inj->on_node_check("node n" + std::to_string(n) + " @ " + grid.label())) {
          lost_node = n;
          break;
        }
      }
    }
    if (lost_node >= 0) {
      // A standby node adopts every lost shard over the fabric instead of
      // shrinking below the survivor count.
      if (node_spares > 0) {
        const Partitioner part(problem.geom(), grid, problem.target_parity());
        dsan::Recorder* rec = dsan::Recorder::current();
        bool adopted = true;
        for (int d = 0; d < topo.devices_per_node; ++d) {
          const int r = lost_node * topo.devices_per_node + d;
          const int src = (r + topo.devices_per_node) % ndev;  // surviving node peer
          const std::string site =
              "rereplicate r" + std::to_string(r) + " @ " + grid.label();
          const std::optional<std::uint64_t> msg =
              transfer_slab(inj, topo, src, r, site,
                            shard_slab_bytes(part, r, mreq.wire), mreq.xcfg, res);
          if (!msg.has_value()) {
            adopted = false;
            break;
          }
          if (rec != nullptr) {
            rec->rejoin(r, "standby node adopts rank r" + std::to_string(r));
            rec->resync(r, *msg, "replica verified on standby node");
          }
        }
        if (adopted) {
          --node_spares;
          ++res.spares_consumed;
          res.failovers.push_back(FailoverEvent{
              grid, grid,
              "node n" + std::to_string(lost_node) +
                  " lost; re-replicated onto standby node",
              attempt});
          continue;
        }
      }
      const int survivors = ndev - topo.devices_per_node;
      PartitionGrid next = grid;
      while (next.total() > survivors && next.total() > 1) next = fallback_grid(next);
      res.failovers.push_back(FailoverEvent{
          grid, next,
          "node n" + std::to_string(lost_node) + " lost (" +
              std::to_string(topo.devices_per_node) + " devices)",
          attempt});
      if (dsan::Recorder* rec = dsan::Recorder::current()) {
        rec->failover(res.failovers.back().reason);
      }
      rejoinable.push_back(RejoinTarget{grid, "node n" + std::to_string(lost_node)});
      grid = next;
      continue;
    }

    // Device health: one consult per device per attempt.  A lost device has
    // no spare on a 1x1x1x1 grid, so single-device runs skip the consult
    // (ResilientRunner is the single-device recovery story).
    int lost = -1;
    if (ndev > 1) {
      for (int d = 0; d < ndev; ++d) {
        if (inj->on_device_check("device r" + std::to_string(d) + " @ " + grid.label())) {
          lost = d;
          break;
        }
      }
    }
    if (lost >= 0) {
      // A hot spare on the island adopts the lost shard and the grid keeps
      // its full width; only when no spare (or no transfer budget) is left
      // does the shrink failover below run.
      if (device_spares > 0) {
        const Partitioner part(problem.geom(), grid, problem.target_parity());
        const int src = (lost + 1) % ndev;
        const std::string site =
            "rereplicate r" + std::to_string(lost) + " @ " + grid.label();
        const std::optional<std::uint64_t> msg =
            transfer_slab(inj, topo, src, lost, site,
                          shard_slab_bytes(part, lost, mreq.wire), mreq.xcfg, res);
        if (msg.has_value()) {
          --device_spares;
          ++res.spares_consumed;
          res.failovers.push_back(FailoverEvent{
              grid, grid,
              "device r" + std::to_string(lost) + " lost; shard re-replicated onto hot spare",
              attempt});
          if (dsan::Recorder* rec = dsan::Recorder::current()) {
            rec->rejoin(lost, "hot spare adopts rank r" + std::to_string(lost));
            rec->resync(lost, *msg, "replica verified on spare");
          }
          continue;
        }
      }
      const PartitionGrid next = fallback_grid(grid);
      res.failovers.push_back(FailoverEvent{
          grid, next, "device r" + std::to_string(lost) + " lost", attempt});
      if (dsan::Recorder* rec = dsan::Recorder::current()) {
        rec->failover(res.failovers.back().reason);
      }
      rejoinable.push_back(RejoinTarget{grid, "device r" + std::to_string(lost)});
      grid = next;
      continue;
    }

    // One Dslash application is stateless (inputs b/cfg are never mutated),
    // so "replay from the last consistent state" is a rerun from the inputs
    // on the surviving grid; the sharded CG solver layers checkpointed
    // *solver* state on top of this.
    std::string reason;
    if (run_attempt(problem, mreq, grid, res, reason)) break;
    if (grid.total() == 1) {
      // Nothing left to shrink to: recovery exhausted.
      res.recovered = false;
      res.failovers.push_back(FailoverEvent{grid, grid, reason + " (no surviving grid)",
                                            attempt});
      break;
    }
    const PartitionGrid next = fallback_grid(grid);
    res.failovers.push_back(FailoverEvent{grid, next, reason, attempt});
    if (dsan::Recorder* rec = dsan::Recorder::current()) {
      rec->failover(res.failovers.back().reason);
    }
    grid = next;
  }

  res.final_grid = grid;
  res.wire = mreq.wire;
  res.devices = grid.total();
  res.nodes = effective_topology(mreq.topo, grid.total()).nodes;
  res.faults = inj->log_since(log_mark);
  return res;
}

bool MultiDeviceRunner::run_attempt(DslashProblem& problem, const MultiDevRequest& mreq,
                                    const PartitionGrid& grid, MultiDevResult& res,
                                    std::string& fail_reason) const {
  const int ndev = grid.total();
  const gpusim::NodeTopology topo = effective_topology(mreq.topo, ndev);
  const VariantInfo& vi = variant_info(mreq.req.variant);
  const ExchangeConfig& xc = mreq.xcfg;
  const Partitioner part(problem.geom(), grid, problem.target_parity());
  const std::vector<Shard>& shards = part.shards();

  std::vector<ShardFields> fields;
  fields.reserve(shards.size());
  for (const Shard& sh : shards) fields.push_back(build_fields(problem, sh));

  std::vector<std::unique_ptr<minisycl::queue>> queues;
  for (int d = 0; d < ndev; ++d) {
    queues.push_back(
        std::make_unique<minisycl::queue>(mreq.mode, vi.queue_order, machine_, cal_));
  }

  dsan::Recorder* rec = dsan::Recorder::current();
  if (rec != nullptr) {
    rec->barrier("attempt @ " + grid.label());
    hook_queues_for_dsan(rec, queues);
  }

  res.label = config_label(mreq.req.strategy, mreq.req.order, mreq.req.local_size) + " @ " +
              grid.label();
  res.devices = ndev;
  res.per_device.assign(static_cast<std::size_t>(ndev), DeviceTimeline{});
  for (int d = 0; d < ndev; ++d) res.per_device[static_cast<std::size_t>(d)].rank = d;
  res.per_iter_us = 0.0;
  res.halo_bytes = 0;

  // Bounded-retry submission of one halo (pack/unpack) kernel.
  auto submit_halo_resilient = [&](minisycl::queue& q, const minisycl::LaunchSpec& spec,
                                   const auto& kernel, const std::string& name, int rank,
                                   double& us_acc) -> bool {
    for (int a = 0; a < xc.max_kernel_attempts; ++a) {
      const gpusim::KernelStats st = q.submit(spec, kernel, name);
      if (st.fault.empty()) {
        us_acc += st.duration_us + q.launch_overhead_us();
        return true;
      }
      drain_errors(q);
      const double backoff = xc.backoff_base_us * std::pow(xc.backoff_factor, a);
      res.recovery_us += backoff;
      us_acc += backoff;
      res.shard_recoveries.push_back(
          ShardRecovery{rank, name, mreq.req.strategy, a, "retry", backoff});
    }
    return false;
  };

  // Bounded retry + strategy-fallback ladder for one Dslash range (the
  // per-shard analogue of ResilientRunner's rung loop).
  auto submit_dslash_resilient = [&](minisycl::queue& q, ShardFields& f, const Shard& sh,
                                     std::int64_t first, std::int64_t count,
                                     const std::string& name, double& us_acc) -> bool {
    std::vector<Strategy> rungs{mreq.req.strategy};
    for (Strategy s : xc.ladder) {
      if (std::find(rungs.begin(), rungs.end(), s) == rungs.end()) rungs.push_back(s);
    }
    const DslashArgs<dcomplex> args = range_args(f, sh, first, count);
    for (std::size_t rung = 0; rung < rungs.size(); ++rung) {
      const RunRequest r = adapt_request(mreq.req, rungs[rung], count);
      const VariantInfo& rvi = variant_info(r.variant);
      const int ls = pick_local_size(r.strategy, r.order, r.local_size, count);
      for (int a = 0; a < xc.max_kernel_attempts; ++a) {
        const gpusim::KernelStats st =
            submit_dslash_raw(q, args, sh.extended_sources(), r, rvi, ls, name);
        if (st.fault.empty()) {
          us_acc += st.duration_us + q.launch_overhead_us();
          return true;
        }
        drain_errors(q);
        const bool last_attempt = a + 1 == xc.max_kernel_attempts;
        const bool last_rung = rung + 1 == rungs.size();
        const double backoff =
            last_attempt ? 0.0 : xc.backoff_base_us * std::pow(xc.backoff_factor, a);
        res.recovery_us += backoff;
        us_acc += backoff;
        res.shard_recoveries.push_back(ShardRecovery{
            sh.rank, name, r.strategy, a,
            last_attempt ? (last_rung ? "abort" : "fallback") : "retry", backoff});
      }
    }
    return false;
  };

  // --- Phase 1: packs (bounded retry) + payload checksums. ----------------
  struct MsgRef {
    int dst = 0;
    std::size_t mi = 0;
  };
  // Wire buffers hold *encoded* payload bytes in the request's wire format.
  // Checksums, corruption, retransmission and pricing below all operate on
  // these encoded bytes — never on a decoded staging copy.
  const SpinorWire sw = mreq.wire.spinor;
  std::vector<std::vector<std::vector<std::byte>>> wires(static_cast<std::size_t>(ndev));
  std::vector<double> pack_us(static_cast<std::size_t>(ndev), 0.0);
  std::vector<MsgRef> order;
  std::vector<std::uint64_t> checksums;
  std::vector<double> msg_scales;
  for (const Shard& sh : shards) {
    auto& shard_wires = wires[static_cast<std::size_t>(sh.rank)];
    for (std::size_t mi = 0; mi < sh.halo.size(); ++mi) {
      const HaloMsg& msg = sh.halo[mi];
      shard_wires.emplace_back(static_cast<std::size_t>(msg.wire_bytes(sw)));
      const double scale =
          message_scale(sw, fields[static_cast<std::size_t>(msg.peer)].src.data(), msg);
      const std::string name = "halo-pack r" + std::to_string(msg.peer) + "->r" +
                               std::to_string(sh.rank);
      bool ok = true;
      with_wire_element(sw, [&](auto tag) {
        using W = decltype(tag);
        HaloPackKernelT<W> pack{.src = fields[static_cast<std::size_t>(msg.peer)].src.data(),
                                .slots = msg.send_slots.data(),
                                .wire = reinterpret_cast<W*>(shard_wires.back().data()),
                                .count = msg.count(),
                                .scale = scale};
        minisycl::LaunchSpec pspec =
            halo_spec(msg.count(), mreq.pack_local_size, HaloPackKernelT<W>::traits());
        pspec.regions = pack_regions(
            pack, shards[static_cast<std::size_t>(msg.peer)].extended_sources());
        ok = submit_halo_resilient(*queues[static_cast<std::size_t>(msg.peer)], pspec, pack,
                                   name, msg.peer,
                                   pack_us[static_cast<std::size_t>(msg.peer)]);
      });
      if (!ok) {
        fail_reason = "pack kernel '" + name + "' exhausted its retries";
        return false;
      }
      if (rec != nullptr) {
        rec->annotate(
            msg.peer, name,
            {dsan::span_of(fields[static_cast<std::size_t>(msg.peer)].src.data(),
                           static_cast<std::size_t>(
                               shards[static_cast<std::size_t>(msg.peer)].sources())),
             dsan::span_of(msg.send_slots.data(), msg.send_slots.size())},
            {dsan::span_of(shard_wires.back().data(), shard_wires.back().size())});
      }
      order.push_back(MsgRef{sh.rank, mi});
      msg_scales.push_back(scale);
      checksums.push_back(fnv1a(shard_wires.back().data(), shard_wires.back().size()));
    }
  }

  // --- Phase 2: interior compute (retry + ladder), overlapped. ------------
  std::vector<double> interior_us(static_cast<std::size_t>(ndev), 0.0);
  for (const Shard& sh : shards) {
    if (sh.n_interior == 0) continue;
    const std::string name = "dslash-interior r" + std::to_string(sh.rank);
    if (!submit_dslash_resilient(*queues[static_cast<std::size_t>(sh.rank)],
                                 fields[static_cast<std::size_t>(sh.rank)], sh, 0,
                                 sh.n_interior, name,
                                 interior_us[static_cast<std::size_t>(sh.rank)])) {
      fail_reason = "interior kernel '" + name + "' exhausted the strategy ladder";
      return false;
    }
    if (rec != nullptr) {
      ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
      rec->annotate(sh.rank, name,
                    {dsan::span_of(f.src.data(), static_cast<std::size_t>(sh.sources()))},
                    {dsan::span_of(f.dst.data(), static_cast<std::size_t>(sh.n_interior))});
    }
  }

  // --- Exchange rounds: deliver -> verify checksum -> retransmit. ---------
  // The sender's pack buffer stays pristine; every delivery lands on a
  // receiver-side copy, so corruption never destroys the retransmission
  // source and a verified payload is unpacked exactly once.
  ExchangeReport& xr = res.exchange;
  xr.messages += static_cast<int>(order.size());
  std::vector<std::vector<std::byte>> rx(order.size());
  std::vector<char> delivered(order.size(), 0);
  std::vector<std::uint64_t> last_tx(order.size(), 0);
  std::vector<double> arrival(static_cast<std::size_t>(ndev), 0.0);
  double wire_clock = 0.0;
  std::size_t remaining = order.size();
  for (int round = 1; remaining > 0; ++round) {
    if (round > xc.max_rounds) {
      xr.succeeded = false;
      fail_reason = "exchange exhausted " + std::to_string(xc.max_rounds) +
                    " delivery rounds (" + std::to_string(remaining) + " undelivered)";
      return false;
    }
    ++xr.rounds;
    std::vector<std::size_t> pend;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (delivered[i] == 0) pend.push_back(i);
    }
    if (round > 1) xr.retransmissions += static_cast<int>(pend.size());

    std::vector<gpusim::LinkMessage> msgs;
    msgs.reserve(pend.size());
    for (const std::size_t i : pend) {
      const HaloMsg& hm = shards[static_cast<std::size_t>(order[i].dst)].halo[order[i].mi];
      msgs.push_back({.src = hm.peer,
                      .dst = order[i].dst,
                      .bytes = hm.wire_bytes(sw),
                      .depart_us =
                          std::max(pack_us[static_cast<std::size_t>(hm.peer)], wire_clock),
                      .site = exchange_site(hm.peer, order[i].dst)});
    }
    // Over a multi-node topology the round's messages ride the two-level
    // exchange: intra-node ones keep their per-message fault sites, inter-
    // node ones are aggregated per neighbour and consulted per aggregate.
    // Retransmissions re-enter here round after round, so a pending frame
    // joins the next round's (smaller) aggregate — retransmit-over-fabric.
    if (topo.multi_node()) {
      const gpusim::FabricExchangeReport frep =
          gpusim::simulate_topology_exchange(topo, msgs);
      res.intra_node_bytes += frep.intra_bytes;
      res.inter_node_bytes += frep.inter_bytes;
      res.fabric_messages += frep.inter_messages;
      res.intra_wire_us += frep.intra_wire_us;
      res.inter_wire_us += frep.inter_wire_us;
    } else {
      simulate_exchange(mreq.link, msgs, ndev);
    }

    // Transmissions enter the trace after the wire simulation so the drop
    // verdict rides the Send event (a retransmit round records fresh uids).
    std::vector<std::uint64_t> round_tx(msgs.size(), 0);
    if (rec != nullptr) {
      for (std::size_t j = 0; j < msgs.size(); ++j) {
        const gpusim::LinkMessage& lm = msgs[j];
        const auto& wire =
            wires[static_cast<std::size_t>(lm.dst)][order[pend[j]].mi];
        round_tx[j] = rec->send(
            lm.src, lm.dst, lm.site, round, dsan::span_of(wire.data(), wire.size()),
            lm.dropped, topo.multi_node() && !topo.same_node(lm.src, lm.dst),
            topo.multi_node() ? topo.node_of(lm.src) : 0,
            topo.multi_node() ? topo.node_of(lm.dst) : 0);
      }
    }

    double round_end = wire_clock;
    for (std::size_t j = 0; j < msgs.size(); ++j) {
      const std::size_t i = pend[j];
      const gpusim::LinkMessage& lm = msgs[j];
      const HaloMsg& hm = shards[static_cast<std::size_t>(lm.dst)].halo[order[i].mi];
      round_end = std::max(round_end, lm.done_us);
      ExchangeEvent ev;
      ev.round = round;
      ev.src = lm.src;
      ev.dst = lm.dst;
      ev.site = lm.site;
      ev.dropped = lm.dropped;
      ev.corrupted = lm.corrupted;
      ev.delayed = lm.delayed;
      xr.drops += lm.dropped ? 1 : 0;
      xr.corruptions += lm.corrupted ? 1 : 0;
      xr.delays += lm.delayed ? 1 : 0;
      if (!lm.dropped) {
        rx[i] = wires[static_cast<std::size_t>(lm.dst)][order[i].mi];
        if (lm.corrupted) {
          // The bit flip lands in the *encoded* wire bytes — on a reduced
          // format that is the compressed payload, so the checksum below
          // (also over encoded bytes) catches it before any decode runs.
          faultsim::flip_bit(rx[i].data(),
                             static_cast<std::size_t>(hm.wire_bytes(sw)),
                             lm.corrupt_key);
        }
        ev.checksum_ok = fnv1a(rx[i].data(), rx[i].size()) == checksums[i];
        if (rec != nullptr) {
          const auto& wire = wires[static_cast<std::size_t>(lm.dst)][order[i].mi];
          rec->recv(round_tx[j], ev.checksum_ok,
                    {dsan::span_of(wire.data(), wire.size())},
                    {dsan::span_of(rx[i].data(), rx[i].size())});
          rec->checksum(round_tx[j], ev.checksum_ok);
          if (ev.checksum_ok) last_tx[i] = round_tx[j];
        }
        if (ev.checksum_ok) {
          delivered[i] = 1;
          --remaining;
          ev.delivered = true;
          arrival[static_cast<std::size_t>(lm.dst)] =
              std::max(arrival[static_cast<std::size_t>(lm.dst)], lm.done_us);
        } else {
          ++xr.checksum_failures;
        }
      }
      xr.events.push_back(std::move(ev));
    }

    if (remaining > 0) {
      const double backoff = xc.backoff_base_us * std::pow(xc.backoff_factor, round - 1);
      xr.backoff_us += backoff;
      res.recovery_us += backoff;
      wire_clock = round_end + backoff;
      if (wire_clock > xc.watchdog_us) {
        xr.watchdog_fired = true;
        fail_reason =
            "exchange watchdog expired after round " + std::to_string(round) + " (" +
            std::to_string(remaining) + " undelivered)";
        return false;
      }
    }
  }
  xr.succeeded = true;

  // --- Phase 3: unpack from the verified receiver copies, then boundary. --
  std::vector<double> unpack_us(static_cast<std::size_t>(ndev), 0.0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int rank = order[i].dst;
    const Shard& sh = shards[static_cast<std::size_t>(rank)];
    const HaloMsg& msg = sh.halo[order[i].mi];
    const std::string name = "halo-unpack r" + std::to_string(msg.peer) + "->r" +
                             std::to_string(rank);
    bool ok = true;
    with_wire_element(sw, [&](auto tag) {
      using W = decltype(tag);
      HaloUnpackKernelT<W> unpack{
          .wire = reinterpret_cast<const W*>(rx[i].data()),
          .field = fields[static_cast<std::size_t>(rank)].src.data(),
          .ghost_base = msg.ghost_base,
          .count = msg.count(),
          .inv_scale = 1.0 / msg_scales[i]};
      minisycl::LaunchSpec uspec =
          halo_spec(msg.count(), mreq.pack_local_size, HaloUnpackKernelT<W>::traits());
      uspec.regions = unpack_regions(unpack, sh.extended_sources());
      ok = submit_halo_resilient(*queues[static_cast<std::size_t>(rank)], uspec, unpack,
                                 name, rank, unpack_us[static_cast<std::size_t>(rank)]);
    });
    if (!ok) {
      fail_reason = "unpack kernel '" + name + "' exhausted its retries";
      return false;
    }
    if (rec != nullptr) {
      rec->annotate(rank, name, {dsan::span_of(rx[i].data(), rx[i].size())},
                    {dsan::span_of(fields[static_cast<std::size_t>(rank)].src.data() +
                                       msg.ghost_base,
                                   static_cast<std::size_t>(msg.count()))},
                    last_tx[i]);
    }
  }

  std::vector<double> boundary_us(static_cast<std::size_t>(ndev), 0.0);
  for (const Shard& sh : shards) {
    if (sh.n_boundary == 0) continue;
    const std::string name = "dslash-boundary r" + std::to_string(sh.rank);
    if (!submit_dslash_resilient(*queues[static_cast<std::size_t>(sh.rank)],
                                 fields[static_cast<std::size_t>(sh.rank)], sh, sh.n_interior,
                                 sh.n_boundary, name,
                                 boundary_us[static_cast<std::size_t>(sh.rank)])) {
      fail_reason = "boundary kernel '" + name + "' exhausted the strategy ladder";
      return false;
    }
    if (rec != nullptr) {
      ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
      rec->annotate(
          sh.rank, name,
          {dsan::span_of(f.src.data(), static_cast<std::size_t>(sh.extended_sources()))},
          {dsan::span_of(f.dst.data() + sh.n_interior,
                         static_cast<std::size_t>(sh.n_boundary))});
    }
  }

  // --- Gather output and assemble the overlap timeline. -------------------
  for (const Shard& sh : shards) {
    const ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (std::int64_t t = 0; t < sh.targets(); ++t) {
      problem.c()[sh.target_eo[static_cast<std::size_t>(t)]] =
          f.dst[static_cast<std::size_t>(t)];
    }
  }

  double comm_window = 0.0;
  double hidden = 0.0;
  std::int64_t boundary_total = 0;
  for (int d = 0; d < ndev; ++d) {
    const auto di = static_cast<std::size_t>(d);
    const Shard& sh = shards[di];
    DeviceTimeline& t = res.per_device[di];
    t.interior_sites = sh.n_interior;
    t.boundary_sites = sh.n_boundary;
    t.halo_bytes_in = sh.halo_wire_bytes(sw);
    t.pack_us = pack_us[di];
    t.interior_us = interior_us[di];
    t.arrival_us = arrival[di];
    t.unpack_us = unpack_us[di];
    t.boundary_us = boundary_us[di];
    t.exposed_us = std::max(0.0, t.arrival_us - (t.pack_us + t.interior_us));
    t.iter_us = std::max(t.pack_us + t.interior_us, t.arrival_us) + t.unpack_us + t.boundary_us;
    res.per_iter_us = std::max(res.per_iter_us, t.iter_us);
    comm_window += std::max(0.0, t.arrival_us - t.pack_us);
    hidden += std::max(0.0, t.arrival_us - t.pack_us) - t.exposed_us;
    res.halo_bytes += t.halo_bytes_in;
    boundary_total += sh.n_boundary;
  }
  res.overlap_efficiency = comm_window > 0.0 ? hidden / comm_window : 1.0;
  res.comm_fraction = 0.0;
  if (res.per_iter_us > 0.0) {
    double comm_frac_sum = 0.0;
    for (int d = 0; d < ndev; ++d) {
      const DeviceTimeline& t = res.per_device[static_cast<std::size_t>(d)];
      comm_frac_sum += (t.pack_us + t.unpack_us + t.exposed_us) / res.per_iter_us;
    }
    res.comm_fraction = comm_frac_sum / ndev;
  }
  res.surface_fraction =
      static_cast<double>(boundary_total) / static_cast<double>(problem.sites());
  res.gflops =
      res.per_iter_us > 0.0 ? problem.flops() / (res.per_iter_us * 1e-6) / 1e9 : 0.0;
  return true;
}

void MultiDeviceRunner::run_functional(DslashProblem& problem, const PartitionGrid& grid,
                                       Strategy s, IndexOrder o, int preferred_local_size,
                                       const WireFormat& wire_fmt) const {
  const Partitioner part(problem.geom(), grid, problem.target_parity());
  minisycl::queue q(minisycl::ExecMode::functional, minisycl::QueueOrder::in_order, machine_,
                    cal_);
  constexpr int kPackLocal = 96;

  dsan::Recorder* rec = dsan::Recorder::current();
  if (rec != nullptr) {
    rec->barrier("apply @ " + grid.label());
    // One functional queue serves every logical shard; annotate() re-assigns
    // each launch to its acting rank right after submission.
    q.set_kernel_hook([rec](const std::string& name, const gpusim::KernelStats&) {
      rec->kernel(dsan::kHostActor, name);
    });
  }

  std::vector<ShardFields> fields;
  fields.reserve(part.shards().size());
  for (const Shard& sh : part.shards()) fields.push_back(build_fields(problem, sh));

  // pack -> (wire) -> interior (ghosts still poisoned) -> unpack -> boundary
  const SpinorWire sw = wire_fmt.spinor;
  std::vector<std::vector<std::vector<std::byte>>> wires(part.shards().size());
  std::vector<std::vector<double>> scales(part.shards().size());
  std::vector<std::vector<std::uint64_t>> tx(part.shards().size());
  for (const Shard& sh : part.shards()) {
    auto& shard_wires = wires[static_cast<std::size_t>(sh.rank)];
    auto& shard_scales = scales[static_cast<std::size_t>(sh.rank)];
    for (const HaloMsg& msg : sh.halo) {
      shard_wires.emplace_back(static_cast<std::size_t>(msg.wire_bytes(sw)));
      const double scale =
          message_scale(sw, fields[static_cast<std::size_t>(msg.peer)].src.data(), msg);
      shard_scales.push_back(scale);
      with_wire_element(sw, [&](auto tag) {
        using W = decltype(tag);
        HaloPackKernelT<W> pack{.src = fields[static_cast<std::size_t>(msg.peer)].src.data(),
                                .slots = msg.send_slots.data(),
                                .wire = reinterpret_cast<W*>(shard_wires.back().data()),
                                .count = msg.count(),
                                .scale = scale};
        q.submit(halo_spec(msg.count(), kPackLocal, HaloPackKernelT<W>::traits()), pack);
      });
      if (rec != nullptr) {
        rec->annotate(
            msg.peer, pack_site(msg.peer, sh.rank),
            {dsan::span_of(
                 fields[static_cast<std::size_t>(msg.peer)].src.data(),
                 static_cast<std::size_t>(
                     part.shards()[static_cast<std::size_t>(msg.peer)].sources())),
             dsan::span_of(msg.send_slots.data(), msg.send_slots.size())},
            {dsan::span_of(shard_wires.back().data(), shard_wires.back().size())});
        tx[static_cast<std::size_t>(sh.rank)].push_back(rec->send(
            msg.peer, sh.rank, exchange_site(msg.peer, sh.rank), /*round=*/1,
            dsan::span_of(shard_wires.back().data(), shard_wires.back().size()),
            /*dropped=*/false, /*aggregated=*/false));
      }
    }
  }

  const RunRequest req{.strategy = s, .order = o, .local_size = preferred_local_size};
  const VariantInfo& vi = variant_info(Variant::SYCL);
  for (const Shard& sh : part.shards()) {
    if (sh.n_interior == 0) continue;
    ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    const int ls = pick_local_size(s, o, preferred_local_size, sh.n_interior);
    submit_dslash(q, range_args(f, sh, 0, sh.n_interior), sh.extended_sources(), req, vi, ls,
                  "dslash-interior");
    if (rec != nullptr) {
      rec->annotate(sh.rank, "dslash-interior r" + std::to_string(sh.rank),
                    {dsan::span_of(f.src.data(), static_cast<std::size_t>(sh.sources()))},
                    {dsan::span_of(f.dst.data(), static_cast<std::size_t>(sh.n_interior))});
    }
  }

  for (const Shard& sh : part.shards()) {
    ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (std::size_t mi = 0; mi < sh.halo.size(); ++mi) {
      const HaloMsg& msg = sh.halo[mi];
      if (rec != nullptr) {
        const auto& wire = wires[static_cast<std::size_t>(sh.rank)][mi];
        rec->recv(tx[static_cast<std::size_t>(sh.rank)][mi], /*delivered=*/true,
                  {dsan::span_of(wire.data(), wire.size())});
      }
      with_wire_element(sw, [&](auto tag) {
        using W = decltype(tag);
        HaloUnpackKernelT<W> unpack{
            .wire = reinterpret_cast<const W*>(
                wires[static_cast<std::size_t>(sh.rank)][mi].data()),
            .field = f.src.data(),
            .ghost_base = msg.ghost_base,
            .count = msg.count(),
            .inv_scale = 1.0 / scales[static_cast<std::size_t>(sh.rank)][mi]};
        q.submit(halo_spec(msg.count(), kPackLocal, HaloUnpackKernelT<W>::traits()), unpack);
      });
      if (rec != nullptr) {
        const auto& wire = wires[static_cast<std::size_t>(sh.rank)][mi];
        rec->annotate(sh.rank, unpack_site(msg.peer, sh.rank),
                      {dsan::span_of(wire.data(), wire.size())},
                      {dsan::span_of(f.src.data() + msg.ghost_base,
                                     static_cast<std::size_t>(msg.count()))},
                      tx[static_cast<std::size_t>(sh.rank)][mi]);
      }
    }
    if (sh.n_boundary > 0) {
      const int ls = pick_local_size(s, o, preferred_local_size, sh.n_boundary);
      submit_dslash(q, range_args(f, sh, sh.n_interior, sh.n_boundary), sh.extended_sources(),
                    req, vi, ls, "dslash-boundary");
      if (rec != nullptr) {
        rec->annotate(
            sh.rank, "dslash-boundary r" + std::to_string(sh.rank),
            {dsan::span_of(f.src.data(), static_cast<std::size_t>(sh.extended_sources()))},
            {dsan::span_of(f.dst.data() + sh.n_interior,
                           static_cast<std::size_t>(sh.n_boundary))});
      }
    }
  }

  for (const Shard& sh : part.shards()) {
    const ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (std::int64_t t = 0; t < sh.targets(); ++t) {
      problem.c()[sh.target_eo[static_cast<std::size_t>(t)]] =
          f.dst[static_cast<std::size_t>(t)];
    }
  }
}

void MultiDeviceRunner::run_reference(DslashProblem& problem, const PartitionGrid& grid,
                                      ColorField& out) const {
  const Partitioner part(problem.geom(), grid, problem.target_parity());
  std::vector<ShardFields> fields;
  fields.reserve(part.shards().size());
  for (const Shard& sh : part.shards()) fields.push_back(build_fields(problem, sh));

  // Serial exchange: copy every wire site straight from owner to ghost slot.
  for (const Shard& sh : part.shards()) {
    ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (const HaloMsg& msg : sh.halo) {
      const ShardFields& peer = fields[static_cast<std::size_t>(msg.peer)];
      for (std::int64_t i = 0; i < msg.count(); ++i) {
        f.src[static_cast<std::size_t>(msg.ghost_base + i)] =
            peer.src[static_cast<std::size_t>(msg.send_slots[static_cast<std::size_t>(i)])];
      }
    }
  }

  // Per-shard evaluation in dslash_reference's exact loop order (k outer,
  // l inner, matvec + signed accumulate) over the gathered shard data —
  // the same values in the same operations, so bit-for-bit equal.
  for (const Shard& sh : part.shards()) {
    const ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (std::int64_t t = 0; t < sh.targets(); ++t) {
      SU3Vector<dcomplex> acc;
      for (int k = 0; k < kNdim; ++k) {
        for (int l = 0; l < kNlinks; ++l) {
          SU3Matrix<dcomplex> m;
          const auto& fam = f.links[static_cast<std::size_t>(l)];
          for (int j = 0; j < kColors; ++j) {
            for (int i = 0; i < kColors; ++i) {
              m.e[i][j] = fam[static_cast<std::size_t>(((t * kNdim + k) * kColors + j) *
                                                           kColors +
                                                       i)];
            }
          }
          const std::int32_t n =
              sh.neighbors[static_cast<std::size_t>(t * kNeighbors + k * kNlinks + l)];
          const SU3Vector<dcomplex> v = matvec(m, f.src[static_cast<std::size_t>(n)]);
          const double sign = kStencilSigns[static_cast<std::size_t>(l)];
          acc += sign * v;
        }
      }
      out[sh.target_eo[static_cast<std::size_t>(t)]] = acc;
    }
  }
}

std::vector<ksan::SanitizerReport> MultiDeviceRunner::sanitize_halo(
    DslashProblem& problem, const PartitionGrid& grid, int pack_local_size,
    const WireFormat& wire_fmt) const {
  const Partitioner part(problem.geom(), grid, problem.target_parity());
  std::vector<ShardFields> fields;
  fields.reserve(part.shards().size());
  for (const Shard& sh : part.shards()) fields.push_back(build_fields(problem, sh));

  const SpinorWire sw = wire_fmt.spinor;
  std::vector<ksan::SanitizerReport> reports;
  for (const Shard& sh : part.shards()) {
    ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (const HaloMsg& msg : sh.halo) {
      std::vector<std::byte> wire(static_cast<std::size_t>(msg.wire_bytes(sw)));
      const Shard& peer_sh = part.shard(msg.peer);
      ShardFields& peer = fields[static_cast<std::size_t>(msg.peer)];
      const std::string suffix = " r" + std::to_string(msg.peer) + "->r" +
                                 std::to_string(sh.rank) + " dim" + std::to_string(msg.dim) +
                                 (msg.side == 0 ? "-" : "+");
      const double scale = message_scale(sw, peer.src.data(), msg);

      with_wire_element(sw, [&](auto tag) {
        using W = decltype(tag);
        // Pack: reads must stay inside the sender's *owned* sources (reading
        // a ghost slot would be an ordering bug), writes inside the wire.
        // The fused convert-pack kernel is sanitized at the requested
        // format, so its accesses are checked against the *encoded* buffer.
        HaloPackKernelT<W> pack{.src = peer.src.data(),
                                .slots = msg.send_slots.data(),
                                .wire = reinterpret_cast<W*>(wire.data()),
                                .count = msg.count(),
                                .scale = scale};
        ksan::SanitizeConfig pack_cfg;
        pack_cfg.regions.push_back(
            ksan::region_of(peer.src.data(), static_cast<std::size_t>(peer_sh.sources())));
        pack_cfg.regions.push_back(
            ksan::region_of(msg.send_slots.data(), msg.send_slots.size()));
        pack_cfg.regions.push_back(ksan::region_of(wire.data(), wire.size()));
        reports.push_back(
            ksan::sanitize_launch(halo_spec(msg.count(), pack_local_size, pack.traits()),
                                  pack, std::move(pack_cfg), "halo-pack" + suffix));

        // Unpack: reads inside the wire, writes *only* into this message's
        // ghost span — declaring exactly that span turns any stray write
        // (owned sites, another message's ghosts) into a reported OOB.
        HaloUnpackKernelT<W> unpack{.wire = reinterpret_cast<const W*>(wire.data()),
                                    .field = f.src.data(),
                                    .ghost_base = msg.ghost_base,
                                    .count = msg.count(),
                                    .inv_scale = 1.0 / scale};
        ksan::SanitizeConfig unpack_cfg;
        unpack_cfg.regions.push_back(ksan::region_of(wire.data(), wire.size()));
        unpack_cfg.regions.push_back(ksan::region_of(f.src.data() + msg.ghost_base,
                                                     static_cast<std::size_t>(msg.count())));
        reports.push_back(
            ksan::sanitize_launch(halo_spec(msg.count(), pack_local_size, unpack.traits()),
                                  unpack, std::move(unpack_cfg), "halo-unpack" + suffix));
      });
    }
  }
  return reports;
}

std::vector<ksan::SanitizerReport> MultiDeviceRunner::sanitize_exchange(
    DslashProblem& problem, const PartitionGrid& grid, int pack_local_size,
    const WireFormat& wire_fmt) const {
  const Partitioner part(problem.geom(), grid, problem.target_parity());
  std::vector<ShardFields> fields;
  fields.reserve(part.shards().size());
  for (const Shard& sh : part.shards()) fields.push_back(build_fields(problem, sh));

  const SpinorWire sw = wire_fmt.spinor;
  std::vector<ksan::SanitizerReport> reports;
  for (const Shard& sh : part.shards()) {
    ShardFields& f = fields[static_cast<std::size_t>(sh.rank)];
    for (std::size_t mi = 0; mi < sh.halo.size(); ++mi) {
      const HaloMsg& msg = sh.halo[mi];
      const Shard& peer_sh = part.shard(msg.peer);
      ShardFields& peer = fields[static_cast<std::size_t>(msg.peer)];
      const std::string suffix = " r" + std::to_string(msg.peer) + "->r" +
                                 std::to_string(sh.rank) + " dim" + std::to_string(msg.dim) +
                                 (msg.side == 0 ? "-" : "+");
      const double scale = message_scale(sw, peer.src.data(), msg);

      with_wire_element(sw, [&](auto tag) {
        using W = decltype(tag);
        // Pack into the sender-side wire buffer (same contract as
        // sanitize_halo), in the requested wire format.
        std::vector<std::byte> wire(static_cast<std::size_t>(msg.wire_bytes(sw)));
        HaloPackKernelT<W> pack{.src = peer.src.data(),
                                .slots = msg.send_slots.data(),
                                .wire = reinterpret_cast<W*>(wire.data()),
                                .count = msg.count(),
                                .scale = scale};
        ksan::SanitizeConfig pack_cfg;
        pack_cfg.regions.push_back(
            ksan::region_of(peer.src.data(), static_cast<std::size_t>(peer_sh.sources())));
        pack_cfg.regions.push_back(
            ksan::region_of(msg.send_slots.data(), msg.send_slots.size()));
        pack_cfg.regions.push_back(ksan::region_of(wire.data(), wire.size()));
        reports.push_back(
            ksan::sanitize_launch(halo_spec(msg.count(), pack_local_size, pack.traits()),
                                  pack, std::move(pack_cfg), "halo-pack" + suffix));

        // Hardened data flow: the delivery lands on a receiver-side copy (the
        // sender buffer stays pristine for retransmission) and the unpack
        // reads the copy.  The first message of each shard is redelivered and
        // re-unpacked in a *separate* launch — a retransmission whose repeated
        // ghost writes are ordered by the launch boundary, hence clean.
        std::vector<std::byte> rx = wire;
        const int deliveries = (mi == 0) ? 2 : 1;
        for (int delivery = 0; delivery < deliveries; ++delivery) {
          rx.assign(wire.begin(), wire.end());
          HaloUnpackKernelT<W> unpack{.wire = reinterpret_cast<const W*>(rx.data()),
                                      .field = f.src.data(),
                                      .ghost_base = msg.ghost_base,
                                      .count = msg.count(),
                                      .inv_scale = 1.0 / scale};
          ksan::SanitizeConfig unpack_cfg;
          unpack_cfg.regions.push_back(ksan::region_of(rx.data(), rx.size()));
          unpack_cfg.regions.push_back(ksan::region_of(
              f.src.data() + msg.ghost_base, static_cast<std::size_t>(msg.count())));
          reports.push_back(ksan::sanitize_launch(
              halo_spec(msg.count(), pack_local_size, unpack.traits()), unpack,
              std::move(unpack_cfg),
              "halo-unpack" + suffix + (delivery > 0 ? " retry" : "")));
        }
      });
    }
  }
  return reports;
}

}  // namespace milc::multidev
