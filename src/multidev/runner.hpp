// runner.hpp — multi-device Dslash execution with halo exchange and
// compute/comm overlap.
//
// One iteration per device follows the classic overlap schedule of the
// production MILC/QUDA multi-GPU codes:
//
//   pack faces ─┬─> wire transfer ──> unpack ghosts ─> boundary compute
//               └─> interior compute ────┘ (runs while messages fly)
//
//   device timeline:  P ──────────── I ─────────────┐
//   wire:             └─> exchange ──────── arrival A┤
//                                  unpack U ─> boundary B ─> iteration end
//
// Interior sites read no ghosts, so their kernel launches right after the
// packs and hides the exchange; the boundary range waits for max(interior
// done, halo arrival) + unpack.  Both ranges run the *unchanged* 1LP–4LP
// kernels: shard targets are renumbered interior-first, so the boundary
// launch is the same kernel over base pointers offset by n_interior.
//
// Exactness: every target site is computed entirely by its owner from
// gathered link values and source values that are bit-exact copies of the
// global arrays (ghosts included), with the identical kernel arithmetic —
// so the multi-device output equals the single-device output of the same
// strategy bit for bit, for any partition grid.  Tests assert == 0.0.
#pragma once

#include <string>
#include <vector>

#include "core/problem.hpp"
#include "core/runner.hpp"
#include "gpusim/link.hpp"
#include "ksan/sanitizer.hpp"
#include "multidev/partition.hpp"

namespace milc::multidev {

/// A multi-device run: which grid, which kernel configuration, what fabric.
struct MultiDevRequest {
  PartitionGrid grid{};
  RunRequest req{};  ///< strategy / order / preferred local size / variant
  gpusim::LinkModel link = gpusim::dgx_a100_links();
  int pack_local_size = 96;  ///< work-group size of the pack/unpack kernels
};

/// One device's slice of the overlap timeline (per iteration, microseconds).
struct DeviceTimeline {
  int rank = 0;
  std::int64_t interior_sites = 0;
  std::int64_t boundary_sites = 0;
  std::int64_t halo_bytes_in = 0;
  double pack_us = 0.0;      ///< P: all outbound pack kernels + overheads
  double interior_us = 0.0;  ///< I: interior-range Dslash kernel
  double arrival_us = 0.0;   ///< A: last inbound message delivered
  double unpack_us = 0.0;    ///< U: all inbound unpack kernels + overheads
  double boundary_us = 0.0;  ///< B: boundary-range Dslash kernel
  double exposed_us = 0.0;   ///< comm not hidden: max(0, A - (P + I))
  double iter_us = 0.0;      ///< max(P + I, A) + U + B
};

struct MultiDevResult {
  std::string label;
  int devices = 1;
  double per_iter_us = 0.0;  ///< slowest device's iteration time
  double gflops = 0.0;       ///< total Dslash FLOPs / per_iter (paper convention)
  /// Fraction of the comm window hidden behind interior compute,
  /// sum_d(A - P - exposed) / sum_d(A - P); 1.0 when nothing is exposed.
  double overlap_efficiency = 1.0;
  /// Mean over devices of (pack + unpack + exposed wait) / per_iter.
  double comm_fraction = 0.0;
  /// Boundary targets / all targets (the surface-to-volume ratio that
  /// decides strong-scaling behaviour).
  double surface_fraction = 0.0;
  std::int64_t halo_bytes = 0;  ///< wire bytes per iteration, all devices
  std::vector<DeviceTimeline> per_device;
};

class MultiDeviceRunner {
 public:
  explicit MultiDeviceRunner(gpusim::MachineModel machine = gpusim::a100(),
                             gpusim::Calibration cal = gpusim::default_calibration())
      : machine_(machine), cal_(cal) {}

  /// Profiled run.  The kernels execute for real (the output field is
  /// gathered into problem.c()), and the overlap timeline above is priced
  /// from per-launch gpusim stats plus the link model.  A 1x1x1x1 grid
  /// delegates to DslashRunner::run so single-device numbers reproduce the
  /// existing benches exactly.
  [[nodiscard]] MultiDevResult run(DslashProblem& problem, const MultiDevRequest& mreq) const;

  /// Functional run of the full halo protocol (pack -> exchange -> unpack ->
  /// interior + boundary kernels); output lands in problem.c().
  void run_functional(DslashProblem& problem, const PartitionGrid& grid, Strategy s,
                      IndexOrder o, int preferred_local_size) const;

  /// Serial per-shard evaluation in dslash_reference's exact loop order,
  /// through the same partition/halo data — bit-for-bit equal to the global
  /// dslash_reference, which makes it the halo protocol's exactness oracle.
  void run_reference(DslashProblem& problem, const PartitionGrid& grid, ColorField& out) const;

  /// ksan entry: replay every pack and unpack launch of one exchange under
  /// the sanitizer with exact region declarations (ghost-region OOB, races).
  [[nodiscard]] std::vector<ksan::SanitizerReport> sanitize_halo(
      DslashProblem& problem, const PartitionGrid& grid, int pack_local_size = 96) const;

 private:
  gpusim::MachineModel machine_;
  gpusim::Calibration cal_;
};

/// Local size for a shard launch of `sites` sites: `preferred` when it
/// qualifies, else the largest qualifying paper pool entry, else the
/// largest qualifying multiple of the strategy's warp-aligned divisor,
/// else (shard counts with no multiple-of-32 divisor, e.g. 2^4 * 3^4) the
/// largest divisor that still respects the strategy's *algorithmic*
/// multiple — the executor runs the partial last warp correctly.
/// Throws std::invalid_argument only for an empty range.
[[nodiscard]] int pick_local_size(Strategy s, IndexOrder o, int preferred, std::int64_t sites);

}  // namespace milc::multidev
