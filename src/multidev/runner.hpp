// runner.hpp — multi-device Dslash execution with halo exchange and
// compute/comm overlap.
//
// One iteration per device follows the classic overlap schedule of the
// production MILC/QUDA multi-GPU codes:
//
//   pack faces ─┬─> wire transfer ──> unpack ghosts ─> boundary compute
//               └─> interior compute ────┘ (runs while messages fly)
//
//   device timeline:  P ──────────── I ─────────────┐
//   wire:             └─> exchange ──────── arrival A┤
//                                  unpack U ─> boundary B ─> iteration end
//
// Interior sites read no ghosts, so their kernel launches right after the
// packs and hides the exchange; the boundary range waits for max(interior
// done, halo arrival) + unpack.  Both ranges run the *unchanged* 1LP–4LP
// kernels: shard targets are renumbered interior-first, so the boundary
// launch is the same kernel over base pointers offset by n_interior.
//
// Exactness: every target site is computed entirely by its owner from
// gathered link values and source values that are bit-exact copies of the
// global arrays (ghosts included), with the identical kernel arithmetic —
// so the multi-device output equals the single-device output of the same
// strategy bit for bit, for any partition grid.  Tests assert == 0.0.
// Fault tolerance (docs/RESILIENCE.md "distributed failure model"): when a
// faultsim plan is installed, run() switches to a hardened path — halo
// payloads carry checksums, failed/corrupted messages are retransmitted with
// exponential backoff on the simulated clock under a per-exchange watchdog,
// per-shard kernel faults ride the retry + strategy-fallback ladder, and an
// unrecoverable device loss triggers failover onto a smaller partition grid.
// Elastic recovery (docs/RESILIENCE.md "Recovery taxonomy") layers on top:
// when the topology declares hot spares, a lost shard is re-replicated onto
// a spare over the priced interconnect instead of shrinking, and when the
// fault plan heals a stickily-lost resource the abandoned grid is rejoined
// live — both paths checksummed, retransmitting and charged simulated wire
// time.  With no plan installed the pre-existing code path runs untouched,
// so the fault-free timeline and output stay bit-for-bit identical.
#pragma once

#include <string>
#include <vector>

#include "core/problem.hpp"
#include "core/runner.hpp"
#include "faultsim/faultsim.hpp"
#include "gpusim/fabric.hpp"
#include "gpusim/link.hpp"
#include "ksan/sanitizer.hpp"
#include "minisycl/queue.hpp"
#include "multidev/partition.hpp"

namespace milc::multidev {

/// Retry/backoff/watchdog parameters of the hardened exchange path (only
/// consulted when a fault plan is installed).
struct ExchangeConfig {
  int max_rounds = 4;             ///< delivery attempts per message (1 = no retry)
  double backoff_base_us = 50.0;  ///< retransmit backoff = base * factor^(round-1)
  double backoff_factor = 2.0;
  double watchdog_us = 20'000.0;  ///< per-exchange watchdog on the simulated clock
  int max_kernel_attempts = 4;    ///< per-shard kernel retry budget (incl. first try)
  /// Strategy rungs tried per shard range after the requested strategy
  /// exhausts its attempts (mirrors ResilientConfig::ladder).
  std::vector<Strategy> ladder = {Strategy::LP3_1, Strategy::LP2, Strategy::LP1};
};

/// A multi-device run: which grid, which kernel configuration, what fabric.
struct MultiDevRequest {
  PartitionGrid grid{};
  RunRequest req{};  ///< strategy / order / preferred local size / variant
  gpusim::LinkModel link = gpusim::dgx_a100_links();
  /// Two-level interconnect.  With `topo.nodes == 1` (the default) the run
  /// is single-node: `link` prices the exchange and nothing else changes.
  /// With `topo.nodes > 1`, `topo` replaces `link` entirely (`topo.intra`
  /// is the island model): grid ranks are grouped into node groups of
  /// `topo.devices_per_node` devices, fabric-bound slabs are packed first
  /// and aggregated per neighbour, and the exchange is priced by
  /// simulate_topology_exchange.  The *output field* is identical either
  /// way — placement changes time, never values.
  gpusim::NodeTopology topo{};
  /// Halo wire format (docs/WIRE.md).  The fp64/recon-18 default is the
  /// exact wire: output, timeline and checksums are bit-for-bit the
  /// pre-wire-format behaviour.  Reduced formats shrink every priced wire
  /// byte (checksums, aggregation frames, corruption and retransmission all
  /// operate on the encoded size); the convert is fused into pack/unpack.
  WireFormat wire{};
  int pack_local_size = 96;  ///< work-group size of the pack/unpack kernels
  ExchangeConfig xcfg{};     ///< hardened-path parameters (fault plan installed)
  /// Live-rejoin target (elastic recovery).  When `rejoin_grid.total() >
  /// grid.total()`, a previous run abandoned that larger grid in a shrink
  /// failover; each hardened attempt consults `heal/<rejoin_what> @ <grid>`
  /// and on a heal re-replicates shard state onto the re-admitted ranks and
  /// continues on `rejoin_grid`.  The sharded CG solver threads its
  /// pre-failover grid through here so capacity returns mid-solve.
  PartitionGrid rejoin_grid{};
  std::string rejoin_what;  ///< heal-site grammar: "device r<k>" | "node n<j>"
  /// Execution mode of the hardened path's queues; the sharded CG solver
  /// runs functional applies through the same recovery machinery.  The
  /// fault-free path ignores this (profiled by definition of run()).
  minisycl::ExecMode mode = minisycl::ExecMode::profiled;
};

/// One device's slice of the overlap timeline (per iteration, microseconds).
struct DeviceTimeline {
  int rank = 0;
  std::int64_t interior_sites = 0;
  std::int64_t boundary_sites = 0;
  std::int64_t halo_bytes_in = 0;
  double pack_us = 0.0;      ///< P: all outbound pack kernels + overheads
  double interior_us = 0.0;  ///< I: interior-range Dslash kernel
  double arrival_us = 0.0;   ///< A: last inbound message delivered
  double unpack_us = 0.0;    ///< U: all inbound unpack kernels + overheads
  double boundary_us = 0.0;  ///< B: boundary-range Dslash kernel
  double exposed_us = 0.0;   ///< comm not hidden: max(0, A - (P + I))
  double iter_us = 0.0;      ///< max(P + I, A) + U + B
};

/// The fate of one halo message in one delivery round of the hardened path.
struct ExchangeEvent {
  int round = 1;  ///< 1-based delivery round (> 1 means a retransmission)
  int src = 0;
  int dst = 0;
  std::string site;  ///< injector site name, "halo-exchange r<src>->r<dst>"
  bool dropped = false;
  bool corrupted = false;
  bool delayed = false;
  bool checksum_ok = true;  ///< payload checksum verified on receipt
  bool delivered = false;   ///< verified and queued for unpack
};

/// Structured per-exchange account of the hardened path (this is the
/// multidev-level report; gpusim::ExchangeReport is the raw wire schedule).
/// Cumulative across failover attempts within one run.
struct ExchangeReport {
  int rounds = 0;           ///< delivery rounds used (1 per message set when clean)
  int messages = 0;         ///< distinct messages attempted
  int retransmissions = 0;  ///< message deliveries beyond the first round
  int drops = 0;
  int corruptions = 0;
  int delays = 0;
  int checksum_failures = 0;  ///< corrupted payloads caught on receipt
  double backoff_us = 0.0;    ///< simulated backoff charged between rounds
  bool watchdog_fired = false;
  bool succeeded = false;  ///< every message verified within max_rounds
  std::vector<ExchangeEvent> events;

  [[nodiscard]] bool clean() const {
    return retransmissions == 0 && drops == 0 && corruptions == 0 && delays == 0 &&
           checksum_failures == 0 && !watchdog_fired;
  }
  [[nodiscard]] std::string summary() const;
};

/// One failover: the partition grid abandoned, its replacement, and why.
struct FailoverEvent {
  PartitionGrid from{};
  PartitionGrid to{};
  std::string reason;
  int attempt = 0;  ///< 0-based grid attempt the failure occurred in
};

/// One per-shard kernel recovery action under the hardened path.
struct ShardRecovery {
  int rank = 0;
  std::string site;  ///< kernel site name ("dslash-interior r2", ...)
  Strategy strategy = Strategy::LP3_1;
  int attempt = 0;
  std::string action;  ///< "retry" | "fallback"
  double backoff_us = 0.0;
};

struct MultiDevResult {
  std::string label;
  int devices = 1;
  double per_iter_us = 0.0;  ///< slowest device's iteration time
  double gflops = 0.0;       ///< total Dslash FLOPs / per_iter (paper convention)
  /// Fraction of the comm window hidden behind interior compute,
  /// sum_d(A - P - exposed) / sum_d(A - P); 1.0 when nothing is exposed.
  double overlap_efficiency = 1.0;
  /// Mean over devices of (pack + unpack + exposed wait) / per_iter.
  double comm_fraction = 0.0;
  /// Boundary targets / all targets (the surface-to-volume ratio that
  /// decides strong-scaling behaviour).
  double surface_fraction = 0.0;
  std::int64_t halo_bytes = 0;  ///< encoded wire bytes per iteration, all devices
  WireFormat wire{};            ///< wire format the run used (docs/WIRE.md)
  std::vector<DeviceTimeline> per_device;

  // --- topology accounting (single-node runs: nodes == 1, inter == 0) -----
  int nodes = 1;                        ///< node groups the run spanned
  std::int64_t intra_node_bytes = 0;    ///< slab bytes that stayed on NVLink
  std::int64_t inter_node_bytes = 0;    ///< fabric wire bytes incl. frame headers
  int fabric_messages = 0;              ///< aggregated fabric wire messages
  double intra_wire_us = 0.0;           ///< summed NVLink message wire times
  double inter_wire_us = 0.0;           ///< summed fabric aggregate wire times

  // --- hardened-path accounting (defaults = fault-free run) ---------------
  bool recovered = true;        ///< false: recovery exhausted, output invalid
  PartitionGrid final_grid{};   ///< grid actually used (differs after failover)
  double recovery_us = 0.0;     ///< simulated time lost to faults and backoffs
  ExchangeReport exchange;      ///< clean()/succeeded==false when fault-free
  std::vector<FailoverEvent> failovers;
  std::vector<ShardRecovery> shard_recoveries;

  // --- elastic recovery accounting (hot spares and live rejoin) -----------
  int spares_consumed = 0;    ///< hot spares drafted to adopt lost shards
  int rejoins = 0;            ///< healed resources re-admitted mid-run
  int capacity_restored = 0;  ///< devices of capacity regained by rejoins
  std::int64_t rereplicated_bytes = 0;  ///< slab wire bytes incl. retransmits
  /// Wire + backoff time of re-replication transfers (also in recovery_us).
  double rereplication_us = 0.0;
  /// Injector log entries observed during this run (fault enumeration).
  std::vector<faultsim::FaultEvent> faults;
};

/// Result of a tuned multi-device run (run_tuned): the winning execution
/// plus the tuning-cache entry it produced or replayed.
struct MultiDevTunedResult {
  MultiDevResult result;
  tune::TuneEntry entry;
  bool from_cache = false;    ///< true when a cache hit was replayed
  int candidates_tried = 0;   ///< 1 on a hit; the sweep size on a miss
};

class MultiDeviceRunner {
 public:
  explicit MultiDeviceRunner(gpusim::MachineModel machine = gpusim::a100(),
                             gpusim::Calibration cal = gpusim::default_calibration())
      : machine_(machine), cal_(cal) {}

  [[nodiscard]] const gpusim::MachineModel& machine() const { return machine_; }

  /// Profiled run.  The kernels execute for real (the output field is
  /// gathered into problem.c()), and the overlap timeline above is priced
  /// from per-launch gpusim stats plus the link model.  A 1x1x1x1 grid
  /// delegates to DslashRunner::run so single-device numbers reproduce the
  /// existing benches exactly.
  [[nodiscard]] MultiDevResult run(DslashProblem& problem, const MultiDevRequest& mreq) const;

  /// Autotuned profiled run: sweeps the paper pool of preferred local sizes
  /// for mreq.req's strategy/order on mreq's grid (each shard still coerces
  /// through pick_local_size), consulting the installed tune::TuneSession
  /// under tune_key() first.  A hit re-prices the cached preferred size once
  /// and verifies its per-iteration time bit-for-bit (docs/TUNING.md).
  [[nodiscard]] MultiDevTunedResult run_tuned(DslashProblem& problem,
                                              const MultiDevRequest& mreq) const;

  /// The cache key run_tuned consults: kernel "mdslash"; strategy, order,
  /// variant and grid label in the config field; the topology signature.
  [[nodiscard]] tune::TuneKey tune_key(const DslashProblem& problem,
                                       const MultiDevRequest& mreq) const;

  /// Functional run of the full halo protocol (pack -> exchange -> unpack ->
  /// interior + boundary kernels); output lands in problem.c().  On the
  /// default fp64 wire the output is bit-for-bit the single-device result;
  /// a reduced wire rounds ghost values only (docs/WIRE.md §5).
  void run_functional(DslashProblem& problem, const PartitionGrid& grid, Strategy s,
                      IndexOrder o, int preferred_local_size,
                      const WireFormat& wire = {}) const;

  /// Serial per-shard evaluation in dslash_reference's exact loop order,
  /// through the same partition/halo data — bit-for-bit equal to the global
  /// dslash_reference, which makes it the halo protocol's exactness oracle.
  void run_reference(DslashProblem& problem, const PartitionGrid& grid, ColorField& out) const;

  /// ksan entry: replay every pack and unpack launch of one exchange under
  /// the sanitizer with exact region declarations (ghost-region OOB, races).
  [[nodiscard]] std::vector<ksan::SanitizerReport> sanitize_halo(
      DslashProblem& problem, const PartitionGrid& grid, int pack_local_size = 96,
      const WireFormat& wire = {}) const;

  /// ksan entry for the *hardened* exchange data flow: pack -> receiver-side
  /// copy -> unpack-from-copy, with the first message of every shard
  /// redelivered once (a retransmission) and re-unpacked in a separate launch
  /// — the correct retry sequence, which must sanitize clean.  (Fusing both
  /// unpacks into one launch is a cross-group write-write race; the test
  /// suite demonstrates ksan catching exactly that.)
  [[nodiscard]] std::vector<ksan::SanitizerReport> sanitize_exchange(
      DslashProblem& problem, const PartitionGrid& grid, int pack_local_size = 96,
      const WireFormat& wire = {}) const;

  /// dsan entry: record one full run — fault-free or hardened, whichever the
  /// installed fault plan selects — as a cluster-wide event graph (kernel
  /// launches, pack/unpack, send/recv/retransmit, checksum verdicts, wire
  /// schedule, failovers) and check it under vector-clock happens-before plus
  /// the protocol lints (docs/SANITIZER.md "Distributed checks").  Four
  /// reports, one per checker; every existing scenario must come back clean.
  [[nodiscard]] std::vector<ksan::SanitizerReport> dsan_check(
      DslashProblem& problem, const MultiDevRequest& mreq) const;

 private:
  [[nodiscard]] MultiDevResult run_plain(DslashProblem& problem,
                                         const MultiDevRequest& mreq) const;
  [[nodiscard]] MultiDevResult run_hardened(DslashProblem& problem,
                                            const MultiDevRequest& mreq) const;
  bool run_attempt(DslashProblem& problem, const MultiDevRequest& mreq,
                   const PartitionGrid& grid, MultiDevResult& res,
                   std::string& fail_reason) const;

  gpusim::MachineModel machine_;
  gpusim::Calibration cal_;
};

/// The next-smaller partition grid for failover: the lowest-index split
/// dimension has its device count divided by its smallest prime factor
/// (4 -> 2 -> 1, 3 -> 1), so every extent that divided the old grid divides
/// the new one and local extents only grow.  Identity on 1x1x1x1.
[[nodiscard]] PartitionGrid fallback_grid(const PartitionGrid& grid);

/// The topology a grid of `devices` ranks actually runs on: the original
/// node grouping while the device count still fills whole node groups,
/// otherwise one island (after failover the survivors are re-packed onto
/// as few nodes as possible; a remnant smaller than a node is all-NVLink).
[[nodiscard]] gpusim::NodeTopology effective_topology(const gpusim::NodeTopology& topo,
                                                     int devices);

/// Bytes a spare or rejoining device must receive to adopt rank `rank` of
/// the partitioner's grid: the gathered gauge slab plus the extended source
/// spinor (owned + ghost slots) — the state build_fields materialises.
/// The fp64/recon-18 overload is the historical exact count; the wire-format
/// overload prices the gauge slab at the recon scheme's encoded link size
/// and the spinor at the spinor format's site size (docs/WIRE.md §3).
[[nodiscard]] std::int64_t shard_slab_bytes(const Partitioner& part, int rank);
[[nodiscard]] std::int64_t shard_slab_bytes(const Partitioner& part, int rank,
                                            const WireFormat& wire);

/// Local size for a shard launch of `sites` sites: `preferred` when it
/// qualifies, else the largest qualifying paper pool entry, else the
/// largest qualifying multiple of the strategy's warp-aligned divisor,
/// else (shard counts with no multiple-of-32 divisor, e.g. 2^4 * 3^4) the
/// largest divisor that still respects the strategy's *algorithmic*
/// multiple — the executor runs the partial last warp correctly.
/// Throws std::invalid_argument only for an empty range.
[[nodiscard]] int pick_local_size(Strategy s, IndexOrder o, int preferred, std::int64_t sites);

}  // namespace milc::multidev
