// wire_format.hpp — the halo wire-format contract (docs/WIRE.md).
//
// PR 5 made inter-node bytes the priced bottleneck; this header names the
// formats that shrink them.  A `WireFormat` picks (a) the spinor payload
// element — fp64 (the exact default), fp32 or fp16 — written *directly* by
// the pack kernels (the convert is fused into the gather, there is no
// staging copy), and (b) the gauge-link codec used where shards exchange
// link data (re-replication onto spares), reusing the recon-18/12/9
// schemes of `su3/reconstruct`.
//
// Byte contract (one complex number per wire element, kColors per site):
//
//   spinor wire    element   bytes/site      gauge wire   bytes/link
//   fp64           16 B      48              recon-18     144
//   fp32            8 B      24              recon-12      96
//   fp16            4 B      12              recon-9       72
//
// Checksums, aggregation frames, corruption and retransmission all operate
// on the *encoded* bytes — a reduced-format message is priced, checksummed
// and corrupted at its wire size, never at the fp64 size.
//
// fp16 uses IEEE binary16 with round-to-nearest-even, carried with one
// per-message scale factor (chosen so the largest packed component maps to
// 1.0) so payload magnitudes track the shrinking CG residual instead of
// drowning in the subnormal range; the scale rides in the message header
// next to the slot count, not in the payload bytes.  The exactness story
// for solvers on reduced wires is reliable updates: see docs/WIRE.md §5.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

#include "complexlib/dcomplex.hpp"
#include "complexlib/scomplex.hpp"
#include "su3/reconstruct.hpp"
#include "su3/su3_vector.hpp"

namespace milc::multidev {

/// Spinor halo payload element format.
enum class SpinorWire { fp64, fp32, fp16 };

/// IEEE binary16 complex wire element (bit patterns, no arithmetic).
struct hcomplex {
  std::uint16_t re = 0;
  std::uint16_t im = 0;
};
static_assert(sizeof(hcomplex) == 4, "fp16 wire element must be 4 bytes");

/// float -> IEEE binary16 bits, round-to-nearest-even (overflow -> inf,
/// |x| < 2^-25 -> signed zero, NaN payload preserved in the top bit).
[[nodiscard]] inline std::uint16_t float_to_half(float f) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const auto sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t exp = (x >> 23) & 0xffu;
  std::uint32_t mant = x & 0x7fffffu;
  if (exp == 0xffu) {  // inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7c00u | (mant != 0 ? 0x200u : 0u));
  }
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 0x1f) return static_cast<std::uint16_t>(sign | 0x7c00u);  // overflow
  if (e <= 0) {
    if (e < -10) return sign;  // below half of the smallest subnormal
    mant |= 0x800000u;
    const int shift = 14 - e;  // in [14, 24]
    std::uint32_t half = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half & 1u) != 0)) ++half;
    return static_cast<std::uint16_t>(sign | half);
  }
  std::uint32_t half = (static_cast<std::uint32_t>(e) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1fffu;
  // RNE; a carry out of the mantissa bumps the exponent, which is exactly
  // the rounding-to-inf behaviour IEEE specifies at the top of the range.
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u) != 0)) ++half;
  return static_cast<std::uint16_t>(sign | half);
}

/// IEEE binary16 bits -> float (exact: every half value is a float).
[[nodiscard]] inline float half_to_float(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (static_cast<std::uint32_t>(h) >> 10) & 0x1fu;
  std::uint32_t mant = static_cast<std::uint32_t>(h) & 0x3ffu;
  std::uint32_t bits = 0;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;
    } else {  // subnormal: renormalise into a float exponent
      int e = -1;
      do {
        mant <<= 1;
        ++e;
      } while ((mant & 0x400u) == 0);
      mant &= 0x3ffu;
      bits = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) | (mant << 13);
    }
  } else if (exp == 0x1fu) {
    bits = sign | 0x7f800000u | (mant << 13);
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(bits);
}

/// Wire bytes of one complex payload element.
[[nodiscard]] constexpr std::int64_t wire_complex_bytes(SpinorWire w) {
  switch (w) {
    case SpinorWire::fp64: return static_cast<std::int64_t>(sizeof(dcomplex));
    case SpinorWire::fp32: return static_cast<std::int64_t>(sizeof(scomplex));
    case SpinorWire::fp16: return static_cast<std::int64_t>(sizeof(hcomplex));
  }
  return static_cast<std::int64_t>(sizeof(dcomplex));
}

/// Wire bytes of one halo site (one SU(3) colour vector): 48 / 24 / 12.
[[nodiscard]] constexpr std::int64_t spinor_site_bytes(SpinorWire w) {
  return kColors * wire_complex_bytes(w);
}

/// Encoded wire bytes of one gauge link under a recon scheme: 144 / 96 / 72.
[[nodiscard]] constexpr std::int64_t gauge_link_bytes(Reconstruct r) {
  return static_cast<std::int64_t>(reals_per_link(r)) *
         static_cast<std::int64_t>(sizeof(double));
}

/// The complete wire contract of one distributed run.  The default is the
/// exact fp64 / recon-18 wire; anything else is a *reduced* wire and a
/// solver on top owes the reliable-update certification of docs/WIRE.md §5.
struct WireFormat {
  SpinorWire spinor = SpinorWire::fp64;
  Reconstruct gauge = Reconstruct::k18;

  [[nodiscard]] bool reduced() const {
    return spinor != SpinorWire::fp64 || gauge != Reconstruct::k18;
  }
  [[nodiscard]] bool operator==(const WireFormat&) const = default;
};

[[nodiscard]] inline const char* to_string(SpinorWire w) {
  switch (w) {
    case SpinorWire::fp64: return "fp64";
    case SpinorWire::fp32: return "fp32";
    case SpinorWire::fp16: return "fp16";
  }
  return "fp64";
}

/// "fp64", "fp32+r12", "fp16+r9", ... — the `--wire` grammar.
[[nodiscard]] inline std::string to_string(const WireFormat& w) {
  std::string s = to_string(w.spinor);
  switch (w.gauge) {
    case Reconstruct::k18: break;
    case Reconstruct::k12: s += "+r12"; break;
    case Reconstruct::k9: s += "+r9"; break;
  }
  return s;
}

/// Inverse of to_string(WireFormat): `<fp64|fp32|fp16>[+r<18|12|9>]`.
/// Returns false on malformed input, leaving `out` untouched.
[[nodiscard]] inline bool parse_wire_format(const std::string& text, WireFormat& out) {
  WireFormat w;
  std::string spinor = text;
  const std::size_t plus = text.find('+');
  if (plus != std::string::npos) {
    spinor = text.substr(0, plus);
    const std::string gauge = text.substr(plus + 1);
    if (gauge == "r18") {
      w.gauge = Reconstruct::k18;
    } else if (gauge == "r12") {
      w.gauge = Reconstruct::k12;
    } else if (gauge == "r9") {
      w.gauge = Reconstruct::k9;
    } else {
      return false;
    }
  }
  if (spinor == "fp64") {
    w.spinor = SpinorWire::fp64;
  } else if (spinor == "fp32") {
    w.spinor = SpinorWire::fp32;
  } else if (spinor == "fp16") {
    w.spinor = SpinorWire::fp16;
  } else {
    return false;
  }
  out = w;
  return true;
}

/// Tuning-key fields for a wire format.  The fp64/recon-18 default maps to
/// the grammar's own defaults ("fp64", "-") so every pre-wire-format cache
/// entry keeps its canonical string and replays bit-for-bit.
[[nodiscard]] inline std::string wire_prec_field(const WireFormat& w) {
  return to_string(w.spinor);
}
[[nodiscard]] inline std::string wire_recon_field(const WireFormat& w) {
  return w.gauge == Reconstruct::k18 ? std::string("-") : std::string(milc::to_string(w.gauge));
}

/// Per-element encode/decode fused into the pack/unpack kernels.  `scale`
/// multiplies values onto the wire, `inv_scale` multiplies them back; both
/// are 1.0 except on the fp16 wire (where scale = 1 / max|component| of the
/// message and inv_scale its reciprocal).  The fp64 specialisation is the
/// identity, so the fp64 kernels are literally the pre-wire-format kernels.
template <typename W>
struct WireCodec;

template <>
struct WireCodec<dcomplex> {
  static constexpr SpinorWire kFormat = SpinorWire::fp64;
  [[nodiscard]] static dcomplex encode(const dcomplex& v, double /*scale*/) { return v; }
  [[nodiscard]] static dcomplex decode(const dcomplex& v, double /*inv_scale*/) { return v; }
};

template <>
struct WireCodec<scomplex> {
  static constexpr SpinorWire kFormat = SpinorWire::fp32;
  [[nodiscard]] static scomplex encode(const dcomplex& v, double /*scale*/) {
    return scomplex{static_cast<float>(v.re), static_cast<float>(v.im)};
  }
  [[nodiscard]] static dcomplex decode(const scomplex& v, double /*inv_scale*/) {
    return dcomplex{static_cast<double>(v.re), static_cast<double>(v.im)};
  }
};

template <>
struct WireCodec<hcomplex> {
  static constexpr SpinorWire kFormat = SpinorWire::fp16;
  [[nodiscard]] static hcomplex encode(const dcomplex& v, double scale) {
    return hcomplex{float_to_half(static_cast<float>(v.re * scale)),
                    float_to_half(static_cast<float>(v.im * scale))};
  }
  [[nodiscard]] static dcomplex decode(const hcomplex& v, double inv_scale) {
    return dcomplex{static_cast<double>(half_to_float(v.re)) * inv_scale,
                    static_cast<double>(half_to_float(v.im)) * inv_scale};
  }
};

}  // namespace milc::multidev
