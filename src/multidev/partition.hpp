// partition.hpp — domain decomposition of the 4-D lattice across devices.
//
// The production MILC codes (DeTar et al., arXiv:1712.00143; Gottlieb,
// hep-lat/0112038) split the lattice into one contiguous hyper-rectangular
// block per rank and exchange ghost zones ("halos") with the neighbouring
// ranks before the stencil touches off-block sites.  This header reproduces
// that layer for the simulated machine:
//
//  * `PartitionGrid` — how many devices along each dimension (e.g. 1x2x2x2).
//  * `Partitioner`   — splits a `LatticeGeom` into per-rank `Shard`s and
//    resolves every stencil read either into the rank's own source sites or
//    into *ghost slots* appended after them, producing a per-rank neighbour
//    table with exactly the layout the kernels already consume
//    ([target*16 + k*4 + l]).  The existing 1LP–4LP kernels therefore run
//    unchanged per shard.
//  * `HaloMsg`       — one inbound face slab: which peer owns it, where its
//    ghost slots start, and (on the sender side) which owned source slots
//    are gathered onto the wire, in a canonical order both ends agree on.
//
// Halo depth: the staggered stencil reaches +-1 and +-3 along single
// dimensions only (kStencilOffsets) — no diagonal reads, so there is no
// corner/edge exchange at all.  Face slabs are 3 planes deep: a target at
// distance d in {0, 1, 2} inside a face reads the depth-(3 - d) ghost
// plane through its 3-hop (and d = 0 additionally reads depth 1 through
// its 1-hop), so every depth in {1, 2, 3} is touched.  Split extents must
// be >= 2 * kHaloDepth so a rank's ghosts never alias its own sites.
//
// Target sites are renumbered interior-first: a target is *interior* when
// all 16 of its stencil reads land in-block, *boundary* otherwise.  The
// runner launches the interior range while the exchange is in flight and
// the boundary range after unpack — the classic overlap schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/fabric.hpp"
#include "lattice/geometry.hpp"
#include "multidev/wire_format.hpp"
#include "su3/su3_vector.hpp"
#include "tune/tune_key.hpp"

namespace milc::multidev {

/// The stencil's longest hop sets the slab depth.
inline constexpr int kHaloDepth = 3;

/// Ghost-plane depths exchanged per face.  All three are read: targets at
/// distance d in {0, 1, 2} inside the face reach depth 3 - d via the 3-hop.
inline constexpr std::array<int, 3> kHaloPlanes{1, 2, 3};

/// Device counts along each dimension.  Rank numbering is lexicographic
/// with dimension 0 fastest, mirroring LatticeGeom's site numbering.
struct PartitionGrid {
  Coords devices{1, 1, 1, 1};

  [[nodiscard]] int total() const {
    return devices[0] * devices[1] * devices[2] * devices[3];
  }
  [[nodiscard]] int rank_of(const Coords& rc) const;
  [[nodiscard]] Coords coords_of(int rank) const;
  /// 1-D split: n devices along `dim`, 1 elsewhere.
  [[nodiscard]] static PartitionGrid along(int dim, int n);
  /// "2x1x2x2"-style label.
  [[nodiscard]] std::string label() const;
  /// Inverse of label(); returns false on malformed input.  Tuning-cache
  /// entries persist grids by their label.
  [[nodiscard]] static bool from_label(const std::string& label, PartitionGrid& out);
};

/// One inbound ghost slab, as seen by the receiving rank.
struct HaloMsg {
  int dim = 0;     ///< split dimension the slab crosses
  int side = 0;    ///< 0: slab lies beyond the block's low face, 1: high face
  int peer = 0;    ///< owning rank (the sender)
  std::int64_t ghost_base = 0;            ///< first ghost slot on the receiver
  std::vector<std::int64_t> site_eo;      ///< global eo site per wire element
  std::vector<std::int32_t> send_slots;   ///< sender-local owned-source slots, wire order

  [[nodiscard]] std::int64_t count() const {
    return static_cast<std::int64_t>(site_eo.size());
  }
  /// Wire bytes on the exact fp64 wire: one SU(3) colour vector
  /// (3 x 16 B) per site.  Identical to wire_bytes(SpinorWire::fp64).
  [[nodiscard]] std::int64_t bytes() const {
    return count() * kColors * 2 * static_cast<std::int64_t>(sizeof(double));
  }
  /// Encoded wire bytes under a spinor wire format (docs/WIRE.md §2):
  /// 48 / 24 / 12 B per site for fp64 / fp32 / fp16.  Checksums,
  /// corruption, pricing and retransmission all operate on this count.
  [[nodiscard]] std::int64_t wire_bytes(SpinorWire w) const {
    return count() * spinor_site_bytes(w);
  }
};

/// Everything one simulated device needs to run its part of the Dslash.
struct Shard {
  int rank = 0;
  Coords rank_coords{};
  Coords origin{};      ///< global coordinates of the block's low corner
  Coords local_dims{};  ///< block extents

  std::int64_t n_interior = 0;  ///< targets whose 16 reads are all in-block
  std::int64_t n_boundary = 0;  ///< targets with at least one ghost read
  /// Local target slot -> global eo index.  Interior targets come first;
  /// within each class the order is ascending global full index.
  std::vector<std::int64_t> target_eo;
  /// Owned source slot -> global eo index (ascending global full index).
  std::vector<std::int64_t> source_eo;
  std::int64_t n_ghosts = 0;  ///< ghost slots appended after the owned sources

  /// Per-target gather table, [t*16 + k*4 + l], values in
  /// [0, sources() + n_ghosts) — the extended source array.
  std::vector<std::int32_t> neighbors;

  /// Inbound slabs in canonical order (dim ascending, low side then high).
  std::vector<HaloMsg> halo;

  [[nodiscard]] std::int64_t targets() const {
    return static_cast<std::int64_t>(target_eo.size());
  }
  [[nodiscard]] std::int64_t sources() const {
    return static_cast<std::int64_t>(source_eo.size());
  }
  [[nodiscard]] std::int64_t extended_sources() const { return sources() + n_ghosts; }
  [[nodiscard]] std::int64_t halo_bytes() const;
  /// Inbound wire bytes under a spinor wire format.
  [[nodiscard]] std::int64_t halo_wire_bytes(SpinorWire w) const;
};

/// Splits a lattice over a device grid and builds every shard up front.
/// (A real MPI rank would build only its own shard and derive its send
/// lists from the symmetric slab enumeration; building all shards in one
/// place lets the send lists be filled by direct lookup instead.)
class Partitioner {
 public:
  /// Throws std::invalid_argument when an extent is not divisible by its
  /// device count, a local extent is odd (the checkerboard needs even
  /// extents everywhere), or a *split* local extent is < 2 * kHaloDepth
  /// (ghosts would alias owned sites).
  Partitioner(const LatticeGeom& geom, const PartitionGrid& grid, Parity target);

  [[nodiscard]] const LatticeGeom& geom() const { return geom_; }
  [[nodiscard]] const PartitionGrid& grid() const { return grid_; }
  [[nodiscard]] Parity target() const { return target_; }
  [[nodiscard]] const std::vector<Shard>& shards() const { return shards_; }
  [[nodiscard]] const Shard& shard(int rank) const {
    return shards_[static_cast<std::size_t>(rank)];
  }

  /// Ghost sites summed over all shards (the per-iteration exchange volume).
  [[nodiscard]] std::int64_t total_ghosts() const;

 private:
  LatticeGeom geom_;
  PartitionGrid grid_;
  Parity target_;
  std::vector<Shard> shards_;
};

// --- topology-aware grid selection -----------------------------------------
//
// Node placement is fixed by rank numbering: node_of(rank) = rank /
// devices_per_node, and ranks vary fastest along dimension 0.  Faster-
// varying split dimensions therefore stay inside a node group (NVLink);
// the slowest-varying split crosses the fabric.  Choosing *which*
// dimensions to split thus chooses which face surfaces ride the cheap
// island and which pay fabric prices — the scoring below makes that choice
// analytically, without building a Partitioner per candidate.

/// Why (geom, grid) cannot be partitioned — empty string when it can.
/// The Partitioner constructor throws exactly this message.
[[nodiscard]] std::string partition_error(const LatticeGeom& geom, const PartitionGrid& grid);

/// Predicted per-iteration exchange cost of one grid on one topology.
struct GridScore {
  PartitionGrid grid;
  std::int64_t intra_bytes = 0;  ///< slab payload bytes staying on NVLink
  std::int64_t inter_bytes = 0;  ///< slab payload bytes crossing the fabric
  int inter_pairs = 0;           ///< aggregated fabric wire messages per exchange
  /// Analytic exchange-time bound: the busiest device's NVLink egress plus
  /// the busiest node's NIC egress (latency + bytes / bandwidth per
  /// message, aggregates priced at min(line rate, injection rate)).
  double cost_us = 0.0;
};

/// Score one candidate grid on one topology (grid.total() devices must fit
/// the topology).  Pure arithmetic over face surfaces — no shards built.
/// Slab payloads are priced at the wire format's encoded size (fp64 when
/// defaulted), so a reduced wire genuinely changes which grid is cheapest.
[[nodiscard]] GridScore score_grid(const LatticeGeom& geom, const PartitionGrid& grid,
                                   const gpusim::NodeTopology& topo,
                                   const WireFormat& wire = {});

/// Every partitionable device grid with exactly `devices` ranks, in
/// ascending lexicographic (d0, d1, d2, d3) order.
[[nodiscard]] std::vector<PartitionGrid> enumerate_grids(const LatticeGeom& geom,
                                                         int devices);

/// The tuning-cache key choose_grid consults: kernel "grid", the topology's
/// wire-rate fingerprint in the arch field (grid cost is pure wire
/// arithmetic — SM coefficients never enter).
[[nodiscard]] tune::TuneKey grid_tune_key(const LatticeGeom& geom,
                                          const gpusim::NodeTopology& topo,
                                          const WireFormat& wire = {});

/// The cheapest partitionable grid for this lattice on this topology —
/// prefers cuts whose surfaces stay intra-node.  Cost ties go to the
/// first-enumerated candidate; ascending lexicographic order makes that
/// the one splitting later dimensions (t first, then z), matching the
/// repo's existing split convention.  Throws std::invalid_argument when
/// no grid can partition the lattice.
///
/// With a tune::TuneSession installed, consults grid_tune_key() first: a
/// hit re-scores only the cached grid and verifies its predicted cost
/// bit-for-bit (tune::ReplayMismatch otherwise) instead of scoring every
/// candidate; a miss scores the full enumeration and records the winner.
[[nodiscard]] PartitionGrid choose_grid(const LatticeGeom& geom,
                                        const gpusim::NodeTopology& topo,
                                        const WireFormat& wire = {});

}  // namespace milc::multidev
