// halo_kernels.hpp — the pack/unpack kernels of the halo exchange.
//
// Both kernels are lane-policy templates like every other kernel in the
// repo, so they run functionally (correctness), profiled (the gpusim
// pipeline prices their memory behaviour into the overlap timeline) and
// under ksan (races / OOB on the ghost region) from one source.
//
// Index order is k-major in the paper's sense: one work-item per complex
// component with the colour index fastest, so adjacent work-items touch
// adjacent wire elements — the pack's stores and the unpack's loads and
// stores are all fully coalesced; only the pack's gather loads are
// scattered (inherently, they follow the face's site layout).
//
// The kernels are additionally templated over the wire element `W`
// (dcomplex / scomplex / hcomplex — the fp64 / fp32 / fp16 wire formats of
// `wire_format.hpp`): the precision convert is *fused* into the gather and
// scatter through WireCodec<W>, so a reduced-format wire never exists at
// fp64 width anywhere — pack writes encoded bytes directly, unpack decodes
// straight into the ghost slots.  The work decomposition (one work-item
// per complex component) is identical for every W; only the store/load
// width changes, and WireCodec<dcomplex> is the identity, so the fp64
// instantiations are bit-for-bit the pre-wire-format kernels.
//
// Wire counts are not multiples of any work-group size, so the global size
// is padded up and tail work-items predicate themselves off against the
// last valid element — the same clamp + set_masked idiom as the 3LP-1
// reduction phase, which keeps all 32 event streams of a warp positionally
// aligned while generating no memory transactions for dead lanes.
#pragma once

#include <cstdint>

#include "complexlib/dcomplex.hpp"
#include "minisycl/traits.hpp"
#include "multidev/wire_format.hpp"
#include "su3/su3_vector.hpp"

namespace milc::multidev {

/// Gather `count` boundary source vectors (via `slots`) into the
/// contiguous wire buffer of one outbound halo message, encoding each
/// complex component into the wire element format on the fly.
template <typename W>
struct HaloPackKernelT {
  static constexpr int kPhases = 1;

  const SU3Vector<dcomplex>* src = nullptr;  ///< sender's owned source field
  const std::int32_t* slots = nullptr;       ///< owned slot per wire site
  W* wire = nullptr;                         ///< outbound buffer, count*3 elements
  std::int64_t count = 0;                    ///< sites on the wire
  double scale = 1.0;                        ///< fp16 range scale (1.0 otherwise)

  static minisycl::KernelTraits traits() {
    return {.name = "halo-pack", .regs_per_thread = 24, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int) { return 0; }

  template <typename Lane>
  void operator()(Lane& lane, int /*phase*/) const {
    std::int64_t gid = lane.global_id();
    const std::int64_t limit = count * kColors;
    const bool tail = gid >= limit;
    lane.set_masked(tail);
    if (tail) gid = limit - 1;  // clamp: masked lanes replay a valid address
    const std::int64_t site = gid / kColors;
    const int comp = static_cast<int>(gid % kColors);
    const std::int32_t s = lane.load(&slots[site]);
    const dcomplex v = lane.load(&src[s].c[comp]);
    lane.store(&wire[site * kColors + comp], WireCodec<W>::encode(v, scale));
    lane.set_masked(false);
  }
};

/// The exact fp64 wire — the historical pack kernel, unchanged.
using HaloPackKernel = HaloPackKernelT<dcomplex>;

/// Scatter one received wire buffer into the ghost tail of the receiver's
/// extended source field (slots [ghost_base, ghost_base + count)), decoding
/// each wire element back to fp64 on the fly.
template <typename W>
struct HaloUnpackKernelT {
  static constexpr int kPhases = 1;

  const W* wire = nullptr;                   ///< inbound buffer, count*3 elements
  SU3Vector<dcomplex>* field = nullptr;      ///< extended source field base
  std::int64_t ghost_base = 0;               ///< first ghost slot of this message
  std::int64_t count = 0;
  double inv_scale = 1.0;                    ///< fp16 range scale (1.0 otherwise)

  static minisycl::KernelTraits traits() {
    return {.name = "halo-unpack", .regs_per_thread = 16, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int) { return 0; }

  template <typename Lane>
  void operator()(Lane& lane, int /*phase*/) const {
    std::int64_t gid = lane.global_id();
    const std::int64_t limit = count * kColors;
    const bool tail = gid >= limit;
    lane.set_masked(tail);
    if (tail) gid = limit - 1;
    const std::int64_t site = gid / kColors;
    const int comp = static_cast<int>(gid % kColors);
    const W v = lane.load(&wire[gid]);
    lane.store(&field[ghost_base + site].c[comp], WireCodec<W>::decode(v, inv_scale));
    lane.set_masked(false);
  }
};

/// The exact fp64 wire — the historical unpack kernel, unchanged.
using HaloUnpackKernel = HaloUnpackKernelT<dcomplex>;

/// Padded global size for a wire of `count` sites at the given local size.
/// Format-independent: every wire element format keeps one work-item per
/// complex component.
[[nodiscard]] inline std::int64_t halo_global_size(std::int64_t count, int local_size) {
  const std::int64_t items = count * kColors;
  const std::int64_t groups = (items + local_size - 1) / local_size;
  return groups * local_size;
}

}  // namespace milc::multidev
