#include "multidev/sharded_cg.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "core/dslash_ref.hpp"
#include "dsan/check.hpp"
#include "tune/session.hpp"

namespace milc::multidev {

namespace {

// FNV-1a over raw bytes — snapshot integrity checksums (matches the halo
// payload checksum convention of runner.cpp).
std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t field_sum(const ColorField& f) { return fnv1a(f.data(), f.bytes()); }

/// A consistent solver state: everything needed to replay the CG recursion
/// from iteration `iter`.  Snapshots live in host memory that is *not*
/// registered as a corruption target (checkpoint storage is assumed
/// ECC-clean / on stable storage), but each field still carries a byte
/// checksum so a torn restore is detected rather than trusted.
struct Snapshot {
  ColorField x, r, p;
  double rr = 0.0;
  int iter = 0;
  std::uint64_t sum_x = 0, sum_r = 0, sum_p = 0;
  bool valid = false;

  void take(const ColorField& x_, const ColorField& r_, const ColorField& p_, double rr_,
            int iter_) {
    x = x_;
    r = r_;
    p = p_;
    rr = rr_;
    iter = iter_;
    sum_x = field_sum(x);
    sum_r = field_sum(r);
    sum_p = field_sum(p);
    valid = true;
  }

  [[nodiscard]] bool intact() const {
    return valid && field_sum(x) == sum_x && field_sum(r) == sum_r && field_sum(p) == sum_p;
  }
};

faultsim::MemRegion region_of(const ColorField& f) {
  return {reinterpret_cast<std::uint64_t>(f.data()), f.bytes()};
}

/// ABFT tolerance floor per wire format: a reduced wire rounds ghost-site
/// values on every apply, so the Hermiticity identity holds only up to the
/// wire epsilon (times the boundary fraction) instead of fp64 roundoff.
/// The fp64 floor is 0, leaving the configured tolerance untouched.
double wire_abft_floor(SpinorWire w) {
  switch (w) {
    case SpinorWire::fp64: return 0.0;
    case SpinorWire::fp32: return 1e-5;
    case SpinorWire::fp16: return 5e-2;
  }
  return 0.0;
}

}  // namespace

std::string ShardedCgResult::summary() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "sharded-cg: %s%s in %d iters (rel %.3e true %.3e) | applies %d "
                "(recomputes %d, reliable %d) checkpoints %d restarts %d failovers %d | "
                "grid %s | faults %zu recovery %.1f us%s",
                cg.converged ? "converged" : "NOT converged",
                certified ? " (certified)" : "", cg.iterations, cg.relative_residual,
                cg.true_relative_residual, applies, recomputes, reliable_updates,
                checkpoints_taken, restarts, failovers_observed, final_grid.label().c_str(),
                faults.size(), recovery_us,
                cancelled ? " | CANCELLED" : (recovered_all ? "" : " | RECOVERY EXHAUSTED"));
  return buf;
}

ShardedCgSolver::ShardedCgSolver(const Coords& dims, std::uint64_t gauge_seed, double mass,
                                 PartitionGrid grid, ShardedCgConfig cfg)
    : mass_(mass),
      grid_(grid),
      cfg_(std::move(cfg)),
      problem_o_(dims, gauge_seed, Parity::Odd),
      problem_e_(dims, gauge_seed, Parity::Even) {
  // Warm-start adoption (lookup-only; see the header).  The key matches
  // what MultiDeviceRunner::run_tuned records for the even-parity problem.
  if (tune::TuneSession* sess = tune::TuneSession::current(); sess != nullptr) {
    MultiDevRequest mreq;
    mreq.grid = grid_;
    mreq.req.strategy = cfg_.strategy;
    mreq.req.order = cfg_.order;
    mreq.req.local_size = cfg_.local_size;
    mreq.topo = cfg_.topo;
    mreq.wire = cfg_.wire;
    const tune::TuneEntry* hit = sess->lookup(runner_.tune_key(problem_e_, mreq));
    if (hit != nullptr && hit->local_size > 0) cfg_.local_size = hit->local_size;
  }
}

ShardedCgSolver::ShardedCgSolver(int L, std::uint64_t gauge_seed, double mass,
                                 PartitionGrid grid, ShardedCgConfig cfg)
    : ShardedCgSolver(Coords{L, L, L, L}, gauge_seed, mass, grid, std::move(cfg)) {}

bool ShardedCgSolver::run_dslash(DslashProblem& problem, ShardedCgResult* res,
                                 const WireFormat& wire) {
  if (faultsim::Injector::current() == nullptr) {
    // Fault-free: the plain functional protocol, bit-for-bit the exactness-
    // tested path (and bit-for-bit what the identity test's lambda runs).
    runner_.run_functional(problem, grid_, cfg_.strategy, cfg_.order, cfg_.local_size,
                           wire);
    return true;
  }
  MultiDevRequest mreq;
  mreq.grid = grid_;
  mreq.req.strategy = cfg_.strategy;
  mreq.req.order = cfg_.order;
  mreq.req.local_size = cfg_.local_size;
  mreq.link = cfg_.link;
  mreq.topo = cfg_.topo;
  mreq.wire = wire;
  mreq.xcfg = cfg_.xcfg;
  mreq.mode = minisycl::ExecMode::functional;
  mreq.rejoin_grid = rejoin_grid_;
  mreq.rejoin_what = rejoin_what_;
  const MultiDevResult mres = runner_.run(problem, mreq);
  if (res != nullptr) {
    res->recovery_us += mres.recovery_us;
    res->spares_consumed += mres.spares_consumed;
    res->rejoins += mres.rejoins;
    res->capacity_restored += mres.capacity_restored;
    res->rereplicated_bytes += mres.rereplicated_bytes;
    res->rereplication_us += mres.rereplication_us;
    if (!mres.failovers.empty()) {
      res->failovers_observed += static_cast<int>(mres.failovers.size());
      for (const FailoverEvent& f : mres.failovers) {
        res->events.push_back({0, "failover", f.from.label() + " -> " + f.to.label() +
                                                  " (" + f.reason + ")"});
      }
    }
  }
  if (!mres.failovers.empty()) {
    // Adopt the surviving grid for every subsequent apply; the caller
    // restores the last snapshot and replays on it.
    const PartitionGrid before = grid_;
    grid_ = mres.final_grid;
    failover_seen_ = true;
    if (rejoin_grid_.total() > 1 && grid_.total() >= rejoin_grid_.total()) {
      // A live rejoin restored the abandoned capacity mid-solve.
      rejoin_grid_ = PartitionGrid{};
      rejoin_what_.clear();
    } else if (grid_.total() < before.total() && rejoin_grid_.total() <= 1) {
      // First shrink of this solve: aim the heal consults of every
      // subsequent apply back at the grid this apply started on.  Only
      // sticky resource losses ("<what> lost") are healable; attempt-failure
      // shrinks leave no resource to wait for.
      for (const FailoverEvent& f : mres.failovers) {
        const std::size_t pos = f.reason.find(" lost");
        if (pos == std::string::npos) continue;
        rejoin_grid_ = before;
        rejoin_what_ = f.reason.substr(0, pos);
        break;
      }
    }
  }
  return mres.recovered;
}

bool ShardedCgSolver::apply_raw(const ColorField& in, ColorField& out, ShardedCgResult* res,
                                const WireFormat& wire) {
  // out = m^2 in - D_eo D_oe in, both hops through the sharded halo protocol.
  problem_o_.b() = in;
  if (!run_dslash(problem_o_, res, wire)) return false;
  problem_e_.b() = problem_o_.c();
  if (!run_dslash(problem_e_, res, wire)) return false;
  out = in;
  scale(mass_ * mass_, out);
  axpy(-1.0, problem_e_.c(), out);
  return true;
}

void ShardedCgSolver::apply_normal(const ColorField& in, ColorField& out) {
  (void)apply_raw(in, out, nullptr, cfg_.wire);
}

void ShardedCgSolver::apply_reference(const ColorField& in, ColorField& out) const {
  ColorField tmp(problem_o_.geom(), Parity::Odd);
  dslash_reference(problem_o_.view(), problem_o_.neighbors(), in, tmp);
  ColorField deo(problem_e_.geom(), Parity::Even);
  dslash_reference(problem_e_.view(), problem_e_.neighbors(), tmp, deo);
  out = in;
  scale(mass_ * mass_, out);
  axpy(-1.0, deo, out);
}

ShardedCgResult ShardedCgSolver::solve(const ColorField& b, ColorField& x) {
  ShardedCgResult res;
  const LatticeGeom& g = geom();
  faultsim::Injector* inj = faultsim::Injector::current();
  dsan::Recorder* rec = dsan::Recorder::current();
  const std::size_t log_mark = inj != nullptr ? inj->log().size() : 0;
  failover_seen_ = false;

  ColorField r(g, Parity::Even), Ap(g, Parity::Even);
  ColorField pvec(g, Parity::Even);

  // Silent-corruption surface: the live solver vectors plus the staging
  // fields the applies stream through.  Snapshots and the ABFT anchors stay
  // unregistered — that is the trust boundary of the scheme.
  if (inj != nullptr) {
    inj->set_corruption_targets({region_of(x), region_of(r), region_of(pvec),
                                 region_of(Ap), region_of(problem_o_.b()),
                                 region_of(problem_o_.c()), region_of(problem_e_.b()),
                                 region_of(problem_e_.c())});
  }

  // ABFT anchor: z = A_ref r_abft via the serial reference, computed once.
  // A is Hermitian, so every accepted apply y = A v must satisfy
  // <r_abft, y> == <z, v> up to summation roundoff.
  ColorField r_abft, z_abft;
  double abft_norm_r = 0.0, abft_norm_z = 0.0;
  if (cfg_.abft) {
    r_abft = ColorField(g, Parity::Even);
    r_abft.fill_random(cfg_.abft_seed);
    z_abft = ColorField(g, Parity::Even);
    apply_reference(r_abft, z_abft);
    abft_norm_r = norm2(r_abft);
    abft_norm_z = norm2(z_abft);
  }

  // One guarded operator application: recompute (bounded) until the ABFT
  // identity holds.  Returns false on an unrecoverable apply or a persistent
  // mismatch — the solve loop then restores a snapshot.  `exact` forces the
  // fp64 wire regardless of the configured format (reliable updates and the
  // final certification); the ABFT tolerance floor tracks the wire actually
  // used, since a reduced wire legitimately perturbs the identity.
  auto apply_checked = [&](const ColorField& in, ColorField& out,
                           bool exact = false) -> bool {
    const WireFormat wire = exact ? WireFormat{} : cfg_.wire;
    const double rel_tol = std::max(cfg_.abft_rel_tol, wire_abft_floor(wire.spinor));
    for (int attempt = 0;; ++attempt) {
      if (!apply_raw(in, out, &res, wire)) return false;
      ++res.applies;
      if (!cfg_.abft) return true;
      const dcomplex lhs = dot(r_abft, out);
      const dcomplex rhs = dot(z_abft, in);
      const double err = std::hypot(lhs.re - rhs.re, lhs.im - rhs.im);
      const double scale_lr = std::sqrt(abft_norm_r * norm2(out));
      const double scale_zx = std::sqrt(abft_norm_z * norm2(in));
      const double tol = rel_tol * (1.0 + scale_lr + scale_zx);
      if (err <= tol) return true;
      if (attempt >= cfg_.max_recomputes) return false;
      ++res.recomputes;
      char detail[128];
      std::snprintf(detail, sizeof detail, "abft |<r,y>-<z,x>| = %.3e > %.3e", err, tol);
      res.events.push_back({0, "recompute", detail});
    }
  };

  const double b2 = norm2(b);
  if (b2 == 0.0) {
    x.zero();
    res.cg.converged = true;
    res.final_grid = grid_;
    if (inj != nullptr) {
      res.faults = inj->log_since(log_mark);
      inj->set_corruption_targets({});
    }
    return res;
  }
  const double target = cfg_.cg.rel_tol * cfg_.cg.rel_tol * b2;
  // Checkpoint-audit slack: on a reduced wire the recursion residual and a
  // recomputed residual legitimately drift apart by the wire's rounding
  // floor relative to ||b|| — once the recursion residual sinks below that
  // floor, only drift beyond the floor itself indicates corruption.  Exact
  // wire: the floor is 0 and the audit is unchanged.
  const double audit_slack =
      (cfg_.cg.rel_tol + wire_abft_floor(cfg_.wire.spinor)) * std::sqrt(b2);

  Snapshot snap;
  // Async checkpointing: states staged off the critical path, promoted into
  // `snap` (the durable slot restores use) only after the deferred
  // true-residual audit passes.  Restores discard any unaudited staging.
  Snapshot staged;
  double rr = 0.0;
  int it = 0;
  bool fatal = false;
  // Iteration the last audit failure restored to.  A second audit failure
  // against the same snapshot means the snapshot itself captured corrupted
  // recursion state (the flip was below the audit threshold when it was
  // taken) — restoring it again can never help, so the solver escalates to
  // residual replacement instead.
  int last_audit_restore_iter = -1;

  // (Re)initialise the recursion from the current x: r = b - A x, p = r.
  // The apply goes through the exact fp64 wire — on the default format
  // that is bit-for-bit the configured wire; on a reduced format it makes
  // every (re)built residual a *true* residual, which is what the
  // reliable-update exactness argument rests on (docs/WIRE.md §5).
  auto init_state = [&]() -> bool {
    if (!apply_checked(x, Ap, /*exact=*/true)) return false;
    r = b;
    axpy(-1.0, Ap, r);
    pvec = r;
    rr = norm2(r);
    return true;
  };

  // Reliable update (reduced wire only): replace the recursion residual by
  // the exact-wire true residual and restart the search direction.  The
  // reduced wire only ever perturbs *ghost* values of the inner applies, by
  // a relative epsilon of the data on the wire — so between replacements the
  // true residual tracks the recursion residual to O(eps_wire), and each
  // replacement resets the accumulated drift.  Convergence is declared only
  // on an exact residual.
  const bool reduced = cfg_.wire.reduced();
  int last_reliable = 0;
  auto reliable_update = [&](const char* why) -> bool {
    if (!init_state()) return false;
    last_reliable = it;
    ++res.reliable_updates;
    char detail[128];
    std::snprintf(detail, sizeof detail, "%s; exact rel res %.3e", why,
                  std::sqrt(rr / b2));
    res.events.push_back({it, "reliable-update", detail});
    return true;
  };

  auto restore = [&](const char* why) -> bool {
    if (res.restarts >= cfg_.max_restarts) return false;
    ++res.restarts;
    staged.valid = false;  // an unaudited staging never survives a restore
    if (snap.intact()) {
      x = snap.x;
      r = snap.r;
      pvec = snap.p;
      rr = snap.rr;
      it = snap.iter;
      res.events.push_back({it, "restore", std::string(why) + " -> snapshot @ iter " +
                                               std::to_string(snap.iter)});
      if (rec != nullptr) rec->restore(snap.iter, why);
      return true;
    }
    // Snapshot missing or torn: restart the recursion from the current x
    // (the CG iterate is still a valid initial guess even if perturbed).
    res.events.push_back({it, "restore", std::string(why) + " -> reinit (no snapshot)"});
    if (rec != nullptr) rec->restore(it, std::string(why) + " (reinit)");
    return init_state();
  };

  if (!init_state()) {
    // Even the initial residual could not be computed cleanly; one restore
    // pass (post-failover replay) is the only option left.
    if (!restore("init failed")) fatal = true;
  }
  if (!fatal) {
    snap.take(x, r, pvec, rr, it);
    if (rec != nullptr) rec->checkpoint(it, "initial state");
  }
  // A failover during init already replayed the whole apply on the surviving
  // grid inside the runner, so the freshly snapshotted state is consistent.
  failover_seen_ = false;

  while (!fatal && it < cfg_.cg.max_iterations) {
    if (rr <= target) {
      // Exact wire: the recursion residual is trustworthy — converged.
      if (!reduced) break;
      // Reduced wire: the recursion believes it converged, but its residual
      // drifted from the truth by the accumulated wire rounding.  Replace it
      // through the exact fp64 wire and exit only when *that* residual
      // clears the target (docs/WIRE.md §5).
      if (!reliable_update("convergence gate")) {
        if (!restore("reliable update failed")) {
          fatal = true;
          break;
        }
        continue;
      }
      if (rr <= target) break;
      continue;
    }
    // Deadline/cancellation gate, at iteration granularity: a scheduler's
    // apply budget or cancel hook stops the solve cleanly — the iterate in x
    // is still the best-so-far and the residual below is reported honestly.
    if (cfg_.max_applies > 0 && res.applies >= cfg_.max_applies) {
      res.cancelled = true;
      res.events.push_back({it, "cancelled", "apply budget " +
                                                 std::to_string(cfg_.max_applies) +
                                                 " exhausted"});
      break;
    }
    if (cfg_.cancel && cfg_.cancel(it, res.applies)) {
      res.cancelled = true;
      res.events.push_back({it, "cancelled", "cancelled by caller"});
      break;
    }

    // Periodic reliable update: bound the residual drift a reduced wire can
    // accumulate between replacements (never fires on the exact wire).
    if (reduced && cfg_.reliable_interval > 0 &&
        it - last_reliable >= cfg_.reliable_interval) {
      if (!reliable_update("periodic")) {
        if (!restore("reliable update failed")) {
          fatal = true;
          break;
        }
        continue;
      }
    }

    // Deferred audit of a staged snapshot (async mode), one iteration after
    // the staging: the true-residual apply runs inside this iteration's
    // operator-application window on the simulated clock, so its cost is
    // accounted off the critical path (hidden_applies) — at equal cadence
    // the async mode pays no per-checkpoint apply latency.  Only an audited
    // staged state is promoted into the durable slot restores use.
    if (cfg_.async_checkpoint && staged.valid && staged.iter != it) {
      const int audit_mark = res.applies;
      const bool audit_ok = apply_checked(staged.x, Ap);
      res.checkpoint_applies += res.applies - audit_mark;
      res.hidden_applies += res.applies - audit_mark;
      if (!audit_ok) {
        if (!restore("async audit apply failed")) {
          fatal = true;
          break;
        }
        continue;
      }
      ColorField tr = b;
      axpy(-1.0, Ap, tr);
      const double tr2 = norm2(tr);
      if (std::sqrt(tr2) > cfg_.residual_audit_factor * std::sqrt(staged.rr) + audit_slack) {
        char detail[128];
        std::snprintf(detail, sizeof detail, "staged true res %.3e vs recursion %.3e",
                      std::sqrt(tr2 / b2), std::sqrt(staged.rr / b2));
        res.events.push_back({staged.iter, "audit-discard", detail});
        // The staging is a copy of the live recursion, so the live state is
        // suspect too: fall back to the last durable snapshot and replay.
        if (!restore("async residual audit failed")) {
          fatal = true;
          break;
        }
        continue;
      }
      snap = staged;
      staged.valid = false;
      last_audit_restore_iter = -1;
      ++res.checkpoints_taken;
      ++res.snapshots_promoted;
      res.events.push_back({snap.iter, "checkpoint", "promoted (async audit passed)"});
      if (rec != nullptr) {
        rec->snapshot_audit(snap.iter, "true-residual audit passed");
        rec->snapshot_promote(snap.iter, "staged -> durable");
      }
    }

    // Checkpoint cadence.  Synchronous mode audits the recursion against the
    // true residual on the critical path, then snapshots the audited state;
    // async mode only stages a host-side copy here — its audit runs above,
    // during the next iteration's apply window.
    if (cfg_.checkpoint_interval > 0 && it > 0 && it % cfg_.checkpoint_interval == 0 &&
        snap.iter != it && cfg_.async_checkpoint) {
      if (!staged.valid || staged.iter != it) {
        staged.take(x, r, pvec, rr, it);
        ++res.snapshots_staged;
        res.events.push_back({it, "checkpoint-staged",
                              "rel res " + std::to_string(std::sqrt(rr / b2))});
        if (rec != nullptr) {
          rec->checkpoint(it, "staged (async) rel res " +
                                  std::to_string(std::sqrt(rr / b2)));
        }
      }
    } else if (cfg_.checkpoint_interval > 0 && it > 0 &&
               it % cfg_.checkpoint_interval == 0 && snap.iter != it) {
      const int audit_mark = res.applies;
      const bool audit_ok = apply_checked(x, Ap);
      res.checkpoint_applies += res.applies - audit_mark;
      if (!audit_ok) {
        if (!restore("audit apply failed")) {
          fatal = true;
          break;
        }
        continue;
      }
      ColorField tr = b;
      axpy(-1.0, Ap, tr);
      const double tr2 = norm2(tr);
      if (std::sqrt(tr2) > cfg_.residual_audit_factor * std::sqrt(rr) + audit_slack) {
        char detail[128];
        std::snprintf(detail, sizeof detail, "true res %.3e vs recursion %.3e",
                      std::sqrt(tr2 / b2), std::sqrt(rr / b2));
        res.events.push_back({it, "audit-restore", detail});
        if (snap.intact() && snap.iter == last_audit_restore_iter) {
          // The snapshot is provably unable to clear this audit: keep its
          // iterate but rebuild the recursion from scratch (r = b - A x,
          // p = r).  The rebuilt state is consistent by construction, so a
          // finite corruption burst costs at most some lost progress.
          if (res.restarts >= cfg_.max_restarts) {
            fatal = true;
            break;
          }
          ++res.restarts;
          x = snap.x;
          it = snap.iter;
          res.events.push_back({it, "rebuild", "residual replacement @ iter " +
                                                   std::to_string(it)});
          if (!init_state()) {
            fatal = true;
            break;
          }
          snap.take(x, r, pvec, rr, it);
          if (rec != nullptr) rec->checkpoint(it, "post-rebuild");
          last_audit_restore_iter = -1;
          continue;
        }
        if (!restore("residual audit failed")) {
          fatal = true;
          break;
        }
        last_audit_restore_iter = it;
        continue;
      }
      snap.take(x, r, pvec, rr, it);
      last_audit_restore_iter = -1;
      ++res.checkpoints_taken;
      res.events.push_back({it, "checkpoint",
                            "rel res " + std::to_string(std::sqrt(rr / b2))});
      if (rec != nullptr) {
        rec->checkpoint(it, "rel res " + std::to_string(std::sqrt(rr / b2)));
      }
    }

    if (!apply_checked(pvec, Ap)) {
      if (!restore("apply unrecoverable")) {
        fatal = true;
        break;
      }
      continue;
    }
    if (failover_seen_) {
      // The apply completed on the new grid, but iterations since the last
      // snapshot mixed grids mid-flight; replay from the snapshot so the
      // trajectory is the pure post-failover one (bit-reproducible from the
      // seed thanks to the sharded Dslash's grid-independent exactness).
      failover_seen_ = false;
      if (!restore("device-loss failover")) {
        fatal = true;
        break;
      }
      continue;
    }

    const double pAp = dot(pvec, Ap).re;
    if (!(pAp > 0.0)) {
      // A negative curvature direction on an HPD operator means corrupted
      // recursion state, not a property of the system: rebuild via residual
      // replacement while the restart budget lasts.
      if (res.restarts >= cfg_.max_restarts) break;
      ++res.restarts;
      res.events.push_back({it, "rebuild", "pAp breakdown; residual replacement"});
      if (!init_state()) {
        fatal = true;
        break;
      }
      continue;
    }
    const double alpha = rr / pAp;
    axpy(alpha, pvec, x);
    axpy(-alpha, Ap, r);
    const double rr_new = norm2(r);
    xpay(r, rr_new / rr, pvec);
    rr = rr_new;
    ++it;
    if (cfg_.cg.log_every > 0 && it % cfg_.cg.log_every == 0) {
      std::printf("sharded-cg: iter %5d  rel res %.3e\n", it, std::sqrt(rr / b2));
    }
  }

  res.cg.iterations = it;
  res.cg.relative_residual = std::sqrt(rr / b2);
  res.cg.converged = !fatal && rr <= target;
  res.recovered_all = !fatal;

  // True residual through the guarded apply — always on the exact fp64 wire,
  // so a reduced-wire solve is certified against the same answer an exact
  // solve must reach (falls back to the last value on a persistent failure
  // rather than reporting garbage).  A cancelled solve skips it: the caller
  // stopped paying for applies.
  if (res.cancelled) {
    res.cg.true_relative_residual = res.cg.relative_residual;
  } else if (apply_checked(x, Ap, /*exact=*/true)) {
    ColorField tr = b;
    axpy(-1.0, Ap, tr);
    res.cg.true_relative_residual = std::sqrt(norm2(tr) / b2);
    res.certified = res.cg.converged && res.cg.true_relative_residual <= cfg_.cg.rel_tol;
  } else {
    res.cg.true_relative_residual = res.cg.relative_residual;
    res.recovered_all = false;
  }

  res.final_grid = grid_;
  if (inj != nullptr) {
    res.faults = inj->log_since(log_mark);
    inj->set_corruption_targets({});
  }
  return res;
}

std::vector<ksan::SanitizerReport> ShardedCgSolver::dsan_check(const ColorField& b,
                                                               ColorField& x,
                                                               ShardedCgResult* result) {
  const std::string label = "sharded-cg @ " + grid_.label();
  dsan::ScopedRecorder sr;
  ShardedCgResult res = solve(b, x);
  if (result != nullptr) *result = std::move(res);
  return dsan::check_all(sr.rec.trace(), label);
}

}  // namespace milc::multidev
