#include "multidev/partition.hpp"

#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace milc::multidev {

namespace {

/// Visit every site of a hyper-rectangular box in ascending global full
/// index (dimension 0 fastest), with dimension `fix_dim` (when >= 0) pinned
/// to the absolute coordinate `fix_val` instead of spanning the box.
template <typename Fn>
void for_each_box_site(const Coords& origin, const Coords& extents, int fix_dim, int fix_val,
                       Fn&& fn) {
  Coords lo = origin;
  Coords n = extents;
  if (fix_dim >= 0) {
    lo[static_cast<std::size_t>(fix_dim)] = fix_val;
    n[static_cast<std::size_t>(fix_dim)] = 1;
  }
  Coords c{};
  for (int d3 = 0; d3 < n[3]; ++d3) {
    c[3] = lo[3] + d3;
    for (int d2 = 0; d2 < n[2]; ++d2) {
      c[2] = lo[2] + d2;
      for (int d1 = 0; d1 < n[1]; ++d1) {
        c[1] = lo[1] + d1;
        for (int d0 = 0; d0 < n[0]; ++d0) {
          c[0] = lo[0] + d0;
          fn(c);
        }
      }
    }
  }
}

[[nodiscard]] bool in_block(const Shard& sh, const Coords& c) {
  for (int d = 0; d < kNdim; ++d) {
    const int v = c[static_cast<std::size_t>(d)];
    const int lo = sh.origin[static_cast<std::size_t>(d)];
    if (v < lo || v >= lo + sh.local_dims[static_cast<std::size_t>(d)]) return false;
  }
  return true;
}

}  // namespace

int PartitionGrid::rank_of(const Coords& rc) const {
  int r = 0;
  int stride = 1;
  for (int d = 0; d < kNdim; ++d) {
    r += rc[static_cast<std::size_t>(d)] * stride;
    stride *= devices[static_cast<std::size_t>(d)];
  }
  return r;
}

Coords PartitionGrid::coords_of(int rank) const {
  Coords rc{};
  for (int d = 0; d < kNdim; ++d) {
    rc[static_cast<std::size_t>(d)] = rank % devices[static_cast<std::size_t>(d)];
    rank /= devices[static_cast<std::size_t>(d)];
  }
  return rc;
}

PartitionGrid PartitionGrid::along(int dim, int n) {
  PartitionGrid g;
  g.devices[static_cast<std::size_t>(dim)] = n;
  return g;
}

std::string PartitionGrid::label() const {
  std::string s;
  for (int d = 0; d < kNdim; ++d) {
    if (d > 0) s += 'x';
    s += std::to_string(devices[static_cast<std::size_t>(d)]);
  }
  return s;
}

std::int64_t Shard::halo_bytes() const {
  std::int64_t b = 0;
  for (const HaloMsg& m : halo) b += m.bytes();
  return b;
}

Partitioner::Partitioner(const LatticeGeom& geom, const PartitionGrid& grid, Parity target)
    : geom_(geom), grid_(grid), target_(target) {
  Coords local{};
  for (int d = 0; d < kNdim; ++d) {
    const int nd = grid.devices[static_cast<std::size_t>(d)];
    const int ext = geom.extent(d);
    if (nd < 1) {
      throw std::invalid_argument("Partitioner: device count along dim " + std::to_string(d) +
                                  " must be >= 1, got " + std::to_string(nd));
    }
    if (ext % nd != 0) {
      throw std::invalid_argument("Partitioner: extent " + std::to_string(ext) + " of dim " +
                                  std::to_string(d) + " is not divisible by " +
                                  std::to_string(nd) + " devices");
    }
    const int loc = ext / nd;
    if (loc % 2 != 0) {
      throw std::invalid_argument("Partitioner: local extent " + std::to_string(loc) +
                                  " of dim " + std::to_string(d) +
                                  " is odd (checkerboard needs even extents)");
    }
    if (nd > 1 && loc < 2 * kHaloDepth) {
      throw std::invalid_argument(
          "Partitioner: local extent " + std::to_string(loc) + " of split dim " +
          std::to_string(d) + " is < " + std::to_string(2 * kHaloDepth) +
          " — depth-3 ghosts would alias owned sites");
    }
    local[static_cast<std::size_t>(d)] = loc;
  }

  const int nranks = grid.total();
  const Parity source = opposite(target);
  shards_.resize(static_cast<std::size_t>(nranks));
  // Per-rank owned-source map: global eo -> local slot (needed to resolve
  // in-block reads and, in the second pass, the peers' send lists).
  std::vector<std::unordered_map<std::int64_t, std::int32_t>> src_map(
      static_cast<std::size_t>(nranks));

  for (int r = 0; r < nranks; ++r) {
    Shard& sh = shards_[static_cast<std::size_t>(r)];
    sh.rank = r;
    sh.rank_coords = grid.coords_of(r);
    sh.local_dims = local;
    for (int d = 0; d < kNdim; ++d) {
      sh.origin[static_cast<std::size_t>(d)] =
          sh.rank_coords[static_cast<std::size_t>(d)] * local[static_cast<std::size_t>(d)];
    }

    // Owned target and source sites, ascending global full index.
    for_each_box_site(sh.origin, sh.local_dims, -1, 0, [&](const Coords& c) {
      const std::int64_t f = geom.full_index(c);
      if (geom.parity(f) == target) {
        sh.target_eo.push_back(geom.eo_index(f));
      } else {
        const auto slot = static_cast<std::int32_t>(sh.source_eo.size());
        src_map[static_cast<std::size_t>(r)].emplace(geom.eo_index(f), slot);
        sh.source_eo.push_back(geom.eo_index(f));
      }
    });

    // Interior-first target renumbering (stable within each class).
    std::vector<std::int64_t> interior;
    std::vector<std::int64_t> boundary;
    for (const std::int64_t eo : sh.target_eo) {
      const Coords c = geom.coords(geom.full_index_of(target, eo));
      bool all_in = true;
      for (int k = 0; k < kNdim && all_in; ++k) {
        for (const int off : kStencilOffsets) {
          if (!in_block(sh, geom.displace(c, k, off))) {
            all_in = false;
            break;
          }
        }
      }
      (all_in ? interior : boundary).push_back(eo);
    }
    sh.n_interior = static_cast<std::int64_t>(interior.size());
    sh.n_boundary = static_cast<std::int64_t>(boundary.size());
    sh.target_eo = std::move(interior);
    sh.target_eo.insert(sh.target_eo.end(), boundary.begin(), boundary.end());

    // Ghost slabs: per split dimension and face, the source-parity sites of
    // the three planes beyond the block (depths 1..3 — every one is read,
    // see kHaloPlanes).  Only the source-parity half of each plane goes on
    // the wire: a 2x saving over exchanging full planes.
    std::unordered_map<std::int64_t, std::int32_t> ghost_map;
    for (int d = 0; d < kNdim; ++d) {
      if (grid.devices[static_cast<std::size_t>(d)] == 1) continue;
      const int ext = geom.extent(d);
      for (int side = 0; side < 2; ++side) {
        Coords prc = sh.rank_coords;
        const int nd = grid.devices[static_cast<std::size_t>(d)];
        prc[static_cast<std::size_t>(d)] =
            (prc[static_cast<std::size_t>(d)] + (side == 0 ? nd - 1 : 1)) % nd;
        HaloMsg msg;
        msg.dim = d;
        msg.side = side;
        msg.peer = grid.rank_of(prc);
        msg.ghost_base = sh.sources() + sh.n_ghosts;
        for (const int depth : kHaloPlanes) {
          const int lo = sh.origin[static_cast<std::size_t>(d)];
          const int plane = side == 0
                                ? (lo - depth + ext) % ext
                                : (lo + sh.local_dims[static_cast<std::size_t>(d)] - 1 + depth) %
                                      ext;
          for_each_box_site(sh.origin, sh.local_dims, d, plane, [&](const Coords& c) {
            const std::int64_t f = geom.full_index(c);
            if (geom.parity(f) != source) return;
            const auto slot = static_cast<std::int32_t>(sh.sources() + sh.n_ghosts);
            ghost_map.emplace(geom.eo_index(f), slot);
            msg.site_eo.push_back(geom.eo_index(f));
            ++sh.n_ghosts;
          });
        }
        sh.halo.push_back(std::move(msg));
      }
    }

    // Per-target gather table over the extended (owned + ghost) sources.
    sh.neighbors.resize(static_cast<std::size_t>(sh.targets() * kNeighbors));
    const auto& own = src_map[static_cast<std::size_t>(r)];
    for (std::int64_t t = 0; t < sh.targets(); ++t) {
      const Coords c = geom.coords(
          geom.full_index_of(target, sh.target_eo[static_cast<std::size_t>(t)]));
      for (int k = 0; k < kNdim; ++k) {
        for (int l = 0; l < kNlinks; ++l) {
          const Coords nc = geom.displace(c, k, kStencilOffsets[static_cast<std::size_t>(l)]);
          const std::int64_t ne = geom.eo_index(geom.full_index(nc));
          const auto it = in_block(sh, nc) ? own.find(ne) : ghost_map.find(ne);
          // Every off-block read was enumerated by a slab above; a miss here
          // would be a partitioner bug, so fail loudly.
          if (it == (in_block(sh, nc) ? own.end() : ghost_map.end())) {
            throw std::logic_error("Partitioner: unresolved stencil read");
          }
          sh.neighbors[static_cast<std::size_t>(t * kNeighbors + k * kNlinks + l)] = it->second;
        }
      }
    }
  }

  // Second pass: fill each message's sender-side gather list by looking the
  // wire sites up in the owner's source map.
  for (Shard& sh : shards_) {
    for (HaloMsg& msg : sh.halo) {
      msg.send_slots.reserve(msg.site_eo.size());
      const auto& owner = src_map[static_cast<std::size_t>(msg.peer)];
      for (const std::int64_t eo : msg.site_eo) {
        const auto it = owner.find(eo);
        if (it == owner.end()) {
          throw std::logic_error("Partitioner: ghost site not owned by its peer");
        }
        msg.send_slots.push_back(it->second);
      }
    }
  }
}

std::int64_t Partitioner::total_ghosts() const {
  std::int64_t n = 0;
  for (const Shard& sh : shards_) n += sh.n_ghosts;
  return n;
}

}  // namespace milc::multidev
