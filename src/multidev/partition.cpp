#include "multidev/partition.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "tune/session.hpp"

namespace milc::multidev {

namespace {

/// Visit every site of a hyper-rectangular box in ascending global full
/// index (dimension 0 fastest), with dimension `fix_dim` (when >= 0) pinned
/// to the absolute coordinate `fix_val` instead of spanning the box.
template <typename Fn>
void for_each_box_site(const Coords& origin, const Coords& extents, int fix_dim, int fix_val,
                       Fn&& fn) {
  Coords lo = origin;
  Coords n = extents;
  if (fix_dim >= 0) {
    lo[static_cast<std::size_t>(fix_dim)] = fix_val;
    n[static_cast<std::size_t>(fix_dim)] = 1;
  }
  Coords c{};
  for (int d3 = 0; d3 < n[3]; ++d3) {
    c[3] = lo[3] + d3;
    for (int d2 = 0; d2 < n[2]; ++d2) {
      c[2] = lo[2] + d2;
      for (int d1 = 0; d1 < n[1]; ++d1) {
        c[1] = lo[1] + d1;
        for (int d0 = 0; d0 < n[0]; ++d0) {
          c[0] = lo[0] + d0;
          fn(c);
        }
      }
    }
  }
}

[[nodiscard]] bool in_block(const Shard& sh, const Coords& c) {
  for (int d = 0; d < kNdim; ++d) {
    const int v = c[static_cast<std::size_t>(d)];
    const int lo = sh.origin[static_cast<std::size_t>(d)];
    if (v < lo || v >= lo + sh.local_dims[static_cast<std::size_t>(d)]) return false;
  }
  return true;
}

}  // namespace

int PartitionGrid::rank_of(const Coords& rc) const {
  int r = 0;
  int stride = 1;
  for (int d = 0; d < kNdim; ++d) {
    r += rc[static_cast<std::size_t>(d)] * stride;
    stride *= devices[static_cast<std::size_t>(d)];
  }
  return r;
}

Coords PartitionGrid::coords_of(int rank) const {
  Coords rc{};
  for (int d = 0; d < kNdim; ++d) {
    rc[static_cast<std::size_t>(d)] = rank % devices[static_cast<std::size_t>(d)];
    rank /= devices[static_cast<std::size_t>(d)];
  }
  return rc;
}

PartitionGrid PartitionGrid::along(int dim, int n) {
  PartitionGrid g;
  g.devices[static_cast<std::size_t>(dim)] = n;
  return g;
}

std::string PartitionGrid::label() const {
  std::string s;
  for (int d = 0; d < kNdim; ++d) {
    if (d > 0) s += 'x';
    s += std::to_string(devices[static_cast<std::size_t>(d)]);
  }
  return s;
}

bool PartitionGrid::from_label(const std::string& label, PartitionGrid& out) {
  Coords devs{};
  int d = 0;
  int value = -1;
  for (const char ch : label) {
    if (ch >= '0' && ch <= '9') {
      value = (value < 0 ? 0 : value * 10) + (ch - '0');
    } else if (ch == 'x') {
      if (value <= 0 || d >= kNdim) return false;
      devs[static_cast<std::size_t>(d++)] = value;
      value = -1;
    } else {
      return false;
    }
  }
  if (value <= 0 || d != kNdim - 1) return false;
  devs[static_cast<std::size_t>(d)] = value;
  out.devices = devs;
  return true;
}

std::int64_t Shard::halo_bytes() const {
  std::int64_t b = 0;
  for (const HaloMsg& m : halo) b += m.bytes();
  return b;
}

std::int64_t Shard::halo_wire_bytes(SpinorWire w) const {
  std::int64_t b = 0;
  for (const HaloMsg& m : halo) b += m.wire_bytes(w);
  return b;
}

std::string partition_error(const LatticeGeom& geom, const PartitionGrid& grid) {
  for (int d = 0; d < kNdim; ++d) {
    const int nd = grid.devices[static_cast<std::size_t>(d)];
    const int ext = geom.extent(d);
    if (nd < 1) {
      return "Partitioner: device count along dim " + std::to_string(d) +
             " must be >= 1, got " + std::to_string(nd);
    }
    if (ext % nd != 0) {
      return "Partitioner: extent " + std::to_string(ext) + " of dim " + std::to_string(d) +
             " is not divisible by " + std::to_string(nd) + " devices";
    }
    const int loc = ext / nd;
    if (loc % 2 != 0) {
      return "Partitioner: local extent " + std::to_string(loc) + " of dim " +
             std::to_string(d) + " is odd (checkerboard needs even extents)";
    }
    if (nd > 1 && loc < 2 * kHaloDepth) {
      return "Partitioner: local extent " + std::to_string(loc) + " of split dim " +
             std::to_string(d) + " is < " + std::to_string(2 * kHaloDepth) +
             " — depth-3 ghosts would alias owned sites";
    }
  }
  return {};
}

Partitioner::Partitioner(const LatticeGeom& geom, const PartitionGrid& grid, Parity target)
    : geom_(geom), grid_(grid), target_(target) {
  if (const std::string err = partition_error(geom, grid); !err.empty()) {
    throw std::invalid_argument(err);
  }
  Coords local{};
  for (int d = 0; d < kNdim; ++d) {
    local[static_cast<std::size_t>(d)] =
        geom.extent(d) / grid.devices[static_cast<std::size_t>(d)];
  }

  const int nranks = grid.total();
  const Parity source = opposite(target);
  shards_.resize(static_cast<std::size_t>(nranks));
  // Per-rank owned-source map: global eo -> local slot (needed to resolve
  // in-block reads and, in the second pass, the peers' send lists).
  std::vector<std::unordered_map<std::int64_t, std::int32_t>> src_map(
      static_cast<std::size_t>(nranks));

  for (int r = 0; r < nranks; ++r) {
    Shard& sh = shards_[static_cast<std::size_t>(r)];
    sh.rank = r;
    sh.rank_coords = grid.coords_of(r);
    sh.local_dims = local;
    for (int d = 0; d < kNdim; ++d) {
      sh.origin[static_cast<std::size_t>(d)] =
          sh.rank_coords[static_cast<std::size_t>(d)] * local[static_cast<std::size_t>(d)];
    }

    // Owned target and source sites, ascending global full index.
    for_each_box_site(sh.origin, sh.local_dims, -1, 0, [&](const Coords& c) {
      const std::int64_t f = geom.full_index(c);
      if (geom.parity(f) == target) {
        sh.target_eo.push_back(geom.eo_index(f));
      } else {
        const auto slot = static_cast<std::int32_t>(sh.source_eo.size());
        src_map[static_cast<std::size_t>(r)].emplace(geom.eo_index(f), slot);
        sh.source_eo.push_back(geom.eo_index(f));
      }
    });

    // Interior-first target renumbering (stable within each class).
    std::vector<std::int64_t> interior;
    std::vector<std::int64_t> boundary;
    for (const std::int64_t eo : sh.target_eo) {
      const Coords c = geom.coords(geom.full_index_of(target, eo));
      bool all_in = true;
      for (int k = 0; k < kNdim && all_in; ++k) {
        for (const int off : kStencilOffsets) {
          if (!in_block(sh, geom.displace(c, k, off))) {
            all_in = false;
            break;
          }
        }
      }
      (all_in ? interior : boundary).push_back(eo);
    }
    sh.n_interior = static_cast<std::int64_t>(interior.size());
    sh.n_boundary = static_cast<std::int64_t>(boundary.size());
    sh.target_eo = std::move(interior);
    sh.target_eo.insert(sh.target_eo.end(), boundary.begin(), boundary.end());

    // Ghost slabs: per split dimension and face, the source-parity sites of
    // the three planes beyond the block (depths 1..3 — every one is read,
    // see kHaloPlanes).  Only the source-parity half of each plane goes on
    // the wire: a 2x saving over exchanging full planes.
    std::unordered_map<std::int64_t, std::int32_t> ghost_map;
    for (int d = 0; d < kNdim; ++d) {
      if (grid.devices[static_cast<std::size_t>(d)] == 1) continue;
      const int ext = geom.extent(d);
      for (int side = 0; side < 2; ++side) {
        Coords prc = sh.rank_coords;
        const int nd = grid.devices[static_cast<std::size_t>(d)];
        prc[static_cast<std::size_t>(d)] =
            (prc[static_cast<std::size_t>(d)] + (side == 0 ? nd - 1 : 1)) % nd;
        HaloMsg msg;
        msg.dim = d;
        msg.side = side;
        msg.peer = grid.rank_of(prc);
        msg.ghost_base = sh.sources() + sh.n_ghosts;
        for (const int depth : kHaloPlanes) {
          const int lo = sh.origin[static_cast<std::size_t>(d)];
          const int plane = side == 0
                                ? (lo - depth + ext) % ext
                                : (lo + sh.local_dims[static_cast<std::size_t>(d)] - 1 + depth) %
                                      ext;
          for_each_box_site(sh.origin, sh.local_dims, d, plane, [&](const Coords& c) {
            const std::int64_t f = geom.full_index(c);
            if (geom.parity(f) != source) return;
            const auto slot = static_cast<std::int32_t>(sh.sources() + sh.n_ghosts);
            ghost_map.emplace(geom.eo_index(f), slot);
            msg.site_eo.push_back(geom.eo_index(f));
            ++sh.n_ghosts;
          });
        }
        sh.halo.push_back(std::move(msg));
      }
    }

    // Per-target gather table over the extended (owned + ghost) sources.
    sh.neighbors.resize(static_cast<std::size_t>(sh.targets() * kNeighbors));
    const auto& own = src_map[static_cast<std::size_t>(r)];
    for (std::int64_t t = 0; t < sh.targets(); ++t) {
      const Coords c = geom.coords(
          geom.full_index_of(target, sh.target_eo[static_cast<std::size_t>(t)]));
      for (int k = 0; k < kNdim; ++k) {
        for (int l = 0; l < kNlinks; ++l) {
          const Coords nc = geom.displace(c, k, kStencilOffsets[static_cast<std::size_t>(l)]);
          const std::int64_t ne = geom.eo_index(geom.full_index(nc));
          const auto it = in_block(sh, nc) ? own.find(ne) : ghost_map.find(ne);
          // Every off-block read was enumerated by a slab above; a miss here
          // would be a partitioner bug, so fail loudly.
          if (it == (in_block(sh, nc) ? own.end() : ghost_map.end())) {
            throw std::logic_error("Partitioner: unresolved stencil read");
          }
          sh.neighbors[static_cast<std::size_t>(t * kNeighbors + k * kNlinks + l)] = it->second;
        }
      }
    }
  }

  // Second pass: fill each message's sender-side gather list by looking the
  // wire sites up in the owner's source map.
  for (Shard& sh : shards_) {
    for (HaloMsg& msg : sh.halo) {
      msg.send_slots.reserve(msg.site_eo.size());
      const auto& owner = src_map[static_cast<std::size_t>(msg.peer)];
      for (const std::int64_t eo : msg.site_eo) {
        const auto it = owner.find(eo);
        if (it == owner.end()) {
          throw std::logic_error("Partitioner: ghost site not owned by its peer");
        }
        msg.send_slots.push_back(it->second);
      }
    }
  }
}

std::int64_t Partitioner::total_ghosts() const {
  std::int64_t n = 0;
  for (const Shard& sh : shards_) n += sh.n_ghosts;
  return n;
}

GridScore score_grid(const LatticeGeom& geom, const PartitionGrid& grid,
                     const gpusim::NodeTopology& topo, const WireFormat& wire) {
  if (grid.total() > topo.total_devices()) {
    throw std::invalid_argument("score_grid: grid needs " + std::to_string(grid.total()) +
                                " devices but the topology has " +
                                std::to_string(topo.total_devices()));
  }
  if (const std::string err = partition_error(geom, grid); !err.empty()) {
    throw std::invalid_argument(err);
  }

  GridScore sc;
  sc.grid = grid;

  Coords local{};
  std::int64_t local_volume = 1;
  for (int d = 0; d < kNdim; ++d) {
    local[static_cast<std::size_t>(d)] =
        geom.extent(d) / grid.devices[static_cast<std::size_t>(d)];
    local_volume *= local[static_cast<std::size_t>(d)];
  }

  // One directed slab per (rank, split dim, side): 3 planes, source-parity
  // half of the face cross-section, one colour vector per site at the wire
  // format's encoded width (48 / 24 / 12 B — docs/WIRE.md §2) — exactly
  // what the Partitioner enumerates, computed without building it.
  const auto slab_bytes = [&](int d) {
    const std::int64_t cross = local_volume / local[static_cast<std::size_t>(d)];
    return static_cast<std::int64_t>(kHaloPlanes.size()) * (cross / 2) *
           spinor_site_bytes(wire.spinor);
  };

  const int nranks = grid.total();
  std::vector<double> dev_egress_us(static_cast<std::size_t>(nranks), 0.0);
  // Fabric aggregates keyed by directed (src, dst) device pair.
  struct Agg {
    int src = 0;
    int dst = 0;
    std::int64_t payload = 0;
    int frames = 0;
  };
  std::vector<Agg> aggs;

  for (int r = 0; r < nranks; ++r) {
    const Coords rc = grid.coords_of(r);
    for (int d = 0; d < kNdim; ++d) {
      const int nd = grid.devices[static_cast<std::size_t>(d)];
      if (nd == 1) continue;
      const std::int64_t bytes = slab_bytes(d);
      for (int side = 0; side < 2; ++side) {
        Coords prc = rc;
        prc[static_cast<std::size_t>(d)] =
            (prc[static_cast<std::size_t>(d)] + (side == 0 ? nd - 1 : 1)) % nd;
        const int peer = grid.rank_of(prc);
        if (topo.same_node(r, peer)) {
          sc.intra_bytes += bytes;
          dev_egress_us[static_cast<std::size_t>(r)] +=
              topo.intra.nvlink_latency_us +
              static_cast<double>(bytes) / (topo.intra.nvlink_bw_gbs * 1e3);
        } else {
          sc.inter_bytes += bytes;
          Agg* agg = nullptr;
          for (Agg& a : aggs) {
            if (a.src == r && a.dst == peer) {
              agg = &a;
              break;
            }
          }
          if (agg == nullptr) {
            aggs.push_back(Agg{r, peer, 0, 0});
            agg = &aggs.back();
          }
          agg->payload += bytes;
          agg->frames += 1;
        }
      }
    }
  }

  sc.inter_pairs = static_cast<int>(aggs.size());
  std::vector<double> node_egress_us(static_cast<std::size_t>(topo.nodes), 0.0);
  const gpusim::FabricModel& f = topo.fabric;
  const double eff_bw = std::min(f.nic_bw_gbs, f.injection_rate_gbs);
  for (const Agg& a : aggs) {
    const std::int64_t wire = a.payload + a.frames * f.frame_header_bytes;
    node_egress_us[static_cast<std::size_t>(topo.node_of(a.src))] +=
        f.nic_latency_us + 2.0 * f.switch_latency_us +
        static_cast<double>(wire) / (eff_bw * 1e3);
  }

  double worst_dev = 0.0;
  for (const double t : dev_egress_us) worst_dev = std::max(worst_dev, t);
  double worst_node = 0.0;
  for (const double t : node_egress_us) worst_node = std::max(worst_node, t);
  sc.cost_us = worst_dev + worst_node;
  return sc;
}

std::vector<PartitionGrid> enumerate_grids(const LatticeGeom& geom, int devices) {
  std::vector<PartitionGrid> out;
  for (int d0 = 1; d0 <= devices; ++d0) {
    if (devices % d0 != 0) continue;
    const int n1 = devices / d0;
    for (int d1 = 1; d1 <= n1; ++d1) {
      if (n1 % d1 != 0) continue;
      const int n2 = n1 / d1;
      for (int d2 = 1; d2 <= n2; ++d2) {
        if (n2 % d2 != 0) continue;
        PartitionGrid g;
        g.devices = Coords{d0, d1, d2, n2 / d2};
        if (partition_error(geom, g).empty()) out.push_back(g);
      }
    }
  }
  return out;
}

tune::TuneKey grid_tune_key(const LatticeGeom& geom, const gpusim::NodeTopology& topo,
                            const WireFormat& wire) {
  tune::TuneKey key;
  key.arch = tune::wire_fingerprint(topo);
  // Grid cost counts face bytes, which are parity-independent; "/even" is
  // the conventional signature for parity-free decisions.
  key.geom = tune::geom_signature(geom.extent(0), geom.extent(1), geom.extent(2),
                                  geom.extent(3), /*even_target=*/true);
  key.kernel = "grid";
  key.config = "cheapest";
  // The wire format rides the grammar's existing prec/recon fields; the
  // fp64/recon-18 default maps to the field defaults ("fp64", "-") so every
  // pre-wire-format cache entry keeps its canonical string.
  key.prec = wire_prec_field(wire);
  key.recon = wire_recon_field(wire);
  key.devices = topo.total_devices();
  key.topo = tune::topo_signature(topo.nodes, topo.devices_per_node);
  return key;
}

PartitionGrid choose_grid(const LatticeGeom& geom, const gpusim::NodeTopology& topo,
                          const WireFormat& wire) {
  const std::vector<PartitionGrid> candidates = enumerate_grids(geom, topo.total_devices());
  if (candidates.empty()) {
    throw std::invalid_argument("choose_grid: no grid of " +
                                std::to_string(topo.total_devices()) +
                                " devices can partition this lattice");
  }

  tune::TuneSession* sess = tune::TuneSession::current();
  tune::TuneKey key;
  if (sess != nullptr) {
    key = grid_tune_key(geom, topo, wire);
    if (const tune::TuneEntry* hit = sess->lookup(key); hit != nullptr) {
      PartitionGrid g;
      if (!PartitionGrid::from_label(hit->grid, g) || !partition_error(geom, g).empty()) {
        throw tune::ReplayMismatch(key.canonical() + " (grid '" + hit->grid + "')",
                                   hit->per_iter_us, 0.0);
      }
      // Warm start: one re-score instead of the full enumeration sweep —
      // and the honesty rule on its predicted cost.
      sess->verify(key, *hit, score_grid(geom, g, topo, wire).cost_us);
      return g;
    }
  }

  // Strict < keeps the first of equal-cost candidates.  enumerate_grids
  // emits grids in ascending lexicographic order, so a symmetric tie (the
  // same arithmetic gives bit-identical costs) resolves to splitting the
  // later dimensions — t first, then z — the repo's strong_grid convention.
  const PartitionGrid* best = nullptr;
  double best_cost = 0.0;
  for (const PartitionGrid& g : candidates) {
    const double cost = score_grid(geom, g, topo, wire).cost_us;
    if (best == nullptr || cost < best_cost) {
      best = &g;
      best_cost = cost;
    }
  }
  if (sess != nullptr) {
    sess->note_explored(candidates.size());
    tune::TuneEntry entry;
    entry.grid = best->label();
    entry.per_iter_us = best_cost;
    sess->record(key, entry);
  }
  return *best;
}

}  // namespace milc::multidev
