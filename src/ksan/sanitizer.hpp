// sanitizer.hpp — ksan, a compute-sanitizer-style checking executor.
//
// The phase model of minisycl (DESIGN.md §5) makes the happens-before
// relation of a kernel launch explicit: a group barrier is a phase boundary,
// so two accesses from different work-items of the *same* group are ordered
// iff they fall in different phases, and accesses from different groups are
// never ordered.  ksan replays a launch through SanitizeLane — the checking
// sibling of FastLane/TraceLane, same Lane-policy interface, so every
// shipped kernel template instantiates over it unchanged — and validates,
// per access, against
//   * a shadow-memory map (8-byte cells) for data races (racecheck),
//   * the live/freed USM Registry regions plus caller-declared field extents
//     for out-of-bounds and use-after-free (memcheck),
//   * a per-group byte bitmap for read-before-write of local-accessor bytes
//     (initcheck),
//   * warp-merged access positions for perf lints (coalescing, shared-memory
//     bank conflicts, branch divergence) using the exact gpusim coalescer /
//     bank model, so the lints agree with what the simulator charges.
//
// Invalid accesses are *suppressed* (loads return zero, stores are dropped),
// so sanitizing a deliberately broken kernel never touches memory it should
// not — the same contract as running under a real compute-sanitizer with a
// trap handler.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gpusim/coalescer.hpp"
#include "ksan/report.hpp"
#include "minisycl/executor.hpp"

namespace ksan {

/// Half-open byte range of valid global memory.
struct Region {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
};

/// Declare the extent of a typed array as a valid region.
template <typename T>
[[nodiscard]] Region region_of(const T* p, std::size_t count) {
  return {reinterpret_cast<std::uint64_t>(p), count * sizeof(T)};
}

struct SanitizeConfig {
  /// Seed the valid/freed region sets from the USM Registry (live and freed
  /// allocations at launch time).
  bool use_registry = true;
  /// Additional valid regions (fields owned by std::vector etc. — declared
  /// by the launching driver with exact extents).
  std::vector<Region> regions;
  bool perf_lints = true;
  /// Offences recorded verbatim (counts are always exact).
  int max_records = 16;
  /// Uncoalesced lint fires when a warp op needs more than `coalesce_slack`
  /// x the ideal sector count (2.0 tolerates the gauge layout's constant
  /// 2-word gap, which the paper considers coalesced, §IV-D7).
  double coalesce_slack = 2.0;
  // Memory geometry (A100 defaults, matching gpusim::MachineModel).
  int warp_size = 32;
  int sector_bytes = 32;
  int shared_banks = 32;
  int shared_bank_bytes = 4;
};

/// Per-launch checking state.  Non-template: all kernel-type knowledge stays
/// in SanitizeLane / sanitize_launch.
class LaunchContext {
 public:
  LaunchContext(const minisycl::LaunchSpec& spec, std::string name, SanitizeConfig cfg);

  void begin_group(std::int64_t group);
  void end_group();

  /// Validate one global access.  Returns true iff the caller should perform
  /// the real access (unmasked and inside a live region).
  bool global_access(const minisycl::ItemIds& ids, int phase, AccessKind kind, const void* p,
                     std::uint32_t size, bool masked, int op_pos);

  /// Validate one local-memory access (byte offset).  Returns true iff the
  /// caller should perform it (unmasked and within the local_mem request).
  bool shared_access(const minisycl::ItemIds& ids, int phase, AccessKind kind,
                     std::int64_t offset, std::uint32_t size, bool masked, int op_pos);

  /// Record a branch decision / arm test for the divergence lint.
  void branch_event(const minisycl::ItemIds& ids, int phase, std::uint32_t target, bool masked,
                    int op_pos);

  [[nodiscard]] SanitizerReport finish();

 private:
  /// Shadow state of one 8-byte memory cell: the most recent non-atomic
  /// write, the most recent atomic, and the readers of the newest epoch.
  /// Each entry carries a byte mask of the bytes it actually touched, so
  /// sub-word accesses (the fp32/fp16 wire codecs store 8- and 4-byte
  /// elements) only conflict when their byte ranges genuinely overlap —
  /// adjacent elements sharing a cell are not a race.
  struct CellState {
    std::int64_t w_item = -1;
    std::int64_t w_group = -1;
    int w_phase = -1;
    std::uint8_t w_mask = 0;
    std::int64_t a_item = -1;
    std::int64_t a_group = -1;
    int a_phase = -1;
    std::uint8_t a_mask = 0;
    int r_phase = -1;
    int r_count = 0;
    bool r_many = false;
    std::uint8_t r_many_mask = 0;
    std::int64_t r_item[2] = {-1, -1};
    std::int64_t r_group[2] = {-1, -1};
    std::uint8_t r_mask[2] = {0, 0};
  };

  /// One warp instruction being reassembled from lane events (per group).
  struct WarpOp {
    std::uint8_t space = 0;  ///< 1 global, 2 shared, 3 branch
    AccessKind kind = AccessKind::Load;
    bool any_store = false;
    std::int64_t item = -1;  ///< exemplar active lane (reporting)
    int phase = 0;
    std::uint32_t target0 = 0;
    bool divergent = false;
    bool has_target = false;
    std::vector<gpusim::LaneAccess> accesses;
  };

  enum class RegionStatus { Valid, Freed, Unknown };
  [[nodiscard]] RegionStatus classify(std::uint64_t addr, std::uint32_t size) const;

  void record(Offence o);
  void count(Category c) { ++report_.counts[static_cast<std::size_t>(c)]; }
  void check_cell(std::unordered_map<std::uint64_t, CellState>& cells, std::uint64_t cell,
                  const minisycl::ItemIds& ids, int phase, AccessKind kind, bool shared,
                  std::uint64_t addr, std::uint32_t size);
  void note_warp_op(std::uint8_t space, const minisycl::ItemIds& ids, int phase,
                    AccessKind kind, std::uint64_t addr, std::uint32_t size, bool masked,
                    int op_pos);
  void flush_warp_ops();

  SanitizeConfig cfg_;
  SanitizerReport report_;
  std::map<std::uint64_t, std::uint64_t> live_;   ///< base -> bytes
  std::map<std::uint64_t, std::uint64_t> freed_;  ///< base -> bytes
  std::unordered_map<std::uint64_t, CellState> global_cells_;
  std::unordered_map<std::uint64_t, CellState> shared_cells_;  ///< reset per group
  std::vector<std::uint8_t> shared_init_;                      ///< reset per group
  std::unordered_map<std::uint64_t, WarpOp> warp_ops_;         ///< reset per group
  std::int64_t group_ = -1;
};

/// The checking Lane policy.  Interface-identical to FastLane/TraceLane so
/// the one-kernel-source contract holds: `kernel(lane, phase)` instantiates
/// over SanitizeLane with no per-kernel forks.
class SanitizeLane {
 public:
  SanitizeLane(const minisycl::ItemIds& ids, std::byte* local_mem, LaunchContext* ctx,
               int phase)
      : ids_(ids), local_(local_mem), ctx_(ctx), phase_(phase) {}

  [[nodiscard]] std::int64_t global_id() const { return ids_.global_id; }
  [[nodiscard]] int local_id() const { return ids_.local_id; }
  [[nodiscard]] std::int64_t group_id() const { return ids_.group_id; }
  [[nodiscard]] int local_range() const { return ids_.local_range; }

  template <typename T>
  [[nodiscard]] T load(const T* p) {
    if (!ctx_->global_access(ids_, phase_, AccessKind::Load, p, sizeof(T), masked_, pos_++)) {
      return T{};
    }
    return *p;
  }
  template <typename T>
  void store(T* p, const T& v) {
    if (ctx_->global_access(ids_, phase_, AccessKind::Store, p, sizeof(T), masked_, pos_++)) {
      *p = v;
    }
  }
  void atomic_add(double* p, double v) {
    if (ctx_->global_access(ids_, phase_, AccessKind::Atomic, p, sizeof(double), masked_,
                            pos_++)) {
      *p += v;
    }
  }

  template <typename T>
  [[nodiscard]] T shared_load(int idx) {
    const std::int64_t off = static_cast<std::int64_t>(idx) * static_cast<std::int64_t>(sizeof(T));
    if (!ctx_->shared_access(ids_, phase_, AccessKind::Load, off, sizeof(T), masked_, pos_++)) {
      return T{};
    }
    T v;
    std::memcpy(&v, local_ + off, sizeof(T));
    return v;
  }
  template <typename T>
  void shared_store(int idx, const T& v) {
    const std::int64_t off = static_cast<std::int64_t>(idx) * static_cast<std::int64_t>(sizeof(T));
    if (ctx_->shared_access(ids_, phase_, AccessKind::Store, off, sizeof(T), masked_, pos_++)) {
      std::memcpy(local_ + off, &v, sizeof(T));
    }
  }

  void flops(int) {}
  void branch(int chosen_path) {
    ctx_->branch_event(ids_, phase_, static_cast<std::uint32_t>(chosen_path), masked_, pos_++);
    path_ = static_cast<std::uint8_t>(chosen_path);
  }
  void branch_test(bool taken) {
    ctx_->branch_event(ids_, phase_, taken ? 1u : 0u, masked_, pos_++);
  }
  void set_path(int path) { path_ = static_cast<std::uint8_t>(path); }
  void converge() { path_ = 0; }
  void set_masked(bool m) { masked_ = m; }
  [[nodiscard]] bool masked() const { return masked_; }

 private:
  minisycl::ItemIds ids_;
  std::byte* local_;
  LaunchContext* ctx_;
  int phase_;
  int pos_ = 0;  ///< per-(item, phase) op position — warp-aligned by the
                 ///< executor's event-stream alignment invariant
  std::uint8_t path_ = 0;
  bool masked_ = false;
};

/// Sanitized launch mode: replay `kernel` over the nd_range exactly like
/// execute_functional (same side effects for valid accesses) while checking
/// every access.  Usable with any PhasedKernel — the same kernel objects the
/// queue submits.
template <minisycl::PhasedKernel Kernel>
[[nodiscard]] SanitizerReport sanitize_launch(const minisycl::LaunchSpec& spec,
                                              const Kernel& kernel, SanitizeConfig cfg = {},
                                              std::string name = {}) {
  assert(spec.local_size > 0 && spec.global_size % spec.local_size == 0);
  if (name.empty()) name = spec.traits.name;
  LaunchContext ctx(spec, std::move(name), std::move(cfg));
  const std::int64_t groups = spec.global_size / spec.local_size;
  std::vector<std::byte> local(static_cast<std::size_t>(spec.shared_bytes));
  for (std::int64_t g = 0; g < groups; ++g) {
    ctx.begin_group(g);
    for (int phase = 0; phase < spec.num_phases; ++phase) {
      for (int t = 0; t < spec.local_size; ++t) {
        minisycl::ItemIds ids{g * spec.local_size + t, t, g, spec.local_size};
        SanitizeLane lane(ids, local.data(), &ctx, phase);
        kernel(lane, phase);
      }
    }
    ctx.end_group();
  }
  return ctx.finish();
}

}  // namespace ksan
