#include "ksan/report.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace ksan {

const char* to_string(Category c) {
  switch (c) {
    case Category::GlobalRace: return "global-race";
    case Category::SharedHazard: return "intra-phase-hazard";
    case Category::GlobalOOB: return "global-out-of-bounds";
    case Category::GlobalUseAfterFree: return "global-use-after-free";
    case Category::SharedOOB: return "shared-out-of-bounds";
    case Category::UninitSharedRead: return "uninit-shared-read";
    case Category::CrossDeviceRace: return "cross-device-race";
    case Category::UnmatchedMessage: return "unmatched-message";
    case Category::GhostReadBeforeUnpack: return "ghost-read-before-unpack";
    case Category::WireBufferReuse: return "wire-buffer-reuse";
    case Category::ScheduleDeadlock: return "schedule-deadlock";
    case Category::UsmLeak: return "usm-leak";
    case Category::UncoalescedAccess: return "lint-uncoalesced";
    case Category::SharedBankConflict: return "lint-bank-conflict";
    case Category::DivergentBranch: return "lint-divergent-branch";
    case Category::ChecksumSkipped: return "lint-checksum-skipped";
    case Category::UnaggregatedFrames: return "lint-unaggregated-frames";
    case Category::BoundaryBeforeUnpack: return "lint-boundary-before-unpack";
    case Category::CheckpointInWindow: return "lint-checkpoint-in-window";
    case Category::RejoinBeforeResync: return "lint-rejoin-before-resync";
    case Category::SnapshotPromotedBeforeAudit: return "lint-promote-before-audit";
    case Category::StaleReplicaRead: return "lint-stale-replica-read";
  }
  return "unknown";
}

const char* to_string(AccessKind k) {
  switch (k) {
    case AccessKind::Load: return "load";
    case AccessKind::Store: return "store";
    case AccessKind::Atomic: return "atomic";
  }
  return "access";
}

std::string Offence::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s: %s of %u B at 0x%llx by item %lld (group %lld, phase %d)",
                to_string(category), to_string(kind), size,
                static_cast<unsigned long long>(addr), static_cast<long long>(item),
                static_cast<long long>(group), phase);
  std::string out = buf;
  if (other_item >= 0) {
    std::snprintf(buf, sizeof(buf), " conflicts with %s by item %lld (phase %d)",
                  to_string(other_kind), static_cast<long long>(other_item), other_phase);
    out += buf;
  }
  if (!note.empty()) {
    out += " — ";
    out += note;
  }
  return out;
}

std::uint64_t SanitizerReport::error_count() const {
  std::uint64_t n = 0;
  for (int c = 0; c < kNumCategories; ++c) {
    if (is_error(static_cast<Category>(c))) n += counts[static_cast<std::size_t>(c)];
  }
  return n;
}

std::uint64_t SanitizerReport::lint_count() const {
  std::uint64_t n = 0;
  for (int c = 0; c < kNumCategories; ++c) {
    if (!is_error(static_cast<Category>(c))) n += counts[static_cast<std::size_t>(c)];
  }
  return n;
}

std::string SanitizerReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ksan: %s (global=%lld local=%d shared=%d B phases=%d): "
                "%llu errors, %llu lints over %llu global / %llu shared accesses\n",
                kernel.c_str(), static_cast<long long>(global_size), local_size, shared_bytes,
                num_phases, static_cast<unsigned long long>(error_count()),
                static_cast<unsigned long long>(lint_count()),
                static_cast<unsigned long long>(checked_global),
                static_cast<unsigned long long>(checked_shared));
  std::string out = buf;
  for (int c = 0; c < kNumCategories; ++c) {
    if (counts[static_cast<std::size_t>(c)] == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-22s %llu\n", to_string(static_cast<Category>(c)),
                  static_cast<unsigned long long>(counts[static_cast<std::size_t>(c)]));
    out += buf;
  }
  for (const Offence& o : records) {
    out += "  ";
    out += o.describe();
    out += '\n';
  }
  return out;
}

namespace {

/// Offence identity for duplicate collapse inside a merged report: the same
/// category at the same address with the same note is one finding, however
/// many per-message reports repeated it.
bool same_offence(const Offence& a, const Offence& b) {
  return a.category == b.category && a.kind == b.kind && a.addr == b.addr &&
         a.size == b.size && a.note == b.note;
}

}  // namespace

std::vector<SanitizerReport> dedup_reports(std::vector<SanitizerReport> reports,
                                           std::size_t max_records) {
  std::stable_sort(reports.begin(), reports.end(),
                   [](const SanitizerReport& a, const SanitizerReport& b) {
                     return a.kernel < b.kernel;
                   });
  std::vector<SanitizerReport> out;
  for (SanitizerReport& rep : reports) {
    if (out.empty() || out.back().kernel != rep.kernel) {
      out.push_back(std::move(rep));
      if (out.back().records.size() > max_records) out.back().records.resize(max_records);
      continue;
    }
    SanitizerReport& dst = out.back();
    for (int c = 0; c < kNumCategories; ++c) {
      dst.counts[static_cast<std::size_t>(c)] += rep.counts[static_cast<std::size_t>(c)];
    }
    dst.checked_global += rep.checked_global;
    dst.checked_shared += rep.checked_shared;
    dst.global_size = std::max(dst.global_size, rep.global_size);
    dst.local_size = std::max(dst.local_size, rep.local_size);
    dst.num_phases = std::max(dst.num_phases, rep.num_phases);
    for (Offence& o : rep.records) {
      if (dst.records.size() >= max_records) break;
      bool dup = false;
      for (const Offence& kept : dst.records) dup |= same_offence(kept, o);
      if (!dup) dst.records.push_back(std::move(o));
    }
  }
  return out;
}

std::string format_reports(const std::vector<SanitizerReport>& reports) {
  std::string out;
  char buf[192];
  for (const SanitizerReport& rep : reports) {
    if (rep.clean() && rep.lint_count() == 0) {
      std::snprintf(buf, sizeof(buf), "%s: clean\n", rep.kernel.c_str());
    } else {
      std::snprintf(buf, sizeof(buf), "%s: %llu errors, %llu lints\n", rep.kernel.c_str(),
                    static_cast<unsigned long long>(rep.error_count()),
                    static_cast<unsigned long long>(rep.lint_count()));
    }
    out += buf;
  }
  return out;
}

}  // namespace ksan
