#include "ksan/report.hpp"

#include <cstdio>

namespace ksan {

const char* to_string(Category c) {
  switch (c) {
    case Category::GlobalRace: return "global-race";
    case Category::SharedHazard: return "intra-phase-hazard";
    case Category::GlobalOOB: return "global-out-of-bounds";
    case Category::GlobalUseAfterFree: return "global-use-after-free";
    case Category::SharedOOB: return "shared-out-of-bounds";
    case Category::UninitSharedRead: return "uninit-shared-read";
    case Category::UncoalescedAccess: return "lint-uncoalesced";
    case Category::SharedBankConflict: return "lint-bank-conflict";
    case Category::DivergentBranch: return "lint-divergent-branch";
  }
  return "unknown";
}

const char* to_string(AccessKind k) {
  switch (k) {
    case AccessKind::Load: return "load";
    case AccessKind::Store: return "store";
    case AccessKind::Atomic: return "atomic";
  }
  return "access";
}

std::string Offence::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s: %s of %u B at 0x%llx by item %lld (group %lld, phase %d)",
                to_string(category), to_string(kind), size,
                static_cast<unsigned long long>(addr), static_cast<long long>(item),
                static_cast<long long>(group), phase);
  std::string out = buf;
  if (other_item >= 0) {
    std::snprintf(buf, sizeof(buf), " conflicts with %s by item %lld (phase %d)",
                  to_string(other_kind), static_cast<long long>(other_item), other_phase);
    out += buf;
  }
  if (!note.empty()) {
    out += " — ";
    out += note;
  }
  return out;
}

std::uint64_t SanitizerReport::error_count() const {
  std::uint64_t n = 0;
  for (int c = 0; c < kNumCategories; ++c) {
    if (is_error(static_cast<Category>(c))) n += counts[static_cast<std::size_t>(c)];
  }
  return n;
}

std::uint64_t SanitizerReport::lint_count() const {
  std::uint64_t n = 0;
  for (int c = 0; c < kNumCategories; ++c) {
    if (!is_error(static_cast<Category>(c))) n += counts[static_cast<std::size_t>(c)];
  }
  return n;
}

std::string SanitizerReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ksan: %s (global=%lld local=%d shared=%d B phases=%d): "
                "%llu errors, %llu lints over %llu global / %llu shared accesses\n",
                kernel.c_str(), static_cast<long long>(global_size), local_size, shared_bytes,
                num_phases, static_cast<unsigned long long>(error_count()),
                static_cast<unsigned long long>(lint_count()),
                static_cast<unsigned long long>(checked_global),
                static_cast<unsigned long long>(checked_shared));
  std::string out = buf;
  for (int c = 0; c < kNumCategories; ++c) {
    if (counts[static_cast<std::size_t>(c)] == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-22s %llu\n", to_string(static_cast<Category>(c)),
                  static_cast<unsigned long long>(counts[static_cast<std::size_t>(c)]));
    out += buf;
  }
  for (const Offence& o : records) {
    out += "  ";
    out += o.describe();
    out += '\n';
  }
  return out;
}

}  // namespace ksan
