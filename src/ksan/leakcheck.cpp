#include "ksan/leakcheck.hpp"

#include <cstdio>
#include <string>
#include <utility>

#include "minisycl/usm.hpp"

namespace ksan {

void arm_leak_check(minisycl::queue& q, std::vector<SanitizerReport>& out, std::string label) {
  // Allocations already live when the watch is armed belong to the caller's
  // surroundings, not to this queue's working set: the serial watermark
  // scopes the diagnostic to the queue's own lifetime.
  const std::uint64_t watermark = minisycl::usm::Registry::instance().total_allocations();
  q.set_teardown_hook([&out, watermark, label = std::move(label)](minisycl::queue&) {
    SanitizerReport rep;
    rep.kernel = label;
    for (const minisycl::usm::RegionInfo& r :
         minisycl::usm::Registry::instance().live_snapshot()) {
      if (r.serial <= watermark) continue;
      ++rep.counts[static_cast<std::size_t>(Category::UsmLeak)];
      ++rep.checked_global;
      if (rep.records.size() >= 16) continue;
      Offence o;
      o.category = Category::UsmLeak;
      o.kind = AccessKind::Store;
      o.addr = r.base;
      o.size = static_cast<std::uint32_t>(r.bytes);
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "site '%s': %llu B allocated (serial %llu) still live at queue teardown",
                    r.name.empty() ? "<unnamed>" : r.name.c_str(),
                    static_cast<unsigned long long>(r.bytes),
                    static_cast<unsigned long long>(r.serial));
      o.note = buf;
      rep.records.push_back(std::move(o));
    }
    out.push_back(std::move(rep));
  });
}

}  // namespace ksan
