// report.hpp — structured findings of the kernel sanitizer (ksan).
//
// A sanitized launch produces one SanitizerReport: per-category counts over
// every checked access plus the first N offending accesses with work-item
// ids and phase (the happens-before epoch).  Categories split into *errors*
// (races, memcheck violations, uninitialised local reads — a kernel with any
// of these is broken) and *lints* (performance hazards the gpusim pipeline
// also charges for: uncoalesced global ops, shared-memory bank conflicts,
// divergent branches).  `clean()` means zero errors; lints are advisory.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ksan {

enum class Category : std::uint8_t {
  // errors
  GlobalRace,          ///< unordered conflicting global accesses, >=1 non-atomic write
  SharedHazard,        ///< intra-phase conflicting local-memory accesses (missing barrier)
  GlobalOOB,           ///< global access outside any known live allocation
  GlobalUseAfterFree,  ///< global access inside a freed USM allocation
  SharedOOB,           ///< local-memory access beyond the launch's local_mem request
  UninitSharedRead,    ///< read of local-accessor bytes never stored in this launch
  // distributed errors (dsan: the cluster-wide happens-before checker)
  CrossDeviceRace,       ///< unordered conflicting shard/wire accesses across devices
  UnmatchedMessage,      ///< send never received, recv without a send, or a duplicate delivery
  GhostReadBeforeUnpack, ///< boundary kernel read not ordered after the ghost unpack
  WireBufferReuse,       ///< wire buffer repacked before the prior transmission resolved
  ScheduleDeadlock,      ///< cycle or starvation in the NIC/switch wire schedule
  UsmLeak,               ///< USM allocation still live at queue teardown
  // lints
  UncoalescedAccess,   ///< warp memory op needing far more 32 B sectors than ideal
  SharedBankConflict,  ///< warp local-memory op with excessive bank wavefronts
  DivergentBranch,     ///< active lanes of a warp chose different branch targets
  // distributed lints (protocol-shape findings, advisory)
  ChecksumSkipped,     ///< retransmitted delivery accepted without a checksum verdict
  UnaggregatedFrames,  ///< fabric-crossing transmission not riding an aggregated frame
  BoundaryBeforeUnpack,///< boundary launch not ordered after every delivered face
  CheckpointInWindow,  ///< checkpoint taken while a transmission was still in flight
  RejoinBeforeResync,  ///< rejoined rank participated before its replica resynced
  SnapshotPromotedBeforeAudit, ///< staged snapshot promoted with no passing audit
  StaleReplicaRead,    ///< replica declared live before its transfer verified
};

inline constexpr int kNumCategories = 22;

[[nodiscard]] const char* to_string(Category c);

/// True for the categories that make a kernel incorrect (vs merely slow).
[[nodiscard]] constexpr bool is_error(Category c) {
  return static_cast<int>(c) < static_cast<int>(Category::UncoalescedAccess);
}

enum class AccessKind : std::uint8_t { Load, Store, Atomic };

[[nodiscard]] const char* to_string(AccessKind k);

/// One recorded offending access (reports keep the first N per launch).
struct Offence {
  Category category = Category::GlobalRace;
  AccessKind kind = AccessKind::Load;
  std::uint64_t addr = 0;        ///< byte address (global) / byte offset (shared)
  std::uint32_t size = 0;        ///< access width in bytes
  int phase = 0;                 ///< epoch of the offending access
  std::int64_t item = -1;        ///< offending work-item (global id)
  std::int64_t group = -1;       ///< its work-group
  std::int64_t other_item = -1;  ///< conflicting work-item (races/hazards)
  int other_phase = -1;
  AccessKind other_kind = AccessKind::Load;
  std::string note;              ///< category-specific context

  [[nodiscard]] std::string describe() const;
};

struct SanitizerReport {
  std::string kernel;
  std::int64_t global_size = 0;
  int local_size = 0;
  int shared_bytes = 0;
  int num_phases = 0;
  std::uint64_t checked_global = 0;  ///< unmasked global accesses examined
  std::uint64_t checked_shared = 0;  ///< unmasked local-memory accesses examined
  std::array<std::uint64_t, kNumCategories> counts{};
  std::vector<Offence> records;      ///< first max_records offences

  [[nodiscard]] std::uint64_t count(Category c) const {
    return counts[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t error_count() const;
  [[nodiscard]] std::uint64_t lint_count() const;
  [[nodiscard]] bool clean() const { return error_count() == 0; }

  /// Multi-line human-readable summary (counts + recorded offences).
  [[nodiscard]] std::string summary() const;
};

/// Collapse duplicate-site reports: reports sharing a `kernel` name are merged
/// (counts and checked-access totals summed, offences concatenated with exact
/// repeats dropped, at most `max_records` kept) and the result is returned in
/// stable lexicographic `kernel` order.  Both dsan and the bench sanitize
/// modes rely on this to turn a per-message stream into one row per site.
[[nodiscard]] std::vector<SanitizerReport> dedup_reports(
    std::vector<SanitizerReport> reports, std::size_t max_records = 16);

/// One digest line per report (dedup first for a stable digest):
/// "<kernel>: clean|<e> errors, <l> lints".
[[nodiscard]] std::string format_reports(const std::vector<SanitizerReport>& reports);

}  // namespace ksan
