// leakcheck.hpp — USM leak-at-queue-teardown diagnostic.
//
// Real SYCL runtimes tear USM pools down with the context; this simulator's
// malloc_device hands out ordinary host memory, so an allocation that is
// never freed just disappears into the process heap.  arm_leak_check turns
// that silent class of bug into a structured finding: every allocation made
// *after* the call and still live when the queue destructs is reported as a
// Category::UsmLeak offence naming the alloc site (the `name` argument of
// malloc_device) and its byte extent.  Pre-existing allocations — lattice
// fields owned by longer-lived objects — are outside the watch window and
// never reported.
#pragma once

#include <vector>

#include "ksan/report.hpp"
#include "minisycl/queue.hpp"

namespace ksan {

/// Install the leak watch on `q`.  At `q`'s destruction one SanitizerReport
/// (kernel = `label`) is appended to `out` with a UsmLeak offence per leaked
/// allocation; a clean teardown appends a clean report.  `out` must outlive
/// the queue.
void arm_leak_check(minisycl::queue& q, std::vector<SanitizerReport>& out,
                    std::string label = "usm-teardown");

}  // namespace ksan
