#include "ksan/sanitizer.hpp"

#include <algorithm>
#include <cstdio>
#include <span>

#include "minisycl/usm.hpp"

namespace ksan {

namespace {

/// Pack (phase, warp, op position) into one warp-instruction key.  Positions
/// are per-lane op counters; the executor's event-stream alignment invariant
/// guarantees lanes of a warp agree on what sits at each position.
[[nodiscard]] std::uint64_t warp_op_key(int phase, int warp, int op_pos) {
  return (static_cast<std::uint64_t>(phase) << 48) | (static_cast<std::uint64_t>(warp) << 32) |
         static_cast<std::uint32_t>(op_pos);
}

[[nodiscard]] std::string format_region_note(const char* what, std::uint64_t base,
                                             std::uint64_t bytes) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s (base=0x%llx, size=%llu B)", what,
                static_cast<unsigned long long>(base), static_cast<unsigned long long>(bytes));
  return buf;
}

}  // namespace

LaunchContext::LaunchContext(const minisycl::LaunchSpec& spec, std::string name,
                             SanitizeConfig cfg)
    : cfg_(std::move(cfg)) {
  report_.kernel = std::move(name);
  report_.global_size = spec.global_size;
  report_.local_size = spec.local_size;
  report_.shared_bytes = spec.shared_bytes;
  report_.num_phases = spec.num_phases;
  if (cfg_.use_registry) {
    auto& reg = minisycl::usm::Registry::instance();
    for (const auto& r : reg.live_snapshot()) live_[r.base] = std::max(live_[r.base], r.bytes);
    for (const auto& r : reg.freed_snapshot()) freed_[r.base] = r.bytes;
  }
  for (const Region& r : cfg_.regions) live_[r.base] = std::max(live_[r.base], r.bytes);
  shared_init_.assign(static_cast<std::size_t>(spec.shared_bytes), 0);
}

void LaunchContext::begin_group(std::int64_t group) {
  group_ = group;
  shared_cells_.clear();
  warp_ops_.clear();
  std::fill(shared_init_.begin(), shared_init_.end(), std::uint8_t{0});
}

void LaunchContext::end_group() {
  flush_warp_ops();
  group_ = -1;
}

void LaunchContext::record(Offence o) {
  if (static_cast<int>(report_.records.size()) < cfg_.max_records) {
    report_.records.push_back(std::move(o));
  }
}

LaunchContext::RegionStatus LaunchContext::classify(std::uint64_t addr,
                                                    std::uint32_t size) const {
  auto contains = [&](const std::map<std::uint64_t, std::uint64_t>& m) {
    auto it = m.upper_bound(addr);
    if (it == m.begin()) return false;
    --it;
    return addr >= it->first && addr + size <= it->first + it->second;
  };
  if (contains(live_)) return RegionStatus::Valid;
  if (contains(freed_)) return RegionStatus::Freed;
  return RegionStatus::Unknown;
}

void LaunchContext::check_cell(std::unordered_map<std::uint64_t, CellState>& cells,
                               std::uint64_t cell, const minisycl::ItemIds& ids, int phase,
                               AccessKind kind, bool shared, std::uint64_t addr,
                               std::uint32_t size) {
  CellState& c = cells[cell];
  const std::int64_t item = ids.global_id;
  const std::int64_t group = ids.group_id;

  // Byte mask of this access within the cell: conflicts require overlapping
  // bytes, not just a shared cell (sub-word wire-codec stores are 4 B).
  const std::uint64_t base = cell << 3;
  const std::uint64_t lo = addr > base ? addr - base : 0;
  const std::uint64_t hi = std::min<std::uint64_t>(8, addr + size - base);
  const std::uint8_t mask = static_cast<std::uint8_t>(
      (hi >= 8 ? 0xffu : (1u << hi) - 1u) & ~((1u << lo) - 1u));

  // Happens-before: accesses of the same work-item are program-ordered; a
  // barrier (phase boundary) orders work-items of the same group; nothing
  // orders different groups.
  auto unordered = [&](std::int64_t p_item, std::int64_t p_group, int p_phase) {
    if (p_item < 0 || p_item == item) return false;
    if (shared) return p_phase == phase;  // local memory is private to the group
    return p_group != group || p_phase == phase;
  };

  const Category cat = shared ? Category::SharedHazard : Category::GlobalRace;
  bool reported = false;
  auto conflict = [&](AccessKind other_kind, std::int64_t o_item, int o_phase,
                      const char* note) {
    if (reported) return;  // one finding per access
    reported = true;
    count(cat);
    if (static_cast<int>(report_.records.size()) < cfg_.max_records) {
      Offence o;
      o.category = cat;
      o.kind = kind;
      o.addr = addr;
      o.size = size;
      o.phase = phase;
      o.item = item;
      o.group = group;
      o.other_item = o_item;
      o.other_phase = o_phase;
      o.other_kind = other_kind;
      o.note = note;
      record(std::move(o));
    }
  };

  const char* const note_same_phase =
      shared ? "no barrier separates the conflicting local-memory accesses"
             : "conflicting accesses in the same epoch (no ordering barrier)";
  const char* const note_cross_group = "work-items of different groups are never ordered";

  auto note_for = [&](std::int64_t p_group) {
    return (!shared && p_group != group) ? note_cross_group : note_same_phase;
  };

  switch (kind) {
    case AccessKind::Load:
      if ((mask & c.w_mask) != 0 && unordered(c.w_item, c.w_group, c.w_phase)) {
        conflict(AccessKind::Store, c.w_item, c.w_phase, note_for(c.w_group));
      } else if ((mask & c.a_mask) != 0 && unordered(c.a_item, c.a_group, c.a_phase)) {
        conflict(AccessKind::Atomic, c.a_item, c.a_phase, note_for(c.a_group));
      }
      break;
    case AccessKind::Store:
    case AccessKind::Atomic:
      if ((mask & c.w_mask) != 0 && unordered(c.w_item, c.w_group, c.w_phase)) {
        conflict(AccessKind::Store, c.w_item, c.w_phase, note_for(c.w_group));
      } else if (kind == AccessKind::Store && (mask & c.a_mask) != 0 &&
                 unordered(c.a_item, c.a_group, c.a_phase)) {
        conflict(AccessKind::Atomic, c.a_item, c.a_phase, note_for(c.a_group));
      } else {
        for (int i = 0; i < c.r_count; ++i) {
          if ((mask & c.r_mask[i]) != 0 &&
              unordered(c.r_item[i], c.r_group[i], c.r_phase)) {
            conflict(AccessKind::Load, c.r_item[i], c.r_phase, note_for(c.r_group[i]));
            break;
          }
        }
        // >= 3 distinct readers in the epoch: at least one differs from us.
        if (!reported && c.r_many && (mask & c.r_many_mask) != 0 &&
            (shared ? c.r_phase == phase : true)) {
          conflict(AccessKind::Load, -1, c.r_phase, "multiple unordered readers of this cell");
        }
      }
      break;
  }

  // Update the shadow cell.  Repeat accesses by the recorded item widen its
  // byte mask (program order covers them); a different item replaces the
  // entry, exactly like the pre-mask shadow did.
  if (kind == AccessKind::Load) {
    if (c.r_phase != phase) {
      c.r_phase = phase;
      c.r_count = 0;
      c.r_many = false;
      c.r_many_mask = 0;
    }
    bool seen = false;
    for (int i = 0; i < c.r_count; ++i) {
      if (c.r_item[i] == item) {
        c.r_mask[i] |= mask;
        seen = true;
      }
    }
    if (!seen) {
      if (c.r_count < 2) {
        c.r_item[c.r_count] = item;
        c.r_group[c.r_count] = group;
        c.r_mask[c.r_count] = mask;
        ++c.r_count;
      } else {
        c.r_many = true;
        c.r_many_mask |= mask;
      }
    }
  } else if (kind == AccessKind::Store) {
    if (c.w_item == item) {
      c.w_mask |= mask;
    } else {
      c.w_item = item;
      c.w_mask = mask;
    }
    c.w_group = group;
    c.w_phase = phase;
  } else {
    if (c.a_item == item) {
      c.a_mask |= mask;
    } else {
      c.a_item = item;
      c.a_mask = mask;
    }
    c.a_group = group;
    c.a_phase = phase;
  }
}

bool LaunchContext::global_access(const minisycl::ItemIds& ids, int phase, AccessKind kind,
                                  const void* p, std::uint32_t size, bool masked, int op_pos) {
  if (masked) return false;  // predicated-off lanes issue no transactions
  const std::uint64_t addr = reinterpret_cast<std::uint64_t>(p);
  ++report_.checked_global;

  const RegionStatus st = classify(addr, size);
  if (st != RegionStatus::Valid) {
    const Category cat =
        st == RegionStatus::Freed ? Category::GlobalUseAfterFree : Category::GlobalOOB;
    count(cat);
    if (static_cast<int>(report_.records.size()) < cfg_.max_records) {
      Offence o;
      o.category = cat;
      o.kind = kind;
      o.addr = addr;
      o.size = size;
      o.phase = phase;
      o.item = ids.global_id;
      o.group = ids.group_id;
      if (cat == Category::GlobalUseAfterFree) {
        auto it = freed_.upper_bound(addr);
        --it;
        o.note = format_region_note("allocation was freed before the launch", it->first,
                                    it->second);
      } else {
        auto it = live_.upper_bound(addr);
        if (it != live_.begin() && addr < std::prev(it)->first + std::prev(it)->second) {
          --it;
          o.note = format_region_note("access overruns the containing allocation", it->first,
                                      it->second);
        } else {
          o.note = "no live allocation or declared region contains this address";
        }
      }
      record(std::move(o));
    }
    return false;
  }

  note_warp_op(1, ids, phase, kind, addr, size, masked, op_pos);
  const std::uint64_t first = addr >> 3;
  const std::uint64_t last = (addr + size - 1) >> 3;
  for (std::uint64_t cell = first; cell <= last; ++cell) {
    check_cell(global_cells_, cell, ids, phase, kind, /*shared=*/false, addr, size);
  }
  return true;
}

bool LaunchContext::shared_access(const minisycl::ItemIds& ids, int phase, AccessKind kind,
                                  std::int64_t offset, std::uint32_t size, bool masked,
                                  int op_pos) {
  if (masked) return false;
  ++report_.checked_shared;

  const bool in_bounds =
      offset >= 0 && offset + static_cast<std::int64_t>(size) <=
                         static_cast<std::int64_t>(report_.shared_bytes);
  if (!in_bounds) {
    count(Category::SharedOOB);
    if (static_cast<int>(report_.records.size()) < cfg_.max_records) {
      Offence o;
      o.category = Category::SharedOOB;
      o.kind = kind;
      o.addr = static_cast<std::uint64_t>(offset);
      o.size = size;
      o.phase = phase;
      o.item = ids.global_id;
      o.group = ids.group_id;
      char buf[96];
      std::snprintf(buf, sizeof(buf), "launch requested %d B of local memory",
                    report_.shared_bytes);
      o.note = buf;
      record(std::move(o));
    }
    return false;
  }

  note_warp_op(2, ids, phase, kind, static_cast<std::uint64_t>(offset), size, masked, op_pos);

  if (kind == AccessKind::Load) {
    bool uninit = false;
    for (std::int64_t b = offset; b < offset + static_cast<std::int64_t>(size); ++b) {
      uninit = uninit || shared_init_[static_cast<std::size_t>(b)] == 0;
    }
    if (uninit) {
      count(Category::UninitSharedRead);
      if (static_cast<int>(report_.records.size()) < cfg_.max_records) {
        Offence o;
        o.category = Category::UninitSharedRead;
        o.kind = kind;
        o.addr = static_cast<std::uint64_t>(offset);
        o.size = size;
        o.phase = phase;
        o.item = ids.global_id;
        o.group = ids.group_id;
        o.note = "local-accessor bytes read before any work-item stored them";
        record(std::move(o));
      }
    }
  } else {
    for (std::int64_t b = offset; b < offset + static_cast<std::int64_t>(size); ++b) {
      shared_init_[static_cast<std::size_t>(b)] = 1;
    }
  }

  const std::uint64_t first = static_cast<std::uint64_t>(offset) >> 3;
  const std::uint64_t last = (static_cast<std::uint64_t>(offset) + size - 1) >> 3;
  for (std::uint64_t cell = first; cell <= last; ++cell) {
    check_cell(shared_cells_, cell, ids, phase, kind, /*shared=*/true,
               static_cast<std::uint64_t>(offset), size);
  }
  return true;  // uninitialised loads still read (garbage), like real hardware
}

void LaunchContext::branch_event(const minisycl::ItemIds& ids, int phase, std::uint32_t target,
                                 bool masked, int op_pos) {
  if (!cfg_.perf_lints || masked) return;
  const int warp = ids.local_id / cfg_.warp_size;
  WarpOp& op = warp_ops_[warp_op_key(phase, warp, op_pos)];
  op.space = 3;
  op.phase = phase;
  if (op.item < 0) op.item = ids.global_id;
  if (!op.has_target) {
    op.target0 = target;
    op.has_target = true;
  } else if (op.target0 != target) {
    op.divergent = true;
  }
}

void LaunchContext::note_warp_op(std::uint8_t space, const minisycl::ItemIds& ids, int phase,
                                 AccessKind kind, std::uint64_t addr, std::uint32_t size,
                                 bool masked, int op_pos) {
  if (!cfg_.perf_lints || masked) return;
  const int warp = ids.local_id / cfg_.warp_size;
  WarpOp& op = warp_ops_[warp_op_key(phase, warp, op_pos)];
  op.space = space;
  op.kind = kind;
  op.any_store = op.any_store || kind != AccessKind::Load;
  op.phase = phase;
  if (op.item < 0) op.item = ids.global_id;
  op.accesses.push_back(gpusim::LaneAccess{addr, static_cast<std::uint8_t>(size),
                                           static_cast<std::uint8_t>(ids.local_id %
                                                                     cfg_.warp_size)});
}

void LaunchContext::flush_warp_ops() {
  if (!cfg_.perf_lints) return;
  std::vector<std::uint64_t> sectors;
  for (auto& [key, op] : warp_ops_) {
    (void)key;
    if (op.space == 3) {
      if (op.divergent) {
        count(Category::DivergentBranch);
        if (static_cast<int>(report_.records.size()) < cfg_.max_records) {
          Offence o;
          o.category = Category::DivergentBranch;
          o.phase = op.phase;
          o.item = op.item;
          o.group = group_;
          o.note = "active lanes of the warp chose different branch targets";
          record(std::move(o));
        }
      }
      continue;
    }
    if (op.accesses.empty()) continue;
    const std::span<const gpusim::LaneAccess> span(op.accesses.data(), op.accesses.size());
    if (op.space == 1) {
      gpusim::coalesce_sectors(span, cfg_.sector_bytes, sectors);
      std::uint64_t bytes = 0;
      for (const gpusim::LaneAccess& a : op.accesses) bytes += a.size;
      const std::uint64_t ideal =
          std::max<std::uint64_t>(1, (bytes + static_cast<std::uint64_t>(cfg_.sector_bytes) - 1) /
                                         static_cast<std::uint64_t>(cfg_.sector_bytes));
      if (static_cast<double>(sectors.size()) > cfg_.coalesce_slack * static_cast<double>(ideal)) {
        count(Category::UncoalescedAccess);
        if (static_cast<int>(report_.records.size()) < cfg_.max_records) {
          Offence o;
          o.category = Category::UncoalescedAccess;
          o.kind = op.kind;
          o.addr = op.accesses.front().addr;
          o.size = op.accesses.front().size;
          o.phase = op.phase;
          o.item = op.item;
          o.group = group_;
          char buf[96];
          std::snprintf(buf, sizeof(buf), "warp op touches %zu sectors (ideal %llu)",
                        sectors.size(), static_cast<unsigned long long>(ideal));
          o.note = buf;
          record(std::move(o));
        }
      }
    } else {
      const gpusim::BankAnalysis ba =
          gpusim::analyze_shared(span, cfg_.shared_banks, cfg_.shared_bank_bytes);
      if (ba.excessive() > 0) {
        count(Category::SharedBankConflict);
        if (static_cast<int>(report_.records.size()) < cfg_.max_records) {
          Offence o;
          o.category = Category::SharedBankConflict;
          o.kind = op.kind;
          o.addr = op.accesses.front().addr;
          o.size = op.accesses.front().size;
          o.phase = op.phase;
          o.item = op.item;
          o.group = group_;
          char buf[96];
          std::snprintf(buf, sizeof(buf), "warp op needs %u wavefronts (ideal %u)",
                        ba.wavefronts, ba.ideal);
          o.note = buf;
          record(std::move(o));
        }
      }
    }
  }
  warp_ops_.clear();
}

SanitizerReport LaunchContext::finish() { return std::move(report_); }

}  // namespace ksan
