#include "serve/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace milc::serve {

const char* RequestOutcome::status_str() const {
  switch (status) {
    case Status::rejected: return "rejected";
    case Status::completed: return "completed";
    case Status::shed: return "shed";
    case Status::cancelled: return "cancelled";
  }
  return "unknown";
}

double percentile_us(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const auto n = static_cast<double>(sample.size());
  const auto rank = static_cast<std::size_t>(std::ceil(q * n));
  return sample[rank == 0 ? 0 : rank - 1];
}

void SloReport::finalize() {
  std::sort(outcomes.begin(), outcomes.end(),
            [](const RequestOutcome& a, const RequestOutcome& b) {
              return a.req.id < b.req.id;
            });

  submitted = static_cast<int>(outcomes.size());
  admitted = rejected = completed = shed = cancelled = 0;
  deadline_met = deadline_missed = 0;
  spares_consumed = rejoins = capacity_restored = 0;
  rereplicated_bytes = 0;
  rereplication_us = 0.0;

  std::map<std::string, TenantSlo> by_tenant;
  std::map<std::string, std::vector<double>> tenant_lat;
  std::vector<double> latencies;

  for (const RequestOutcome& o : outcomes) {
    TenantSlo& t = by_tenant[o.req.tenant];
    t.tenant = o.req.tenant;
    ++t.submitted;
    spares_consumed += o.spares_consumed;
    rejoins += o.rejoins;
    capacity_restored += o.capacity_restored;
    rereplicated_bytes += o.rereplicated_bytes;
    rereplication_us += o.rereplication_us;
    switch (o.status) {
      case RequestOutcome::Status::rejected:
        ++rejected;
        ++t.rejected;
        break;
      case RequestOutcome::Status::completed:
        ++admitted;
        ++t.admitted;
        ++completed;
        ++t.completed;
        latencies.push_back(o.latency_us);
        tenant_lat[o.req.tenant].push_back(o.latency_us);
        if (o.deadline_met) {
          ++deadline_met;
          ++t.deadline_met;
        } else {
          ++deadline_missed;
          ++t.deadline_missed;
        }
        break;
      case RequestOutcome::Status::shed:
        ++admitted;
        ++t.admitted;
        ++shed;
        ++t.shed;
        break;
      case RequestOutcome::Status::cancelled:
        ++admitted;
        ++t.admitted;
        ++cancelled;
        ++t.cancelled;
        break;
    }
  }

  p50_latency_us = percentile_us(latencies, 0.50);
  p99_latency_us = percentile_us(latencies, 0.99);
  max_latency_us = latencies.empty() ? 0.0 : *std::max_element(latencies.begin(), latencies.end());

  // busy_device_us is accumulated by the service before finalize(); carry the
  // previously-summed values over into the recomputed rows.
  std::map<std::string, double> busy;
  for (const TenantSlo& t : tenants) busy[t.tenant] = t.busy_device_us;

  tenants.clear();
  for (auto& [name, t] : by_tenant) {
    t.p50_latency_us = percentile_us(tenant_lat[name], 0.50);
    t.p99_latency_us = percentile_us(tenant_lat[name], 0.99);
    const auto it = busy.find(name);
    if (it != busy.end()) t.busy_device_us = it->second;
    tenants.push_back(t);
  }
}

std::string SloReport::summary() const {
  char buf[512];
  std::string s;
  std::snprintf(buf, sizeof buf,
                "slo[%s seed=%llu]: %d submitted | %d rejected | %d completed "
                "(%d met / %d missed deadlines) | %d shed | %d cancelled | "
                "p50 %.1f us p99 %.1f us | makespan %.1f us | %zu faults | "
                "%zu degradations %zu breaker events\n",
                scenario.c_str(), static_cast<unsigned long long>(fault_seed), submitted,
                rejected, completed, deadline_met, deadline_missed, shed, cancelled,
                p50_latency_us, p99_latency_us, makespan_us, faults_injected,
                degradations.size(), breaker_events.size());
  s += buf;
  if (spares_consumed > 0 || rejoins > 0 || devices_rejoined > 0 || nodes_rejoined > 0 ||
      rereplicated_bytes > 0) {
    std::snprintf(buf, sizeof buf,
                  "  recovery: %d spares | %d solver rejoins (+%d devices) | "
                  "%d device / %d node serve rejoins | %lld bytes re-replicated "
                  "(%.1f us) | %.1f us down-time recovered\n",
                  spares_consumed, rejoins, capacity_restored, devices_rejoined,
                  nodes_rejoined, static_cast<long long>(rereplicated_bytes),
                  rereplication_us, recovery_time_us);
    s += buf;
  }
  for (const TenantSlo& t : tenants) {
    std::snprintf(buf, sizeof buf,
                  "  tenant %-10s sub %3d adm %3d rej %3d done %3d shed %3d cxl %3d | "
                  "met %3d miss %3d | p50 %9.1f p99 %9.1f | busy %12.1f us\n",
                  t.tenant.c_str(), t.submitted, t.admitted, t.rejected, t.completed,
                  t.shed, t.cancelled, t.deadline_met, t.deadline_missed, t.p50_latency_us,
                  t.p99_latency_us, t.busy_device_us);
    s += buf;
  }
  return s;
}

std::string SloReport::canonical() const {
  std::string s = summary();
  char buf[768];
  for (const RequestOutcome& o : outcomes) {
    std::snprintf(buf, sizeof buf,
                  "req %llu tenant=%s prio=%d %s reason='%s' dispatch=%.3f done=%.3f "
                  "lat=%.3f met=%d dev=%s grid=%s strat=%s rhs=%d/%d iters=%d applies=%d "
                  "restarts=%d failovers=%d faults=%zu abft=%d res=%.6e "
                  "spares=%d rejoins=%d cap=%d rerep=%lld fnv=",
                  static_cast<unsigned long long>(o.req.id), o.req.tenant.c_str(),
                  o.req.priority, o.status_str(), o.reason.c_str(), o.dispatch_us,
                  o.complete_us, o.latency_us, o.deadline_met ? 1 : 0, o.devices.c_str(),
                  o.grid.c_str(), to_string(o.strategy_used), o.rhs_done, o.req.rhs,
                  o.iterations, o.applies, o.restarts, o.failovers, o.faults_observed,
                  o.abft_certified ? 1 : 0, o.worst_true_residual, o.spares_consumed,
                  o.rejoins, o.capacity_restored,
                  static_cast<long long>(o.rereplicated_bytes));
    s += buf;
    for (const std::uint64_t f : o.solution_fnv) {
      std::snprintf(buf, sizeof buf, "%016llx.", static_cast<unsigned long long>(f));
      s += buf;
    }
    s += "\n";
  }
  for (const DegradationEvent& d : degradations) {
    std::snprintf(buf, sizeof buf, "degrade @%.3f req=%llu %s: %s\n", d.at_us,
                  static_cast<unsigned long long>(d.request_id), d.kind.c_str(),
                  d.detail.c_str());
    s += buf;
  }
  for (const BreakerEvent& e : breaker_events) {
    std::snprintf(buf, sizeof buf, "breaker @%.3f %s %s->%s: %s\n", e.at_us,
                  e.resource.c_str(), to_string(e.from), to_string(e.to), e.why.c_str());
    s += buf;
  }
  return s;
}

}  // namespace milc::serve
