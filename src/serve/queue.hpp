// queue.hpp — bounded priority+deadline admission queue with per-tenant
// quotas.
//
// The queue is the service's backpressure boundary: it never grows without
// bound.  Over-capacity submissions are rejected at admission with a
// structured reason (queue_full / tenant_quota / deadline_expired /
// duplicate_id) instead of queueing work that can only rot.  Dispatch order
// is priority first, then earliest deadline (EDF within a priority class),
// then FIFO by id — a deterministic total order, so identical traffic
// replays identically.
//
// The queue holds no clock of its own: every decision takes `now` (the
// service's simulated clock) as an argument, which keeps it trivially
// testable and keeps determinism in one place.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace milc::serve {

struct QueueConfig {
  int capacity = 64;            ///< queued requests across all tenants
  int tenant_max_queued = 16;   ///< queued requests per tenant
  int tenant_max_inflight = 2;  ///< dispatched-but-unfinished per tenant
};

struct AdmissionVerdict {
  bool admitted = false;
  RejectReason reason = RejectReason::queue_full;  ///< valid when !admitted
  std::string detail;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(QueueConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const QueueConfig& config() const { return cfg_; }

  /// Admit or reject one request at simulated time `now`.  Checks, in
  /// order: catalog-independent validity (deadline already expired),
  /// duplicate id (against everything ever admitted), per-tenant quota,
  /// global capacity.
  AdmissionVerdict admit(const SolveRequest& req, double now);

  /// Remove and return the best eligible request: highest priority, then
  /// earliest deadline, then lowest id — skipping requests still in their
  /// requeue backoff (`not_before_us > now`) and tenants at their in-flight
  /// quota.  Returns false when nothing is eligible.
  bool pop(double now, SolveRequest& out);

  /// Put a dispatched request back (failed dispatch / retry): keeps its
  /// admission (no re-admission checks), applies the backoff via
  /// `req.not_before_us`, and releases the in-flight slot.
  void requeue(SolveRequest req);

  /// Remove a *queued* request by id.  Returns true and fills `out` when it
  /// was queued; false when unknown or already dispatched.
  bool cancel(std::uint64_t id, SolveRequest* out = nullptr);

  /// Remove and return every queued request whose deadline is at or before
  /// `now` (ordered by id) — the shed-while-queued sweep.
  std::vector<SolveRequest> sweep_expired(double now);

  /// Remove and return everything still queued (ordered by id) — the
  /// terminal shed when capacity is gone for good.
  std::vector<SolveRequest> drain();

  /// Account a dispatched request as in flight / finished for the tenant
  /// in-flight quota.  `pop` does NOT mark automatically: the dispatcher may
  /// still requeue without dispatching.
  void mark_inflight(const SolveRequest& req);
  void mark_done(const SolveRequest& req);

  [[nodiscard]] std::size_t size() const { return queued_.size(); }
  [[nodiscard]] bool empty() const { return queued_.empty(); }
  [[nodiscard]] int queued_for(const std::string& tenant) const;
  [[nodiscard]] int inflight_for(const std::string& tenant) const;

  /// Earliest future `not_before_us` among queued requests (backoff wake-up
  /// candidate for the event loop), or +inf when none is in backoff.
  [[nodiscard]] double next_ready_us(double now) const;

 private:
  QueueConfig cfg_;
  std::vector<SolveRequest> queued_;     ///< unordered; pop scans (bounded by capacity)
  std::vector<std::uint64_t> seen_ids_;  ///< sorted; every id ever admitted
  std::map<std::string, int> inflight_;  ///< per-tenant dispatched-not-finished
};

}  // namespace milc::serve
