#include "serve/service.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "core/problem.hpp"
#include "tune/session.hpp"

namespace milc::serve {

using multidev::MultiDeviceRunner;
using multidev::MultiDevRequest;
using multidev::PartitionGrid;
using multidev::ShardedCgConfig;
using multidev::ShardedCgResult;
using multidev::ShardedCgSolver;

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

ShardedCgConfig solver_config(const ProblemSpec& sp, Strategy strategy,
                              const gpusim::NodeTopology& topo,
                              bool async_checkpoint = false) {
  ShardedCgConfig c;
  c.cg.rel_tol = sp.rel_tol;
  c.cg.max_iterations = sp.max_iterations;
  c.checkpoint_interval = sp.checkpoint_interval;
  c.strategy = strategy;
  c.topo = topo;
  c.async_checkpoint = async_checkpoint;
  return c;
}

/// First "<prefix><digits>" occurrence in `site` where the prefix letter
/// starts a token (begin of string or after a space); -1 when absent.
int parse_indexed(const std::string& site, char prefix) {
  for (std::size_t i = 0; i < site.size(); ++i) {
    if (site[i] != prefix) continue;
    if (i > 0 && site[i - 1] != ' ') continue;
    if (i + 1 >= site.size() || std::isdigit(static_cast<unsigned char>(site[i + 1])) == 0)
      continue;
    int v = 0;
    for (std::size_t j = i + 1;
         j < site.size() && std::isdigit(static_cast<unsigned char>(site[j])) != 0; ++j)
      v = v * 10 + (site[j] - '0');
    return v;
  }
  return -1;
}

std::string device_label(const std::vector<int>& devs) {
  std::string s;
  for (int d : devs) {
    if (!s.empty()) s += '+';
    s += 'd';
    s += std::to_string(d);
  }
  return s;
}

}  // namespace

SolverService::SolverService(std::vector<ProblemSpec> catalog, ServiceConfig cfg)
    : catalog_(std::move(catalog)),
      cfg_(cfg),
      topo_(gpusim::cluster(cfg.cluster.nodes, cfg.cluster.devices_per_node)),
      queue_(cfg.queue) {
  // Hot-spare inventory rides on the topology: effective_topology() copies it
  // into every dispatched solve, so the hardened runner re-replicates lost
  // shards onto standbys instead of shrinking the placement's grid.
  topo_.spares = cfg_.spares;
  price_catalog();
  reset_runtime_state();
}

void SolverService::price_catalog() {
  placements_.resize(catalog_.size());
  pricing_ = {};
  const MultiDeviceRunner runner;
  tune::TuneSession* sess = tune::TuneSession::current();
  for (std::size_t i = 0; i < catalog_.size(); ++i) {
    const ProblemSpec& sp = catalog_[i];
    DslashProblem prob(sp.dims, sp.gauge_seed);
    for (int k = 1; k <= cfg_.cluster.total(); ++k) {
      // The dispatcher places either within one node or on whole nodes.
      if (k > cfg_.cluster.devices_per_node && k % cfg_.cluster.devices_per_node != 0)
        continue;
      const gpusim::NodeTopology etopo = multidev::effective_topology(topo_, k);

      tune::TuneKey key;
      if (sess != nullptr) {
        key.arch = tune::arch_fingerprint(runner.machine());
        key.geom = tune::geom_signature(sp.dims[0], sp.dims[1], sp.dims[2], sp.dims[3],
                                        /*even_target=*/true);
        key.kernel = "placement";
        key.config = "seed" + std::to_string(sp.gauge_seed) + " " +
                     tune::wire_fingerprint(etopo);
        key.devices = k;
        key.topo = tune::topo_signature(etopo.nodes, etopo.devices_per_node);
        if (const tune::TuneEntry* hit = sess->lookup(key); hit != nullptr) {
          // Warm start: adopt the cached grid without scoring any candidate,
          // re-profile it once and hold the honesty rule on its cost.
          PartitionGrid g;
          if (!PartitionGrid::from_label(hit->grid, g) ||
              !multidev::partition_error(prob.geom(), g).empty()) {
            throw tune::ReplayMismatch(key.canonical() + " (grid '" + hit->grid + "')",
                                       hit->per_iter_us, 0.0);
          }
          MultiDevRequest mreq;
          mreq.grid = g;
          mreq.req.iterations = 1;
          mreq.topo = etopo;
          const auto res = runner.run(prob, mreq);
          sess->verify(key, *hit, res.per_iter_us);
          placements_[i].push_back({k, g, res.per_iter_us});
          ++pricing_.placements_priced;
          ++pricing_.cache_hits;
          continue;
        }
      }

      const auto grids = multidev::enumerate_grids(prob.geom(), k);
      if (grids.empty()) continue;
      const PartitionGrid* best = nullptr;
      double best_cost = 0.0;
      for (const PartitionGrid& g : grids) {
        const double cost = multidev::score_grid(prob.geom(), g, etopo).cost_us;
        if (best == nullptr || cost < best_cost) {
          best = &g;
          best_cost = cost;
        }
      }
      pricing_.grids_scored += static_cast<int>(grids.size());
      MultiDevRequest mreq;
      mreq.grid = *best;
      mreq.req.iterations = 1;
      mreq.topo = etopo;
      const auto res = runner.run(prob, mreq);
      placements_[i].push_back({k, *best, res.per_iter_us});
      ++pricing_.placements_priced;
      if (sess != nullptr) {
        ++pricing_.cache_misses;
        tune::TuneEntry entry;
        entry.grid = best->label();
        entry.per_iter_us = res.per_iter_us;
        sess->record(key, entry);
      }
    }
  }
}

const SolverService::Placement* SolverService::placement_for(int spec, int devices) const {
  for (const Placement& p : placements_[static_cast<std::size_t>(spec)])
    if (p.devices == devices) return &p;
  return nullptr;
}

int SolverService::max_priced_devices(int spec) const {
  int m = 1;
  for (const Placement& p : placements_[static_cast<std::size_t>(spec)])
    m = std::max(m, p.devices);
  return m;
}

void SolverService::reset_runtime_state() {
  queue_ = AdmissionQueue(cfg_.queue);
  devices_.clear();
  nodes_.clear();
  inflight_.clear();
  tenant_busy_us_.clear();
  const int dpn = cfg_.cluster.devices_per_node;
  for (int k = 0; k < cfg_.cluster.total(); ++k)
    devices_.push_back({k, k / dpn, true, 0.0,
                        CircuitBreaker("d" + std::to_string(k), cfg_.device_breaker)});
  for (int j = 0; j < cfg_.cluster.nodes; ++j)
    nodes_.push_back({j, true, CircuitBreaker("n" + std::to_string(j), cfg_.node_breaker)});
}

int SolverService::alive_devices() const {
  int n = 0;
  for (const DeviceState& d : devices_) n += d.alive ? 1 : 0;
  return n;
}

std::vector<std::uint64_t> SolverService::reference_checksums(int spec, int rhs,
                                                              std::uint64_t source_seed,
                                                              Strategy strategy) const {
  const ProblemSpec& sp = catalog_[static_cast<std::size_t>(spec)];
  const ShardedCgConfig scfg = solver_config(sp, strategy, gpusim::NodeTopology{});
  ShardedCgSolver solver(sp.dims, sp.gauge_seed, sp.mass,
                         placements_[static_cast<std::size_t>(spec)].front().grid, scfg);
  std::vector<std::uint64_t> fnv;
  for (int r = 0; r < rhs; ++r) {
    ColorField b(solver.geom(), Parity::Even);
    b.fill_random(source_seed + static_cast<std::uint64_t>(r));
    ColorField x(solver.geom(), Parity::Even);
    x.zero();
    const ShardedCgResult res = solver.solve(b, x);
    (void)res;
    fnv.push_back(fnv1a(x.data(), x.bytes()));
  }
  return fnv;
}

// --- the event loop ---------------------------------------------------------

SloReport SolverService::run(const std::string& scenario, std::vector<SolveRequest> traffic,
                             std::vector<CancelEvent> cancels) {
  reset_runtime_state();

  SloReport rep;
  rep.scenario = scenario;
  faultsim::Injector* inj = faultsim::Injector::current();
  rep.fault_seed = inj != nullptr ? inj->plan().seed : 0;
  const std::size_t fault_mark = inj != nullptr ? inj->log().size() : 0;

  std::stable_sort(traffic.begin(), traffic.end(),
                   [](const SolveRequest& a, const SolveRequest& b) {
                     if (a.submit_us != b.submit_us) return a.submit_us < b.submit_us;
                     return a.id < b.id;
                   });
  std::stable_sort(cancels.begin(), cancels.end(),
                   [](const CancelEvent& a, const CancelEvent& b) {
                     if (a.at_us != b.at_us) return a.at_us < b.at_us;
                     return a.id < b.id;
                   });

  double now = 0.0;
  std::size_t ai = 0, ci = 0;
  const auto pending = [&] {
    return ai < traffic.size() || ci < cancels.size() || !inflight_.empty() ||
           !queue_.empty();
  };

  while (pending()) {
    for (DeviceState& d : devices_) d.breaker.poll(now);
    for (NodeState& n : nodes_) n.breaker.poll(now);

    // Completions due, earliest (then lowest id) first.
    for (;;) {
      int best = -1;
      for (std::size_t i = 0; i < inflight_.size(); ++i) {
        if (inflight_[i].complete_us > now) continue;
        if (best < 0 || inflight_[i].complete_us < inflight_[static_cast<std::size_t>(best)].complete_us ||
            (inflight_[i].complete_us == inflight_[static_cast<std::size_t>(best)].complete_us &&
             inflight_[i].req.id < inflight_[static_cast<std::size_t>(best)].req.id))
          best = static_cast<int>(i);
      }
      if (best < 0) break;
      Inflight f = std::move(inflight_[static_cast<std::size_t>(best)]);
      inflight_.erase(inflight_.begin() + best);
      process_completion(rep, std::move(f), now);
    }

    while (ci < cancels.size() && cancels[ci].at_us <= now)
      process_cancel(rep, cancels[ci++], now);
    while (ai < traffic.size() && traffic[ai].submit_us <= now)
      process_arrival(rep, traffic[ai++], now);

    health_checks(rep, now);
    run_probes(rep, now);
    sweep_queue(rep, now);
    dispatch_ready(rep, now);

    if (!pending()) break;
    const double next = next_event_time(now, ai, ci, traffic, cancels);
    if (next == kNoDeadline) {
      // Nothing will ever wake the scheduler again: terminal shed.
      for (SolveRequest& r : queue_.drain())
        shed(rep, r, ShedReason::no_capacity, "scheduler stalled with no capacity", now);
      break;
    }
    now = next;
  }

  rep.makespan_us = now;
  if (inj != nullptr) rep.faults_injected = inj->log().size() - fault_mark;

  for (const DeviceState& d : devices_)
    rep.breaker_events.insert(rep.breaker_events.end(), d.breaker.events().begin(),
                              d.breaker.events().end());
  for (const NodeState& n : nodes_)
    rep.breaker_events.insert(rep.breaker_events.end(), n.breaker.events().begin(),
                              n.breaker.events().end());
  std::stable_sort(rep.breaker_events.begin(), rep.breaker_events.end(),
                   [](const BreakerEvent& a, const BreakerEvent& b) {
                     if (a.at_us != b.at_us) return a.at_us < b.at_us;
                     return a.resource < b.resource;
                   });

  for (const auto& [tenant, busy] : tenant_busy_us_) {
    TenantSlo t;
    t.tenant = tenant;
    t.busy_device_us = busy;
    rep.tenants.push_back(t);
  }
  rep.finalize();
  return rep;
}

void SolverService::process_arrival(SloReport& rep, const SolveRequest& req, double now) {
  RequestOutcome out;
  out.req = req;
  out.status = RequestOutcome::Status::rejected;
  if (req.spec < 0 || req.spec >= static_cast<int>(catalog_.size())) {
    out.reason = to_string(RejectReason::invalid_spec);
    rep.outcomes.push_back(std::move(out));
    return;
  }
  faultsim::Injector* inj = faultsim::Injector::current();
  if (inj != nullptr &&
      inj->on_serve_check("serve/queue [" + std::to_string(req.id) + "] " + req.tenant)) {
    out.reason = to_string(RejectReason::admission_fault);
    rep.outcomes.push_back(std::move(out));
    return;
  }
  const AdmissionVerdict v = queue_.admit(req, now);
  if (!v.admitted) {
    out.reason = to_string(v.reason);
    rep.outcomes.push_back(std::move(out));
  }
  // Admitted requests reach the outcome list at their terminal state.
}

void SolverService::process_cancel(SloReport& rep, const CancelEvent& ev, double now) {
  SolveRequest q;
  if (queue_.cancel(ev.id, &q)) {
    RequestOutcome out;
    out.req = q;
    out.status = RequestOutcome::Status::cancelled;
    out.reason = to_string(ShedReason::cancelled_by_client);
    out.complete_us = now;
    rep.outcomes.push_back(std::move(out));
    degrade(rep, now, ev.id, "cancel", "cancelled while queued");
    return;
  }
  for (std::size_t i = 0; i < inflight_.size(); ++i) {
    if (inflight_[i].req.id != ev.id) continue;
    Inflight f = std::move(inflight_[i]);
    inflight_.erase(inflight_.begin() + static_cast<std::ptrdiff_t>(i));
    for (int d : f.devs)
      devices_[static_cast<std::size_t>(d)].busy_until =
          std::min(devices_[static_cast<std::size_t>(d)].busy_until, now);
    queue_.mark_done(f.req);
    RequestOutcome out = std::move(f.outcome);
    out.status = RequestOutcome::Status::cancelled;
    out.reason = to_string(ShedReason::cancelled_by_client);
    out.complete_us = now;
    out.solution_fnv.clear();  // an aborted solve delivers nothing
    rep.outcomes.push_back(std::move(out));
    degrade(rep, now, ev.id, "cancel", "cancelled in flight on " + device_label(f.devs));
    return;
  }
  degrade(rep, now, ev.id, "cancel", "unknown or finished id; ignored");
}

void SolverService::health_checks(SloReport& rep, double now) {
  faultsim::Injector* inj = faultsim::Injector::current();
  if (inj == nullptr) return;
  for (DeviceState& d : devices_) {
    if (!d.alive || d.busy_until > now) continue;
    if (inj->on_device_check("serve/device d" + std::to_string(d.id))) {
      d.alive = false;
      d.down_since = now;
      degrade(rep, now, 0, "device-lost", "d" + std::to_string(d.id) + " lost (serve-tier check)");
    }
  }
  const int dpn = cfg_.cluster.devices_per_node;
  for (NodeState& n : nodes_) {
    if (!n.alive) continue;
    bool all_idle = true;
    for (int k = n.id * dpn; k < (n.id + 1) * dpn; ++k)
      all_idle = all_idle && devices_[static_cast<std::size_t>(k)].busy_until <= now;
    if (!all_idle) continue;
    if (inj->on_node_check("serve/node n" + std::to_string(n.id))) {
      n.alive = false;
      n.down_since = now;
      for (int k = n.id * dpn; k < (n.id + 1) * dpn; ++k) {
        DeviceState& d = devices_[static_cast<std::size_t>(k)];
        d.alive = false;
        d.down_since = now;
      }
      degrade(rep, now, 0, "node-lost",
              "n" + std::to_string(n.id) + " lost with all its devices (serve-tier check)");
    }
  }

  // Heal checks — the elastic-recovery return path.  A healed resource never
  // goes straight back into traffic: its breaker is forced into half-open
  // probation, so capacity returns through a rejoin probe (run_probes) that
  // must succeed first.  Heal draws come from the injector's dedicated heal
  // stream, so consulting them never perturbs the loss draws above.
  const auto rejoin_device = [&](DeviceState& d) {
    d.alive = true;
    d.breaker.begin_probation(now, "rejoined after heal; probing before traffic");
    if (d.down_since >= 0.0) rep.recovery_time_us += now - d.down_since;
    d.down_since = -1.0;
    ++rep.devices_rejoined;
  };
  for (DeviceState& d : devices_) {
    // A device that died with its node returns with its node, not alone.
    if (d.alive || d.down_since >= now) continue;
    if (!nodes_[static_cast<std::size_t>(d.node)].alive) continue;
    if (inj->on_heal_check("heal/device d" + std::to_string(d.id))) {
      rejoin_device(d);
      degrade(rep, now, 0, "device-rejoined",
              "d" + std::to_string(d.id) + " healed; half-open probation");
    }
  }
  for (NodeState& n : nodes_) {
    if (n.alive || n.down_since >= now) continue;
    if (inj->on_heal_check("heal/node n" + std::to_string(n.id))) {
      n.alive = true;
      n.breaker.begin_probation(now, "rejoined after heal; probing before traffic");
      if (n.down_since >= 0.0) rep.recovery_time_us += now - n.down_since;
      n.down_since = -1.0;
      ++rep.nodes_rejoined;
      for (int k = n.id * dpn; k < (n.id + 1) * dpn; ++k) {
        DeviceState& d = devices_[static_cast<std::size_t>(k)];
        if (!d.alive) rejoin_device(d);
      }
      degrade(rep, now, 0, "node-rejoined",
              "n" + std::to_string(n.id) + " healed with its devices; half-open probation");
    }
  }
}

void SolverService::run_probes(SloReport& rep, double now) {
  faultsim::Injector* inj = faultsim::Injector::current();
  const auto probe = [&](CircuitBreaker& b, const std::string& name) {
    if (!b.probe_allowed()) return;
    const int token = b.probe_started();
    const bool failed =
        inj != nullptr && inj->on_serve_check("serve/probe " + name);
    if (failed) {
      b.on_probe_failure(now, "injected probe fault", token);
      degrade(rep, now, 0, "probe", name + " probe failed");
    } else {
      b.on_probe_success(now, token);
      degrade(rep, now, 0, "probe", name + " probe ok");
    }
  };
  for (DeviceState& d : devices_) {
    if (!d.alive) continue;
    probe(d.breaker, "d" + std::to_string(d.id));
  }
  for (NodeState& n : nodes_) {
    if (!n.alive) continue;
    probe(n.breaker, "n" + std::to_string(n.id));
  }
}

void SolverService::sweep_queue(SloReport& rep, double now) {
  for (SolveRequest& r : queue_.sweep_expired(now))
    shed(rep, r, ShedReason::deadline_expired_in_queue,
         "deadline " + std::to_string(r.deadline_us) + " us passed while queued", now);
}

SolverService::PlacePick SolverService::pick_devices(int k, double now) const {
  PlacePick pick;
  const int dpn = cfg_.cluster.devices_per_node;
  if (k <= dpn) {
    bool saw_busy = false;
    for (const NodeState& n : nodes_) {
      if (!n.alive || !n.breaker.allow()) continue;
      int usable = 0;
      std::vector<int> free;
      for (int id = n.id * dpn; id < (n.id + 1) * dpn; ++id) {
        const DeviceState& d = devices_[static_cast<std::size_t>(id)];
        if (!d.alive || !d.breaker.allow()) continue;
        ++usable;
        if (d.busy_until <= now) free.push_back(id);
      }
      if (usable < k) continue;
      if (static_cast<int>(free.size()) >= k) {
        pick.status = PlacePick::Status::placed;
        pick.devs.assign(free.begin(), free.begin() + k);
        return pick;
      }
      saw_busy = true;
    }
    pick.status = saw_busy ? PlacePick::Status::busy : PlacePick::Status::infeasible;
    return pick;
  }
  if (k % dpn != 0) return pick;  // infeasible by construction
  const int need = k / dpn;
  std::vector<int> free_nodes;
  int usable_nodes = 0;
  for (const NodeState& n : nodes_) {
    if (!n.alive || !n.breaker.allow()) continue;
    bool whole = true, idle = true;
    for (int id = n.id * dpn; id < (n.id + 1) * dpn; ++id) {
      const DeviceState& d = devices_[static_cast<std::size_t>(id)];
      whole = whole && d.alive && d.breaker.allow();
      idle = idle && d.busy_until <= now;
    }
    if (!whole) continue;
    ++usable_nodes;
    if (idle) free_nodes.push_back(n.id);
  }
  if (usable_nodes < need) return pick;
  if (static_cast<int>(free_nodes.size()) < need) {
    pick.status = PlacePick::Status::busy;
    return pick;
  }
  pick.status = PlacePick::Status::placed;
  for (int j = 0; j < need; ++j)
    for (int id = free_nodes[static_cast<std::size_t>(j)] * dpn;
         id < (free_nodes[static_cast<std::size_t>(j)] + 1) * dpn; ++id)
      pick.devs.push_back(id);
  return pick;
}

void SolverService::dispatch_ready(SloReport& rep, double now) {
  std::vector<SolveRequest> held;
  SolveRequest req;
  while (queue_.pop(now, req)) {
    if (alive_devices() == 0) {
      shed(rep, req, ShedReason::no_capacity, "every device lost", now);
      continue;
    }
    faultsim::Injector* inj = faultsim::Injector::current();
    if (inj != nullptr &&
        inj->on_serve_check("serve/dispatch [" + std::to_string(req.id) + "]")) {
      ++req.dispatch_attempts;
      degrade(rep, now, req.id, "dispatch-fault",
              "dispatch attempt " + std::to_string(req.dispatch_attempts) + " faulted");
      if (req.dispatch_attempts > req.retry_budget) {
        shed(rep, req, ShedReason::dispatch_fault_budget,
             std::to_string(req.dispatch_attempts) + " faulted dispatches", now);
      } else {
        req.not_before_us =
            now + cfg_.retry_backoff_us *
                      std::pow(cfg_.retry_backoff_factor,
                               static_cast<double>(req.dispatch_attempts - 1));
        queue_.requeue(req);
      }
      continue;
    }

    const int target_k = std::max(1, std::min(req.devices, max_priced_devices(req.spec)));
    const Placement* chosen = nullptr;
    PlacePick pick;
    bool blocked_by_busy = false;
    const auto& specs = placements_[static_cast<std::size_t>(req.spec)];
    for (auto it = specs.rbegin(); it != specs.rend(); ++it) {
      if (it->devices > target_k) continue;
      PlacePick pp = pick_devices(it->devices, now);
      if (pp.status == PlacePick::Status::placed) {
        chosen = &*it;
        pick = std::move(pp);
        break;
      }
      if (pp.status == PlacePick::Status::busy) {
        // Capacity at this width exists but is occupied: wait for it rather
        // than degrading the request onto fewer devices.
        blocked_by_busy = true;
        break;
      }
      // infeasible at this width (dead or breaker-open devices): shrink.
    }
    if (chosen == nullptr) {
      held.push_back(req);
      (void)blocked_by_busy;
      continue;
    }
    if (chosen->devices < target_k)
      degrade(rep, now, req.id, "shrink-to-survivors",
              "placed on " + std::to_string(chosen->devices) + " of " +
                  std::to_string(target_k) + " requested devices (" +
                  device_label(pick.devs) + ")");

    int apply_budget = 0;
    if (req.deadline_us != kNoDeadline) {
      const double remaining = req.deadline_us - (now + cfg_.dispatch_overhead_us);
      apply_budget = static_cast<int>(
          std::floor(remaining / (2.0 * chosen->per_iter_us)));
      if (apply_budget < cfg_.min_applies_per_rhs * req.rhs) {
        shed(rep, req, ShedReason::deadline_unreachable,
             "budget of " + std::to_string(apply_budget) + " applies cannot cover " +
                 std::to_string(req.rhs) + " rhs on " + std::to_string(chosen->devices) +
                 " devices",
             now);
        continue;
      }
    }

    ++req.dispatch_attempts;
    Inflight f;
    f.req = req;
    f.devs = pick.devs;
    queue_.mark_inflight(req);
    execute(rep, f, *chosen, apply_budget, now);
    inflight_.push_back(std::move(f));
  }
  for (SolveRequest& r : held) queue_.requeue(std::move(r));
}

void SolverService::execute(SloReport& rep, Inflight& f, const Placement& placement,
                            int apply_budget, double now) {
  const ProblemSpec& sp = catalog_[static_cast<std::size_t>(f.req.spec)];
  const int rung = std::min(f.req.fallback_rung,
                            static_cast<int>(cfg_.ladder.size()) - 1);
  const Strategy strat = rung <= 0 ? f.req.strategy : cfg_.ladder[static_cast<std::size_t>(rung)];
  const gpusim::NodeTopology etopo = multidev::effective_topology(topo_, placement.devices);

  int applies_total = 0;
  ShardedCgConfig scfg = solver_config(sp, strat, etopo, cfg_.async_checkpoint);
  if (apply_budget > 0) {
    scfg.cancel = [&applies_total, apply_budget](int, int applies) {
      return applies_total + applies >= apply_budget;
    };
  }
  ShardedCgSolver solver(sp.dims, sp.gauge_seed, sp.mass, placement.grid, scfg);

  f.outcome = RequestOutcome{};
  f.outcome.req = f.req;
  f.outcome.dispatch_us = now;
  f.outcome.strategy_used = strat;
  f.outcome.devices = device_label(f.devs);
  f.outcome.grid = placement.grid.label();
  f.rank_faults.clear();
  f.node_faults.clear();

  const double start = now + cfg_.dispatch_overhead_us;
  double solve_us = 0.0;
  bool all_ok = true;
  for (int r = 0; r < f.req.rhs; ++r) {
    if (apply_budget > 0 && applies_total >= apply_budget) {
      all_ok = false;
      f.fail_reason = ShedReason::deadline_budget_exhausted;
      f.fail_detail = "apply budget spent after " + std::to_string(r) + " of " +
                      std::to_string(f.req.rhs) + " rhs";
      break;
    }
    ColorField b(solver.geom(), Parity::Even);
    b.fill_random(f.req.source_seed + static_cast<std::uint64_t>(r));
    ColorField x(solver.geom(), Parity::Even);
    x.zero();
    const ShardedCgResult sres = solver.solve(b, x);

    applies_total += sres.applies;
    // Hidden applies (async checkpoint audits) overlap the next iteration's
    // apply window: they cost devices nothing on the critical path.
    solve_us += (sres.applies - sres.hidden_applies) * 2.0 * placement.per_iter_us +
                sres.recovery_us;
    f.outcome.iterations += sres.cg.iterations;
    f.outcome.applies += sres.applies;
    f.outcome.restarts += sres.restarts;
    f.outcome.failovers += sres.failovers_observed;
    f.outcome.faults_observed += sres.faults.size();
    f.outcome.worst_true_residual =
        std::max(f.outcome.worst_true_residual, sres.cg.true_relative_residual);
    f.outcome.spares_consumed += sres.spares_consumed;
    f.outcome.rejoins += sres.rejoins;
    f.outcome.capacity_restored += sres.capacity_restored;
    f.outcome.rereplicated_bytes += sres.rereplicated_bytes;
    f.outcome.rereplication_us += sres.rereplication_us;
    for (const faultsim::FaultEvent& e : sres.faults) {
      if (e.kind == faultsim::FaultKind::heal) continue;  // a return, not a fault
      if (e.kind == faultsim::FaultKind::node_loss) {
        const int jn = parse_indexed(e.site, 'n');
        if (jn >= 0) ++f.node_faults[jn];
        continue;
      }
      const int rk = parse_indexed(e.site, 'r');
      if (rk >= 0) ++f.rank_faults[rk];
    }
    if (sres.failovers_observed > 0)
      degrade(rep, now, f.req.id, "failover",
              "grid " + placement.grid.label() + " -> " + sres.final_grid.label() +
                  " during rhs " + std::to_string(r));
    if (sres.spares_consumed > 0)
      degrade(rep, now, f.req.id, "re-replication",
              std::to_string(sres.spares_consumed) + " shard(s) re-replicated onto spares (" +
                  std::to_string(sres.rereplicated_bytes) + " bytes) during rhs " +
                  std::to_string(r));
    if (sres.rejoins > 0)
      degrade(rep, now, f.req.id, "rejoin",
              std::to_string(sres.rejoins) + " rejoin(s) restored " +
                  std::to_string(sres.capacity_restored) + " device(s) of capacity during rhs " +
                  std::to_string(r));

    if (sres.cancelled) {
      all_ok = false;
      f.fail_reason = ShedReason::deadline_budget_exhausted;
      f.fail_detail = "solve of rhs " + std::to_string(r) + " ran out of its " +
                      std::to_string(apply_budget) + "-apply budget";
      break;
    }
    if (!sres.recovered_all) {
      all_ok = false;
      f.fail_reason = ShedReason::recovery_exhausted;
      f.fail_detail = "recovery ladder exhausted on rhs " + std::to_string(r);
      break;
    }
    if (!sres.cg.converged) {
      all_ok = false;
      f.fail_reason = ShedReason::no_convergence;
      f.fail_detail = "rhs " + std::to_string(r) + " stopped at residual " +
                      std::to_string(sres.cg.relative_residual);
      break;
    }
    ++f.outcome.rhs_done;
    f.outcome.solution_fnv.push_back(fnv1a(x.data(), x.bytes()));
  }

  f.ok = all_ok && f.outcome.rhs_done == f.req.rhs;
  // Every accepted apply ran under the ABFT Hermitian-identity check — the
  // solve is certified exactly when it completed with all recoveries intact.
  f.outcome.abft_certified = f.ok;
  f.complete_us = start + solve_us;
  for (int d : f.devs) devices_[static_cast<std::size_t>(d)].busy_until = f.complete_us;
  tenant_busy_us_[f.req.tenant] +=
      (f.complete_us - now) * static_cast<double>(placement.devices);
}

void SolverService::process_completion(SloReport& rep, Inflight f, double now) {
  queue_.mark_done(f.req);

  // Feed the breakers: a rank with attributed faults is a failure of its
  // physical device; a clean participating device is a success.  (Rank ->
  // physical attribution is best-effort: post-failover grids renumber ranks,
  // so counts are clamped into the placement.)
  const int dpn = cfg_.cluster.devices_per_node;
  std::vector<int> fault_hits(f.devs.size(), 0);
  for (const auto& [rank, count] : f.rank_faults) {
    const std::size_t j = static_cast<std::size_t>(
        std::min<int>(rank, static_cast<int>(f.devs.size()) - 1));
    fault_hits[j] += count;
  }
  for (std::size_t j = 0; j < f.devs.size(); ++j) {
    DeviceState& d = devices_[static_cast<std::size_t>(f.devs[j])];
    if (!d.alive) continue;
    if (fault_hits[j] > 0)
      d.breaker.on_failure(now, std::to_string(fault_hits[j]) + " faults in solve of #" +
                                    std::to_string(f.req.id));
    else
      d.breaker.on_success(now);
  }
  for (const auto& [jn, count] : f.node_faults) {
    const std::size_t base = static_cast<std::size_t>(jn) * static_cast<std::size_t>(dpn);
    if (base >= f.devs.size()) continue;
    NodeState& n = nodes_[static_cast<std::size_t>(
        devices_[static_cast<std::size_t>(f.devs[base])].node)];
    if (n.alive)
      n.breaker.on_failure(now, std::to_string(count) + " node faults in solve of #" +
                                    std::to_string(f.req.id));
  }

  if (f.ok) {
    RequestOutcome out = std::move(f.outcome);
    out.complete_us = now;
    out.latency_us = now - f.req.submit_us;
    out.deadline_met = now <= f.req.deadline_us;
    out.status = RequestOutcome::Status::completed;
    rep.outcomes.push_back(std::move(out));
    return;
  }
  if (f.fail_reason == ShedReason::deadline_budget_exhausted) {
    // Retrying cannot mint more time before the same deadline.
    shed(rep, f.req, f.fail_reason, f.fail_detail, now, &f.outcome);
    return;
  }
  if (f.req.dispatch_attempts > f.req.retry_budget) {
    shed(rep, f.req, f.fail_reason, f.fail_detail + "; retry budget spent", now, &f.outcome);
    return;
  }
  SolveRequest r = f.req;
  r.fallback_rung = std::min(r.fallback_rung + 1, static_cast<int>(cfg_.ladder.size()) - 1);
  r.not_before_us = now + cfg_.retry_backoff_us *
                              std::pow(cfg_.retry_backoff_factor,
                                       static_cast<double>(r.dispatch_attempts - 1));
  degrade(rep, now, r.id, "strategy-fallback",
          "retry " + std::to_string(r.dispatch_attempts) + " as " +
              to_string(cfg_.ladder[static_cast<std::size_t>(r.fallback_rung)]) +
              " after: " + f.fail_detail);
  queue_.requeue(std::move(r));
}

void SolverService::shed(SloReport& rep, const SolveRequest& req, ShedReason reason,
                         std::string detail, double now, RequestOutcome* partial) {
  RequestOutcome out = partial != nullptr ? std::move(*partial) : RequestOutcome{};
  out.req = req;
  out.status = RequestOutcome::Status::shed;
  out.reason = to_string(reason);
  out.complete_us = now;
  out.solution_fnv.clear();  // a shed request delivers nothing
  rep.outcomes.push_back(std::move(out));
  degrade(rep, now, req.id, "shed", std::string(to_string(reason)) + ": " + std::move(detail));
}

void SolverService::degrade(SloReport& rep, double now, std::uint64_t req_id,
                            std::string kind, std::string detail) {
  rep.degradations.push_back({now, req_id, std::move(kind), std::move(detail)});
}

double SolverService::next_event_time(double now, std::size_t next_arrival,
                                      std::size_t next_cancel,
                                      const std::vector<SolveRequest>& traffic,
                                      const std::vector<CancelEvent>& cancels) const {
  double next = kNoDeadline;
  if (next_arrival < traffic.size())
    next = std::min(next, traffic[next_arrival].submit_us);
  if (next_cancel < cancels.size()) next = std::min(next, cancels[next_cancel].at_us);
  for (const Inflight& f : inflight_) next = std::min(next, f.complete_us);
  if (!queue_.empty()) {
    next = std::min(next, queue_.next_ready_us(now));
    for (const DeviceState& d : devices_) {
      if (!d.alive) continue;
      if (d.busy_until > now) next = std::min(next, d.busy_until);
      if (d.breaker.state() == BreakerState::open && d.breaker.open_until() > now)
        next = std::min(next, d.breaker.open_until());
    }
    for (const NodeState& n : nodes_) {
      if (!n.alive) continue;
      if (n.breaker.state() == BreakerState::open && n.breaker.open_until() > now)
        next = std::min(next, n.breaker.open_until());
    }
    if (next == kNoDeadline) {
      // Queued work with nothing left to wake the scheduler would normally
      // shed terminally — but when the fault plan can heal resources and a
      // dead one exists, keep polling so a scheduled heal can rejoin it.
      const faultsim::Injector* inj = faultsim::Injector::current();
      bool can_heal = false;
      if (inj != nullptr) {
        can_heal = inj->plan().p_heal > 0.0;
        for (const faultsim::ScheduledFault& sf : inj->plan().schedule)
          can_heal = can_heal || sf.kind == faultsim::FaultKind::heal;
      }
      bool any_dead = false;
      for (const DeviceState& d : devices_) any_dead = any_dead || !d.alive;
      if (can_heal && any_dead) next = now + 1'000.0;  // heal-poll tick
    }
  }
  if (next <= now) next = now + 1.0;  // monotonic-clock backstop
  return next;
}

}  // namespace milc::serve
