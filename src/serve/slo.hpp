// slo.hpp — structured service-level accounting for the serving tier.
//
// The SloReport is the service's contract with its chaos tests: every
// request is enumerated with its fate (completed / rejected / shed /
// cancelled) and reason, every degradation decision (failover,
// shrink-to-survivors, strategy fallback, shed) is an event, latency
// percentiles run on the simulated clock, and per-tenant rows expose
// fairness.  `canonical()` is a deterministic serialization: two runs of the
// same seeded scenario must produce byte-identical strings, which is how
// replay identity is asserted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/breaker.hpp"
#include "serve/request.hpp"

namespace milc::serve {

/// The fate of one request, filled in as the service processes it.
struct RequestOutcome {
  enum class Status { rejected, completed, shed, cancelled };

  SolveRequest req;
  Status status = Status::rejected;
  std::string reason;  ///< reject/shed reason string; empty for completed

  double dispatch_us = -1.0;  ///< first dispatch time; -1 = never dispatched
  double complete_us = -1.0;  ///< completion/shed time on the simulated clock
  double latency_us = 0.0;    ///< complete - submit (completed requests)
  bool deadline_met = false;

  std::string devices;  ///< physical placement, e.g. "d0+d1"
  std::string grid;     ///< partition grid label actually used
  Strategy strategy_used = Strategy::LP3_1;
  int rhs_done = 0;       ///< right-hand sides finished (== req.rhs when completed)
  int iterations = 0;     ///< CG iterations, summed over RHS
  int applies = 0;        ///< operator applications, summed over RHS
  int restarts = 0;       ///< checkpoint restores, summed over RHS
  int failovers = 0;      ///< grid failovers observed inside the solves
  std::size_t faults_observed = 0;  ///< injected faults logged during the solves
  bool abft_certified = false;      ///< every apply ran under the ABFT identity
  double worst_true_residual = 0.0;
  // Elastic recovery inside the solves (summed over RHS):
  int spares_consumed = 0;              ///< hot spares drafted by re-replication
  int rejoins = 0;                      ///< healed resources re-admitted mid-solve
  int capacity_restored = 0;            ///< devices of capacity regained by rejoins
  std::int64_t rereplicated_bytes = 0;  ///< slab bytes re-replicated to spares
  double rereplication_us = 0.0;        ///< wire + backoff time of those moves
  /// FNV-1a checksum of each RHS solution's raw bytes — the bit-for-bit
  /// verification handle (compared against fault-free reference solves).
  std::vector<std::uint64_t> solution_fnv;

  [[nodiscard]] const char* status_str() const;
};

/// One graceful-degradation decision (or resource-health transition).
struct DegradationEvent {
  double at_us = 0.0;
  std::uint64_t request_id = 0;  ///< 0 when not tied to one request
  std::string kind;  ///< failover | shrink-to-survivors | strategy-fallback |
                     ///< shed | device-lost | node-lost | probe
  std::string detail;
};

/// Per-tenant aggregates — the fairness view.
struct TenantSlo {
  std::string tenant;
  int submitted = 0, admitted = 0, rejected = 0;
  int completed = 0, shed = 0, cancelled = 0;
  int deadline_met = 0, deadline_missed = 0;
  double busy_device_us = 0.0;  ///< device-occupancy consumed (capacity share)
  double p50_latency_us = 0.0, p99_latency_us = 0.0;
};

struct SloReport {
  std::string scenario;
  std::uint64_t fault_seed = 0;
  double makespan_us = 0.0;  ///< clock value when the last event settled

  // Aggregates over outcomes (filled by finalize()).
  int submitted = 0, admitted = 0, rejected = 0;
  int completed = 0, shed = 0, cancelled = 0;
  int deadline_met = 0, deadline_missed = 0;
  double p50_latency_us = 0.0, p99_latency_us = 0.0, max_latency_us = 0.0;

  // Elastic recovery accounting.  The solver-level counters are summed over
  // outcomes by finalize(); the serve-tier counters (resources healed by the
  // service's own heal checks, and their cumulative outage time) are filled
  // by the service as heals land.
  int spares_consumed = 0;
  int rejoins = 0;
  int capacity_restored = 0;
  std::int64_t rereplicated_bytes = 0;
  double rereplication_us = 0.0;
  int devices_rejoined = 0;       ///< serve-tier device heals (probation via breaker)
  int nodes_rejoined = 0;         ///< serve-tier node heals
  double recovery_time_us = 0.0;  ///< summed loss-to-heal outage of rejoined resources

  std::vector<RequestOutcome> outcomes;  ///< sorted by request id
  std::vector<TenantSlo> tenants;        ///< sorted by tenant name
  std::vector<DegradationEvent> degradations;
  std::vector<BreakerEvent> breaker_events;
  std::size_t faults_injected = 0;  ///< injector log entries during the run

  /// Sort outcomes, compute the aggregate counters, percentiles and the
  /// per-tenant table.  Call once, after the run drains.
  void finalize();

  /// Human-readable multi-line account.
  [[nodiscard]] std::string summary() const;

  /// Deterministic full serialization — byte-identical across replays of
  /// the same seeded scenario (the reproducibility oracle).
  [[nodiscard]] std::string canonical() const;
};

/// Nearest-rank percentile of an unsorted sample (q in [0, 1]); 0 when empty.
[[nodiscard]] double percentile_us(std::vector<double> sample, double q);

}  // namespace milc::serve
