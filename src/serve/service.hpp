// service.hpp — the resilient multi-tenant solver service.
//
// SolverService accepts a stream of independent solve requests (mixed
// lattice sizes, right-hand-side counts, per-request deadlines, priorities
// and tenants) and schedules them across the simulated cluster on the
// deterministic clock.  It composes the serving tier end to end:
//
//   traffic ──> AdmissionQueue ──> dispatcher ──> ShardedCgSolver ──> SloReport
//                (quotas,           (placement,     (ABFT + checkpoint
//                 backpressure)      breakers,       + failover solves)
//                                    deadlines)
//
// The degradation ladder, in order of preference:
//   1. failover        — the hardened runner shrinks the grid mid-solve
//                        (recorded from the solve result);
//   2. shrink-to-survivors — the dispatcher places a request on fewer
//                        devices than it asked for when the preferred count
//                        is dead or breaker-open;
//   3. strategy-fallback — a failed solve retries on the next ladder rung;
//   4. shed            — the request is dropped with an enumerated
//                        ShedReason (the last resort, never silent).
//
// Pricing happens once, at construction, fault-free: every (catalog spec,
// device count) placement is profiled through MultiDeviceRunner::run before
// any fault plan exists, so admission and deadline arithmetic never perturb
// the injector's draw streams.  Everything after that runs on the simulated
// clock only — two runs of the same seeded scenario produce byte-identical
// SloReport::canonical() strings.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "multidev/sharded_cg.hpp"
#include "serve/breaker.hpp"
#include "serve/queue.hpp"
#include "serve/slo.hpp"

namespace milc::serve {

/// The machine the service schedules onto: `nodes` node groups of
/// `devices_per_node` devices each (gpusim::cluster pricing underneath).
struct ClusterSpec {
  int nodes = 2;
  int devices_per_node = 2;

  [[nodiscard]] int total() const { return nodes * devices_per_node; }
};

/// A client cancellation arriving at `at_us` for request `id` — cancels the
/// request whether it is still queued or already dispatched.
struct CancelEvent {
  double at_us = 0.0;
  std::uint64_t id = 0;
};

struct ServiceConfig {
  ClusterSpec cluster{};
  QueueConfig queue{};
  BreakerConfig device_breaker{};
  BreakerConfig node_breaker{};

  /// Hot-spare inventory advertised to every dispatched solve: with spares
  /// the hardened runner re-replicates a lost shard onto a standby instead
  /// of shrinking the grid, so placement capacity survives device loss.
  gpusim::SpareInventory spares{};
  /// Run dispatched solves with asynchronous checkpointing (staging off the
  /// critical path, audit overlapped with the next apply).  Solve time then
  /// charges only `applies - hidden_applies` operator applications.
  bool async_checkpoint = false;

  double dispatch_overhead_us = 25.0;  ///< control-plane cost per dispatch
  double retry_backoff_us = 500.0;     ///< requeue backoff = base * factor^(attempt-1)
  double retry_backoff_factor = 2.0;
  /// A dispatch whose deadline buys fewer operator applications than this
  /// (per right-hand side) is hopeless: shed as deadline-unreachable instead
  /// of burning devices on it.
  int min_applies_per_rhs = 4;
  /// Strategy rungs for the strategy-fallback degradation step; rung 0 is
  /// overridden by the request's own preferred strategy.
  std::vector<Strategy> ladder = {Strategy::LP3_1, Strategy::LP2, Strategy::LP1};
};

/// FNV-1a over raw bytes — the bit-for-bit solution fingerprint.
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t bytes);

class SolverService {
 public:
  /// One priced way to run one catalog spec: how many devices, which
  /// partition grid, and the fault-free per-Dslash-iteration cost.
  struct Placement {
    int devices = 1;
    multidev::PartitionGrid grid{};
    double per_iter_us = 0.0;
  };

  /// Construction-time pricing accounting.  A warm-started service (a
  /// tune::TuneSession with the relevant "placement" entries installed)
  /// adopts cached grid decisions instead of scoring every candidate grid:
  /// cache_hits rises and grids_scored drops to zero while
  /// placements_priced stays identical — the measurable skip that
  /// bench_tune and the serve warm-start test assert (docs/TUNING.md).
  struct PricingStats {
    int placements_priced = 0;  ///< (spec, device count) placements profiled
    int grids_scored = 0;       ///< candidate grids scored across all placements
    int cache_hits = 0;         ///< placements replayed from the tuning cache
    int cache_misses = 0;       ///< placements explored (and recorded) cold
  };

  /// Prices every (spec, device count) placement fault-free.  Construct the
  /// service BEFORE installing a fault plan.  Each placement consults the
  /// installed tune::TuneSession first; a hit replays the cached grid and
  /// verifies the profiled per-iteration time bit-for-bit.
  explicit SolverService(std::vector<ProblemSpec> catalog, ServiceConfig cfg = {});

  [[nodiscard]] const std::vector<ProblemSpec>& catalog() const { return catalog_; }
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }
  /// Priced placements of one spec, ascending device count (at least the
  /// single-device entry; wider counts only where the lattice partitions).
  [[nodiscard]] const std::vector<Placement>& placements(int spec) const {
    return placements_[static_cast<std::size_t>(spec)];
  }
  [[nodiscard]] const PricingStats& pricing_stats() const { return pricing_; }

  /// Run one traffic scenario to completion on the simulated clock.  All
  /// mutable scheduler state (devices, breakers, queue) resets at entry, so
  /// the same service can replay scenarios back to back.  Install a fault
  /// plan around this call to run chaos traffic.
  [[nodiscard]] SloReport run(const std::string& scenario,
                              std::vector<SolveRequest> traffic,
                              std::vector<CancelEvent> cancels = {});

  /// Fault-free reference solution checksums for (spec, rhs, source_seed)
  /// solved with `strategy` — the bit-for-bit oracle the chaos benches
  /// compare completed requests against (pass the outcome's strategy_used:
  /// bit-identity holds per strategy, across grids and fault storms).  Call
  /// with NO fault plan installed.
  [[nodiscard]] std::vector<std::uint64_t> reference_checksums(
      int spec, int rhs, std::uint64_t source_seed,
      Strategy strategy = Strategy::LP3_1) const;

 private:
  struct DeviceState {
    int id = 0;
    int node = 0;
    bool alive = true;
    double busy_until = 0.0;
    CircuitBreaker breaker;
    double down_since = -1.0;  ///< clock at loss; -1 when alive (recovery time)
  };
  struct NodeState {
    int id = 0;
    bool alive = true;
    CircuitBreaker breaker;
    double down_since = -1.0;
  };
  /// A dispatched request: the solve executed eagerly at dispatch (the
  /// kernels are real), its *simulated* completion lands at `complete_us`.
  struct Inflight {
    SolveRequest req;
    RequestOutcome outcome;
    std::vector<int> devs;
    double complete_us = 0.0;
    bool ok = false;
    ShedReason fail_reason = ShedReason::recovery_exhausted;
    std::string fail_detail;
    /// (rank -> fault count) attribution parsed from the solve's fault log.
    std::map<int, int> rank_faults;
    std::map<int, int> node_faults;  ///< run-topology node index -> count
  };

  struct PlacePick {
    enum class Status { placed, busy, infeasible } status = Status::infeasible;
    std::vector<int> devs;
  };

  void reset_runtime_state();
  void price_catalog();
  [[nodiscard]] const Placement* placement_for(int spec, int devices) const;
  [[nodiscard]] int max_priced_devices(int spec) const;

  [[nodiscard]] PlacePick pick_devices(int k, double now) const;
  [[nodiscard]] int alive_devices() const;

  void process_arrival(SloReport& rep, const SolveRequest& req, double now);
  void process_cancel(SloReport& rep, const CancelEvent& ev, double now);
  void process_completion(SloReport& rep, Inflight f, double now);
  void health_checks(SloReport& rep, double now);
  void run_probes(SloReport& rep, double now);
  void sweep_queue(SloReport& rep, double now);
  void dispatch_ready(SloReport& rep, double now);
  void execute(SloReport& rep, Inflight& f, const Placement& placement,
               int apply_budget, double now);
  void shed(SloReport& rep, const SolveRequest& req, ShedReason reason,
            std::string detail, double now, RequestOutcome* partial = nullptr);
  void degrade(SloReport& rep, double now, std::uint64_t req_id, std::string kind,
               std::string detail);
  [[nodiscard]] double next_event_time(double now, std::size_t next_arrival,
                                       std::size_t next_cancel,
                                       const std::vector<SolveRequest>& traffic,
                                       const std::vector<CancelEvent>& cancels) const;

  std::vector<ProblemSpec> catalog_;
  ServiceConfig cfg_;
  gpusim::NodeTopology topo_;
  std::vector<std::vector<Placement>> placements_;
  PricingStats pricing_;

  // --- per-run state (reset by run()) --------------------------------------
  AdmissionQueue queue_;
  std::vector<DeviceState> devices_;
  std::vector<NodeState> nodes_;
  std::vector<Inflight> inflight_;
  std::map<std::string, double> tenant_busy_us_;
};

}  // namespace milc::serve
