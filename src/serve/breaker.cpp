#include "serve/breaker.hpp"

#include <algorithm>
#include <cmath>

namespace milc::serve {

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::closed: return "closed";
    case BreakerState::open: return "open";
    case BreakerState::half_open: return "half-open";
  }
  return "unknown";
}

void CircuitBreaker::transition(double now, BreakerState to, const std::string& why) {
  events_.push_back({now, resource_, state_, to, why});
  state_ = to;
}

void CircuitBreaker::poll(double now) {
  if (state_ == BreakerState::open && now >= open_until_) {
    transition(now, BreakerState::half_open, "cooloff elapsed");
    half_open_successes_ = 0;
    probe_outstanding_ = false;
    live_probe_token_ = 0;
  }
}

void CircuitBreaker::reopen(double now, const std::string& why) {
  ++trips_;
  const double cooloff = std::min(
      cfg_.max_cooloff_us,
      cfg_.cooloff_us * std::pow(cfg_.cooloff_factor, static_cast<double>(trips_ - 1)));
  open_until_ = now + cooloff;
  transition(now, BreakerState::open, why);
  // Leaving half-open invalidates any in-flight probe: its outcome, however
  // late it lands, must not resolve against the new open/half-open cycle.
  probe_outstanding_ = false;
  live_probe_token_ = 0;
  half_open_successes_ = 0;
}

void CircuitBreaker::on_probe_success(double now, int token) {
  if (state_ != BreakerState::half_open || token == 0 || token != live_probe_token_) {
    return;  // stale probe: the breaker moved on since this probe departed
  }
  probe_outstanding_ = false;
  live_probe_token_ = 0;
  if (++half_open_successes_ >= cfg_.successes_to_close) {
    transition(now, BreakerState::closed, "probe recovered");
    consecutive_failures_ = 0;
  }
}

void CircuitBreaker::on_probe_failure(double now, const std::string& why, int token) {
  if (state_ != BreakerState::half_open || token == 0 || token != live_probe_token_) {
    return;  // stale probe
  }
  reopen(now, "probe failed: " + why);
}

void CircuitBreaker::on_success(double now) {
  if (state_ == BreakerState::half_open) {
    // A work success while half-open is a solve dispatched before the trip;
    // it proves nothing about the resource now and never closes the breaker
    // in place of the probe (the half-open ordering race).
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::on_failure(double now, const std::string& why) {
  if (state_ == BreakerState::half_open) {
    reopen(now, "failure while half-open: " + why);
    return;
  }
  if (state_ == BreakerState::open) return;  // already routed around
  if (++consecutive_failures_ >= cfg_.failure_threshold) {
    ++trips_;
    const double cooloff = std::min(
        cfg_.max_cooloff_us,
        cfg_.cooloff_us * std::pow(cfg_.cooloff_factor, static_cast<double>(trips_ - 1)));
    open_until_ = now + cooloff;
    transition(now, BreakerState::open,
               std::to_string(consecutive_failures_) + " consecutive failures: " + why);
    consecutive_failures_ = 0;
  }
}

void CircuitBreaker::begin_probation(double now, const std::string& why) {
  if (state_ == BreakerState::half_open) return;
  open_until_ = now;
  transition(now, BreakerState::half_open, why);
  half_open_successes_ = 0;
  probe_outstanding_ = false;
  live_probe_token_ = 0;
  consecutive_failures_ = 0;
}

}  // namespace milc::serve
