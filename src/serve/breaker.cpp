#include "serve/breaker.hpp"

#include <algorithm>
#include <cmath>

namespace milc::serve {

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::closed: return "closed";
    case BreakerState::open: return "open";
    case BreakerState::half_open: return "half-open";
  }
  return "unknown";
}

void CircuitBreaker::transition(double now, BreakerState to, const std::string& why) {
  events_.push_back({now, resource_, state_, to, why});
  state_ = to;
}

void CircuitBreaker::poll(double now) {
  if (state_ == BreakerState::open && now >= open_until_) {
    transition(now, BreakerState::half_open, "cooloff elapsed");
    half_open_successes_ = 0;
    probe_outstanding_ = false;
  }
}

void CircuitBreaker::on_success(double now) {
  if (state_ == BreakerState::half_open) {
    probe_outstanding_ = false;
    if (++half_open_successes_ >= cfg_.successes_to_close) {
      transition(now, BreakerState::closed, "probe recovered");
      consecutive_failures_ = 0;
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::on_failure(double now, const std::string& why) {
  if (state_ == BreakerState::half_open) {
    probe_outstanding_ = false;
    ++trips_;
    const double cooloff = std::min(
        cfg_.max_cooloff_us,
        cfg_.cooloff_us * std::pow(cfg_.cooloff_factor, static_cast<double>(trips_ - 1)));
    open_until_ = now + cooloff;
    transition(now, BreakerState::open, "probe failed: " + why);
    return;
  }
  if (state_ == BreakerState::open) return;  // already routed around
  if (++consecutive_failures_ >= cfg_.failure_threshold) {
    ++trips_;
    const double cooloff = std::min(
        cfg_.max_cooloff_us,
        cfg_.cooloff_us * std::pow(cfg_.cooloff_factor, static_cast<double>(trips_ - 1)));
    open_until_ = now + cooloff;
    transition(now, BreakerState::open,
               std::to_string(consecutive_failures_) + " consecutive failures: " + why);
    consecutive_failures_ = 0;
  }
}

}  // namespace milc::serve
