// request.hpp — the unit of work of the serving tier.
//
// The MILC cluster-performance papers (DeTar et al., arXiv:1712.00143;
// Gottlieb, hep-lat/0112038) win throughput by keeping the machine saturated
// with many independent solves.  `SolveRequest` is one such work item: which
// problem (a `ProblemSpec` catalog entry), how many right-hand sides, on
// whose behalf (tenant), how urgent (priority + absolute deadline on the
// simulated clock) and how much the service may spend retrying it.
//
// Requests reference problems by catalog index rather than carrying fields:
// the service prices every (spec, device count) placement once at
// construction — fault-free, before any chaos plan is installed — so
// admission and deadline decisions never perturb the injector's draw
// streams.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "core/strategy.hpp"
#include "lattice/geometry.hpp"

namespace milc::serve {

/// "No deadline": any completion time qualifies.
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

/// One catalog entry: a solvable problem class (lattice, gauge ensemble,
/// mass, convergence contract).  Mixed sizes in one catalog are the point —
/// the scheduler packs small single-device solves around large sharded ones.
struct ProblemSpec {
  std::string name = "spec";
  Coords dims{4, 4, 4, 8};
  std::uint64_t gauge_seed = 31;
  double mass = 0.5;
  double rel_tol = 1e-6;
  int max_iterations = 200;
  int checkpoint_interval = 8;
};

/// One independent solve request in the traffic stream.
struct SolveRequest {
  std::uint64_t id = 0;
  std::string tenant = "default";
  /// Higher runs first; ties go to the earlier deadline, then the lower id.
  int priority = 1;
  double submit_us = 0.0;            ///< arrival time on the simulated clock
  double deadline_us = kNoDeadline;  ///< absolute; <= submit_us is dead on arrival
  int spec = 0;                      ///< index into the service's catalog
  int rhs = 1;                       ///< right-hand sides (sequential solves)
  std::uint64_t source_seed = 77;    ///< rhs i fills its source from source_seed + i
  Strategy strategy = Strategy::LP3_1;
  int devices = 1;       ///< preferred device count (shrunk under degradation)
  int retry_budget = 1;  ///< re-dispatch attempts after a failed dispatch/solve

  // --- scheduler-owned state (not part of the client request) -------------
  double not_before_us = 0.0;  ///< requeue backoff: ineligible before this time
  int dispatch_attempts = 0;   ///< dispatches so far (drives backoff growth)
  int fallback_rung = 0;       ///< strategy-ladder rung forced by degradation
};

/// Why admission refused a request.  Rejected requests were never admitted:
/// the completes-or-shed invariant does not apply to them.
enum class RejectReason {
  queue_full,        ///< global admission-queue capacity reached (backpressure)
  tenant_quota,      ///< per-tenant queued quota exhausted
  deadline_expired,  ///< deadline at or before submission (zero/expired)
  duplicate_id,      ///< id already known (queued, in flight, or finished)
  invalid_spec,      ///< catalog index out of range
  admission_fault,   ///< injected serve/queue control-plane fault
};

[[nodiscard]] const char* to_string(RejectReason r);

/// Why the service dropped an *admitted* request.  Every shed is enumerated
/// in the SloReport — the graceful-degradation contract is "finish
/// bit-for-bit correct or say exactly why not".
enum class ShedReason {
  deadline_expired_in_queue,  ///< deadline passed while waiting for capacity
  deadline_unreachable,       ///< too little time left for even a minimal solve
  deadline_budget_exhausted,  ///< dispatched, but the apply budget ran out
  dispatch_fault_budget,      ///< injected dispatcher faults ate the retry budget
  recovery_exhausted,         ///< solver recovery ladder failed; retries spent
  no_convergence,             ///< solver hit its iteration cap; retries spent
  cancelled_by_client,        ///< explicit cancellation (queued or in flight)
  no_capacity,                ///< every device lost; queued work cannot run
};

[[nodiscard]] const char* to_string(ShedReason r);

}  // namespace milc::serve
