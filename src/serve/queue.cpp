#include "serve/queue.hpp"

#include <algorithm>

namespace milc::serve {

const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::queue_full: return "queue-full";
    case RejectReason::tenant_quota: return "tenant-quota";
    case RejectReason::deadline_expired: return "deadline-expired";
    case RejectReason::duplicate_id: return "duplicate-id";
    case RejectReason::invalid_spec: return "invalid-spec";
    case RejectReason::admission_fault: return "admission-fault";
  }
  return "unknown";
}

const char* to_string(ShedReason r) {
  switch (r) {
    case ShedReason::deadline_expired_in_queue: return "deadline-expired-in-queue";
    case ShedReason::deadline_unreachable: return "deadline-unreachable";
    case ShedReason::deadline_budget_exhausted: return "deadline-budget-exhausted";
    case ShedReason::dispatch_fault_budget: return "dispatch-fault-budget";
    case ShedReason::recovery_exhausted: return "recovery-exhausted";
    case ShedReason::no_convergence: return "no-convergence";
    case ShedReason::cancelled_by_client: return "cancelled-by-client";
    case ShedReason::no_capacity: return "no-capacity";
  }
  return "unknown";
}

namespace {

/// Dispatch order: priority desc, deadline asc, id asc.  A strict weak
/// ordering, so the scan below picks a unique best element.
bool better(const SolveRequest& a, const SolveRequest& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  if (a.deadline_us != b.deadline_us) return a.deadline_us < b.deadline_us;
  return a.id < b.id;
}

}  // namespace

AdmissionVerdict AdmissionQueue::admit(const SolveRequest& req, double now) {
  if (req.deadline_us <= now) {
    return {false, RejectReason::deadline_expired,
            "deadline " + std::to_string(req.deadline_us) + " us at or before admission"};
  }
  const auto it = std::lower_bound(seen_ids_.begin(), seen_ids_.end(), req.id);
  if (it != seen_ids_.end() && *it == req.id) {
    return {false, RejectReason::duplicate_id, "id " + std::to_string(req.id)};
  }
  if (queued_for(req.tenant) >= cfg_.tenant_max_queued) {
    return {false, RejectReason::tenant_quota,
            "tenant '" + req.tenant + "' at " + std::to_string(cfg_.tenant_max_queued) +
                " queued"};
  }
  if (static_cast<int>(queued_.size()) >= cfg_.capacity) {
    return {false, RejectReason::queue_full,
            "queue at capacity " + std::to_string(cfg_.capacity)};
  }
  seen_ids_.insert(it, req.id);
  queued_.push_back(req);
  return {true, RejectReason::queue_full, ""};
}

bool AdmissionQueue::pop(double now, SolveRequest& out) {
  const SolveRequest* best = nullptr;
  for (const SolveRequest& r : queued_) {
    if (r.not_before_us > now) continue;
    if (inflight_for(r.tenant) >= cfg_.tenant_max_inflight) continue;
    if (best == nullptr || better(r, *best)) best = &r;
  }
  if (best == nullptr) return false;
  out = *best;
  queued_.erase(queued_.begin() + (best - queued_.data()));
  return true;
}

void AdmissionQueue::requeue(SolveRequest req) { queued_.push_back(std::move(req)); }

bool AdmissionQueue::cancel(std::uint64_t id, SolveRequest* out) {
  for (auto it = queued_.begin(); it != queued_.end(); ++it) {
    if (it->id == id) {
      if (out != nullptr) *out = *it;
      queued_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<SolveRequest> AdmissionQueue::sweep_expired(double now) {
  std::vector<SolveRequest> expired;
  for (auto it = queued_.begin(); it != queued_.end();) {
    if (it->deadline_us <= now) {
      expired.push_back(*it);
      it = queued_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(expired.begin(), expired.end(),
            [](const SolveRequest& a, const SolveRequest& b) { return a.id < b.id; });
  return expired;
}

std::vector<SolveRequest> AdmissionQueue::drain() {
  std::vector<SolveRequest> all = std::move(queued_);
  queued_.clear();
  std::sort(all.begin(), all.end(),
            [](const SolveRequest& a, const SolveRequest& b) { return a.id < b.id; });
  return all;
}

void AdmissionQueue::mark_inflight(const SolveRequest& req) { ++inflight_[req.tenant]; }

void AdmissionQueue::mark_done(const SolveRequest& req) {
  auto it = inflight_.find(req.tenant);
  if (it != inflight_.end() && it->second > 0) --it->second;
}

int AdmissionQueue::queued_for(const std::string& tenant) const {
  int n = 0;
  for (const SolveRequest& r : queued_) n += r.tenant == tenant ? 1 : 0;
  return n;
}

int AdmissionQueue::inflight_for(const std::string& tenant) const {
  const auto it = inflight_.find(tenant);
  return it == inflight_.end() ? 0 : it->second;
}

double AdmissionQueue::next_ready_us(double now) const {
  double next = kNoDeadline;
  for (const SolveRequest& r : queued_) {
    if (r.not_before_us > now) next = std::min(next, r.not_before_us);
  }
  return next;
}

}  // namespace milc::serve
