// breaker.hpp — per-resource circuit breakers on the simulated clock.
//
// A device (or node) that keeps failing must stop receiving work: every
// failed dispatch wastes its victims' deadline budget.  The breaker is the
// classic three-state machine, driven entirely by the service's simulated
// clock so chaos runs replay bit-for-bit:
//
//   closed ──failure_threshold consecutive failures──> open
//     ^                                                  │ cooloff_us
//     │                                                  v   (grows per trip)
//     └──── probe success(es) ──────────────────── half-open
//                        │ probe failure
//                        └──> open (cooloff × cooloff_factor, capped)
//
// The breaker never consults the injector itself — the service reports
// outcomes (solve results, `serve/probe` consults) into it.  Transitions are
// explicit events so the SloReport can enumerate every trip and recovery.
//
// Probe identity: probes carry a token (probe_started()) and only the
// matching on_probe_success/on_probe_failure resolves them.  A work success
// completing while half-open, or a probe outcome arriving after a concurrent
// failure reopened the breaker, can therefore never close it out of order.
#pragma once

#include <string>
#include <vector>

namespace milc::serve {

enum class BreakerState { closed, open, half_open };

[[nodiscard]] const char* to_string(BreakerState s);

struct BreakerConfig {
  int failure_threshold = 3;      ///< consecutive failures that trip a closed breaker
  double cooloff_us = 2'000.0;    ///< open duration before the first half-open
  double cooloff_factor = 2.0;    ///< cooloff growth per successive trip
  double max_cooloff_us = 60'000.0;
  int successes_to_close = 1;     ///< half-open probe successes needed to close
};

/// One state transition, timestamped on the simulated clock.
struct BreakerEvent {
  double at_us = 0.0;
  std::string resource;
  BreakerState from = BreakerState::closed;
  BreakerState to = BreakerState::closed;
  std::string why;
};

class CircuitBreaker {
 public:
  CircuitBreaker(std::string resource, BreakerConfig cfg)
      : resource_(std::move(resource)), cfg_(cfg) {}

  [[nodiscard]] const std::string& resource() const { return resource_; }
  [[nodiscard]] BreakerState state() const { return state_; }
  [[nodiscard]] double open_until() const { return open_until_; }
  [[nodiscard]] int trips() const { return trips_; }
  [[nodiscard]] const std::vector<BreakerEvent>& events() const { return events_; }

  /// Advance time: an open breaker whose cooloff elapsed becomes half-open.
  /// Call at every scheduling point before reading state().
  void poll(double now);

  /// May this resource take ordinary work now?  Only when closed — half-open
  /// capacity comes back exclusively through probes, so a recovering device
  /// never takes real traffic before it proved itself.
  [[nodiscard]] bool allow() const { return state_ == BreakerState::closed; }

  /// May a probe be sent now?  Half-open, with no probe already outstanding
  /// (the half-open race guard: concurrent dispatch cycles get one probe).
  [[nodiscard]] bool probe_allowed() const {
    return state_ == BreakerState::half_open && !probe_outstanding_;
  }
  /// Start a probe and get its identity token.  Only the outcome carrying
  /// this token can resolve the probe (on_probe_success / on_probe_failure);
  /// any transition out of half-open invalidates it, so a probe outcome that
  /// arrives after a concurrent failure reopened the breaker is ignored
  /// instead of closing it out of order.
  [[nodiscard]] int probe_started() {
    probe_outstanding_ = true;
    live_probe_token_ = ++next_probe_token_;
    return live_probe_token_;
  }

  /// Resolve the probe identified by `token`.  Stale tokens (the breaker
  /// left half-open since the probe departed, or a newer probe replaced it)
  /// are ignored.  Success counts toward successes_to_close; failure reopens
  /// with a grown cooloff.
  void on_probe_success(double now, int token);
  void on_probe_failure(double now, const std::string& why, int token);

  /// Report an *ordinary work* outcome.  In closed state, failures count
  /// toward the trip threshold and any success resets the count.  In
  /// half-open state a work failure reopens the breaker (and invalidates any
  /// in-flight probe), while a work success is deliberately ignored — a
  /// solve that was dispatched before the trip proves nothing about the
  /// resource now, and must never close the breaker in place of the probe.
  void on_success(double now);
  void on_failure(double now, const std::string& why);

  /// Force probation (elastic rejoin): a resource returning to service is
  /// placed half-open regardless of current state, so its capacity comes
  /// back through a probe rather than straight into traffic.
  void begin_probation(double now, const std::string& why);

 private:
  void transition(double now, BreakerState to, const std::string& why);
  void reopen(double now, const std::string& why);

  std::string resource_;
  BreakerConfig cfg_;
  BreakerState state_ = BreakerState::closed;
  double open_until_ = 0.0;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  int trips_ = 0;
  bool probe_outstanding_ = false;
  int next_probe_token_ = 0;  ///< monotonic probe identity source
  int live_probe_token_ = 0;  ///< token of the outstanding probe (0: none)
  std::vector<BreakerEvent> events_;
};

}  // namespace milc::serve
