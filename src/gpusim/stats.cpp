#include "gpusim/stats.hpp"

namespace gpusim {

void TraceCounters::add(const TraceCounters& o) {
  work_items += o.work_items;
  warps += o.warps;
  warp_issue_slots += o.warp_issue_slots;
  fp64_warp_slots += o.fp64_warp_slots;
  flops += o.flops;
  active_lane_ops += o.active_lane_ops;
  possible_lane_ops += o.possible_lane_ops;
  branch_events += o.branch_events;
  divergent_branches += o.divergent_branches;
  global_load_ops += o.global_load_ops;
  global_store_ops += o.global_store_ops;
  l1_tag_requests_global += o.l1_tag_requests_global;
  l1_sector_hits += o.l1_sector_hits;
  l1_sector_misses += o.l1_sector_misses;
  l2_sector_requests += o.l2_sector_requests;
  l2_sector_hits += o.l2_sector_hits;
  l2_sector_misses += o.l2_sector_misses;
  dram_sectors += o.dram_sectors;
  dram_row_hits += o.dram_row_hits;
  dram_row_misses += o.dram_row_misses;
  shared_ops += o.shared_ops;
  shared_wavefronts += o.shared_wavefronts;
  shared_wavefronts_ideal += o.shared_wavefronts_ideal;
  atomic_ops += o.atomic_ops;
  atomic_lane_updates += o.atomic_lane_updates;
  atomic_serial_replays += o.atomic_serial_replays;
  barrier_warp_events += o.barrier_warp_events;
}

}  // namespace gpusim
