#include "gpusim/cache.hpp"

#include <bit>
#include <cassert>

namespace gpusim {

SectoredCache::SectoredCache(std::int64_t total_bytes, int line_bytes, int sector_bytes,
                             int ways)
    : line_bytes_(line_bytes),
      sector_bytes_(sector_bytes),
      ways_(ways),
      sectors_per_line_(line_bytes / sector_bytes) {
  assert(line_bytes % sector_bytes == 0);
  assert(total_bytes % (static_cast<std::int64_t>(line_bytes) * ways) == 0);
  sets_ = static_cast<std::size_t>(total_bytes / (static_cast<std::int64_t>(line_bytes) * ways));
  lines_.resize(sets_ * static_cast<std::size_t>(ways_));
}

SectoredCache::Outcome SectoredCache::access(std::uint64_t byte_addr, bool write,
                                             bool allocate) {
  const std::uint64_t line_addr = byte_addr / static_cast<std::uint64_t>(line_bytes_);
  const std::uint32_t sector =
      static_cast<std::uint32_t>((byte_addr / static_cast<std::uint64_t>(sector_bytes_)) %
                                 static_cast<std::uint64_t>(sectors_per_line_));
  const std::uint32_t sector_bit = 1u << sector;
  const std::size_t set = static_cast<std::size_t>(line_addr % sets_);
  Line* base = &lines_[set * static_cast<std::size_t>(ways_)];
  ++tick_;

  // Look for the line.
  for (int w = 0; w < ways_; ++w) {
    Line& ln = base[w];
    if (ln.tag == line_addr && ln.valid_mask != 0) {
      ln.lru = tick_;
      Outcome out;
      out.hit = (ln.valid_mask & sector_bit) != 0;
      if (!out.hit && allocate) ln.valid_mask |= sector_bit;
      if (write && (out.hit || allocate)) ln.dirty_mask |= sector_bit;
      return out;
    }
  }

  // Miss: no matching line.
  if (!allocate) return {};

  // Choose victim: invalid way first, else LRU.
  Line* victim = base;
  for (int w = 0; w < ways_; ++w) {
    if (base[w].valid_mask == 0) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }

  Outcome out;
  out.writeback_sectors = std::popcount(victim->dirty_mask);
  victim->tag = line_addr;
  victim->valid_mask = sector_bit;
  victim->dirty_mask = write ? sector_bit : 0u;
  victim->lru = tick_;
  return out;
}

std::int64_t SectoredCache::flush() {
  std::int64_t dirty = 0;
  for (auto& ln : lines_) {
    dirty += std::popcount(ln.dirty_mask);
    ln = Line{};
  }
  return dirty;
}

void SectoredCache::reset() {
  for (auto& ln : lines_) ln = Line{};
  tick_ = 0;
}

}  // namespace gpusim
