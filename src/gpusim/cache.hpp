// cache.hpp — sectored, set-associative cache model.
//
// NVIDIA GPUs tag cache lines at 128 B but fill and transfer at 32 B sector
// granularity; a "tag request" that finds the line but not the sector still
// costs a fill.  Both the per-SM L1 and the device-wide L2 are instances of
// this model (with different size/associativity and write policies decided
// by the pipeline).
#pragma once

#include <cstdint>
#include <vector>

namespace gpusim {

class SectoredCache {
 public:
  /// total_bytes must be a multiple of line_bytes * ways.
  SectoredCache(std::int64_t total_bytes, int line_bytes, int sector_bytes, int ways);

  struct Outcome {
    bool hit = false;            ///< requested sector present
    int writeback_sectors = 0;   ///< dirty sectors evicted by this access
  };

  /// Access one sector.  `write` marks the sector dirty (write-back policy);
  /// `allocate` controls whether a miss installs the line/sector (false for
  /// write-through-no-allocate policies).
  Outcome access(std::uint64_t byte_addr, bool write, bool allocate = true);

  /// Evict everything, returning the number of dirty sectors flushed.
  std::int64_t flush();

  void reset();

  [[nodiscard]] int sectors_per_line() const { return sectors_per_line_; }
  [[nodiscard]] std::int64_t sets() const { return static_cast<std::int64_t>(sets_); }

 private:
  struct Line {
    std::uint64_t tag = ~0ull;
    std::uint32_t valid_mask = 0;
    std::uint32_t dirty_mask = 0;
    std::uint64_t lru = 0;
  };

  int line_bytes_;
  int sector_bytes_;
  int ways_;
  int sectors_per_line_;
  std::size_t sets_;
  std::uint64_t tick_ = 0;
  std::vector<Line> lines_;  // sets_ * ways_, row-major by set
};

}  // namespace gpusim
