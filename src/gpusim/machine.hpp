// machine.hpp — architectural description of the simulated GPU.
//
// Parameters follow the paper's description of the NVIDIA A100 (§IV-A):
// "40 GB of global memory and a 40 MB L2 cache for the entire GPU, along
// with 108 compute units.  Each compute unit has 192 KB of shared L1 cache
// and local memory, with a maximum of 2,048 processing elements and 65,536
// registers.  It accommodates work-group sizes of up to 1,024 work-items,
// organized into warps of 32 work-items each."
#pragma once

#include <cstdint>

namespace gpusim {

struct MachineModel {
  // -- compute organisation --------------------------------------------------
  int num_sms = 108;              ///< compute units
  int warp_size = 32;             ///< work-items per warp
  int max_threads_per_sm = 2048;  ///< processing elements per compute unit
  int max_groups_per_sm = 32;     ///< resident work-groups per compute unit
  int max_group_size = 1024;      ///< work-items per work-group
  int registers_per_sm = 65536;
  int register_alloc_granularity = 256;  ///< registers allocated in chunks

  // -- memory organisation ---------------------------------------------------
  int shared_bytes_per_sm = 164 * 1024;  ///< usable local-memory carve-out
  int shared_alloc_granularity = 1024;
  int shared_banks = 32;        ///< 4-byte-wide banks
  int shared_bank_bytes = 4;
  int l1_bytes = 128 * 1024;    ///< data-cache portion of the 192 KB L1
  int l2_bytes = 40 * 1024 * 1024;
  int line_bytes = 128;         ///< cache-line (tag) granularity
  int sector_bytes = 32;        ///< fill/transaction granularity
  int l1_ways = 4;
  int l2_ways = 16;

  // -- rates -------------------------------------------------------------------
  double clock_ghz = 1.41;
  double dram_peak_gbs = 1555.0;      ///< HBM2e peak bandwidth
  double l1_sectors_per_cycle = 4.0;  ///< 128 B/cycle/SM LSU throughput
  double smem_wavefronts_per_cycle = 1.0;
  double fp64_lanes_per_cycle = 32.0;  ///< non-tensor FP64 FMA lanes per SM
  int schedulers_per_sm = 4;

  /// DRAM address interleaving and row-buffer organisation (drives the
  /// burst-efficiency part of the model).
  int dram_channels = 32;
  int dram_interleave_bytes = 256;  ///< consecutive chunk per channel
  int dram_row_bytes = 8192;        ///< open-row granularity per bank
  int dram_banks_per_channel = 32;  ///< concurrently open rows per channel

  // -- reference peaks (for "percent of peak" reporting) ----------------------
  double fp64_peak_tflops = 9.7;
  /// The paper reports percent-of-peak against an empirical 7.6 TFLOP/s.
  double empirical_peak_tflops = 7.6;

  [[nodiscard]] double clock_hz() const { return clock_ghz * 1e9; }
  [[nodiscard]] int sectors_per_line() const { return line_bytes / sector_bytes; }
};

/// The NVIDIA A100-40GB model used throughout the paper's evaluation.
[[nodiscard]] inline MachineModel a100() { return MachineModel{}; }

}  // namespace gpusim
