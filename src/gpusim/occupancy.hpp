// occupancy.hpp — CUDA-style occupancy calculator.
//
// Residency per SM is bounded by threads, registers (warp-granular
// allocation), shared-memory carve-out and the hardware group limit; the
// achieved occupancy additionally reflects the partially-filled tail wave of
// the grid (paper Table I row 4: e.g. local size 768 → 2 groups/SM → 1536 of
// 2048 threads → 75% theoretical, ~72–74% achieved).
#pragma once

#include "gpusim/calibration.hpp"
#include "gpusim/machine.hpp"
#include "gpusim/stats.hpp"

namespace gpusim {

/// Compute residency and occupancy for a launch.  Throws std::invalid_argument
/// if the launch cannot fit at all (e.g. shared memory per group exceeds the
/// SM carve-out).
[[nodiscard]] OccupancyInfo compute_occupancy(const MachineModel& m, const Calibration& cal,
                                              const LaunchConfig& cfg);

}  // namespace gpusim
