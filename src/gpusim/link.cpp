#include "gpusim/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <tuple>

#include "dsan/record.hpp"
#include "faultsim/faultsim.hpp"

namespace gpusim {

bool is_nvlink(const LinkModel& m, int src, int dst) {
  return src < m.nvlink_devices && dst < m.nvlink_devices;
}

double wire_time_us(const LinkModel& m, int src, int dst, std::int64_t bytes) {
  const bool nv = is_nvlink(m, src, dst);
  const double bw = nv ? m.nvlink_bw_gbs : m.pcie_bw_gbs;
  const double lat = nv ? m.nvlink_latency_us : m.pcie_latency_us;
  // GB/s == bytes/us * 1e-3, so us = bytes / (bw * 1e3).
  return lat + static_cast<double>(bytes) / (bw * 1e3);
}

ExchangeReport simulate_exchange(const LinkModel& m, std::span<LinkMessage> msgs,
                                 int num_devices) {
  ExchangeReport rep;
  rep.arrival_us.assign(static_cast<std::size_t>(num_devices), 0.0);
  rep.egress_busy_us.assign(static_cast<std::size_t>(num_devices), 0.0);

  for (const LinkMessage& msg : msgs) {
    if (msg.src < 0 || msg.src >= num_devices || msg.dst < 0 || msg.dst >= num_devices) {
      throw std::invalid_argument("simulate_exchange: endpoint outside [0, " +
                                  std::to_string(num_devices) + ")");
    }
    if (msg.src == msg.dst) {
      throw std::invalid_argument("simulate_exchange: self-message (src == dst)");
    }
    if (msg.bytes < 0) throw std::invalid_argument("simulate_exchange: negative byte count");
  }

  // Consult the fault injector per message, in index order (deterministic).
  // The verdict shapes the schedule below; the *caller* handles dropped and
  // corrupted payloads (retransmission, flip_bit on receipt).
  std::vector<double> extra_lat(msgs.size(), 0.0);
  std::vector<double> bw_factor(msgs.size(), 1.0);
  if (faultsim::Injector* inj = faultsim::Injector::current()) {
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      LinkMessage& msg = msgs[i];
      const std::string site =
          msg.site.empty() ? "halo-exchange r" + std::to_string(msg.src) + "->r" +
                                 std::to_string(msg.dst)
                           : msg.site;
      const faultsim::LinkVerdict v =
          inj->on_message(site, static_cast<std::uint64_t>(msg.bytes));
      msg.dropped = v.dropped;
      msg.corrupted = v.corrupted;
      msg.delayed = v.delayed;
      msg.corrupt_key = v.corrupt_key;
      extra_lat[i] = v.extra_latency_us;
      bw_factor[i] = v.bw_factor;
      rep.dropped += v.dropped ? 1 : 0;
      rep.corrupted += v.corrupted ? 1 : 0;
      rep.delayed += v.delayed ? 1 : 0;
    }
  }

  std::vector<double> egress_free(static_cast<std::size_t>(num_devices), 0.0);
  std::vector<double> ingress_free(static_cast<std::size_t>(num_devices), 0.0);
  std::vector<bool> done(msgs.size(), false);

  // dsan schedule instrumentation: remember which schedule node last held
  // each port, so every decision records the waits that gated its start.
  dsan::Recorder* rec = dsan::Recorder::current();
  std::vector<std::int64_t> egress_holder(static_cast<std::size_t>(num_devices), -1);
  std::vector<std::int64_t> ingress_holder(static_cast<std::size_t>(num_devices), -1);

  for (std::size_t round = 0; round < msgs.size(); ++round) {
    // Greedy: the pending message with the earliest ready time goes next.
    std::size_t pick = msgs.size();
    double pick_ready = 0.0;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      if (done[i]) continue;
      const LinkMessage& msg = msgs[i];
      const double ready =
          std::max({msg.depart_us, egress_free[static_cast<std::size_t>(msg.src)],
                    ingress_free[static_cast<std::size_t>(msg.dst)]});
      const bool better =
          pick == msgs.size() || ready < pick_ready ||
          (ready == pick_ready &&
           std::make_tuple(msg.src, msg.dst, i) <
               std::make_tuple(msgs[pick].src, msgs[pick].dst, pick));
      if (better) {
        pick = i;
        pick_ready = ready;
      }
    }

    LinkMessage& msg = msgs[pick];
    double wire = wire_time_us(m, msg.src, msg.dst, msg.bytes);
    if (msg.delayed) {
      // Congestion spike: extra latency plus a bandwidth divided by the
      // plan's factor (bw_factor - 1 extra transfer times on top of one).
      const double bw = is_nvlink(m, msg.src, msg.dst) ? m.nvlink_bw_gbs : m.pcie_bw_gbs;
      wire += extra_lat[pick] +
              (bw_factor[pick] - 1.0) * static_cast<double>(msg.bytes) / (bw * 1e3);
    }
    msg.start_us = pick_ready;
    msg.done_us = pick_ready + wire;
    if (rec != nullptr) {
      std::vector<std::int64_t> waits;
      if (egress_holder[static_cast<std::size_t>(msg.src)] >= 0) {
        waits.push_back(egress_holder[static_cast<std::size_t>(msg.src)]);
      }
      if (ingress_holder[static_cast<std::size_t>(msg.dst)] >= 0 &&
          ingress_holder[static_cast<std::size_t>(msg.dst)] !=
              egress_holder[static_cast<std::size_t>(msg.src)]) {
        waits.push_back(ingress_holder[static_cast<std::size_t>(msg.dst)]);
      }
      const std::string site = msg.site.empty()
                                   ? "halo-exchange r" + std::to_string(msg.src) + "->r" +
                                         std::to_string(msg.dst)
                                   : msg.site;
      const std::int64_t id = rec->wire_sched(site, msg.src, msg.dst, msg.start_us,
                                              msg.done_us, std::move(waits));
      egress_holder[static_cast<std::size_t>(msg.src)] = id;
      ingress_holder[static_cast<std::size_t>(msg.dst)] = id;
    }
    egress_free[static_cast<std::size_t>(msg.src)] = msg.done_us;
    ingress_free[static_cast<std::size_t>(msg.dst)] = msg.done_us;
    rep.egress_busy_us[static_cast<std::size_t>(msg.src)] += wire;
    if (!msg.dropped) {
      // A dropped message occupies the ports (it transmitted) but is never
      // delivered, so it does not advance the receiver's arrival horizon.
      rep.arrival_us[static_cast<std::size_t>(msg.dst)] =
          std::max(rep.arrival_us[static_cast<std::size_t>(msg.dst)], msg.done_us);
      rep.finish_us = std::max(rep.finish_us, msg.done_us);
    }
    rep.total_bytes += msg.bytes;
    done[pick] = true;
  }
  return rep;
}

}  // namespace gpusim
