// profiler.hpp — Nsight-Compute-style report formatting (paper Table I).
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "gpusim/stats.hpp"

namespace gpusim {

/// Format a large count the way the paper's Table I does ("0.5M", "86M", "4.7M").
[[nodiscard]] std::string format_count(double v);

/// Print the 13 rows of the paper's Table I, one column per kernel.
void print_table1(std::ostream& os, std::span<const KernelStats> columns);

/// Print a one-kernel deep-dive: occupancy analysis, timing breakdown and all
/// raw counters (our extension beyond Table I, useful for the ablations).
void print_kernel_report(std::ostream& os, const KernelStats& st);

}  // namespace gpusim
