// dram.hpp — HBM channel / row-buffer model.
//
// The model's job is to distinguish *streaming* miss traffic (long runs of
// consecutive sectors, as produced by coalesced k-major kernels or SoA
// layouts) from *scattered* traffic (per-thread strided streams, as produced
// by 1LP-style site-per-thread kernels over AoS data).  Sectors that hit the
// open row of their channel cost 1 unit; row misses cost
// Calibration::dram_row_miss_penalty units.  Effective bandwidth is the peak
// scaled by (sectors / cost-units).
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/calibration.hpp"
#include "gpusim/machine.hpp"

namespace gpusim {

class DramModel {
 public:
  DramModel(const MachineModel& m, const Calibration& cal);

  /// Service one 32 B sector (fill or write-back).  Returns true on row hit.
  bool access(std::uint64_t byte_addr);

  /// Service `n` sectors whose addresses are unknown (victim write-backs);
  /// charged conservatively as row misses.
  void access_opaque(std::uint64_t n) { sectors_ += n; }

  [[nodiscard]] std::uint64_t sectors() const { return sectors_; }
  [[nodiscard]] std::uint64_t row_hits() const { return row_hits_; }
  [[nodiscard]] std::uint64_t row_misses() const { return sectors_ - row_hits_; }

  /// Total service cost in row-hit-equivalent units.
  [[nodiscard]] double cost_units() const {
    return static_cast<double>(row_hits_) +
           penalty_ * static_cast<double>(sectors_ - row_hits_);
  }

  /// Burst efficiency in (0, 1]: 1.0 when every sector hits an open row.
  [[nodiscard]] double burst_efficiency() const {
    if (sectors_ == 0) return 1.0;
    return static_cast<double>(sectors_) / cost_units();
  }

  void reset();

 private:
  std::uint64_t interleave_;
  std::uint64_t row_bytes_;
  std::uint64_t channels_;
  std::uint64_t banks_;
  double penalty_;
  std::vector<std::uint64_t> open_row_;
  std::uint64_t sectors_ = 0;
  std::uint64_t row_hits_ = 0;
};

}  // namespace gpusim
