#include "gpusim/fabric.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

#include "dsan/record.hpp"
#include "faultsim/faultsim.hpp"

namespace gpusim {

NodeTopology cluster(int nodes, int devices_per_node) {
  if (nodes < 1) throw std::invalid_argument("cluster: nodes must be >= 1");
  if (devices_per_node < 1) {
    throw std::invalid_argument("cluster: devices_per_node must be >= 1");
  }
  NodeTopology topo;
  topo.nodes = nodes;
  topo.devices_per_node = devices_per_node;
  topo.intra = dgx_a100_links();
  topo.intra.nvlink_devices = devices_per_node;
  topo.fabric = hdr_fabric();
  return topo;
}

double fabric_wire_time_us(const FabricModel& f, std::int64_t bytes) {
  // GB/s == bytes/us * 1e-3, so us = bytes / (bw * 1e3).
  return f.nic_latency_us + 2.0 * f.switch_latency_us +
         static_cast<double>(bytes) / (f.nic_bw_gbs * 1e3);
}

std::vector<AggregatedMessage> aggregate_fabric_messages(
    const NodeTopology& topo, std::span<const LinkMessage> msgs) {
  std::vector<AggregatedMessage> aggs;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const LinkMessage& msg = msgs[i];
    if (topo.same_node(msg.src, msg.dst)) continue;
    // First-appearance order keyed by (src, dst); message counts are tiny
    // (one aggregate per topological neighbour), so a linear scan is fine.
    AggregatedMessage* agg = nullptr;
    for (AggregatedMessage& a : aggs) {
      if (a.src == msg.src && a.dst == msg.dst) {
        agg = &a;
        break;
      }
    }
    if (agg == nullptr) {
      aggs.emplace_back();
      agg = &aggs.back();
      agg->src = msg.src;
      agg->dst = msg.dst;
      agg->depart_us = msg.depart_us;
    }
    agg->frames.push_back(FabricFrame{i, agg->payload_bytes, msg.bytes});
    agg->payload_bytes += msg.bytes;
    agg->depart_us = std::max(agg->depart_us, msg.depart_us);
  }
  return aggs;
}

FabricExchangeReport simulate_topology_exchange(const NodeTopology& topo,
                                                std::span<LinkMessage> msgs) {
  const int ndev = topo.total_devices();
  FabricExchangeReport rep;
  rep.arrival_us.assign(static_cast<std::size_t>(ndev), 0.0);

  for (const LinkMessage& msg : msgs) {
    if (msg.src < 0 || msg.src >= ndev || msg.dst < 0 || msg.dst >= ndev) {
      throw std::invalid_argument("simulate_topology_exchange: endpoint outside [0, " +
                                  std::to_string(ndev) + ")");
    }
    if (msg.src == msg.dst) {
      throw std::invalid_argument("simulate_topology_exchange: self-message (src == dst)");
    }
    if (msg.bytes < 0) {
      throw std::invalid_argument("simulate_topology_exchange: negative byte count");
    }
  }

  // --- Intra-node tier: extract the same-node subset and run it through the
  // per-device-port NVLink schedule.  Global ranks inside one node group are
  // NVLink peers by construction, so the island is widened to cover every
  // rank; node grouping (not rank position) decided membership above.
  std::vector<std::size_t> intra_index;
  std::vector<LinkMessage> intra_msgs;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    if (topo.same_node(msgs[i].src, msgs[i].dst)) {
      intra_index.push_back(i);
      intra_msgs.push_back(msgs[i]);
    }
  }
  LinkModel island = topo.intra;
  island.nvlink_devices = ndev;
  const ExchangeReport intra_rep =
      simulate_exchange(island, std::span<LinkMessage>(intra_msgs), ndev);
  for (std::size_t k = 0; k < intra_index.size(); ++k) {
    msgs[intra_index[k]] = intra_msgs[k];
    rep.intra_wire_us += intra_msgs[k].done_us - intra_msgs[k].start_us;
  }
  rep.intra_bytes = intra_rep.total_bytes;
  rep.intra_messages = static_cast<int>(intra_msgs.size());
  rep.intra_finish_us = intra_rep.finish_us;
  rep.dropped += intra_rep.dropped;
  rep.corrupted += intra_rep.corrupted;
  rep.delayed += intra_rep.delayed;
  for (int d = 0; d < ndev; ++d) {
    rep.arrival_us[static_cast<std::size_t>(d)] =
        intra_rep.arrival_us[static_cast<std::size_t>(d)];
  }

  // --- Inter-node tier: coalesce per device pair, then consult the injector
  // once per aggregate (a wire message is the fabric's unit of loss).
  std::vector<AggregatedMessage> aggs = aggregate_fabric_messages(topo, msgs);
  struct AggVerdict {
    bool dropped = false;
    bool corrupted = false;
    bool delayed = false;
    std::uint64_t corrupt_key = 0;
    double extra_latency_us = 0.0;
    double bw_factor = 1.0;
  };
  std::vector<AggVerdict> verdicts(aggs.size());
  if (faultsim::Injector* inj = faultsim::Injector::current()) {
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      const AggregatedMessage& agg = aggs[a];
      const std::string site = "fabric-exchange r" + std::to_string(agg.src) + "->r" +
                               std::to_string(agg.dst) + " n" +
                               std::to_string(topo.node_of(agg.src)) + "->n" +
                               std::to_string(topo.node_of(agg.dst));
      const faultsim::LinkVerdict v = inj->on_message(
          site, static_cast<std::uint64_t>(agg.wire_bytes(topo.fabric)));
      verdicts[a] = AggVerdict{v.dropped,     v.corrupted,         v.delayed,
                               v.corrupt_key, v.extra_latency_us,  v.bw_factor};
    }
  }

  // Greedy deterministic schedule over one NIC per node (egress busy for the
  // injection time, ingress until delivery) plus the shared switch crossbar.
  const FabricModel& f = topo.fabric;
  std::vector<double> nic_egress_free(static_cast<std::size_t>(topo.nodes), 0.0);
  std::vector<double> nic_ingress_free(static_cast<std::size_t>(topo.nodes), 0.0);
  double switch_free = 0.0;
  std::vector<bool> sent(aggs.size(), false);

  // dsan schedule instrumentation, one node per aggregate: the waits name
  // the decisions that last held the three contended resources (source NIC
  // egress, destination NIC ingress, shared switch crossbar).
  dsan::Recorder* rec = dsan::Recorder::current();
  std::vector<std::int64_t> egress_holder(static_cast<std::size_t>(topo.nodes), -1);
  std::vector<std::int64_t> ingress_holder(static_cast<std::size_t>(topo.nodes), -1);
  std::int64_t switch_holder = -1;

  for (std::size_t round = 0; round < aggs.size(); ++round) {
    std::size_t pick = aggs.size();
    double pick_ready = 0.0;
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      if (sent[a]) continue;
      const AggregatedMessage& agg = aggs[a];
      const std::size_t sn = static_cast<std::size_t>(topo.node_of(agg.src));
      const std::size_t dn = static_cast<std::size_t>(topo.node_of(agg.dst));
      const double ready = std::max(
          {agg.depart_us, nic_egress_free[sn], nic_ingress_free[dn], switch_free});
      const bool better =
          pick == aggs.size() || ready < pick_ready ||
          (ready == pick_ready && std::make_pair(agg.src, agg.dst) <
                                      std::make_pair(aggs[pick].src, aggs[pick].dst));
      if (better) {
        pick = a;
        pick_ready = ready;
      }
    }

    AggregatedMessage& agg = aggs[pick];
    const AggVerdict& v = verdicts[pick];
    const std::int64_t wire_bytes = agg.wire_bytes(f);
    double wire = fabric_wire_time_us(f, wire_bytes);
    if (v.delayed) {
      // Congestion spike, same convention as link.cpp: extra latency plus
      // bw_factor - 1 extra transfer times on top of the nominal one.
      wire += v.extra_latency_us +
              (v.bw_factor - 1.0) * static_cast<double>(wire_bytes) / (f.nic_bw_gbs * 1e3);
    }
    const double start = pick_ready;
    const double done = start + wire;
    const std::size_t sn = static_cast<std::size_t>(topo.node_of(agg.src));
    const std::size_t dn = static_cast<std::size_t>(topo.node_of(agg.dst));
    if (rec != nullptr) {
      std::vector<std::int64_t> waits;
      for (const std::int64_t h : {egress_holder[sn], ingress_holder[dn], switch_holder}) {
        if (h < 0) continue;
        if (std::find(waits.begin(), waits.end(), h) == waits.end()) waits.push_back(h);
      }
      const std::string site = "fabric-exchange r" + std::to_string(agg.src) + "->r" +
                               std::to_string(agg.dst) + " n" + std::to_string(topo.node_of(agg.src)) +
                               "->n" + std::to_string(topo.node_of(agg.dst));
      const std::int64_t id =
          rec->wire_sched(site, agg.src, agg.dst, start, done, std::move(waits),
                          std::to_string(agg.frames.size()) + " frames aggregated");
      egress_holder[sn] = id;
      ingress_holder[dn] = id;
      switch_holder = id;
    }
    nic_egress_free[sn] =
        start + static_cast<double>(wire_bytes) / (f.injection_rate_gbs * 1e3);
    nic_ingress_free[dn] = done;
    switch_free = start + static_cast<double>(wire_bytes) / (f.switch_bw_gbs * 1e3);
    sent[pick] = true;

    rep.inter_bytes += wire_bytes;
    rep.inter_messages += 1;
    rep.inter_wire_us += wire;
    if (!v.dropped) {
      rep.arrival_us[static_cast<std::size_t>(agg.dst)] =
          std::max(rep.arrival_us[static_cast<std::size_t>(agg.dst)], done);
      rep.inter_finish_us = std::max(rep.inter_finish_us, done);
    }
    if (v.dropped) rep.dropped += static_cast<int>(agg.frames.size());
    if (v.corrupted) rep.corrupted += 1;
    if (v.delayed) rep.delayed += 1;

    // Write the aggregate's timing and verdict back into its constituents;
    // a corrupted aggregate damages exactly one deterministically-picked
    // frame (the wire carries one flipped bit, framing localises it).
    const std::size_t hit = v.corrupted
                                ? static_cast<std::size_t>(v.corrupt_key % agg.frames.size())
                                : agg.frames.size();
    for (std::size_t k = 0; k < agg.frames.size(); ++k) {
      LinkMessage& msg = msgs[agg.frames[k].msg_index];
      msg.start_us = start;
      msg.done_us = done;
      msg.dropped = v.dropped;
      msg.delayed = v.delayed;
      msg.corrupted = (k == hit);
      msg.corrupt_key = (k == hit) ? v.corrupt_key : 0;
    }
  }

  rep.finish_us = std::max(rep.intra_finish_us, rep.inter_finish_us);
  return rep;
}

}  // namespace gpusim
