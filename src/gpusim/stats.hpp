// stats.hpp — raw trace counters and the Nsight-style kernel statistics the
// benches report (every row of the paper's Table I).
#pragma once

#include <cstdint>
#include <string>

namespace gpusim {

/// Launch configuration of a kernel (the SYCL nd_range plus static traits
/// the "compiler" decided).
struct LaunchConfig {
  std::int64_t global_size = 0;
  int local_size = 1;
  int shared_bytes_per_group = 0;
  int regs_per_thread = 40;
  int num_phases = 1;  ///< barrier-separated phases (barriers = phases - 1)
};

/// Raw event counters accumulated while replaying a kernel's warps through
/// the memory/issue pipelines.
struct TraceCounters {
  std::uint64_t work_items = 0;
  std::uint64_t warps = 0;

  // Issue
  std::uint64_t warp_issue_slots = 0;   ///< warp instructions incl. divergence replays
  std::uint64_t fp64_warp_slots = 0;    ///< FP64 FMA warp instructions
  std::uint64_t flops = 0;              ///< per-lane FLOPs (sum over lanes)
  std::uint64_t active_lane_ops = 0;    ///< lanes active across all slots
  std::uint64_t possible_lane_ops = 0;  ///< slots * warp_size

  // Branching
  std::uint64_t branch_events = 0;      ///< warp-level branch evaluations
  std::uint64_t divergent_branches = 0; ///< branches with >1 distinct path

  // Global memory
  std::uint64_t global_load_ops = 0;   ///< warp-level load instructions
  std::uint64_t global_store_ops = 0;
  std::uint64_t l1_tag_requests_global = 0;  ///< sectors requested at L1
  std::uint64_t l1_sector_hits = 0;
  std::uint64_t l1_sector_misses = 0;
  std::uint64_t l2_sector_requests = 0;
  std::uint64_t l2_sector_hits = 0;
  std::uint64_t l2_sector_misses = 0;
  std::uint64_t dram_sectors = 0;       ///< fills + write-backs
  std::uint64_t dram_row_hits = 0;
  std::uint64_t dram_row_misses = 0;

  // Shared (work-group local) memory
  std::uint64_t shared_ops = 0;              ///< warp-level shared accesses
  std::uint64_t shared_wavefronts = 0;       ///< actual wavefronts incl. conflicts
  std::uint64_t shared_wavefronts_ideal = 0; ///< conflict-free lower bound

  // Atomics
  std::uint64_t atomic_ops = 0;          ///< warp-level atomic instructions
  std::uint64_t atomic_lane_updates = 0; ///< individual lane updates
  std::uint64_t atomic_serial_replays = 0;  ///< same-address serialisation

  // Synchronisation
  std::uint64_t barrier_warp_events = 0;

  void add(const TraceCounters& o);
};

/// Occupancy analysis for a launch.
struct OccupancyInfo {
  int groups_per_sm = 0;
  int warps_per_group = 0;
  int warps_per_sm = 0;
  double theoretical = 0.0;  ///< warps_per_sm / max warps
  double achieved = 0.0;     ///< includes tail-wave and ramp effects
  int waves = 0;             ///< number of full waves over the device
  const char* limiter = "";  ///< which resource bounds residency
};

/// Timing decomposition produced by the analytical model.
struct TimingBreakdown {
  double dram_s = 0.0;
  double latency_s = 0.0;  ///< MSHR/LSU sector-pressure (latency-bound) term
  double l1_s = 0.0;
  double shared_s = 0.0;
  double issue_s = 0.0;
  double atomic_s = 0.0;
  double barrier_s = 0.0;
  double total_s = 0.0;
  const char* bound_by = "";
};

/// Everything the paper's Table I reports for one kernel launch, plus the
/// derived GFLOP/s used in Fig. 6.
struct KernelStats {
  std::string name;
  /// Non-empty when the launch was invalidated by an injected fault
  /// (faultsim::to_string of the kind); such a record carries no timing and
  /// its kernel had no side effects (except a watchdog kill, whose partial
  /// output is suspect).
  std::string fault;
  LaunchConfig launch;
  OccupancyInfo occupancy;
  TraceCounters counters;
  TimingBreakdown timing;

  double duration_us = 0.0;
  double gflops = 0.0;            ///< achieved GFLOP/s
  double sm_throughput_pct = 0.0;
  double peak_pct = 0.0;          ///< vs the paper's 7.6 TFLOP/s empirical peak
  double l1_throughput_pct = 0.0;
  double l1_miss_pct = 0.0;
  double l2_miss_pct = 0.0;
  double shared_kb_per_group = 0.0;
  double avg_divergent_branches = 0.0;  ///< per SM scheduler, as Nsight reports
};

}  // namespace gpusim
