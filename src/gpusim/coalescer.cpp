#include "gpusim/coalescer.hpp"

#include <algorithm>

namespace gpusim {

void coalesce_sectors(std::span<const LaneAccess> lanes, int sector_bytes,
                      std::vector<std::uint64_t>& out) {
  out.clear();
  const std::uint64_t sb = static_cast<std::uint64_t>(sector_bytes);
  for (const LaneAccess& a : lanes) {
    const std::uint64_t first = a.addr / sb;
    const std::uint64_t last = (a.addr + a.size - 1) / sb;
    for (std::uint64_t s = first; s <= last; ++s) out.push_back(s * sb);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

BankAnalysis analyze_shared(std::span<const LaneAccess> lanes, int banks, int bank_bytes) {
  // Collect the distinct words each access touches, then count per-bank
  // distinct words; the warp needs max-over-banks wavefronts.
  thread_local std::vector<std::uint64_t> words;
  words.clear();
  const std::uint64_t bb = static_cast<std::uint64_t>(bank_bytes);
  for (const LaneAccess& a : lanes) {
    const std::uint64_t first = a.addr / bb;
    const std::uint64_t last = (a.addr + a.size - 1) / bb;
    for (std::uint64_t w = first; w <= last; ++w) words.push_back(w);
  }
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());

  BankAnalysis res;
  if (words.empty()) return res;

  thread_local std::vector<std::uint32_t> per_bank;
  per_bank.assign(static_cast<std::size_t>(banks), 0);
  for (std::uint64_t w : words) {
    ++per_bank[static_cast<std::size_t>(w % static_cast<std::uint64_t>(banks))];
  }
  res.wavefronts = *std::max_element(per_bank.begin(), per_bank.end());
  res.ideal = static_cast<std::uint32_t>((words.size() + static_cast<std::size_t>(banks) - 1) /
                                         static_cast<std::size_t>(banks));
  return res;
}

}  // namespace gpusim
