#include "gpusim/dram.hpp"

namespace gpusim {

DramModel::DramModel(const MachineModel& m, const Calibration& cal)
    : interleave_(static_cast<std::uint64_t>(m.dram_interleave_bytes)),
      row_bytes_(static_cast<std::uint64_t>(m.dram_row_bytes)),
      channels_(static_cast<std::uint64_t>(m.dram_channels)),
      banks_(static_cast<std::uint64_t>(m.dram_banks_per_channel)),
      penalty_(cal.dram_row_miss_penalty),
      open_row_(static_cast<std::size_t>(m.dram_channels * m.dram_banks_per_channel),
                ~0ull) {}

bool DramModel::access(std::uint64_t byte_addr) {
  const std::uint64_t chunk = byte_addr / interleave_;
  const std::size_t channel = static_cast<std::size_t>(chunk % channels_);
  // Row addressing is channel-local: dropping the interleave bits makes a
  // linear stream occupy one row per (channel, bank) for row_bytes/interleave
  // chunks; rows interleave across the channel's banks, so several concurrent
  // streams can keep their rows open simultaneously.
  const std::uint64_t local = (chunk / channels_) * interleave_ + byte_addr % interleave_;
  const std::uint64_t row = local / row_bytes_;
  const std::size_t bank = static_cast<std::size_t>(row % banks_);
  const std::size_t slot = channel * static_cast<std::size_t>(banks_) + bank;
  ++sectors_;
  if (open_row_[slot] == row) {
    ++row_hits_;
    return true;
  }
  open_row_[slot] = row;
  return false;
}

void DramModel::reset() {
  sectors_ = 0;
  row_hits_ = 0;
  for (auto& r : open_row_) r = ~0ull;
}

}  // namespace gpusim
