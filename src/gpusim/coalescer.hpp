// coalescer.hpp — warp-level global-memory coalescing and shared-memory
// bank-conflict analysis.
//
// A warp instruction presents up to 32 lane accesses.  The coalescer merges
// them into the minimal set of distinct 32 B sectors (Nsight's
// "l1_tag_requests_global" counts exactly these).  The shared-memory
// analyser computes the number of wavefronts needed to service the accesses
// through 32 four-byte-wide banks, and the conflict-free lower bound
// (Nsight's memory_l1_wavefronts_shared vs ..._ideal, Table I rows 11–12).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gpusim {

/// One lane's access within a warp instruction.
struct LaneAccess {
  std::uint64_t addr = 0;  ///< byte address (global) or byte offset (shared)
  std::uint8_t size = 0;   ///< access width in bytes (4, 8 or 16)
  std::uint8_t lane = 0;
};

/// Append the distinct 32 B sector addresses touched by `lanes` to `out`
/// (sorted, deduplicated).  Accesses may straddle sector boundaries.
void coalesce_sectors(std::span<const LaneAccess> lanes, int sector_bytes,
                      std::vector<std::uint64_t>& out);

struct BankAnalysis {
  std::uint32_t wavefronts = 0;
  std::uint32_t ideal = 0;
  [[nodiscard]] std::uint32_t excessive() const {
    return wavefronts > ideal ? wavefronts - ideal : 0;
  }
};

/// Shared-memory conflict analysis for one warp instruction.  Lanes reading
/// the *same* word broadcast; lanes touching different words in the same
/// bank serialise.
[[nodiscard]] BankAnalysis analyze_shared(std::span<const LaneAccess> lanes, int banks,
                                          int bank_bytes);

}  // namespace gpusim
