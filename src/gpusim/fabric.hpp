// fabric.hpp — the inter-node fabric tier above the NVLink island.
//
// link.hpp models one node: an NVSwitch island with per-device egress and
// ingress ports.  Production MILC runs span *clusters* of such nodes
// (DeTar et al., arXiv:1712.00143; Gottlieb, hep-lat/0112038), where the
// dominant cost is the InfiniBand-class fabric between them — an order of
// magnitude less bandwidth and several times the latency of NVLink.  This
// header adds that second interconnect level with the same character as the
// rest of gpusim: a small set of audited latency/bandwidth constants plus
// structural contention rules, so multi-node exchange time is simulated
// with the same rigor as kernel and NVLink time.
//
// Topology: `NodeTopology` composes node groups of NVLink-connected devices
// over a `FabricModel`.  Global device ranks are grouped contiguously —
// devices [k*devices_per_node, (k+1)*devices_per_node) form node k — so a
// message is intra-node (NVLink, priced by the LinkModel) exactly when both
// endpoints share a node group.
//
// Fabric contention has three structural rules, each distinct from NVLink's
// per-device ports:
//  * one NIC per node: inter-node messages sharing a source node serialise
//    on its NIC egress, messages sharing a destination node on its ingress;
//  * the injection-rate limit: the egress port stays busy for
//    bytes / injection_rate_gbs per message — when the injection rate is
//    below the NIC line rate (several GPUs feeding one HCA over PCIe), a
//    node cannot fill the pipe back-to-back even though each message still
//    travels at line rate;
//  * switch contention: every message also occupies the shared switch
//    crossbar for bytes / switch_bw_gbs — invisible at small node counts,
//    the binding resource once many node pairs talk at once.
//
// Aggregation: latency dominates small messages on the fabric, so the
// multidev runner coalesces all face slabs a device pair exchanges in one
// direction into ONE wire message with a small frame header per slab
// (`aggregate_fabric_messages`) — one NIC latency per neighbour instead of
// one per (dimension, side) slab.  Framing is explicit (`FabricFrame`) so
// the receiver can split the payload without tags or matching logic.
//
// Fault injection: inter-node messages are consulted per *aggregate* at
// site "fabric-exchange r<src>->r<dst> n<srcnode>->n<dstnode>".  A dropped
// aggregate loses every frame; a corrupted aggregate corrupts exactly one
// deterministically-picked frame; a delayed aggregate pays the latency
// spike once.  Intra-node messages keep link.hpp's per-message consult and
// site grammar, so single-node fault plans replay unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/link.hpp"

namespace gpusim {

/// Latency–bandwidth description of an InfiniBand-class inter-node fabric.
/// Constants are HDR-generation (200 Gb/s): ~24 GB/s effective line rate
/// after protocol overhead, ~5 us end-to-end MPI-level latency, ~0.3 us per
/// switch hop (two hops through one leaf/spine crossing), and a shared
/// switch crossbar sized at 8 HDR ports.
struct FabricModel {
  double nic_bw_gbs = 24.0;         ///< per-NIC line rate, GB/s unidirectional
  double nic_latency_us = 5.0;      ///< end-to-end software latency per message
  double injection_rate_gbs = 24.0; ///< per-node injection cap (PCIe-fed HCA)
  double switch_bw_gbs = 192.0;     ///< shared crossbar capacity, all pairs
  double switch_latency_us = 0.3;   ///< per-hop latency (charged twice)
  std::int64_t frame_header_bytes = 32;  ///< wire overhead per aggregated frame
};

/// One HDR InfiniBand fabric (the DGX-A100 SuperPOD class).
[[nodiscard]] inline FabricModel hdr_fabric() { return FabricModel{}; }

/// Hot-spare capacity held in reserve alongside the active devices: idle
/// devices inside each node (warm spares on the same NVLink island) and
/// whole standby nodes behind the fabric.  Spares are *capacity accounting*,
/// not extra ranks — the partition grid never includes them until a
/// recovery consumes one, at which point the lost shard's slabs are
/// re-replicated onto the spare over the priced interconnect instead of
/// shrinking the grid (docs/RESILIENCE.md, "Recovery taxonomy").
struct SpareInventory {
  int devices_per_node = 0;  ///< idle same-island devices available per node
  int nodes = 0;             ///< whole standby nodes behind the fabric

  [[nodiscard]] bool any() const { return devices_per_node > 0 || nodes > 0; }
};

/// Two-level interconnect: `nodes` groups of `devices_per_node` devices,
/// NVLink inside a group, the fabric between groups.  Device ranks are
/// grouped contiguously: node_of(r) = r / devices_per_node.
struct NodeTopology {
  int nodes = 1;
  int devices_per_node = 8;
  LinkModel intra = dgx_a100_links();
  FabricModel fabric{};
  SpareInventory spares{};  ///< hot-spare pool for re-replication failover

  [[nodiscard]] int total_devices() const { return nodes * devices_per_node; }
  [[nodiscard]] int node_of(int device) const { return device / devices_per_node; }
  [[nodiscard]] bool same_node(int a, int b) const { return node_of(a) == node_of(b); }
  [[nodiscard]] bool multi_node() const { return nodes > 1; }
};

/// A cluster of `nodes` nodes with `devices_per_node` A100s each; the
/// intra-node island is sized to the node so every same-node pair is NVLink.
[[nodiscard]] NodeTopology cluster(int nodes, int devices_per_node);

/// Uncontended fabric transfer time of one wire message:
/// NIC latency + two switch hops + bytes / NIC line rate.
[[nodiscard]] double fabric_wire_time_us(const FabricModel& f, std::int64_t bytes);

/// One constituent slab inside an aggregated fabric message: where the
/// caller's msgs[msg_index] payload sits in the coalesced wire payload.
struct FabricFrame {
  std::size_t msg_index = 0;    ///< index into the caller's message span
  std::int64_t offset_bytes = 0;  ///< payload offset inside the aggregate
  std::int64_t bytes = 0;         ///< payload bytes of this frame
};

/// One coalesced inter-node wire message: every slab a (src, dst) device
/// pair exchanges in one direction, framed in canonical (input) order.
struct AggregatedMessage {
  int src = 0;  ///< sending device (global rank)
  int dst = 0;  ///< receiving device (global rank)
  double depart_us = 0.0;  ///< max of the constituents' departure times
  std::vector<FabricFrame> frames;
  std::int64_t payload_bytes = 0;

  /// Bytes on the wire: payload plus one frame header per slab.
  [[nodiscard]] std::int64_t wire_bytes(const FabricModel& f) const {
    return payload_bytes + static_cast<std::int64_t>(frames.size()) * f.frame_header_bytes;
  }
};

/// Coalesce the inter-node subset of `msgs` into one aggregate per (src,
/// dst) device pair, frames in input order, aggregates ordered by first
/// appearance — fully deterministic.  Intra-node messages are ignored.
[[nodiscard]] std::vector<AggregatedMessage> aggregate_fabric_messages(
    const NodeTopology& topo, std::span<const LinkMessage> msgs);

/// Result of simulating one exchange over the two-level topology.
struct FabricExchangeReport {
  double finish_us = 0.0;            ///< last delivery over either network
  std::vector<double> arrival_us;    ///< per device: last inbound delivery
  std::int64_t intra_bytes = 0;      ///< NVLink wire bytes
  std::int64_t inter_bytes = 0;      ///< fabric wire bytes incl. frame headers
  int intra_messages = 0;            ///< point-to-point NVLink messages
  int inter_messages = 0;            ///< aggregated fabric wire messages
  double intra_finish_us = 0.0;      ///< last NVLink delivery
  double inter_finish_us = 0.0;      ///< last fabric delivery
  double intra_wire_us = 0.0;        ///< summed NVLink message wire times
  double inter_wire_us = 0.0;        ///< summed fabric aggregate wire times
  int dropped = 0;                   ///< injected losses (frames, both tiers)
  int corrupted = 0;
  int delayed = 0;
};

/// Event-driven simulation of one message set over the two-level topology.
/// Intra-node messages run through link.hpp's per-device-port schedule (all
/// same-node pairs are NVLink); inter-node messages are aggregated per
/// device pair and scheduled greedily over NIC egress (busy for
/// bytes / injection_rate), NIC ingress (busy until delivery) and the
/// shared switch (busy for bytes / switch_bw) — pick the pending aggregate
/// with the earliest ready time, ties by (src, dst).  The two networks are
/// disjoint resources, so fabric aggregates fill the pipe while NVLink
/// traffic drains — the two-phase overlap the multidev runner schedules.
/// Per-message outputs (start/done/fault flags) are written back into
/// `msgs`; an aggregate's constituents share its timing and fault verdict
/// (one frame is picked for corruption).
FabricExchangeReport simulate_topology_exchange(const NodeTopology& topo,
                                                std::span<LinkMessage> msgs);

}  // namespace gpusim
