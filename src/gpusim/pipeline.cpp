#include "gpusim/pipeline.hpp"

#include <algorithm>
#include <cassert>

namespace gpusim {

PerfPipeline::PerfPipeline(const MachineModel& m, const Calibration& cal)
    : machine_(m),
      cal_(cal),
      l2_(m.l2_bytes, m.line_bytes, m.sector_bytes, m.l2_ways),
      dram_(m, cal) {
  l1_.reserve(static_cast<std::size_t>(m.num_sms));
  for (int s = 0; s < m.num_sms; ++s) {
    l1_.emplace_back(m.l1_bytes, m.line_bytes, m.sector_bytes, m.l1_ways);
  }
}

void PerfPipeline::l2_fill_path(std::uint64_t sector_addr, bool write, bool count_dram_fill) {
  ++ctr_.l2_sector_requests;
  const SectoredCache::Outcome out = l2_.access(sector_addr, write, /*allocate=*/true);
  if (out.hit) {
    ++ctr_.l2_sector_hits;
  } else {
    ++ctr_.l2_sector_misses;
    if (count_dram_fill) {
      const bool row_hit = dram_.access(sector_addr);
      ++ctr_.dram_sectors;
      row_hit ? ++ctr_.dram_row_hits : ++ctr_.dram_row_misses;
    }
  }
  if (out.writeback_sectors > 0) {
    dram_.access_opaque(static_cast<std::uint64_t>(out.writeback_sectors));
    ctr_.dram_sectors += static_cast<std::uint64_t>(out.writeback_sectors);
    ctr_.dram_row_misses += static_cast<std::uint64_t>(out.writeback_sectors);
  }
}

void PerfPipeline::global_load(int sm, std::span<const LaneAccess> lanes) {
  ++ctr_.global_load_ops;
  coalesce_sectors(lanes, machine_.sector_bytes, sectors_);
  SectoredCache& l1 = l1_[static_cast<std::size_t>(sm)];
  for (std::uint64_t s : sectors_) {
    ++ctr_.l1_tag_requests_global;
    const SectoredCache::Outcome out = l1.access(s, /*write=*/false, /*allocate=*/true);
    if (out.hit) {
      ++ctr_.l1_sector_hits;
    } else {
      ++ctr_.l1_sector_misses;
      l2_fill_path(s, /*write=*/false, /*count_dram_fill=*/true);
    }
  }
}

void PerfPipeline::global_store(int sm, std::span<const LaneAccess> lanes) {
  ++ctr_.global_store_ops;
  coalesce_sectors(lanes, machine_.sector_bytes, sectors_);
  SectoredCache& l1 = l1_[static_cast<std::size_t>(sm)];
  for (std::uint64_t s : sectors_) {
    // Write-through / no-allocate at L1: the access still consumes an L1 tag
    // lookup (and updates the sector if present), then writes into L2.
    ++ctr_.l1_tag_requests_global;
    l1.access(s, /*write=*/false, /*allocate=*/false);
    // Write-allocate in L2 without a DRAM fetch (write-combined sectors).
    l2_fill_path(s, /*write=*/true, /*count_dram_fill=*/false);
  }
}

void PerfPipeline::global_atomic(int /*sm*/, std::span<const LaneAccess> lanes) {
  ++ctr_.atomic_ops;
  ctr_.atomic_lane_updates += lanes.size();

  // Same-address lane updates within one instruction serialise at the L2
  // atomic unit; distinct addresses proceed in parallel across slices.
  thread_local std::vector<std::uint64_t> addrs;
  addrs.clear();
  for (const LaneAccess& a : lanes) addrs.push_back(a.addr);
  std::sort(addrs.begin(), addrs.end());
  std::size_t i = 0;
  while (i < addrs.size()) {
    std::size_t j = i + 1;
    while (j < addrs.size() && addrs[j] == addrs[i]) ++j;
    ctr_.atomic_serial_replays += static_cast<std::uint64_t>(j - i - 1);
    i = j;
  }

  // Each distinct sector is a read-modify-write in L2 (bypasses L1).
  coalesce_sectors(lanes, machine_.sector_bytes, sectors_);
  for (std::uint64_t s : sectors_) l2_fill_path(s, /*write=*/true, /*count_dram_fill=*/true);
}

void PerfPipeline::shared_access(std::span<const LaneAccess> lanes, bool /*write*/) {
  ++ctr_.shared_ops;
  const BankAnalysis res =
      analyze_shared(lanes, machine_.shared_banks, machine_.shared_bank_bytes);
  ctr_.shared_wavefronts += res.wavefronts;
  ctr_.shared_wavefronts_ideal += res.ideal;
}

void PerfPipeline::finalize() {
  const std::int64_t dirty = l2_.flush();
  if (dirty > 0) {
    dram_.access_opaque(static_cast<std::uint64_t>(dirty));
    ctr_.dram_sectors += static_cast<std::uint64_t>(dirty);
    ctr_.dram_row_misses += static_cast<std::uint64_t>(dirty);
  }
}

void PerfPipeline::reset() {
  for (auto& c : l1_) c.reset();
  l2_.reset();
  dram_.reset();
  ctr_ = TraceCounters{};
}

}  // namespace gpusim
