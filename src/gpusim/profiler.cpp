#include "gpusim/profiler.hpp"

#include <cmath>
#include <cstdio>
#include <functional>
#include <ostream>
#include <vector>

namespace gpusim {

std::string format_count(double v) {
  char buf[32];
  if (v >= 100e6) {
    std::snprintf(buf, sizeof(buf), "%.0fM", v / 1e6);
  } else if (v >= 0.45e6) {  // the paper writes "0.5M" for half a million
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  // Trim a trailing ".0" like Table I does ("86M", not "86.0M").
  std::string s = buf;
  const auto pos = s.find(".0");
  if (pos != std::string::npos) s.erase(pos, 2);
  return s;
}

namespace {

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

}  // namespace

void print_table1(std::ostream& os, std::span<const KernelStats> cols) {
  struct Row {
    const char* label;
    std::function<std::string(const KernelStats&)> cell;
  };
  const std::vector<Row> rows = {
      {"1  - Duration (us)", [](const KernelStats& s) { return fmt("%.1f", s.duration_us); }},
      {"2  - Work-items (global size)",
       [](const KernelStats& s) { return format_count(static_cast<double>(s.launch.global_size)); }},
      {"3  - Compute (SM) throughput (%)",
       [](const KernelStats& s) { return fmt("%.1f", s.sm_throughput_pct); }},
      {"4  - Achieved occupancy (%)",
       [](const KernelStats& s) { return fmt("%.1f", 100.0 * s.occupancy.achieved); }},
      {"5  - Peak performance (%)",
       [](const KernelStats& s) { return fmt("%.0f", s.peak_pct); }},
      {"6  - L1/TEX cache throughput (%)",
       [](const KernelStats& s) { return fmt("%.1f", s.l1_throughput_pct); }},
      {"7  - L1/TEX miss rate (%)",
       [](const KernelStats& s) { return fmt("%.1f", s.l1_miss_pct); }},
      {"8  - L2 miss rate (%)", [](const KernelStats& s) { return fmt("%.1f", s.l2_miss_pct); }},
      {"9  - Dyn. shared mem per WG (KB)",
       [](const KernelStats& s) { return fmt("%.1f", s.shared_kb_per_group); }},
      {"10 - L1 tag requests global (sectors)",
       [](const KernelStats& s) {
         return format_count(static_cast<double>(s.counters.l1_tag_requests_global));
       }},
      {"11 - L1 wavefronts shared (sectors)",
       [](const KernelStats& s) {
         return format_count(static_cast<double>(s.counters.shared_wavefronts));
       }},
      {"12 - Excessive L1 wavefronts shared",
       [](const KernelStats& s) {
         return format_count(static_cast<double>(s.counters.shared_wavefronts -
                                                  std::min(s.counters.shared_wavefronts,
                                                           s.counters.shared_wavefronts_ideal)));
       }},
      {"13 - Avg. divergent branches",
       [](const KernelStats& s) { return fmt("%.0f", s.avg_divergent_branches); }},
  };

  // Header
  os << "\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%-40s", "Metric");
  os << buf;
  for (const KernelStats& s : cols) {
    std::snprintf(buf, sizeof(buf), "%14s", s.name.c_str());
    os << buf;
  }
  os << "\n";
  for (std::size_t i = 0; i < 40 + cols.size() * 14; ++i) os << '-';
  os << "\n";
  for (const Row& r : rows) {
    std::snprintf(buf, sizeof(buf), "%-40s", r.label);
    os << buf;
    for (const KernelStats& s : cols) {
      std::snprintf(buf, sizeof(buf), "%14s", r.cell(s).c_str());
      os << buf;
    }
    os << "\n";
  }
  os << "\n";
}

void print_kernel_report(std::ostream& os, const KernelStats& st) {
  const TraceCounters& c = st.counters;
  os << "kernel: " << st.name << "\n"
     << "  launch: global=" << st.launch.global_size << " local=" << st.launch.local_size
     << " shared=" << st.launch.shared_bytes_per_group << "B regs=" << st.launch.regs_per_thread
     << " phases=" << st.launch.num_phases << "\n"
     << "  occupancy: " << fmt("%.1f", 100.0 * st.occupancy.achieved) << "% achieved ("
     << fmt("%.1f", 100.0 * st.occupancy.theoretical) << "% theoretical, limited by "
     << st.occupancy.limiter << ", " << st.occupancy.groups_per_sm << " groups/SM, "
     << st.occupancy.waves << " waves)\n"
     << "  timing: total=" << fmt("%.2f", st.timing.total_s * 1e6) << "us bound_by="
     << st.timing.bound_by << " [dram=" << fmt("%.2f", st.timing.dram_s * 1e6)
     << " l1=" << fmt("%.2f", st.timing.l1_s * 1e6)
     << " shared=" << fmt("%.2f", st.timing.shared_s * 1e6)
     << " issue=" << fmt("%.2f", st.timing.issue_s * 1e6)
     << " atomic=" << fmt("%.2f", st.timing.atomic_s * 1e6)
     << " barrier=" << fmt("%.2f", st.timing.barrier_s * 1e6) << " us]\n"
     << "  perf: " << fmt("%.1f", st.gflops) << " GFLOP/s (" << fmt("%.1f", st.peak_pct)
     << "% of empirical peak)\n"
     << "  mem: l1_tag=" << format_count(static_cast<double>(c.l1_tag_requests_global))
     << " l1_miss=" << fmt("%.1f", st.l1_miss_pct)
     << "% l2_miss=" << fmt("%.1f", st.l2_miss_pct)
     << "% dram_sectors=" << format_count(static_cast<double>(c.dram_sectors))
     << " row_hit=" << format_count(static_cast<double>(c.dram_row_hits)) << "\n"
     << "  smem: wavefronts=" << format_count(static_cast<double>(c.shared_wavefronts))
     << " ideal=" << format_count(static_cast<double>(c.shared_wavefronts_ideal)) << "\n"
     << "  issue: slots=" << format_count(static_cast<double>(c.warp_issue_slots))
     << " fp64=" << format_count(static_cast<double>(c.fp64_warp_slots))
     << " divergent=" << format_count(static_cast<double>(c.divergent_branches))
     << " atomics=" << format_count(static_cast<double>(c.atomic_lane_updates)) << "\n";
}

}  // namespace gpusim
