// pipeline.hpp — replays merged warp instructions through the simulated
// memory hierarchy (per-SM L1 caches → shared L2 → DRAM channel model) and
// accumulates the raw trace counters.
//
// Write policies mirror the A100: L1 is write-through/no-allocate for global
// stores, L2 is write-back/write-allocate; atomics bypass L1 and
// read-modify-write in L2.  Loads allocate in both levels.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "gpusim/cache.hpp"
#include "gpusim/calibration.hpp"
#include "gpusim/coalescer.hpp"
#include "gpusim/dram.hpp"
#include "gpusim/machine.hpp"
#include "gpusim/stats.hpp"

namespace gpusim {

class PerfPipeline {
 public:
  PerfPipeline(const MachineModel& m, const Calibration& cal);

  /// One warp-level global load instruction (one divergence path group).
  void global_load(int sm, std::span<const LaneAccess> lanes);

  /// One warp-level global store instruction.
  void global_store(int sm, std::span<const LaneAccess> lanes);

  /// One warp-level global atomic read-modify-write (relaxed add).
  void global_atomic(int sm, std::span<const LaneAccess> lanes);

  /// One warp-level shared (work-group local) memory instruction.
  void shared_access(std::span<const LaneAccess> lanes, bool write);

  /// Flush dirty L2 sectors to DRAM (end of kernel).
  void finalize();

  [[nodiscard]] TraceCounters& counters() { return ctr_; }
  [[nodiscard]] const TraceCounters& counters() const { return ctr_; }
  [[nodiscard]] const DramModel& dram() const { return dram_; }

  void reset();

 private:
  void l2_fill_path(std::uint64_t sector_addr, bool write, bool count_dram_fill);

  MachineModel machine_;
  Calibration cal_;
  std::vector<SectoredCache> l1_;  // one per SM
  SectoredCache l2_;
  DramModel dram_;
  TraceCounters ctr_;
  std::vector<std::uint64_t> sectors_;  // scratch
};

}  // namespace gpusim
