// link.hpp — point-to-point interconnect model for multi-device runs.
//
// The single-GPU simulator ends at HBM; the multi-device Dslash adds one
// more resource: the links over which halo (ghost-zone) traffic moves.
// This model is deliberately of the same character as the rest of gpusim —
// a small set of audited latency/bandwidth constants plus a structural
// contention rule — so exchange time is simulated with the same rigor as
// kernel time instead of being hand-waved.
//
// Topology: devices [0, nvlink_devices) form an NVSwitch island (DGX-A100
// style) with full NVLink bandwidth between every pair inside it; any
// message with an endpoint outside the island crosses PCIe.  Contention:
// each device owns one egress and one ingress port; messages sharing a port
// serialise (NVLink is full-duplex, so egress and ingress do not contend
// with each other).  A message's wire time is latency + bytes / bandwidth.
//
// Constants: A100 NVLink3 delivers 300 GB/s unidirectional per GPU pair
// through NVSwitch (12 links x 25 GB/s); PCIe gen4 x16 sustains ~22 GB/s
// after protocol overhead.  Latencies are end-to-end one-way software
// latencies of small transfers (cudaMemcpyPeer-style), not raw SerDes.
//
// Fault injection: when a faultsim::Injector is installed, every message is
// consulted (`Injector::on_message`) before scheduling — it may be dropped
// (transmits, occupies ports, never delivered), corrupted (delivered with a
// flipped payload bit; the *caller* owns the payload and applies
// `faultsim::flip_bit(corrupt_key)` on receipt), or delayed (extra latency +
// degraded bandwidth).  With no injector installed the schedule is untouched.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gpusim {

/// Latency–bandwidth description of the inter-device fabric.
struct LinkModel {
  int nvlink_devices = 8;        ///< devices [0, n) share an NVSwitch island
  double nvlink_bw_gbs = 300.0;  ///< unidirectional GB/s per device pair
  double nvlink_latency_us = 1.9;
  double pcie_bw_gbs = 22.0;     ///< PCIe gen4 x16 effective
  double pcie_latency_us = 6.0;
};

/// The fabric of one DGX-A100 node (8 GPUs, NVSwitch).
[[nodiscard]] inline LinkModel dgx_a100_links() { return LinkModel{}; }

/// True when both endpoints sit inside the NVLink island.
[[nodiscard]] bool is_nvlink(const LinkModel& m, int src, int dst);

/// Uncontended transfer time of one message: latency + bytes / bandwidth.
[[nodiscard]] double wire_time_us(const LinkModel& m, int src, int dst, std::int64_t bytes);

/// One point-to-point transfer.  `depart_us` is an input (the earliest the
/// sender can put the message on the wire — its pack-kernel completion);
/// `start_us`/`done_us` are filled in by simulate_exchange.
struct LinkMessage {
  int src = 0;
  int dst = 0;
  std::int64_t bytes = 0;
  double depart_us = 0.0;
  double start_us = 0.0;
  double done_us = 0.0;

  /// Fault-site label consulted by the injector; empty = the default
  /// "halo-exchange r<src>->r<dst>".
  std::string site;

  // Filled in by simulate_exchange when a fault injector is installed.
  bool dropped = false;     ///< transmitted but never delivered
  bool corrupted = false;   ///< delivered; caller must flip_bit(corrupt_key)
  bool delayed = false;     ///< latency spike + degraded bandwidth applied
  std::uint64_t corrupt_key = 0;
};

/// Result of simulating one halo exchange.
struct ExchangeReport {
  double finish_us = 0.0;               ///< last message delivered
  std::int64_t total_bytes = 0;
  std::vector<double> arrival_us;       ///< per device: last inbound delivery (0 if none)
  std::vector<double> egress_busy_us;   ///< per device: total egress-port occupancy
  int dropped = 0;                      ///< injected message losses this exchange
  int corrupted = 0;                    ///< injected payload corruptions
  int delayed = 0;                      ///< injected latency spikes
};

/// Event-driven simulation of a message set over the fabric.  Scheduling is
/// greedy and deterministic: repeatedly start the pending message with the
/// earliest ready time max(depart, egress_free[src], ingress_free[dst]),
/// ties broken by (src, dst, position).  Ports stay busy for the full wire
/// time, which serialises same-port messages — the per-pair contention the
/// all-to-neighbour exchange of a 4-D decomposition produces.
ExchangeReport simulate_exchange(const LinkModel& m, std::span<LinkMessage> msgs,
                                 int num_devices);

}  // namespace gpusim
