// calibration.hpp — every tunable coefficient of the performance model, in
// one audited place (DESIGN.md "honesty rule").
//
// Two kinds of constants live here:
//  1. *Architectural* constants that are hard to derive from first
//     principles (latency-hiding saturation points, DRAM row-miss penalty,
//     atomic service cost, synchronisation drain).  These are set once so
//     that the simulated A100 lands in the regime the paper measures; they
//     are shared by every kernel and never tuned per strategy.
//  2. *Codegen* coefficients that stand in for real-compiler effects the
//     paper measures but an architectural simulator cannot produce
//     (register allocation quality, the SYCLomatic derived-index expression,
//     SyclCPLX abstraction overhead).  These are declared per kernel
//     *variant* in KernelTraits — see minisycl/traits.hpp — and documented
//     in DESIGN.md §2 item 2.
#pragma once

namespace gpusim {

struct Calibration {
  // Latency hiding: effective utilisation of a throughput resource at warp
  // occupancy `occ` is  occ * (1 + k) / (occ + k)  — a saturating curve equal
  // to 1 at occ = 1.  Memory-system resources need more concurrency to
  // saturate than issue resources.
  double occ_half_sat_dram = 0.12;   ///< DRAM needs many warps in flight
  double occ_half_sat_l1 = 0.10;     ///< LSU saturates earlier
  double occ_half_sat_issue = 0.05;  ///< issue saturates with few warps
  double occ_half_sat_latency = 0.43;  ///< latency hiding needs the most warps

  /// Memory-latency pressure: every L1 sector request keeps an MSHR/LSU slot
  /// busy for this many SM-cycles *after* latency hiding.  Kernels that issue
  /// many small, uncoalesced requests (1LP over AoS data) become bound by
  /// this term rather than by raw DRAM bandwidth — the mechanism behind the
  /// paper's 2x gap between 1LP and 3LP-1 at similar DRAM traffic.
  double latency_cycles_per_sector = 1.45;

  /// Fraction of issue and shared-memory pipe time that fails to overlap
  /// with the memory system (divergence replays and bank-conflict wavefronts
  /// lengthen the critical path even in memory-bound kernels).
  double overlap_fraction = 0.7;

  /// DRAM row-buffer model: cost of a sector that misses the open row of its
  /// channel, relative to a row-hit sector (captures burst/locality effects
  /// that separate coalesced from scattered miss streams).
  double dram_row_miss_penalty = 2.0;

  /// Peak-bandwidth derating even for perfect streams (refresh, ECC, ...).
  double dram_base_efficiency = 0.965;

  /// L2-atomic service: cycles per serialized same-address update within one
  /// warp instruction, charged on top of the normal memory cost.
  double atomic_serial_cycles = 4.0;

  /// Extra L2 round-trip charged per global atomic sector (read-modify-write
  /// occupies the slice twice).
  double atomic_sector_factor = 2.0;

  /// Concurrency of the L2 atomic units (slices working in parallel, and
  /// overlap of atomic latency with other warps' execution).
  double atomic_parallel_units = 16.0;

  /// Pipeline drain on a work-group barrier: cycles during which the warps of
  /// the group cannot hide latency, charged once per barrier per warp.
  double barrier_drain_cycles = 40.0;

  /// Estimated non-FP instructions (address arithmetic, loop control) issued
  /// per recorded memory operation — drives the issue-slot estimate.
  double control_slots_per_mem_op = 1.4;

  /// Kernel-launch overheads on the simulated timeline (microseconds).
  /// Out-of-order queues pay dependency-graph management on every submit
  /// (paper §IV-D6 attributes the 1.5–6.7% SYCLomatic-optimized advantage to
  /// its in-order queue; see also SYCL-Bench 2020).
  double launch_overhead_in_order_us = 2.5;
  double launch_overhead_out_of_order_us = 24.0;

  /// Warp-scheduler ramp/imbalance factor applied to theoretical occupancy
  /// to produce "achieved" occupancy (in addition to the tail-wave effect,
  /// which is computed exactly from the grid).
  double occupancy_ramp_factor = 0.982;
};

[[nodiscard]] inline Calibration default_calibration() { return Calibration{}; }

/// The saturating latency-hiding curve described above.
[[nodiscard]] inline double latency_hiding(double occ, double half_sat) {
  if (occ <= 0.0) return 0.0;
  return occ * (1.0 + half_sat) / (occ + half_sat);
}

}  // namespace gpusim
