// roofline.hpp — roofline placement of a profiled kernel.
//
// The paper's central premise is that MILC-Dslash "is memory-bound and
// therefore did not benefit from the increased concurrency provided by 4LP"
// (§V).  This module makes the premise quantitative: from a kernel's
// measured FLOPs and DRAM traffic it computes the arithmetic intensity, the
// attainable roofline ceiling min(peak, intensity x bandwidth), and how
// much of that ceiling the kernel achieved.
#pragma once

#include "gpusim/machine.hpp"
#include "gpusim/stats.hpp"

namespace gpusim {

struct RooflinePoint {
  double flops = 0.0;
  double dram_bytes = 0.0;
  double intensity = 0.0;          ///< FLOP / DRAM byte
  double ridge_intensity = 0.0;    ///< where the roof bends (peak / BW)
  double attainable_gflops = 0.0;  ///< min(peak, intensity * BW)
  double achieved_gflops = 0.0;
  double roof_fraction = 0.0;      ///< achieved / attainable
  bool memory_bound = false;       ///< intensity below the ridge
};

/// Analyse a profiled kernel against the machine's empirical roofline
/// (the paper's 7.6 TFLOP/s empirical FP64 peak and the HBM peak).
[[nodiscard]] RooflinePoint roofline_analyze(const MachineModel& m, const KernelStats& st);

}  // namespace gpusim
