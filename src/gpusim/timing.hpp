// timing.hpp — analytical timing model.
//
// The kernel duration is the maximum of the throughput-bound resource times
// (DRAM, L1/LSU, shared memory, instruction issue), each derated by an
// occupancy-dependent latency-hiding curve, plus additive costs for atomic
// serialisation and barrier drains, all scaled by the kernel variant's
// codegen coefficient (DESIGN.md §2 item 2).
#pragma once

#include "gpusim/calibration.hpp"
#include "gpusim/machine.hpp"
#include "gpusim/stats.hpp"

namespace gpusim {

/// Compute the timing decomposition for a replayed kernel.
/// `dram_cost_units` is DramModel::cost_units() (row-hit-equivalent sectors).
[[nodiscard]] TimingBreakdown compute_timing(const MachineModel& m, const Calibration& cal,
                                             const OccupancyInfo& occ,
                                             const TraceCounters& ctr,
                                             double dram_cost_units,
                                             double codegen_slowdown);

/// Assemble the full Nsight-style stats record for a launch.
[[nodiscard]] KernelStats make_stats(const MachineModel& m, const Calibration& cal,
                                     std::string name, const LaunchConfig& cfg,
                                     const OccupancyInfo& occ, const TraceCounters& ctr,
                                     double dram_cost_units, double codegen_slowdown);

}  // namespace gpusim
