#include "gpusim/occupancy.hpp"

#include <algorithm>
#include <stdexcept>

namespace gpusim {

namespace {

int round_up(int v, int granularity) {
  return ((v + granularity - 1) / granularity) * granularity;
}

}  // namespace

OccupancyInfo compute_occupancy(const MachineModel& m, const Calibration& cal,
                                const LaunchConfig& cfg) {
  if (cfg.local_size <= 0 || cfg.local_size > m.max_group_size) {
    throw std::invalid_argument("occupancy: invalid work-group size");
  }
  if (cfg.global_size % cfg.local_size != 0) {
    throw std::invalid_argument(
        "occupancy: global size must be divisible by local size (SYCL nd_range rule)");
  }

  OccupancyInfo info;
  info.warps_per_group = (cfg.local_size + m.warp_size - 1) / m.warp_size;

  const int by_threads = m.max_threads_per_sm / cfg.local_size;

  // Registers are allocated per warp in chunks.
  const int regs_per_warp =
      round_up(std::max(1, cfg.regs_per_thread) * m.warp_size, m.register_alloc_granularity);
  const int warps_by_regs = m.registers_per_sm / regs_per_warp;
  const int by_regs = warps_by_regs / info.warps_per_group;

  int by_shared = m.max_groups_per_sm;
  if (cfg.shared_bytes_per_group > 0) {
    const int alloc = round_up(cfg.shared_bytes_per_group, m.shared_alloc_granularity);
    if (alloc > m.shared_bytes_per_sm) {
      throw std::invalid_argument("occupancy: shared memory per group exceeds SM capacity");
    }
    by_shared = m.shared_bytes_per_sm / alloc;
  }

  info.groups_per_sm = std::min({by_threads, by_regs, by_shared, m.max_groups_per_sm});
  if (info.groups_per_sm <= 0) {
    throw std::invalid_argument("occupancy: launch does not fit on an SM");
  }

  // Tie-break: report the most fundamental limit first.
  if (info.groups_per_sm == by_threads) {
    info.limiter = "threads";
  } else if (info.groups_per_sm == by_regs) {
    info.limiter = "registers";
  } else if (cfg.shared_bytes_per_group > 0 && info.groups_per_sm == by_shared) {
    info.limiter = "shared-memory";
  } else {
    info.limiter = "groups";
  }

  info.warps_per_sm = info.groups_per_sm * info.warps_per_group;
  const int max_warps = m.max_threads_per_sm / m.warp_size;
  info.theoretical = static_cast<double>(info.warps_per_sm) / max_warps;

  // Tail wave: the grid rarely fills an integral number of full device waves.
  const std::int64_t groups = cfg.global_size / cfg.local_size;
  const std::int64_t wave_capacity =
      static_cast<std::int64_t>(info.groups_per_sm) * m.num_sms;
  info.waves = static_cast<int>((groups + wave_capacity - 1) / wave_capacity);
  const double fill = static_cast<double>(groups) /
                      (static_cast<double>(info.waves) * static_cast<double>(wave_capacity));
  info.achieved = info.theoretical * fill * cal.occupancy_ramp_factor;
  return info;
}

}  // namespace gpusim
