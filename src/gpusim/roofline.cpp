#include "gpusim/roofline.hpp"

#include <algorithm>

namespace gpusim {

RooflinePoint roofline_analyze(const MachineModel& m, const KernelStats& st) {
  RooflinePoint p;
  p.flops = static_cast<double>(st.counters.flops);
  p.dram_bytes =
      static_cast<double>(st.counters.dram_sectors) * static_cast<double>(m.sector_bytes);
  if (p.dram_bytes <= 0.0 || st.duration_us <= 0.0) return p;

  const double peak_gflops = m.empirical_peak_tflops * 1e3;
  const double bw_gbs = m.dram_peak_gbs;
  p.intensity = p.flops / p.dram_bytes;
  p.ridge_intensity = peak_gflops / bw_gbs;
  p.attainable_gflops = std::min(peak_gflops, p.intensity * bw_gbs);
  p.achieved_gflops = p.flops / (st.duration_us * 1e-6) / 1e9;
  p.roof_fraction = p.achieved_gflops / p.attainable_gflops;
  p.memory_bound = p.intensity < p.ridge_intensity;
  return p;
}

}  // namespace gpusim
