#include "gpusim/timing.hpp"

#include <algorithm>
#include <utility>

namespace gpusim {

TimingBreakdown compute_timing(const MachineModel& m, const Calibration& cal,
                               const OccupancyInfo& occ, const TraceCounters& ctr,
                               double dram_cost_units, double codegen_slowdown) {
  TimingBreakdown t;
  const double clock = m.clock_hz();
  const double sms = static_cast<double>(m.num_sms);
  const double occ_a = occ.achieved;

  // -- DRAM: row-hit-equivalent sectors over derated peak bandwidth ----------
  {
    const double bytes_equiv = dram_cost_units * static_cast<double>(m.sector_bytes);
    const double bw = m.dram_peak_gbs * 1e9 * cal.dram_base_efficiency *
                      latency_hiding(occ_a, cal.occ_half_sat_dram);
    t.dram_s = bw > 0.0 ? bytes_equiv / bw : 0.0;
  }

  // -- L1/LSU: sector servicing throughput per SM -----------------------------
  {
    const double sectors = static_cast<double>(ctr.l1_tag_requests_global);
    // Every memory instruction occupies the LSU at least one cycle even if it
    // coalesces to fewer than 4 sectors.
    const double mem_ops = static_cast<double>(ctr.global_load_ops + ctr.global_store_ops +
                                               ctr.atomic_ops + ctr.shared_ops);
    const double cycles = std::max(sectors / m.l1_sectors_per_cycle, mem_ops);
    t.l1_s = cycles / (sms * clock * latency_hiding(occ_a, cal.occ_half_sat_l1));
  }

  // -- Memory-latency pressure (MSHR/LSU slot occupancy per sector) ----------
  {
    const double sectors = static_cast<double>(ctr.l1_tag_requests_global);
    t.latency_s = sectors * cal.latency_cycles_per_sector /
                  (sms * clock * latency_hiding(occ_a, cal.occ_half_sat_latency));
  }

  // -- Shared memory: one wavefront per cycle per SM --------------------------
  {
    const double cycles =
        static_cast<double>(ctr.shared_wavefronts) / m.smem_wavefronts_per_cycle;
    t.shared_s = cycles / (sms * clock * latency_hiding(occ_a, cal.occ_half_sat_l1));
  }

  // -- Issue: warp instruction slots over the schedulers; FP64 warp FMAs are
  //    additionally bounded by the FP64 pipe (one full warp per cycle per SM).
  {
    const double slot_cycles =
        static_cast<double>(ctr.warp_issue_slots) / static_cast<double>(m.schedulers_per_sm);
    const double fp64_cycles = static_cast<double>(ctr.fp64_warp_slots) /
                               (m.fp64_lanes_per_cycle / static_cast<double>(m.warp_size));
    const double cycles = std::max(slot_cycles, fp64_cycles);
    t.issue_s = cycles / (sms * clock * latency_hiding(occ_a, cal.occ_half_sat_issue));
  }

  // -- Atomic serialisation (additive) ----------------------------------------
  {
    // Every lane update is a serialised visit to an L2 atomic unit; distinct
    // addresses spread over `atomic_parallel_units` concurrent units.
    t.atomic_s = static_cast<double>(ctr.atomic_lane_updates) * cal.atomic_serial_cycles /
                 (sms * clock * cal.atomic_parallel_units);
  }

  // -- Barrier drain (additive): overlapped across resident warps -------------
  {
    const double warps_hiding = std::max(1.0, static_cast<double>(occ.warps_per_sm));
    t.barrier_s = static_cast<double>(ctr.barrier_warp_events) * cal.barrier_drain_cycles /
                  (sms * clock * warps_hiding);
  }

  // Combine: the memory system is bound by the larger of bandwidth and
  // latency pressure; issue and shared-memory pipes overlap only partially
  // with it (overlap_fraction); atomics and barriers are additive.
  const double mem = std::max(t.dram_s, t.latency_s);
  const std::pair<double, const char*> components[] = {{mem, t.dram_s >= t.latency_s
                                                                 ? "dram"
                                                                 : "latency"},
                                                       {t.l1_s, "l1"},
                                                       {t.shared_s, "shared"},
                                                       {t.issue_s, "issue"}};
  double bound = 0.0;
  for (const auto& [v, n] : components) {
    if (v > bound) {
      bound = v;
      t.bound_by = n;
    }
  }
  double extra = 0.0;
  if (bound == mem) {
    extra = cal.overlap_fraction * (t.issue_s + t.shared_s);
  }
  t.total_s = (bound + extra + t.atomic_s + t.barrier_s) * codegen_slowdown;
  return t;
}

KernelStats make_stats(const MachineModel& m, const Calibration& cal, std::string name,
                       const LaunchConfig& cfg, const OccupancyInfo& occ,
                       const TraceCounters& ctr, double dram_cost_units,
                       double codegen_slowdown) {
  KernelStats st;
  st.name = std::move(name);
  st.launch = cfg;
  st.occupancy = occ;
  st.counters = ctr;
  st.timing = compute_timing(m, cal, occ, ctr, dram_cost_units, codegen_slowdown);

  const double dur_s = st.timing.total_s;
  st.duration_us = dur_s * 1e6;
  st.gflops = dur_s > 0.0 ? static_cast<double>(ctr.flops) / dur_s / 1e9 : 0.0;
  st.peak_pct = 100.0 * st.gflops / (m.empirical_peak_tflops * 1e3);

  const double dur_cycles = dur_s * m.clock_hz();
  if (dur_cycles > 0.0) {
    const double issue_cycles_per_sm = static_cast<double>(ctr.warp_issue_slots) /
                                       static_cast<double>(m.schedulers_per_sm) /
                                       static_cast<double>(m.num_sms);
    st.sm_throughput_pct = 100.0 * issue_cycles_per_sm / dur_cycles;

    const double l1_cycles_per_sm =
        (static_cast<double>(ctr.l1_tag_requests_global) / m.l1_sectors_per_cycle +
         static_cast<double>(ctr.shared_wavefronts) / m.smem_wavefronts_per_cycle +
         static_cast<double>(ctr.global_load_ops + ctr.global_store_ops + ctr.atomic_ops +
                             ctr.shared_ops)) /
        static_cast<double>(m.num_sms);
    st.l1_throughput_pct = 100.0 * l1_cycles_per_sm / dur_cycles;
  }

  const double l1_req = static_cast<double>(ctr.l1_sector_hits + ctr.l1_sector_misses);
  st.l1_miss_pct = l1_req > 0.0 ? 100.0 * static_cast<double>(ctr.l1_sector_misses) / l1_req : 0.0;
  const double l2_req = static_cast<double>(ctr.l2_sector_requests);
  st.l2_miss_pct =
      l2_req > 0.0 ? 100.0 * static_cast<double>(ctr.l2_sector_misses) / l2_req : 0.0;
  st.shared_kb_per_group = static_cast<double>(cfg.shared_bytes_per_group) / 1000.0;  // decimal KB, as Nsight/Table I report
  st.avg_divergent_branches = static_cast<double>(ctr.divergent_branches) /
                              static_cast<double>(m.num_sms * m.schedulers_per_sm);
  (void)cal;
  return st;
}

}  // namespace gpusim
