// hisq.hpp — HISQ-style fat and long link construction.
//
// The benchmark fills its fat/long link arrays with random SU(3); the real
// MILC HISQ action *derives* them from the fundamental ("thin") gauge field
// (paper §II: "the more modern and commonly used version, which includes
// first- and third-nearest neighbor terms"):
//
//   * long (Naik) links:  N_mu(x) = U_mu(x) U_mu(x+mu) U_mu(x+2mu)
//   * fat links: single-level staple (APE-style) smearing
//         F_mu(x) = Proj[ (1 - 6 w) U_mu(x) + w * sum_staples ]
//     projected back with the *covariant* U(3) polar projection
//     M (M^dag M)^{-1/2} that HISQ itself uses (a Gram–Schmidt projection
//     would break gauge covariance).  Full HISQ smears twice with 7-link
//     paths; the single-level 3-staple version preserves the structure the
//     Dslash consumes while keeping this module compact (documented
//     simplification).
#pragma once

#include "lattice/fields.hpp"

namespace milc {

struct HisqOptions {
  double fat_weight = 1.0 / 8.0;  ///< staple weight w (1-6w on the thin link)
  int polar_iterations = 24;      ///< Newton–Schulz steps for (M^dag M)^{-1/2}
};

/// Covariant U(3) polar projection M -> M (M^dag M)^{-1/2} via Newton–Schulz.
/// Requires M nonsingular (always true for smeared sums of SU(3) links with
/// moderate weights).
[[nodiscard]] SU3Matrix<dcomplex> polar_project(const SU3Matrix<dcomplex>& m,
                                                int iterations = 24);

/// Build HISQ-style fat and long links from the thin links stored in the
/// `fat` family of `thin` (its `lng` family is ignored).
[[nodiscard]] GaugeConfiguration build_hisq_links(const LatticeGeom& geom,
                                                  const GaugeConfiguration& thin,
                                                  const HisqOptions& opts = {});

}  // namespace milc
