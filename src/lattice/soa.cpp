#include "lattice/soa.hpp"

#include <array>

namespace milc {

SoAGauge::SoAGauge(const GaugeView& view, Reconstruct scheme)
    : scheme_(scheme),
      reals_(reals_per_link(scheme)),
      pairs_((reals_per_link(scheme) + 1) / 2),
      sites_(view.sites()) {
  data_.resize(static_cast<std::size_t>(kNlinks * kNdim * pairs_) *
               static_cast<std::size_t>(sites_));
  std::array<double, 18> tmp{};
  for (int l = 0; l < kNlinks; ++l) {
    for (std::int64_t s = 0; s < sites_; ++s) {
      for (int k = 0; k < kNdim; ++k) {
        pack_link(scheme_, view.link(l, s, k), tmp);
        for (int p = 0; p < pairs_; ++p) {
          const double re = tmp[static_cast<std::size_t>(2 * p)];
          const double im =
              2 * p + 1 < reals_ ? tmp[static_cast<std::size_t>(2 * p + 1)] : 0.0;
          const std::size_t off =
              static_cast<std::size_t>((l * kNdim + k) * pairs_ + p) *
                  static_cast<std::size_t>(sites_) +
              static_cast<std::size_t>(s);
          data_[off] = {re, im};
        }
      }
    }
  }
}

SU3Matrix<dcomplex> SoAGauge::unpack(int l, std::int64_t s, int k) const {
  std::array<double, 18> tmp{};
  for (int r = 0; r < reals_; ++r) tmp[static_cast<std::size_t>(r)] = at(l, k, r, s);
  return unpack_link(scheme_, std::span<const double>(tmp.data(), static_cast<std::size_t>(reals_)));
}

SoAColor::SoAColor(const LatticeGeom& geom, Parity /*p*/)
    : sites_(geom.half_volume()),
      data_(static_cast<std::size_t>(kColors) * static_cast<std::size_t>(sites_)) {}

SoAColor::SoAColor(const ColorField& f)
    : sites_(f.size()),
      data_(static_cast<std::size_t>(kColors) * static_cast<std::size_t>(sites_)) {
  for (std::int64_t s = 0; s < sites_; ++s) set(s, f[s]);
}

SU3Vector<dcomplex> SoAColor::get(std::int64_t s) const {
  SU3Vector<dcomplex> v;
  for (int c = 0; c < kColors; ++c) v.c[c] = plane(c)[s];
  return v;
}

void SoAColor::set(std::int64_t s, const SU3Vector<dcomplex>& v) {
  for (int c = 0; c < kColors; ++c) plane(c)[s] = v.c[c];
}

ColorField SoAColor::to_aos(const LatticeGeom& geom, Parity p) const {
  ColorField f(geom, p);
  for (std::int64_t s = 0; s < sites_; ++s) f[s] = get(s);
  return f;
}

}  // namespace milc
