#include "lattice/gauge_transform.hpp"

#include "su3/random_su3.hpp"

namespace milc {

GaugeTransform::GaugeTransform(const LatticeGeom& geom)
    : omega_(static_cast<std::size_t>(geom.volume()), SU3Matrix<dcomplex>::identity()) {}

void GaugeTransform::fill_random(std::uint64_t seed) {
  Rng rng(seed);
  for (auto& m : omega_) m = random_su3(rng);
}

GaugeConfiguration GaugeTransform::apply(const LatticeGeom& geom,
                                         const GaugeConfiguration& cfg) const {
  GaugeConfiguration out(geom);
  for (std::int64_t x = 0; x < geom.volume(); ++x) {
    const Coords c = geom.coords(x);
    for (int mu = 0; mu < kNdim; ++mu) {
      const std::int64_t x1 = geom.full_index(geom.displace(c, mu, +1));
      const std::int64_t x3 = geom.full_index(geom.displace(c, mu, +3));
      out.fat(x, mu) = matmul(matmul(at(x), cfg.fat(x, mu)), adjoint(at(x1)));
      out.lng(x, mu) = matmul(matmul(at(x), cfg.lng(x, mu)), adjoint(at(x3)));
    }
  }
  return out;
}

ColorField GaugeTransform::apply(const LatticeGeom& geom, const ColorField& f) const {
  ColorField out(geom, f.parity());
  for (std::int64_t s = 0; s < f.size(); ++s) {
    const std::int64_t x = geom.full_index_of(f.parity(), s);
    out[s] = matvec(at(x), f[s]);
  }
  return out;
}

}  // namespace milc
