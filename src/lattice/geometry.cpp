#include "lattice/geometry.hpp"

#include <stdexcept>
#include <string>

namespace milc {

LatticeGeom::LatticeGeom(const Coords& dims) : dims_(dims) {
  volume_ = 1;
  for (int d = 0; d < kNdim; ++d) {
    const int e = dims_[static_cast<std::size_t>(d)];
    if (e < 2 || e % 2 != 0) {
      throw std::invalid_argument("LatticeGeom: extents must be even and >= 2, but dim " +
                                  std::to_string(d) + " has extent " + std::to_string(e));
    }
    stride_[static_cast<std::size_t>(d)] = volume_;
    volume_ *= dims_[static_cast<std::size_t>(d)];
  }
}

std::int64_t LatticeGeom::full_index(const Coords& c) const {
  std::int64_t idx = 0;
  for (int d = 0; d < kNdim; ++d) {
    assert(c[static_cast<std::size_t>(d)] >= 0 &&
           c[static_cast<std::size_t>(d)] < dims_[static_cast<std::size_t>(d)]);
    idx += c[static_cast<std::size_t>(d)] * stride_[static_cast<std::size_t>(d)];
  }
  return idx;
}

Coords LatticeGeom::coords(std::int64_t full_idx) const {
  assert(full_idx >= 0 && full_idx < volume_);
  Coords c{};
  for (int d = 0; d < kNdim; ++d) {
    c[static_cast<std::size_t>(d)] =
        static_cast<int>(full_idx % dims_[static_cast<std::size_t>(d)]);
    full_idx /= dims_[static_cast<std::size_t>(d)];
  }
  return c;
}

std::int64_t LatticeGeom::full_index_of(Parity p, std::int64_t eo_idx) const {
  const std::int64_t base = eo_idx * 2;
  // One of {base, base+1} has the requested parity (x-extent is even).
  return parity(base) == p ? base : base + 1;
}

Coords LatticeGeom::displace(Coords c, int dim, int dist) const {
  const int n = dims_[static_cast<std::size_t>(dim)];
  int v = (c[static_cast<std::size_t>(dim)] + dist) % n;
  if (v < 0) v += n;
  c[static_cast<std::size_t>(dim)] = v;
  return c;
}

NeighborTable::NeighborTable(const LatticeGeom& geom, Parity target) : target_(target) {
  const std::int64_t half = geom.half_volume();
  idx_.resize(static_cast<std::size_t>(half * kNeighbors));
  for (std::int64_t s = 0; s < half; ++s) {
    const std::int64_t f = geom.full_index_of(target, s);
    const Coords c = geom.coords(f);
    for (int k = 0; k < kNdim; ++k) {
      for (int l = 0; l < kNlinks; ++l) {
        const std::int64_t nf = geom.full_index(geom.displace(c, k, kStencilOffsets[static_cast<std::size_t>(l)]));
        assert(geom.parity(nf) == opposite(target));
        idx_[static_cast<std::size_t>(s * kNeighbors + k * kNlinks + l)] =
            static_cast<std::int32_t>(geom.eo_index(nf));
      }
    }
  }
}

}  // namespace milc
