// geometry.hpp — four-dimensional hypercubic lattice with checkerboard
// (even/odd) site indexing and periodic boundaries.
//
// The Dslash operator couples sites of one parity ("target" sites s*) to
// sites of the opposite parity displaced by +-1 and +-3 hops in each of the
// four dimensions (the staggered/HISQ 16-point stencil of eq. (1)).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

namespace milc {

inline constexpr int kNdim = 4;      ///< space-time dimensions (paper |k|).
inline constexpr int kNlinks = 4;    ///< link arrays: fat, long, fat-back, long-back (paper |l|).
inline constexpr int kNeighbors = kNdim * kNlinks;  ///< 16-point stencil.

/// Site parity on the checkerboard.
enum class Parity : std::uint8_t { Even = 0, Odd = 1 };

[[nodiscard]] constexpr Parity opposite(Parity p) {
  return p == Parity::Even ? Parity::Odd : Parity::Even;
}

/// Lattice coordinates (x, y, z, t), x fastest-varying in memory order.
using Coords = std::array<int, kNdim>;

/// Geometry of an X*Y*Z*T periodic lattice.  All extents must be even (and
/// >= 6 if third-neighbour hops must not wrap onto first neighbours; smaller
/// lattices are still well-defined, the stencil simply wraps).
class LatticeGeom {
 public:
  /// Hypercubic L^4 lattice.
  explicit LatticeGeom(int L) : LatticeGeom(Coords{L, L, L, L}) {}

  /// General (even-extent) lattice.
  explicit LatticeGeom(const Coords& dims);

  [[nodiscard]] const Coords& dims() const { return dims_; }
  [[nodiscard]] int extent(int d) const { return dims_[static_cast<std::size_t>(d)]; }
  [[nodiscard]] std::int64_t volume() const { return volume_; }
  /// Sites of one parity: |s*| = volume / 2.
  [[nodiscard]] std::int64_t half_volume() const { return volume_ / 2; }

  /// Full lexicographic index of coords (x fastest).
  [[nodiscard]] std::int64_t full_index(const Coords& c) const;

  /// Inverse of full_index.
  [[nodiscard]] Coords coords(std::int64_t full_idx) const;

  /// Parity of a site.
  [[nodiscard]] Parity parity(const Coords& c) const {
    return static_cast<Parity>((c[0] + c[1] + c[2] + c[3]) & 1);
  }
  [[nodiscard]] Parity parity(std::int64_t full_idx) const { return parity(coords(full_idx)); }

  /// Checkerboard index within a parity array.  Because the x-extent is even,
  /// sites 2m and 2m+1 always have opposite parity, so full_index/2 is a
  /// bijection between each parity class and [0, volume/2).
  [[nodiscard]] std::int64_t eo_index(std::int64_t full_idx) const { return full_idx >> 1; }
  [[nodiscard]] std::int64_t eo_index(const Coords& c) const { return full_index(c) >> 1; }

  /// Full index of the site with the given parity and checkerboard index.
  [[nodiscard]] std::int64_t full_index_of(Parity p, std::int64_t eo_idx) const;

  /// Coordinates displaced by `dist` (may be negative) along dimension `dim`,
  /// with periodic wrapping.
  [[nodiscard]] Coords displace(Coords c, int dim, int dist) const;

  /// Full index of the neighbour of `full_idx` at distance `dist` along `dim`.
  [[nodiscard]] std::int64_t neighbor(std::int64_t full_idx, int dim, int dist) const {
    return full_index(displace(coords(full_idx), dim, dist));
  }

 private:
  Coords dims_{};
  std::int64_t volume_ = 0;
  std::array<std::int64_t, kNdim> stride_{};  // index strides per dimension
};

/// Neighbour offsets of the staggered stencil, in the order the kernels'
/// l-loop visits the link arrays: fat forward (+1), long forward (+3),
/// fat backward (-1), long backward (-3).
inline constexpr std::array<int, kNlinks> kStencilOffsets{+1, +3, -1, -3};

/// Signs of the four stencil terms in eq. (1): forward terms add, backward
/// (adjoint) terms subtract.
inline constexpr std::array<double, kNlinks> kStencilSigns{+1.0, +1.0, -1.0, -1.0};

/// Precomputed gather table: for every target site s* (of `target` parity)
/// and every (dim k, link l), the checkerboard index of the source-parity
/// site the stencil reads.  Layout: idx[(s*16) + k*4 + l], matching the
/// loop nest of the kernels (the benchmark code precomputes exactly such
/// forward/backward index arrays).
class NeighborTable {
 public:
  NeighborTable() = default;
  NeighborTable(const LatticeGeom& geom, Parity target);

  [[nodiscard]] std::int32_t at(std::int64_t site, int dim, int link) const {
    return idx_[static_cast<std::size_t>(site * kNeighbors + dim * kNlinks + link)];
  }

  [[nodiscard]] const std::int32_t* data() const { return idx_.data(); }
  [[nodiscard]] std::size_t size() const { return idx_.size(); }
  [[nodiscard]] Parity target_parity() const { return target_; }

 private:
  std::vector<std::int32_t> idx_;
  Parity target_ = Parity::Even;
};

}  // namespace milc
