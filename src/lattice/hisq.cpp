#include "lattice/hisq.hpp"

#include <cmath>

namespace milc {

namespace {

SU3Matrix<dcomplex> scaled(const SU3Matrix<dcomplex>& m, double s) {
  SU3Matrix<dcomplex> r;
  for (int i = 0; i < kColors; ++i) {
    for (int j = 0; j < kColors; ++j) r.e[i][j] = cscale(s, m.e[i][j]);
  }
  return r;
}

void add_into(SU3Matrix<dcomplex>& acc, const SU3Matrix<dcomplex>& m, double w) {
  for (int i = 0; i < kColors; ++i) {
    for (int j = 0; j < kColors; ++j) acc.e[i][j] += cscale(w, m.e[i][j]);
  }
}

}  // namespace

SU3Matrix<dcomplex> polar_project(const SU3Matrix<dcomplex>& m, int iterations) {
  // Newton–Schulz polar iteration  X <- 1/2 X (3 I - X^dag X), which
  // converges to the unitary polar factor m (m^dag m)^{-1/2} whenever the
  // singular values of X0 lie in (0, sqrt(3)).  Normalising by the
  // Frobenius norm puts sigma_max <= 1.
  const double n = std::sqrt(frobenius_norm2(m));
  SU3Matrix<dcomplex> x = scaled(m, 1.0 / n);

  for (int it = 0; it < iterations; ++it) {
    SU3Matrix<dcomplex> w = matmul(adjoint(x), x);  // X^dag X
    for (int i = 0; i < kColors; ++i) {
      for (int j = 0; j < kColors; ++j) w.e[i][j] = cneg(w.e[i][j]);
      w.e[i][i] += dcomplex{3.0, 0.0};
    }
    x = scaled(matmul(x, w), 0.5);
  }
  return x;
}

GaugeConfiguration build_hisq_links(const LatticeGeom& geom, const GaugeConfiguration& thin,
                                    const HisqOptions& opts) {
  GaugeConfiguration out(geom);
  const double w = opts.fat_weight;
  for (std::int64_t x = 0; x < geom.volume(); ++x) {
    const Coords cx = geom.coords(x);
    for (int mu = 0; mu < kNdim; ++mu) {
      // -- Naik (3-link) long link ------------------------------------------
      const std::int64_t x1 = geom.full_index(geom.displace(cx, mu, +1));
      const std::int64_t x2 = geom.full_index(geom.displace(cx, mu, +2));
      out.lng(x, mu) = matmul(matmul(thin.fat(x, mu), thin.fat(x1, mu)), thin.fat(x2, mu));

      // -- fat link: thin link plus six staples, covariantly projected ------
      SU3Matrix<dcomplex> acc = scaled(thin.fat(x, mu), 1.0 - 6.0 * w);
      for (int nu = 0; nu < kNdim; ++nu) {
        if (nu == mu) continue;
        const std::int64_t x_nu = geom.full_index(geom.displace(cx, nu, +1));
        SU3Matrix<dcomplex> fwd = matmul(thin.fat(x, nu), thin.fat(x_nu, mu));
        fwd = matmul(fwd, adjoint(thin.fat(x1, nu)));
        add_into(acc, fwd, w);

        const Coords c_dn = geom.displace(cx, nu, -1);
        const std::int64_t x_dn = geom.full_index(c_dn);
        const std::int64_t x1_dn = geom.full_index(geom.displace(c_dn, mu, +1));
        SU3Matrix<dcomplex> bwd = matmul(adjoint(thin.fat(x_dn, nu)), thin.fat(x_dn, mu));
        bwd = matmul(bwd, thin.fat(x1_dn, nu));
        add_into(acc, bwd, w);
      }
      out.fat(x, mu) = polar_project(acc, opts.polar_iterations);
    }
  }
  return out;
}

}  // namespace milc
