#include "lattice/io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace milc::io {

namespace {

constexpr std::uint64_t kMagic = 0x4d494c4353494d31ull;  // "MILCSIM1"

struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t kind = 0;
  std::uint32_t parity = 0;  // 0 even, 1 odd, 2 full-lattice
  std::int32_t dims[4] = {0, 0, 0, 0};
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
};

void write_blob(const std::string& path, FieldKind kind, std::uint32_t parity,
                const LatticeGeom& geom, const void* payload, std::size_t bytes) {
  Header h;
  h.kind = static_cast<std::uint32_t>(kind);
  h.parity = parity;
  for (int d = 0; d < kNdim; ++d) h.dims[d] = geom.extent(d);
  h.payload_bytes = bytes;
  h.checksum = fnv1a(payload, bytes);

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("io: cannot open '" + path + "' for writing");
  os.write(reinterpret_cast<const char*>(&h), sizeof(h));
  os.write(static_cast<const char*>(payload), static_cast<std::streamsize>(bytes));
  if (!os) throw std::runtime_error("io: short write to '" + path + "'");
}

std::vector<char> read_blob(const std::string& path, FieldKind kind, std::uint32_t parity,
                            const LatticeGeom& geom) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("io: cannot open '" + path + "'");
  Header h;
  is.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!is || h.magic != kMagic) throw std::runtime_error("io: bad magic in '" + path + "'");
  if (h.kind != static_cast<std::uint32_t>(kind)) {
    throw std::runtime_error("io: wrong payload kind in '" + path + "'");
  }
  if (h.parity != parity) throw std::runtime_error("io: parity mismatch in '" + path + "'");
  for (int d = 0; d < kNdim; ++d) {
    if (h.dims[d] != geom.extent(d)) {
      throw std::runtime_error("io: lattice geometry mismatch in '" + path + "'");
    }
  }
  std::vector<char> payload(h.payload_bytes);
  is.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!is || is.gcount() != static_cast<std::streamsize>(payload.size())) {
    throw std::runtime_error("io: truncated payload in '" + path + "'");
  }
  if (fnv1a(payload.data(), payload.size()) != h.checksum) {
    throw std::runtime_error("io: checksum mismatch in '" + path + "' (corrupt file)");
  }
  return payload;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void save_gauge(const std::string& path, const LatticeGeom& geom,
                const GaugeConfiguration& cfg) {
  // Payload: fat then long links, full lattice, [site][k] row-major matrices.
  const std::size_t n = static_cast<std::size_t>(geom.volume() * kNdim);
  std::vector<SU3Matrix<dcomplex>> buf;
  buf.reserve(2 * n);
  for (std::int64_t f = 0; f < geom.volume(); ++f) {
    for (int k = 0; k < kNdim; ++k) buf.push_back(cfg.fat(f, k));
  }
  for (std::int64_t f = 0; f < geom.volume(); ++f) {
    for (int k = 0; k < kNdim; ++k) buf.push_back(cfg.lng(f, k));
  }
  write_blob(path, FieldKind::GaugeConfiguration, 2, geom, buf.data(),
             buf.size() * sizeof(SU3Matrix<dcomplex>));
}

GaugeConfiguration load_gauge(const std::string& path, const LatticeGeom& geom) {
  const std::vector<char> payload = read_blob(path, FieldKind::GaugeConfiguration, 2, geom);
  const std::size_t n = static_cast<std::size_t>(geom.volume() * kNdim);
  if (payload.size() != 2 * n * sizeof(SU3Matrix<dcomplex>)) {
    throw std::runtime_error("io: gauge payload size mismatch in '" + path + "'");
  }
  GaugeConfiguration cfg(geom);
  const auto* mats = reinterpret_cast<const SU3Matrix<dcomplex>*>(payload.data());
  std::size_t idx = 0;
  for (std::int64_t f = 0; f < geom.volume(); ++f) {
    for (int k = 0; k < kNdim; ++k) cfg.fat(f, k) = mats[idx++];
  }
  for (std::int64_t f = 0; f < geom.volume(); ++f) {
    for (int k = 0; k < kNdim; ++k) cfg.lng(f, k) = mats[idx++];
  }
  return cfg;
}

void save_color_field(const std::string& path, const LatticeGeom& geom, const ColorField& f) {
  write_blob(path, FieldKind::ColorField, f.parity() == Parity::Even ? 0u : 1u, geom,
             f.data(), f.bytes());
}

ColorField load_color_field(const std::string& path, const LatticeGeom& geom) {
  // Try both parities; the header records which one was written.
  for (Parity p : {Parity::Even, Parity::Odd}) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("io: cannot open '" + path + "'");
    // Peek the parity field to avoid a throw-and-retry dance.
    char raw[sizeof(std::uint64_t) + sizeof(std::uint32_t) + sizeof(std::uint32_t)];
    is.read(raw, sizeof(raw));
    std::uint32_t parity = 0;
    std::memcpy(&parity, raw + sizeof(std::uint64_t) + sizeof(std::uint32_t),
                sizeof(parity));
    if (parity != (p == Parity::Even ? 0u : 1u)) continue;

    const std::vector<char> payload =
        read_blob(path, FieldKind::ColorField, parity, geom);
    ColorField field(geom, p);
    if (payload.size() != field.bytes()) {
      throw std::runtime_error("io: colour-field payload size mismatch in '" + path + "'");
    }
    std::memcpy(field.data(), payload.data(), payload.size());
    return field;
  }
  throw std::runtime_error("io: unrecognised parity in '" + path + "'");
}

}  // namespace milc::io
