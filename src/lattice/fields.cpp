#include "lattice/fields.hpp"

#include <algorithm>
#include <cmath>

namespace milc {

void ColorField::zero() { std::fill(data_.begin(), data_.end(), SU3Vector<dcomplex>{}); }

void ColorField::fill_random(std::uint64_t seed) {
  Rng rng(seed);
  for (auto& v : data_) v = random_vector(rng);
}

double norm2(const ColorField& v) {
  double acc = 0.0;
  for (std::int64_t s = 0; s < v.size(); ++s) acc += norm2(v[s]);
  return acc;
}

dcomplex dot(const ColorField& a, const ColorField& b) {
  assert(a.size() == b.size());
  dcomplex acc{0.0, 0.0};
  for (std::int64_t s = 0; s < a.size(); ++s) acc += dot(a[s], b[s]);
  return acc;
}

void axpy(double alpha, const ColorField& x, ColorField& y) {
  assert(x.size() == y.size());
  for (std::int64_t s = 0; s < x.size(); ++s) y[s] += alpha * x[s];
}

void xpay(const ColorField& x, double alpha, ColorField& y) {
  assert(x.size() == y.size());
  for (std::int64_t s = 0; s < x.size(); ++s) y[s] = x[s] + alpha * y[s];
}

void scale(double alpha, ColorField& y) {
  for (std::int64_t s = 0; s < y.size(); ++s) y[s] = alpha * y[s];
}

double max_abs_diff(const ColorField& a, const ColorField& b) {
  assert(a.size() == b.size());
  double m = 0.0;
  for (std::int64_t s = 0; s < a.size(); ++s) {
    for (int i = 0; i < kColors; ++i) {
      m = std::max(m, std::fabs(a[s].c[i].re - b[s].c[i].re));
      m = std::max(m, std::fabs(a[s].c[i].im - b[s].c[i].im));
    }
  }
  return m;
}

GaugeConfiguration::GaugeConfiguration(const LatticeGeom& geom)
    : fat_(static_cast<std::size_t>(geom.volume() * kNdim)),
      lng_(static_cast<std::size_t>(geom.volume() * kNdim)) {}

void GaugeConfiguration::fill_random(std::uint64_t seed) {
  Rng rng(seed);
  for (auto& m : fat_) m = random_su3(rng);
  for (auto& m : lng_) m = random_su3(rng);
}

DeviceGaugeLayout::DeviceGaugeLayout(const GaugeView& view) : sites_(view.sites()) {
  for (int l = 0; l < kNlinks; ++l) {
    auto& fam = data_[static_cast<std::size_t>(l)];
    fam.resize(static_cast<std::size_t>(sites_ * kNdim * kColors * kColors));
    for (std::int64_t s = 0; s < sites_; ++s) {
      for (int k = 0; k < kNdim; ++k) {
        const SU3Matrix<dcomplex>& m = view.link(l, s, k);
        for (int j = 0; j < kColors; ++j) {
          for (int i = 0; i < kColors; ++i) {
            fam[static_cast<std::size_t>(((s * kNdim + k) * kColors + j) * kColors + i)] =
                m.e[i][j];
          }
        }
      }
    }
  }
}

GaugeView::GaugeView(const LatticeGeom& geom, const GaugeConfiguration& cfg, Parity target)
    : target_(target), sites_(geom.half_volume()) {
  for (auto& fam : links_) fam.resize(static_cast<std::size_t>(sites_ * kNdim));
  for (std::int64_t s = 0; s < sites_; ++s) {
    const std::int64_t f = geom.full_index_of(target, s);
    const Coords c = geom.coords(f);
    for (int k = 0; k < kNdim; ++k) {
      const std::int64_t back1 = geom.full_index(geom.displace(c, k, -1));
      const std::int64_t back3 = geom.full_index(geom.displace(c, k, -3));
      const std::size_t at = static_cast<std::size_t>(s * kNdim + k);
      links_[0][at] = cfg.fat(f, k);
      links_[1][at] = cfg.lng(f, k);
      links_[2][at] = adjoint(cfg.fat(back1, k));
      links_[3][at] = adjoint(cfg.lng(back3, k));
    }
  }
}

}  // namespace milc
