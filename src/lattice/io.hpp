// io.hpp — binary checkpointing of lattice fields.
//
// Production lattice codes spend weeks generating gauge configurations
// (paper §I: su3_rhmd_hisq "has been used in production for many years"),
// so durable, validated field I/O is part of the substrate.  Format: a
// fixed header (magic, payload kind, lattice extents, parity), the raw
// little-endian doubles, and an FNV-1a checksum over the payload.  Loads
// verify magic, kind, geometry and checksum and throw std::runtime_error on
// any mismatch.
#pragma once

#include <cstdint>
#include <string>

#include "lattice/fields.hpp"

namespace milc::io {

/// Payload kinds stored in the header.
enum class FieldKind : std::uint32_t {
  GaugeConfiguration = 1,
  ColorField = 2,
};

/// FNV-1a over a byte range (the checksum used by the format).
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t bytes);

void save_gauge(const std::string& path, const LatticeGeom& geom,
                const GaugeConfiguration& cfg);
/// Loads into a configuration for `geom`; throws on any validation failure.
[[nodiscard]] GaugeConfiguration load_gauge(const std::string& path, const LatticeGeom& geom);

void save_color_field(const std::string& path, const LatticeGeom& geom, const ColorField& f);
[[nodiscard]] ColorField load_color_field(const std::string& path, const LatticeGeom& geom);

}  // namespace milc::io
