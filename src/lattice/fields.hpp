// fields.hpp — lattice quark (colour-vector) and gluon (gauge-link) fields.
//
// Storage follows the MILC-Dslash benchmark:
//  * quark fields live on one parity: |s*| = L^4/2 colour vectors;
//  * the gauge field is presented to the kernel as |l| = 4 gathered arrays
//    (fat, long, fat-back-adjoint, long-back-adjoint), each of size
//    (L^4/2) x |k| matrices, indexed [site*4 + k] — "we store fat-links and
//    long-links along with their respective adjoints, which leads us to have
//    |l| = 4 instead of |l| = 2" (paper §II).  Each stored matrix is read
//    exactly once per Dslash application.
#pragma once

#include <cstdint>
#include <vector>

#include "lattice/geometry.hpp"
#include "su3/random_su3.hpp"
#include "su3/su3_matrix.hpp"
#include "su3/su3_vector.hpp"

namespace milc {

/// A colour-vector field resident on the sites of one parity.
class ColorField {
 public:
  ColorField() = default;
  ColorField(const LatticeGeom& geom, Parity p)
      : parity_(p), data_(static_cast<std::size_t>(geom.half_volume())) {}

  [[nodiscard]] Parity parity() const { return parity_; }
  [[nodiscard]] std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }

  [[nodiscard]] SU3Vector<dcomplex>& operator[](std::int64_t s) {
    return data_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const SU3Vector<dcomplex>& operator[](std::int64_t s) const {
    return data_[static_cast<std::size_t>(s)];
  }

  [[nodiscard]] SU3Vector<dcomplex>* data() { return data_.data(); }
  [[nodiscard]] const SU3Vector<dcomplex>* data() const { return data_.data(); }
  [[nodiscard]] std::size_t bytes() const { return data_.size() * sizeof(SU3Vector<dcomplex>); }

  void zero();
  void fill_random(std::uint64_t seed);

 private:
  Parity parity_ = Parity::Even;
  std::vector<SU3Vector<dcomplex>> data_;
};

// -- BLAS-like vector operations (used by tests and the CG example) ----------

/// ||v||^2 summed over sites.
[[nodiscard]] double norm2(const ColorField& v);
/// <a, b> = sum_s <a_s, b_s> (Hermitian).
[[nodiscard]] dcomplex dot(const ColorField& a, const ColorField& b);
/// y += alpha * x
void axpy(double alpha, const ColorField& x, ColorField& y);
/// y = x + alpha * y
void xpay(const ColorField& x, double alpha, ColorField& y);
/// y = alpha * y
void scale(double alpha, ColorField& y);
/// Largest per-component absolute difference between two fields.
[[nodiscard]] double max_abs_diff(const ColorField& a, const ColorField& b);

/// The fundamental gauge configuration: fat and long links on every site of
/// the full lattice, one per dimension, indexed [full_site*4 + k].
class GaugeConfiguration {
 public:
  GaugeConfiguration() = default;
  explicit GaugeConfiguration(const LatticeGeom& geom);

  /// Fill both families with independent random SU(3) matrices.
  void fill_random(std::uint64_t seed);

  [[nodiscard]] const SU3Matrix<dcomplex>& fat(std::int64_t full_site, int k) const {
    return fat_[static_cast<std::size_t>(full_site * kNdim + k)];
  }
  [[nodiscard]] const SU3Matrix<dcomplex>& lng(std::int64_t full_site, int k) const {
    return lng_[static_cast<std::size_t>(full_site * kNdim + k)];
  }
  [[nodiscard]] SU3Matrix<dcomplex>& fat(std::int64_t full_site, int k) {
    return fat_[static_cast<std::size_t>(full_site * kNdim + k)];
  }
  [[nodiscard]] SU3Matrix<dcomplex>& lng(std::int64_t full_site, int k) {
    return lng_[static_cast<std::size_t>(full_site * kNdim + k)];
  }

 private:
  std::vector<SU3Matrix<dcomplex>> fat_;
  std::vector<SU3Matrix<dcomplex>> lng_;
};

/// The kernel-facing gathered view for one target parity: the four link
/// arrays of the paper's l-loop, each [target_site*4 + k].
///   l = 0: fat(s, k)                     (forward +1, sign +)
///   l = 1: long(s, k)                    (forward +3, sign +)
///   l = 2: fat(s - k_hat, k)^dagger      (backward -1, sign -)
///   l = 3: long(s - 3 k_hat, k)^dagger   (backward -3, sign -)
class GaugeView {
 public:
  GaugeView() = default;
  GaugeView(const LatticeGeom& geom, const GaugeConfiguration& cfg, Parity target);

  [[nodiscard]] Parity target_parity() const { return target_; }
  [[nodiscard]] std::int64_t sites() const { return sites_; }

  /// Matrix for link family l at (target site, dim k).
  [[nodiscard]] const SU3Matrix<dcomplex>& link(int l, std::int64_t s, int k) const {
    return links_[static_cast<std::size_t>(l)][static_cast<std::size_t>(s * kNdim + k)];
  }

  /// Raw base pointer of link family l (for kernels).
  [[nodiscard]] const SU3Matrix<dcomplex>* family(int l) const {
    return links_[static_cast<std::size_t>(l)].data();
  }
  [[nodiscard]] std::size_t family_bytes() const {
    return links_[0].size() * sizeof(SU3Matrix<dcomplex>);
  }

 private:
  Parity target_ = Parity::Even;
  std::int64_t sites_ = 0;
  std::array<std::vector<SU3Matrix<dcomplex>>, kNlinks> links_{};
};

/// The device-resident gauge layout the SYCL kernels read: per link family a
/// flat complex array in [site][k][col j][row i] order — matrices stored
/// column-major, so work-items with consecutive row index i access adjacent
/// complex elements (the coalescing-friendly layout of paper §IV-D7).
class DeviceGaugeLayout {
 public:
  DeviceGaugeLayout() = default;
  explicit DeviceGaugeLayout(const GaugeView& view);

  [[nodiscard]] const dcomplex* family(int l) const {
    return data_[static_cast<std::size_t>(l)].data();
  }
  [[nodiscard]] std::int64_t sites() const { return sites_; }
  [[nodiscard]] std::size_t family_bytes() const { return data_[0].size() * sizeof(dcomplex); }

  /// Element (i, j) of the family-l matrix at (site, k) — for tests.
  [[nodiscard]] const dcomplex& at(int l, std::int64_t s, int k, int i, int j) const {
    return data_[static_cast<std::size_t>(l)]
                [static_cast<std::size_t>(((s * kNdim + k) * kColors + j) * kColors + i)];
  }

 private:
  std::int64_t sites_ = 0;
  std::array<std::vector<dcomplex>, kNlinks> data_{};
};

}  // namespace milc
