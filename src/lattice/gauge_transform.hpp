// gauge_transform.hpp — local SU(3) gauge transformations.
//
// A gauge transformation Omega(x) acts as
//
//     U_mu(x)      -> Omega(x) U_mu(x) Omega(x+mu)^dagger       (1-link)
//     U_mu^(3)(x)  -> Omega(x) U_mu^(3)(x) Omega(x+3mu)^dagger  (3-link/Naik)
//     psi(x)       -> Omega(x) psi(x)
//
// Physics is gauge invariant, which gives the test suite its sharpest
// integration checks: the plaquette is invariant, HISQ smearing commutes
// with the transformation, and Dslash is covariant
// (D[U^Omega](Omega b) = Omega (D[U] b)).
#pragma once

#include <cstdint>
#include <vector>

#include "lattice/fields.hpp"

namespace milc {

class GaugeTransform {
 public:
  explicit GaugeTransform(const LatticeGeom& geom);

  /// Independent Haar-random Omega(x) on every site.
  void fill_random(std::uint64_t seed);

  [[nodiscard]] const SU3Matrix<dcomplex>& at(std::int64_t full_site) const {
    return omega_[static_cast<std::size_t>(full_site)];
  }

  /// Transform a configuration: the `fat` family as 1-link connectors, the
  /// `lng` family as 3-link connectors.
  [[nodiscard]] GaugeConfiguration apply(const LatticeGeom& geom,
                                         const GaugeConfiguration& cfg) const;

  /// Transform a parity-resident colour field: b(x) -> Omega(x) b(x).
  [[nodiscard]] ColorField apply(const LatticeGeom& geom, const ColorField& f) const;

 private:
  std::vector<SU3Matrix<dcomplex>> omega_;
};

}  // namespace milc
