// soa.hpp — structure-of-arrays field layouts (QUDA-style).
//
// QUDA's performance on site-per-thread kernels comes from storing fields
// component-major as double2 (complex) planes: for each (link family,
// dimension, complex-pair) there is one contiguous array over sites, so 32
// consecutive threads reading the same component touch 32 consecutive
// 16-byte elements — fully-utilised cache lines and long DRAM bursts.  This
// module provides SoA gauge storage (optionally compressed with
// recon-18/12/9; odd real counts are padded to a whole pair, as QUDA pads
// its recon-9/13 fields) and SoA colour-vector storage, used by the
// `qudaref` baseline and the layout ablation (experiment A1).
#pragma once

#include <cstdint>
#include <vector>

#include "lattice/fields.hpp"
#include "su3/reconstruct.hpp"

namespace milc {

/// Gauge links packed component-major with a reconstruction scheme, as
/// complex-pair (double2) planes: plane index p holds reals (2p, 2p+1).
class SoAGauge {
 public:
  SoAGauge() = default;

  /// Pack a gathered gauge view with the given compression scheme.
  SoAGauge(const GaugeView& view, Reconstruct scheme);

  [[nodiscard]] Reconstruct scheme() const { return scheme_; }
  [[nodiscard]] int reals() const { return reals_; }
  /// double2 planes per link = ceil(reals / 2).
  [[nodiscard]] int pairs() const { return pairs_; }
  [[nodiscard]] std::int64_t sites() const { return sites_; }

  /// Base of the double2 plane p of link (l, k).
  [[nodiscard]] const dcomplex* pair_plane(int l, int k, int p) const {
    return data_.data() +
           (static_cast<std::size_t>((l * kNdim + k) * pairs_ + p)) *
               static_cast<std::size_t>(sites_);
  }

  /// Scalar accessor (tests): real component r of link (l, k) at site s.
  [[nodiscard]] double at(int l, int k, int r, std::int64_t s) const {
    const dcomplex& pr = pair_plane(l, k, r / 2)[s];
    return (r % 2 == 0) ? pr.re : pr.im;
  }

  /// Reconstruct the full matrix for (l, s, k) — the host-side reference for
  /// what the kernel recomputes per thread.
  [[nodiscard]] SU3Matrix<dcomplex> unpack(int l, std::int64_t s, int k) const;

  [[nodiscard]] const dcomplex* data() const { return data_.data(); }
  [[nodiscard]] std::size_t bytes() const { return data_.size() * sizeof(dcomplex); }

 private:
  Reconstruct scheme_ = Reconstruct::k18;
  int reals_ = 18;
  int pairs_ = 9;
  std::int64_t sites_ = 0;
  std::vector<dcomplex> data_;
};

/// Colour vectors packed component-major: three complex planes over sites.
class SoAColor {
 public:
  SoAColor() = default;
  SoAColor(const LatticeGeom& geom, Parity p);
  /// Pack an AoS field.
  explicit SoAColor(const ColorField& f);

  [[nodiscard]] std::int64_t sites() const { return sites_; }

  [[nodiscard]] const dcomplex* plane(int c) const {
    return data_.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(sites_);
  }
  [[nodiscard]] dcomplex* plane(int c) {
    return data_.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(sites_);
  }

  [[nodiscard]] SU3Vector<dcomplex> get(std::int64_t s) const;
  void set(std::int64_t s, const SU3Vector<dcomplex>& v);

  /// Unpack back to AoS.
  [[nodiscard]] ColorField to_aos(const LatticeGeom& geom, Parity p) const;

  [[nodiscard]] const dcomplex* data() const { return data_.data(); }
  [[nodiscard]] dcomplex* data() { return data_.data(); }
  [[nodiscard]] std::size_t bytes() const { return data_.size() * sizeof(dcomplex); }

 private:
  std::int64_t sites_ = 0;
  std::vector<dcomplex> data_;
};

}  // namespace milc
