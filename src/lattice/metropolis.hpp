// metropolis.hpp — quenched SU(3) gauge-field generation.
//
// The paper's context is MILC's su3_rhmd_hisq, "one of the main applications
// used to generate gauge configurations" (§I).  This module provides the
// simplest member of that family: a Metropolis sweep for the Wilson
// plaquette action
//
//     S[U] = -(beta/3) sum_p Re tr U_p ,
//
// updating each link with small random SU(3) rotations.  It turns the
// benchmark's random links into *physical* configurations whose average
// plaquette interpolates between the disordered (~0) and ordered (1) limits
// as beta grows — and gives the examples and tests gauge fields with
// realistic correlations rather than white noise.
#pragma once

#include <cstdint>

#include "lattice/fields.hpp"

namespace milc {

struct MetropolisOptions {
  double beta = 6.0;       ///< gauge coupling
  double step = 0.2;       ///< size of the random rotation
  int hits_per_link = 5;   ///< Metropolis hits before moving on
  std::uint64_t seed = 1;
};

struct SweepStats {
  double acceptance = 0.0;     ///< accepted / proposed
  double avg_plaquette = 0.0;  ///< after the sweep
};

/// Average plaquette (1/3) Re tr U_p over all sites and planes of the
/// `fat` link family.
[[nodiscard]] double average_plaquette(const LatticeGeom& geom, const GaugeConfiguration& cfg);

/// One full Metropolis sweep over every link of the `fat` family (the
/// benchmark's gauge field).  Returns acceptance and the new plaquette.
SweepStats metropolis_sweep(const LatticeGeom& geom, GaugeConfiguration& cfg,
                            const MetropolisOptions& opts, std::uint64_t sweep_index);

/// Run `n_sweeps` sweeps (thermalisation); returns the final sweep's stats.
SweepStats thermalize(const LatticeGeom& geom, GaugeConfiguration& cfg,
                      const MetropolisOptions& opts, int n_sweeps);

}  // namespace milc
