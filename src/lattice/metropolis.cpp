#include "lattice/metropolis.hpp"

#include <cmath>

#include "su3/random_su3.hpp"

namespace milc {

namespace {

/// Sum of the six staples around link U_mu(x): the environment the link's
/// action depends on.  dS = -(beta/3) Re tr[(U' - U) StapleSum].
SU3Matrix<dcomplex> staple_sum(const LatticeGeom& geom, const GaugeConfiguration& cfg,
                               std::int64_t x, int mu) {
  SU3Matrix<dcomplex> sum{};
  const Coords cx = geom.coords(x);
  const std::int64_t x_mu = geom.full_index(geom.displace(cx, mu, +1));
  for (int nu = 0; nu < kNdim; ++nu) {
    if (nu == mu) continue;
    // Forward staple: U_nu(x+mu) U_mu(x+nu)^+ U_nu(x)^+
    const std::int64_t x_nu = geom.full_index(geom.displace(cx, nu, +1));
    SU3Matrix<dcomplex> fwd = matmul(cfg.fat(x_mu, nu), adjoint(cfg.fat(x_nu, mu)));
    fwd = matmul(fwd, adjoint(cfg.fat(x, nu)));
    // Backward staple: U_nu(x+mu-nu)^+ U_mu(x-nu)^+ U_nu(x-nu)
    const Coords c_dn = geom.displace(cx, nu, -1);
    const std::int64_t x_dn = geom.full_index(c_dn);
    const std::int64_t x_mu_dn = geom.full_index(geom.displace(c_dn, mu, +1));
    SU3Matrix<dcomplex> bwd = matmul(adjoint(cfg.fat(x_mu_dn, nu)), adjoint(cfg.fat(x_dn, mu)));
    bwd = matmul(bwd, cfg.fat(x_dn, nu));
    for (int i = 0; i < kColors; ++i) {
      for (int j = 0; j < kColors; ++j) {
        sum.e[i][j] += fwd.e[i][j];
        sum.e[i][j] += bwd.e[i][j];
      }
    }
  }
  return sum;
}

/// Random SU(3) rotation near the identity: reunitarise(I + step * A) with A
/// a random anti-Hermitian traceless matrix.
SU3Matrix<dcomplex> small_rotation(Rng& rng, double step) {
  SU3Matrix<dcomplex> a{};
  for (int i = 0; i < kColors; ++i) {
    for (int j = i + 1; j < kColors; ++j) {
      const dcomplex z{step * rng.next_signed(), step * rng.next_signed()};
      a.e[i][j] = z;
      a.e[j][i] = {-z.re, z.im};  // -conj(z): anti-Hermitian
    }
  }
  // Traceless imaginary diagonal.
  double d0 = step * rng.next_signed(), d1 = step * rng.next_signed();
  a.e[0][0] = {0.0, d0};
  a.e[1][1] = {0.0, d1};
  a.e[2][2] = {0.0, -(d0 + d1)};
  SU3Matrix<dcomplex> r = SU3Matrix<dcomplex>::identity();
  for (int i = 0; i < kColors; ++i) {
    for (int j = 0; j < kColors; ++j) r.e[i][j] += a.e[i][j];
  }
  return reunitarize(r);
}

/// Re tr(A B) — the plaquette containing link U is tr(U * staple), so the
/// link's local action is -(beta/3) Re tr(U * StapleSum).
double re_tr_mul(const SU3Matrix<dcomplex>& a, const SU3Matrix<dcomplex>& b) {
  double acc = 0.0;
  for (int i = 0; i < kColors; ++i) {
    for (int j = 0; j < kColors; ++j) {
      acc += a.e[i][j].re * b.e[j][i].re - a.e[i][j].im * b.e[j][i].im;
    }
  }
  return acc;
}

}  // namespace

double average_plaquette(const LatticeGeom& geom, const GaugeConfiguration& cfg) {
  double sum = 0.0;
  std::int64_t count = 0;
  for (std::int64_t f = 0; f < geom.volume(); ++f) {
    const Coords x = geom.coords(f);
    for (int mu = 0; mu < kNdim; ++mu) {
      for (int nu = mu + 1; nu < kNdim; ++nu) {
        const std::int64_t x_mu = geom.full_index(geom.displace(x, mu, +1));
        const std::int64_t x_nu = geom.full_index(geom.displace(x, nu, +1));
        SU3Matrix<dcomplex> p = matmul(cfg.fat(f, mu), cfg.fat(x_mu, nu));
        p = matmul(p, adjoint(cfg.fat(x_nu, mu)));
        p = matmul(p, adjoint(cfg.fat(f, nu)));
        sum += trace(p).re / kColors;
        ++count;
      }
    }
  }
  return sum / static_cast<double>(count);
}

SweepStats metropolisSweepImpl(const LatticeGeom& geom, GaugeConfiguration& cfg,
                               const MetropolisOptions& opts, Rng& rng) {
  std::int64_t proposed = 0, accepted = 0;
  for (std::int64_t x = 0; x < geom.volume(); ++x) {
    for (int mu = 0; mu < kNdim; ++mu) {
      const SU3Matrix<dcomplex> staples = staple_sum(geom, cfg, x, mu);
      for (int hit = 0; hit < opts.hits_per_link; ++hit) {
        const SU3Matrix<dcomplex> r = small_rotation(rng, opts.step);
        const SU3Matrix<dcomplex> u_new = matmul(r, cfg.fat(x, mu));
        const double dS = -(opts.beta / kColors) *
                          (re_tr_mul(u_new, staples) -
                           re_tr_mul(cfg.fat(x, mu), staples));
        ++proposed;
        if (dS <= 0.0 || rng.next_double() < std::exp(-dS)) {
          cfg.fat(x, mu) = u_new;
          ++accepted;
        }
      }
    }
  }
  SweepStats st;
  st.acceptance = static_cast<double>(accepted) / static_cast<double>(proposed);
  st.avg_plaquette = average_plaquette(geom, cfg);
  return st;
}

SweepStats metropolis_sweep(const LatticeGeom& geom, GaugeConfiguration& cfg,
                            const MetropolisOptions& opts, std::uint64_t sweep_index) {
  Rng rng(opts.seed * 0x9e3779b97f4a7c15ull + sweep_index);
  return metropolisSweepImpl(geom, cfg, opts, rng);
}

SweepStats thermalize(const LatticeGeom& geom, GaugeConfiguration& cfg,
                      const MetropolisOptions& opts, int n_sweeps) {
  SweepStats last;
  for (int s = 0; s < n_sweeps; ++s) {
    last = metropolis_sweep(geom, cfg, opts, static_cast<std::uint64_t>(s));
  }
  return last;
}

}  // namespace milc
