// explorer.hpp — the on-line sweep driver.
//
// `explore` prices every candidate configuration through a caller-supplied
// pricing function (the existing gpusim profiler underneath, so "time" is
// simulated time) and returns the winner.  Determinism contract: strict
// less-than with first-enumerated-wins ties, and candidates are priced in
// the order given — for a fixed seed and candidate list the winner is a
// pure function of the inputs.  A candidate whose pricing throws
// std::invalid_argument is skipped (the QUDA-tuner convention for
// configurations that do not fit the device).
//
// `tune_or_replay` wraps the full cache protocol around it:
//
//   session installed, key hit   -> re-price the cached configuration once
//                                   and verify bit-for-bit (honesty rule);
//   session installed, key miss  -> explore, record the winner;
//   no session                   -> explore (today's behaviour, untouched).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tune/session.hpp"

namespace milc::tune {

/// One candidate configuration.  Unused axes keep their "-"/0 defaults so a
/// candidate maps 1:1 onto the decision fields of a TuneEntry.
struct Candidate {
  int local_size = 0;
  std::string order = "-";
  std::string grid = "-";
  int applies_per_checkpoint = 0;
};

/// Simulated cost of one candidate, in microseconds.  Throw
/// std::invalid_argument to declare the candidate infeasible.
using PriceFn = std::function<double(const Candidate&)>;

struct ExploreResult {
  Candidate winner{};
  double per_iter_us = 0.0;
  int candidates_tried = 0;  ///< priced (not skipped) candidates
};

/// Price every candidate, return the argmin.  Throws std::invalid_argument
/// when the list is empty or every candidate was infeasible.
[[nodiscard]] ExploreResult explore(const std::vector<Candidate>& candidates,
                                    const PriceFn& price);

struct TuneOutcome {
  TuneEntry entry{};
  bool from_cache = false;
  int candidates_tried = 0;  ///< 1 on a warm hit (the replay re-pricing)
};

/// The full consult-first protocol described above.  `price` is called once
/// per explored candidate on a miss, and exactly once (on the cached
/// configuration) on a hit.  Throws ReplayMismatch when a hit fails the
/// bit-for-bit re-pricing check, std::invalid_argument when exploration
/// finds no feasible candidate.
[[nodiscard]] TuneOutcome tune_or_replay(const TuneKey& key,
                                         const std::vector<Candidate>& candidates,
                                         const PriceFn& price);

}  // namespace milc::tune
