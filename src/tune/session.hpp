// session.hpp — the process-wide tuning session the rest of the stack
// consults.
//
// Mirrors the install-to-enable pattern of faultsim::Injector and
// dsan::Recorder: `TuneSession::current()` is nullptr unless a session is
// installed, and every consult site starts with that null check — with no
// session the pre-existing code paths run untouched, bit for bit.
//
// A session owns one TuneCache plus counters.  Consumers use three verbs:
//
//   lookup(key)          -> cached entry or nullptr (counts hits/misses);
//   record(key, entry)   -> store a freshly explored winner (stamps the
//                           session's provenance);
//   verify(key, e, t_us) -> the honesty rule: a warm-started run re-priced
//                           its cached configuration and measured `t_us`;
//                           anything but bit-for-bit equality with the
//                           stored time throws ReplayMismatch.
//
// tune_or_replay() in explorer.hpp packages the full miss-explore-record /
// hit-replay-verify protocol on top of these.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "tune/tune_cache.hpp"

namespace milc::tune {

/// Who produced an entry: folded into every record()ed TuneEntry.  `stamp`
/// is a caller-supplied simulated timestamp — never the wall clock — and is
/// what the deterministic last-writer-wins merge orders by.
struct Provenance {
  std::string bench = "-";
  std::uint64_t seed = 0;
  std::uint64_t stamp = 0;
};

/// A cache hit failed to reproduce its stored simulated time bit-for-bit.
/// The simulator is deterministic, so this is always a stale or forged
/// cache (or a key grammar that under-describes the configuration) — a bug,
/// not noise.
class ReplayMismatch : public std::runtime_error {
 public:
  ReplayMismatch(const std::string& key, double expected_us, double measured_us);
  double expected_us;
  double measured_us;
};

struct TuneStats {
  std::uint64_t hits = 0;              ///< lookup() found an entry
  std::uint64_t misses = 0;            ///< lookup() found nothing
  std::uint64_t stores = 0;            ///< record() calls
  std::uint64_t replays_verified = 0;  ///< verify() calls that passed
  std::uint64_t candidates_explored = 0;  ///< configurations priced on misses
};

class TuneSession {
 public:
  /// The installed session, or nullptr when tuning is off.  The only call
  /// on the session-free fast path.
  [[nodiscard]] static TuneSession* current();
  static void install(TuneCache cache, Provenance prov = {});
  static void uninstall();

  [[nodiscard]] TuneCache& cache() { return cache_; }
  [[nodiscard]] const TuneCache& cache() const { return cache_; }
  [[nodiscard]] const Provenance& provenance() const { return prov_; }
  [[nodiscard]] const TuneStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Cached entry or nullptr; counts a hit or a miss.
  [[nodiscard]] const TuneEntry* lookup(const TuneKey& key);

  /// Store an explored winner; the session's provenance overwrites the
  /// entry's bench/seed/stamp fields.
  void record(const TuneKey& key, TuneEntry entry);

  /// The honesty rule: assert the re-priced time of a cache hit equals the
  /// stored time bit-for-bit.  Throws ReplayMismatch otherwise.
  void verify(const TuneKey& key, const TuneEntry& entry, double measured_us);

  /// Count configurations priced during a miss exploration.
  void note_explored(std::uint64_t n) { stats_.candidates_explored += n; }

 private:
  explicit TuneSession(TuneCache cache, Provenance prov)
      : cache_(std::move(cache)), prov_(std::move(prov)) {}

  TuneCache cache_;
  Provenance prov_;
  TuneStats stats_;
};

/// RAII install/uninstall for benches and tests.
class ScopedTuneSession {
 public:
  explicit ScopedTuneSession(TuneCache cache = {}, Provenance prov = {}) {
    TuneSession::install(std::move(cache), std::move(prov));
  }
  ~ScopedTuneSession() { TuneSession::uninstall(); }
  ScopedTuneSession(const ScopedTuneSession&) = delete;
  ScopedTuneSession& operator=(const ScopedTuneSession&) = delete;

  [[nodiscard]] TuneSession& session() const { return *TuneSession::current(); }
};

}  // namespace milc::tune
