#include "tune/session.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

namespace milc::tune {

namespace {

std::unique_ptr<TuneSession>& slot() {
  static std::unique_ptr<TuneSession> s;
  return s;
}

std::string format_us(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g us (bits %016llx)", v,
                static_cast<unsigned long long>(bits));
  return buf;
}

}  // namespace

ReplayMismatch::ReplayMismatch(const std::string& key, double expected, double measured)
    : std::runtime_error("tune: replay mismatch for " + key + ": cached " +
                         format_us(expected) + " != re-priced " + format_us(measured)),
      expected_us(expected),
      measured_us(measured) {}

TuneSession* TuneSession::current() { return slot().get(); }

void TuneSession::install(TuneCache cache, Provenance prov) {
  slot().reset(new TuneSession(std::move(cache), std::move(prov)));
}

void TuneSession::uninstall() { slot().reset(); }

const TuneEntry* TuneSession::lookup(const TuneKey& key) {
  const TuneEntry* e = cache_.find(key);
  if (e != nullptr) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return e;
}

void TuneSession::record(const TuneKey& key, TuneEntry entry) {
  entry.bench = prov_.bench;
  entry.seed = prov_.seed;
  entry.stamp = prov_.stamp;
  cache_.put(key, std::move(entry));
  ++stats_.stores;
}

void TuneSession::verify(const TuneKey& key, const TuneEntry& entry, double measured_us) {
  std::uint64_t a = 0, b = 0;
  std::memcpy(&a, &entry.per_iter_us, sizeof a);
  std::memcpy(&b, &measured_us, sizeof b);
  if (a != b) throw ReplayMismatch(key.canonical(), entry.per_iter_us, measured_us);
  ++stats_.replays_verified;
}

}  // namespace milc::tune
