#include "tune/tune_key.hpp"

#include <cstdio>
#include <stdexcept>
#include <vector>

namespace milc::tune {

namespace {

void check_field(const std::string& f, const char* name) {
  if (f.find('|') != std::string::npos) {
    throw std::invalid_argument(std::string("TuneKey: field '") + name +
                                "' contains the '|' separator: " + f);
  }
}

}  // namespace

std::string TuneKey::canonical() const {
  check_field(arch, "arch");
  check_field(geom, "geom");
  check_field(kernel, "kernel");
  check_field(config, "config");
  check_field(prec, "prec");
  check_field(recon, "recon");
  check_field(topo, "topo");
  return arch + "|" + geom + "|" + kernel + "|" + config + "|" + prec + "|" + recon +
         "|dev" + std::to_string(devices) + "|" + topo;
}

bool TuneKey::parse(const std::string& canonical, TuneKey& out) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t bar = canonical.find('|', start);
    if (bar == std::string::npos) {
      parts.push_back(canonical.substr(start));
      break;
    }
    parts.push_back(canonical.substr(start, bar - start));
    start = bar + 1;
  }
  if (parts.size() != 8) return false;
  const std::string& dev = parts[6];
  if (dev.size() < 4 || dev.compare(0, 3, "dev") != 0) return false;
  int devices = 0;
  for (std::size_t i = 3; i < dev.size(); ++i) {
    if (dev[i] < '0' || dev[i] > '9') return false;
    devices = devices * 10 + (dev[i] - '0');
  }
  if (devices <= 0) return false;
  out.arch = parts[0];
  out.geom = parts[1];
  out.kernel = parts[2];
  out.config = parts[3];
  out.prec = parts[4];
  out.recon = parts[5];
  out.devices = devices;
  out.topo = parts[7];
  return true;
}

std::string arch_fingerprint(const gpusim::MachineModel& m) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "sm%d-w%d-t%d-g%d-rf%d-smem%d-l1:%d-l2:%d-ln%d-clk%.4g-hbm%.6g-ch%d",
                m.num_sms, m.warp_size, m.max_threads_per_sm, m.max_groups_per_sm,
                m.registers_per_sm, m.shared_bytes_per_sm, m.l1_bytes, m.l2_bytes,
                m.line_bytes, m.clock_ghz, m.dram_peak_gbs, m.dram_channels);
  return buf;
}

std::string wire_fingerprint(const gpusim::NodeTopology& topo) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "wire-nv%d:%.4g@%.4g-pcie%.4g@%.4g-nic%.4g@%.4g-inj%.4g-sw%.4g@%.4g-hdr%lld",
                topo.intra.nvlink_devices, topo.intra.nvlink_bw_gbs,
                topo.intra.nvlink_latency_us, topo.intra.pcie_bw_gbs,
                topo.intra.pcie_latency_us, topo.fabric.nic_bw_gbs,
                topo.fabric.nic_latency_us, topo.fabric.injection_rate_gbs,
                topo.fabric.switch_bw_gbs, topo.fabric.switch_latency_us,
                static_cast<long long>(topo.fabric.frame_header_bytes));
  return buf;
}

std::string geom_signature(int x, int y, int z, int t, bool even_target) {
  return std::to_string(x) + "x" + std::to_string(y) + "x" + std::to_string(z) + "x" +
         std::to_string(t) + (even_target ? "/even" : "/odd");
}

std::string topo_signature(int nodes, int devices_per_node) {
  return std::to_string(nodes) + "x" + std::to_string(devices_per_node);
}

}  // namespace milc::tune
