#include "tune/tune_cache.hpp"

#include <cstdio>
#include <cstring>

#include "faultsim/faultsim.hpp"

namespace milc::tune {

namespace {

std::uint64_t double_bits(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

double bits_double(std::uint64_t b) {
  double v = 0.0;
  std::memcpy(&v, &b, sizeof v);
  return v;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto u = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

// --- a minimal JSON reader ---------------------------------------------------
//
// Only what the cache schema needs: objects, arrays, strings, numbers,
// true/false/null.  Numbers keep their raw token so 64-bit integers (seeds,
// stamps) survive without a round trip through double.

struct JsonValue {
  enum class Type { null, boolean, number, string, array, object };
  Type type = Type::null;
  bool b = false;
  std::string raw;  ///< number token, verbatim
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  [[nodiscard]] const JsonValue* member(const char* name) const {
    for (const auto& [k, v] : obj) {
      if (k == name) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses one document; false (with error()/offset() set) on failure,
  /// including trailing garbage after the root value.
  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t offset() const { return pos_; }

 private:
  static constexpr int kMaxDepth = 32;

  bool fail(const std::string& why) {
    if (error_.empty()) error_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      out.type = JsonValue::Type::string;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') return parse_keyword(out, c == 't' ? "true" : "false");
    if (c == 'n') return parse_keyword(out, "null");
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    return fail(std::string("unexpected character '") + c + "'");
  }

  bool parse_keyword(JsonValue& out, const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return fail("malformed keyword");
    pos_ += n;
    if (word[0] == 'n') {
      out.type = JsonValue::Type::null;
    } else {
      out.type = JsonValue::Type::boolean;
      out.b = word[0] == 't';
    }
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("malformed number");
    out.type = JsonValue::Type::number;
    out.raw = text_.substr(start, pos_ - start);
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("malformed \\u escape");
            }
          }
          // The schema only emits \u00xx control codes; anything wider is
          // preserved lossily as '?' rather than rejected.
          out += cp < 0x80 ? static_cast<char>(cp) : '?';
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool number_u64(const JsonValue& v, std::uint64_t& out) {
  if (v.type != JsonValue::Type::number || v.raw.empty()) return false;
  std::uint64_t acc = 0;
  for (const char c : v.raw) {
    if (c < '0' || c > '9') return false;  // negatives/floats are not u64
    acc = acc * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = acc;
  return true;
}

bool number_int(const JsonValue& v, int& out) {
  std::uint64_t u = 0;
  if (!number_u64(v, u) || u > 0x7fffffffull) return false;
  out = static_cast<int>(u);
  return true;
}

bool hex_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t acc = 0;
  for (const char c : s) {
    acc <<= 4;
    if (c >= '0' && c <= '9') {
      acc |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      acc |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = acc;
  return true;
}

}  // namespace

bool operator==(const TuneEntry& a, const TuneEntry& b) {
  return a.local_size == b.local_size && a.order == b.order && a.grid == b.grid &&
         a.applies_per_checkpoint == b.applies_per_checkpoint &&
         double_bits(a.per_iter_us) == double_bits(b.per_iter_us) && a.bench == b.bench &&
         a.seed == b.seed && a.stamp == b.stamp;
}

void TuneCache::put(const TuneKey& key, TuneEntry entry) {
  entries_[key.canonical()] = std::move(entry);
}

const TuneEntry* TuneCache::find(const TuneKey& key) const {
  const auto it = entries_.find(key.canonical());
  return it == entries_.end() ? nullptr : &it->second;
}

namespace {

/// The entry's fields as a JSON fragment (no braces, no key).
std::string serialize_entry(const TuneEntry& e) {
  char num[64];
  std::string out = "\"local_size\": " + std::to_string(e.local_size);
  out += ", \"order\": \"" + escape(e.order) + "\"";
  out += ", \"grid\": \"" + escape(e.grid) + "\"";
  out += ", \"applies_per_checkpoint\": " + std::to_string(e.applies_per_checkpoint);
  std::snprintf(num, sizeof num, "%.17g", e.per_iter_us);
  out += ", \"per_iter_us\": " + std::string(num);
  std::snprintf(num, sizeof num, "%016llx",
                static_cast<unsigned long long>(double_bits(e.per_iter_us)));
  out += ", \"per_iter_bits\": \"" + std::string(num) + "\"";
  out += ", \"bench\": \"" + escape(e.bench) + "\"";
  out += ", \"seed\": " + std::to_string(e.seed);
  out += ", \"stamp\": " + std::to_string(e.stamp);
  return out;
}

}  // namespace

void TuneCache::merge(const TuneCache& other) {
  for (const auto& [key, theirs] : other.entries_) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      entries_.emplace(key, theirs);
      continue;
    }
    TuneEntry& ours = it->second;
    if (theirs.stamp != ours.stamp) {
      if (theirs.stamp > ours.stamp) ours = theirs;
      continue;
    }
    // Stamp tie: order-independent deterministic winner by provenance, then
    // by the full serialized entry (equal entries are a no-op either way).
    const auto rank = [](const TuneEntry& e) {
      return e.bench + "\x1f" + std::to_string(e.seed) + "\x1f" + serialize_entry(e);
    };
    if (rank(theirs) > rank(ours)) ours = theirs;
  }
}

std::string TuneCache::serialize() const {
  std::string out = "{\"tool\": \"milc-tune-cache\", \"schema_version\": " +
                    std::to_string(kSchemaVersion) + ",\n\"entries\": [";
  bool first = true;
  for (const auto& [key, e] : entries_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += " {\"key\": \"" + escape(key) + "\", " + serialize_entry(e) + "}";
  }
  out += "\n]}\n";
  return out;
}

TuneCache::LoadResult TuneCache::deserialize(const std::string& text) {
  LoadResult res;
  JsonValue root;
  JsonParser parser(text);
  if (!parser.parse(root)) {
    res.status = LoadStatus::parse_error;
    res.diagnostic = "JSON parse error at byte " + std::to_string(parser.offset()) + ": " +
                     parser.error();
    return res;
  }
  if (root.type != JsonValue::Type::object) {
    res.status = LoadStatus::parse_error;
    res.diagnostic = "document root is not an object";
    return res;
  }
  const JsonValue* ver = root.member("schema_version");
  int version = -1;
  if (ver == nullptr || !number_int(*ver, version)) {
    res.status = LoadStatus::schema_mismatch;
    res.diagnostic = "schema_version is absent or not an integer";
    return res;
  }
  if (version != kSchemaVersion) {
    res.status = LoadStatus::schema_mismatch;
    res.diagnostic = "schema_version " + std::to_string(version) + " != supported " +
                     std::to_string(kSchemaVersion);
    return res;
  }
  const JsonValue* entries = root.member("entries");
  if (entries == nullptr || entries->type != JsonValue::Type::array) {
    res.status = LoadStatus::bad_entry;
    res.diagnostic = "\"entries\" is absent or not an array";
    return res;
  }

  std::map<std::string, TuneEntry> loaded;
  for (std::size_t i = 0; i < entries->arr.size(); ++i) {
    const JsonValue& ev = entries->arr[i];
    const std::string at = "entry " + std::to_string(i);
    if (ev.type != JsonValue::Type::object) {
      res.status = LoadStatus::bad_entry;
      res.diagnostic = at + " is not an object";
      return res;
    }
    const JsonValue* key = ev.member("key");
    TuneKey parsed;
    if (key == nullptr || key->type != JsonValue::Type::string ||
        !TuneKey::parse(key->str, parsed)) {
      res.status = LoadStatus::bad_entry;
      res.diagnostic = at + ": \"key\" is absent or not a valid canonical key";
      return res;
    }
    TuneEntry e;
    const JsonValue* ls = ev.member("local_size");
    if (ls == nullptr || !number_int(*ls, e.local_size)) {
      res.status = LoadStatus::bad_entry;
      res.diagnostic = at + " (" + key->str + "): missing or malformed \"local_size\"";
      return res;
    }
    const JsonValue* bits = ev.member("per_iter_bits");
    std::uint64_t b = 0;
    if (bits == nullptr || bits->type != JsonValue::Type::string || !hex_u64(bits->str, b)) {
      res.status = LoadStatus::bad_entry;
      res.diagnostic = at + " (" + key->str + "): missing or malformed \"per_iter_bits\"";
      return res;
    }
    e.per_iter_us = bits_double(b);
    if (const JsonValue* v = ev.member("order"); v != nullptr) e.order = v->str;
    if (const JsonValue* v = ev.member("grid"); v != nullptr) e.grid = v->str;
    if (const JsonValue* v = ev.member("applies_per_checkpoint"); v != nullptr) {
      (void)number_int(*v, e.applies_per_checkpoint);
    }
    if (const JsonValue* v = ev.member("bench"); v != nullptr) e.bench = v->str;
    if (const JsonValue* v = ev.member("seed"); v != nullptr) (void)number_u64(*v, e.seed);
    if (const JsonValue* v = ev.member("stamp"); v != nullptr) (void)number_u64(*v, e.stamp);
    loaded[key->str] = std::move(e);
  }
  entries_ = std::move(loaded);
  res.entries_loaded = entries_.size();
  return res;
}

bool TuneCache::save(const std::string& path, std::string* error) const {
  if (faultsim::Injector* inj = faultsim::Injector::current(); inj != nullptr) {
    if (inj->on_cache_check("tune/save " + path)) {
      if (error != nullptr) *error = "injected cache_fault at tune/save " + path;
      return false;
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::string doc = serialize();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

TuneCache::LoadResult TuneCache::load(const std::string& path) {
  LoadResult res;
  if (faultsim::Injector* inj = faultsim::Injector::current(); inj != nullptr) {
    if (inj->on_cache_check("tune/load " + path)) {
      res.status = LoadStatus::injected_fault;
      res.diagnostic = "injected cache_fault at tune/load " + path;
      return res;
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    res.status = LoadStatus::io_error;
    res.diagnostic = "cannot open " + path;
    return res;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return deserialize(text);
}

const char* to_string(TuneCache::LoadStatus s) {
  switch (s) {
    case TuneCache::LoadStatus::ok: return "ok";
    case TuneCache::LoadStatus::io_error: return "io_error";
    case TuneCache::LoadStatus::parse_error: return "parse_error";
    case TuneCache::LoadStatus::schema_mismatch: return "schema_mismatch";
    case TuneCache::LoadStatus::bad_entry: return "bad_entry";
    case TuneCache::LoadStatus::injected_fault: return "injected_fault";
  }
  return "?";
}

}  // namespace milc::tune
