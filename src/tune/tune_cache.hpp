// tune_cache.hpp — the persisted, replay-verified tuning cache.
//
// Maps TuneKey canonical strings to winning launch configurations.  The
// cache stores *decisions* — local size, index order, partition grid,
// checkpoint cadence — plus the simulated time the decision was priced at.
// That time is not trusted on reuse: a warm-started consumer re-prices the
// cached configuration and asserts bit-for-bit equality (the honesty rule,
// enforced through TuneSession::verify).  The simulator is deterministic,
// so inequality means the cache is stale or forged, never "noise".
//
// Persistence is versioned JSON (docs/TUNING.md has the schema).  The
// tuned time is stored twice: a human-readable decimal and the exact IEEE
// bit pattern (`per_iter_bits`, hex) — the bit pattern is authoritative on
// load, so a save/load round trip is bit-for-bit by construction.
// Corrupt, truncated or version-mismatched files are rejected with a
// structured LoadResult, not an exception; a seeded `cache_fault` from
// faultsim on the load path reports `injected_fault` so callers fall back
// to cold tuning.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tune/tune_key.hpp"

namespace milc::tune {

/// The winning configuration for one key, with provenance.  `stamp` is a
/// simulated timestamp supplied by the producer (never the wall clock) and
/// drives the deterministic last-writer-wins merge.
struct TuneEntry {
  int local_size = 0;
  std::string order = "-";  ///< index order ("k-major"/"i-major"/"l-major" or "-")
  std::string grid = "-";   ///< partition-grid label ("2x1x1x2") or "-"
  int applies_per_checkpoint = 0;  ///< checkpoint cadence decision (0 = n/a)
  double per_iter_us = 0.0;        ///< tuned simulated time (replay target)

  std::string bench = "-";  ///< producer name (bench or subsystem)
  std::uint64_t seed = 0;   ///< producer's RNG seed
  std::uint64_t stamp = 0;  ///< producer-supplied simulated timestamp

  friend bool operator==(const TuneEntry& a, const TuneEntry& b);
};

class TuneCache {
 public:
  static constexpr int kSchemaVersion = 1;

  /// Insert or overwrite.
  void put(const TuneKey& key, TuneEntry entry);
  /// nullptr on miss.  The pointer is invalidated by the next mutation.
  [[nodiscard]] const TuneEntry* find(const TuneKey& key) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  /// Canonical-key order (deterministic iteration and serialization).
  [[nodiscard]] const std::map<std::string, TuneEntry>& entries() const { return entries_; }

  /// Deterministic last-writer-wins merge: for a shared key the entry with
  /// the larger `stamp` survives; stamp ties go to the lexicographically
  /// larger (bench, seed, serialized entry) so the outcome is independent
  /// of merge order.
  void merge(const TuneCache& other);

  friend bool operator==(const TuneCache& a, const TuneCache& b) {
    return a.entries_ == b.entries_;
  }

  // --- persistence ---------------------------------------------------------

  enum class LoadStatus {
    ok,
    io_error,         ///< file missing or unreadable
    parse_error,      ///< not valid JSON (corrupt or truncated)
    schema_mismatch,  ///< schema_version is absent or not kSchemaVersion
    bad_entry,        ///< an entry is missing required fields or malformed
    injected_fault,   ///< faultsim cache_fault fired on the load path
  };

  /// Structured load verdict — a rejected cache is a diagnostic, not a crash.
  struct LoadResult {
    LoadStatus status = LoadStatus::ok;
    std::string diagnostic;     ///< empty when ok
    std::size_t entries_loaded = 0;
    [[nodiscard]] bool ok() const { return status == LoadStatus::ok; }
  };

  /// Serialize to the versioned JSON document.
  [[nodiscard]] std::string serialize() const;
  /// Parse a document produced by serialize().  On any failure `*this` is
  /// left untouched.
  [[nodiscard]] LoadResult deserialize(const std::string& text);

  /// Write serialize() to `path`; false (with `*error` set) on I/O failure.
  [[nodiscard]] bool save(const std::string& path, std::string* error = nullptr) const;
  /// Read + deserialize `path`.  Consults faultsim at site "tune/load <path>"
  /// first — an injected cache_fault returns LoadStatus::injected_fault so
  /// the caller falls back to cold tuning.  On any failure `*this` is left
  /// untouched.
  [[nodiscard]] LoadResult load(const std::string& path);

 private:
  std::map<std::string, TuneEntry> entries_;
};

[[nodiscard]] const char* to_string(TuneCache::LoadStatus s);

}  // namespace milc::tune
