#include "tune/explorer.hpp"

#include <stdexcept>

namespace milc::tune {

ExploreResult explore(const std::vector<Candidate>& candidates, const PriceFn& price) {
  ExploreResult res;
  bool have_winner = false;
  for (const Candidate& c : candidates) {
    double t = 0.0;
    try {
      t = price(c);
    } catch (const std::invalid_argument&) {
      continue;  // infeasible configuration — the tuner skips it
    }
    ++res.candidates_tried;
    if (!have_winner || t < res.per_iter_us) {
      have_winner = true;
      res.winner = c;
      res.per_iter_us = t;
    }
  }
  if (!have_winner) {
    throw std::invalid_argument("tune::explore: no feasible candidate (of " +
                                std::to_string(candidates.size()) + ")");
  }
  return res;
}

TuneOutcome tune_or_replay(const TuneKey& key, const std::vector<Candidate>& candidates,
                           const PriceFn& price) {
  TuneSession* sess = TuneSession::current();
  if (sess != nullptr) {
    if (const TuneEntry* hit = sess->lookup(key); hit != nullptr) {
      Candidate cached;
      cached.local_size = hit->local_size;
      cached.order = hit->order;
      cached.grid = hit->grid;
      cached.applies_per_checkpoint = hit->applies_per_checkpoint;
      const double measured = price(cached);
      sess->verify(key, *hit, measured);
      return {.entry = *hit, .from_cache = true, .candidates_tried = 1};
    }
  }
  const ExploreResult ex = explore(candidates, price);
  TuneEntry entry;
  entry.local_size = ex.winner.local_size;
  entry.order = ex.winner.order;
  entry.grid = ex.winner.grid;
  entry.applies_per_checkpoint = ex.winner.applies_per_checkpoint;
  entry.per_iter_us = ex.per_iter_us;
  if (sess != nullptr) {
    sess->note_explored(static_cast<std::uint64_t>(ex.candidates_tried));
    sess->record(key, entry);
    entry = *sess->cache().find(key);  // pick up the session's provenance
  }
  return {.entry = entry, .from_cache = false, .candidates_tried = ex.candidates_tried};
}

}  // namespace milc::tune
