// tune_key.hpp — the canonical coordinate of one tuning decision.
//
// QUDA's autotuner keys its cache on (kernel, volume, aux string) per
// device; the MILC cluster-tuning papers key on (machine, problem).  Our
// cluster-wide cache unifies both: a `TuneKey` names *everything* the
// winning launch configuration may legitimately depend on —
//
//   arch      the simulated machine's coefficient fingerprint (two machines
//             with any differing coefficient never share entries),
//   geom      lattice extents + target parity,
//   kernel    which tunable decision ("dslash", "staggered_quda",
//             "mdslash", "grid", "placement"),
//   config    kernel variant/strategy qualifier (e.g. "3LP-1 sycl"),
//   prec      arithmetic precision of the kernel fields,
//   recon     gauge reconstruction scheme ("r18"/"r12"/"r9", "-" if n/a),
//   devices   simulated device count,
//   topo      node-topology signature (nodes x devices-per-node, wire rates).
//
// The canonical form joins the fields with '|'; no field may contain '|'
// (enforced).  Entries are compared, stored and persisted by this string —
// the grammar is the cache's schema (docs/TUNING.md).
#pragma once

#include <cstdint>
#include <string>

#include "gpusim/fabric.hpp"
#include "gpusim/machine.hpp"

namespace milc::tune {

struct TuneKey {
  std::string arch;
  std::string geom;
  std::string kernel;
  std::string config;
  std::string prec = "fp64";
  std::string recon = "-";
  int devices = 1;
  std::string topo = "1x1";

  /// "arch|geom|kernel|config|prec|recon|dev<N>|topo".  Throws
  /// std::invalid_argument when a field contains the separator.
  [[nodiscard]] std::string canonical() const;

  /// Inverse of canonical(); returns false on malformed input.
  [[nodiscard]] static bool parse(const std::string& canonical, TuneKey& out);

  friend bool operator==(const TuneKey& a, const TuneKey& b) {
    return a.canonical() == b.canonical();
  }
};

/// Coefficient fingerprint of a simulated machine.  Any knob that moves a
/// kernel's simulated time is folded in, so an entry tuned on one machine
/// can never be replayed on a different one (bench_arch_sweep --cache
/// exercises exactly this).
[[nodiscard]] std::string arch_fingerprint(const gpusim::MachineModel& m);

/// Wire-rate fingerprint of a node topology: NVLink, PCIe, NIC, switch and
/// framing coefficients.  The arch field of grid-selection keys, whose cost
/// model is pure wire arithmetic — no SM coefficients involved.
[[nodiscard]] std::string wire_fingerprint(const gpusim::NodeTopology& topo);

/// "XxYxZxT/even"-style geometry signature.
[[nodiscard]] std::string geom_signature(int x, int y, int z, int t, bool even_target);

/// "NxD"-style topology signature: `nodes` node groups of `devices_per_node`
/// devices.  Callers with non-default wire models append their own rate
/// suffix (see partition.cpp's grid keys).
[[nodiscard]] std::string topo_signature(int nodes, int devices_per_node);

}  // namespace milc::tune
