// candidates.hpp — the one launch-candidate enumeration.
//
// Before this header existed the repo had two independent copies of "which
// local sizes can this launch use": `qudaref::StaggeredDslashTest::
// tuning_candidates()` (QUDA's power-of-two sweep pool) and the `multidev`
// `pick_local_size` fallback ladder (paper pool, then warp-aligned
// multiples, then partial-warp algorithmic multiples for shard ranges with
// no multiple-of-32 divisor).  Both call sites now delegate here; the
// ladder below is the single definition of candidate preference order and
// what the Explorer sweeps on a cache miss.
#pragma once

#include <cstdint>
#include <vector>

#include "core/strategy.hpp"

namespace milc::tune {

/// Every valid local size for (strategy, order) on a range of `sites`
/// target sites, in descending preference order, deduplicated:
///
///   1. qualifying paper-pool entries, largest first (96/192/384/768, or
///      64..512 for 1LP);
///   2. qualifying warp-aligned multiples of the strategy divisor,
///      descending from the largest <= 1024;
///   3. (partial-warp rescue) qualifying multiples of the *algorithmic*
///      divisor alone, descending — shard ranges like 1296 = 2^4 * 3^4
///      sites admit no multiple-of-32 divisor at all; the executor runs the
///      partial last warp correctly, this merely costs model efficiency.
///
/// Empty only when `sites <= 0` would make every candidate invalid — the
/// caller decides whether that is an error (pick_local_size throws).
[[nodiscard]] std::vector<int> local_size_ladder(Strategy s, IndexOrder o,
                                                 std::int64_t sites);

/// `preferred` when it qualifies, else the first ladder entry.  Exact
/// semantics of the original multidev helper: throws std::invalid_argument
/// for an empty range or when no candidate qualifies.
[[nodiscard]] int pick_local_size(Strategy s, IndexOrder o, int preferred,
                                  std::int64_t sites);

/// The QUDA-style tuner sweep pool: powers of two from 64 to 1024 that
/// divide the site count (one work-item per site, so the global range is
/// `sites` itself).
[[nodiscard]] std::vector<int> quda_tuning_candidates(std::int64_t sites);

}  // namespace milc::tune
