#include "tune/candidates.hpp"

#include <algorithm>
#include <stdexcept>

namespace milc::tune {

std::vector<int> local_size_ladder(Strategy s, IndexOrder o, std::int64_t sites) {
  std::vector<int> out;
  if (sites <= 0) return out;
  const auto push_unique = [&out](int ls) {
    if (std::find(out.begin(), out.end(), ls) == out.end()) out.push_back(ls);
  };

  // Rung 1: the paper pool, largest first (paper_local_sizes pre-filters).
  const std::vector<int> pool = paper_local_sizes(s, o, sites);
  for (auto it = pool.rbegin(); it != pool.rend(); ++it) push_unique(*it);

  // Rung 2: warp-aligned multiples of the strategy divisor, descending.
  const int m = local_size_multiple(s, o);
  for (int ls = (1024 / m) * m; ls >= m; ls -= m) {
    if (is_valid_local_size(s, o, ls, sites)) push_unique(ls);
  }

  // Rung 3: drop the warp-32 alignment, keep only the strategy's
  // algorithmic multiple — the partial-warp rescue for shard ranges with no
  // multiple-of-32 divisor.
  const int algo = local_size_multiple(s, o, /*warp_size=*/1);
  for (int ls = (1024 / algo) * algo; ls >= algo; ls -= algo) {
    if (is_valid_local_size(s, o, ls, sites, /*warp_size=*/1)) push_unique(ls);
  }
  return out;
}

int pick_local_size(Strategy s, IndexOrder o, int preferred, std::int64_t sites) {
  if (sites <= 0) {
    throw std::invalid_argument("pick_local_size: shard range has no sites");
  }
  if (is_valid_local_size(s, o, preferred, sites)) return preferred;
  const std::vector<int> ladder = local_size_ladder(s, o, sites);
  if (ladder.empty()) {
    throw std::invalid_argument("pick_local_size: no valid local size for " +
                                config_label(s, o, preferred) + " on " +
                                std::to_string(sites) + " sites");
  }
  return ladder.front();
}

std::vector<int> quda_tuning_candidates(std::int64_t sites) {
  std::vector<int> out;
  for (int ls : {64, 128, 256, 512, 1024}) {
    if (sites > 0 && sites % ls == 0) out.push_back(ls);
  }
  return out;
}

}  // namespace milc::tune
