#include "syclomatic/translator.hpp"

#include <regex>

namespace syclomatic {

namespace {

void replace_all(std::string& s, const std::string& from, const std::string& to) {
  if (from.empty()) return;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
}

int count_occurrences(const std::string& s, const std::string& needle) {
  int n = 0;
  std::size_t pos = 0;
  while ((pos = s.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

}  // namespace

Translation translate(const std::string& cuda_source, const Options& opts) {
  Translation out;
  std::string s = cuda_source;

  // -- thread/block built-ins (x maps to dimension 2 of the 3-D space) -------
  replace_all(s, "threadIdx.x", "item_ct1.get_local_id(2)");
  replace_all(s, "threadIdx.y", "item_ct1.get_local_id(1)");
  replace_all(s, "threadIdx.z", "item_ct1.get_local_id(0)");
  replace_all(s, "blockDim.x", "item_ct1.get_local_range(2)");
  replace_all(s, "blockDim.y", "item_ct1.get_local_range(1)");
  replace_all(s, "blockDim.z", "item_ct1.get_local_range(0)");
  replace_all(s, "gridDim.x", "item_ct1.get_group_range(2)");

  // SYCLomatic emits the *derived* product form: blockIdx.x * blockDim.x
  // became get_group(2) * get_local_range(2), so normalise the common
  // `blockIdx.x * blockDim.x + threadIdx.x` ordering into the canonical
  // migrated expression before the lone blockIdx rewrite.
  replace_all(s,
              "item_ct1.get_group(2) * item_ct1.get_local_range(2) + "
              "item_ct1.get_local_id(2)",
              "item_ct1.get_local_range(2) * item_ct1.get_group(2) + "
              "item_ct1.get_local_id(2)");
  replace_all(s, "blockIdx.x", "item_ct1.get_group(2)");
  replace_all(s,
              "item_ct1.get_group(2) * item_ct1.get_local_range(2) + "
              "item_ct1.get_local_id(2)",
              "item_ct1.get_local_range(2) * item_ct1.get_group(2) + "
              "item_ct1.get_local_id(2)");

  // -- synchronisation ---------------------------------------------------------
  const char* barrier = opts.use_explicit_local_fence
                            ? "item_ct1.barrier(sycl::access::fence_space::local_space)"
                            : "item_ct1.barrier()";
  replace_all(s, "__syncthreads()", barrier);

  // -- __shared__ arrays hoist to local_accessors -------------------------------
  {
    const std::regex shared_re(R"(__shared__\s+(\w+)\s+(\w+)\s*\[([^\]]+)\]\s*;)");
    std::smatch m;
    std::string rest = s;
    std::string rebuilt;
    while (std::regex_search(rest, m, shared_re)) {
      out.local_arrays.push_back("sycl::local_accessor<" + m[1].str() + ", 1> " +
                                 m[2].str() + "_acc_ct1(sycl::range<1>(" + m[3].str() +
                                 "), cgh);");
      out.warnings.push_back(
          "DPCT1059: __shared__ variable '" + m[2].str() +
          "' was hoisted to a sycl::local_accessor in the enclosing command group.");
      rebuilt += m.prefix();
      rebuilt += "auto " + m[2].str() + " = " + m[2].str() + "_acc_ct1.get_pointer();";
      rest = m.suffix();
    }
    rebuilt += rest;
    s = rebuilt;
  }

  // -- kernel signature gains the item parameter --------------------------------
  {
    const std::regex global_re(R"(__global__\s+void\s+(\w+)\s*\(([^)]*)\))");
    s = std::regex_replace(
        s, global_re, "void $1($2,\n                 const sycl::nd_item<3> &item_ct1)");
  }

  // -- runtime API ---------------------------------------------------------------
  const std::string chk_open = opts.emit_error_checks ? "DPCT_CHECK_ERROR(" : "";
  const std::string chk_close = opts.emit_error_checks ? ")" : "";
  {
    const std::regex malloc_re(R"(CUCHECK\(\s*cudaMalloc\(\s*&(\w+)\s*,\s*([^)]+)\)\s*\))");
    s = std::regex_replace(s, malloc_re,
                           chk_open + "$1 = (decltype($1))sycl::malloc_device($2, q_ct1)" +
                               chk_close);
    const std::regex memcpy_re(
        R"(CUCHECK\(\s*cudaMemcpy\(\s*([^,]+),\s*([^,]+),\s*([^,]+),\s*cudaMemcpy\w+\)\s*\))");
    s = std::regex_replace(s, memcpy_re,
                           chk_open + "q_ct1.memcpy($1, $2, $3).wait()" + chk_close);
    const std::regex free_re(R"(CUCHECK\(\s*cudaFree\(\s*(\w+)\s*\)\s*\))");
    s = std::regex_replace(s, free_re, chk_open + "sycl::free($1, q_ct1)" + chk_close);
  }
  replace_all(s, "atomicAdd(",
              "dpct::atomic_fetch_add<sycl::access::address_space::generic_space>(");

  // -- kernel launches -----------------------------------------------------------
  {
    const std::regex launch_re(R"((\w+)<<<\s*(\w+)\s*,\s*(\w+)\s*>>>\(([^;]*)\);)");
    s = std::regex_replace(
        s, launch_re,
        "q_ct1.submit([&](sycl::handler &cgh) {\n"
        "      cgh.parallel_for(\n"
        "          sycl::nd_range<3>(sycl::range<3>(1, 1, $2) * sycl::range<3>(1, 1, $3),\n"
        "                            sycl::range<3>(1, 1, $3)),\n"
        "          [=](sycl::nd_item<3> item_ct1) { $1($4, item_ct1); });\n"
        "    });");
  }

  // SYCLomatic creates an explicit in-order default queue.
  s = "// Migrated by syclomatic-lite.\n"
      "#include <sycl/sycl.hpp>\n"
      "static sycl::queue q_ct1{sycl::property::queue::in_order()};\n" +
      s;

  out.source = std::move(s);
  return out;
}

OptimizeResult optimize_global_id(const std::string& sycl_source) {
  OptimizeResult res;
  res.source = sycl_source;
  const std::string derived =
      "item_ct1.get_local_range(2) * item_ct1.get_group(2) + item_ct1.get_local_id(2)";
  res.replacements = count_occurrences(res.source, derived);
  replace_all(res.source, derived, "item_ct1.get_global_id(2)");
  return res;
}

}  // namespace syclomatic
