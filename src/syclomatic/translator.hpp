// translator.hpp — a miniature SYCLomatic: CUDA-to-SYCL source migration.
//
// The real SYCLomatic (paper [7][8]) is a clang-based migrator; this module
// reproduces the slice of its behaviour the paper studies, as a real,
// testable source-to-source transformer:
//
//  * CUDA built-ins become nd_item<3> queries with the x -> dimension-2
//    mapping SYCLomatic uses, producing the characteristic *derived* global
//    id  `item_ct1.get_local_range(2) * item_ct1.get_group(2) +
//    item_ct1.get_local_id(2)`  whose 10-12% cost §IV-D6 measures.
//  * __global__ kernels gain the `const sycl::nd_item<3> &item_ct1` tail
//    parameter; __shared__ arrays are hoisted to sycl::local_accessor
//    declarations for the enclosing submit lambda.
//  * __syncthreads() -> item_ct1.barrier(); cudaMalloc/cudaMemcpy/cudaFree ->
//    USM calls wrapped in DPCT_CHECK_ERROR; <<<grid, block>>> launches ->
//    in-order-queue parallel_for over an nd_range<3>.
//  * An optimiser pass applies the paper's hand fix: the derived index
//    expression is replaced by item_ct1.get_global_id(2).
#pragma once

#include <string>
#include <vector>

namespace syclomatic {

struct Translation {
  std::string source;                     ///< migrated SYCL source
  std::vector<std::string> local_arrays;  ///< local_accessor declarations hoisted
  std::vector<std::string> warnings;      ///< DPCT-style diagnostics
};

struct Options {
  bool use_explicit_local_fence = false;  ///< variation (ii) of §IV-D6
  bool emit_error_checks = true;          ///< variation (iii): DPCT_CHECK_ERROR wrappers
};

/// Migrate CUDA source to SYCL (the raw, unoptimised SYCLomatic output).
[[nodiscard]] Translation translate(const std::string& cuda_source, const Options& opts = {});

/// The hand-optimisation of §IV-C item 5: rewrite the derived global-id
/// expression into a direct get_global_id(2) call.  Returns the number of
/// replacements performed alongside the new source.
struct OptimizeResult {
  std::string source;
  int replacements = 0;
};
[[nodiscard]] OptimizeResult optimize_global_id(const std::string& sycl_source);

}  // namespace syclomatic
