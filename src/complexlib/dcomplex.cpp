#include "complexlib/dcomplex.hpp"

#include <ostream>

namespace milc {

std::ostream& operator<<(std::ostream& os, const dcomplex& a) {
  return os << '(' << a.re << (a.im < 0 ? "" : "+") << a.im << "i)";
}

}  // namespace milc
