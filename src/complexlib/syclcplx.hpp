// syclcplx.hpp — a SyclCPLX-style complex-number library.
//
// SyclCPLX (https://github.com/argonne-lcf/SyclCPLX, evaluated by the paper
// as `sycl::ext::cplx::complex<T>`) provides a std::complex-compatible type
// that is usable inside SYCL device code, where std::complex is not
// guaranteed to work.  This header reproduces its public surface: a
// trivially-copyable `complex<T>`, the full arithmetic operator set with
// scalar mixing, the elementary accessors (real/imag/abs/arg/norm/conj/
// proj/polar), exponential, logarithmic, power, trigonometric and hyperbolic
// functions.  Everything is header-only and marked constexpr where the math
// allows, exactly the properties that make such a library attractive in
// device kernels.
//
// The 3LP-1 "SyclCPLX" variant of the Dslash kernel is templated on this
// type instead of milc::dcomplex (paper §IV-C item 1, §IV-D5).
#pragma once

#include <cmath>
#include <iosfwd>
#include <limits>
#include <type_traits>

namespace syclcplx {

/// SyclCPLX-compatible complex number over a floating-point type T.
template <typename T>
class complex {
  static_assert(std::is_floating_point_v<T>,
                "syclcplx::complex requires a floating-point value type");

 public:
  using value_type = T;

  constexpr complex() = default;
  constexpr complex(T re, T im = T{}) : re_(re), im_(im) {}

  /// Converting constructor from a complex of another precision.
  template <typename U>
  explicit constexpr complex(const complex<U>& o)
      : re_(static_cast<T>(o.real())), im_(static_cast<T>(o.imag())) {}

  [[nodiscard]] constexpr T real() const { return re_; }
  [[nodiscard]] constexpr T imag() const { return im_; }
  constexpr void real(T v) { re_ = v; }
  constexpr void imag(T v) { im_ = v; }

  constexpr complex& operator=(T v) {
    re_ = v;
    im_ = T{};
    return *this;
  }

  constexpr complex& operator+=(const complex& o) {
    re_ += o.re_;
    im_ += o.im_;
    return *this;
  }
  constexpr complex& operator-=(const complex& o) {
    re_ -= o.re_;
    im_ -= o.im_;
    return *this;
  }
  constexpr complex& operator*=(const complex& o) {
    const T r = re_ * o.re_ - im_ * o.im_;
    im_ = re_ * o.im_ + im_ * o.re_;
    re_ = r;
    return *this;
  }
  complex& operator/=(const complex& o) {
    *this = *this / o;
    return *this;
  }
  constexpr complex& operator+=(T v) {
    re_ += v;
    return *this;
  }
  constexpr complex& operator-=(T v) {
    re_ -= v;
    return *this;
  }
  constexpr complex& operator*=(T v) {
    re_ *= v;
    im_ *= v;
    return *this;
  }
  constexpr complex& operator/=(T v) {
    re_ /= v;
    im_ /= v;
    return *this;
  }

  // -- binary operators ------------------------------------------------------
  friend constexpr complex operator+(const complex& a, const complex& b) {
    return {a.re_ + b.re_, a.im_ + b.im_};
  }
  friend constexpr complex operator+(const complex& a, T b) { return {a.re_ + b, a.im_}; }
  friend constexpr complex operator+(T a, const complex& b) { return {a + b.re_, b.im_}; }

  friend constexpr complex operator-(const complex& a, const complex& b) {
    return {a.re_ - b.re_, a.im_ - b.im_};
  }
  friend constexpr complex operator-(const complex& a, T b) { return {a.re_ - b, a.im_}; }
  friend constexpr complex operator-(T a, const complex& b) { return {a - b.re_, -b.im_}; }

  friend constexpr complex operator*(const complex& a, const complex& b) {
    return {a.re_ * b.re_ - a.im_ * b.im_, a.re_ * b.im_ + a.im_ * b.re_};
  }
  friend constexpr complex operator*(const complex& a, T b) { return {a.re_ * b, a.im_ * b}; }
  friend constexpr complex operator*(T a, const complex& b) { return {a * b.re_, a * b.im_}; }

  /// Smith's algorithm, as used by SyclCPLX / libstdc++, to avoid premature
  /// overflow in |b|^2.
  friend complex operator/(const complex& a, const complex& b) {
    using std::fabs;
    if (fabs(b.re_) >= fabs(b.im_)) {
      const T r = b.im_ / b.re_;
      const T d = b.re_ + b.im_ * r;
      return {(a.re_ + a.im_ * r) / d, (a.im_ - a.re_ * r) / d};
    }
    const T r = b.re_ / b.im_;
    const T d = b.re_ * r + b.im_;
    return {(a.re_ * r + a.im_) / d, (a.im_ * r - a.re_) / d};
  }
  friend constexpr complex operator/(const complex& a, T b) { return {a.re_ / b, a.im_ / b}; }
  friend complex operator/(T a, const complex& b) { return complex{a, T{}} / b; }

  friend constexpr complex operator+(const complex& a) { return a; }
  friend constexpr complex operator-(const complex& a) { return {-a.re_, -a.im_}; }

  friend constexpr bool operator==(const complex& a, const complex& b) {
    return a.re_ == b.re_ && a.im_ == b.im_;
  }
  friend constexpr bool operator==(const complex& a, T b) { return a.re_ == b && a.im_ == T{}; }
  friend constexpr bool operator==(T a, const complex& b) { return b == a; }
  friend constexpr bool operator!=(const complex& a, const complex& b) { return !(a == b); }

 private:
  T re_{};
  T im_{};
};

static_assert(std::is_trivially_copyable_v<complex<double>>,
              "device-usable complex must be trivially copyable");

// -- accessors ---------------------------------------------------------------

template <typename T>
[[nodiscard]] constexpr T real(const complex<T>& z) {
  return z.real();
}
template <typename T>
[[nodiscard]] constexpr T imag(const complex<T>& z) {
  return z.imag();
}

/// |z|^2
template <typename T>
[[nodiscard]] constexpr T norm(const complex<T>& z) {
  return z.real() * z.real() + z.imag() * z.imag();
}

/// |z| without undue overflow/underflow.
template <typename T>
[[nodiscard]] T abs(const complex<T>& z) {
  return std::hypot(z.real(), z.imag());
}

/// Phase angle in (-pi, pi].
template <typename T>
[[nodiscard]] T arg(const complex<T>& z) {
  return std::atan2(z.imag(), z.real());
}

template <typename T>
[[nodiscard]] constexpr complex<T> conj(const complex<T>& z) {
  return {z.real(), -z.imag()};
}

/// Projection onto the Riemann sphere (maps all infinities to +inf).
template <typename T>
[[nodiscard]] complex<T> proj(const complex<T>& z) {
  if (std::isinf(z.real()) || std::isinf(z.imag())) {
    return {std::numeric_limits<T>::infinity(), std::copysign(T{}, z.imag())};
  }
  return z;
}

/// rho * exp(i * theta)
template <typename T>
[[nodiscard]] complex<T> polar(T rho, T theta = T{}) {
  return {rho * std::cos(theta), rho * std::sin(theta)};
}

// -- exponential / logarithmic -----------------------------------------------

template <typename T>
[[nodiscard]] complex<T> exp(const complex<T>& z) {
  const T e = std::exp(z.real());
  return {e * std::cos(z.imag()), e * std::sin(z.imag())};
}

template <typename T>
[[nodiscard]] complex<T> log(const complex<T>& z) {
  return {std::log(abs(z)), arg(z)};
}

template <typename T>
[[nodiscard]] complex<T> log10(const complex<T>& z) {
  return log(z) / std::log(T{10});
}

/// Principal square root (right half-plane).
template <typename T>
[[nodiscard]] complex<T> sqrt(const complex<T>& z) {
  const T r = abs(z);
  if (r == T{}) return {T{}, T{}};
  const T x = std::sqrt((r + z.real()) / T{2});
  const T y = std::sqrt((r - z.real()) / T{2});
  return {x, std::copysign(y, z.imag())};
}

template <typename T>
[[nodiscard]] complex<T> pow(const complex<T>& base, const complex<T>& e) {
  if (base == complex<T>{} && e == complex<T>{}) return {T{1}, T{}};
  if (base == complex<T>{}) return {T{}, T{}};
  return exp(e * log(base));
}

template <typename T>
[[nodiscard]] complex<T> pow(const complex<T>& base, T e) {
  return pow(base, complex<T>{e, T{}});
}

template <typename T>
[[nodiscard]] complex<T> pow(T base, const complex<T>& e) {
  return pow(complex<T>{base, T{}}, e);
}

// -- trigonometric -----------------------------------------------------------

template <typename T>
[[nodiscard]] complex<T> sin(const complex<T>& z) {
  return {std::sin(z.real()) * std::cosh(z.imag()),
          std::cos(z.real()) * std::sinh(z.imag())};
}

template <typename T>
[[nodiscard]] complex<T> cos(const complex<T>& z) {
  return {std::cos(z.real()) * std::cosh(z.imag()),
          -std::sin(z.real()) * std::sinh(z.imag())};
}

template <typename T>
[[nodiscard]] complex<T> tan(const complex<T>& z) {
  return sin(z) / cos(z);
}

// -- hyperbolic ----------------------------------------------------------------

template <typename T>
[[nodiscard]] complex<T> sinh(const complex<T>& z) {
  return {std::sinh(z.real()) * std::cos(z.imag()),
          std::cosh(z.real()) * std::sin(z.imag())};
}

template <typename T>
[[nodiscard]] complex<T> cosh(const complex<T>& z) {
  return {std::cosh(z.real()) * std::cos(z.imag()),
          std::sinh(z.real()) * std::sin(z.imag())};
}

template <typename T>
[[nodiscard]] complex<T> tanh(const complex<T>& z) {
  return sinh(z) / cosh(z);
}

// -- inverse trigonometric / hyperbolic ---------------------------------------

template <typename T>
[[nodiscard]] complex<T> asinh(const complex<T>& z) {
  return log(z + sqrt(z * z + complex<T>{T{1}, T{}}));
}

template <typename T>
[[nodiscard]] complex<T> acosh(const complex<T>& z) {
  return log(z + sqrt(z + complex<T>{T{1}, T{}}) * sqrt(z - complex<T>{T{1}, T{}}));
}

template <typename T>
[[nodiscard]] complex<T> atanh(const complex<T>& z) {
  const complex<T> one{T{1}, T{}};
  return T{0.5} * (log(one + z) - log(one - z));
}

template <typename T>
[[nodiscard]] complex<T> asin(const complex<T>& z) {
  const complex<T> iz{-z.imag(), z.real()};  // i*z
  const complex<T> w = asinh(iz);
  return {w.imag(), -w.real()};  // -i*w
}

template <typename T>
[[nodiscard]] complex<T> acos(const complex<T>& z) {
  const complex<T> w = asin(z);
  const T half_pi = std::acos(T{-1}) / T{2};
  return {half_pi - w.real(), -w.imag()};
}

template <typename T>
[[nodiscard]] complex<T> atan(const complex<T>& z) {
  const complex<T> iz{-z.imag(), z.real()};
  const complex<T> w = atanh(iz);
  return {w.imag(), -w.real()};
}

// -- literals ------------------------------------------------------------------

inline namespace literals {
constexpr complex<double> operator""_i(long double v) {
  return {0.0, static_cast<double>(v)};
}
constexpr complex<double> operator""_i(unsigned long long v) {
  return {0.0, static_cast<double>(v)};
}
}  // namespace literals

}  // namespace syclcplx
