// scomplex.hpp — single-precision complex number.
//
// QUDA's flagship optimisation for memory-bound operators is mixed
// precision (paper §I: "QUDA supports ... mixed-precision solvers"): run the
// inner solver in float (halving memory traffic) and correct in double.
// This is the float counterpart of milc::dcomplex; complex_traits adapts it
// to the kernels, so every strategy kernel can be instantiated at single
// precision unchanged.
#pragma once

#include <cmath>

#include "complexlib/complex_traits.hpp"

namespace milc {

/// Packed single-precision complex (8 bytes — half the traffic of dcomplex).
struct scomplex {
  float re = 0.0f;
  float im = 0.0f;

  constexpr scomplex() = default;
  constexpr scomplex(float r, float i) : re(r), im(i) {}
  explicit constexpr scomplex(const dcomplex& z)
      : re(static_cast<float>(z.re)), im(static_cast<float>(z.im)) {}

  [[nodiscard]] constexpr dcomplex to_double() const {
    return {static_cast<double>(re), static_cast<double>(im)};
  }

  constexpr scomplex& operator+=(const scomplex& o) {
    re += o.re;
    im += o.im;
    return *this;
  }
  constexpr scomplex& operator-=(const scomplex& o) {
    re -= o.re;
    im -= o.im;
    return *this;
  }
  friend constexpr scomplex operator+(scomplex a, const scomplex& b) { return a += b; }
  friend constexpr scomplex operator-(scomplex a, const scomplex& b) { return a -= b; }
  friend constexpr bool operator==(const scomplex& a, const scomplex& b) {
    return a.re == b.re && a.im == b.im;
  }
};

static_assert(sizeof(scomplex) == 8, "scomplex must pack to two floats");

template <>
struct complex_traits<scomplex> {
  using value_type = float;
  static constexpr scomplex make(double re, double im) {
    return {static_cast<float>(re), static_cast<float>(im)};
  }
  static constexpr double real(const scomplex& z) { return static_cast<double>(z.re); }
  static constexpr double imag(const scomplex& z) { return static_cast<double>(z.im); }
  static constexpr scomplex conj(const scomplex& z) { return {z.re, -z.im}; }
  static constexpr void mac(scomplex& acc, const scomplex& a, const scomplex& b) {
    acc.re += a.re * b.re - a.im * b.im;
    acc.im += a.re * b.im + a.im * b.re;
  }
  static constexpr void conj_mac(scomplex& acc, const scomplex& a, const scomplex& b) {
    acc.re += a.re * b.re + a.im * b.im;
    acc.im += a.re * b.im - a.im * b.re;
  }
};

}  // namespace milc
