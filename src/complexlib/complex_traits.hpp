// complex_traits.hpp — uniform interface over milc::dcomplex and
// syclcplx::complex<double>, so the Dslash kernels can be instantiated with
// either type (paper §IV-C item 1: the SyclCPLX variant of 3LP-1 differs from
// the baseline only in the complex type it manipulates).
#pragma once

#include <type_traits>

#include "complexlib/dcomplex.hpp"
#include "complexlib/syclcplx.hpp"

namespace milc {

template <typename C>
struct complex_traits;

template <>
struct complex_traits<dcomplex> {
  using value_type = double;
  static constexpr dcomplex make(double re, double im) { return {re, im}; }
  static constexpr double real(const dcomplex& z) { return z.re; }
  static constexpr double imag(const dcomplex& z) { return z.im; }
  static constexpr dcomplex conj(const dcomplex& z) { return cconj(z); }
  /// acc += a * b
  static constexpr void mac(dcomplex& acc, const dcomplex& a, const dcomplex& b) {
    cmac(acc, a, b);
  }
  /// acc += conj(a) * b
  static constexpr void conj_mac(dcomplex& acc, const dcomplex& a, const dcomplex& b) {
    cmac_conj(acc, a, b);
  }
};

template <>
struct complex_traits<syclcplx::complex<double>> {
  using value_type = double;
  using C = syclcplx::complex<double>;
  static constexpr C make(double re, double im) { return {re, im}; }
  static constexpr double real(const C& z) { return z.real(); }
  static constexpr double imag(const C& z) { return z.imag(); }
  static constexpr C conj(const C& z) { return syclcplx::conj(z); }
  static constexpr void mac(C& acc, const C& a, const C& b) { acc += a * b; }
  static constexpr void conj_mac(C& acc, const C& a, const C& b) {
    acc += syclcplx::conj(a) * b;
  }
};

/// True for any type usable as the kernels' complex scalar.
template <typename C>
concept ComplexScalar = requires(C z, double d) {
  { complex_traits<C>::make(d, d) } -> std::same_as<C>;
  { complex_traits<C>::real(z) } -> std::same_as<double>;
};

}  // namespace milc
