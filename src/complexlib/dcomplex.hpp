// dcomplex.hpp — the paper's `double_complex` structure.
//
// Section III of the paper: "declare a structure data type named
// double_complex. This structure internally defines two doubles to represent
// complex numbers, along with arithmetic functions designed for manipulating
// complex numbers."  This is the MILC-style hand-rolled complex type used by
// every kernel variant except the SyclCPLX ones.  It is a trivially copyable
// aggregate so it can live in (simulated) work-group local memory and be
// treated as two packed 8-byte words by the memory model.
#pragma once

#include <cmath>
#include <iosfwd>

namespace milc {

/// Hand-rolled double-precision complex number (the paper's `double_complex`).
struct dcomplex {
  double re = 0.0;
  double im = 0.0;

  constexpr dcomplex() = default;
  constexpr dcomplex(double r, double i) : re(r), im(i) {}
  explicit constexpr dcomplex(double r) : re(r), im(0.0) {}

  constexpr dcomplex& operator+=(const dcomplex& o) {
    re += o.re;
    im += o.im;
    return *this;
  }
  constexpr dcomplex& operator-=(const dcomplex& o) {
    re -= o.re;
    im -= o.im;
    return *this;
  }
  constexpr dcomplex& operator*=(double s) {
    re *= s;
    im *= s;
    return *this;
  }

  friend constexpr bool operator==(const dcomplex& a, const dcomplex& b) {
    return a.re == b.re && a.im == b.im;
  }
};

static_assert(sizeof(dcomplex) == 16, "dcomplex must pack to two doubles");

/// a + b
[[nodiscard]] constexpr dcomplex cadd(const dcomplex& a, const dcomplex& b) {
  return {a.re + b.re, a.im + b.im};
}

/// a - b
[[nodiscard]] constexpr dcomplex csub(const dcomplex& a, const dcomplex& b) {
  return {a.re - b.re, a.im - b.im};
}

/// a * b
[[nodiscard]] constexpr dcomplex cmul(const dcomplex& a, const dcomplex& b) {
  return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
}

/// conj(a) * b — the "adjoint multiply" used when applying U^dagger.
[[nodiscard]] constexpr dcomplex cmul_conj(const dcomplex& a, const dcomplex& b) {
  return {a.re * b.re + a.im * b.im, a.re * b.im - a.im * b.re};
}

/// acc += a * b (complex multiply-accumulate, the inner-loop workhorse).
constexpr void cmac(dcomplex& acc, const dcomplex& a, const dcomplex& b) {
  acc.re += a.re * b.re - a.im * b.im;
  acc.im += a.re * b.im + a.im * b.re;
}

/// acc += conj(a) * b
constexpr void cmac_conj(dcomplex& acc, const dcomplex& a, const dcomplex& b) {
  acc.re += a.re * b.re + a.im * b.im;
  acc.im += a.re * b.im - a.im * b.re;
}

/// complex conjugate
[[nodiscard]] constexpr dcomplex cconj(const dcomplex& a) { return {a.re, -a.im}; }

/// -a
[[nodiscard]] constexpr dcomplex cneg(const dcomplex& a) { return {-a.re, -a.im}; }

/// |a|^2
[[nodiscard]] constexpr double cnorm2(const dcomplex& a) {
  return a.re * a.re + a.im * a.im;
}

/// |a|
[[nodiscard]] inline double cabs(const dcomplex& a) { return std::hypot(a.re, a.im); }

/// scalar * a
[[nodiscard]] constexpr dcomplex cscale(double s, const dcomplex& a) {
  return {s * a.re, s * a.im};
}

/// a / b (robust complex division, Smith's algorithm)
[[nodiscard]] inline dcomplex cdiv(const dcomplex& a, const dcomplex& b) {
  if (std::fabs(b.re) >= std::fabs(b.im)) {
    const double r = b.im / b.re;
    const double d = b.re + b.im * r;
    return {(a.re + a.im * r) / d, (a.im - a.re * r) / d};
  }
  const double r = b.re / b.im;
  const double d = b.re * r + b.im;
  return {(a.re * r + a.im) / d, (a.im * r - a.re) / d};
}

constexpr dcomplex operator+(const dcomplex& a, const dcomplex& b) { return cadd(a, b); }
constexpr dcomplex operator-(const dcomplex& a, const dcomplex& b) { return csub(a, b); }
constexpr dcomplex operator*(const dcomplex& a, const dcomplex& b) { return cmul(a, b); }
constexpr dcomplex operator*(double s, const dcomplex& a) { return cscale(s, a); }
constexpr dcomplex operator*(const dcomplex& a, double s) { return cscale(s, a); }
constexpr dcomplex operator-(const dcomplex& a) { return cneg(a); }
inline dcomplex operator/(const dcomplex& a, const dcomplex& b) { return cdiv(a, b); }

std::ostream& operator<<(std::ostream& os, const dcomplex& a);

}  // namespace milc
