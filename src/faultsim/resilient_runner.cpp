#include "faultsim/resilient_runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <new>
#include <utility>

#include "core/dslash_ref.hpp"
#include "ksan/sanitizer.hpp"
#include "minisycl/usm.hpp"

namespace milc {

const char* to_string(RecoveryAction a) {
  switch (a) {
    case RecoveryAction::retry: return "retry";
    case RecoveryAction::fallback: return "fallback";
    case RecoveryAction::recompute: return "recompute";
    case RecoveryAction::alloc_retry: return "alloc-retry";
    case RecoveryAction::degrade: return "degrade";
    case RecoveryAction::abort: return "abort";
  }
  return "unknown";
}

int RecoveryReport::count(RecoveryAction a) const {
  int n = 0;
  for (const RecoveryStep& s : steps) n += (s.action == a) ? 1 : 0;
  return n;
}

std::size_t RecoveryReport::faults_observed() const {
  std::size_t n = 0;
  for (const RecoveryStep& s : steps) n += s.faults.size();
  return n;
}

std::string RecoveryReport::summary() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "RecoveryReport: %s  final=%s  attempts=%d  steps=%zu  faults=%zu  "
                "recovery=%.1f us\n",
                succeeded ? "SUCCEEDED" : "FAILED", to_string(final_strategy), attempts,
                steps.size(), faults_observed(), recovery_us);
  out += buf;
  for (const RecoveryStep& s : steps) {
    std::snprintf(buf, sizeof(buf), "  [%-11s] %s attempt %d (%s)", to_string(s.action),
                  s.site.c_str(), s.attempt, s.detail.c_str());
    out += buf;
    if (s.backoff_us > 0.0) {
      std::snprintf(buf, sizeof(buf), "  backoff=%.1f us", s.backoff_us);
      out += buf;
    }
    out += '\n';
    for (const faultsim::FaultEvent& f : s.faults) {
      std::snprintf(buf, sizeof(buf), "      fault: %s @ '%s' #%llu — %s\n",
                    faultsim::to_string(f.kind), f.site.c_str(),
                    static_cast<unsigned long long>(f.occurrence), f.detail.c_str());
      out += buf;
    }
  }
  return out;
}

namespace {

/// <r, c>: conjugate-linear contraction over the site arrays — the O(n)
/// ABFT check, summed in a fixed order so repeated checks are bit-identical.
dcomplex contract(const SU3Vector<dcomplex>* r, const SU3Vector<dcomplex>* c,
                  std::int64_t n) {
  dcomplex acc{0.0, 0.0};
  for (std::int64_t s = 0; s < n; ++s) acc += dot(r[s], c[s]);
  return acc;
}

/// Adapt the caller's request to a fallback rung: plain SYCL variant, and
/// the first paper-valid (order, local size) when the caller's choice does
/// not exist for that strategy.
RunRequest adapt_request(const RunRequest& base, Strategy s, std::int64_t sites) {
  if (s == base.strategy) return base;
  RunRequest r = base;
  r.strategy = s;
  r.variant = Variant::SYCL;
  const std::vector<IndexOrder> orders = orders_of(s);
  if (std::find(orders.begin(), orders.end(), r.order) == orders.end()) {
    r.order = orders.front();
  }
  if (!is_valid_local_size(s, r.order, r.local_size, sites)) {
    const std::vector<int> sizes = paper_local_sizes(s, r.order, sites);
    if (!sizes.empty()) r.local_size = sizes.front();
  }
  return r;
}

std::vector<faultsim::FaultEvent> drain_log(faultsim::Injector* inj, std::size_t mark) {
  return inj != nullptr ? inj->log_since(mark) : std::vector<faultsim::FaultEvent>{};
}

}  // namespace

RecoveryReport ResilientRunner::run(DslashProblem& problem, const RunRequest& req) const {
  RecoveryReport rep;
  rep.requested = req.strategy;
  rep.final_strategy = req.strategy;

  faultsim::Injector* inj = faultsim::Injector::current();
  const std::int64_t sites = problem.sites();
  minisycl::queue util_q(minisycl::ExecMode::functional, minisycl::QueueOrder::in_order,
                         runner_.machine(), runner_.calibration());

  // Silent-corruption surface: the kernels' output field, with the exact
  // extent declare_dslash_regions computes (bit flips into *inputs* would
  // need checkpoint/re-upload machinery to recover from — out of scope, see
  // docs/RESILIENCE.md).
  if (inj != nullptr) {
    const DslashArgs<dcomplex> a = problem.args();
    ksan::SanitizeConfig kcfg;
    declare_dslash_regions(a, kcfg);
    const auto c_base = reinterpret_cast<std::uint64_t>(a.c_out);
    std::vector<faultsim::MemRegion> targets;
    for (const ksan::Region& r : kcfg.regions) {
      if (r.base == c_base) targets.push_back({r.base, r.bytes});
    }
    inj->set_corruption_targets(std::move(targets));
  }

  // --- ABFT setup: one golden serial reference + one scalar to keep --------
  ColorField c_ref;
  ColorField r_host;
  dcomplex s_ref{0.0, 0.0};
  SU3Vector<dcomplex>* r_dev = nullptr;
  if (cfg_.abft) {
    c_ref = ColorField(problem.geom(), problem.target_parity());
    dslash_reference(problem.view(), problem.neighbors(), problem.b(), c_ref);
    r_host = ColorField(problem.geom(), problem.target_parity());
    r_host.fill_random(cfg_.abft_seed);
    s_ref = dot(r_host, c_ref);

    // Stage the check vector in device memory, as a service would; this is
    // the allocation-pressure fault site.  Degrade to the host copy when the
    // allocator stays exhausted — verification must not be lost to OOM.
    for (int attempt = 0; attempt < cfg_.max_attempts_per_strategy; ++attempt) {
      const std::size_t mark = inj != nullptr ? inj->log().size() : 0;
      SU3Vector<dcomplex>* p = nullptr;
      try {
        p = minisycl::malloc_device<SU3Vector<dcomplex>>(static_cast<std::size_t>(sites),
                                                         util_q);
      } catch (const std::bad_alloc&) {
        p = nullptr;
      }
      if (p != nullptr) {
        // Plain memcpy: the host-side source vector may legitimately reuse a
        // heap block the registry still tracks as a freed USM region (freed
        // ranges are kept for use-after-free diagnosis), so the checked copy
        // would false-positive across repeated runs.
        std::memcpy(p, r_host.data(),
                    static_cast<std::size_t>(sites) * sizeof(SU3Vector<dcomplex>));
        r_dev = p;
        break;
      }
      const double backoff =
          cfg_.backoff_base_us * std::pow(cfg_.backoff_factor, attempt);
      rep.recovery_us += backoff;
      rep.steps.push_back(RecoveryStep{RecoveryAction::alloc_retry, req.strategy, attempt,
                                       backoff, "malloc_device",
                                       "ABFT check-vector allocation refused",
                                       drain_log(inj, mark)});
    }
    if (r_dev == nullptr && !rep.steps.empty()) {
      rep.steps.push_back(RecoveryStep{RecoveryAction::degrade, req.strategy, 0, 0.0,
                                       "malloc_device",
                                       "device allocation exhausted; ABFT check vector stays "
                                       "host-resident",
                                       {}});
    }
  }

  // --- the retry / fallback ladder ----------------------------------------
  std::vector<Strategy> rungs{req.strategy};
  for (Strategy s : cfg_.ladder) {
    if (std::find(rungs.begin(), rungs.end(), s) == rungs.end()) rungs.push_back(s);
  }

  for (std::size_t rung = 0; rung < rungs.size() && !rep.succeeded; ++rung) {
    const RunRequest r = adapt_request(req, rungs[rung], sites);
    const std::string label = config_label(r.strategy, r.order, r.local_size);
    const VariantInfo& vi = variant_info(r.variant);

    for (int attempt = 0; attempt < cfg_.max_attempts_per_strategy; ++attempt) {
      ++rep.attempts;
      const std::size_t mark = inj != nullptr ? inj->log().size() : 0;
      problem.c().zero();
      minisycl::queue q(minisycl::ExecMode::profiled, vi.queue_order, runner_.machine(),
                        runner_.calibration());

      RunResult rr;
      bool launch_ok = true;
      std::string detail;
      try {
        rr = runner_.run_on(q, problem, r);
        q.wait_and_throw();
      } catch (const minisycl::exception& e) {
        launch_ok = false;
        detail = e.what();
      }

      bool abft_ok = true;
      if (launch_ok && cfg_.abft) {
        const SU3Vector<dcomplex>* rv = r_dev != nullptr ? r_dev : r_host.data();
        const dcomplex s_out = contract(rv, problem.c().data(), sites);
        const double err = cabs({s_out.re - s_ref.re, s_out.im - s_ref.im});
        abft_ok = err <= cfg_.abft_rel_tol * std::max(1.0, cabs(s_ref));
        if (!abft_ok) {
          char buf[128];
          std::snprintf(buf, sizeof(buf),
                        "ABFT contraction mismatch (|Δ| = %.3e): silent output corruption",
                        err);
          detail = buf;
        }
      }

      if (launch_ok && abft_ok) {
        rep.succeeded = true;
        rep.final_strategy = r.strategy;
        rep.abft_checked = cfg_.abft;
        rep.result = std::move(rr);
        break;
      }

      // Failed attempt: classify the action and charge the simulated cost.
      const bool last_attempt = attempt + 1 == cfg_.max_attempts_per_strategy;
      const bool last_rung = rung + 1 == rungs.size();
      RecoveryAction action = launch_ok ? RecoveryAction::recompute : RecoveryAction::retry;
      if (last_attempt) {
        action = last_rung ? RecoveryAction::abort : RecoveryAction::fallback;
        if (!last_rung) {
          detail += " — falling back to " +
                    std::string(to_string(rungs[rung + 1]));
        }
      }
      const double backoff =
          (action == RecoveryAction::retry)
              ? cfg_.backoff_base_us * std::pow(cfg_.backoff_factor, attempt)
              : 0.0;
      rep.recovery_us += q.sim_time_us() + backoff;
      rep.steps.push_back(RecoveryStep{action, r.strategy, attempt, backoff, label,
                                       std::move(detail), drain_log(inj, mark)});
    }
  }

  if (r_dev != nullptr) minisycl::free(r_dev, util_q);
  if (inj != nullptr) inj->set_corruption_targets({});
  return rep;
}

}  // namespace milc
