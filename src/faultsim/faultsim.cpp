#include "faultsim/faultsim.hpp"

#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>

namespace faultsim {

namespace {

/// The installed injector.  A plain pointer + mutex (not magic-static inside
/// current()) so the fault-free fast path is one relaxed pointer read.
std::unique_ptr<Injector>& slot() {
  static std::unique_ptr<Injector> s;
  return s;
}
Injector* g_current = nullptr;
std::mutex g_mu;  // guards all Injector mutable state and install/uninstall

/// splitmix64 — the standard 64-bit finaliser; full avalanche, so consecutive
/// counters give independent-looking draws.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform in [0, 1) from a hashed 64-bit state (53 mantissa bits).
double u01(std::uint64_t x) {
  return static_cast<double>(splitmix64(x) >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::alloc_fail: return "alloc-fail";
    case FaultKind::launch_fail: return "launch-fail";
    case FaultKind::sticky_fault: return "sticky-fault";
    case FaultKind::bit_flip: return "bit-flip";
    case FaultKind::hang: return "hang";
    case FaultKind::msg_drop: return "msg-drop";
    case FaultKind::msg_corrupt: return "msg-corrupt";
    case FaultKind::msg_delay: return "msg-delay";
    case FaultKind::device_loss: return "device-loss";
    case FaultKind::node_loss: return "node-loss";
    case FaultKind::serve_fault: return "serve-fault";
    case FaultKind::cache_fault: return "cache-fault";
    case FaultKind::heal: return "heal";
  }
  return "unknown";
}

void flip_bit(void* data, std::size_t bytes, std::uint64_t key) {
  if (data == nullptr || bytes == 0) return;
  const std::uint64_t pick = splitmix64(key);
  auto* p = static_cast<unsigned char*>(data) + pick % bytes;
  *p = static_cast<unsigned char>(*p ^ (1u << ((pick >> 32) % 8)));
}

Injector* Injector::current() { return g_current; }

void Injector::install(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(g_mu);
  slot().reset(new Injector(std::move(plan)));
  g_current = slot().get();
}

void Injector::uninstall() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_current = nullptr;
  slot().reset();
}

double Injector::draw(FaultKind kind, std::uint64_t counter) const {
  // Independent stream per fault kind: kind occupies the top byte of the
  // counter word, so streams never collide for < 2^56 draws.
  const auto k = static_cast<std::uint64_t>(kind);
  return u01(splitmix64(plan_.seed) ^ (k << 56) ^ counter);
}

void Injector::record(FaultKind kind, const std::string& site, std::uint64_t occurrence,
                      std::string detail) {
  ++counts_[static_cast<std::size_t>(kind)];
  events_.push_back(FaultEvent{kind, site, occurrence, std::move(detail)});
}

Injector::SiteState& Injector::site_state(const std::string& name) {
  for (auto& [n, st] : sites_) {
    if (n == name) return st;
  }
  sites_.emplace_back(name, SiteState{});
  return sites_.back().second;
}

bool Injector::should_fail_alloc(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(g_mu);
  const std::uint64_t occ = alloc_counter_++;
  bool fail = false;
  for (const ScheduledFault& s : plan_.schedule) {
    if (s.kind == FaultKind::alloc_fail && occ >= s.index && occ < s.index + s.repeat) {
      fail = true;
      break;
    }
  }
  if (!fail && plan_.p_alloc_fail > 0.0) {
    fail = draw(FaultKind::alloc_fail, occ) < plan_.p_alloc_fail;
  }
  if (fail) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "allocation of %zu B refused", bytes);
    record(FaultKind::alloc_fail, "malloc_device", occ, buf);
  }
  return fail;
}

LaunchVerdict Injector::on_kernel_launch(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mu);
  SiteState& st = site_state(name);
  const std::uint64_t occ = st.launches++;
  const std::uint64_t attempt = launch_counter_++;

  LaunchVerdict v;
  bool scheduled = false;
  // Explicit schedule wins over probability.
  for (const ScheduledFault& s : plan_.schedule) {
    if (s.kind != FaultKind::launch_fail && s.kind != FaultKind::sticky_fault &&
        s.kind != FaultKind::hang) {
      continue;
    }
    if (!s.site_filter.empty() && name.find(s.site_filter) == std::string::npos) continue;
    if (occ >= s.index && occ < s.index + s.repeat) {
      v.faulted = true;
      v.kind = s.kind;
      scheduled = true;
      break;
    }
  }
  if (!v.faulted && plan_.p_launch_fail > 0.0 &&
      draw(FaultKind::launch_fail, attempt) < plan_.p_launch_fail) {
    v.faulted = true;
    v.kind = FaultKind::launch_fail;
  }
  if (!v.faulted && plan_.p_sticky > 0.0 &&
      draw(FaultKind::sticky_fault, attempt) < plan_.p_sticky) {
    v.faulted = true;
    v.kind = FaultKind::sticky_fault;
  }
  if (!v.faulted && plan_.p_hang > 0.0 && draw(FaultKind::hang, attempt) < plan_.p_hang) {
    v.faulted = true;
    v.kind = FaultKind::hang;
  }

  // Sticky faults are transient by definition: after `sticky_burst`
  // consecutive failures of one site the fault clears, so bounded retry
  // always gets past it.  (A *scheduled* sticky fault honours its own
  // `repeat` instead — it fired through the schedule branch above.)
  if (v.faulted && v.kind == FaultKind::sticky_fault && !scheduled) {
    if (st.consecutive_sticky >= plan_.sticky_burst) {
      v.faulted = false;
      st.consecutive_sticky = 0;
    } else {
      ++st.consecutive_sticky;
    }
  } else if (!v.faulted) {
    st.consecutive_sticky = 0;
  }

  if (v.faulted) {
    if (v.kind == FaultKind::hang) v.charge_us = plan_.watchdog_timeout_us;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "launch attempt %llu",
                  static_cast<unsigned long long>(occ));
    record(v.kind, name, occ, buf);
  }
  return v;
}

LaunchVerdict Injector::on_kernel_complete(const std::string& name, double duration_us) {
  std::lock_guard<std::mutex> lock(g_mu);
  LaunchVerdict v;
  if (duration_us > plan_.watchdog_timeout_us) {
    v.faulted = true;
    v.kind = FaultKind::hang;
    v.charge_us = plan_.watchdog_timeout_us;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "simulated duration %.1f us exceeds watchdog %.1f us",
                  duration_us, plan_.watchdog_timeout_us);
    record(FaultKind::hang, name, site_state(name).launches, buf);
  }
  return v;
}

bool Injector::maybe_corrupt(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mu);
  const std::uint64_t occ = complete_counter_++;
  if (targets_.empty()) return false;

  bool flip = false;
  for (const ScheduledFault& s : plan_.schedule) {
    if (s.kind != FaultKind::bit_flip) continue;
    if (!s.site_filter.empty() && name.find(s.site_filter) == std::string::npos) continue;
    if (occ >= s.index && occ < s.index + s.repeat) {
      flip = true;
      break;
    }
  }
  if (!flip && plan_.p_bit_flip > 0.0) {
    flip = draw(FaultKind::bit_flip, occ) < plan_.p_bit_flip;
  }
  if (!flip) return false;

  // Pick region, byte and bit from the same deterministic stream.
  std::uint64_t total = 0;
  for (const MemRegion& r : targets_) total += r.bytes;
  if (total == 0) return false;
  const std::uint64_t pick =
      splitmix64(splitmix64(plan_.seed) ^ 0xb17f11bULL ^ occ);
  std::uint64_t byte_index = pick % total;
  const int bit = static_cast<int>((pick >> 32) % 8);
  for (const MemRegion& r : targets_) {
    if (byte_index < r.bytes) {
      auto* p = reinterpret_cast<unsigned char*>(r.base + byte_index);
      *p = static_cast<unsigned char>(*p ^ (1u << bit));
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "flipped bit %d of byte +%llu in region base=0x%llx (%llu B)", bit,
                    static_cast<unsigned long long>(byte_index),
                    static_cast<unsigned long long>(r.base),
                    static_cast<unsigned long long>(r.bytes));
      record(FaultKind::bit_flip, name, occ, buf);
      return true;
    }
    byte_index -= r.bytes;
  }
  return false;
}

LinkVerdict Injector::on_message(const std::string& site, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(g_mu);
  SiteState& st = site_state(site);
  const std::uint64_t occ = st.launches++;  // per-site message occurrence
  const std::uint64_t msg = message_counter_++;

  LinkVerdict v;
  // Explicit schedule wins over probability; entries compose (a message can
  // be scheduled both delayed and corrupted).
  for (const ScheduledFault& s : plan_.schedule) {
    if (s.kind != FaultKind::msg_drop && s.kind != FaultKind::msg_corrupt &&
        s.kind != FaultKind::msg_delay) {
      continue;
    }
    if (!s.site_filter.empty() && site.find(s.site_filter) == std::string::npos) continue;
    if (occ < s.index || occ >= s.index + s.repeat) continue;
    if (s.kind == FaultKind::msg_drop) v.dropped = true;
    if (s.kind == FaultKind::msg_corrupt) v.corrupted = true;
    if (s.kind == FaultKind::msg_delay) v.delayed = true;
  }
  if (!v.dropped && plan_.p_msg_drop > 0.0 &&
      draw(FaultKind::msg_drop, msg) < plan_.p_msg_drop) {
    v.dropped = true;
  }
  if (!v.corrupted && plan_.p_msg_corrupt > 0.0 &&
      draw(FaultKind::msg_corrupt, msg) < plan_.p_msg_corrupt) {
    v.corrupted = true;
  }
  if (!v.delayed && plan_.p_msg_delay > 0.0 &&
      draw(FaultKind::msg_delay, msg) < plan_.p_msg_delay) {
    v.delayed = true;
  }

  // A dropped message never arrives: nothing to corrupt or delay.
  if (v.dropped) {
    v.corrupted = false;
    v.delayed = false;
  }
  if (v.delayed) {
    v.extra_latency_us = plan_.delay_latency_us;
    v.bw_factor = plan_.delay_bw_factor;
  }
  if (v.corrupted) {
    v.corrupt_key = splitmix64(plan_.seed) ^ 0xc0442f7ULL ^ msg;
  }

  char buf[96];
  std::snprintf(buf, sizeof(buf), "message %llu (%llu B)",
                static_cast<unsigned long long>(occ),
                static_cast<unsigned long long>(bytes));
  if (v.dropped) record(FaultKind::msg_drop, site, occ, buf);
  if (v.corrupted) record(FaultKind::msg_corrupt, site, occ, buf);
  if (v.delayed) record(FaultKind::msg_delay, site, occ, buf);
  return v;
}

bool Injector::on_device_check(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  SiteState& st = site_state(site);
  const std::uint64_t occ = st.launches++;  // per-site consult occurrence
  const std::uint64_t chk = device_counter_++;

  bool lost = false;
  for (const ScheduledFault& s : plan_.schedule) {
    if (s.kind != FaultKind::device_loss) continue;
    if (!s.site_filter.empty() && site.find(s.site_filter) == std::string::npos) continue;
    if (occ >= s.index && occ < s.index + s.repeat) {
      lost = true;
      break;
    }
  }
  if (!lost && plan_.p_device_loss > 0.0 &&
      draw(FaultKind::device_loss, chk) < plan_.p_device_loss) {
    lost = true;
  }
  if (lost) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "health check %llu",
                  static_cast<unsigned long long>(occ));
    record(FaultKind::device_loss, site, occ, buf);
  }
  return lost;
}

bool Injector::on_node_check(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  SiteState& st = site_state(site);
  const std::uint64_t occ = st.launches++;  // per-site consult occurrence
  const std::uint64_t chk = node_counter_++;

  bool lost = false;
  for (const ScheduledFault& s : plan_.schedule) {
    if (s.kind != FaultKind::node_loss) continue;
    if (!s.site_filter.empty() && site.find(s.site_filter) == std::string::npos) continue;
    if (occ >= s.index && occ < s.index + s.repeat) {
      lost = true;
      break;
    }
  }
  if (!lost && plan_.p_node_loss > 0.0 &&
      draw(FaultKind::node_loss, chk) < plan_.p_node_loss) {
    lost = true;
  }
  if (lost) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "health check %llu",
                  static_cast<unsigned long long>(occ));
    record(FaultKind::node_loss, site, occ, buf);
  }
  return lost;
}

bool Injector::on_serve_check(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  SiteState& st = site_state(site);
  const std::uint64_t occ = st.launches++;  // per-site consult occurrence
  const std::uint64_t chk = serve_counter_++;

  bool faulted = false;
  for (const ScheduledFault& s : plan_.schedule) {
    if (s.kind != FaultKind::serve_fault) continue;
    if (!s.site_filter.empty() && site.find(s.site_filter) == std::string::npos) continue;
    if (occ >= s.index && occ < s.index + s.repeat) {
      faulted = true;
      break;
    }
  }
  if (!faulted && plan_.p_serve > 0.0 &&
      draw(FaultKind::serve_fault, chk) < plan_.p_serve) {
    faulted = true;
  }
  if (faulted) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "control-plane step %llu",
                  static_cast<unsigned long long>(occ));
    record(FaultKind::serve_fault, site, occ, buf);
  }
  return faulted;
}

bool Injector::on_cache_check(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  SiteState& st = site_state(site);
  const std::uint64_t occ = st.launches++;  // per-site consult occurrence
  const std::uint64_t chk = cache_counter_++;

  bool faulted = false;
  for (const ScheduledFault& s : plan_.schedule) {
    if (s.kind != FaultKind::cache_fault) continue;
    if (!s.site_filter.empty() && site.find(s.site_filter) == std::string::npos) continue;
    if (occ >= s.index && occ < s.index + s.repeat) {
      faulted = true;
      break;
    }
  }
  if (!faulted && plan_.p_cache_fault > 0.0 &&
      draw(FaultKind::cache_fault, chk) < plan_.p_cache_fault) {
    faulted = true;
  }
  if (faulted) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "cache I/O step %llu",
                  static_cast<unsigned long long>(occ));
    record(FaultKind::cache_fault, site, occ, buf);
  }
  return faulted;
}

bool Injector::on_heal_check(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  SiteState& st = site_state(site);
  const std::uint64_t occ = st.launches++;  // per-site consult occurrence
  const std::uint64_t chk = heal_counter_++;

  bool healed = false;
  for (const ScheduledFault& s : plan_.schedule) {
    if (s.kind != FaultKind::heal) continue;
    if (!s.site_filter.empty() && site.find(s.site_filter) == std::string::npos) continue;
    if (occ >= s.index && occ < s.index + s.repeat) {
      healed = true;
      break;
    }
  }
  if (!healed && plan_.p_heal > 0.0 && draw(FaultKind::heal, chk) < plan_.p_heal) {
    healed = true;
  }
  if (healed) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "device return %llu",
                  static_cast<unsigned long long>(occ));
    record(FaultKind::heal, site, occ, buf);
  }
  return healed;
}

void Injector::set_corruption_targets(std::vector<MemRegion> regions) {
  std::lock_guard<std::mutex> lock(g_mu);
  targets_ = std::move(regions);
}

std::vector<FaultEvent> Injector::log() const {
  std::lock_guard<std::mutex> lock(g_mu);
  return events_;
}

std::vector<FaultEvent> Injector::log_since(std::size_t mark) const {
  std::lock_guard<std::mutex> lock(g_mu);
  if (mark >= events_.size()) return {};
  return {events_.begin() + static_cast<std::ptrdiff_t>(mark), events_.end()};
}

std::uint64_t Injector::injected_total() const {
  std::lock_guard<std::mutex> lock(g_mu);
  std::uint64_t n = 0;
  for (const std::uint64_t c : counts_) n += c;
  return n;
}

std::uint64_t Injector::injected(FaultKind k) const {
  std::lock_guard<std::mutex> lock(g_mu);
  return counts_[static_cast<std::size_t>(k)];
}

void Injector::clear_log() {
  std::lock_guard<std::mutex> lock(g_mu);
  events_.clear();
  for (std::uint64_t& c : counts_) c = 0;
}

}  // namespace faultsim
