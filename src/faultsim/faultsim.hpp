// faultsim.hpp — seeded, deterministic fault injection for the simulated
// runtime.
//
// Production lattice-QCD services run Dslash at cluster scale where node
// faults are routine (DeTar et al. 2017; Gottlieb 2001): allocations fail
// under memory pressure, launches are rejected, ECC events corrupt memory,
// kernels hang.  The simulator is deterministic, so those faults must be
// *injected* to be testable — and injected deterministically, so a chaos
// test that failed once replays bit-for-bit from its seed.
//
// A `FaultPlan` is installed process-wide (see Injector / ScopedFaultInjection);
// `minisycl::malloc_device` and `minisycl::queue::submit` consult it at every
// fault site.  With no plan installed the consult is one null-pointer check —
// the fault-free timeline is untouched (tested bit-for-bit in
// tests/test_resilient_runner.cpp).
//
// Draw determinism: every fault decision hashes (seed, fault kind, per-kind
// occurrence counter) through splitmix64.  Decisions therefore depend only on
// the plan and on how many times each site kind was reached — never on wall
// clock, address layout or call interleaving.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace faultsim {

enum class FaultKind {
  alloc_fail,    ///< malloc_device returns nullptr / throws
  launch_fail,   ///< kernel launch rejected, kernel body never runs
  sticky_fault,  ///< transient device fault; clears after `sticky_burst` retries
  bit_flip,      ///< ECC-like single-bit corruption of a registered device region
  hang,          ///< kernel never completes; watchdog expires on the simulated timeline
  msg_drop,      ///< link message lost in flight; never delivered
  msg_corrupt,   ///< link message delivered with a flipped payload bit
  msg_delay,     ///< link latency spike + degraded bandwidth for one message
  device_loss,   ///< whole simulated device lost; triggers failover
  node_loss,     ///< whole node group lost (all its devices at once)
  serve_fault,   ///< serving-tier control-plane fault (admission, dispatch, probe)
  cache_fault,   ///< tuning-cache I/O fault (load/store of the persisted cache)
  heal,          ///< a stickily-lost device/node returns to service (device_return)
};

inline constexpr std::size_t kNumFaultKinds = 13;

[[nodiscard]] const char* to_string(FaultKind k);

/// Deterministically flip one bit of `bytes` bytes at `data`, picked by
/// hashing `key` — the same helper the injector uses internally, exposed so
/// link-level corruption can be applied by whoever owns the wire payload
/// (gpusim prices messages; the multidev runner owns the receive buffers).
void flip_bit(void* data, std::size_t bytes, std::uint64_t key);

/// Byte extent eligible for bit-flip corruption (the caller registers the
/// exact field extents, e.g. via milc::declare_dslash_regions).
struct MemRegion {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
};

/// Deterministic "fail exactly there" entry, for tests that need a specific
/// fault at a specific occurrence rather than a probability.
struct ScheduledFault {
  FaultKind kind = FaultKind::launch_fail;
  std::uint64_t index = 0;      ///< fire on the index-th occurrence (0-based)
  std::uint64_t repeat = 1;     ///< ...and the repeat-1 following occurrences
  std::string site_filter;      ///< substring of the kernel name; empty = any site
};

/// How malloc_device reports an injected allocation failure.
enum class AllocFailMode {
  return_null,      ///< SYCL USM convention: nullptr
  throw_bad_alloc,  ///< operator-new convention: std::bad_alloc
};

struct FaultPlan {
  std::uint64_t seed = 0;

  // Per-site-kind probabilities (0 disables the kind entirely).
  double p_alloc_fail = 0.0;
  double p_launch_fail = 0.0;
  double p_sticky = 0.0;
  double p_bit_flip = 0.0;
  double p_hang = 0.0;
  double p_msg_drop = 0.0;
  double p_msg_corrupt = 0.0;
  double p_msg_delay = 0.0;
  double p_device_loss = 0.0;
  double p_node_loss = 0.0;
  double p_serve = 0.0;
  double p_cache_fault = 0.0;
  double p_heal = 0.0;

  AllocFailMode alloc_fail_mode = AllocFailMode::return_null;

  /// A delayed message pays this much extra latency and has its bandwidth
  /// divided by `delay_bw_factor` — a congestion spike, not a loss.
  double delay_latency_us = 25.0;
  double delay_bw_factor = 4.0;

  /// A sticky fault fires for at most this many *consecutive* launches of the
  /// same kernel site, then clears — the defining property of a transient
  /// error: bounded retry always gets past it.
  int sticky_burst = 2;

  /// Simulated watchdog: a hung kernel charges this much simulated time
  /// before the timeout surfaces; a kernel whose simulated duration exceeds
  /// it is reported hung even without an injected hang.
  double watchdog_timeout_us = 50'000.0;

  /// Explicit schedule, consulted before the probabilistic draws.
  std::vector<ScheduledFault> schedule;
};

/// One injected fault, as recorded in the injector's log.
struct FaultEvent {
  FaultKind kind = FaultKind::launch_fail;
  std::string site;             ///< kernel name, or "malloc_device"
  std::uint64_t occurrence = 0; ///< per-site-kind counter value when it fired
  std::string detail;
};

/// Outcome of consulting the injector at a kernel-launch site.
struct LaunchVerdict {
  bool faulted = false;
  FaultKind kind = FaultKind::launch_fail;  ///< valid when faulted
  double charge_us = 0.0;  ///< extra simulated time (watchdog timeout for hangs)
};

/// Outcome of consulting the injector for one link message.  A message can be
/// delayed *and* corrupted; a dropped message is only dropped (nothing
/// arrives, so there is no payload left to corrupt).
struct LinkVerdict {
  bool dropped = false;
  bool corrupted = false;
  bool delayed = false;
  double extra_latency_us = 0.0;  ///< added to the link latency when delayed
  double bw_factor = 1.0;         ///< divides the link bandwidth when delayed
  std::uint64_t corrupt_key = 0;  ///< feed to flip_bit() on the received payload

  [[nodiscard]] bool clean() const { return !dropped && !corrupted && !delayed; }
};

/// Process-wide injector.  Thread-safe like usm::Registry; at most one plan
/// is installed at a time.
class Injector {
 public:
  /// The installed injector, or nullptr when fault injection is off.  This is
  /// the only call on the fault-free fast path.
  [[nodiscard]] static Injector* current();

  static void install(FaultPlan plan);
  static void uninstall();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  // --- consult points (called by minisycl) --------------------------------

  /// True when this allocation must fail; the event is logged.
  [[nodiscard]] bool should_fail_alloc(std::size_t bytes);

  /// Decide the fate of one kernel launch attempt (schedule first, then the
  /// probabilistic draws, priority launch_fail > sticky > hang).
  [[nodiscard]] LaunchVerdict on_kernel_launch(const std::string& name);

  /// Report a completed launch whose *simulated* duration is known; returns a
  /// hang verdict when the duration exceeds the plan's watchdog.
  [[nodiscard]] LaunchVerdict on_kernel_complete(const std::string& name, double duration_us);

  /// Flip one deterministic-random bit inside the registered target regions
  /// when the plan draws a bit_flip for this completed launch.  Returns true
  /// when memory was changed (silently — no error is raised; that is the
  /// point of ECC-like corruption).
  bool maybe_corrupt(const std::string& name);

  /// Decide the fate of one link message at a named exchange site (e.g.
  /// "halo-exchange r0->r1").  Schedule entries win over probabilistic draws;
  /// occurrence counters are per site like kernel launches, so a
  /// `site_filter` can target "the 2nd message on this link" exactly.
  /// Priority when several kinds draw true: drop > corrupt; delay composes
  /// with corrupt but not with drop.
  [[nodiscard]] LinkVerdict on_message(const std::string& site, std::uint64_t bytes);

  /// True when the named device is lost at this consult (one consult per
  /// device per exchange round).  A lost device stays lost for the caller to
  /// handle — the injector only decides the instant of failure.
  [[nodiscard]] bool on_device_check(const std::string& site);

  /// True when the named *node* (a whole NVLink group of devices) is lost at
  /// this consult — the fabric-tier analogue of on_device_check, with its own
  /// draw stream.  Losing a node loses every device in its group at once.
  [[nodiscard]] bool on_node_check(const std::string& site);

  /// True when a serving-tier control-plane step fails at this consult.
  /// Sites follow the `serve/*` grammar (docs/RESILIENCE.md): the admission
  /// queue (`serve/queue …`), the dispatcher (`serve/dispatch …`) and
  /// circuit-breaker probes (`serve/probe …`) each consult once per step,
  /// with their own draw stream so a traffic scenario can storm the control
  /// plane without perturbing kernel or wire draws.
  [[nodiscard]] bool on_serve_check(const std::string& site);

  /// True when a tuning-cache I/O step fails at this consult.  Sites follow
  /// the `tune/*` grammar (docs/TUNING.md): `tune/load <path>` and
  /// `tune/save <path>` each consult once per attempt, with their own draw
  /// stream so cache chaos never perturbs kernel, wire, or serve draws.  A
  /// faulted load falls back to cold tuning — never to a crash.
  [[nodiscard]] bool on_cache_check(const std::string& site);

  /// True when the resource named by `site` *returns to service* at this
  /// consult — the inverse of on_device_check/on_node_check.  Sticky
  /// device_loss/node_loss faults today only clear implicitly (a new attempt
  /// re-consults); heal makes the return an explicit, schedulable event, so
  /// a chaos scenario can kill a device at tick N and bring it back at tick
  /// M.  Sites follow the `heal/*` grammar (docs/RESILIENCE.md):
  /// `heal/device r<k> @ <grid>` from the hardened runner,
  /// `heal/device d<k>` / `heal/node n<j>` from the serve tier.  Occurrence
  /// counters are per site, so `ScheduledFault{heal, index, repeat,
  /// "heal/device r1"}` fires on exactly the index-th consult of that
  /// resource; the dedicated `heal_counter_` draw stream means heal chaos
  /// never perturbs loss, wire, or serve draws (seeded-replay determinism is
  /// tested in tests/test_faultsim.cpp).
  [[nodiscard]] bool on_heal_check(const std::string& site);

  /// Register the byte extents eligible for bit-flip corruption.
  void set_corruption_targets(std::vector<MemRegion> regions);

  // --- observability -------------------------------------------------------

  [[nodiscard]] std::vector<FaultEvent> log() const;
  [[nodiscard]] std::uint64_t injected_total() const;
  [[nodiscard]] std::uint64_t injected(FaultKind k) const;
  /// Log entries appended at or after `mark` (a previous log().size()).
  [[nodiscard]] std::vector<FaultEvent> log_since(std::size_t mark) const;
  void clear_log();

 private:
  explicit Injector(FaultPlan plan) : plan_(std::move(plan)) {}

  [[nodiscard]] double draw(FaultKind kind, std::uint64_t counter) const;
  void record(FaultKind kind, const std::string& site, std::uint64_t occurrence,
              std::string detail);

  FaultPlan plan_;
  std::vector<MemRegion> targets_;
  std::vector<FaultEvent> events_;
  std::uint64_t counts_[kNumFaultKinds] = {};

  std::uint64_t alloc_counter_ = 0;
  std::uint64_t launch_counter_ = 0;   ///< all launch attempts (draw stream)
  std::uint64_t complete_counter_ = 0; ///< completed launches (bit-flip stream)
  std::uint64_t message_counter_ = 0;  ///< all link messages (link draw stream)
  std::uint64_t device_counter_ = 0;   ///< all device-loss consults
  std::uint64_t node_counter_ = 0;     ///< all node-loss consults
  std::uint64_t serve_counter_ = 0;    ///< all serve-tier consults
  std::uint64_t cache_counter_ = 0;    ///< all tuning-cache I/O consults
  std::uint64_t heal_counter_ = 0;     ///< all heal (device-return) consults

  // Per-kernel-site state (keyed by kernel name).
  struct SiteState {
    std::uint64_t launches = 0;          ///< occurrence counter for schedules
    int consecutive_sticky = 0;          ///< clears a sticky burst
  };
  std::vector<std::pair<std::string, SiteState>> sites_;
  [[nodiscard]] SiteState& site_state(const std::string& name);
};

/// RAII install/uninstall, for tests and benches.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultPlan plan) { Injector::install(std::move(plan)); }
  ~ScopedFaultInjection() { Injector::uninstall(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  [[nodiscard]] Injector& injector() const { return *Injector::current(); }
};

}  // namespace faultsim
