// resilient_runner.hpp — a Dslash execution path that degrades gracefully
// under faults instead of crashing.
//
// Wraps DslashRunner with the recovery ladder a production lattice-QCD
// service needs (MILC production runs at cluster scale treat node faults as
// routine — DeTar et al. 2017):
//
//  * bounded retry with exponential backoff for transient faults (launch
//    failures, sticky device faults, watchdog timeouts) — deterministic,
//    charged to the *simulated* recovery clock, never the wall clock;
//  * a strategy fallback ladder (default 3LP-1 → 2LP → 1LP) when one
//    strategy keeps faulting — a mis-generated or resource-hungry kernel
//    must not take the service down when a simpler shape still runs;
//  * ABFT output verification: Dslash is linear (eq. (1)), so a fixed
//    random contraction  s_ref = <r, D·B>  computed once against the golden
//    serial reference detects silent bit-flip corruption of the output for
//    the cost of one O(n) dot product per attempt — recompute on mismatch;
//  * every injected fault the runner observes lands in a structured
//    RecoveryReport with the action taken (retry / fallback / recompute),
//    so chaos tests and the `bench_fig6 --faults` smoke can assert full
//    fault→action coverage.
//
// With no FaultPlan installed the runner is a pass-through: identical
// simulated timings, GFLOP/s and output to DslashRunner (asserted
// bit-for-bit in tests/test_resilient_runner.cpp).
#pragma once

#include <string>
#include <vector>

#include "core/problem.hpp"
#include "core/runner.hpp"
#include "faultsim/faultsim.hpp"

namespace milc {

enum class RecoveryAction {
  retry,        ///< same strategy resubmitted after backoff
  fallback,     ///< strategy abandoned for the next rung of the ladder
  recompute,    ///< ABFT mismatch — output discarded and recomputed
  alloc_retry,  ///< ABFT scratch allocation failed; retried after backoff
  degrade,      ///< ABFT scratch permanently unavailable; host fallback used
  abort,        ///< recovery exhausted (report.succeeded == false)
};

[[nodiscard]] const char* to_string(RecoveryAction a);

/// One recovery decision, paired with the injected faults that provoked it.
struct RecoveryStep {
  RecoveryAction action = RecoveryAction::retry;
  Strategy strategy = Strategy::LP3_1;
  int attempt = 0;            ///< attempt index within that strategy (0-based)
  double backoff_us = 0.0;    ///< simulated backoff charged before the next attempt
  std::string site;           ///< kernel/config label, or "malloc_device"
  std::string detail;
  /// Injector log entries observed during the failed attempt (empty when the
  /// injector is off — e.g. an ABFT mismatch from externally corrupted data).
  std::vector<faultsim::FaultEvent> faults;
};

struct RecoveryReport {
  bool succeeded = false;
  bool abft_checked = false;   ///< an ABFT contraction guarded the accepted output
  Strategy requested = Strategy::LP3_1;
  Strategy final_strategy = Strategy::LP3_1;
  int attempts = 0;            ///< total kernel attempts across all strategies
  double recovery_us = 0.0;    ///< simulated time lost to faults: wasted attempts + backoffs
  std::vector<RecoveryStep> steps;
  RunResult result;            ///< the accepted run (valid when succeeded)

  [[nodiscard]] int count(RecoveryAction a) const;
  [[nodiscard]] std::size_t faults_observed() const;
  /// Multi-line human-readable account of every fault and action.
  [[nodiscard]] std::string summary() const;
};

struct ResilientConfig {
  int max_attempts_per_strategy = 4;  ///< includes the first try
  double backoff_base_us = 100.0;     ///< backoff = base * factor^attempt (simulated)
  double backoff_factor = 2.0;
  bool abft = true;
  std::uint64_t abft_seed = 0x5eed;
  /// |<r,C> - s_ref| <= tol * max(1, |s_ref|) accepts the output.  1e-9
  /// rides above summation-order roundoff between kernel and serial
  /// reference; flips below it are also below every field tolerance used by
  /// the correctness tests (see docs/RESILIENCE.md).
  double abft_rel_tol = 1e-9;
  /// Fallback rungs tried after the requested strategy exhausts its
  /// attempts (the requested strategy is skipped if it reappears here).
  std::vector<Strategy> ladder = {Strategy::LP3_1, Strategy::LP2, Strategy::LP1};
};

class ResilientRunner {
 public:
  explicit ResilientRunner(DslashRunner runner = DslashRunner(),
                           ResilientConfig cfg = ResilientConfig())
      : runner_(runner), cfg_(std::move(cfg)) {}

  [[nodiscard]] const ResilientConfig& config() const { return cfg_; }
  [[nodiscard]] const DslashRunner& runner() const { return runner_; }

  /// Execute one Dslash application resiliently.  On success problem.c()
  /// holds the verified output.  Never throws for injected fault kinds; a
  /// report with succeeded == false means the whole ladder was exhausted.
  [[nodiscard]] RecoveryReport run(DslashProblem& problem, const RunRequest& req) const;

 private:
  DslashRunner runner_;
  ResilientConfig cfg_;
};

}  // namespace milc
