// compressed.hpp — recon-12 gauge compression for the 3LP-1 strategy.
//
// The paper runs QUDA with compression but notes it is "not a current
// feature of our SYCL implementation" (§IV-D3).  This module implements
// that missing feature (extension experiment X2).  Compression interacts
// non-trivially with row-parallelism: the work-item computing row 2 needs
// *both* stored rows to reconstruct its own (row2 = conj(row0 x row1)), so
// a naive per-thread load would read 12 reals where the uncompressed kernel
// reads 6.  Instead, each (site, k) triplet of work-items stages its link's
// 6 stored complex numbers cooperatively in work-group local memory (2 per
// work-item), synchronises, reconstructs, and multiplies — trading extra
// barriers and local-memory traffic for a 1/3 cut in gauge bytes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/dslash_args.hpp"
#include "core/index_orders.hpp"
#include "gpusim/stats.hpp"
#include "ksan/sanitizer.hpp"
#include "lattice/fields.hpp"
#include "minisycl/queue.hpp"
#include "su3/reconstruct.hpp"

namespace milc {

/// recon-12 device gauge: per link family, 6 complex per (site, k) — the
/// first two rows in column-major order ([j][i], i < 2).
class CompressedGaugeDevice {
 public:
  CompressedGaugeDevice() = default;
  explicit CompressedGaugeDevice(const GaugeView& view);

  [[nodiscard]] const dcomplex* family(int l) const {
    return data_[static_cast<std::size_t>(l)].data();
  }
  [[nodiscard]] std::int64_t sites() const { return sites_; }
  /// Element (i, j) with i < 2 of the family-l link at (s, k) — tests.
  [[nodiscard]] const dcomplex& at(int l, std::int64_t s, int k, int i, int j) const {
    return data_[static_cast<std::size_t>(l)]
                [static_cast<std::size_t>(((s * kNdim + k) * kColors + j) * 2 + i)];
  }

 private:
  std::int64_t sites_ = 0;
  std::array<std::vector<dcomplex>, kNlinks> data_{};
};

/// Kernel arguments for the compressed 3LP-1 kernel.
struct CompressedArgs {
  const dcomplex* links[kNlinks] = {nullptr, nullptr, nullptr, nullptr};
  const SU3Vector<dcomplex>* b = nullptr;
  SU3Vector<dcomplex>* c_out = nullptr;
  const std::int32_t* neighbors = nullptr;
  std::int64_t sites = 0;
};

/// 3LP-1 with recon-12 links, k-major order.  Phase layout (9 phases):
///   2m   (m = l):  cooperative stage of link family l into local memory
///   2m+1        :  reconstruct + row product + accumulate partial
///   8           :  k-reduction, k == 0 work-item writes C(i, s)
/// Local memory per work-item: one partial (16 B) + two staged complex
/// (32 B) = 48 B.
struct Dslash3LP1Recon12Kernel {
  static constexpr int kPhases = 9;
  CompressedArgs args;

  static minisycl::KernelTraits traits() {
    return {.name = "3LP-1 recon-12", .regs_per_thread = 40, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int local_size) {
    return local_size * 3 * static_cast<int>(sizeof(dcomplex));
  }

  template <typename Lane>
  void operator()(Lane& lane, int phase) const;
};

/// Convenience wrapper mirroring FloatDslash: owns the compressed gauge,
/// applies / profiles the kernel.
class CompressedDslash {
 public:
  CompressedDslash(const GaugeView& view, const NeighborTable& nbr);

  void apply(const ColorField& in, ColorField& out, int local_size = 96) const;

  [[nodiscard]] gpusim::KernelStats profile(const ColorField& in, ColorField& out,
                                            int local_size,
                                            gpusim::MachineModel machine = gpusim::a100(),
                                            gpusim::Calibration cal =
                                                gpusim::default_calibration()) const;

  /// Replay the kernel under ksan with the compressed gauge extents declared.
  [[nodiscard]] ksan::SanitizerReport sanitize(const ColorField& in, ColorField& out,
                                               int local_size = 96,
                                               ksan::SanitizeConfig cfg = {}) const;

  [[nodiscard]] std::int64_t sites() const { return gauge_.sites(); }

 private:
  CompressedArgs make_args(const ColorField& in, ColorField& out) const;
  CompressedGaugeDevice gauge_;
  const NeighborTable* nbr_;
};

// ---------------------------------------------------------------------------
// kernel body
// ---------------------------------------------------------------------------

template <typename Lane>
void Dslash3LP1Recon12Kernel::operator()(Lane& lane, int phase) const {
  using T = complex_traits<dcomplex>;
  const Idx3 id = decode3<Order3::kMajor>(lane.global_id());
  const int lid = lane.local_id();
  const int stage_base = lane.local_range() + 2 * lid;      // staging slots (in dcomplex)
  const int trip_stage = lane.local_range() + 2 * (lid - id.i);  // triplet's 6 slots

  if (phase == 8) {
    // k-reduction, as in the uncompressed 3LP-1 (predicated guard).
    const bool head = id.k == 0;
    const int base = lid - id.k * id.delta_k;
    lane.set_masked(!head);
    dcomplex sum = lane.template shared_load<dcomplex>(base);
    for (int k = 1; k < kNdim; ++k) {
      sum += lane.template shared_load<dcomplex>(base + k * id.delta_k);
    }
    lane.flops(6);
    lane.store(&args.c_out[id.s].c[id.i], sum);
    lane.set_masked(false);
    return;
  }

  const int l = phase / 2;
  if (phase % 2 == 0) {
    // Stage this work-item's 2 of the triplet's 6 stored complex numbers.
    const dcomplex* base = args.links[l] + (id.s * kNdim + id.k) * 6;
    lane.template shared_store<dcomplex>(stage_base + 0, lane.load(&base[2 * id.i + 0]));
    lane.template shared_store<dcomplex>(stage_base + 1, lane.load(&base[2 * id.i + 1]));
    if (l == 0) {
      // First pass also zeroes the partial accumulator (phase-uniform, so
      // warp event streams stay aligned).
      lane.template shared_store<dcomplex>(lid, T::make(0.0, 0.0));
    }
    return;
  }

  // Consume: read the staged rows (uniformly across the triplet), rebuild
  // the third row, and accumulate this work-item's row product.
  dcomplex u0[kColors];  // row 0
  dcomplex u1[kColors];  // row 1
  for (int j = 0; j < kColors; ++j) {
    u0[j] = lane.template shared_load<dcomplex>(trip_stage + 2 * j + 0);
    u1[j] = lane.template shared_load<dcomplex>(trip_stage + 2 * j + 1);
  }
  // row2 = conj(row0 x row1): computed by every lane to keep the warp
  // uniform (hardware would predicate it onto the i == 2 lanes).
  dcomplex u2[kColors];
  u2[0] = cconj(cmul(u0[1], u1[2]) - cmul(u0[2], u1[1]));
  u2[1] = cconj(cmul(u0[2], u1[0]) - cmul(u0[0], u1[2]));
  u2[2] = cconj(cmul(u0[0], u1[1]) - cmul(u0[1], u1[0]));
  lane.flops(static_cast<int>(reconstruct_flops(Reconstruct::k12)));

  const dcomplex* row = id.i == 0 ? u0 : (id.i == 1 ? u1 : u2);
  const std::int32_t n = device::load_neighbor(lane, args.neighbors, id.s, id.k, l);
  dcomplex v = T::make(0.0, 0.0);
  for (int j = 0; j < kColors; ++j) {
    const dcomplex bj = lane.load(&args.b[n].c[j]);
    T::mac(v, row[j], bj);
  }
  lane.flops(22);

  const double sign = kStencilSigns[static_cast<std::size_t>(l)];
  dcomplex acc = lane.template shared_load<dcomplex>(lid);
  acc += T::make(sign * T::real(v), sign * T::imag(v));
  lane.flops(2);
  lane.template shared_store<dcomplex>(lid, acc);
}

}  // namespace milc
