// dslash_args.hpp — kernel-facing argument block and the shared inner math
// of the MILC-Dslash stencil (eq. (1) of the paper).
//
// All strategy kernels operate on the same raw pointers; the Lane policy
// (FastLane/TraceLane) decides whether accesses are merely performed or also
// traced.  FLOP accounting matches the paper's convention: 66 FLOP per
// SU(3) matrix-vector product (22 per row) plus 6 FLOP per complex-triplet
// accumulation, i.e. 1146 FLOP per target site and 600.8 MFLOP for L = 32.
#pragma once

#include <cstdint>

#include "complexlib/complex_traits.hpp"
#include "lattice/geometry.hpp"
#include "su3/su3_matrix.hpp"
#include "su3/su3_vector.hpp"

namespace milc {

/// FLOPs per target site under the paper's counting.
inline constexpr double kFlopsPerSite = 16.0 * 66.0 + 15.0 * 6.0;  // = 1146

/// Theoretical FLOPs of one Dslash application on a lattice with
/// `half_volume` target sites (the paper's "600.8 million FLOP" for L = 32).
[[nodiscard]] constexpr double dslash_flops(std::int64_t half_volume) {
  return kFlopsPerSite * static_cast<double>(half_volume);
}

/// Raw device-pointer view of one Dslash application C = Dslash x B.
///
/// Gauge layout: links[l] is a flat complex array of [site][k][j][i] —
/// matrices stored *column-major* so that work-items with consecutive row
/// index i read adjacent 16-byte elements ("a constant gap of two 8-byte
/// words between two adjacent work-items", paper §IV-D7).  This is the
/// layout that makes the k-major index order coalesce.
/// `neighbors` is [site*16 + k*4 + l].
template <ComplexScalar C>
struct DslashArgs {
  const C* links[kNlinks] = {nullptr, nullptr, nullptr, nullptr};
  const SU3Vector<C>* b = nullptr;
  SU3Vector<C>* c_out = nullptr;
  const std::int32_t* neighbors = nullptr;
  std::int64_t sites = 0;

  /// Element (row i, col j) of the link-family-l matrix at (site, k).
  [[nodiscard]] const C* link_elem(int l, std::int64_t site, int k, int i, int j) const {
    return links[l] + ((site * kNdim + k) * kColors + j) * kColors + i;
  }
};

namespace device {

/// One row of U * B: loads three matrix elements and three source components
/// through the lane (the paper's j-loop) and returns the complex row sum.
/// 22 FLOP per the paper's counting.
template <typename Lane, ComplexScalar C>
[[nodiscard]] inline C row_dot(Lane& lane, const DslashArgs<C>& args, int l,
                               std::int64_t site, int k, int row, const SU3Vector<C>* bvec) {
  using T = complex_traits<C>;
  C acc = T::make(0.0, 0.0);
  for (int j = 0; j < kColors; ++j) {
    const C uij = lane.load(args.link_elem(l, site, k, row, j));
    const C bj = lane.load(&bvec->c[j]);
    T::mac(acc, uij, bj);
  }
  lane.flops(22);
  return acc;
}

/// acc += sign * v (6 FLOP per the paper's counting: one complex-triplet
/// accumulation contributes 2 FLOP per colour, emitted at the row level).
template <typename Lane, ComplexScalar C>
inline void accumulate_signed(Lane& lane, C& acc, double sign, const C& v) {
  using T = complex_traits<C>;
  acc += T::make(sign * T::real(v), sign * T::imag(v));
  lane.flops(2);
}

/// Load the gather index for (site, dim k, link l).
template <typename Lane>
[[nodiscard]] inline std::int32_t load_neighbor(Lane& lane, const std::int32_t* neighbors,
                                                std::int64_t site, int k, int l) {
  return lane.load(&neighbors[site * kNeighbors + k * kNlinks + l]);
}

}  // namespace device
}  // namespace milc
