#include "core/precision.hpp"

#include "core/kernels_3lp.hpp"

namespace milc {

FloatColorField::FloatColorField(const ColorField& f)
    : parity_(f.parity()), data_(static_cast<std::size_t>(f.size())) {
  for (std::int64_t s = 0; s < f.size(); ++s) {
    for (int i = 0; i < kColors; ++i) {
      data_[static_cast<std::size_t>(s)].c[i] = scomplex(f[s].c[i]);
    }
  }
}

void FloatColorField::zero() {
  std::fill(data_.begin(), data_.end(), SU3Vector<scomplex>{});
}

ColorField FloatColorField::to_double(const LatticeGeom& geom) const {
  ColorField f(geom, parity_);
  for (std::int64_t s = 0; s < size(); ++s) {
    for (int i = 0; i < kColors; ++i) {
      f[s].c[i] = data_[static_cast<std::size_t>(s)].c[i].to_double();
    }
  }
  return f;
}

double norm2(const FloatColorField& v) {
  double acc = 0.0;
  for (std::int64_t s = 0; s < v.size(); ++s) {
    for (int i = 0; i < kColors; ++i) {
      const scomplex& z = v[s].c[i];
      acc += static_cast<double>(z.re) * z.re + static_cast<double>(z.im) * z.im;
    }
  }
  return acc;
}

dcomplex dot(const FloatColorField& a, const FloatColorField& b) {
  dcomplex acc{0.0, 0.0};
  for (std::int64_t s = 0; s < a.size(); ++s) {
    for (int i = 0; i < kColors; ++i) {
      const dcomplex x = a[s].c[i].to_double();
      const dcomplex y = b[s].c[i].to_double();
      cmac_conj(acc, x, y);
    }
  }
  return acc;
}

void axpy(double alpha, const FloatColorField& x, FloatColorField& y) {
  const float a = static_cast<float>(alpha);
  for (std::int64_t s = 0; s < x.size(); ++s) {
    for (int i = 0; i < kColors; ++i) {
      y[s].c[i].re += a * x[s].c[i].re;
      y[s].c[i].im += a * x[s].c[i].im;
    }
  }
}

void xpay(const FloatColorField& x, double alpha, FloatColorField& y) {
  const float a = static_cast<float>(alpha);
  for (std::int64_t s = 0; s < x.size(); ++s) {
    for (int i = 0; i < kColors; ++i) {
      y[s].c[i].re = x[s].c[i].re + a * y[s].c[i].re;
      y[s].c[i].im = x[s].c[i].im + a * y[s].c[i].im;
    }
  }
}

FloatGaugeDevice::FloatGaugeDevice(const DeviceGaugeLayout& g) : sites_(g.sites()) {
  for (int l = 0; l < kNlinks; ++l) {
    auto& fam = data_[static_cast<std::size_t>(l)];
    fam.resize(static_cast<std::size_t>(sites_ * kNdim * kColors * kColors));
    for (std::int64_t s = 0; s < sites_; ++s) {
      for (int k = 0; k < kNdim; ++k) {
        for (int j = 0; j < kColors; ++j) {
          for (int i = 0; i < kColors; ++i) {
            fam[static_cast<std::size_t>(((s * kNdim + k) * kColors + j) * kColors + i)] =
                scomplex(g.at(l, s, k, i, j));
          }
        }
      }
    }
  }
}

FloatDslash::FloatDslash(const DeviceGaugeLayout& gauge, const NeighborTable& nbr)
    : gauge_(gauge), nbr_(&nbr) {}

DslashArgs<scomplex> FloatDslash::make_args(const FloatColorField& in,
                                            FloatColorField& out) const {
  DslashArgs<scomplex> args;
  for (int l = 0; l < kNlinks; ++l) args.links[l] = gauge_.family(l);
  args.b = in.data();
  args.c_out = out.data();
  args.neighbors = nbr_->data();
  args.sites = gauge_.sites();
  return args;
}

void FloatDslash::apply(const FloatColorField& in, FloatColorField& out,
                        int local_size) const {
  using Kernel = Dslash3LP1Kernel<Order3::kMajor, scomplex>;
  Kernel kernel{make_args(in, out)};
  minisycl::queue q(minisycl::ExecMode::functional, minisycl::QueueOrder::in_order);
  minisycl::LaunchSpec spec;
  spec.global_size = sites() * 12;
  spec.local_size = local_size;
  spec.shared_bytes = Kernel::shared_bytes(local_size);
  spec.num_phases = Kernel::kPhases;
  spec.traits = Kernel::traits();
  spec.traits.name = "3LP-1 float";
  q.submit(spec, kernel);
}

gpusim::KernelStats FloatDslash::profile(const FloatColorField& in, FloatColorField& out,
                                         int local_size, gpusim::MachineModel machine,
                                         gpusim::Calibration cal) const {
  using Kernel = Dslash3LP1Kernel<Order3::kMajor, scomplex>;
  Kernel kernel{make_args(in, out)};
  minisycl::queue q(minisycl::ExecMode::profiled, minisycl::QueueOrder::in_order, machine,
                    cal);
  minisycl::LaunchSpec spec;
  spec.global_size = sites() * 12;
  spec.local_size = local_size;
  spec.shared_bytes = Kernel::shared_bytes(local_size);
  spec.num_phases = Kernel::kPhases;
  spec.traits = Kernel::traits();
  spec.traits.name = "3LP-1 float";
  return q.submit(spec, kernel, "3LP-1 float /" + std::to_string(local_size));
}

}  // namespace milc
