// kernels_4lp.hpp — Four-loop Parallelism (paper §III-D).
//
// Forty-eight work-items per target site (s, i, k, l): every work-item
// computes exactly one row product of one link family.  The l-dispatch is a
// divergent if/else chain ("all warp threads take the path through the
// conditional branches, one branch at a time"), and two barriers separate the
// compute, l-reduction and k-reduction stages.  4LP-1 and 4LP-2 differ only
// in the work-item index order (Order4), which changes both memory
// coalescing and the distribution of active work-items inside a warp
// (§IV-D8).
#pragma once

#include "core/dslash_args.hpp"
#include "core/index_orders.hpp"
#include "minisycl/traits.hpp"

namespace milc {

template <Order4 O, ComplexScalar C = dcomplex>
struct Dslash4LPKernel {
  static constexpr int kPhases = 3;
  DslashArgs<C> args;

  static minisycl::KernelTraits traits() {
    const char* name = "4LP";
    if constexpr (O == Order4::lp1_kMajor) name = "4LP-1(k)";
    if constexpr (O == Order4::lp1_iMajor) name = "4LP-1(i)";
    if constexpr (O == Order4::lp2_lMajor) name = "4LP-2(l)";
    if constexpr (O == Order4::lp2_iMajor) name = "4LP-2(i)";
    return {.name = name, .regs_per_thread = 40, .codegen_slowdown = 1.0};
  }
  static int shared_bytes(int local_size) { return local_size * static_cast<int>(sizeof(C)); }

  template <typename Lane>
  void operator()(Lane& lane, int phase) const {
    using T = complex_traits<C>;
    const Idx4 id = decode4<O>(lane.global_id());
    const int lid = lane.local_id();

    if (phase == 0) {
      // Divergent l-dispatch: the kernel tests the arms one by one
      // ("if (l == 0) ... else if (l == 1) ...", paper §III-D), so every
      // arm test is a branch instruction that diverges whenever the warp
      // holds a mix of matching and non-matching work-items — this is what
      // produces Table I's per-order divergence counts.  Each arm performs
      // the same shaped work (one neighbour gather + one row product) on
      // its own link family, so the event streams stay positionally
      // aligned while the divergence paths split the warp into per-l
      // instruction groups.
      for (int arm = 0; arm < kNmat; ++arm) lane.branch_test(id.l == arm);
      lane.set_path(id.l);
      const std::int32_t n = device::load_neighbor(lane, args.neighbors, id.s, id.k, id.l);
      const C v = device::row_dot(lane, args, id.l, id.s, id.k, id.i, &args.b[n]);
      const double sign = kStencilSigns[static_cast<std::size_t>(id.l)];
      const C w = T::make(sign * T::real(v), sign * T::imag(v));
      lane.flops(2);
      lane.template shared_store<C>(lid, w);
      lane.converge();
      return;
    }

    if (phase == 1) {
      // First barrier passed: l == 0 work-items fold the four l-partials
      // (single-sided guard: predicated, not a divergent branch).
      const bool head = id.l == 0;
      const int base = lid - id.l * id.delta_l;
      lane.set_masked(!head);
      C sum = lane.template shared_load<C>(base);
      for (int l = 1; l < kNmat; ++l) {
        sum += lane.template shared_load<C>(base + l * id.delta_l);
      }
      lane.flops(6);
      lane.template shared_store<C>(base, sum);
      lane.set_masked(false);
      return;
    }

    // Second barrier passed: the l == 0 && k == 0 work-item folds the four
    // k-partials and writes C(i, s).
    const bool head = id.l == 0 && id.k == 0;
    const int base = lid - id.l * id.delta_l - id.k * id.delta_k;
    lane.set_masked(!head);
    C sum = lane.template shared_load<C>(base);
    for (int k = 1; k < kNdim; ++k) {
      sum += lane.template shared_load<C>(base + k * id.delta_k);
    }
    lane.flops(6);
    lane.store(&args.c_out[id.s].c[id.i], sum);
    lane.set_masked(false);
  }
};

}  // namespace milc
