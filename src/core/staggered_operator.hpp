// staggered_operator.hpp — the full even/odd staggered Dirac operator and
// its even-odd-preconditioned normal form, packaged as library surface.
//
// The Dslash kernels answer "how fast can one hop application run"; a
// downstream user wants the operator MILC actually inverts:
//
//     M = m I + D      (D: the 16-point hopping term, parity-off-diagonal)
//     A = m^2 I - D_eo D_oe   (Hermitian positive definite on even sites)
//
// This class owns both parities' gathered gauge data and neighbour tables
// and applies D / A through the 3LP-1 kernel (functional mode).
#pragma once

#include <cstdint>
#include <memory>

#include "core/dslash_args.hpp"
#include "lattice/fields.hpp"

namespace milc {

class StaggeredOperator {
 public:
  /// Builds both parity views from a gauge configuration.
  StaggeredOperator(const LatticeGeom& geom, const GaugeConfiguration& cfg, double mass);

  [[nodiscard]] const LatticeGeom& geom() const { return *geom_; }
  [[nodiscard]] double mass() const { return mass_; }

  /// out(even) = D_eo in(odd)
  void dslash_eo(const ColorField& in, ColorField& out) const;
  /// out(odd) = D_oe in(even)
  void dslash_oe(const ColorField& in, ColorField& out) const;

  /// out = (m^2 I - D_eo D_oe) in, both fields even.  Hermitian positive
  /// definite: <x, A x> = m^2 |x|^2 + |D_oe x|^2.
  void apply_normal(const ColorField& in, ColorField& out) const;

  /// Full unpreconditioned operator on a parity pair:
  /// (out_e, out_o) = (m in_e + D_eo in_o, m in_o + D_oe in_e).
  void apply_full(const ColorField& in_e, const ColorField& in_o, ColorField& out_e,
                  ColorField& out_o) const;

 private:
  void apply_half(Parity target, const ColorField& in, ColorField& out) const;

  const LatticeGeom* geom_;
  double mass_;
  GaugeView view_e_, view_o_;
  DeviceGaugeLayout dev_e_, dev_o_;
  NeighborTable nbr_e_, nbr_o_;
  mutable ColorField tmp_odd_;  // scratch for apply_normal
};

}  // namespace milc
