#include "core/staggered_operator.hpp"

#include <cassert>

#include "core/dslash_ref.hpp"
#include "core/kernels_3lp.hpp"
#include "minisycl/queue.hpp"

namespace milc {

StaggeredOperator::StaggeredOperator(const LatticeGeom& geom, const GaugeConfiguration& cfg,
                                     double mass)
    : geom_(&geom),
      mass_(mass),
      view_e_(geom, cfg, Parity::Even),
      view_o_(geom, cfg, Parity::Odd),
      dev_e_(view_e_),
      dev_o_(view_o_),
      nbr_e_(geom, Parity::Even),
      nbr_o_(geom, Parity::Odd),
      tmp_odd_(geom, Parity::Odd) {}

void StaggeredOperator::apply_half(Parity target, const ColorField& in, ColorField& out) const {
  assert(out.parity() == target && in.parity() == opposite(target));
  const DeviceGaugeLayout& dev = target == Parity::Even ? dev_e_ : dev_o_;
  const NeighborTable& nbr = target == Parity::Even ? nbr_e_ : nbr_o_;
  const DslashArgs<dcomplex> args = make_dslash_args(dev, nbr, in, out);
  using Kernel = Dslash3LP1Kernel<Order3::kMajor>;
  Kernel kernel{args};
  minisycl::queue q(minisycl::ExecMode::functional, minisycl::QueueOrder::in_order);
  minisycl::LaunchSpec spec;
  spec.global_size = args.sites * 12;
  spec.local_size = 96;
  spec.shared_bytes = Kernel::shared_bytes(96);
  spec.num_phases = Kernel::kPhases;
  spec.traits = Kernel::traits();
  q.submit(spec, kernel);
}

void StaggeredOperator::dslash_eo(const ColorField& in, ColorField& out) const {
  apply_half(Parity::Even, in, out);
}

void StaggeredOperator::dslash_oe(const ColorField& in, ColorField& out) const {
  apply_half(Parity::Odd, in, out);
}

void StaggeredOperator::apply_normal(const ColorField& in, ColorField& out) const {
  dslash_oe(in, tmp_odd_);
  dslash_eo(tmp_odd_, out);
  scale(-1.0, out);
  axpy(mass_ * mass_, in, out);
}

void StaggeredOperator::apply_full(const ColorField& in_e, const ColorField& in_o,
                                   ColorField& out_e, ColorField& out_o) const {
  // out_e = m in_e + D_eo in_o
  dslash_eo(in_o, out_e);
  axpy(mass_, in_e, out_e);
  // out_o = m in_o + D_oe in_e
  dslash_oe(in_e, out_o);
  axpy(mass_, in_o, out_o);
}

}  // namespace milc
