#include "core/runner.hpp"

#include <stdexcept>
#include <type_traits>
#include <utility>

#include "core/kernels_1lp.hpp"
#include "core/kernels_2lp.hpp"
#include "core/kernels_3lp.hpp"
#include "core/kernels_4lp.hpp"

namespace milc {

namespace {

using CplxC = syclcplx::complex<double>;

static_assert(sizeof(CplxC) == sizeof(dcomplex) && alignof(CplxC) == alignof(dcomplex),
              "SyclCPLX complex must be layout-compatible with dcomplex so fields can be "
              "shared between variants");

/// Reinterpret the argument block for the SyclCPLX-typed kernels.  Both
/// complex types are trivially-copyable pairs of doubles and every kernel
/// access goes through Lane::load/store (memcpy semantics), so this is
/// well-defined.
DslashArgs<CplxC> to_cplx(const DslashArgs<dcomplex>& a) {
  DslashArgs<CplxC> r;
  for (int l = 0; l < kNlinks; ++l) {
    r.links[l] = reinterpret_cast<const CplxC*>(a.links[l]);
  }
  r.b = reinterpret_cast<const SU3Vector<CplxC>*>(a.b);
  r.c_out = reinterpret_cast<SU3Vector<CplxC>*>(a.c_out);
  r.neighbors = a.neighbors;
  r.sites = a.sites;
  return r;
}

template <typename Kernel>
gpusim::KernelStats submit(minisycl::queue& q, const Kernel& kernel, std::int64_t sites,
                           int items, int local_size, const VariantInfo* vi,
                           std::string name) {
  minisycl::LaunchSpec spec;
  spec.global_size = sites * items;
  spec.local_size = local_size;
  spec.shared_bytes = Kernel::shared_bytes(local_size);
  spec.num_phases = Kernel::kPhases;
  spec.traits = Kernel::traits();
  if (vi != nullptr) spec.traits.codegen_slowdown = vi->codegen_slowdown;
  if (name.empty()) name = spec.traits.name;
  return q.submit(spec, kernel, std::move(name));
}

/// Instantiate the kernel selected by (strategy, order, complex type) and
/// hand it to `fn` — the one switch all launch modes (profiled, functional,
/// sanitized) share, so every mode runs the identical kernel object.  The
/// SyclCPLX variant exists for 3LP-1 only, matching the paper.
template <typename Fn>
auto with_kernel(DslashProblem& p, Strategy s, IndexOrder o, int local_size, bool use_syclcplx,
                 Fn&& fn) {
  if (!is_valid_local_size(s, o, local_size, p.sites())) {
    throw std::invalid_argument("invalid local size " + std::to_string(local_size) + " for " +
                                config_label(s, o, local_size));
  }
  const DslashArgs<dcomplex> a = p.args();

  if (use_syclcplx) {
    if (s != Strategy::LP3_1) {
      throw std::invalid_argument("the SyclCPLX variant exists for 3LP-1 only (paper IV-C)");
    }
    const DslashArgs<CplxC> ac = to_cplx(a);
    if (o == IndexOrder::kMajor) {
      return fn(Dslash3LP1Kernel<Order3::kMajor, CplxC>{.args = ac});
    }
    return fn(Dslash3LP1Kernel<Order3::iMajor, CplxC>{.args = ac});
  }

  switch (s) {
    case Strategy::LP1:
      return fn(Dslash1LPKernel<dcomplex>{.args = a});
    case Strategy::LP2:
      return fn(Dslash2LPKernel<dcomplex>{.args = a});
    case Strategy::LP3_1:
      if (o == IndexOrder::kMajor) return fn(Dslash3LP1Kernel<Order3::kMajor>{.args = a});
      return fn(Dslash3LP1Kernel<Order3::iMajor>{.args = a});
    case Strategy::LP3_2:
      if (o == IndexOrder::kMajor) return fn(Dslash3LP2Kernel<Order3::kMajor>{.args = a});
      return fn(Dslash3LP2Kernel<Order3::iMajor>{.args = a});
    case Strategy::LP3_3:
      if (o == IndexOrder::kMajor) return fn(Dslash3LP3Kernel<Order3::kMajor>{.args = a});
      return fn(Dslash3LP3Kernel<Order3::iMajor>{.args = a});
    case Strategy::LP4_1:
      if (o == IndexOrder::kMajor) return fn(Dslash4LPKernel<Order4::lp1_kMajor>{.args = a});
      return fn(Dslash4LPKernel<Order4::lp1_iMajor>{.args = a});
    case Strategy::LP4_2:
      if (o == IndexOrder::lMajor) return fn(Dslash4LPKernel<Order4::lp2_lMajor>{.args = a});
      return fn(Dslash4LPKernel<Order4::lp2_iMajor>{.args = a});
  }
  throw std::logic_error("unknown strategy");
}

gpusim::KernelStats dispatch(minisycl::queue& q, DslashProblem& p, Strategy s, IndexOrder o,
                             int local_size, bool use_syclcplx, const VariantInfo* vi,
                             const std::string& name) {
  const std::int64_t n = p.sites();
  const int items = items_per_site(s);
  return with_kernel(p, s, o, local_size, use_syclcplx, [&](const auto& kernel) {
    return submit(q, kernel, n, items, local_size, vi, name);
  });
}

}  // namespace

void declare_dslash_regions(const DslashArgs<dcomplex>& a, ksan::SanitizeConfig& cfg) {
  const auto n = static_cast<std::size_t>(a.sites);
  for (int l = 0; l < kNlinks; ++l) {
    cfg.regions.push_back(ksan::region_of(a.links[l], n * kNdim * kColors * kColors));
  }
  cfg.regions.push_back(ksan::region_of(a.b, n));
  cfg.regions.push_back(ksan::region_of(a.c_out, n));
  cfg.regions.push_back(ksan::region_of(a.neighbors, n * kNeighbors));
}

RunResult DslashRunner::run(DslashProblem& problem, const RunRequest& req) const {
  const VariantInfo& vi = variant_info(req.variant);
  minisycl::queue q(minisycl::ExecMode::profiled, vi.queue_order, machine_, cal_);
  return run_on(q, problem, req);
}

RunResult DslashRunner::run_on(minisycl::queue& q, DslashProblem& problem,
                               const RunRequest& req) const {
  const VariantInfo& vi = variant_info(req.variant);

  std::string name = config_label(req.strategy, req.order, req.local_size);
  if (req.variant != Variant::SYCL) {
    name += " [";
    name += vi.name;
    name += ']';
  }

  RunResult res;
  res.stats = dispatch(q, problem, req.strategy, req.order, req.local_size, vi.use_syclcplx,
                       &vi, name);
  res.label = std::move(name);
  res.kernel_us = res.stats.duration_us;
  res.per_iter_us = res.stats.duration_us + q.launch_overhead_us();
  res.gflops = problem.flops() / (res.per_iter_us * 1e-6) / 1e9;
  return res;
}

void DslashRunner::run_functional(DslashProblem& problem, Strategy s, IndexOrder o,
                                  int local_size, bool use_syclcplx) const {
  minisycl::queue q(minisycl::ExecMode::functional, minisycl::QueueOrder::in_order, machine_,
                    cal_);
  dispatch(q, problem, s, o, local_size, use_syclcplx, nullptr, {});
}

ksan::SanitizerReport DslashRunner::sanitize(DslashProblem& problem, Strategy s, IndexOrder o,
                                             int local_size, bool use_syclcplx,
                                             ksan::SanitizeConfig cfg) const {
  declare_dslash_regions(problem.args(), cfg);
  const std::int64_t n = problem.sites();
  const int items = items_per_site(s);
  return with_kernel(problem, s, o, local_size, use_syclcplx, [&](const auto& kernel) {
    using K = std::decay_t<decltype(kernel)>;
    minisycl::LaunchSpec spec;
    spec.global_size = n * items;
    spec.local_size = local_size;
    spec.shared_bytes = K::shared_bytes(local_size);
    spec.num_phases = K::kPhases;
    spec.traits = K::traits();
    return ksan::sanitize_launch(spec, kernel, std::move(cfg),
                                 config_label(s, o, local_size));
  });
}

}  // namespace milc
