#include "core/runner.hpp"

#include <stdexcept>
#include <utility>

#include "core/kernels_1lp.hpp"
#include "core/kernels_2lp.hpp"
#include "core/kernels_3lp.hpp"
#include "core/kernels_4lp.hpp"

namespace milc {

namespace {

using CplxC = syclcplx::complex<double>;

static_assert(sizeof(CplxC) == sizeof(dcomplex) && alignof(CplxC) == alignof(dcomplex),
              "SyclCPLX complex must be layout-compatible with dcomplex so fields can be "
              "shared between variants");

/// Reinterpret the argument block for the SyclCPLX-typed kernels.  Both
/// complex types are trivially-copyable pairs of doubles and every kernel
/// access goes through Lane::load/store (memcpy semantics), so this is
/// well-defined.
DslashArgs<CplxC> to_cplx(const DslashArgs<dcomplex>& a) {
  DslashArgs<CplxC> r;
  for (int l = 0; l < kNlinks; ++l) {
    r.links[l] = reinterpret_cast<const CplxC*>(a.links[l]);
  }
  r.b = reinterpret_cast<const SU3Vector<CplxC>*>(a.b);
  r.c_out = reinterpret_cast<SU3Vector<CplxC>*>(a.c_out);
  r.neighbors = a.neighbors;
  r.sites = a.sites;
  return r;
}

template <typename Kernel>
gpusim::KernelStats submit(minisycl::queue& q, const Kernel& kernel, std::int64_t sites,
                           int items, int local_size, const VariantInfo* vi,
                           std::string name) {
  minisycl::LaunchSpec spec;
  spec.global_size = sites * items;
  spec.local_size = local_size;
  spec.shared_bytes = Kernel::shared_bytes(local_size);
  spec.num_phases = Kernel::kPhases;
  spec.traits = Kernel::traits();
  if (vi != nullptr) spec.traits.codegen_slowdown = vi->codegen_slowdown;
  if (name.empty()) name = spec.traits.name;
  return q.submit(spec, kernel, std::move(name));
}

/// Instantiate and submit the kernel selected by (strategy, order, complex
/// type).  The SyclCPLX variant exists for 3LP-1 only, matching the paper.
gpusim::KernelStats dispatch(minisycl::queue& q, DslashProblem& p, Strategy s, IndexOrder o,
                             int local_size, bool use_syclcplx, const VariantInfo* vi,
                             const std::string& name) {
  if (!is_valid_local_size(s, o, local_size, p.sites())) {
    throw std::invalid_argument("invalid local size " + std::to_string(local_size) + " for " +
                                config_label(s, o, local_size));
  }
  const DslashArgs<dcomplex> a = p.args();
  const std::int64_t n = p.sites();
  const int items = items_per_site(s);

  if (use_syclcplx) {
    if (s != Strategy::LP3_1) {
      throw std::invalid_argument("the SyclCPLX variant exists for 3LP-1 only (paper IV-C)");
    }
    const DslashArgs<CplxC> ac = to_cplx(a);
    if (o == IndexOrder::kMajor) {
      return submit(q, Dslash3LP1Kernel<Order3::kMajor, CplxC>{.args = ac}, n, items,
                    local_size, vi, name);
    }
    return submit(q, Dslash3LP1Kernel<Order3::iMajor, CplxC>{.args = ac}, n, items, local_size,
                  vi, name);
  }

  switch (s) {
    case Strategy::LP1:
      return submit(q, Dslash1LPKernel<dcomplex>{.args = a}, n, items, local_size, vi, name);
    case Strategy::LP2:
      return submit(q, Dslash2LPKernel<dcomplex>{.args = a}, n, items, local_size, vi, name);
    case Strategy::LP3_1:
      if (o == IndexOrder::kMajor) {
        return submit(q, Dslash3LP1Kernel<Order3::kMajor>{.args = a}, n, items, local_size, vi,
                      name);
      }
      return submit(q, Dslash3LP1Kernel<Order3::iMajor>{.args = a}, n, items, local_size, vi,
                    name);
    case Strategy::LP3_2:
      if (o == IndexOrder::kMajor) {
        return submit(q, Dslash3LP2Kernel<Order3::kMajor>{.args = a}, n, items, local_size, vi,
                      name);
      }
      return submit(q, Dslash3LP2Kernel<Order3::iMajor>{.args = a}, n, items, local_size, vi,
                    name);
    case Strategy::LP3_3:
      if (o == IndexOrder::kMajor) {
        return submit(q, Dslash3LP3Kernel<Order3::kMajor>{.args = a}, n, items, local_size, vi,
                      name);
      }
      return submit(q, Dslash3LP3Kernel<Order3::iMajor>{.args = a}, n, items, local_size, vi,
                    name);
    case Strategy::LP4_1:
      if (o == IndexOrder::kMajor) {
        return submit(q, Dslash4LPKernel<Order4::lp1_kMajor>{.args = a}, n, items, local_size,
                      vi, name);
      }
      return submit(q, Dslash4LPKernel<Order4::lp1_iMajor>{.args = a}, n, items, local_size,
                    vi, name);
    case Strategy::LP4_2:
      if (o == IndexOrder::lMajor) {
        return submit(q, Dslash4LPKernel<Order4::lp2_lMajor>{.args = a}, n, items, local_size,
                      vi, name);
      }
      return submit(q, Dslash4LPKernel<Order4::lp2_iMajor>{.args = a}, n, items, local_size,
                    vi, name);
  }
  throw std::logic_error("unknown strategy");
}

}  // namespace

RunResult DslashRunner::run(DslashProblem& problem, const RunRequest& req) const {
  const VariantInfo& vi = variant_info(req.variant);
  minisycl::queue q(minisycl::ExecMode::profiled, vi.queue_order, machine_, cal_);

  std::string name = config_label(req.strategy, req.order, req.local_size);
  if (req.variant != Variant::SYCL) {
    name += " [";
    name += vi.name;
    name += ']';
  }

  RunResult res;
  res.stats = dispatch(q, problem, req.strategy, req.order, req.local_size, vi.use_syclcplx,
                       &vi, name);
  res.label = std::move(name);
  res.kernel_us = res.stats.duration_us;
  res.per_iter_us = res.stats.duration_us + q.launch_overhead_us();
  res.gflops = problem.flops() / (res.per_iter_us * 1e-6) / 1e9;
  return res;
}

void DslashRunner::run_functional(DslashProblem& problem, Strategy s, IndexOrder o,
                                  int local_size, bool use_syclcplx) const {
  minisycl::queue q(minisycl::ExecMode::functional, minisycl::QueueOrder::in_order, machine_,
                    cal_);
  dispatch(q, problem, s, o, local_size, use_syclcplx, nullptr, {});
}

}  // namespace milc
