#include "core/runner.hpp"

#include <map>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "core/dispatch.hpp"

namespace milc {

namespace {

/// The launch's buffers in a fixed order (mirrors declare_dslash_regions),
/// for the profiler's canonical address map: timing becomes a pure function
/// of the launch, independent of where the heap put the fields — the
/// tuning cache's bit-for-bit replay rule needs exactly this.
std::vector<minisycl::AddressRegion> dslash_regions(const DslashArgs<dcomplex>& a) {
  std::vector<minisycl::AddressRegion> regions;
  const auto n = a.sites;
  for (int l = 0; l < kNlinks; ++l) {
    regions.push_back({a.links[l],
                       n * kNdim * kColors * kColors *
                           static_cast<std::int64_t>(sizeof(dcomplex))});
  }
  regions.push_back({a.b, n * static_cast<std::int64_t>(sizeof(SU3Vector<dcomplex>))});
  regions.push_back({a.c_out, n * static_cast<std::int64_t>(sizeof(SU3Vector<dcomplex>))});
  regions.push_back({a.neighbors,
                     n * kNeighbors * static_cast<std::int64_t>(sizeof(std::int32_t))});
  return regions;
}

template <typename Kernel>
gpusim::KernelStats submit(minisycl::queue& q, const Kernel& kernel,
                           const DslashArgs<dcomplex>& args, int items, int local_size,
                           const VariantInfo* vi, std::string name) {
  minisycl::LaunchSpec spec;
  spec.global_size = args.sites * items;
  spec.local_size = local_size;
  spec.shared_bytes = Kernel::shared_bytes(local_size);
  spec.num_phases = Kernel::kPhases;
  spec.traits = Kernel::traits();
  spec.regions = dslash_regions(args);
  if (vi != nullptr) spec.traits.codegen_slowdown = vi->codegen_slowdown;
  if (name.empty()) name = spec.traits.name;
  return q.submit(spec, kernel, std::move(name));
}

/// Validate the §III local-size rules for this problem, then hand the
/// configuration's kernel object to `fn` via the shared dispatch switch
/// (core/dispatch.hpp) — every launch mode (profiled, functional,
/// sanitized) runs the identical kernel object.
template <typename Fn>
auto with_kernel(DslashProblem& p, Strategy s, IndexOrder o, int local_size, bool use_syclcplx,
                 Fn&& fn) {
  if (!is_valid_local_size(s, o, local_size, p.sites())) {
    throw std::invalid_argument("invalid local size " + std::to_string(local_size) + " for " +
                                config_label(s, o, local_size));
  }
  return with_dslash_kernel(p.args(), s, o, use_syclcplx, std::forward<Fn>(fn));
}

gpusim::KernelStats dispatch(minisycl::queue& q, DslashProblem& p, Strategy s, IndexOrder o,
                             int local_size, bool use_syclcplx, const VariantInfo* vi,
                             const std::string& name) {
  const int items = items_per_site(s);
  const DslashArgs<dcomplex> args = p.args();
  return with_kernel(p, s, o, local_size, use_syclcplx, [&](const auto& kernel) {
    return submit(q, kernel, args, items, local_size, vi, name);
  });
}

}  // namespace

void declare_dslash_regions(const DslashArgs<dcomplex>& a, ksan::SanitizeConfig& cfg) {
  const auto n = static_cast<std::size_t>(a.sites);
  for (int l = 0; l < kNlinks; ++l) {
    cfg.regions.push_back(ksan::region_of(a.links[l], n * kNdim * kColors * kColors));
  }
  cfg.regions.push_back(ksan::region_of(a.b, n));
  cfg.regions.push_back(ksan::region_of(a.c_out, n));
  cfg.regions.push_back(ksan::region_of(a.neighbors, n * kNeighbors));
}

RunResult DslashRunner::run(DslashProblem& problem, const RunRequest& req) const {
  const VariantInfo& vi = variant_info(req.variant);
  minisycl::queue q(minisycl::ExecMode::profiled, vi.queue_order, machine_, cal_);
  return run_on(q, problem, req);
}

RunResult DslashRunner::run_on(minisycl::queue& q, DslashProblem& problem,
                               const RunRequest& req) const {
  const VariantInfo& vi = variant_info(req.variant);

  std::string name = config_label(req.strategy, req.order, req.local_size);
  if (req.variant != Variant::SYCL) {
    name += " [";
    name += vi.name;
    name += ']';
  }

  RunResult res;
  res.stats = dispatch(q, problem, req.strategy, req.order, req.local_size, vi.use_syclcplx,
                       &vi, name);
  res.label = std::move(name);
  res.kernel_us = res.stats.duration_us;
  res.per_iter_us = res.stats.duration_us + q.launch_overhead_us();
  res.gflops = problem.flops() / (res.per_iter_us * 1e-6) / 1e9;
  return res;
}

tune::TuneKey DslashRunner::tune_key(const DslashProblem& problem, Strategy s,
                                     Variant variant) const {
  tune::TuneKey key;
  key.arch = tune::arch_fingerprint(machine_);
  const LatticeGeom& g = problem.geom();
  key.geom = tune::geom_signature(g.extent(0), g.extent(1), g.extent(2), g.extent(3),
                                  problem.target_parity() == Parity::Even);
  key.kernel = "dslash";
  key.config = std::string(to_string(s)) + " " + variant_info(variant).name;
  return key;
}

TunedRunResult DslashRunner::run_tuned(DslashProblem& problem, Strategy s, Variant variant,
                                       int iterations) const {
  const tune::TuneKey key = tune_key(problem, s, variant);

  std::vector<tune::Candidate> candidates;
  for (IndexOrder o : orders_of(s)) {
    for (int ls : paper_local_sizes(s, o, problem.sites())) {
      tune::Candidate c;
      c.local_size = ls;
      c.order = to_string(o);
      candidates.push_back(c);
    }
  }

  // The pricer keeps every RunResult it produces so the winner's full
  // profile (stats, GFLOP/s) survives the tuner's winner selection.
  std::map<std::pair<std::string, int>, RunResult> priced;
  const tune::PriceFn price = [&](const tune::Candidate& c) {
    IndexOrder o = IndexOrder::kMajor;
    if (!parse_index_order(c.order, o)) {
      throw std::invalid_argument("run_tuned: unknown index order '" + c.order + "'");
    }
    RunRequest req;
    req.strategy = s;
    req.order = o;
    req.local_size = c.local_size;
    req.variant = variant;
    req.iterations = iterations;
    RunResult r = run(problem, req);
    const double t = r.per_iter_us;
    priced[{c.order, c.local_size}] = std::move(r);
    return t;
  };

  const tune::TuneOutcome out = tune::tune_or_replay(key, candidates, price);
  TunedRunResult tr;
  tr.entry = out.entry;
  tr.from_cache = out.from_cache;
  tr.candidates_tried = out.candidates_tried;
  tr.result = priced.at({out.entry.order, out.entry.local_size});
  return tr;
}

void DslashRunner::run_functional(DslashProblem& problem, Strategy s, IndexOrder o,
                                  int local_size, bool use_syclcplx) const {
  minisycl::queue q(minisycl::ExecMode::functional, minisycl::QueueOrder::in_order, machine_,
                    cal_);
  dispatch(q, problem, s, o, local_size, use_syclcplx, nullptr, {});
}

ksan::SanitizerReport DslashRunner::sanitize(DslashProblem& problem, Strategy s, IndexOrder o,
                                             int local_size, bool use_syclcplx,
                                             ksan::SanitizeConfig cfg) const {
  declare_dslash_regions(problem.args(), cfg);
  const std::int64_t n = problem.sites();
  const int items = items_per_site(s);
  return with_kernel(problem, s, o, local_size, use_syclcplx, [&](const auto& kernel) {
    using K = std::decay_t<decltype(kernel)>;
    minisycl::LaunchSpec spec;
    spec.global_size = n * items;
    spec.local_size = local_size;
    spec.shared_bytes = K::shared_bytes(local_size);
    spec.num_phases = K::kPhases;
    spec.traits = K::traits();
    return ksan::sanitize_launch(spec, kernel, std::move(cfg),
                                 config_label(s, o, local_size));
  });
}

}  // namespace milc
