// solver.hpp — conjugate-gradient inversion of the even-odd preconditioned
// staggered operator: the workload Dslash performance actually buys
// (MILC's su3_rhmd_hisq spends most of its time here).
#pragma once

#include <functional>

#include "core/staggered_operator.hpp"

namespace milc {

struct CgOptions {
  double rel_tol = 1e-8;  ///< target ||r|| / ||b||
  int max_iterations = 5000;
  int log_every = 0;  ///< 0 = silent, n = print every n iterations
};

struct CgResult {
  bool converged = false;
  int iterations = 0;
  double relative_residual = 0.0;
  /// True residual ||A x - b|| / ||b|| recomputed at the end (guards against
  /// drift of the recursion residual).
  double true_relative_residual = 0.0;
};

/// Solve A x = b by CG for any Hermitian-positive-definite `apply`.
/// `x` is used as the initial guess and holds the solution on return.
CgResult cg_solve(const std::function<void(const ColorField&, ColorField&)>& apply,
                  const ColorField& b, ColorField& x, const LatticeGeom& geom,
                  const CgOptions& opts = {});

/// Convenience: solve (m^2 - D_eo D_oe) x = b on even sites.
CgResult cg_solve(const StaggeredOperator& op, const ColorField& b, ColorField& x,
                  const CgOptions& opts = {});

}  // namespace milc
