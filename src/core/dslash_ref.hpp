// dslash_ref.hpp — serial reference implementations of the Dslash operator.
//
// `dslash_reference` consumes the same gathered GaugeView/NeighborTable the
// kernels use; `dslash_from_configuration` evaluates eq. (1) directly from
// the fundamental links (building adjoints on the fly), providing an
// independent cross-check of the gather itself.
#pragma once

#include "core/dslash_args.hpp"
#include "lattice/fields.hpp"

namespace milc {

/// C = Dslash x B over the gathered view (the kernels' data layout).
void dslash_reference(const GaugeView& view, const NeighborTable& nbr, const ColorField& b,
                      ColorField& c);

/// C = Dslash x B directly from eq. (1): for each target site s,
/// C(s) = sum_k [ F(s,k) B(s+k) + L(s,k) B(s+3k)
///                - F(s-k,k)^dag B(s-k) - L(s-3k,k)^dag B(s-3k) ].
void dslash_from_configuration(const LatticeGeom& geom, const GaugeConfiguration& cfg,
                               Parity target, const ColorField& b, ColorField& c);

/// Build the kernel argument block for a prepared problem.  The caller keeps
/// ownership of all buffers.
[[nodiscard]] DslashArgs<dcomplex> make_dslash_args(const DeviceGaugeLayout& gauge,
                                                    const NeighborTable& nbr,
                                                    const ColorField& b, ColorField& c);

}  // namespace milc
