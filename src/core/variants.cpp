#include "core/variants.hpp"

#include <array>

namespace milc {

namespace {

using minisycl::QueueOrder;

constexpr VariantInfo kInfos[] = {
    {"SYCL", QueueOrder::out_of_order, 1.0, false,
     "baseline: DPC++ default queue is out-of-order (paper section III)"},
    {"SyclCPLX", QueueOrder::out_of_order, 1.01, true,
     "general-purpose complex library; paper section IV-D5 reports +/-<3% vs the "
     "hand-rolled double_complex, non-generalisable across compilers"},
    {"CUDA", QueueOrder::in_order, 1.036, false,
     "default nvcc register allocation; paper section IV-D4: capping registers with "
     "--maxrregcount=64 improves up to 3.6%, so the uncapped build carries the penalty; "
     "CUDA streams are in-order"},
    {"CUDA-maxrreg64", QueueOrder::in_order, 1.0, false,
     "nvcc with --maxrregcount=64: the best register allocation the paper measures"},
    {"SYCLomatic", QueueOrder::in_order, 1.115, false,
     "raw migration derives the global id as get_local_range(2)*get_group(2)+"
     "get_local_id(2); paper section IV-D6 measures a 10.0-12.2% penalty; SYCLomatic "
     "explicitly creates an in-order queue"},
    {"SYCLomatic-opt", QueueOrder::in_order, 1.0, false,
     "after replacing the derived expression with get_global_id(2); keeps the "
     "in-order queue, hence the 1.5-6.7% advantage over baseline SYCL"},
    {"SYCLomatic-1D", QueueOrder::in_order, 1.0, false,
     "variation (i): 1-D instead of 3-D index space - no performance effect (IV-D6)"},
    {"SYCLomatic-fence", QueueOrder::in_order, 1.0, false,
     "variation (ii): explicit local_space fence argument - no performance effect"},
    {"SYCLomatic-nochk", QueueOrder::in_order, 1.0, false,
     "variation (iii): error-code processing removed - no performance effect"},
};

}  // namespace

const VariantInfo& variant_info(Variant v) { return kInfos[static_cast<int>(v)]; }

const std::vector<Variant>& fig6_variants() {
  static const std::vector<Variant> k = {Variant::SYCL,          Variant::SyclCPLX,
                                         Variant::CUDA,          Variant::CUDA_maxrreg64,
                                         Variant::SYCLomatic,    Variant::SYCLomaticOpt};
  return k;
}

const std::vector<Variant>& all_variants() {
  static const std::vector<Variant> k = {
      Variant::SYCL,         Variant::SyclCPLX,       Variant::CUDA,
      Variant::CUDA_maxrreg64, Variant::SYCLomatic,   Variant::SYCLomaticOpt,
      Variant::SYCLomatic1D, Variant::SYCLomaticFence, Variant::SYCLomaticNoChk};
  return k;
}

}  // namespace milc
