// problem.hpp — a fully prepared MILC-Dslash benchmark instance.
#pragma once

#include <cstdint>
#include <memory>

#include "core/dslash_args.hpp"
#include "lattice/fields.hpp"

namespace milc {

/// Owns everything one Dslash application needs: geometry, random gauge
/// configuration, the gathered kernel view, neighbour table and the quark
/// fields.  Building the random SU(3) configuration is the expensive part,
/// so benches construct one problem per lattice size and reuse it across
/// strategy/variant sweeps.
class DslashProblem {
 public:
  /// Hypercubic L^4 lattice (paper: L = 32; benches default to 16 so the
  /// single-core simulation of millions of work-items stays tractable).
  explicit DslashProblem(int L, std::uint64_t seed = 2024, Parity target = Parity::Even);

  /// General even-extent lattice (e.g. asymmetric 4 x 6 x 8 x 10).
  explicit DslashProblem(const Coords& dims, std::uint64_t seed = 2024,
                         Parity target = Parity::Even);

  [[nodiscard]] const LatticeGeom& geom() const { return geom_; }
  [[nodiscard]] const GaugeConfiguration& configuration() const { return cfg_; }
  [[nodiscard]] const GaugeView& view() const { return view_; }
  [[nodiscard]] const DeviceGaugeLayout& device_gauge() const { return dev_gauge_; }
  [[nodiscard]] const NeighborTable& neighbors() const { return nbr_; }
  [[nodiscard]] const ColorField& b() const { return b_; }
  [[nodiscard]] ColorField& b() { return b_; }
  [[nodiscard]] ColorField& c() { return c_; }
  [[nodiscard]] const ColorField& c() const { return c_; }
  [[nodiscard]] std::int64_t sites() const { return geom_.half_volume(); }
  [[nodiscard]] Parity target_parity() const { return target_; }

  /// Kernel argument block writing into this problem's C field.
  [[nodiscard]] DslashArgs<dcomplex> args();

  /// Theoretical FLOPs of one Dslash application (paper convention).
  [[nodiscard]] double flops() const { return dslash_flops(sites()); }

 private:
  LatticeGeom geom_;
  Parity target_;
  GaugeConfiguration cfg_;
  GaugeView view_;
  DeviceGaugeLayout dev_gauge_;
  NeighborTable nbr_;
  ColorField b_;
  ColorField c_;
};

}  // namespace milc
