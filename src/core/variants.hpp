// variants.hpp — the 3LP-1 implementation variants of paper §IV-C.
//
// Each variant differs from the baseline SYCL 3LP-1 kernel in toolchain or
// library, not in algorithm.  Architectural consequences (queue semantics)
// are simulated mechanically; code-generation consequences are the audited
// coefficients discussed in DESIGN.md §2 item 2 and gpusim/calibration.hpp —
// the `rationale` string cites the paper measurement each coefficient
// reproduces.
#pragma once

#include "minisycl/queue.hpp"

namespace milc {

enum class Variant {
  SYCL,             ///< baseline DPC++ build, out-of-order queue
  SyclCPLX,         ///< complex type replaced by sycl::ext::cplx::complex<double>
  CUDA,             ///< hand-ported CUDA, default nvcc register allocation
  CUDA_maxrreg64,   ///< CUDA compiled with --maxrregcount=64
  SYCLomatic,       ///< raw SYCLomatic migration (derived-index expression)
  SYCLomaticOpt,    ///< SYCLomatic after the get_global_id() optimisation
  SYCLomatic1D,     ///< variation (i): 1-D instead of 3-D parallel index space
  SYCLomaticFence,  ///< variation (ii): explicit local fence argument
  SYCLomaticNoChk,  ///< variation (iii): DPCT_CHECK_ERROR/CUCHECK removed
};

struct VariantInfo {
  const char* name;
  minisycl::QueueOrder queue_order;
  double codegen_slowdown;
  bool use_syclcplx;
  const char* rationale;
};

[[nodiscard]] const VariantInfo& variant_info(Variant v);

/// Variants shown in the gray-shaded 3LP-1 block of Fig. 6.
[[nodiscard]] const std::vector<Variant>& fig6_variants();

/// All variants (including the three null-effect SYCLomatic variations of
/// §IV-D6).
[[nodiscard]] const std::vector<Variant>& all_variants();

}  // namespace milc
