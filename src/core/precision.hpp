// precision.hpp — single-precision fields and Dslash application, the
// building blocks of QUDA-style mixed-precision solvers (paper §I/§IV-D3:
// "QUDA supports gauge field compression, mixed-precision solvers, ...").
//
// The strategy kernels are precision-agnostic templates, so the float path
// reuses Dslash3LP1Kernel<Order, scomplex> verbatim; only the field storage
// (half the bytes, hence roughly half the simulated memory traffic) and the
// double<->float conversions live here.
#pragma once

#include <cstdint>
#include <vector>

#include "complexlib/scomplex.hpp"
#include "core/dslash_args.hpp"
#include "gpusim/stats.hpp"
#include "lattice/fields.hpp"
#include "minisycl/queue.hpp"

namespace milc {

/// A colour-vector field at single precision.
class FloatColorField {
 public:
  FloatColorField() = default;
  FloatColorField(const LatticeGeom& geom, Parity p)
      : parity_(p), data_(static_cast<std::size_t>(geom.half_volume())) {}
  /// Truncating conversion from a double-precision field.
  explicit FloatColorField(const ColorField& f);

  [[nodiscard]] Parity parity() const { return parity_; }
  [[nodiscard]] std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  [[nodiscard]] SU3Vector<scomplex>& operator[](std::int64_t s) {
    return data_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const SU3Vector<scomplex>& operator[](std::int64_t s) const {
    return data_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] SU3Vector<scomplex>* data() { return data_.data(); }
  [[nodiscard]] const SU3Vector<scomplex>* data() const { return data_.data(); }

  void zero();
  /// Promote to double precision.
  [[nodiscard]] ColorField to_double(const LatticeGeom& geom) const;

 private:
  Parity parity_ = Parity::Even;
  std::vector<SU3Vector<scomplex>> data_;
};

// Float BLAS (accumulations in double, as a careful float solver does).
[[nodiscard]] double norm2(const FloatColorField& v);
[[nodiscard]] dcomplex dot(const FloatColorField& a, const FloatColorField& b);
void axpy(double alpha, const FloatColorField& x, FloatColorField& y);
void xpay(const FloatColorField& x, double alpha, FloatColorField& y);

/// Single-precision device gauge layout (column-major, like
/// DeviceGaugeLayout, at half the bytes).
class FloatGaugeDevice {
 public:
  FloatGaugeDevice() = default;
  explicit FloatGaugeDevice(const DeviceGaugeLayout& g);

  [[nodiscard]] const scomplex* family(int l) const {
    return data_[static_cast<std::size_t>(l)].data();
  }
  [[nodiscard]] std::int64_t sites() const { return sites_; }

 private:
  std::int64_t sites_ = 0;
  std::array<std::vector<scomplex>, kNlinks> data_{};
};

/// One parity's single-precision Dslash application using the 3LP-1 kernel.
/// Holds non-owning references to the neighbour table (keep the problem
/// alive), and owns the float gauge copy.
class FloatDslash {
 public:
  FloatDslash(const DeviceGaugeLayout& gauge, const NeighborTable& nbr);

  /// out = Dslash x in (functional execution).
  void apply(const FloatColorField& in, FloatColorField& out, int local_size = 96) const;

  /// Profiled execution for benches; output still computed.
  [[nodiscard]] gpusim::KernelStats profile(const FloatColorField& in, FloatColorField& out,
                                            int local_size,
                                            gpusim::MachineModel machine = gpusim::a100(),
                                            gpusim::Calibration cal =
                                                gpusim::default_calibration()) const;

  [[nodiscard]] std::int64_t sites() const { return gauge_.sites(); }

 private:
  DslashArgs<scomplex> make_args(const FloatColorField& in, FloatColorField& out) const;

  FloatGaugeDevice gauge_;
  const NeighborTable* nbr_;
};

}  // namespace milc
